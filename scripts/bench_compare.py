#!/usr/bin/env python3
"""Compare a fresh google-benchmark JSON against a checked-in baseline.

Guards the virtual-time throughput counters (``ops_per_kdelay``,
``cmds_per_kdelay``) by default: they are derived from simulator time, so
they are machine-independent and meaningful even on a loaded CI runner.
A row regresses when its fresh counter drops more than ``--threshold``
(default 15%) below the baseline. Wall-clock ``items_per_second`` is only
compared behind ``--wall-clock`` — it guards local runs on a quiet box,
not CI.

Rows present in the baseline but missing from the fresh run fail the
comparison (a deleted guard row is a silent loss of coverage); rows only
in the fresh run are reported as new and pass.

Usage:
  scripts/bench_compare.py BASELINE.json FRESH.json [--threshold 0.15]
                           [--wall-clock]
Exit status: 0 clean, 1 regression/missing row, 2 usage or parse error.
"""

import argparse
import json
import sys

# Higher-is-better virtual-time counters, in simulator time units.
VIRTUAL_COUNTERS = ("ops_per_kdelay", "cmds_per_kdelay")
WALL_COUNTERS = ("items_per_second",)


def load_rows(path):
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, ValueError) as e:
        print(f"error: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)
    rows = {}
    for b in doc.get("benchmarks", []):
        if b.get("run_type") == "aggregate":
            continue
        rows[b["name"]] = b
    return rows


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("baseline")
    ap.add_argument("fresh")
    ap.add_argument("--threshold", type=float, default=0.15,
                    help="max allowed fractional drop (default 0.15)")
    ap.add_argument("--wall-clock", action="store_true",
                    help="also compare wall-clock items_per_second")
    args = ap.parse_args()

    base = load_rows(args.baseline)
    fresh = load_rows(args.fresh)

    counters = list(VIRTUAL_COUNTERS)
    if args.wall_clock:
        counters += list(WALL_COUNTERS)

    failures = []
    compared = 0
    for name, brow in sorted(base.items()):
        frow = fresh.get(name)
        if frow is None:
            failures.append(f"{name}: missing from fresh run")
            continue
        for c in counters:
            bval = brow.get(c)
            if not isinstance(bval, (int, float)) or bval <= 0:
                continue
            fval = frow.get(c)
            if not isinstance(fval, (int, float)):
                failures.append(f"{name}: counter {c} missing from fresh run")
                continue
            compared += 1
            drop = (bval - fval) / bval
            status = "FAIL" if drop > args.threshold else "ok"
            print(f"{status:4s} {name:40s} {c}: "
                  f"{bval:.6g} -> {fval:.6g} ({-drop:+.1%})")
            if drop > args.threshold:
                failures.append(
                    f"{name}: {c} regressed {drop:.1%} "
                    f"({bval:.6g} -> {fval:.6g}, threshold "
                    f"{args.threshold:.0%})")
    for name in sorted(set(fresh) - set(base)):
        print(f"new  {name} (no baseline; not compared)")

    if compared == 0 and not failures:
        # A baseline with no guarded counters would make the check
        # vacuously green — surface that instead of passing quietly.
        print("error: no comparable counters found", file=sys.stderr)
        sys.exit(2)
    if failures:
        print(f"\n{len(failures)} regression(s) vs {args.baseline}:",
              file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        sys.exit(1)
    print(f"\nall {compared} guarded counters within "
          f"{args.threshold:.0%} of {args.baseline}")


if __name__ == "__main__":
    main()
