#!/usr/bin/env bash
# Build the bench preset and run the benchmark suite.
#
# Seven baseline-compared regression guards always run and write
# machine-readable JSON at the repo root (compare against the checked-in
# baselines to detect regressions):
#   * bench_smr_throughput — end-to-end consensus instances/sec per algorithm
#     → BENCH_smr_throughput.json
#   * bench_hotpath        — per-layer cost floor (executor, channel, fan-out)
#     → BENCH_hotpath.json
#   * bench_log_pipeline   — pipelined smr::Log committed commands/sec vs
#     window/batch → BENCH_log_pipeline.json
#   * bench_kv             — sharded KV aggregate ops/sec vs shards × mix ×
#     engine (the kv/..._s8_C : kv/..._s1_C ops_per_kdelay ratio is the
#     shard-scaling evidence; the kv/FastPaxos_s4_A_signed row runs the
#     same workload with client-signed commands — its ops_per_kdelay must
#     match the unsigned row, since the HMAC cost is wall-clock-only and
#     must never perturb the virtual-time schedule) → BENCH_kv.json
#   * bench_recovery       — crash-and-rejoin: snapshot cadence, log
#     compaction and peer catch-up cost (the rejoin rows' cmds_per_kdelay
#     matching the no-fault row is the recovery-doesn't-stall-survivors
#     evidence) → BENCH_recovery.json
#   * bench_reconfig       — live resharding under load: split/double/merge
#     plans vs the static control row (ops_per_kdelay with the migration
#     stall included, plus keys_moved/bounces counters)
#     → BENCH_reconfig.json
#   * bench_txn            — cross-shard 2PC transactions: abort_rate vs
#     zipfian contention (the theta0/95/99 trio must rise), txn commit
#     p50/p999, and the pure/plain pair whose ops_per_kdelay must agree
#     within 15% (the 2PC machinery adds records, not per-record cost)
#     → BENCH_txn.json
#
# A full run (the default) additionally executes every other bench_* target
# — the paper-experiment tables (resilience, delays, signatures, memory
# faults, lower bound, non-equivocation, failover, aligned) — writing
# google-benchmark JSON (where the target supports it) under build-bench/.
#
#   ./scripts/bench.sh            # full sweep: all fourteen bench targets
#   ./scripts/bench.sh --quick    # just the seven baseline-compared guards
#   git diff --stat BENCH_hotpath.json BENCH_smr_throughput.json \
#                   BENCH_log_pipeline.json BENCH_kv.json BENCH_recovery.json \
#                   BENCH_reconfig.json BENCH_txn.json
#
# BENCH_MIN_TIME overrides google-benchmark's --benchmark_min_time (default
# 0.5; CI smoke uses 0.01).

set -euo pipefail
cd "$(dirname "$0")/.."

QUICK=0
for arg in "$@"; do
  case "$arg" in
    --quick) QUICK=1 ;;
    *)
      echo "usage: $0 [--quick]" >&2
      exit 2
      ;;
  esac
done

cmake --preset bench
cmake --build --preset bench -j"$(nproc)"

MIN_TIME="${BENCH_MIN_TIME:-0.5}"

# --benchmark_out keeps the JSON clean even though bench_smr_throughput also
# prints its per-instance cost table to stdout.
./build-bench/bench_smr_throughput \
  --benchmark_out=BENCH_smr_throughput.json --benchmark_out_format=json \
  --benchmark_min_time="${MIN_TIME}"
./build-bench/bench_hotpath \
  --benchmark_out=BENCH_hotpath.json --benchmark_out_format=json \
  --benchmark_min_time="${MIN_TIME}"
./build-bench/bench_log_pipeline \
  --benchmark_out=BENCH_log_pipeline.json --benchmark_out_format=json \
  --benchmark_min_time="${MIN_TIME}"
./build-bench/bench_kv \
  --benchmark_out=BENCH_kv.json --benchmark_out_format=json \
  --benchmark_min_time="${MIN_TIME}"
./build-bench/bench_recovery \
  --benchmark_out=BENCH_recovery.json --benchmark_out_format=json \
  --benchmark_min_time="${MIN_TIME}"
./build-bench/bench_reconfig \
  --benchmark_out=BENCH_reconfig.json --benchmark_out_format=json \
  --benchmark_min_time="${MIN_TIME}"
./build-bench/bench_txn \
  --benchmark_out=BENCH_txn.json --benchmark_out_format=json \
  --benchmark_min_time="${MIN_TIME}"

if [[ "${QUICK}" -eq 0 ]]; then
  # bench_nonequiv is google-benchmark based like the guards above; the rest
  # are plain experiment tables with their own main().
  ./build-bench/bench_nonequiv \
    --benchmark_out=build-bench/BENCH_nonequiv.json --benchmark_out_format=json \
    --benchmark_min_time="${MIN_TIME}"
  for b in aligned delays failover lower_bound memory_faults signatures \
           table1_resilience; do
    echo
    echo "== bench_${b} =="
    "./build-bench/bench_${b}"
  done
fi

echo "Wrote BENCH_smr_throughput.json, BENCH_hotpath.json, BENCH_log_pipeline.json, BENCH_kv.json, BENCH_recovery.json, BENCH_reconfig.json and BENCH_txn.json"
