#!/usr/bin/env bash
# Build the bench preset and run the two performance regression guards with
# machine-readable output:
#   * bench_smr_throughput — end-to-end consensus instances/sec per algorithm
#   * bench_hotpath        — per-layer cost floor (executor, channel, fan-out)
#
# JSON lands in BENCH_smr_throughput.json / BENCH_hotpath.json at the repo
# root; compare against the checked-in baseline to detect regressions:
#   ./scripts/bench.sh
#   git diff --stat BENCH_hotpath.json

set -euo pipefail
cd "$(dirname "$0")/.."

cmake --preset bench
cmake --build --preset bench -j"$(nproc)"

MIN_TIME="${BENCH_MIN_TIME:-0.5}"

# --benchmark_out keeps the JSON clean even though bench_smr_throughput also
# prints its per-instance cost table to stdout.
./build-bench/bench_smr_throughput \
  --benchmark_out=BENCH_smr_throughput.json --benchmark_out_format=json \
  --benchmark_min_time="${MIN_TIME}"
./build-bench/bench_hotpath \
  --benchmark_out=BENCH_hotpath.json --benchmark_out_format=json \
  --benchmark_min_time="${MIN_TIME}"

echo "Wrote BENCH_smr_throughput.json and BENCH_hotpath.json"
