// Cross-shard bank transfers over 2PC — the txn/ quickstart from the
// README, runnable: 2 shards, each a 3-replica Fast Paxos group behind
// kv::Router, with a client-side txn::Coordinator moving money between
// accounts that live on different shards.
//
// Three acts:
//   1. seed two accounts with plain PUTs,
//   2. run one guarded transfer through the coordinator (prepare both keys,
//      commit both keys — atomic even though each key rides its own
//      replicated log),
//   3. race two transfers against the same account: the no-wait conflict
//      rule aborts exactly one of them immediately — no lock-wait, no
//      deadlock — and Σ balances is conserved either way.

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "src/core/engine.hpp"
#include "src/core/omega.hpp"
#include "src/core/transport.hpp"
#include "src/core/transport_mux.hpp"
#include "src/kv/router.hpp"
#include "src/kv/state_machine.hpp"
#include "src/net/network.hpp"
#include "src/sim/executor.hpp"
#include "src/smr/replica.hpp"
#include "src/txn/coordinator.hpp"

using namespace mnm;

namespace {

constexpr std::size_t kReplicas = 3;
constexpr std::size_t kShards = 2;

std::int64_t parse_balance(const Bytes& raw) {
  return raw.empty() ? 0 : std::stoll(util::to_string(raw));
}

sim::Task<void> seed_account(kv::Router* router, kv::ClientId id,
                             const std::string& key, std::int64_t balance,
                             bool* done) {
  kv::Command put;
  put.op = kv::Op::kPut;
  put.key = util::to_bytes(key);
  put.value = util::to_bytes(std::to_string(balance));
  (void)co_await router->execute(id, put);
  *done = true;
}

/// Read both balances, then transfer `amount` from `from` to `to` with
/// optimistic guards on the exact bytes read.
sim::Task<void> transfer(kv::Router* router, txn::Coordinator* coord,
                         kv::ClientId id, txn::TxnId txn,
                         const std::string& from, const std::string& to,
                         std::int64_t amount, txn::Outcome* outcome) {
  std::vector<txn::Write> writes(2);
  const std::string keys[2] = {from, to};
  const std::int64_t delta[2] = {-amount, amount};
  for (std::size_t i = 0; i < 2; ++i) {
    kv::Command get;
    get.op = kv::Op::kGet;
    get.key = util::to_bytes(keys[i]);
    const kv::Reply r = co_await router->execute(id, get);
    writes[i].kind = txn::WriteKind::kPut;
    writes[i].key = get.key;
    writes[i].value =
        util::to_bytes(std::to_string(parse_balance(r.value) + delta[i]));
    writes[i].has_expected = true;  // abort if anyone slipped in between
    writes[i].expected = r.value;
  }
  const txn::TxnReport rep = co_await coord->run(id, txn, writes);
  *outcome = rep.outcome;
}

const char* outcome_name(txn::Outcome o) {
  return o == txn::Outcome::kCommitted ? "committed" : "aborted";
}

}  // namespace

int main() {
  std::printf("txn_transfer: 2PC bank transfers over %zu shards x %zu "
              "replicas\n\n",
              kShards, kReplicas);
  sim::Executor exec;
  net::Network net(exec, kReplicas);
  core::Omega omega = core::Omega::fixed(exec, kLeaderP1);
  core::PaxosConfig pc;
  pc.n = kReplicas;
  pc.skip_phase1_for_p1 = true;

  // Same stack as examples/kv_store.cpp: per process one transport + mux,
  // per (shard, process) one engine + replica over a KV state machine, one
  // Router over all of it — the coordinator is just another client of it.
  std::vector<std::unique_ptr<core::NetTransport>> transports;
  std::vector<std::unique_ptr<core::TransportMux>> muxes;
  std::vector<std::unique_ptr<core::PaxosEngine>> engines;
  std::vector<std::unique_ptr<kv::StateMachine>> machines;
  std::vector<std::unique_ptr<smr::Replica>> replicas;
  std::vector<kv::ShardBackend> backends(kShards);
  for (ProcessId p : all_processes(kReplicas)) {
    transports.push_back(
        std::make_unique<core::NetTransport>(exec, net, p, /*tag=*/100));
    muxes.push_back(
        std::make_unique<core::TransportMux>(exec, *transports.back()));
  }
  for (std::size_t g = 0; g < kShards; ++g) {
    for (ProcessId p : all_processes(kReplicas)) {
      engines.push_back(std::make_unique<core::PaxosEngine>(
          exec, muxes[p - 1]->sub(static_cast<std::uint8_t>(g)), omega, pc));
      machines.push_back(std::make_unique<kv::StateMachine>());
      replicas.push_back(std::make_unique<smr::Replica>(
          exec, *engines.back(), omega, *machines.back(),
          smr::ReplicaConfig{}));
      backends[g].replicas.push_back(replicas.back().get());
      backends[g].machines.push_back(machines.back().get());
    }
  }
  kv::Router router(exec, omega, kv::ShardMap(kShards), std::move(backends),
                    kv::RouterConfig{});
  txn::Coordinator coord(router);
  for (auto& m : muxes) m->start();
  for (auto& e : engines) e->start();
  for (auto& r : replicas) r->start();

  // Pick two account keys that hash to different shards, so the transfer
  // genuinely crosses logs.
  kv::ShardMap map(kShards);
  std::string alice = "acct-alice", bob;
  for (int i = 0;; ++i) {
    bob = "acct-bob" + std::to_string(i);
    if (map.shard_of(util::to_bytes(bob)) !=
        map.shard_of(util::to_bytes(alice))) {
      break;
    }
  }
  std::printf("accounts: %s (shard %zu), %s (shard %zu)\n", alice.c_str(),
              map.shard_of(util::to_bytes(alice)), bob.c_str(),
              map.shard_of(util::to_bytes(bob)));

  // Act 1: seed the accounts.
  const kv::ClientId c1 = router.register_client();
  const kv::ClientId c2 = router.register_client();
  bool seeded[2] = {};
  exec.spawn(seed_account(&router, c1, alice, 100, &seeded[0]));
  exec.spawn(seed_account(&router, c2, bob, 100, &seeded[1]));
  exec.run_until([&] { return seeded[0] && seeded[1]; }, 100000);

  // Act 2: one uncontended transfer — must commit.
  txn::Outcome solo = txn::Outcome::kAborted;
  exec.spawn(transfer(&router, &coord, c1, /*txn=*/1, alice, bob, 30, &solo));
  exec.run_until([&] { return solo != txn::Outcome::kAborted; }, 100000);
  std::printf("transfer of 30 %s -> %s: %s\n", alice.c_str(), bob.c_str(),
              outcome_name(solo));

  // Act 3: two transfers race for alice. The no-wait rule refuses the
  // second prepare on the locked (or guard-missed) key instantly — one
  // commits, one aborts, nobody waits.
  txn::Outcome race[2] = {txn::Outcome::kCrashed, txn::Outcome::kCrashed};
  exec.spawn(transfer(&router, &coord, c1, /*txn=*/2, alice, bob, 10, &race[0]));
  exec.spawn(transfer(&router, &coord, c2, /*txn=*/3, alice, bob, 10, &race[1]));
  exec.run_until(
      [&] {
        return race[0] != txn::Outcome::kCrashed &&
               race[1] != txn::Outcome::kCrashed;
      },
      100000);
  std::printf("racing transfers: %s / %s\n", outcome_name(race[0]),
              outcome_name(race[1]));

  // Let followers drain, then check the invariant: Σ balances unchanged,
  // every lock released, all replicas agree.
  exec.run_until(
      [&] {
        for (std::size_t g = 0; g < kShards; ++g) {
          const Slot len = replicas[g * kReplicas]->log().applied_len();
          for (std::size_t p = 1; p < kReplicas; ++p) {
            if (replicas[g * kReplicas + p]->log().applied_len() != len) {
              return false;
            }
          }
        }
        return true;
      },
      100000);
  std::int64_t total = 0;
  std::size_t locks = 0;
  bool agree = true;
  for (std::size_t g = 0; g < kShards; ++g) {
    kv::StateMachine& m = *machines[g * kReplicas];
    for (const auto& [key, value] : m.store()) total += parse_balance(value);
    locks += m.locks_held();
    for (std::size_t p = 1; p < kReplicas; ++p) {
      agree = agree &&
              machines[g * kReplicas + p]->store_hash() == m.store_hash();
    }
  }
  std::printf("\nsum of balances: %lld (seeded 200), locks held: %zu, "
              "replicas agree: %s\n",
              static_cast<long long>(total), locks, agree ? "yes" : "NO");
  const bool ok = total == 200 && locks == 0 && agree &&
                  solo == txn::Outcome::kCommitted;
  std::printf("%s\n", ok ? "atomic across shards: yes" : "BUG!");
  return ok ? 0 : 1;
}
