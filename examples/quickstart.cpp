// Quickstart: consensus in two network delays on simulated RDMA.
//
// Builds the smallest interesting cluster by hand — 2 processes, 3
// fail-prone memories — and runs Protected Memory Paxos (paper §5.1): the
// leader decides after a single parallel write because the memories'
// dynamic permissions guarantee the write was uncontended.
//
//   $ ./quickstart
//
// See examples/replicated_log.cpp and examples/byzantine_ledger.cpp for the
// multi-decree and Byzantine scenarios.

#include <cstdio>
#include <memory>
#include <vector>

#include "src/core/omega.hpp"
#include "src/core/protected_memory_paxos.hpp"
#include "src/core/transport.hpp"
#include "src/mem/memory.hpp"
#include "src/net/network.hpp"
#include "src/sim/executor.hpp"

using namespace mnm;

int main() {
  std::printf("mnm quickstart: Protected Memory Paxos, n=2 processes, m=3 memories\n\n");

  // 1. The simulator: a deterministic event loop whose clock counts the
  //    paper's delay units (1 per message, 2 per memory operation).
  sim::Executor exec;

  // 2. The M&M substrate: authenticated links + three crash-prone memories,
  //    each with one region whose write permission is exclusively the
  //    current leader's (transferable via changePermission).
  net::Network network(exec, /*n_processes=*/2);
  std::vector<std::unique_ptr<mem::Memory>> memories;
  std::vector<mem::MemoryIface*> ifc;
  RegionId region = 0;
  for (MemoryId id = 1; id <= 3; ++id) {
    memories.push_back(std::make_unique<mem::Memory>(exec, id));
    region = core::make_pmp_region(*memories.back(), /*n=*/2);
    ifc.push_back(memories.back().get());
  }

  // 3. Ω failure detector: p1 is the (stable) leader.
  core::Omega omega = core::Omega::fixed(exec, kLeaderP1);

  // 4. One Protected Memory Paxos instance per process, each over its own
  //    transport endpoint (the DECIDE conversation).
  core::PmpConfig config;
  config.n = 2;
  core::NetTransport t1(exec, network, 1, /*tag=*/900);
  core::NetTransport t2(exec, network, 2, /*tag=*/900);
  core::ProtectedMemoryPaxos p1(exec, ifc, region, t1, omega, config);
  core::ProtectedMemoryPaxos p2(exec, ifc, region, t2, omega, config);
  p1.start();
  p2.start();

  // 5. Both processes propose; the protocol picks one value.
  exec.spawn([](core::ProtectedMemoryPaxos* p, sim::Executor* e) -> sim::Task<void> {
    const Bytes decided = co_await p->propose(util::to_bytes("apply: x = 1"));
    std::printf("p1 decided %-16s at t=%llu (delays)\n",
                ("'" + util::to_string(decided) + "'").c_str(),
                static_cast<unsigned long long>(e->now()));
  }(&p1, &exec));
  exec.spawn([](core::ProtectedMemoryPaxos* p, sim::Executor* e) -> sim::Task<void> {
    const Bytes decided = co_await p->propose(util::to_bytes("apply: x = 2"));
    std::printf("p2 decided %-16s at t=%llu (delays)\n",
                ("'" + util::to_string(decided) + "'").c_str(),
                static_cast<unsigned long long>(e->now()));
  }(&p2, &exec));

  exec.run(/*until=*/10000);

  std::printf("\nleader decision latency: %llu delay units (paper: 2-deciding, Thm 5.1)\n",
              static_cast<unsigned long long>(p1.decided_at()));
  std::printf("both agree: %s\n",
              util::to_string(p1.decision()) == util::to_string(p2.decision())
                  ? "yes"
                  : "NO (bug!)");
  return 0;
}
