// Replicated log (state-machine replication) on the fast message baseline,
// with a leader crash mid-window.
//
// The systems the paper motivates (DARE, APUS — §1/§2) replicate a log: one
// consensus instance per slot. This example runs the new smr stack directly:
// one core::PaxosEngine (Fast Paxos: 2-delay steady state) per replica over
// a SINGLE shared transport — the engine's slot-tag namespace replaces the
// old per-slot tag hand-allocation — and one smr::Replica per process that
// batches commands into slots and pipelines them through a 4-slot window.
// Halfway through, the leader is killed: Ω's poke hands leadership to p2,
// which re-proposes the open window and continues with its own queued
// commands. The surviving replicas' logs stay identical.

#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/core/engine.hpp"
#include "src/core/omega.hpp"
#include "src/core/transport.hpp"
#include "src/net/network.hpp"
#include "src/sim/executor.hpp"
#include "src/smr/replica.hpp"

using namespace mnm;

namespace {

constexpr std::size_t kReplicas = 3;
constexpr std::size_t kCommandsPerReplica = 12;
constexpr std::size_t kBatch = 2;   // commands packed per slot
constexpr std::size_t kWindow = 4;  // slots in flight

/// The replicated state machine: a trivial key-value store that also keeps
/// the raw command log for the equality check below.
struct KvStateMachine : smr::StateMachine {
  std::map<std::string, std::string> kv;
  std::vector<std::string> log;

  void apply(Slot, util::ByteView command) override {
    // Command format: "set <key> <value>".
    const std::string cmd = util::to_string(command);
    log.push_back(cmd);
    const auto sp1 = cmd.find(' ');
    const auto sp2 = cmd.find(' ', sp1 + 1);
    if (cmd.compare(0, 3, "set") == 0 && sp2 != std::string::npos) {
      kv[cmd.substr(sp1 + 1, sp2 - sp1 - 1)] = cmd.substr(sp2 + 1);
    }
  }
};

}  // namespace

int main() {
  std::printf(
      "replicated_log: %zu replicas, %zu commands each, batch=%zu, "
      "window=%zu, leader crash mid-stream\n\n",
      kReplicas, kCommandsPerReplica, kBatch, kWindow);

  sim::Executor exec;
  net::Network network(exec, kReplicas);
  bool p1_alive = true;
  // Ω: p1 while alive, then p2 — the standard leader-failover shape.
  core::Omega omega(
      exec, [&p1_alive](sim::Time) -> ProcessId { return p1_alive ? 1 : 2; },
      /*poke_complete=*/true);

  // One engine + replica per process; each replica owns exactly ONE
  // transport endpoint (tag 100) — the engine multiplexes every slot over it.
  core::PaxosConfig pc;
  pc.n = kReplicas;
  pc.skip_phase1_for_p1 = true;  // 2-delay steady state under a stable leader
  smr::ReplicaConfig rc;
  rc.batch = kBatch;
  rc.log.window = kWindow;

  std::vector<std::unique_ptr<core::NetTransport>> transports;
  std::vector<std::unique_ptr<core::PaxosEngine>> engines;
  std::vector<std::unique_ptr<KvStateMachine>> machines;
  std::vector<std::unique_ptr<smr::Replica>> replicas;
  for (ProcessId p : all_processes(kReplicas)) {
    transports.push_back(
        std::make_unique<core::NetTransport>(exec, network, p, /*tag=*/100));
    engines.push_back(std::make_unique<core::PaxosEngine>(
        exec, *transports.back(), omega, pc));
    machines.push_back(std::make_unique<KvStateMachine>());
    replicas.push_back(std::make_unique<smr::Replica>(
        exec, *engines.back(), omega, *machines.back(), rc));
    engines.back()->start();
    replicas.back()->start();
  }

  // Every replica submits its own workload; only the leader's commands
  // commit while it leads (followers' queues drain if they take over).
  for (ProcessId p : all_processes(kReplicas)) {
    for (std::size_t i = 0; i < kCommandsPerReplica; ++i) {
      replicas[p - 1]->submit(
          util::to_bytes("set key" + std::to_string(i) + " from-p" +
                         std::to_string(p)));
    }
    replicas[p - 1]->flush();
  }

  // Kill p1 once it has pipelined a few slots: undecided slots in its window
  // are re-proposed by p2 (Paxos adopts any value a quorum accepted).
  exec.call_at(5, [&] {
    p1_alive = false;
    network.crash(1);
    omega.poke();  // announce the leadership change to suspended waiters
    std::printf("  !! leader p1 crashed at t=5 (mid-window)\n");
  });

  exec.run_until(
      [&] {
        if (!replicas[1]->idle()) return false;  // p2: the post-crash leader
        const Slot len = replicas[1]->log().applied_len();
        return replicas[2]->log().applied_len() == len;
      },
      1000000);

  // Report: logs of the surviving replicas must be identical.
  std::printf("\nfinal logs:\n");
  for (ProcessId p : all_processes(kReplicas)) {
    const auto& log = machines[p - 1]->log;
    if (p == 1) {
      std::printf("  p%u: (crashed after %zu applied commands)\n", p, log.size());
      continue;
    }
    std::printf("  p%u: %zu commands over %llu slots\n", p, log.size(),
                static_cast<unsigned long long>(
                    replicas[p - 1]->log().applied_len()));
  }
  const bool logs_match = machines[1]->log == machines[2]->log;

  const smr::RunStats s2 = replicas[1]->stats();
  std::printf("\np2 run stats: %s\n", s2.summary().c_str());
  std::printf("replica logs identical: %s\n", logs_match ? "yes" : "NO (bug!)");
  std::printf("state machine on p2: ");
  for (const auto& [k, v] : machines[1]->kv) {
    std::printf("%s=%s ", k.c_str(), v.c_str());
  }
  std::printf("\n");
  return logs_match ? 0 : 1;
}
