// Replicated log (mini state-machine replication) on the fast message
// baseline, with a leader crash mid-stream.
//
// The systems the paper motivates (DARE, APUS — §1/§2) replicate a log: one
// consensus instance per slot. This example chains instances of the
// 2-deciding message-passing Paxos (one instance per log index, each on its
// own message tag), applies the decided commands to a trivial key-value
// state machine on every replica, and kills the leader halfway to show the
// failover path — the log stays identical across replicas.

#include <cstdio>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/core/fast_paxos.hpp"
#include "src/core/omega.hpp"
#include "src/core/transport.hpp"
#include "src/net/network.hpp"
#include "src/sim/executor.hpp"

using namespace mnm;

namespace {

constexpr std::size_t kReplicas = 3;
constexpr std::size_t kSlots = 8;
constexpr net::MsgType kBaseTag = 1000;

struct Replica {
  ProcessId id;
  std::map<std::string, std::string> kv;  // the replicated state machine
  std::vector<std::string> log;

  void apply(const std::string& cmd) {
    // Command format: "set <key> <value>".
    log.push_back(cmd);
    const auto sp1 = cmd.find(' ');
    const auto sp2 = cmd.find(' ', sp1 + 1);
    if (cmd.compare(0, 3, "set") == 0 && sp2 != std::string::npos) {
      kv[cmd.substr(sp1 + 1, sp2 - sp1 - 1)] = cmd.substr(sp2 + 1);
    }
  }
};

sim::Task<void> drive_slot(core::Paxos* paxos, Replica* replica, Bytes proposal,
                           bool* done) {
  const Bytes decided = co_await paxos->propose(std::move(proposal));
  replica->apply(util::to_string(decided));
  *done = true;
}

}  // namespace

int main() {
  std::printf("replicated_log: %zu replicas, %zu log slots, leader crash at slot 4\n\n",
              kReplicas, kSlots);

  sim::Executor exec;
  net::Network network(exec, kReplicas);
  bool p1_alive = true;
  // Ω: p1 while alive, then p2 — the standard leader-failover shape.
  core::Omega omega(exec, [&p1_alive](sim::Time) -> ProcessId {
    return p1_alive ? 1 : 2;
  });

  std::vector<Replica> replicas;
  for (ProcessId p : all_processes(kReplicas)) replicas.push_back(Replica{p, {}, {}});

  // One Paxos instance per slot per replica, each slot on its own tag.
  std::vector<std::unique_ptr<core::NetTransport>> transports;
  std::vector<std::unique_ptr<core::Paxos>> instances;  // [slot * kReplicas + (p-1)]
  core::PaxosConfig pc;
  pc.n = kReplicas;
  pc.skip_phase1_for_p1 = true;  // 2-delay steady state under a stable leader
  for (std::size_t slot = 0; slot < kSlots; ++slot) {
    for (ProcessId p : all_processes(kReplicas)) {
      transports.push_back(std::make_unique<core::NetTransport>(
          exec, network, p, kBaseTag + static_cast<net::MsgType>(slot)));
      instances.push_back(
          std::make_unique<core::Paxos>(exec, *transports.back(), omega, pc));
      instances.back()->start();
    }
  }

  // Drive slots sequentially: slot i+1 starts when slot i is decided at the
  // proposing replica (a pipelined log would overlap them).
  std::deque<bool> slot_done(kSlots * kReplicas, false);
  std::size_t launched = 0;

  // Kill p1 when slot 4 begins.
  const auto maybe_crash_leader = [&](std::size_t slot) {
    if (slot == 4 && p1_alive) {
      p1_alive = false;
      network.crash(1);
      omega.poke();  // announce the leadership change to suspended waiters
      std::printf("  !! leader p1 crashed before slot %zu\n", slot);
    }
  };

  std::function<void(std::size_t)> launch_slot = [&](std::size_t slot) {
    if (slot >= kSlots) return;
    maybe_crash_leader(slot);
    ++launched;
    for (ProcessId p : all_processes(kReplicas)) {
      if (!p1_alive && p == 1) continue;  // dead replicas do not propose
      const std::size_t idx = slot * kReplicas + (p - 1);
      const std::string cmd = "set key" + std::to_string(slot) + " from-p" +
                              std::to_string(p);
      exec.spawn(drive_slot(instances[idx].get(), &replicas[p - 1],
                            util::to_bytes(cmd), &slot_done[idx]));
    }
  };

  launch_slot(0);
  for (std::size_t slot = 0; slot < kSlots; ++slot) {
    // Run until every live replica finished this slot, then launch the next.
    exec.run_until(
        [&] {
          for (ProcessId p : all_processes(kReplicas)) {
            if (!p1_alive && p == 1) continue;
            if (!slot_done[slot * kReplicas + (p - 1)]) return false;
          }
          return true;
        },
        1000000);
    launch_slot(slot + 1);
  }

  // Report: logs of the surviving replicas must be identical.
  std::printf("\nfinal logs:\n");
  for (const Replica& r : replicas) {
    if (!p1_alive && r.id == 1) {
      std::printf("  p%u: (crashed after %zu entries)\n", r.id, r.log.size());
      continue;
    }
    std::printf("  p%u: %zu entries:", r.id, r.log.size());
    for (const auto& e : r.log) std::printf(" [%s]", e.c_str());
    std::printf("\n");
  }
  const bool logs_match = replicas[1].log == replicas[2].log;
  std::printf("\nreplica logs identical: %s\n", logs_match ? "yes" : "NO (bug!)");
  std::printf("state machine on p2: ");
  for (const auto& [k, v] : replicas[1].kv) std::printf("%s=%s ", k.c_str(), v.c_str());
  std::printf("\n");
  return logs_match ? 0 : 1;
}
