// Byzantine ledger: weak Byzantine agreement with n = 2f+1 on an asset
// transfer, under three adversaries.
//
// Three banks must agree on which of two conflicting transfer orders to
// execute (a classic double-spend setting). With f = 1 Byzantine
// participant out of n = 3, message-passing BFT would need n ≥ 3f+1 = 4
// banks — the paper's Fast & Robust does it with 3 (plus 3 fail-prone
// memories), deciding in 2 delays when nobody misbehaves.
//
// Scenarios: (a) everyone honest — fast-path decision; (b) a silent
// Byzantine bank; (c) a Byzantine *leader* that plants conflicting signed
// orders on different memories (the equivocation attack the paper's
// dynamic permissions + unanimity proofs suppress).

#include <cstdio>

#include "src/harness/cluster.hpp"

using namespace mnm;
using namespace mnm::harness;

namespace {

void run_scenario(const char* title, ClusterConfig config) {
  std::printf("== %s ==\n", title);
  const RunReport r = run_cluster(config);
  for (const auto& p : r.processes) {
    if (p.byzantine) {
      std::printf("  bank%u: BYZANTINE\n", p.id);
    } else if (p.decided) {
      std::printf("  bank%u: committed '%s' at t=%llu%s\n", p.id,
                  p.decision.c_str(),
                  static_cast<unsigned long long>(p.decided_at),
                  p.fast_path ? " (fast path)" : " (backup path)");
    } else {
      std::printf("  bank%u: no decision\n", p.id);
    }
  }
  std::printf("  agreement among honest banks: %s; everyone settled: %s\n\n",
              r.agreement ? "yes" : "NO — DOUBLE SPEND",
              r.termination ? "yes" : "no");
}

ClusterConfig base() {
  ClusterConfig c;
  c.algo = Algorithm::kFastRobust;
  c.n = 3;   // 2f+1 with f=1 — below the classic 3f+1 bound
  c.m = 3;   // 2fM+1 fail-prone memories
  c.identical_inputs = false;  // each bank proposes its own order
  return c;
}

}  // namespace

int main() {
  std::printf(
      "byzantine_ledger: 3 banks, 1 may be Byzantine (n = 2f+1, §4)\n"
      "each bank proposes its own transfer order; exactly one must win.\n\n");

  run_scenario("scenario A: all banks honest", base());

  {
    ClusterConfig c = base();
    c.faults.byzantine[3] = ByzantineStrategy::kSilent;
    run_scenario("scenario B: bank3 Byzantine (silent)", c);
  }
  {
    ClusterConfig c = base();
    c.faults.byzantine[1] = ByzantineStrategy::kCqLeaderEquivocate;
    run_scenario(
        "scenario C: bank1 (the leader) equivocates across memories", c);
  }
  {
    ClusterConfig c = base();
    c.faults.byzantine[2] = ByzantineStrategy::kGarbage;
    run_scenario("scenario D: bank2 floods garbage", c);
  }

  std::printf(
      "Note: with plain message passing this would require 4 banks\n"
      "(n >= 3f+1, [43]); RDMA's dynamic permissions + signatures get the\n"
      "same guarantee from 3 (paper Theorem 4.9).\n");
  return 0;
}
