// Byzantine ledger: weak Byzantine agreement with n = 2f+1 on a multi-round
// asset-transfer ledger, under three adversaries.
//
// Three banks replicate a ledger of transfer rounds (a multi-slot log on the
// Fast & Robust engine — §4.3): for every round, each bank proposes its own
// candidate order and exactly one wins the slot. With f = 1 Byzantine
// participant out of n = 3, message-passing BFT would need n ≥ 3f+1 = 4
// banks — the paper's Fast & Robust does it with 3 (plus 3 fail-prone
// memories), deciding each slot in 2 delays when nobody misbehaves.
//
// Scenarios: (a) everyone honest — fast-path slots end to end; (b) a silent
// Byzantine bank; (c) a Byzantine *leader* that plants conflicting signed
// orders on different memories (the equivocation attack the paper's dynamic
// permissions + unanimity proofs suppress — it lands on slot 0, which must
// fall back to the robust backup while later slots keep committing);
// (d) a bank flooding garbage.

#include <cstdio>

#include "src/harness/cluster.hpp"

using namespace mnm;
using namespace mnm::harness;

namespace {

constexpr std::size_t kRounds = 6;  // ledger length in transfer rounds

void run_scenario(const char* title, ClusterConfig config) {
  std::printf("== %s ==\n", title);
  const RunReport r = run_cluster(config);
  for (const auto& p : r.processes) {
    if (p.byzantine) {
      std::printf("  bank%u: BYZANTINE\n", p.id);
    } else if (p.decided) {
      std::printf("  bank%u: ledger of %zu entries, settled at t=%llu%s\n",
                  p.id, p.log.size(),
                  static_cast<unsigned long long>(p.decided_at),
                  p.fast_path ? " (all fast path)" : " (used backup path)");
    } else {
      std::printf("  bank%u: no ledger\n", p.id);
    }
  }
  std::printf(
      "  rounds committed: %llu (fast: %llu)  commit p50/p99: %llu/%llu\n",
      static_cast<unsigned long long>(r.slots_applied),
      static_cast<unsigned long long>(r.fast_slots),
      static_cast<unsigned long long>(r.commit_p50),
      static_cast<unsigned long long>(r.commit_p99));
  std::printf("  ledgers identical across honest banks: %s; everyone settled: %s\n\n",
              r.agreement ? "yes" : "NO — DOUBLE SPEND",
              r.termination ? "yes" : "no");
}

ClusterConfig base() {
  ClusterConfig c;
  c.algo = Algorithm::kFastRobust;
  c.n = 3;   // 2f+1 with f=1 — below the classic 3f+1 bound
  c.m = 3;   // 2fM+1 fail-prone memories
  c.smr.enabled = true;        // multi-slot: one slot per transfer round
  c.smr.commands = kRounds;    // each bank proposes one order per round
  c.smr.batch = 1;
  c.smr.window = 2;            // two rounds pipelined
  return c;
}

}  // namespace

int main() {
  std::printf(
      "byzantine_ledger: 3 banks, 1 may be Byzantine (n = 2f+1, §4)\n"
      "a %zu-round ledger on the Fast & Robust engine; each bank proposes\n"
      "its own transfer order per round, exactly one wins each round.\n\n",
      kRounds);

  run_scenario("scenario A: all banks honest", base());

  {
    ClusterConfig c = base();
    c.faults.byzantine[3] = ByzantineStrategy::kSilent;
    run_scenario("scenario B: bank3 Byzantine (silent)", c);
  }
  {
    ClusterConfig c = base();
    c.faults.byzantine[1] = ByzantineStrategy::kCqLeaderEquivocate;
    run_scenario(
        "scenario C: bank1 (the leader) equivocates across memories", c);
  }
  {
    ClusterConfig c = base();
    c.faults.byzantine[2] = ByzantineStrategy::kGarbage;
    run_scenario("scenario D: bank2 floods garbage", c);
  }

  std::printf(
      "Note: with plain message passing this would require 4 banks\n"
      "(n >= 3f+1, [43]); RDMA's dynamic permissions + signatures get the\n"
      "same guarantee from 3 (paper Theorem 4.9).\n");
  return 0;
}
