// Sharded replicated KV store in ~20 lines of setup: 2 shards, each a
// 3-replica Fast Paxos group behind kv::Router, with exactly-once client
// sessions — the kv/ quickstart from the README, runnable.
//
// The harness KV mode (ClusterConfig::kv) assembles exactly this stack and
// adds fault plans; here it is by hand so the seams show: one World of
// processes, one TransportMux per process, one engine + replica per
// (shard, process), one Router over the shard map, clients as coroutines.

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "src/core/engine.hpp"
#include "src/core/omega.hpp"
#include "src/core/transport.hpp"
#include "src/core/transport_mux.hpp"
#include "src/kv/router.hpp"
#include "src/kv/state_machine.hpp"
#include "src/net/network.hpp"
#include "src/sim/executor.hpp"
#include "src/smr/replica.hpp"

using namespace mnm;

namespace {

constexpr std::size_t kReplicas = 3;
constexpr std::size_t kShards = 2;

sim::Task<void> client(sim::Executor* exec, kv::Router* router, kv::ClientId id,
                       bool* done) {
  using kv::Command, kv::Op, kv::Reply, kv::Status;
  Command put;
  put.op = Op::kPut;
  put.key = util::to_bytes("user:" + std::to_string(id));
  put.value = util::to_bytes("hello from client " + std::to_string(id));
  (void)co_await router->execute(id, put);

  Command get;
  get.op = Op::kGet;
  get.key = put.key;
  const Reply r = co_await router->execute(id, get);
  std::printf("  client %llu read back [shard %zu]: \"%s\" at t=%llu\n",
              static_cast<unsigned long long>(id),
              router->shard_map().shard_of(get.key),
              util::to_string(r.value).c_str(),
              static_cast<unsigned long long>(exec->now()));
  *done = true;
}

}  // namespace

int main() {
  std::printf("kv_store: %zu shards x %zu replicas, Fast Paxos groups\n\n",
              kShards, kReplicas);
  sim::Executor exec;
  net::Network net(exec, kReplicas);
  core::Omega omega = core::Omega::fixed(exec, kLeaderP1);
  core::PaxosConfig pc;
  pc.n = kReplicas;
  pc.skip_phase1_for_p1 = true;

  // --- The quickstart: per process one transport + mux; per (shard,
  // process) one engine over the mux sub + one replica over a KV state
  // machine; one Router over all of it. ---
  std::vector<std::unique_ptr<core::NetTransport>> transports;
  std::vector<std::unique_ptr<core::TransportMux>> muxes;
  std::vector<std::unique_ptr<core::PaxosEngine>> engines;
  std::vector<std::unique_ptr<kv::StateMachine>> machines;
  std::vector<std::unique_ptr<smr::Replica>> replicas;
  std::vector<kv::ShardBackend> backends(kShards);
  for (ProcessId p : all_processes(kReplicas)) {
    transports.push_back(
        std::make_unique<core::NetTransport>(exec, net, p, /*tag=*/100));
    muxes.push_back(std::make_unique<core::TransportMux>(exec, *transports.back()));
  }
  for (std::size_t g = 0; g < kShards; ++g) {
    for (ProcessId p : all_processes(kReplicas)) {
      engines.push_back(std::make_unique<core::PaxosEngine>(
          exec, muxes[p - 1]->sub(static_cast<std::uint8_t>(g)), omega, pc));
      machines.push_back(std::make_unique<kv::StateMachine>());
      replicas.push_back(std::make_unique<smr::Replica>(
          exec, *engines.back(), omega, *machines.back(), smr::ReplicaConfig{}));
      backends[g].replicas.push_back(replicas.back().get());
      backends[g].machines.push_back(machines.back().get());
    }
  }
  kv::Router router(exec, omega, kv::ShardMap(kShards), std::move(backends),
                    kv::RouterConfig{});
  for (auto& m : muxes) m->start();
  for (auto& e : engines) e->start();
  for (auto& r : replicas) r->start();

  // --- Clients: PUT then GET, routed by key hash, exactly-once. ---
  constexpr std::size_t kClients = 4;
  bool done[kClients] = {};
  for (std::size_t i = 0; i < kClients; ++i) {
    const kv::ClientId id = router.register_client();
    exec.spawn(client(&exec, &router, id, &done[i]));
  }
  exec.run_until(
      [&] {
        for (const bool d : done) {
          if (!d) return false;
        }
        return true;
      },
      100000);
  // Clients are answered by the first replica to apply; let the followers
  // drain to the same log length before comparing stores.
  exec.run_until(
      [&] {
        for (std::size_t g = 0; g < kShards; ++g) {
          const Slot len = replicas[g * kReplicas]->log().applied_len();
          for (std::size_t p = 1; p < kReplicas; ++p) {
            if (replicas[g * kReplicas + p]->log().applied_len() != len) {
              return false;
            }
          }
        }
        return true;
      },
      100000);

  // Shard 0's replicas all hold the same store (machines are laid out
  // [shard × replica]; index g * kReplicas + p - 1).
  bool agree = true;
  for (std::size_t g = 0; g < kShards; ++g) {
    const std::uint64_t h = machines[g * kReplicas]->store_hash();
    for (std::size_t p = 1; p < kReplicas; ++p) {
      agree = agree && machines[g * kReplicas + p]->store_hash() == h;
    }
    std::printf("shard %zu: %zu keys, replicas agree\n", g,
                machines[g * kReplicas]->store().size());
  }
  std::printf("stores identical across each shard: %s\n",
              agree ? "yes" : "NO (bug!)");
  return agree ? 0 : 1;
}
