// RDMA playground: the §7 mapping, hands on.
//
// Drives the verbs layer directly — protection domains, memory
// registration, rkeys, queue pairs — and shows the two mechanisms the
// paper's algorithms lean on:
//
//   1. SWMR regions as registrations: a row of a slot array is writable
//      only through its owner's rkey (non-equivocating broadcast's layout);
//   2. dynamic permission revocation as deregistration: an in-flight write
//      racing a revocation naks at the NIC — Cheap Quorum's panic and
//      Protected Memory Paxos's permission transfer in miniature.

#include <cstdio>
#include <memory>

#include "src/mem/permissions.hpp"
#include "src/sim/executor.hpp"
#include "src/verbs/verbs.hpp"

using namespace mnm;
using namespace mnm::verbs;

int main() {
  std::printf("rdma_playground: protection domains, rkeys, revocation (§7)\n\n");

  sim::Executor exec;
  RdmaDevice nic(exec, /*id=*/1, /*rkey_seed=*/42);

  // --- Part 1: SWMR slot-array layout. ---
  // p1 registers its row read-only for everyone (via their PDs) and
  // read-write for itself — "the process can preserve write access
  // permission to its row via another registration of just that row" (§7).
  const PdId pd1 = nic.alloc_pd();
  const PdId pd2 = nic.alloc_pd();
  const QpId qp1 = nic.create_qp(pd1, /*owner=*/1);
  const QpId qp2 = nic.create_qp(pd2, /*owner=*/2);

  const RKey row1_rw_for_p1 = nic.register_mr(pd1, {"slots/row1/"},
                                              Access{true, true});
  const RKey row1_ro_for_p2 = nic.register_mr(pd2, {"slots/row1/"},
                                              Access{true, false});

  exec.spawn([](RdmaDevice* nic, QpId qp1, QpId qp2, RKey rw, RKey ro)
                 -> sim::Task<void> {
    auto st = co_await nic->post_write(qp1, 1, rw, "slots/row1/k1",
                                       util::to_bytes("p1's first message"));
    std::printf("p1 writes its own row ............ %s\n",
                st == mem::Status::kAck ? "ack" : "nak");

    st = co_await nic->post_write(qp2, 2, ro, "slots/row1/k1",
                                  util::to_bytes("forged"));
    std::printf("p2 writes p1's row (read-only) ... %s (SWMR enforced)\n",
                st == mem::Status::kAck ? "ack?!" : "nak");

    auto rr = co_await nic->post_read(qp2, 2, ro, "slots/row1/k1");
    std::printf("p2 reads p1's row ................ '%s'\n",
                util::to_string(rr.value).c_str());

    // Cross-PD rkey abuse: p2 posting with p1's rkey fails (PD mismatch).
    st = co_await nic->post_write(qp2, 2, rw, "slots/row1/k1",
                                  util::to_bytes("stolen rkey"));
    std::printf("p2 writes with p1's rkey ......... %s (PD mismatch)\n",
                st == mem::Status::kAck ? "ack?!" : "nak");
  }(&nic, qp1, qp2, row1_rw_for_p1, row1_ro_for_p2));
  exec.run(1000);

  // --- Part 2: revocation races an in-flight write. ---
  std::printf("\nrevocation race (Cheap Quorum's panic, §4.2/§7):\n");
  mem::Status late_write = mem::Status::kAck;
  exec.spawn([](RdmaDevice* nic, QpId qp1, RKey rw,
                mem::Status* out) -> sim::Task<void> {
    *out = co_await nic->post_write(qp1, 1, rw, "slots/row1/k2",
                                    util::to_bytes("in flight"));
  }(&nic, qp1, row1_rw_for_p1, &late_write));
  // The write was posted at the current instant; deregister before it
  // reaches the NIC ("revoke permissions dynamically by simply
  // deregistering the memory region").
  nic.deregister_mr(row1_rw_for_p1);
  exec.run(2000);
  std::printf("p1's in-flight write after deregistration: %s\n",
              late_write == mem::Status::kAck ? "ack?!" : "nak");
  std::printf("register untouched: %s\n",
              nic.peek("slots/row1/k2").has_value() ? "NO (data landed!)" : "yes");

  // --- Part 3: the model-level region interface over the same NIC. ---
  std::printf("\nVerbsMemory: the paper's regions/permissions over rkeys:\n");
  sim::Executor exec2;
  VerbsMemory vm(exec2, std::make_unique<RdmaDevice>(exec2, 2, 7),
                 all_processes(2));
  const RegionId region = vm.create_region(
      {"L/"}, mem::Permission::swmr(1, all_processes(2)),
      [](ProcessId, RegionId, const mem::Permission&,
         const mem::Permission& proposed) {
        return proposed.write.empty() && proposed.read_write.empty();
      });
  exec2.spawn([](VerbsMemory* vm, RegionId region) -> sim::Task<void> {
    auto st = co_await vm->write(1, region, "L/value", util::to_bytes("v"));
    std::printf("leader write ..................... %s\n",
                st == mem::Status::kAck ? "ack" : "nak");
    st = co_await vm->change_permission(
        2, region, mem::Permission::read_only(all_processes(2)));
    std::printf("follower revokes leader .......... %s\n",
                st == mem::Status::kAck ? "ack" : "nak");
    st = co_await vm->write(1, region, "L/value", util::to_bytes("late"));
    std::printf("leader write after revocation .... %s (rkey rotated away)\n",
                st == mem::Status::kAck ? "ack?!" : "nak");
  }(&vm, region));
  exec2.run(1000);

  return 0;
}
