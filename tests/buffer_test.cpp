// Tests for the refcounted shared payload buffer (src/util/buffer.hpp):
// aliasing, refcounting, immutability, slicing, and node pooling — the
// invariants the zero-copy message path leans on.

#include <gtest/gtest.h>

#include <utility>

#include "src/util/buffer.hpp"
#include "src/util/bytes.hpp"

namespace mnm::util {
namespace {

Bytes make_bytes(std::initializer_list<int> vals) {
  Bytes b;
  for (int v : vals) b.push_back(static_cast<std::uint8_t>(v));
  return b;
}

TEST(Buffer, DefaultIsEmptyAndUnshared) {
  Buffer b;
  EXPECT_TRUE(b.empty());
  EXPECT_EQ(b.size(), 0u);
  EXPECT_EQ(b.use_count(), 0u);
  EXPECT_EQ(b.data(), nullptr);
}

TEST(Buffer, TakeOwnershipDoesNotCopy) {
  Bytes src = make_bytes({1, 2, 3, 4});
  const std::uint8_t* raw = src.data();
  Buffer b(std::move(src));
  EXPECT_EQ(b.size(), 4u);
  // The backing storage is the moved-in vector's: zero-copy wrap.
  EXPECT_EQ(b.data(), raw);
  EXPECT_EQ(b.use_count(), 1u);
}

TEST(Buffer, CopyBumpsRefcountAndAliases) {
  Buffer a(make_bytes({9, 8, 7}));
  Buffer b = a;
  EXPECT_EQ(a.use_count(), 2u);
  EXPECT_EQ(b.use_count(), 2u);
  EXPECT_EQ(a.data(), b.data());  // same storage, no copy
  {
    Buffer c = b;
    EXPECT_EQ(a.use_count(), 3u);
  }
  EXPECT_EQ(a.use_count(), 2u);  // c's death dropped the count
}

TEST(Buffer, MoveTransfersWithoutRefcountChange) {
  Buffer a(make_bytes({5, 5}));
  Buffer b = a;
  ASSERT_EQ(a.use_count(), 2u);
  Buffer c = std::move(a);
  EXPECT_EQ(c.use_count(), 2u);  // move does not create a new share
  EXPECT_TRUE(a.empty());        // NOLINT(bugprone-use-after-move)
}

TEST(Buffer, SlicesShareStorage) {
  Buffer whole(make_bytes({0x50, 1, 2, 3, 4}));  // tag + body
  Buffer body = whole.suffix(1);
  EXPECT_EQ(body.size(), 4u);
  EXPECT_EQ(body.data(), whole.data() + 1);  // same bytes, offset view
  EXPECT_EQ(whole.use_count(), 2u);          // slice holds the node alive

  Buffer mid = whole.slice(2, 2);
  EXPECT_EQ(mid.size(), 2u);
  EXPECT_EQ(mid[0], 2u);
  EXPECT_EQ(mid[1], 3u);
  EXPECT_EQ(whole.use_count(), 3u);
}

TEST(Buffer, SliceKeepsStorageAliveAfterParentDies) {
  Buffer body;
  {
    Buffer whole(make_bytes({7, 8, 9}));
    body = whole.suffix(1);
  }
  // Parent gone; the slice still owns the node.
  ASSERT_EQ(body.size(), 2u);
  EXPECT_EQ(body[0], 8u);
  EXPECT_EQ(body[1], 9u);
  EXPECT_EQ(body.use_count(), 1u);
}

TEST(Buffer, EqualityComparesContentsNotIdentity) {
  const Bytes payload = make_bytes({1, 2, 3});
  Buffer a(payload);       // copying wrap
  Buffer b{Bytes(payload)};
  EXPECT_NE(a.data(), b.data());
  EXPECT_EQ(a, b);
  EXPECT_EQ(a, payload);
  EXPECT_EQ(payload, b);
  Buffer c(make_bytes({1, 2}));
  EXPECT_FALSE(a == c);
}

TEST(Buffer, ImmutableViewMatchesSource) {
  const Bytes payload = make_bytes({10, 20, 30});
  Buffer b(payload);
  ByteView v = b;  // implicit view conversion
  ASSERT_EQ(v.size(), 3u);
  EXPECT_TRUE(view_equal(v, ByteView(payload)));
  // to_bytes copies out; mutating the copy cannot touch the buffer.
  Bytes out = b.to_bytes();
  out[0] = 99;
  EXPECT_EQ(b[0], 10u);
}

TEST(Buffer, ControlNodesAreRecycledThroughThePool) {
  // Warm the pool, then check that create/destroy cycles do not grow it
  // beyond the number of simultaneously-live buffers.
  { Buffer warm(make_bytes({1})); }
  const std::size_t baseline = Buffer::pool_size();
  ASSERT_GE(baseline, 1u);
  for (int i = 0; i < 100; ++i) {
    Buffer b(make_bytes({1, 2, 3}));
    Buffer share = b;
    Buffer slice = b.suffix(1);
  }
  // Max three live at once, all sharing ONE node: pool never needs to grow.
  EXPECT_EQ(Buffer::pool_size(), baseline);
}

TEST(Buffer, EmptyBytesWrapToEmptyBuffer) {
  Buffer b((Bytes()));
  EXPECT_TRUE(b.empty());
  EXPECT_EQ(b.use_count(), 0u);  // no node allocated for ⊥
  Buffer s = b.suffix(0);
  EXPECT_TRUE(s.empty());
}

}  // namespace
}  // namespace mnm::util
