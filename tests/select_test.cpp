// Edge cases of the multi-source wait primitive (sim/select.hpp) and the
// matching recv_until corners: deadlines equal to now, wake and timeout on
// the same tick, cancellation while suspended, waiter-pool reuse, version
// signals, and the event-driven Ω leadership wait built on top of them.

#include <gtest/gtest.h>

#include <optional>
#include <vector>

#include "src/core/omega.hpp"
#include "src/sim/channel.hpp"
#include "src/sim/executor.hpp"
#include "src/sim/fanout.hpp"
#include "src/sim/select.hpp"
#include "src/sim/sync.hpp"
#include "src/sim/task.hpp"

namespace mnm::sim {
namespace {

using core::Omega;

// ---------------------------------------------------------------------------
// Deadline exactly equal to now.
// ---------------------------------------------------------------------------

TEST(Select, DeadlineEqualToNowTimesOutWithoutSuspending) {
  Executor exec;
  Channel<int> ch(exec);
  int result = 99;
  Time at = 77;
  exec.spawn([](Executor* e, Channel<int>* ch, int* out, Time* at) -> Task<void> {
    Select sel(*e);
    sel.on(*ch).until(e->now());  // deadline == now, nothing queued
    *out = co_await sel;
    *at = e->now();
  }(&exec, &ch, &result, &at));
  exec.run();
  EXPECT_EQ(result, Select::kTimedOut);
  EXPECT_EQ(at, 0u);  // resumed synchronously, no timer event
}

TEST(Select, QueuedValueBeatsDeadlineEqualToNow) {
  Executor exec;
  Channel<int> ch(exec);
  ch.send(5);
  int result = 99;
  exec.spawn([](Executor* e, Channel<int>* ch, int* out) -> Task<void> {
    Select sel(*e);
    sel.on(*ch).until(e->now());
    *out = co_await sel;
  }(&exec, &ch, &result));
  exec.run();
  EXPECT_EQ(result, 0);  // source 0 fired — the value wins over the deadline
  EXPECT_EQ(ch.try_recv(), std::optional<int>(5));
}

TEST(RecvUntil, DeadlineEqualToNowReturnsNulloptImmediately) {
  Executor exec;
  Channel<int> ch(exec);
  std::optional<int> got = 42;
  exec.spawn([](Executor* e, Channel<int>* ch, std::optional<int>* out) -> Task<void> {
    *out = co_await ch->recv_until(e->now());
  }(&exec, &ch, &got));
  exec.run();
  EXPECT_EQ(got, std::nullopt);
}

TEST(RecvUntil, QueuedValueBeatsDeadlineEqualToNow) {
  Executor exec;
  Channel<int> ch(exec);
  ch.send(7);
  std::optional<int> got;
  exec.spawn([](Executor* e, Channel<int>* ch, std::optional<int>* out) -> Task<void> {
    *out = co_await ch->recv_until(e->now());
  }(&exec, &ch, &got));
  exec.run();
  EXPECT_EQ(got, std::optional<int>(7));
}

// ---------------------------------------------------------------------------
// Wake and timeout landing on the same tick: (time, seq) order arbitrates —
// whichever event was scheduled first wins, deterministically.
// ---------------------------------------------------------------------------

TEST(Select, SendScheduledBeforeSuspendWinsTieWithDeadline) {
  Executor exec;
  Channel<int> ch(exec);
  // The send event enters the queue before the select task even starts, so
  // at t = 5 it runs before the deadline timer (lower seq).
  exec.schedule_at(5, [&ch] { ch.send(1); });
  int result = 99;
  exec.spawn([](Executor* e, Channel<int>* ch, int* out) -> Task<void> {
    Select sel(*e);
    sel.on(*ch).until(5);
    *out = co_await sel;
  }(&exec, &ch, &result));
  exec.run();
  EXPECT_EQ(result, 0);
  EXPECT_TRUE(ch.try_recv().has_value());
}

TEST(Select, DeadlineArmedFirstWinsTieWithLaterScheduledSend) {
  Executor exec;
  Channel<int> ch(exec);
  int result = 99;
  exec.spawn([](Executor* e, Channel<int>* ch, int* out) -> Task<void> {
    Select sel(*e);
    sel.on(*ch).until(5);  // timer armed at t = 0
    *out = co_await sel;
  }(&exec, &ch, &result));
  // Scheduled from a later event, so the send lands at t = 5 with a higher
  // seq than the timer: the select resolves kTimedOut and the value stays
  // queued for the next receive.
  exec.schedule_at(1, [&exec, &ch] {
    exec.schedule_at(5, [&ch] { ch.send(2); });
  });
  exec.run();
  EXPECT_EQ(result, Select::kTimedOut);
  EXPECT_EQ(ch.try_recv(), std::optional<int>(2));
}

TEST(RecvUntil, TimerArmedFirstWinsTieAndValueStaysQueued) {
  Executor exec;
  Channel<int> ch(exec);
  std::optional<int> got = 42;
  exec.spawn([](Channel<int>* ch, std::optional<int>* out) -> Task<void> {
    *out = co_await ch->recv_until(5);
  }(&ch, &got));
  exec.schedule_at(1, [&exec, &ch] {
    exec.schedule_at(5, [&ch] { ch.send(3); });
  });
  exec.run();
  EXPECT_EQ(got, std::nullopt);
  EXPECT_EQ(ch.size(), 1u);
}

// ---------------------------------------------------------------------------
// Arbitration between sources.
// ---------------------------------------------------------------------------

TEST(Select, LowestIndexWinsWhenSeveralSourcesAlreadyReady) {
  Executor exec;
  Channel<int> a(exec), b(exec);
  Gate g(exec);
  a.send(1);
  b.send(2);
  g.open();
  int result = 99;
  exec.spawn([](Executor* e, Channel<int>* a, Channel<int>* b, Gate* g,
                int* out) -> Task<void> {
    Select sel(*e);
    sel.on(*b).on(*g).on(*a);
    *out = co_await sel;
  }(&exec, &a, &b, &g, &result));
  exec.run();
  EXPECT_EQ(result, 0);  // registration order, not channel identity
}

TEST(Select, FirstSignalInEventOrderClaimsTheWait) {
  Executor exec;
  Channel<int> a(exec), b(exec);
  exec.schedule_at(3, [&b] { b.send(20); });  // scheduled first → fires first
  exec.schedule_at(3, [&a] { a.send(10); });
  int result = 99;
  exec.spawn([](Executor* e, Channel<int>* a, Channel<int>* b, int* out) -> Task<void> {
    Select sel(*e);
    sel.on(*a).on(*b);
    *out = co_await sel;
  }(&exec, &a, &b, &result));
  exec.run();
  EXPECT_EQ(result, 1);                // b signaled first
  EXPECT_TRUE(a.try_recv().has_value());  // a's value is still there
}

TEST(Select, GateOpenWakesSelectAndReportsItsIndex) {
  Executor exec;
  Channel<int> ch(exec);
  Gate g(exec);
  int result = 99;
  exec.spawn([](Executor* e, Channel<int>* ch, Gate* g, int* out) -> Task<void> {
    Select sel(*e);
    sel.on(*ch).on(*g);
    *out = co_await sel;
  }(&exec, &ch, &g, &result));
  exec.schedule_at(4, [&g] { g.open(); });
  exec.run();
  EXPECT_EQ(result, 1);
}

TEST(Select, FanoutCompletionsComposeViaResultsChannel) {
  Executor exec;
  Fanout<int> fan(exec);
  fan.add(0, [](Executor* e) -> Task<int> {
    co_await e->sleep(3);
    co_return 30;
  }(&exec));
  int result = 99;
  std::optional<std::pair<std::size_t, int>> completion;
  exec.spawn([](Executor* e, Fanout<int>* fan, int* out,
                std::optional<std::pair<std::size_t, int>>* c) -> Task<void> {
    Select sel(*e);
    sel.on(fan->results()).until(100);
    *out = co_await sel;
    *c = fan->results().try_recv();
  }(&exec, &fan, &result, &completion));
  exec.run();
  EXPECT_EQ(result, 0);
  ASSERT_TRUE(completion.has_value());
  EXPECT_EQ(completion->second, 30);
}

// ---------------------------------------------------------------------------
// Cancellation while suspended.
// ---------------------------------------------------------------------------

TEST(Select, TeardownWhileSuspendedIsSafe) {
  // The awaiting coroutine is torn down with the executor while parked in a
  // select; the channel outlives it and a later send must skip the dead
  // watcher node instead of resuming the destroyed frame.
  auto* exec = new Executor();
  auto* ch = new Channel<int>(*exec);
  auto* g = new Gate(*exec);
  exec->spawn([](Executor* e, Channel<int>* ch, Gate* g) -> Task<void> {
    Select sel(*e);
    sel.on(*ch).on(*g).until(1000);
    (void)co_await sel;
  }(exec, ch, g));
  exec->run(10);  // suspend, never signal
  delete exec;    // frame dies, node flagged dead
  ch->send(1);    // watcher is stale; must be skipped, not resumed
  delete g;
  delete ch;
  SUCCEED();
}

TEST(Select, AbandonedWatcherDoesNotStealLaterValues) {
  Executor exec;
  Channel<int> ch(exec);
  Gate g(exec);
  // First select resolves via the gate; its channel watcher node goes stale.
  int first = 99;
  exec.spawn([](Executor* e, Channel<int>* ch, Gate* g, int* out) -> Task<void> {
    Select sel(*e);
    sel.on(*ch).on(*g);
    *out = co_await sel;
  }(&exec, &ch, &g, &first));
  exec.schedule_at(2, [&g] { g.open(); });
  exec.run();
  EXPECT_EQ(first, 1);

  // A later send must wake a *fresh* waiter, not the disarmed node still
  // queued in the channel's watcher list.
  int second = 99;
  exec.spawn([](Executor* e, Channel<int>* ch, int* out) -> Task<void> {
    Select sel(*e);
    sel.on(*ch);
    *out = co_await sel;
  }(&exec, &ch, &second));
  exec.schedule_at(4, [&ch] { ch.send(8); });
  exec.run();
  EXPECT_EQ(second, 0);
  EXPECT_EQ(ch.try_recv(), std::optional<int>(8));
}

// ---------------------------------------------------------------------------
// Waiter-pool reuse across runs.
// ---------------------------------------------------------------------------

TEST(Select, WaiterNodesRecycleAcrossManyRuns) {
  // Thousands of suspend/wake cycles across several executor lifetimes churn
  // the pooled node free lists; any recycling bug (stale fired state, dangling
  // handle) shows up as a wrong index or a crash.
  for (int run = 0; run < 3; ++run) {
    Executor exec;
    Channel<int> ch(exec);
    Gate g(exec);
    int sum = 0;
    exec.spawn([](Executor* e, Channel<int>* ch, Gate* g, int* sum) -> Task<void> {
      for (int i = 0; i < 2000; ++i) {
        Select sel(*e);
        sel.on(*ch).on(*g).until(e->now() + 1000);
        const int idx = co_await sel;
        if (idx != 0) co_return;  // wrong source — fail via sum mismatch
        auto v = ch->try_recv();
        if (!v.has_value()) co_return;
        *sum += *v;
      }
    }(&exec, &ch, &g, &sum));
    for (int i = 0; i < 2000; ++i) {
      exec.schedule_at(static_cast<Time>(i + 1), [&ch] { ch.send(1); });
    }
    exec.run();
    EXPECT_EQ(sum, 2000) << "run " << run;
  }
}

// ---------------------------------------------------------------------------
// VersionSignal: lost-wakeup-free snapshot protocol.
// ---------------------------------------------------------------------------

TEST(VersionSignal, BumpAfterSnapshotMakesSelectReadyImmediately) {
  Executor exec;
  VersionSignal sig(exec);
  const std::uint64_t seen = sig.version();
  sig.bump();  // change lands between snapshot and await
  int result = 99;
  Time at = 77;
  exec.spawn([](Executor* e, VersionSignal* s, std::uint64_t seen, int* out,
                Time* at) -> Task<void> {
    Select sel(*e);
    sel.on(*s, seen);
    *out = co_await sel;
    *at = e->now();
  }(&exec, &sig, seen, &result, &at));
  exec.run();
  EXPECT_EQ(result, 0);
  EXPECT_EQ(at, 0u);  // no suspension needed
}

TEST(VersionSignal, BumpWakesSuspendedSelect) {
  Executor exec;
  VersionSignal sig(exec);
  int result = 99;
  Time at = 0;
  exec.spawn([](Executor* e, VersionSignal* s, int* out, Time* at) -> Task<void> {
    Select sel(*e);
    sel.on(*s, s->version());
    *out = co_await sel;
    *at = e->now();
  }(&exec, &sig, &result, &at));
  exec.schedule_at(9, [&sig] { sig.bump(); });
  exec.run();
  EXPECT_EQ(result, 0);
  EXPECT_EQ(at, 9u);
}

// ---------------------------------------------------------------------------
// Ω built on Select: poke-driven leadership, no per-tick polling.
// ---------------------------------------------------------------------------

TEST(Omega, PokeWakesLeadershipWaiterAtTheChangeInstant) {
  Executor exec;
  ProcessId leader = 1;
  Omega omega(exec, [&leader](Time) { return leader; });
  Time woke_at = 0;
  exec.spawn([](Executor* e, Omega* o, Time* at) -> Task<void> {
    co_await o->wait_leadership(2);
    *at = e->now();
  }(&exec, &omega, &woke_at));
  exec.schedule_at(500, [&] {
    leader = 2;
    omega.poke();
  });
  exec.run(2000);
  EXPECT_EQ(woke_at, 500u);
}

TEST(Omega, BackoffFallbackCatchesUnpokedScheduleChanges) {
  // A scripted oracle that changes without a poke: the capped backoff must
  // still observe it (within kBackoffCap of the flip).
  Executor exec;
  Omega omega(exec, [](Time t) { return t >= 100 ? ProcessId{2} : ProcessId{1}; });
  Time woke_at = 0;
  exec.spawn([](Executor* e, Omega* o, Time* at) -> Task<void> {
    co_await o->wait_leadership(2);
    *at = e->now();
  }(&exec, &omega, &woke_at));
  exec.run(2000);
  EXPECT_GE(woke_at, 100u);
  EXPECT_LE(woke_at, 100u + Omega::kBackoffCap);
}

TEST(Omega, FixedLeaderNonLeaderWaitCostsNoEventsAtAll) {
  // Omega::fixed is poke-complete: a non-leader's wait suspends once and
  // never wakes (old behavior: one timer event per poll tick, ~10000 here).
  Executor exec;
  Omega omega = Omega::fixed(exec, 1);
  bool done = false;
  exec.spawn([](Omega* o, bool* done) -> Task<void> {
    co_await o->wait_leadership(2);  // never satisfied
    *done = true;
  }(&omega, &done));
  exec.run(10000);
  EXPECT_FALSE(done);
  EXPECT_LE(exec.events_processed(), 2u);  // the spawn itself, nothing more
}

TEST(Omega, UnpokedOracleKeepsBackoffFallback) {
  Executor exec;
  Omega omega(exec, [](Time) { return ProcessId{1}; });  // not poke-complete
  bool done = false;
  exec.spawn([](Omega* o, bool* done) -> Task<void> {
    co_await o->wait_leadership(2);
    *done = true;
  }(&omega, &done));
  exec.run(10000);
  EXPECT_FALSE(done);
  // Capped-backoff re-checks: ~10000 / kBackoffCap plus the doubling ramp,
  // far below one event per tick.
  EXPECT_GE(exec.events_processed(), 10000u / Omega::kBackoffCap);
  EXPECT_LE(exec.events_processed(), 2 * (10000u / Omega::kBackoffCap) + 64);
}

}  // namespace
}  // namespace mnm::sim
