// Sharded-KV cluster invariants (harness KV mode).
//
// The contract under test is client-visible exactly-once on top of
// per-shard SMR: every completed client operation mutates exactly one
// shard's store exactly once — even when the command lands in the log twice
// (client retry racing the original, or a leader hand-off re-proposing an
// open slot) — and every correct replica of a shard holds the same store
// and session table. Fault plans reuse the harness machinery: leader
// crashes mid-workload, Byzantine processes on FastRobust-backed shards.

#include <gtest/gtest.h>

#include <numeric>

#include "src/harness/cluster.hpp"

namespace mnm::harness {
namespace {

ClusterConfig kv_config(Algorithm algo, std::size_t n, std::size_t m,
                        std::size_t shards, std::size_t clients,
                        std::size_t ops) {
  ClusterConfig c;
  c.algo = algo;
  c.n = n;
  c.m = m;
  c.kv.enabled = true;
  c.kv.shards = shards;
  c.kv.clients = clients;
  c.kv.ops_per_client = ops;
  return c;
}

std::uint64_t total_shard_ops(const RunReport& r) {
  return std::accumulate(r.kv_shard_ops.begin(), r.kv_shard_ops.end(),
                         std::uint64_t{0});
}

TEST(KvCluster, ShardedMixAOverFastPaxos) {
  const RunReport r = run_cluster(kv_config(Algorithm::kFastPaxos, 3, 0,
                                            /*shards=*/4, /*clients=*/8,
                                            /*ops=*/16));
  EXPECT_TRUE(r.all_ok()) << r.summary();
  EXPECT_EQ(r.kv_ops, 8u * 16u);
  // Exactly-once, globally: effective applies across shards == client ops.
  EXPECT_EQ(total_shard_ops(r), r.kv_ops) << r.summary();
  EXPECT_EQ(r.kv_malformed, 0u);
  // The workload actually spread across the groups.
  EXPECT_EQ(r.kv_shard_ops.size(), 4u);
  for (std::size_t g = 0; g < r.kv_shard_ops.size(); ++g) {
    EXPECT_GT(r.kv_shard_ops[g], 0u) << "shard " << g << " saw no ops";
  }
  EXPECT_GT(r.kv_reads, 0u);
  EXPECT_GT(r.kv_writes, 0u);
  EXPECT_GT(r.kv_op_p50, 0u);
  EXPECT_GE(r.kv_op_p999, r.kv_op_p99);
  EXPECT_GE(r.commit_p999, r.commit_p99);
}

TEST(KvCluster, ZipfianReadMostlyOverFastPaxos) {
  ClusterConfig c = kv_config(Algorithm::kFastPaxos, 3, 0, 4, 8, 16);
  c.kv.mix = kv::Mix::kB;
  c.kv.dist = kv::KeyDist::kZipfian;
  const RunReport r = run_cluster(c);
  EXPECT_TRUE(r.all_ok()) << r.summary();
  EXPECT_EQ(r.kv_ops, 8u * 16u);
  EXPECT_EQ(total_shard_ops(r), r.kv_ops);
  // 95/5 mix: reads dominate.
  EXPECT_GT(r.kv_reads, r.kv_writes * 4);
}

TEST(KvCluster, MemoryEnginesBackShards) {
  // PMP-backed shards (n=2, m=3): the same router/workload stack runs over
  // memory-only consensus with per-shard slot-prefixed regions.
  const RunReport r = run_cluster(
      kv_config(Algorithm::kProtectedMemoryPaxos, 2, 3, 2, 4, 8));
  EXPECT_TRUE(r.all_ok()) << r.summary();
  EXPECT_EQ(r.kv_ops, 4u * 8u);
  EXPECT_EQ(total_shard_ops(r), r.kv_ops);
  EXPECT_GT(r.mem_writes, 0u);
}

TEST(KvCluster, MoreShardsMoreThroughput) {
  // Read-heavy mix, enough clients to saturate one group's pipeline
  // (window × batch): aggregate ops/kdelay must grow with the shard count.
  ClusterConfig one = kv_config(Algorithm::kFastPaxos, 3, 0, 1, 32, 8);
  one.kv.mix = kv::Mix::kC;
  one.kv.window = 4;
  one.kv.batch = 4;
  one.kv.keys = 256;
  ClusterConfig four = one;
  four.kv.shards = 4;
  const RunReport r1 = run_cluster(one);
  const RunReport r4 = run_cluster(four);
  ASSERT_TRUE(r1.all_ok()) << r1.summary();
  ASSERT_TRUE(r4.all_ok()) << r4.summary();
  EXPECT_GT(r4.kv_ops_per_kdelay, 1.5 * r1.kv_ops_per_kdelay)
      << "1 shard: " << r1.summary() << "\n4 shards: " << r4.summary();
}

// ---------------------------------------------------------------------------
// Exactly-once under faults.
// ---------------------------------------------------------------------------

TEST(KvCluster, AggressiveRetriesStayExactlyOnce) {
  // Retry deadline far below the commit latency: every client re-submits
  // while its original is still in flight, so the logs fill with duplicate
  // (client, seq) pairs — all of which must be suppressed, with the cached
  // reply answering the retry.
  ClusterConfig c = kv_config(Algorithm::kFastPaxos, 3, 0, 2, 6, 8);
  c.kv.retry_timeout = 2;
  // Pin the fixed-deadline mode: adaptive retry exists precisely to stop
  // this storm, and this test needs the storm to exercise the dedup.
  c.kv.adaptive_retry = false;
  const RunReport r = run_cluster(c);
  EXPECT_TRUE(r.all_ok()) << r.summary();
  EXPECT_EQ(r.kv_ops, 6u * 8u);
  EXPECT_GT(r.kv_retries, 0u) << "deadline below commit latency must retry";
  EXPECT_GT(r.kv_duplicates, 0u)
      << "retries racing their originals must produce suppressed duplicates";
  // THE invariant: duplicates in the log, yet effective applies == ops.
  EXPECT_EQ(total_shard_ops(r), r.kv_ops) << r.summary();
}

TEST(KvCluster, ClientRetryAcrossLeaderCrashExactlyOnce) {
  // The leader dies mid-workload with commands queued and slots open. Ω
  // hands off; clients whose commands died with p1's queue time out and
  // re-submit to the new leader; commands that were already proposed may
  // ALSO be re-proposed by the hand-off — the duplicate path. Every correct
  // replica must converge to one store, and every op must apply once.
  ClusterConfig c = kv_config(Algorithm::kFastPaxos, 3, 0, 2, 6, 8);
  c.kv.retry_timeout = 24;
  // A tight pipeline (1 command per slot, 2 slots in flight) keeps commands
  // queued at the leader, so the crash reliably strands some unproposed.
  c.kv.batch = 1;
  c.kv.window = 2;
  c.faults.process_crashes[1] = 7;  // mid-stream, slots in flight + queued
  const RunReport r = run_cluster(c);
  EXPECT_TRUE(r.agreement) << r.summary();
  EXPECT_TRUE(r.termination) << r.summary();
  EXPECT_TRUE(r.validity) << r.summary();
  EXPECT_EQ(r.kv_ops, 6u * 8u) << "every client op must complete";
  EXPECT_EQ(total_shard_ops(r), r.kv_ops)
      << "a command must not apply twice across the crash: " << r.summary();
  EXPECT_GT(r.kv_retries, 0u)
      << "ops stranded in the dead leader's queue must have retried";
}

TEST(KvCluster, RetryStormAcrossLeaderCrashStillExactlyOnce) {
  // Both fault axes at once: aggressive deadlines AND a mid-stream leader
  // crash. Duplicates come from both the client and the hand-off path.
  ClusterConfig c = kv_config(Algorithm::kFastPaxos, 3, 0, 2, 6, 8);
  c.kv.retry_timeout = 3;
  c.kv.adaptive_retry = false;  // see AggressiveRetriesStayExactlyOnce
  c.faults.process_crashes[1] = 9;
  const RunReport r = run_cluster(c);
  EXPECT_TRUE(r.agreement) << r.summary();
  EXPECT_TRUE(r.termination) << r.summary();
  EXPECT_EQ(r.kv_ops, 6u * 8u);
  EXPECT_GT(r.kv_duplicates, 0u);
  EXPECT_EQ(total_shard_ops(r), r.kv_ops) << r.summary();
}

// ---------------------------------------------------------------------------
// Crash-and-rejoin: snapshots, compaction, peer catch-up.
// ---------------------------------------------------------------------------

TEST(KvCluster, CrashAndRejoinConvergesExactlyOnce) {
  // The acceptance run for recovery: p1 crashes mid-workload, the shards
  // move on (snapshotting + truncating as they go), and p1 rejoins with
  // wiped state. By quiescence the rejoined replica's store hash must match
  // the survivors' on every shard (checked by the harness agreement
  // invariant, which includes rejoined processes), compaction must actually
  // have dropped slots, and the global exactly-once sum must hold across
  // the restart.
  ClusterConfig c = kv_config(Algorithm::kFastPaxos, 3, 0, 2, 6, 8);
  c.kv.retry_timeout = 24;
  c.kv.batch = 1;
  c.kv.window = 2;
  c.kv.snapshot_interval = 4;
  c.faults.process_crashes[1] = 7;  // mid-stream, slots in flight + queued
  c.faults.process_rejoins[1] = 600;
  const RunReport r = run_cluster(c);
  EXPECT_TRUE(r.all_ok()) << r.summary();
  EXPECT_EQ(r.kv_ops, 6u * 8u) << "every client op must complete";
  EXPECT_EQ(total_shard_ops(r), r.kv_ops)
      << "effective applies must equal completed client ops across the "
         "restart: "
      << r.summary();
  EXPECT_GT(r.snapshots_taken, 0u) << r.summary();
  EXPECT_GE(r.snapshots_installed, 1u) << r.summary();
  EXPECT_GT(r.slots_truncated, 0u) << r.summary();
  EXPECT_GT(r.catchup_bytes, 0u) << r.summary();
  EXPECT_EQ(r.processes[0].rejoined_at, 600u);
  // The per-process fingerprint rows must agree shard by shard (same slots,
  // same hashes) — including the rejoined process's row.
  EXPECT_EQ(r.processes[0].decision, r.processes[1].decision) << r.summary();
  EXPECT_EQ(r.processes[1].decision, r.processes[2].decision) << r.summary();
}

TEST(KvCluster, DuplicateRetryAcrossShardRestartStaysExactlyOnce) {
  // Sharpen the duplicate path across a restart: aggressive fixed deadlines
  // make clients re-submit constantly, and the rejoined incarnation's
  // restored session table must keep suppressing retries of ops it applied
  // in its previous life.
  ClusterConfig c = kv_config(Algorithm::kFastPaxos, 3, 0, 2, 6, 8);
  c.kv.retry_timeout = 3;
  c.kv.adaptive_retry = false;
  c.kv.snapshot_interval = 4;
  c.faults.process_crashes[1] = 9;
  c.faults.process_rejoins[1] = 500;
  const RunReport r = run_cluster(c);
  EXPECT_TRUE(r.agreement) << r.summary();
  EXPECT_TRUE(r.termination) << r.summary();
  EXPECT_TRUE(r.validity) << r.summary();
  EXPECT_EQ(r.kv_ops, 6u * 8u);
  EXPECT_GT(r.kv_duplicates, 0u);
  EXPECT_EQ(total_shard_ops(r), r.kv_ops) << r.summary();
  EXPECT_GE(r.snapshots_installed, 1u) << r.summary();
}

// ---------------------------------------------------------------------------
// Byzantine shards (FastRobust engine, fan-out submission).
// ---------------------------------------------------------------------------

TEST(KvCluster, FastRobustShardHonestRunCommitsFast) {
  const RunReport r =
      run_cluster(kv_config(Algorithm::kFastRobust, 3, 3, 1, 2, 3));
  EXPECT_TRUE(r.all_ok()) << r.summary();
  EXPECT_EQ(r.kv_ops, 2u * 3u);
  EXPECT_EQ(total_shard_ops(r), r.kv_ops);
  EXPECT_GT(r.fast_slots, 0u) << "honest synchronous shard should stay on "
                                 "the 2-delay Cheap Quorum path";
}

TEST(KvCluster, ByzantineShardCannotForkReplies) {
  // A Byzantine Cheap Quorum leader plants different signed values on
  // different memories of shard 0 and goes silent. The engine's backup path
  // must keep every correct replica's store and session table identical —
  // no client may observe a forked reply — and every op still completes.
  ClusterConfig c = kv_config(Algorithm::kFastRobust, 3, 3, 1, 2, 3);
  c.faults.byzantine[1] = ByzantineStrategy::kCqLeaderEquivocate;
  c.horizon = 200000;
  const RunReport r = run_cluster(c);
  EXPECT_TRUE(r.agreement)
      << "correct replicas' stores/sessions diverged: " << r.summary();
  EXPECT_TRUE(r.termination) << r.summary();
  EXPECT_EQ(r.kv_ops, 2u * 3u) << "every client op must still complete";
  EXPECT_EQ(total_shard_ops(r), r.kv_ops)
      << "fork attempt must not double-apply: " << r.summary();
}

// ---------------------------------------------------------------------------
// Session hijack (client-signed commands end to end).
// ---------------------------------------------------------------------------

TEST(KvCluster, SignedCommandsStopSessionHijack) {
  // The session-hijack attack: a Byzantine Cheap Quorum leader wins shard
  // 0's slot 0 honestly (unanimous fast path), but the decided payload is a
  // batch of two well-formed forged commands under client 1's session with
  // sky-high seqs — one unsigned, one validly signed under the attacker's
  // own identity. With client signing on, both must be rejected before the
  // session lookup: zero hijacks, every victim retry observes its own
  // outcome, the exactly-once rollup holds, and both forgeries land in
  // kv_forged.
  ClusterConfig c = kv_config(Algorithm::kFastRobust, 3, 3, 1, 2, 3);
  c.faults.byzantine[1] = ByzantineStrategy::kForgeClientCommands;
  c.kv.sign_commands = true;
  c.horizon = 200000;
  const RunReport r = run_cluster(c);
  EXPECT_TRUE(r.all_ok()) << r.summary();
  EXPECT_EQ(r.kv_forged, 2u)
      << "both forged commands must be counted, not applied: " << r.summary();
  EXPECT_EQ(r.kv_ops, 2u * 3u) << "every client op must still complete";
  EXPECT_EQ(total_shard_ops(r), r.kv_ops)
      << "forgeries must not reach any session: " << r.summary();
}

TEST(KvCluster, UnsignedModeIsHijackableTheVulnerabilityIsReal) {
  // Contrast run: the identical attack with signing off. The forged
  // commands apply, client 1's session fast-forwards past the forged seqs,
  // and every real op of the victim deduplicates against the attacker's
  // writes — the exactly-once rollup breaks (validity fails). This pins
  // that the scenario actually exercises the hole the tentpole closes.
  ClusterConfig c = kv_config(Algorithm::kFastRobust, 3, 3, 1, 2, 3);
  c.faults.byzantine[1] = ByzantineStrategy::kForgeClientCommands;
  c.kv.sign_commands = false;
  c.horizon = 200000;
  const RunReport r = run_cluster(c);
  EXPECT_TRUE(r.agreement)
      << "replicas stay in agreement — that is what makes the hijack "
         "invisible to the consensus layer: "
      << r.summary();
  EXPECT_EQ(r.kv_forged, 0u) << "nothing verifies, nothing counts";
  EXPECT_FALSE(r.validity)
      << "with signing off the victim's session must be hijacked "
         "(effective applies != completed ops): "
      << r.summary();
}

TEST(KvCluster, SignedCommandsSurviveLiveResharding) {
  // Signatures bind the target shard's log, so a client bounced by a
  // mid-migration seal (or re-routed after the table flips) must re-sign
  // for the new group — otherwise its own retries would verify as forged
  // at the destination and the op would never complete. Run a split under
  // a zipfian signed workload: every op still completes exactly once,
  // bounces prove the re-route path actually re-signed, and nothing
  // legitimate lands in kv_forged.
  ClusterConfig c = kv_config(Algorithm::kFastPaxos, 3, 0, /*shards=*/1,
                              /*clients=*/8, /*ops=*/24);
  c.kv.dist = kv::KeyDist::kZipfian;
  c.kv.sign_commands = true;
  c.kv.reconfig.push_back({40, reconfig::ChangeKind::kSplit, 0, 1});
  const RunReport r = run_cluster(c);
  EXPECT_TRUE(r.all_ok()) << r.summary();
  EXPECT_EQ(r.kv_ops, 8u * 24u) << "every signed op must complete";
  EXPECT_EQ(total_shard_ops(r), r.kv_ops)
      << "exactly-once must hold across the epoch flip: " << r.summary();
  EXPECT_EQ(r.kv_forged, 0u)
      << "re-routed retries must re-sign for the new group: " << r.summary();
  EXPECT_EQ(r.reconfig_epoch, 1u) << r.summary();
  EXPECT_GT(r.reconfig_keys_moved, 0u) << r.summary();
  EXPECT_GT(r.reconfig_bounces, 0u)
      << "the split must actually bounce in-flight signed ops";
}

// ---------------------------------------------------------------------------
// Adaptive retry deadline (the slow-shard retry-storm regression).
// ---------------------------------------------------------------------------

TEST(KvCluster, SlowShardNoLongerRetryStormsWithAdaptiveDeadline) {
  // A FastRobust-backed shard commits an op in ~80+ time units — beyond the
  // default fixed deadline of 64, so the old Router re-submitted nearly
  // every operation every time (dedup kept it correct, but the log filled
  // with suppressed duplicates). The adaptive deadline observes the shard's
  // real latency after the cold-start misses and stops the storm.
  ClusterConfig fixed = kv_config(Algorithm::kFastRobust, 3, 3, 1, 2, 16);
  fixed.kv.adaptive_retry = false;
  ClusterConfig adaptive = fixed;
  adaptive.kv.adaptive_retry = true;
  const RunReport rf = run_cluster(fixed);
  const RunReport ra = run_cluster(adaptive);
  ASSERT_TRUE(rf.all_ok()) << rf.summary();
  ASSERT_TRUE(ra.all_ok()) << ra.summary();
  EXPECT_EQ(ra.kv_ops, 2u * 16u);
  EXPECT_EQ(total_shard_ops(ra), ra.kv_ops) << ra.summary();
  ASSERT_GT(rf.kv_op_p50, fixed.kv.retry_timeout)
      << "precondition: the shard must actually be slower than the fixed "
         "deadline, or neither mode storms: "
      << rf.summary();
  EXPECT_GT(rf.kv_retries, rf.kv_ops / 2)
      << "precondition: the fixed deadline must retry-storm: " << rf.summary();
  EXPECT_LT(ra.kv_retries * 4, rf.kv_retries)
      << "adaptive deadline must cut re-submissions by at least 4x\nfixed:    "
      << rf.summary() << "\nadaptive: " << ra.summary();
  EXPECT_LT(ra.kv_retries, ra.kv_ops / 2)
      << "most ops must complete without any retry: " << ra.summary();
}

TEST(KvCluster, AdaptiveDeadlineBacksOffExponentially) {
  // A leader crash strands queued commands (batch 1, window 2 — the
  // stranding shape ClientRetryAcrossLeaderCrashExactlyOnce establishes),
  // so re-submission is required for liveness and each stranded op sits
  // through the hand-off stall. With a fixed deadline the client hammers
  // at a constant rate for the whole stall; with backoff each successive
  // attempt waits twice as long, so the same stall costs strictly fewer
  // re-submissions.
  ClusterConfig fixed = kv_config(Algorithm::kFastPaxos, 3, 0, 1, 6, 8);
  fixed.kv.retry_timeout = 4;
  fixed.kv.batch = 1;  // 6 clients vs 2 slots in flight: commands queue at
  fixed.kv.window = 2;  // the leader, so the crash reliably strands some
  fixed.kv.adaptive_retry = false;
  fixed.faults.process_crashes[1] = 7;
  ClusterConfig adaptive = fixed;
  adaptive.kv.adaptive_retry = true;
  const RunReport rf = run_cluster(fixed);
  const RunReport ra = run_cluster(adaptive);
  for (const RunReport* r : {&rf, &ra}) {
    EXPECT_TRUE(r->agreement) << r->summary();
    EXPECT_TRUE(r->termination) << r->summary();
    EXPECT_EQ(r->kv_ops, 6u * 8u);
    EXPECT_EQ(total_shard_ops(*r), r->kv_ops) << r->summary();
    EXPECT_GT(r->kv_retries, 0u)
        << "stranded commands must force at least one retry: " << r->summary();
  }
  EXPECT_LT(ra.kv_retries, rf.kv_retries)
      << "backoff must re-submit less over the same stall\nfixed:    "
      << rf.summary() << "\nadaptive: " << ra.summary();
}

}  // namespace
}  // namespace mnm::harness
