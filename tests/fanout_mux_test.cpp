// Tests for the quorum fan-out (sim::Fanout), one-shot futures
// (sim::OneShot) and the transport multiplexer — the plumbing under every
// "wait for m − fM of the memories" step and Fast & Robust's two
// conversations over one trusted transport.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/core/transport.hpp"
#include "src/core/transport_mux.hpp"
#include "src/net/network.hpp"
#include "src/sim/executor.hpp"
#include "src/sim/fanout.hpp"
#include "src/sim/oneshot.hpp"

namespace mnm::sim {
namespace {

using util::to_bytes;
using util::to_string;

Task<int> delayed_value(Executor* exec, Time delay, int value) {
  co_await exec->sleep(delay);
  co_return value;
}

Task<int> never(Executor* exec) {
  co_await OneShot<int>(*exec).wait();  // never fulfilled
  co_return -1;
}

TEST(Fanout, CollectsFirstKInCompletionOrder) {
  Executor exec;
  auto fanout = std::make_shared<Fanout<int>>(exec);
  fanout->add(0, delayed_value(&exec, 30, 100));
  fanout->add(1, delayed_value(&exec, 10, 101));
  fanout->add(2, delayed_value(&exec, 20, 102));

  std::vector<std::pair<std::size_t, int>> got;
  exec.spawn([](std::shared_ptr<Fanout<int>> f,
                std::vector<std::pair<std::size_t, int>>* out) -> Task<void> {
    *out = co_await f->collect(2);
  }(fanout, &got));
  exec.run();
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0], (std::pair<std::size_t, int>{1, 101}));
  EXPECT_EQ(got[1], (std::pair<std::size_t, int>{2, 102}));
  EXPECT_EQ(exec.now(), 30u);  // straggler still ran to completion
}

TEST(Fanout, QuorumProceedsDespiteHangingMember) {
  // The m − fM pattern: one "memory" never answers; collect(majority) still
  // completes, and teardown reaps the hung task without issue.
  Executor exec;
  auto fanout = std::make_shared<Fanout<int>>(exec);
  fanout->add(0, delayed_value(&exec, 5, 0));
  fanout->add(1, never(&exec));
  fanout->add(2, delayed_value(&exec, 7, 2));

  std::size_t got = 0;
  exec.spawn([](std::shared_ptr<Fanout<int>> f, std::size_t* n) -> Task<void> {
    auto v = co_await f->collect(2);
    *n = v.size();
  }(fanout, &got));
  exec.run(1000);
  EXPECT_EQ(got, 2u);
}

TEST(Fanout, CollectUntilGivesUpAtDeadline) {
  Executor exec;
  auto fanout = std::make_shared<Fanout<int>>(exec);
  fanout->add(0, delayed_value(&exec, 5, 0));
  fanout->add(1, never(&exec));

  std::size_t got = 99;
  exec.spawn([](std::shared_ptr<Fanout<int>> f, std::size_t* n) -> Task<void> {
    auto v = co_await f->collect_until(2, /*deadline=*/50);
    *n = v.size();
  }(fanout, &got));
  exec.run(1000);
  EXPECT_EQ(got, 1u);  // only the live one arrived
  EXPECT_GE(exec.now(), 50u);
}

TEST(Fanout, RepeatedCollectDrainsStragglers) {
  Executor exec;
  auto fanout = std::make_shared<Fanout<int>>(exec);
  for (std::size_t i = 0; i < 4; ++i) {
    fanout->add(i, delayed_value(&exec, (i + 1) * 10, static_cast<int>(i)));
  }
  std::vector<std::size_t> sizes;
  exec.spawn([](std::shared_ptr<Fanout<int>> f,
                std::vector<std::size_t>* sizes) -> Task<void> {
    sizes->push_back((co_await f->collect(2)).size());
    sizes->push_back((co_await f->collect(2)).size());  // the remaining two
  }(fanout, &sizes));
  exec.run();
  EXPECT_EQ(sizes, (std::vector<std::size_t>{2, 2}));
}

TEST(OneShot, FulfillBeforeWaitReturnsImmediately) {
  Executor exec;
  OneShot<int> shot(exec);
  shot.fulfill(7);
  int got = 0;
  Time at = 99;
  exec.spawn([](Executor* e, OneShot<int> s, int* got, Time* at) -> Task<void> {
    *got = co_await s.wait();
    *at = e->now();
  }(&exec, shot, &got, &at));
  exec.run();
  EXPECT_EQ(got, 7);
  EXPECT_EQ(at, 0u);
}

TEST(OneShot, SecondFulfillIgnored) {
  Executor exec;
  OneShot<int> shot(exec);
  shot.fulfill(1);
  shot.fulfill(2);
  int got = 0;
  exec.spawn([](OneShot<int> s, int* got) -> Task<void> {
    *got = co_await s.wait();
  }(shot, &got));
  exec.run();
  EXPECT_EQ(got, 1);
}

}  // namespace
}  // namespace mnm::sim

namespace mnm::core {
namespace {

using sim::Executor;
using sim::Task;
using util::to_bytes;
using util::to_string;

TEST(TransportMux, RoutesByTag) {
  Executor exec;
  net::Network network(exec, 2);
  NetTransport base1(exec, network, 1, 50);
  NetTransport base2(exec, network, 2, 50);
  TransportMux mux1(exec, base1);
  TransportMux mux2(exec, base2);
  Transport& paxos2 = mux2.sub(kMuxPaxos);
  Transport& setup2 = mux2.sub(kMuxSetup);
  mux1.start();
  mux2.start();

  mux1.sub(kMuxPaxos).send(2, to_bytes("ballot"));
  mux1.sub(kMuxSetup).send(2, to_bytes("input"));

  std::string got_paxos, got_setup;
  exec.spawn([](Transport* t, std::string* out) -> Task<void> {
    TMsg m = co_await t->incoming().recv();
    *out = to_string(m.payload);
  }(&paxos2, &got_paxos));
  exec.spawn([](Transport* t, std::string* out) -> Task<void> {
    TMsg m = co_await t->incoming().recv();
    *out = to_string(m.payload);
  }(&setup2, &got_setup));
  exec.run(100);
  EXPECT_EQ(got_paxos, "ballot");  // tag stripped
  EXPECT_EQ(got_setup, "input");
}

TEST(TransportMux, UnknownTagsDropped) {
  Executor exec;
  net::Network network(exec, 2);
  NetTransport base1(exec, network, 1, 50);
  NetTransport base2(exec, network, 2, 50);
  TransportMux mux2(exec, base2);
  Transport& paxos2 = mux2.sub(kMuxPaxos);
  mux2.start();

  base1.send(2, TransportMux::frame(0x7F, to_bytes("mystery")));
  base1.send(2, {});  // empty payload
  base1.send(2, TransportMux::frame(kMuxPaxos, to_bytes("real")));

  std::string got;
  exec.spawn([](Transport* t, std::string* out) -> Task<void> {
    TMsg m = co_await t->incoming().recv();
    *out = to_string(m.payload);
  }(&paxos2, &got));
  exec.run(100);
  EXPECT_EQ(got, "real");
  EXPECT_TRUE(paxos2.incoming().empty());
}

TEST(TransportMux, SendAllFramesEveryCopy) {
  Executor exec;
  net::Network network(exec, 3);
  std::vector<std::unique_ptr<NetTransport>> bases;
  std::vector<std::unique_ptr<TransportMux>> muxes;
  for (ProcessId p : all_processes(3)) {
    bases.push_back(std::make_unique<NetTransport>(exec, network, p, 50));
    muxes.push_back(std::make_unique<TransportMux>(exec, *bases.back()));
    (void)muxes.back()->sub(kMuxSetup);
    muxes.back()->start();
  }
  muxes[0]->sub(kMuxSetup).send_all(to_bytes("hello"));
  int received = 0;
  for (ProcessId p : all_processes(3)) {
    exec.spawn([](Transport* t, int* n) -> Task<void> {
      (void)co_await t->incoming().recv();
      ++*n;
    }(&muxes[p - 1]->sub(kMuxSetup), &received));
  }
  exec.run(100);
  EXPECT_EQ(received, 3);
}

}  // namespace
}  // namespace mnm::core
