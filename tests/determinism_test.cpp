// Fixed-seed determinism of whole-cluster runs.
//
// The event-loop refactor (pooled events, inline callbacks, opt-in cancel
// cells) must preserve the executor's (time, seq) ordering contract exactly:
// the same seed has to produce the same decisions, the same decision times,
// and the same operation counts, run after run. These tests pin that for
// every algorithm, including runs with faults.

#include <gtest/gtest.h>

#include <vector>

#include "src/harness/cluster.hpp"

namespace mnm::harness {
namespace {

/// Everything observable a run produces, flattened for equality checks.
struct Fingerprint {
  std::vector<ProcessId> ids;
  std::vector<bool> decided;
  std::vector<std::string> decisions;
  std::vector<sim::Time> decided_at;
  std::optional<std::string> value;
  sim::Time first_delay = 0;
  std::uint64_t msgs = 0, reads = 0, writes = 0, perms = 0, sigs = 0, verifs = 0;
  // SMR mode: applied logs (in `decisions`, joined) plus the multi-slot
  // metrics, so a reordered pipeline cannot hide behind equal counts.
  Slot slots = 0;
  std::uint64_t cmds = 0;
  sim::Time p50 = 0, p99 = 0, p999 = 0;
  // Queue-wait percentiles and the integer occupancy sums: a pipeline whose
  // proposal scheduling drifted cannot hide behind equal commit times.
  sim::Time qw50 = 0, qw99 = 0;
  std::uint64_t occ_slots = 0, occ_limit = 0;
  // Auto-tuning: the per-epoch adaptation trajectory itself (window/batch
  // decisions and the epoch count), byte-for-byte. Empty when tuning is
  // off, so fixed-config fingerprints are unchanged by the tuner's
  // existence.
  std::uint64_t tuner_epochs = 0;
  std::string tuner_trajectory;
  // KV mode: per-shard effective op counts, the combined store/session
  // hash, client-visible latency percentiles, and the retry/dedup counters
  // — a sharded run whose partitioning, dedup decisions or reply timing
  // drifted cannot fingerprint equal.
  std::uint64_t kv_ops = 0, kv_retries = 0, kv_dups = 0, kv_forged = 0,
                kv_hash = 0;
  std::vector<std::uint64_t> kv_shard_ops;
  sim::Time kv_p50 = 0, kv_p99 = 0, kv_p999 = 0;
  // Reconfiguration: the decided epoch history and the migration traffic it
  // carried — the exact simulated times the routing table flipped, the
  // pairs each INSTALL moved, every WrongEpoch bounce a client absorbed. A
  // resharding run whose seal/drain/install interleaving drifted cannot
  // fingerprint equal. All zero/empty for static (no-plan) runs.
  std::uint64_t rc_epoch = 0, rc_migrations = 0, rc_keys_moved = 0,
                rc_proposals = 0, rc_bounces = 0;
  std::vector<sim::Time> rc_flips;
  // Recovery: snapshot cadence, compaction and catch-up accounting, plus the
  // rejoin timestamps — a crash-and-rejoin run whose recovery trajectory
  // (when snapshots were cut, how many slots were truncated, how many bytes
  // the rejoiner fetched) drifted cannot fingerprint equal.
  std::uint64_t snaps_taken = 0, snaps_installed = 0, truncated = 0,
                catchup_bytes = 0;
  std::vector<sim::Time> rejoined_at;
  // Transactions: commit/abort/conflict/recovery counts, the conserved
  // balance sum, residual locks (the lock-table *contents* fold into
  // kv_hash), and committed-transfer latency percentiles — a transactional
  // run whose 2PC interleaving, no-wait conflict outcomes or crash-recovery
  // replay drifted cannot fingerprint equal. All zero for plain runs.
  std::uint64_t txns = 0, txn_commits = 0, txn_aborts = 0, txn_conflicts = 0,
                txn_recoveries = 0, txn_locks = 0;
  std::int64_t txn_balance = 0;
  sim::Time txn_p50 = 0, txn_p999 = 0;
  // Byzantine wire path: t-send suffix-decode accounting. Pinning these says
  // the decode-cost optimization is itself deterministic — the same seed
  // skips the same prefixes — without perturbing the (time, seq) schedule
  // the fields above capture.
  std::uint64_t tsend_deliveries = 0, entries_decoded = 0, entries_skipped = 0;

  bool operator==(const Fingerprint&) const = default;
};

Fingerprint fingerprint(const RunReport& r) {
  Fingerprint f;
  for (const auto& p : r.processes) {
    f.ids.push_back(p.id);
    f.decided.push_back(p.decided);
    f.decisions.push_back(p.decision);
    f.decided_at.push_back(p.decided_at);
    f.rejoined_at.push_back(p.rejoined_at);
  }
  f.value = r.decided_value;
  f.first_delay = r.first_decision_delay;
  f.msgs = r.messages_sent;
  f.reads = r.mem_reads;
  f.writes = r.mem_writes;
  f.perms = r.permission_changes;
  f.sigs = r.signatures;
  f.verifs = r.verifications;
  f.slots = r.slots_applied;
  f.cmds = r.commands_applied;
  f.p50 = r.commit_p50;
  f.p99 = r.commit_p99;
  f.p999 = r.commit_p999;
  f.qw50 = r.queue_wait_p50;
  f.qw99 = r.queue_wait_p99;
  f.occ_slots = r.occupancy_slots;
  f.occ_limit = r.occupancy_limit;
  f.tuner_epochs = r.tuner_epochs;
  f.tuner_trajectory = r.tuner_trajectory;
  f.kv_ops = r.kv_ops;
  f.kv_retries = r.kv_retries;
  f.kv_dups = r.kv_duplicates;
  f.kv_forged = r.kv_forged;
  f.kv_hash = r.kv_store_hash;
  f.kv_shard_ops = r.kv_shard_ops;
  f.kv_p50 = r.kv_op_p50;
  f.kv_p99 = r.kv_op_p99;
  f.kv_p999 = r.kv_op_p999;
  f.rc_epoch = r.reconfig_epoch;
  f.rc_migrations = r.reconfig_migrations;
  f.rc_keys_moved = r.reconfig_keys_moved;
  f.rc_proposals = r.reconfig_proposals;
  f.rc_bounces = r.reconfig_bounces;
  f.rc_flips = r.reconfig_flip_times;
  f.snaps_taken = r.snapshots_taken;
  f.snaps_installed = r.snapshots_installed;
  f.truncated = r.slots_truncated;
  f.catchup_bytes = r.catchup_bytes;
  f.txns = r.kv_txns;
  f.txn_commits = r.kv_txn_commits;
  f.txn_aborts = r.kv_txn_aborts;
  f.txn_conflicts = r.kv_txn_conflicts;
  f.txn_recoveries = r.kv_txn_recoveries;
  f.txn_locks = r.kv_locks_held;
  f.txn_balance = r.kv_txn_balance;
  f.txn_p50 = r.kv_txn_commit_p50;
  f.txn_p999 = r.kv_txn_commit_p999;
  f.tsend_deliveries = r.tsend_deliveries;
  f.entries_decoded = r.history_entries_decoded;
  f.entries_skipped = r.history_entries_skipped;
  return f;
}

void expect_deterministic(ClusterConfig cfg, bool check_ok = true) {
  const RunReport a = run_cluster(cfg);
  const RunReport b = run_cluster(cfg);
  if (check_ok) {
    EXPECT_TRUE(a.all_ok()) << a.summary();
  }
  EXPECT_EQ(fingerprint(a), fingerprint(b))
      << "run 1: " << a.summary() << "\nrun 2: " << b.summary();
}

TEST(Determinism, FastPaxosSameSeedSameRun) {
  ClusterConfig c;
  c.algo = Algorithm::kFastPaxos;
  c.n = 3;
  c.m = 0;
  c.seed = 42;
  expect_deterministic(c);
}

TEST(Determinism, ProtectedMemoryPaxosSameSeedSameRun) {
  ClusterConfig c;
  c.algo = Algorithm::kProtectedMemoryPaxos;
  c.n = 2;
  c.m = 3;
  c.seed = 42;
  expect_deterministic(c);
}

TEST(Determinism, AlignedPaxosSameSeedSameRun) {
  ClusterConfig c;
  c.algo = Algorithm::kAlignedPaxos;
  c.n = 3;
  c.m = 3;
  c.seed = 42;
  expect_deterministic(c);
}

TEST(Determinism, FastRobustSameSeedSameRun) {
  ClusterConfig c;
  c.algo = Algorithm::kFastRobust;
  c.n = 3;
  c.m = 3;
  c.seed = 42;
  expect_deterministic(c);
}

TEST(Determinism, FastRobustWithByzantineLeaderSameSeedSameRun) {
  ClusterConfig c;
  c.algo = Algorithm::kFastRobust;
  c.n = 3;
  c.m = 3;
  c.seed = 7;
  c.faults.byzantine[1] = ByzantineStrategy::kCqLeaderEquivocate;
  // This attack config trips the harness's (strict) validity accounting in
  // the seed too; what this test pins is reproducibility under faults.
  expect_deterministic(c, /*check_ok=*/false);
}

TEST(Determinism, PaxosWithCrashSameSeedSameRun) {
  ClusterConfig c;
  c.algo = Algorithm::kPaxos;
  c.n = 3;
  c.m = 0;
  c.seed = 11;
  c.faults.process_crashes[2] = 5;
  expect_deterministic(c);
}

// --- SMR mode: the pipelined log is deterministic too. ---

TEST(Determinism, SmrFastPaxosPipelineSameSeedSameRun) {
  ClusterConfig c;
  c.algo = Algorithm::kFastPaxos;
  c.n = 3;
  c.m = 0;
  c.seed = 42;
  c.smr.enabled = true;
  c.smr.commands = 24;
  c.smr.batch = 2;
  c.smr.window = 4;
  expect_deterministic(c);
}

TEST(Determinism, SmrLeaderCrashMidWindowSameSeedSameRun) {
  ClusterConfig c;
  c.algo = Algorithm::kFastPaxos;
  c.n = 3;
  c.m = 0;
  c.seed = 7;
  c.smr.enabled = true;
  c.smr.commands = 24;
  c.smr.batch = 2;
  c.smr.window = 4;
  c.faults.process_crashes[1] = 6;
  expect_deterministic(c);
}

TEST(Determinism, SmrFastRobustWithByzantineLeaderSameSeedSameRun) {
  ClusterConfig c;
  c.algo = Algorithm::kFastRobust;
  c.n = 3;
  c.m = 3;
  c.seed = 9;
  c.smr.enabled = true;
  c.smr.commands = 4;
  c.smr.batch = 2;
  c.smr.window = 2;
  c.faults.byzantine[1] = ByzantineStrategy::kCqLeaderEquivocate;
  // As in the single-shot Byzantine pin: what matters is reproducibility.
  expect_deterministic(c, /*check_ok=*/false);
}

TEST(Determinism, SmrFastRobustBackupPathSameSeedSameRun) {
  // Backup-heavy schedule (Byzantine CQ leader + impatient followers): every
  // slot runs the t-send path, so this fingerprint — which includes the
  // suffix-decode counters — pins that the decode optimization changes cost
  // accounting deterministically and leaves the (time, seq) schedule alone.
  ClusterConfig c;
  c.algo = Algorithm::kFastRobust;
  c.n = 3;
  c.m = 3;
  c.seed = 13;
  c.cq_timeout = 10;
  c.smr.enabled = true;
  c.smr.commands = 6;
  c.smr.batch = 2;
  c.smr.window = 2;
  c.faults.byzantine[1] = ByzantineStrategy::kCqLeaderEquivocate;
  const RunReport a = run_cluster(c);
  EXPECT_GT(a.tsend_deliveries, 0u) << a.summary();
  EXPECT_GT(a.history_entries_skipped, 0u) << a.summary();
  expect_deterministic(c, /*check_ok=*/false);
}

// --- Crash-and-rejoin: the whole recovery trajectory is deterministic. ---

TEST(Determinism, SmrCrashAndRejoinSameSeedSameRun) {
  // A rejoining replica replays the entire recovery pipeline — snapshot
  // election, catch-up request/response, log truncation — on the simulated
  // schedule. The fingerprint pins the recovery counters and the rejoin
  // timestamps, so a drifting catch-up (different snapshot slot, different
  // fetched byte count) cannot hide behind an eventually-equal log.
  ClusterConfig c;
  c.algo = Algorithm::kFastPaxos;
  c.n = 3;
  c.m = 0;
  c.seed = 7;
  c.smr.enabled = true;
  c.smr.commands = 24;
  c.smr.batch = 2;
  c.smr.window = 4;
  c.smr.snapshot_interval = 4;
  c.faults.process_crashes[1] = 6;
  c.faults.process_rejoins[1] = 400;
  const RunReport a = run_cluster(c);
  EXPECT_GT(a.snapshots_installed, 0u) << a.summary();
  EXPECT_GT(a.slots_truncated, 0u) << a.summary();
  EXPECT_GT(a.catchup_bytes, 0u) << a.summary();
  expect_deterministic(c);
}

TEST(Determinism, KvCrashAndRejoinRetryStormSameSeedSameRun) {
  // Rejoin under the adversarial KV schedule: client retries racing the
  // restart, session dedup across the snapshot boundary, shard routers
  // rebinding to the new incarnation. All of it must replay byte-for-byte.
  ClusterConfig c;
  c.algo = Algorithm::kFastPaxos;
  c.n = 3;
  c.m = 0;
  c.seed = 7;
  c.kv.enabled = true;
  c.kv.shards = 2;
  c.kv.clients = 6;
  c.kv.ops_per_client = 8;
  c.kv.batch = 1;
  c.kv.window = 2;
  c.kv.retry_timeout = 24;
  c.kv.snapshot_interval = 4;
  c.faults.process_crashes[1] = 7;
  c.faults.process_rejoins[1] = 600;
  const RunReport a = run_cluster(c);
  EXPECT_GT(a.snapshots_installed, 0u) << a.summary();
  EXPECT_GT(a.catchup_bytes, 0u) << a.summary();
  expect_deterministic(c);
}

TEST(Determinism, KvSignedCommandsSameSeedSameRun) {
  // Client-signed commands: every session signs, every replica verifies
  // before the session lookup. HMAC keys derive from the seeded keystore,
  // so the whole signed run — wires, verification counts, store hashes —
  // must replay byte-for-byte. A Byzantine forger is in the mix so the
  // kv_forged counter (part of the fingerprint) is exercised too.
  ClusterConfig c;
  c.algo = Algorithm::kFastRobust;
  c.n = 3;
  c.m = 3;
  c.seed = 13;
  c.kv.enabled = true;
  c.kv.shards = 1;
  c.kv.clients = 2;
  c.kv.ops_per_client = 3;
  c.kv.sign_commands = true;
  c.faults.byzantine[1] = ByzantineStrategy::kForgeClientCommands;
  c.horizon = 200000;
  const RunReport a = run_cluster(c);
  EXPECT_EQ(a.kv_forged, 2u) << a.summary();
  expect_deterministic(c);
}

TEST(Determinism, KvSplitDuringZipfianSameSeedSameRun) {
  // Live resharding mid-workload: the config group decides a split while
  // zipfian clients hammer the source shard, the Migrator seals, drains and
  // installs, and in-flight ops bounce with WrongEpoch and re-route. The
  // whole interleaving — flip times, keys moved, every bounce — must replay
  // byte-for-byte from the same seed.
  ClusterConfig c;
  c.algo = Algorithm::kFastPaxos;
  c.n = 3;
  c.m = 0;
  c.seed = 11;
  c.kv.enabled = true;
  c.kv.shards = 1;
  c.kv.clients = 8;
  c.kv.ops_per_client = 24;
  c.kv.dist = kv::KeyDist::kZipfian;
  c.kv.reconfig.push_back({40, reconfig::ChangeKind::kSplit, 0, 1});
  const RunReport a = run_cluster(c);
  EXPECT_EQ(a.reconfig_epoch, 1u) << a.summary();
  EXPECT_GT(a.reconfig_keys_moved, 0u) << a.summary();
  EXPECT_GT(a.reconfig_bounces, 0u) << a.summary();
  expect_deterministic(c);
}

// --- Auto-tuning: the adaptation trajectory is itself deterministic. ---

TEST(Determinism, SmrAutoTuneTrajectorySameSeedSameRun) {
  // The controller's per-epoch window/batch decisions ride on executor-time
  // signals only; a fixed seed must pin the whole trajectory (the
  // fingerprint compares it byte-for-byte), not just the final settings.
  ClusterConfig c;
  c.algo = Algorithm::kFastPaxos;
  c.n = 3;
  c.m = 0;
  c.seed = 42;
  c.smr.enabled = true;
  c.smr.commands = 96;
  c.smr.batch = 1;
  c.smr.window = 1;
  c.smr.auto_tune = true;
  const RunReport a = run_cluster(c);
  EXPECT_GT(a.tuner_epochs, 0u) << a.summary();
  EXPECT_FALSE(a.tuner_trajectory.empty()) << a.summary();
  expect_deterministic(c);
}

TEST(Determinism, SmrAutoTuneUnderLeaderCrashSameSeedSameRun) {
  // Adaptation across a leader hand-off: the dead leader's tuner stops, the
  // new leader's adapts from scratch mid-run — all of it on the same
  // deterministic schedule.
  ClusterConfig c;
  c.algo = Algorithm::kFastPaxos;
  c.n = 3;
  c.m = 0;
  c.seed = 7;
  c.smr.enabled = true;
  c.smr.commands = 64;
  c.smr.batch = 2;
  c.smr.window = 2;
  c.smr.auto_tune = true;
  c.faults.process_crashes[1] = 6;
  const RunReport a = run_cluster(c);
  EXPECT_FALSE(a.tuner_trajectory.empty()) << a.summary();
  expect_deterministic(c);
}

TEST(Determinism, FixedConfigFingerprintUnchangedByTunerPlumbing) {
  // auto_tune=false must behave exactly as if the tuner did not exist:
  // no trajectory, no epochs — and the run fingerprints equal.
  ClusterConfig c;
  c.algo = Algorithm::kFastPaxos;
  c.n = 3;
  c.m = 0;
  c.seed = 42;
  c.smr.enabled = true;
  c.smr.commands = 24;
  c.smr.batch = 2;
  c.smr.window = 4;
  c.smr.auto_tune = false;
  const RunReport a = run_cluster(c);
  EXPECT_EQ(a.tuner_epochs, 0u);
  EXPECT_TRUE(a.tuner_trajectory.empty());
  expect_deterministic(c);
}

// --- KV mode: the sharded store inherits the determinism invariant. ---

TEST(Determinism, KvShardedZipfianSameSeedSameRun) {
  ClusterConfig c;
  c.algo = Algorithm::kFastPaxos;
  c.n = 3;
  c.m = 0;
  c.seed = 42;
  c.kv.enabled = true;
  c.kv.shards = 4;
  c.kv.clients = 8;
  c.kv.ops_per_client = 12;
  c.kv.mix = kv::Mix::kA;
  c.kv.dist = kv::KeyDist::kZipfian;
  const RunReport a = run_cluster(c);
  EXPECT_EQ(a.kv_shard_ops.size(), 4u) << a.summary();
  EXPECT_GT(a.kv_store_hash, 0u);
  expect_deterministic(c);
}

TEST(Determinism, KvRetryStormLeaderCrashSameSeedSameRun) {
  // The adversarial schedule: duplicates from client retries AND a leader
  // hand-off. The fingerprint pins that retry timing, dedup decisions and
  // reply delivery are all on the deterministic (time, seq) schedule.
  ClusterConfig c;
  c.algo = Algorithm::kFastPaxos;
  c.n = 3;
  c.m = 0;
  c.seed = 7;
  c.kv.enabled = true;
  c.kv.shards = 2;
  c.kv.clients = 6;
  c.kv.ops_per_client = 8;
  c.kv.batch = 1;
  c.kv.window = 2;
  c.kv.retry_timeout = 3;
  c.faults.process_crashes[1] = 9;
  const RunReport a = run_cluster(c);
  EXPECT_GT(a.kv_duplicates, 0u) << a.summary();
  expect_deterministic(c);
}

TEST(Determinism, KvAutoTuneWithAdaptiveRetrySameSeedSameRun) {
  // Everything adaptive at once: per-shard tuners moving window/batch, the
  // Router's flush-hold packing decisions, and latency-derived retry
  // deadlines. All signals are sim-time-derived, so the whole closed loop
  // must fingerprint identically run to run.
  ClusterConfig c;
  c.algo = Algorithm::kFastPaxos;
  c.n = 3;
  c.m = 0;
  c.seed = 21;
  c.kv.enabled = true;
  c.kv.shards = 2;
  c.kv.clients = 16;
  c.kv.ops_per_client = 12;
  c.kv.batch = 1;
  c.kv.window = 1;
  c.kv.auto_tune = true;
  c.kv.adaptive_retry = true;
  const RunReport a = run_cluster(c);
  EXPECT_GT(a.tuner_epochs, 0u) << a.summary();
  EXPECT_FALSE(a.tuner_trajectory.empty()) << a.summary();
  expect_deterministic(c);
}

TEST(Determinism, KvFastRobustShardSameSeedSameRun) {
  ClusterConfig c;
  c.algo = Algorithm::kFastRobust;
  c.n = 3;
  c.m = 3;
  c.seed = 9;
  c.kv.enabled = true;
  c.kv.shards = 1;
  c.kv.clients = 2;
  c.kv.ops_per_client = 3;
  expect_deterministic(c);
}

// --- Transactions: the 2PC mix and its crash recovery replay too. ---

TEST(Determinism, KvTxnZipfianContentionSameSeedSameRun) {
  // The transactional YCSB+T mix under account contention: prepares racing
  // across shards, no-wait conflicts deciding aborts, per-key decision
  // records releasing locks. The fingerprint folds the commit/abort split,
  // the conflict count and the lock-table state (via kv_hash), so a drifted
  // 2PC interleaving cannot hide behind equal op counts.
  ClusterConfig c;
  c.algo = Algorithm::kFastPaxos;
  c.n = 3;
  c.m = 0;
  c.seed = 17;
  c.kv.enabled = true;
  c.kv.shards = 3;
  c.kv.clients = 8;
  c.kv.ops_per_client = 16;
  c.kv.txn_fraction = 0.4;
  c.kv.accounts = 8;
  c.kv.txn_zipf_theta = 0.95;
  const RunReport a = run_cluster(c);
  EXPECT_GT(a.kv_txns, 0u) << a.summary();
  EXPECT_GT(a.kv_txn_aborts, 0u) << a.summary();
  expect_deterministic(c);
}

TEST(Determinism, KvTxnCoordinatorCrashRecoverySameSeedSameRun) {
  // Coordinator crash mid-prepare: client 1's first transfer stops after
  // one completed prepare (one lock held through the pause), then the
  // presumed-abort replay re-drives the stream under the original seqs.
  // The whole crash + recovery trajectory must replay byte-for-byte.
  ClusterConfig c;
  c.algo = Algorithm::kFastPaxos;
  c.n = 3;
  c.m = 0;
  c.seed = 19;
  c.kv.enabled = true;
  c.kv.shards = 2;
  c.kv.clients = 6;
  c.kv.ops_per_client = 12;
  c.kv.txn_fraction = 0.5;
  c.kv.txn_crash_client = 1;
  c.kv.txn_crash_txn = 1;
  c.kv.txn_crash_records = 1;
  c.kv.txn_crash_pause = 200;
  const RunReport a = run_cluster(c);
  EXPECT_EQ(a.kv_txn_recoveries, 1u) << a.summary();
  EXPECT_EQ(a.kv_locks_held, 0u) << a.summary();
  expect_deterministic(c);
}

TEST(Determinism, PlainKvFingerprintUnchangedByTxnPlumbing) {
  // txn_fraction = 0 must behave exactly as if the transaction subsystem
  // did not exist: no txn rng draws, no txn counters, no lock fold in the
  // store hash — and the run fingerprints equal.
  ClusterConfig c;
  c.algo = Algorithm::kFastPaxos;
  c.n = 3;
  c.m = 0;
  c.seed = 42;
  c.kv.enabled = true;
  c.kv.shards = 4;
  c.kv.clients = 8;
  c.kv.ops_per_client = 12;
  const RunReport a = run_cluster(c);
  EXPECT_EQ(a.kv_txns, 0u);
  EXPECT_EQ(a.kv_txn_balance, 0);
  EXPECT_EQ(a.kv_locks_held, 0u);
  expect_deterministic(c);
}

/// Different seeds may legitimately differ, but every seed must be
/// internally reproducible — a sweep catches order-dependent state leaking
/// between runs (e.g. a pool whose reuse pattern changed scheduling).
TEST(Determinism, SeedSweepIsReproducible) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    ClusterConfig c;
    c.algo = Algorithm::kFastPaxos;
    c.n = 3;
    c.m = 0;
    c.seed = seed;
    const RunReport a = run_cluster(c);
    const RunReport b = run_cluster(c);
    EXPECT_EQ(fingerprint(a), fingerprint(b)) << "seed " << seed;
  }
}

}  // namespace
}  // namespace mnm::harness
