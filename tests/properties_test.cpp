// Property sweeps (TEST_P): agreement / validity / termination over the
// cross-product of algorithms × cluster sizes × fault vectors × seeds.
// Every run is deterministic given its seed; a failure prints the exact
// configuration to reproduce it.

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <tuple>

#include "src/harness/cluster.hpp"
#include "src/sim/rng.hpp"

namespace mnm::harness {
namespace {

// ---------------------------------------------------------------------------
// Sweep 1: common-case correctness, all algorithms × sizes × seeds.
// ---------------------------------------------------------------------------

using CommonParam = std::tuple<Algorithm, int /*n*/, int /*m*/, int /*seed*/>;

class CommonSweep : public ::testing::TestWithParam<CommonParam> {};

TEST_P(CommonSweep, SafeAndLive) {
  const auto [algo, n, m, seed] = GetParam();
  ClusterConfig c;
  c.algo = algo;
  c.n = static_cast<std::size_t>(n);
  c.m = static_cast<std::size_t>(m);
  c.seed = static_cast<std::uint64_t>(seed);
  const RunReport r = run_cluster(c);
  EXPECT_TRUE(r.agreement) << algorithm_name(algo) << " " << r.summary();
  EXPECT_TRUE(r.validity) << algorithm_name(algo) << " " << r.summary();
  EXPECT_TRUE(r.termination) << algorithm_name(algo) << " " << r.summary();
}

std::string common_name(const ::testing::TestParamInfo<CommonParam>& info) {
  const auto [algo, n, m, seed] = info.param;
  std::ostringstream os;
  switch (algo) {
    case Algorithm::kPaxos: os << "Paxos"; break;
    case Algorithm::kFastPaxos: os << "FastPaxos"; break;
    case Algorithm::kDiskPaxos: os << "DiskPaxos"; break;
    case Algorithm::kProtectedMemoryPaxos: os << "PMP"; break;
    case Algorithm::kAlignedPaxos: os << "Aligned"; break;
    case Algorithm::kRobustBackup: os << "RobustBackup"; break;
    case Algorithm::kFastRobust: os << "FastRobust"; break;
  }
  os << "_n" << n << "_m" << m << "_s" << seed;
  return os.str();
}

INSTANTIATE_TEST_SUITE_P(
    MessageAlgos, CommonSweep,
    ::testing::Combine(::testing::Values(Algorithm::kPaxos, Algorithm::kFastPaxos),
                       ::testing::Values(3, 5, 7), ::testing::Values(0),
                       ::testing::Values(1, 2)),
    common_name);

INSTANTIATE_TEST_SUITE_P(
    MemoryAlgos, CommonSweep,
    ::testing::Combine(::testing::Values(Algorithm::kDiskPaxos,
                                         Algorithm::kProtectedMemoryPaxos),
                       ::testing::Values(2, 3), ::testing::Values(3, 5),
                       ::testing::Values(1, 2)),
    common_name);

INSTANTIATE_TEST_SUITE_P(
    CombinedAlgos, CommonSweep,
    ::testing::Combine(::testing::Values(Algorithm::kAlignedPaxos),
                       ::testing::Values(2, 3), ::testing::Values(3),
                       ::testing::Values(1, 2, 3)),
    common_name);

INSTANTIATE_TEST_SUITE_P(
    ByzantineAlgos, CommonSweep,
    ::testing::Combine(::testing::Values(Algorithm::kRobustBackup,
                                         Algorithm::kFastRobust),
                       ::testing::Values(3), ::testing::Values(3, 5),
                       ::testing::Values(1, 2)),
    common_name);

// ---------------------------------------------------------------------------
// Sweep 2: randomized crash schedules (crash count within each algorithm's
// bound, times drawn from the seed).
// ---------------------------------------------------------------------------

using CrashParam = std::tuple<Algorithm, int /*seed*/>;

class CrashSweep : public ::testing::TestWithParam<CrashParam> {};

TEST_P(CrashSweep, SafeAndLiveUnderCrashes) {
  const auto [algo, seed] = GetParam();
  sim::Rng rng(static_cast<std::uint64_t>(seed) * 7919 + 13);

  ClusterConfig c;
  c.algo = algo;
  c.seed = static_cast<std::uint64_t>(seed);
  // Shape: n and the crash budget depend on the resilience class.
  std::size_t max_proc_crashes = 0;
  switch (algo) {
    case Algorithm::kPaxos:
    case Algorithm::kFastPaxos:
      c.n = 5;
      c.m = 0;
      max_proc_crashes = 2;  // minority
      break;
    case Algorithm::kDiskPaxos:
    case Algorithm::kProtectedMemoryPaxos:
      c.n = 3;
      c.m = 5;
      max_proc_crashes = 2;  // all but one
      break;
    case Algorithm::kAlignedPaxos:
      c.n = 3;
      c.m = 3;
      max_proc_crashes = 1;
      break;
    case Algorithm::kRobustBackup:
    case Algorithm::kFastRobust:
      c.n = 5;
      c.m = 5;
      max_proc_crashes = 2;  // n ≥ 2f+1
      break;
  }
  // Crash a random subset of processes at random times. Never crash every
  // process; for message-passing algorithms keep a majority alive.
  const std::size_t crashes = rng.below(max_proc_crashes + 1);
  std::set<ProcessId> victims;
  while (victims.size() < crashes) {
    victims.insert(static_cast<ProcessId>(rng.range(1, c.n)));
  }
  for (ProcessId v : victims) {
    c.faults.process_crashes[v] = rng.below(200);
  }
  // For memory-replicated algorithms, also crash a memory minority.
  if (c.m >= 3 && rng.chance(0.5)) {
    const std::size_t mem_crashes = rng.below((c.m - 1) / 2 + 1);
    std::set<MemoryId> mem_victims;
    while (mem_victims.size() < mem_crashes) {
      mem_victims.insert(static_cast<MemoryId>(rng.range(1, c.m)));
    }
    for (MemoryId v : mem_victims) c.faults.memory_crashes[v] = rng.below(200);
  }
  c.horizon = 200000;

  const RunReport r = run_cluster(c);
  EXPECT_TRUE(r.agreement) << algorithm_name(algo) << " seed=" << seed << " "
                           << r.summary();
  EXPECT_TRUE(r.validity) << algorithm_name(algo) << " seed=" << seed << " "
                          << r.summary();
  EXPECT_TRUE(r.termination) << algorithm_name(algo) << " seed=" << seed << " "
                             << r.summary();
}

std::string crash_name(const ::testing::TestParamInfo<CrashParam>& info) {
  const auto [algo, seed] = info.param;
  std::ostringstream os;
  switch (algo) {
    case Algorithm::kPaxos: os << "Paxos"; break;
    case Algorithm::kFastPaxos: os << "FastPaxos"; break;
    case Algorithm::kDiskPaxos: os << "DiskPaxos"; break;
    case Algorithm::kProtectedMemoryPaxos: os << "PMP"; break;
    case Algorithm::kAlignedPaxos: os << "Aligned"; break;
    case Algorithm::kRobustBackup: os << "RobustBackup"; break;
    case Algorithm::kFastRobust: os << "FastRobust"; break;
  }
  os << "_s" << seed;
  return os.str();
}

INSTANTIATE_TEST_SUITE_P(
    Crashes, CrashSweep,
    ::testing::Combine(::testing::Values(Algorithm::kPaxos, Algorithm::kFastPaxos,
                                         Algorithm::kDiskPaxos,
                                         Algorithm::kProtectedMemoryPaxos,
                                         Algorithm::kAlignedPaxos),
                       ::testing::Range(1, 9)),
    crash_name);

INSTANTIATE_TEST_SUITE_P(
    ByzantineCrashes, CrashSweep,
    ::testing::Combine(::testing::Values(Algorithm::kFastRobust),
                       ::testing::Range(1, 5)),
    crash_name);

// ---------------------------------------------------------------------------
// Sweep 3: Byzantine strategies × which process is faulty.
// ---------------------------------------------------------------------------

using ByzParam = std::tuple<ByzantineStrategy, int /*faulty pid*/, int /*seed*/>;

class ByzSweep : public ::testing::TestWithParam<ByzParam> {};

TEST_P(ByzSweep, FastRobustSafeAndLive) {
  const auto [strategy, pid, seed] = GetParam();
  ClusterConfig c;
  c.algo = Algorithm::kFastRobust;
  c.n = 3;
  c.m = 3;
  c.seed = static_cast<std::uint64_t>(seed);
  c.faults.byzantine[static_cast<ProcessId>(pid)] = strategy;
  const RunReport r = run_cluster(c);
  EXPECT_TRUE(r.agreement) << r.summary();
  EXPECT_TRUE(r.termination) << r.summary();
}

std::string byz_name(const ::testing::TestParamInfo<ByzParam>& info) {
  const auto [strategy, pid, seed] = info.param;
  std::ostringstream os;
  switch (strategy) {
    case ByzantineStrategy::kSilent: os << "Silent"; break;
    case ByzantineStrategy::kNebEquivocate: os << "NebEquiv"; break;
    case ByzantineStrategy::kCqLeaderEquivocate: os << "CqEquiv"; break;
    case ByzantineStrategy::kGarbage: os << "Garbage"; break;
  }
  os << "_p" << pid << "_s" << seed;
  return os.str();
}

INSTANTIATE_TEST_SUITE_P(
    Strategies, ByzSweep,
    ::testing::Combine(::testing::Values(ByzantineStrategy::kSilent,
                                         ByzantineStrategy::kNebEquivocate,
                                         ByzantineStrategy::kGarbage),
                       ::testing::Values(1, 2, 3), ::testing::Values(1, 2)),
    byz_name);

INSTANTIATE_TEST_SUITE_P(
    LeaderEquivocation, ByzSweep,
    ::testing::Combine(::testing::Values(ByzantineStrategy::kCqLeaderEquivocate),
                       ::testing::Values(1), ::testing::Values(1, 2, 3)),
    byz_name);

// ---------------------------------------------------------------------------
// Sweep 4: partial synchrony — GST onset × algorithm.
// ---------------------------------------------------------------------------

using GstParam = std::tuple<Algorithm, int /*gst*/, int /*pre delay*/>;

class GstSweep : public ::testing::TestWithParam<GstParam> {};

TEST_P(GstSweep, SafetyAlwaysLivenessAfterGst) {
  const auto [algo, gst, pre] = GetParam();
  ClusterConfig c;
  c.algo = algo;
  c.n = 3;
  c.m = (algo == Algorithm::kPaxos || algo == Algorithm::kFastPaxos) ? 0 : 3;
  c.gst = static_cast<sim::Time>(gst);
  c.pre_gst_delay = static_cast<sim::Time>(pre);
  c.horizon = 300000;
  const RunReport r = run_cluster(c);
  EXPECT_TRUE(r.agreement) << algorithm_name(algo) << " " << r.summary();
  EXPECT_TRUE(r.validity) << algorithm_name(algo) << " " << r.summary();
  EXPECT_TRUE(r.termination) << algorithm_name(algo) << " " << r.summary();
}

std::string gst_name(const ::testing::TestParamInfo<GstParam>& info) {
  const auto [algo, gst, pre] = info.param;
  std::ostringstream os;
  switch (algo) {
    case Algorithm::kPaxos: os << "Paxos"; break;
    case Algorithm::kFastPaxos: os << "FastPaxos"; break;
    case Algorithm::kProtectedMemoryPaxos: os << "PMP"; break;
    case Algorithm::kFastRobust: os << "FastRobust"; break;
    default: os << "Algo"; break;
  }
  os << "_gst" << gst << "_pre" << pre;
  return os.str();
}

INSTANTIATE_TEST_SUITE_P(
    Gst, GstSweep,
    ::testing::Combine(::testing::Values(Algorithm::kPaxos,
                                         Algorithm::kProtectedMemoryPaxos,
                                         Algorithm::kFastRobust),
                       ::testing::Values(100, 500), ::testing::Values(10, 60)),
    gst_name);

}  // namespace
}  // namespace mnm::harness
