// Deterministic property/fuzz tests for the framed Byzantine wire decoders
// (T-send wires, history entry frames, receipts, NEB slots). Seeded
// sim::Rng, so every run exercises the same inputs — failures reproduce.
//
// Properties:
//  * encode_history / encode_tsend round-trip through decode_tsend, with and
//    without a verified prefix (the suffix-only decode path);
//  * random truncations and bit-flips of a valid wire must decode to nullopt
//    or fail verification — never crash, never over-read (the ASan/UBSan CI
//    job runs this binary), and never be *accepted*;
//  * a flip inside the verified prefix region must force the full-decode
//    fallback, never a prefix skip;
//  * pure random bytes never crash any framed decoder.

#include <gtest/gtest.h>

#include "src/core/nonequiv_broadcast.hpp"
#include "src/core/trusted_messaging.hpp"
#include "src/sim/rng.hpp"

namespace mnm::core::trusted {
namespace {

using util::to_bytes;

Bytes random_bytes(sim::Rng& rng, std::size_t len) {
  Bytes b(len);
  for (auto& x : b) x = static_cast<std::uint8_t>(rng.below(256));
  return b;
}

/// A structurally valid random history for `s`'s process: chained, signed,
/// contiguous sent-seqs, arbitrary received entries.
History random_history(sim::Rng& rng, crypto::Signer& s, std::size_t entries,
                       std::uint64_t* sent_count = nullptr) {
  History h;
  Bytes prev;
  std::uint64_t next_sent = 1;
  for (std::size_t i = 0; i < entries; ++i) {
    HistoryEntry e;
    const bool sent = rng.chance(0.5);
    e.kind = sent ? HistoryEntry::Kind::kSent : HistoryEntry::Kind::kReceived;
    e.k = sent ? next_sent++ : rng.below(16) + 1;
    e.peer = static_cast<ProcessId>(rng.below(4));  // incl. kToAll
    e.payload = random_bytes(rng, rng.below(48));
    e.chain = chain_entry(prev, e.kind, e.k, e.peer, e.payload);
    e.sig = s.sign(e.chain);
    prev = e.chain;
    h.push_back(std::move(e));
  }
  if (sent_count != nullptr) *sent_count = next_sent - 1;
  return h;
}

/// The encoded body bytes (sans count header) of the first `j` entries —
/// what a receiver's verified-prefix cache would hold after accepting a
/// message that attached them.
Bytes body_prefix(const History& h, std::size_t j) {
  const History head(h.begin(), h.begin() + static_cast<std::ptrdiff_t>(j));
  const Bytes enc = encode_history(head);
  return Bytes(enc.begin() + 4, enc.end());
}

/// The deliver loop's full acceptance pipeline, standalone: decode,
/// structural verify, seq check, inner signature. Returns true iff a
/// receiver would accept the wire as `owner`'s `k`-th T-send.
bool audit(const crypto::KeyStore& ks, ProcessId owner, util::ByteView wire,
           std::uint64_t k) {
  const auto c = decode_tsend(wire);
  if (!c.has_value()) return false;
  Bytes prev_chain;
  std::uint64_t expected_sent = 1;
  if (!verify_history_suffix(ks, owner, c->suffix.data(), c->suffix.size(),
                             prev_chain, expected_sent)) {
    return false;
  }
  if (expected_sent != k || c->k != k) return false;
  return ks.valid_from(
      owner, tsend_signing_bytes(c->k, c->dst, c->payload, prev_chain),
      c->sig);
}

struct FuzzWorld {
  FuzzWorld() : rng(0xF00DF00Dull), ks(3), s(ks.register_process(1)) {}

  /// A fully valid wire for process 1's k-th T-send, k = #sends + 1.
  Bytes valid_wire(const History& h, std::uint64_t sent_count, Bytes* payload_out = nullptr) {
    const std::uint64_t k = sent_count + 1;
    const ProcessId dst = static_cast<ProcessId>(rng.below(4));
    const Bytes payload = random_bytes(rng, rng.below(64) + 1);
    const Bytes digest = h.empty() ? Bytes{} : h.back().chain;
    const crypto::Signature sig =
        s.sign(tsend_signing_bytes(k, dst, payload, digest));
    if (payload_out != nullptr) *payload_out = payload;
    return encode_tsend(dst, payload, h, k, sig);
  }

  sim::Rng rng;
  crypto::KeyStore ks;
  crypto::Signer s;
};

TEST(WireFuzz, RoundTripWithAndWithoutVerifiedPrefix) {
  FuzzWorld w;
  for (int trial = 0; trial < 200; ++trial) {
    std::uint64_t sends = 0;
    const History h = random_history(w.rng, w.s, w.rng.below(8), &sends);
    const Bytes wire = w.valid_wire(h, sends);
    ASSERT_TRUE(audit(w.ks, 1, wire, sends + 1)) << "trial " << trial;

    // Full decode reproduces every entry.
    const auto full = decode_tsend(wire);
    ASSERT_TRUE(full.has_value());
    EXPECT_EQ(full->prefix_entries, 0u);
    ASSERT_EQ(full->suffix.size(), h.size());
    for (std::size_t i = 0; i < h.size(); ++i) {
      EXPECT_EQ(full->suffix[i].chain, h[i].chain) << "trial " << trial;
      EXPECT_EQ(full->suffix[i].payload, h[i].payload);
    }

    // Suffix-only decode from any cache position yields exactly the tail.
    const std::size_t j = w.rng.below(h.size() + 1);
    const Bytes prefix = body_prefix(h, j);
    const auto part = decode_tsend(wire, prefix, j);
    ASSERT_TRUE(part.has_value());
    if (j > 0) {
      EXPECT_EQ(part->prefix_entries, j);
      ASSERT_EQ(part->suffix.size(), h.size() - j);
      for (std::size_t i = 0; i < part->suffix.size(); ++i) {
        EXPECT_EQ(part->suffix[i].chain, h[j + i].chain);
      }
      // Resuming verification from the cached chain state accepts.
      Bytes prev = j > 0 ? h[j - 1].chain : Bytes{};
      std::uint64_t expected = 1;
      for (std::size_t i = 0; i < j; ++i) {
        if (h[i].kind == HistoryEntry::Kind::kSent) ++expected;
      }
      EXPECT_TRUE(verify_history_suffix(w.ks, 1, part->suffix.data(),
                                        part->suffix.size(), prev, expected));
      EXPECT_EQ(expected, sends + 1);
    }
  }
}

TEST(WireFuzz, TruncationsDecodeToNulloptNeverCrash) {
  FuzzWorld w;
  for (int trial = 0; trial < 100; ++trial) {
    std::uint64_t sends = 0;
    const History h = random_history(w.rng, w.s, w.rng.below(6) + 1, &sends);
    const Bytes wire = w.valid_wire(h, sends);
    // Every proper truncation: removing trailing bytes can never leave a
    // parseable wire (length prefixes and expect_end overrun instead).
    for (std::size_t cut = 0; cut < wire.size();
         cut += w.rng.below(7) + 1) {
      const auto c = decode_tsend(util::ByteView(wire).subspan(0, cut));
      EXPECT_FALSE(c.has_value()) << "trial " << trial << " cut " << cut;
    }
  }
}

TEST(WireFuzz, BitFlipsNeverAccepted) {
  FuzzWorld w;
  for (int trial = 0; trial < 300; ++trial) {
    std::uint64_t sends = 0;
    const History h = random_history(w.rng, w.s, w.rng.below(5), &sends);
    Bytes wire = w.valid_wire(h, sends);
    const std::size_t bit = w.rng.below(wire.size() * 8);
    wire[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
    // Decode may succeed (flips in payload bytes parse fine) but the
    // acceptance pipeline must reject: every wire byte is covered by the
    // chain, the seq checks, or the inner signature.
    EXPECT_FALSE(audit(w.ks, 1, wire, sends + 1))
        << "trial " << trial << " bit " << bit;
  }
}

TEST(WireFuzz, FlipInsidePrefixForcesFullDecodeFallback) {
  FuzzWorld w;
  for (int trial = 0; trial < 100; ++trial) {
    std::uint64_t sends = 0;
    const History h = random_history(w.rng, w.s, w.rng.below(5) + 2, &sends);
    Bytes wire = w.valid_wire(h, sends);
    const std::size_t j = w.rng.below(h.size() - 1) + 1;
    const Bytes prefix = body_prefix(h, j);
    // Sanity: the untouched wire skips.
    ASSERT_EQ(decode_tsend(wire, prefix, j)->prefix_entries, j);
    // A flip anywhere inside the wire's prefix region must kill the skip —
    // the decoder falls back to entry 0 (and the full verify then rejects).
    wire[w.rng.below(prefix.size())] ^= 0x01;
    const auto c = decode_tsend(wire, prefix, j);
    if (c.has_value()) {
      EXPECT_EQ(c->prefix_entries, 0u) << "trial " << trial;
      EXPECT_FALSE(audit(w.ks, 1, wire, sends + 1));
    }
  }
}

TEST(WireFuzz, RandomBytesNeverCrashAnyDecoder) {
  FuzzWorld w;
  std::uint64_t decoded = 0;
  for (int trial = 0; trial < 2000; ++trial) {
    const Bytes junk = random_bytes(w.rng, w.rng.below(160));
    if (decode_tsend(junk).has_value()) ++decoded;
    if (decode_history(junk).has_value()) ++decoded;
    if (Receipt::decode(junk).has_value()) ++decoded;
    if (decode_neb_slot(junk).has_value()) ++decoded;
    // Random bytes with a random (receiver-side) verified prefix — exercises
    // the skip-compare bounds too.
    const Bytes junk_prefix = random_bytes(w.rng, w.rng.below(32));
    (void)decode_tsend(junk, junk_prefix, w.rng.below(4) + 1,
                       w.rng.below(64));
  }
  // Unstructured noise essentially never parses (no assertion on exact 0 —
  // an empty history body + empty tail is a few dozen constrained bytes).
  EXPECT_LT(decoded, 4u);
}

}  // namespace
}  // namespace mnm::core::trusted
