// Deterministic property/fuzz tests for the framed Byzantine wire decoders
// (T-send wires, history entry frames, receipts, NEB slots). Seeded
// sim::Rng, so every run exercises the same inputs — failures reproduce.
//
// Properties:
//  * encode_history / encode_tsend round-trip through decode_tsend, with and
//    without a verified prefix (the suffix-only decode path);
//  * random truncations and bit-flips of a valid wire must decode to nullopt
//    or fail verification — never crash, never over-read (the ASan/UBSan CI
//    job runs this binary), and never be *accepted*;
//  * a flip inside the verified prefix region must force the full-decode
//    fallback, never a prefix skip;
//  * pure random bytes never crash any framed decoder;
//  * the smr batch framing and the KV command codec share the decoder
//    hygiene: attacker-controlled count/length prefixes are capped by the
//    bytes actually present (the same unchecked-reserve class that caused
//    the decode_history bad_alloc), truncations and junk decode to
//    empty/nullopt, and round-trips are exact.

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <vector>

#include "src/core/nonequiv_broadcast.hpp"
#include "src/core/trusted_messaging.hpp"
#include "src/crypto/signature.hpp"
#include "src/kv/command.hpp"
#include "src/kv/range.hpp"
#include "src/kv/shard.hpp"
#include "src/kv/state_machine.hpp"
#include "src/reconfig/change.hpp"
#include "src/sim/rng.hpp"
#include "src/smr/catchup.hpp"
#include "src/smr/log.hpp"
#include "src/txn/record.hpp"
#include "src/util/serde.hpp"

namespace mnm::core::trusted {
namespace {

using util::to_bytes;

Bytes random_bytes(sim::Rng& rng, std::size_t len) {
  Bytes b(len);
  for (auto& x : b) x = static_cast<std::uint8_t>(rng.below(256));
  return b;
}

/// A structurally valid random history for `s`'s process: chained, signed,
/// contiguous sent-seqs, arbitrary received entries.
History random_history(sim::Rng& rng, crypto::Signer& s, std::size_t entries,
                       std::uint64_t* sent_count = nullptr) {
  History h;
  Bytes prev;
  std::uint64_t next_sent = 1;
  for (std::size_t i = 0; i < entries; ++i) {
    HistoryEntry e;
    const bool sent = rng.chance(0.5);
    e.kind = sent ? HistoryEntry::Kind::kSent : HistoryEntry::Kind::kReceived;
    e.k = sent ? next_sent++ : rng.below(16) + 1;
    e.peer = static_cast<ProcessId>(rng.below(4));  // incl. kToAll
    e.payload = random_bytes(rng, rng.below(48));
    e.chain = chain_entry(prev, e.kind, e.k, e.peer, e.payload);
    e.sig = s.sign(e.chain);
    prev = e.chain;
    h.push_back(std::move(e));
  }
  if (sent_count != nullptr) *sent_count = next_sent - 1;
  return h;
}

/// The encoded body bytes (sans count header) of the first `j` entries —
/// what a receiver's verified-prefix cache would hold after accepting a
/// message that attached them.
Bytes body_prefix(const History& h, std::size_t j) {
  const History head(h.begin(), h.begin() + static_cast<std::ptrdiff_t>(j));
  const Bytes enc = encode_history(head);
  return Bytes(enc.begin() + 4, enc.end());
}

/// The deliver loop's full acceptance pipeline, standalone: decode,
/// structural verify, seq check, inner signature. Returns true iff a
/// receiver would accept the wire as `owner`'s `k`-th T-send.
bool audit(const crypto::KeyStore& ks, ProcessId owner, util::ByteView wire,
           std::uint64_t k) {
  const auto c = decode_tsend(wire);
  if (!c.has_value()) return false;
  Bytes prev_chain;
  std::uint64_t expected_sent = 1;
  if (!verify_history_suffix(ks, owner, c->suffix.data(), c->suffix.size(),
                             prev_chain, expected_sent)) {
    return false;
  }
  if (expected_sent != k || c->k != k) return false;
  return ks.valid_from(
      owner, tsend_signing_bytes(c->k, c->dst, c->payload, prev_chain),
      c->sig);
}

struct FuzzWorld {
  FuzzWorld() : rng(0xF00DF00Dull), ks(3), s(ks.register_process(1)) {}

  /// A fully valid wire for process 1's k-th T-send, k = #sends + 1.
  Bytes valid_wire(const History& h, std::uint64_t sent_count, Bytes* payload_out = nullptr) {
    const std::uint64_t k = sent_count + 1;
    const ProcessId dst = static_cast<ProcessId>(rng.below(4));
    const Bytes payload = random_bytes(rng, rng.below(64) + 1);
    const Bytes digest = h.empty() ? Bytes{} : h.back().chain;
    const crypto::Signature sig =
        s.sign(tsend_signing_bytes(k, dst, payload, digest));
    if (payload_out != nullptr) *payload_out = payload;
    return encode_tsend(dst, payload, h, k, sig);
  }

  sim::Rng rng;
  crypto::KeyStore ks;
  crypto::Signer s;
};

TEST(WireFuzz, RoundTripWithAndWithoutVerifiedPrefix) {
  FuzzWorld w;
  for (int trial = 0; trial < 200; ++trial) {
    std::uint64_t sends = 0;
    const History h = random_history(w.rng, w.s, w.rng.below(8), &sends);
    const Bytes wire = w.valid_wire(h, sends);
    ASSERT_TRUE(audit(w.ks, 1, wire, sends + 1)) << "trial " << trial;

    // Full decode reproduces every entry.
    const auto full = decode_tsend(wire);
    ASSERT_TRUE(full.has_value());
    EXPECT_EQ(full->prefix_entries, 0u);
    ASSERT_EQ(full->suffix.size(), h.size());
    for (std::size_t i = 0; i < h.size(); ++i) {
      EXPECT_EQ(full->suffix[i].chain, h[i].chain) << "trial " << trial;
      EXPECT_EQ(full->suffix[i].payload, h[i].payload);
    }

    // Suffix-only decode from any cache position yields exactly the tail.
    const std::size_t j = w.rng.below(h.size() + 1);
    const Bytes prefix = body_prefix(h, j);
    const auto part = decode_tsend(wire, prefix, j);
    ASSERT_TRUE(part.has_value());
    if (j > 0) {
      EXPECT_EQ(part->prefix_entries, j);
      ASSERT_EQ(part->suffix.size(), h.size() - j);
      for (std::size_t i = 0; i < part->suffix.size(); ++i) {
        EXPECT_EQ(part->suffix[i].chain, h[j + i].chain);
      }
      // Resuming verification from the cached chain state accepts.
      Bytes prev = j > 0 ? h[j - 1].chain : Bytes{};
      std::uint64_t expected = 1;
      for (std::size_t i = 0; i < j; ++i) {
        if (h[i].kind == HistoryEntry::Kind::kSent) ++expected;
      }
      EXPECT_TRUE(verify_history_suffix(w.ks, 1, part->suffix.data(),
                                        part->suffix.size(), prev, expected));
      EXPECT_EQ(expected, sends + 1);
    }
  }
}

TEST(WireFuzz, TruncationsDecodeToNulloptNeverCrash) {
  FuzzWorld w;
  for (int trial = 0; trial < 100; ++trial) {
    std::uint64_t sends = 0;
    const History h = random_history(w.rng, w.s, w.rng.below(6) + 1, &sends);
    const Bytes wire = w.valid_wire(h, sends);
    // Every proper truncation: removing trailing bytes can never leave a
    // parseable wire (length prefixes and expect_end overrun instead).
    for (std::size_t cut = 0; cut < wire.size();
         cut += w.rng.below(7) + 1) {
      const auto c = decode_tsend(util::ByteView(wire).subspan(0, cut));
      EXPECT_FALSE(c.has_value()) << "trial " << trial << " cut " << cut;
    }
  }
}

TEST(WireFuzz, BitFlipsNeverAccepted) {
  FuzzWorld w;
  for (int trial = 0; trial < 300; ++trial) {
    std::uint64_t sends = 0;
    const History h = random_history(w.rng, w.s, w.rng.below(5), &sends);
    Bytes wire = w.valid_wire(h, sends);
    const std::size_t bit = w.rng.below(wire.size() * 8);
    wire[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
    // Decode may succeed (flips in payload bytes parse fine) but the
    // acceptance pipeline must reject: every wire byte is covered by the
    // chain, the seq checks, or the inner signature.
    EXPECT_FALSE(audit(w.ks, 1, wire, sends + 1))
        << "trial " << trial << " bit " << bit;
  }
}

TEST(WireFuzz, FlipInsidePrefixForcesFullDecodeFallback) {
  FuzzWorld w;
  for (int trial = 0; trial < 100; ++trial) {
    std::uint64_t sends = 0;
    const History h = random_history(w.rng, w.s, w.rng.below(5) + 2, &sends);
    Bytes wire = w.valid_wire(h, sends);
    const std::size_t j = w.rng.below(h.size() - 1) + 1;
    const Bytes prefix = body_prefix(h, j);
    // Sanity: the untouched wire skips.
    ASSERT_EQ(decode_tsend(wire, prefix, j)->prefix_entries, j);
    // A flip anywhere inside the wire's prefix region must kill the skip —
    // the decoder falls back to entry 0 (and the full verify then rejects).
    wire[w.rng.below(prefix.size())] ^= 0x01;
    const auto c = decode_tsend(wire, prefix, j);
    if (c.has_value()) {
      EXPECT_EQ(c->prefix_entries, 0u) << "trial " << trial;
      EXPECT_FALSE(audit(w.ks, 1, wire, sends + 1));
    }
  }
}

TEST(WireFuzz, RandomBytesNeverCrashAnyDecoder) {
  FuzzWorld w;
  std::uint64_t decoded = 0;
  for (int trial = 0; trial < 2000; ++trial) {
    const Bytes junk = random_bytes(w.rng, w.rng.below(160));
    if (decode_tsend(junk).has_value()) ++decoded;
    if (decode_history(junk).has_value()) ++decoded;
    if (Receipt::decode(junk).has_value()) ++decoded;
    if (decode_neb_slot(junk).has_value()) ++decoded;
    // Random bytes with a random (receiver-side) verified prefix — exercises
    // the skip-compare bounds too.
    const Bytes junk_prefix = random_bytes(w.rng, w.rng.below(32));
    (void)decode_tsend(junk, junk_prefix, w.rng.below(4) + 1,
                       w.rng.below(64));
  }
  // Unstructured noise essentially never parses (no assertion on exact 0 —
  // an empty history body + empty tail is a few dozen constrained bytes).
  EXPECT_LT(decoded, 4u);
}

// ---------------------------------------------------------------------------
// smr::encode_batch / decode_batch — the slot-payload framing every engine
// decision flows through. decode_batch is total (garbage applies as zero
// commands), so the properties are: exact round-trips, truncations/flips
// never crash, and a forged count prefix never pre-allocates past the bytes
// present.
// ---------------------------------------------------------------------------

TEST(WireFuzz, SmrBatchRoundTripsExactly) {
  sim::Rng rng(0xBA7C4ull);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<Bytes> cmds;
    const std::size_t count = rng.below(6);
    for (std::size_t i = 0; i < count; ++i) {
      cmds.push_back(random_bytes(rng, rng.below(40)));
    }
    EXPECT_EQ(smr::decode_batch(smr::encode_batch(cmds)), cmds)
        << "trial " << trial;
  }
}

TEST(WireFuzz, SmrBatchTruncationsDecodeEmptyNeverCrash) {
  sim::Rng rng(0xBA7C5ull);
  for (int trial = 0; trial < 100; ++trial) {
    std::vector<Bytes> cmds;
    const std::size_t count = rng.below(4) + 1;
    for (std::size_t i = 0; i < count; ++i) {
      cmds.push_back(random_bytes(rng, rng.below(24) + 1));
    }
    const Bytes wire = smr::encode_batch(cmds);
    // Strict framing: every proper truncation under-runs a length prefix or
    // trips expect_end, and the total decoder maps that to the empty batch.
    for (std::size_t cut = 0; cut < wire.size(); cut += rng.below(5) + 1) {
      EXPECT_TRUE(
          smr::decode_batch(util::ByteView(wire).subspan(0, cut)).empty())
          << "trial " << trial << " cut " << cut;
    }
    // Bit flips parse or fail, deterministically — never crash. A flip in a
    // length prefix is the interesting case (huge claimed lengths).
    Bytes flipped = wire;
    const std::size_t bit = rng.below(flipped.size() * 8);
    flipped[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
    (void)smr::decode_batch(flipped);
  }
}

TEST(WireFuzz, SmrBatchForgedCountPrefixCappedByBytesPresent) {
  // A Byzantine slot winner claims 2^32 - 1 commands in a 12-byte payload.
  // The decoder's reserve must be capped by the bytes actually present —
  // an uncapped reserve(count) is a bad_alloc DoS on every correct replica.
  util::Writer w;
  w.u32(0xFFFFFFFFu);
  w.raw(util::to_bytes("12345678"));
  EXPECT_TRUE(smr::decode_batch(std::move(w).take()).empty());

  // Same with the largest count that still parses one command: fine.
  util::Writer w2;
  w2.u32(1).bytes(util::to_bytes("x"));
  const auto one = smr::decode_batch(std::move(w2).take());
  ASSERT_EQ(one.size(), 1u);
  EXPECT_EQ(one[0], util::to_bytes("x"));
}

TEST(WireFuzz, SmrBatchRandomBytesNeverCrash) {
  sim::Rng rng(0xBA7C6ull);
  for (int trial = 0; trial < 2000; ++trial) {
    (void)smr::decode_batch(random_bytes(rng, rng.below(120)));
  }
}

// ---------------------------------------------------------------------------
// kv command codec — client operations inside batch commands. Strict decode
// (nullopt on malformed), bounded by bytes present.
// ---------------------------------------------------------------------------

kv::Command random_kv_command(sim::Rng& rng) {
  kv::Command c;
  c.op = static_cast<kv::Op>(rng.below(4) + 1);
  c.client = rng.next();
  c.seq = rng.next();
  c.key = random_bytes(rng, rng.below(32));
  c.value = random_bytes(rng, rng.below(48));
  c.expected = random_bytes(rng, rng.below(16));
  return c;
}

TEST(WireFuzz, KvCommandRoundTripsExactly) {
  sim::Rng rng(0xC0DE1ull);
  for (int trial = 0; trial < 300; ++trial) {
    const kv::Command c = random_kv_command(rng);
    const auto d = kv::decode_command(kv::encode_command(c));
    ASSERT_TRUE(d.has_value()) << "trial " << trial;
    EXPECT_EQ(*d, c);
  }
}

TEST(WireFuzz, KvCommandTruncationsAndFlipsNeverCrash) {
  sim::Rng rng(0xC0DE2ull);
  for (int trial = 0; trial < 150; ++trial) {
    const kv::Command c = random_kv_command(rng);
    const Bytes wire = kv::encode_command(c);
    for (std::size_t cut = 0; cut < wire.size(); cut += rng.below(5) + 1) {
      EXPECT_FALSE(
          kv::decode_command(util::ByteView(wire).subspan(0, cut)).has_value())
          << "trial " << trial << " cut " << cut;
    }
    // A flipped bit may still decode (payload bytes carry no redundancy) —
    // the property is totality, plus strictness when a length prefix now
    // overruns the buffer.
    Bytes flipped = wire;
    const std::size_t bit = rng.below(flipped.size() * 8);
    flipped[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
    (void)kv::decode_command(flipped);
  }
}

TEST(WireFuzz, KvCommandRandomBytesNeverCrash) {
  sim::Rng rng(0xC0DE3ull);
  std::uint64_t decoded = 0;
  for (int trial = 0; trial < 2000; ++trial) {
    if (kv::decode_command(random_bytes(rng, rng.below(100))).has_value()) {
      ++decoded;
    }
  }
  // The leading op byte (1..7 of 256, the admin ops included) + three
  // strict length prefixes + expect_end make accidental parses vanishingly
  // rare.
  EXPECT_LT(decoded, 4u);
}

// ---------------------------------------------------------------------------
// kv signed-command codec — the client-authentication wire. Same decoder
// hygiene as above, plus the verification properties: every forgery class a
// Byzantine slot winner can attempt (mutated MAC, stripped signature,
// signer swapped to another *valid* identity, truncation inside the
// signature, cross-shard replay of a genuine wire, a wrapped 64-bit client
// id that maps onto the attacker's own signer) must be rejected without
// crashing — by the strict decode or by the state machine's pre-session
// verification, never by a throw.
// ---------------------------------------------------------------------------

TEST(WireFuzz, KvSignedCommandForgeriesAlwaysRejected) {
  sim::Rng rng(0xC0DE4ull);
  crypto::KeyStore ks(0x51C0DEull);
  const crypto::Signer replica = ks.register_process(3);  // attacker's own id
  std::vector<crypto::Signer> clients;
  for (kv::ClientId id = 1; id <= 4; ++id) {
    clients.push_back(ks.register_process(kv::client_signer_id(id)));
  }
  kv::StateMachine sm;
  sm.set_keystore(&ks, /*group=*/0);
  std::uint64_t expect_forged = 0;
  std::uint64_t expect_malformed = 0;
  for (int trial = 0; trial < 150; ++trial) {
    kv::Command c = random_kv_command(rng);
    c.client = rng.below(4) + 1;
    const Bytes body = kv::encode_command(c);
    const crypto::Signature sig =
        clients[c.client - 1].sign(kv::command_signing_bytes(0, body));
    const Bytes wire = kv::encode_signed_command(body, sig);

    // Sanity: the genuine wire decodes and verifies.
    const auto genuine = kv::decode_signed_command(wire);
    ASSERT_TRUE(genuine.has_value() && genuine->has_sig) << "trial " << trial;
    ASSERT_TRUE(ks.valid_from(kv::client_signer_id(c.client),
                              kv::command_signing_bytes(0, genuine->body),
                              genuine->sig))
        << "trial " << trial;

    // 1. Forged signature bytes: flip one bit inside the 32-byte MAC.
    Bytes forged_mac = wire;
    const std::size_t bit = rng.below(32 * 8);
    forged_mac[wire.size() - 32 + bit / 8] ^=
        static_cast<std::uint8_t>(1u << (bit % 8));
    sm.apply(0, forged_mac);
    ++expect_forged;

    // 2. Signature stripped: the bare canonical bytes are a well-formed
    //    legacy wire, but signed mode must not accept them.
    sm.apply(0, body);
    ++expect_forged;

    // 3. Signer id swapped to another valid client's identity (which even
    //    re-signs correctly under its own key — the cross-client hijack).
    const std::size_t other = (c.client % 4);  // != c.client - 1
    const crypto::Signature other_sig =
        clients[other].sign(kv::command_signing_bytes(0, body));
    sm.apply(0, kv::encode_signed_command(body, other_sig));
    ++expect_forged;

    // 4. Truncation inside the signature: strict decode rejects.
    const std::size_t cut = wire.size() - 1 - rng.below(35);
    const auto truncated =
        kv::decode_signed_command(util::ByteView(wire).subspan(0, cut));
    EXPECT_FALSE(truncated.has_value()) << "trial " << trial << " cut " << cut;
    sm.apply(0, util::ByteView(wire).subspan(0, cut));
    ++expect_malformed;

    // 5. Cross-shard replay: the victim's own valid signature, but bound
    //    to another group's log — a Byzantine member of both groups could
    //    otherwise move it into this one.
    const crypto::Signature other_group_sig =
        clients[c.client - 1].sign(kv::command_signing_bytes(1, body));
    sm.apply(0, kv::encode_signed_command(body, other_group_sig));
    ++expect_forged;

    // 6. Signer-space wrap: claim a 64-bit client id whose 32-bit mapping
    //    lands on the attacking replica's own identity, signed (validly!)
    //    with the attacker's own key.
    kv::Command wrapped = c;
    wrapped.client = 0x100000000ULL - kv::kClientSignerBase + 3;
    const Bytes wbody = kv::encode_command(wrapped);
    sm.apply(0, kv::encode_signed_command(
                    wbody, replica.sign(kv::command_signing_bytes(0, wbody))));
    ++expect_forged;
  }
  // Every attack no-opped deterministically: nothing applied, nothing
  // created a session, and each landed in exactly one rejection counter.
  EXPECT_EQ(sm.ops_applied(), 0u);
  EXPECT_TRUE(sm.store().empty());
  EXPECT_EQ(sm.forged(), expect_forged);
  EXPECT_EQ(sm.malformed(), expect_malformed);
}

TEST(WireFuzz, KvSignedCommandRandomBytesNeverCrash) {
  sim::Rng rng(0xC0DE5ull);
  crypto::KeyStore ks(0x51C0DFull);
  kv::StateMachine sm;
  sm.set_keystore(&ks);
  std::uint64_t decoded = 0;
  for (int trial = 0; trial < 2000; ++trial) {
    // Force the signed-form marker half the time so the wrapper decoder
    // (length prefix, signature frame, inner strict decode) gets real
    // coverage instead of bouncing on the first byte.
    Bytes raw = random_bytes(rng, rng.below(100));
    if (trial % 2 == 0) {
      raw.insert(raw.begin(), kv::kSignedCommandMarker);
    }
    if (kv::decode_signed_command(raw).has_value()) ++decoded;
    sm.apply(0, raw);  // total: counts malformed/forged, never throws
  }
  EXPECT_LT(decoded, 4u);
  EXPECT_EQ(sm.ops_applied(), 0u);
}

// ---------------------------------------------------------------------------
// smr catch-up codec — the restart path's control-frame messages. Both
// decoders are strict (nullopt on malformed, expect_end), the response's
// payload count is attacker-controlled and must be capped both by
// kMaxCatchupSlots and by the bytes actually present.
// ---------------------------------------------------------------------------

smr::CatchupResponse random_catchup_response(sim::Rng& rng) {
  smr::CatchupResponse resp;
  resp.snap_slot = rng.below(64);
  if (resp.snap_slot > 0) resp.snapshot = random_bytes(rng, rng.below(80) + 1);
  resp.first_slot = resp.snap_slot + rng.below(8);
  const std::size_t count = rng.below(6);
  for (std::size_t i = 0; i < count; ++i) {
    resp.payloads.push_back(random_bytes(rng, rng.below(40)));
  }
  return resp;
}

TEST(WireFuzz, CatchupRequestRoundTripsAndRejectsJunk) {
  sim::Rng rng(0xCA7C0ull);
  for (int trial = 0; trial < 200; ++trial) {
    smr::CatchupRequest req;
    req.from = rng.next();
    const Bytes wire = smr::encode_catchup_request(req);
    const auto d = smr::decode_catchup_request(wire);
    ASSERT_TRUE(d.has_value()) << "trial " << trial;
    EXPECT_EQ(d->from, req.from);
    // Every proper truncation under-runs the fixed frame or trips the tag.
    for (std::size_t cut = 0; cut < wire.size(); ++cut) {
      EXPECT_FALSE(smr::decode_catchup_request(
                       util::ByteView(wire).subspan(0, cut))
                       .has_value());
    }
    // Trailing garbage is rejected (expect_end), and the tag byte gates the
    // shared control channel: a response wire never parses as a request.
    Bytes extended = wire;
    extended.push_back(0);
    EXPECT_FALSE(smr::decode_catchup_request(extended).has_value());
    EXPECT_FALSE(smr::decode_catchup_request(
                     smr::encode_catchup_response(random_catchup_response(rng)))
                     .has_value());
  }
}

TEST(WireFuzz, CatchupResponseRoundTripsExactly) {
  sim::Rng rng(0xCA7C1ull);
  for (int trial = 0; trial < 200; ++trial) {
    const smr::CatchupResponse resp = random_catchup_response(rng);
    const auto d = smr::decode_catchup_response(smr::encode_catchup_response(resp));
    ASSERT_TRUE(d.has_value()) << "trial " << trial;
    EXPECT_EQ(d->snap_slot, resp.snap_slot);
    EXPECT_EQ(d->snapshot, resp.snapshot);
    EXPECT_EQ(d->first_slot, resp.first_slot);
    EXPECT_EQ(d->payloads, resp.payloads);
  }
}

TEST(WireFuzz, CatchupResponseTruncationsAndFlipsNeverCrash) {
  sim::Rng rng(0xCA7C2ull);
  for (int trial = 0; trial < 100; ++trial) {
    const Bytes wire =
        smr::encode_catchup_response(random_catchup_response(rng));
    for (std::size_t cut = 0; cut < wire.size(); cut += rng.below(5) + 1) {
      EXPECT_FALSE(smr::decode_catchup_response(
                       util::ByteView(wire).subspan(0, cut))
                       .has_value())
          << "trial " << trial << " cut " << cut;
    }
    // A flip in a length/count prefix is the interesting case (huge claimed
    // sizes) — decode must fail or succeed deterministically, never crash.
    Bytes flipped = wire;
    const std::size_t bit = rng.below(flipped.size() * 8);
    flipped[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
    (void)smr::decode_catchup_response(flipped);
  }
}

TEST(WireFuzz, CatchupResponseForgedCountPrefixCapped) {
  // A Byzantine catch-up peer claims 2^32 - 1 payloads in a short wire. The
  // count gate (kMaxCatchupSlots) rejects it before any allocation.
  util::Writer w;
  w.u8(2).u64(0).bytes({}).u64(0).u32(0xFFFFFFFFu);
  w.raw(util::to_bytes("12345678"));
  EXPECT_FALSE(smr::decode_catchup_response(std::move(w).take()).has_value());

  // Just past the cap: rejected too, even with enough bytes per payload.
  util::Writer w2;
  w2.u8(2).u64(0).bytes({}).u64(0).u32(
      static_cast<std::uint32_t>(smr::kMaxCatchupSlots + 1));
  for (std::size_t i = 0; i <= smr::kMaxCatchupSlots; ++i) w2.bytes({});
  EXPECT_FALSE(smr::decode_catchup_response(std::move(w2).take()).has_value());

  // A count within the cap but beyond the bytes present parses nothing —
  // the reserve is capped by remaining()/4 so no oversized pre-allocation.
  util::Writer w3;
  w3.u8(2).u64(0).bytes({}).u64(0).u32(512).u32(0);
  EXPECT_FALSE(smr::decode_catchup_response(std::move(w3).take()).has_value());
}

TEST(WireFuzz, CatchupRandomBytesNeverCrash) {
  sim::Rng rng(0xCA7C3ull);
  std::uint64_t decoded = 0;
  for (int trial = 0; trial < 2000; ++trial) {
    const Bytes junk = random_bytes(rng, rng.below(120));
    if (smr::decode_catchup_request(junk).has_value()) ++decoded;
    if (smr::decode_catchup_response(junk).has_value()) ++decoded;
  }
  // The tag byte + strict length prefixes + expect_end make accidental
  // parses vanishingly rare.
  EXPECT_LT(decoded, 4u);
}

// ---------------------------------------------------------------------------
// kv::StateMachine snapshot codec — full-state bytes installed by restarting
// replicas. restore() must be total, fail closed on any corruption (the
// trailing digest covers every decoded byte), and leave the target machine
// untouched on rejection.
// ---------------------------------------------------------------------------

/// A machine with random store/session/counter content, built through the
/// public apply path so the state is reachable (incl. duplicates and
/// malformed commands).
kv::StateMachine random_kv_machine(sim::Rng& rng) {
  kv::StateMachine m;
  std::map<std::uint64_t, std::uint64_t> seqs;
  const std::size_t ops = rng.below(24) + 1;
  for (std::size_t i = 0; i < ops; ++i) {
    if (rng.chance(0.15)) {
      m.apply(i, random_bytes(rng, rng.below(20)));  // likely malformed
      continue;
    }
    kv::Command c = random_kv_command(rng);
    c.client = rng.below(4) + 1;
    c.key = random_bytes(rng, rng.below(6) + 1);  // small keyspace: collisions
    c.seq = rng.chance(0.2) ? seqs[c.client]  // duplicate of the last apply
                            : ++seqs[c.client];
    m.apply(i, kv::encode_command(c));
  }
  return m;
}

TEST(WireFuzz, KvSnapshotRoundTripsExactly) {
  sim::Rng rng(0x54A70ull);
  for (int trial = 0; trial < 150; ++trial) {
    const kv::StateMachine m = random_kv_machine(rng);
    kv::StateMachine fresh;
    ASSERT_TRUE(fresh.restore(m.snapshot())) << "trial " << trial;
    EXPECT_EQ(fresh.store_hash(), m.store_hash());
    EXPECT_EQ(fresh.store(), m.store());
    EXPECT_EQ(fresh.ops_applied(), m.ops_applied());
    EXPECT_EQ(fresh.duplicates_suppressed(), m.duplicates_suppressed());
    EXPECT_EQ(fresh.malformed(), m.malformed());
    // Equal states ⇒ identical snapshot bytes (snapshots fingerprint).
    EXPECT_EQ(fresh.snapshot(), m.snapshot());
  }
}

TEST(WireFuzz, KvSnapshotTruncationsAndFlipsRejectedUntouched) {
  sim::Rng rng(0x54A71ull);
  for (int trial = 0; trial < 60; ++trial) {
    const Bytes wire = random_kv_machine(rng).snapshot();
    kv::StateMachine victim;
    victim.apply(0, kv::encode_command(
                        {kv::Op::kPut, 9, 1, to_bytes("canary"),
                         to_bytes("alive"), {}}));
    const std::uint64_t before = victim.store_hash();
    for (std::size_t cut = 0; cut < wire.size(); cut += rng.below(9) + 1) {
      EXPECT_FALSE(victim.restore(util::ByteView(wire).subspan(0, cut)))
          << "trial " << trial << " cut " << cut;
    }
    // Any single bit flip is caught: structurally (Serde/order checks) or by
    // the trailing digest, which covers every decoded field.
    Bytes flipped = wire;
    const std::size_t bit = rng.below(flipped.size() * 8);
    flipped[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
    EXPECT_FALSE(victim.restore(flipped)) << "trial " << trial;
    EXPECT_EQ(victim.store_hash(), before);  // rejected ⇒ untouched
  }
}

TEST(WireFuzz, KvSnapshotForgedCountPrefixAndJunkNeverCrash) {
  // Forged huge store-count in a short wire: the decode loop is bounded by
  // the bytes present (each pair costs length prefixes), so it fails fast.
  util::Writer w;
  w.u32(0xFFFFFFFFu);
  w.raw(util::to_bytes("12345678"));
  kv::StateMachine m;
  EXPECT_FALSE(m.restore(std::move(w).take()));

  sim::Rng rng(0x54A72ull);
  std::uint64_t restored = 0;
  for (int trial = 0; trial < 2000; ++trial) {
    if (m.restore(random_bytes(rng, rng.below(140)))) ++restored;
  }
  // Junk carries no valid digest — a single accidental restore would mean
  // the digest check is broken.
  EXPECT_EQ(restored, 0u);
  EXPECT_EQ(m.store_hash(), kv::StateMachine().store_hash());
}

// ---------------------------------------------------------------------------
// Checkpointed T-send wires — the history section led by a checkpoint header
// (marker, dropped-entry count, chain tip). The header is sender-claimed:
// the decoder must round-trip it faithfully, reject the non-canonical
// base == 0 form, and stay total under truncation/flips/junk.
// ---------------------------------------------------------------------------

TEST(WireFuzz, CheckpointHeaderRoundTripsAndBaseZeroRejected) {
  FuzzWorld w;
  for (int trial = 0; trial < 150; ++trial) {
    std::uint64_t sends = 0;
    const History h = random_history(w.rng, w.s, w.rng.below(5) + 2, &sends);
    const std::size_t base = w.rng.below(h.size() - 1) + 1;
    const History tail(h.begin() + static_cast<std::ptrdiff_t>(base), h.end());
    const Bytes payload = random_bytes(w.rng, w.rng.below(32) + 1);
    const crypto::Signature sig =
        w.s.sign(tsend_signing_bytes(sends + 1, 2, payload, h.back().chain));
    const Bytes wire = encode_tsend(2, payload, tail, sends + 1, sig, base,
                                    h[base - 1].chain);
    const auto c = decode_tsend(wire);
    ASSERT_TRUE(c.has_value()) << "trial " << trial;
    EXPECT_EQ(c->base, base);
    EXPECT_EQ(c->base_chain, h[base - 1].chain);
    ASSERT_EQ(c->suffix.size(), tail.size());
    for (std::size_t i = 0; i < tail.size(); ++i) {
      EXPECT_EQ(c->suffix[i].chain, tail[i].chain);
    }
    // Resuming verification from the header's (true) chain tip accepts.
    Bytes prev = h[base - 1].chain;
    std::uint64_t expected = 1;
    for (std::size_t i = 0; i < base; ++i) {
      if (h[i].kind == HistoryEntry::Kind::kSent) ++expected;
    }
    EXPECT_TRUE(verify_history_suffix(w.ks, 1, c->suffix.data(),
                                      c->suffix.size(), prev, expected));
    EXPECT_EQ(expected, sends + 1);

    // The canonical-form gate: a header claiming base == 0 never decodes
    // (checkpoint-free wires simply have no marker).
    const Bytes zero = encode_tsend(2, payload, tail, sends + 1, sig,
                                    /*base=*/0, h[base - 1].chain);
    // base == 0 encodes headerless; forge the marker form by hand instead.
    util::Writer forged;
    forged.u32(kCheckpointMarker).u64(0).bytes(h[base - 1].chain);
    forged.raw(util::ByteView(zero));
    EXPECT_FALSE(decode_tsend(std::move(forged).take()).has_value());
  }
}

TEST(WireFuzz, CheckpointHeaderTruncationsAndFlipsNeverCrashNeverSpoof) {
  FuzzWorld w;
  for (int trial = 0; trial < 100; ++trial) {
    std::uint64_t sends = 0;
    const History h = random_history(w.rng, w.s, w.rng.below(4) + 2, &sends);
    const std::size_t base = w.rng.below(h.size() - 1) + 1;
    const History tail(h.begin() + static_cast<std::ptrdiff_t>(base), h.end());
    const Bytes payload = random_bytes(w.rng, w.rng.below(24) + 1);
    const crypto::Signature sig =
        w.s.sign(tsend_signing_bytes(sends + 1, 3, payload, h.back().chain));
    const Bytes wire = encode_tsend(3, payload, tail, sends + 1, sig, base,
                                    h[base - 1].chain);
    for (std::size_t cut = 0; cut < wire.size(); cut += w.rng.below(7) + 1) {
      EXPECT_FALSE(decode_tsend(util::ByteView(wire).subspan(0, cut))
                       .has_value())
          << "trial " << trial << " cut " << cut;
    }
    // A flip inside the header region (marker + base + chain tip) must not
    // survive as the original checkpoint claim: either the decode fails or
    // the decoded (base, chain) differs — the deliver loop then checks that
    // claim against receiver-held state, so a changed claim is never trusted.
    const std::size_t header_len = 4 + 8 + 4 + h[base - 1].chain.size();
    Bytes flipped = wire;
    const std::size_t bit = w.rng.below(header_len * 8);
    flipped[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
    const auto c = decode_tsend(flipped);
    if (c.has_value()) {
      EXPECT_FALSE(c->base == base && c->base_chain == h[base - 1].chain)
          << "trial " << trial << " bit " << bit;
    }
  }
}

TEST(WireFuzz, CheckpointMarkerJunkNeverCrash) {
  FuzzWorld w;
  std::uint64_t decoded = 0;
  for (int trial = 0; trial < 2000; ++trial) {
    // Random bytes behind a valid marker word — exercises the header parse
    // (claimed base, claimed chain length) against arbitrary tails.
    util::Writer junk;
    junk.u32(kCheckpointMarker);
    junk.raw(random_bytes(w.rng, w.rng.below(100)));
    if (decode_tsend(std::move(junk).take()).has_value()) ++decoded;
  }
  EXPECT_LT(decoded, 4u);
}

// ---------------------------------------------------------------------------
// Reconfiguration codecs (src/reconfig/ + kv range migration): ShardTable,
// ConfigChange, RangeSpec, RangeSnapshot. These bytes travel through
// consensus slots (a Byzantine proposer can win a slot with arbitrary
// bytes) and over the catch-up control wire from unverified peers, so the
// decoders must be strict and total: forged counts capped by the bytes
// present, the snapshot digest failing closed, junk never crashing.
// ---------------------------------------------------------------------------

kv::ShardTable random_shard_table(sim::Rng& rng) {
  kv::ShardTable t;
  t.epoch = rng.below(1u << 20);
  t.groups = static_cast<std::uint32_t>(rng.below(6) + 1);
  const std::size_t buckets = static_cast<std::size_t>(t.groups)
                              << rng.below(4);
  t.buckets.resize(buckets);
  for (auto& b : t.buckets) {
    b = static_cast<std::uint32_t>(rng.below(t.groups));
  }
  return t;
}

kv::RangeSpec random_range_spec(sim::Rng& rng) {
  kv::RangeSpec spec;
  spec.epoch = rng.below(1u << 16);
  spec.table_buckets = static_cast<std::uint32_t>(1u << rng.below(7));
  // Strictly ascending, in-range bucket ids — the canonical form.
  const std::size_t want =
      rng.below(std::min<std::size_t>(spec.table_buckets, 6)) + 1;
  std::set<std::uint32_t> picks;
  while (picks.size() < want) {
    picks.insert(static_cast<std::uint32_t>(rng.below(spec.table_buckets)));
  }
  spec.buckets.assign(picks.begin(), picks.end());
  return spec;
}

kv::RangeSnapshot random_range_snapshot(sim::Rng& rng) {
  kv::RangeSnapshot snap;
  snap.spec = random_range_spec(rng);
  // Pairs in store (map) order, sessions in client-id order — canonical.
  std::map<Bytes, Bytes> pairs;
  for (std::size_t i = rng.below(8); i > 0; --i) {
    pairs[random_bytes(rng, rng.below(12) + 1)] = random_bytes(rng, rng.below(16));
  }
  snap.pairs.assign(pairs.begin(), pairs.end());
  std::uint64_t client = 0;
  for (std::size_t i = rng.below(5); i > 0; --i) {
    kv::SessionRecord rec;
    rec.client = (client += rng.below(9) + 1);
    rec.last_seq = rng.below(1u << 12);
    rec.reply.status = kv::Status::kOk;
    rec.reply.value = random_bytes(rng, rng.below(10));
    snap.sessions.push_back(std::move(rec));
  }
  return snap;
}

TEST(WireFuzz, ReconfigCodecsRoundTripExactly) {
  sim::Rng rng(0x5EC0F1ull);
  for (int trial = 0; trial < 200; ++trial) {
    const kv::ShardTable t = random_shard_table(rng);
    const auto td = kv::decode_shard_table(kv::encode_shard_table(t));
    ASSERT_TRUE(td.has_value()) << "trial " << trial;
    EXPECT_EQ(*td, t);

    reconfig::ConfigChange c;
    c.kind = rng.chance(0.5) ? reconfig::ChangeKind::kSplit
                             : reconfig::ChangeKind::kMerge;
    c.base_epoch = rng.next();
    c.src = static_cast<std::uint32_t>(rng.below(256));
    c.dst = static_cast<std::uint32_t>(rng.below(256));
    const auto cd =
        reconfig::decode_config_change(reconfig::encode_config_change(c));
    ASSERT_TRUE(cd.has_value()) << "trial " << trial;
    EXPECT_EQ(*cd, c);

    const kv::RangeSpec spec = random_range_spec(rng);
    const auto sd = kv::decode_range_spec(kv::encode_range_spec(spec));
    ASSERT_TRUE(sd.has_value()) << "trial " << trial;
    EXPECT_EQ(*sd, spec);

    const kv::RangeSnapshot snap = random_range_snapshot(rng);
    const auto nd = kv::decode_range_snapshot(kv::encode_range_snapshot(snap));
    ASSERT_TRUE(nd.has_value()) << "trial " << trial;
    EXPECT_EQ(*nd, snap);
  }
}

TEST(WireFuzz, ReconfigCodecTruncationsDecodeToNulloptNeverCrash) {
  sim::Rng rng(0x5EC0F2ull);
  for (int trial = 0; trial < 80; ++trial) {
    const Bytes tw = kv::encode_shard_table(random_shard_table(rng));
    const Bytes sw = kv::encode_range_spec(random_range_spec(rng));
    const Bytes nw = kv::encode_range_snapshot(random_range_snapshot(rng));
    for (std::size_t cut = 0; cut < tw.size(); cut += rng.below(5) + 1) {
      EXPECT_FALSE(
          kv::decode_shard_table(util::ByteView(tw).subspan(0, cut))
              .has_value());
    }
    for (std::size_t cut = 0; cut < sw.size(); cut += rng.below(5) + 1) {
      EXPECT_FALSE(
          kv::decode_range_spec(util::ByteView(sw).subspan(0, cut))
              .has_value());
    }
    for (std::size_t cut = 0; cut < nw.size(); cut += rng.below(7) + 1) {
      EXPECT_FALSE(
          kv::decode_range_snapshot(util::ByteView(nw).subspan(0, cut))
              .has_value());
    }
    // Trailing garbage is rejected (expect_end strictness).
    for (Bytes wire : {tw, sw, nw}) {
      wire.push_back(static_cast<std::uint8_t>(rng.below(256)));
      EXPECT_FALSE(kv::decode_shard_table(wire).has_value() &&
                   kv::decode_range_spec(wire).has_value() &&
                   kv::decode_range_snapshot(wire).has_value());
    }
  }
  // ConfigChange is fixed-size: every truncation must reject.
  const Bytes cw = reconfig::encode_config_change({});
  for (std::size_t cut = 0; cut < cw.size(); ++cut) {
    EXPECT_FALSE(
        reconfig::decode_config_change(util::ByteView(cw).subspan(0, cut))
            .has_value());
  }
}

TEST(WireFuzz, ReconfigForgedCountPrefixesCappedByBytesPresent) {
  // A forged count header (0xFFFFFFFF buckets / pairs) must fail the parse
  // without allocating for the claimed count — the unchecked-reserve class.
  util::Writer forged_table;
  forged_table.u64(0).u32(1).u32(0xFFFFFFFFu);
  forged_table.u32(0);  // one bucket of the four billion claimed
  EXPECT_FALSE(
      kv::decode_shard_table(std::move(forged_table).take()).has_value());

  util::Writer forged_spec;
  forged_spec.u64(1).u32(4).u32(0xFFFFFFFFu).u32(1);
  EXPECT_FALSE(
      kv::decode_range_spec(std::move(forged_spec).take()).has_value());

  sim::Rng rng(0x5EC0F3ull);
  const kv::RangeSnapshot snap = random_range_snapshot(rng);
  Bytes wire = kv::encode_range_snapshot(snap);
  // The pair count sits right after the length-prefixed spec block.
  const std::size_t count_at = 4 + (4 + 4 * snap.spec.buckets.size() + 8 + 4);
  ASSERT_LT(count_at + 4, wire.size());
  for (std::size_t i = 0; i < 4; ++i) wire[count_at + i] = 0xFF;
  EXPECT_FALSE(kv::decode_range_snapshot(wire).has_value());
}

TEST(WireFuzz, ReconfigSnapshotBitFlipsNeverAccepted) {
  // Unlike the plain command codec, the range snapshot carries a digest:
  // ANY flipped bit must fail closed, not just not-crash.
  sim::Rng rng(0x5EC0F4ull);
  for (int trial = 0; trial < 120; ++trial) {
    const Bytes wire = kv::encode_range_snapshot(random_range_snapshot(rng));
    Bytes flipped = wire;
    const std::size_t bit = rng.below(flipped.size() * 8);
    flipped[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
    EXPECT_FALSE(kv::decode_range_snapshot(flipped).has_value())
        << "trial " << trial << " bit " << bit;
  }
}

TEST(WireFuzz, ReconfigRandomBytesNeverCrashAnyDecoder) {
  sim::Rng rng(0x5EC0F5ull);
  std::uint64_t snapshots_decoded = 0;
  for (int trial = 0; trial < 2000; ++trial) {
    const Bytes junk = random_bytes(rng, rng.below(120));
    (void)kv::decode_shard_table(junk);
    (void)kv::decode_range_spec(junk);
    (void)reconfig::decode_config_change(junk);
    if (kv::decode_range_snapshot(junk).has_value()) ++snapshots_decoded;
  }
  // The embedded digest makes an accidental snapshot parse essentially
  // impossible.
  EXPECT_EQ(snapshots_decoded, 0u);
}

// ---------------------------------------------------------------------------
// Transaction record codecs (src/txn/) and the lock-carrying state codecs.
// Txn payloads ride consensus slots inside kv::Commands, so they inherit the
// same threat model: arbitrary bytes a Byzantine proposer can win with.
// ---------------------------------------------------------------------------

txn::PrepareRecord random_prepare(sim::Rng& rng) {
  txn::PrepareRecord p;
  p.txn = rng.next();
  p.write = rng.chance(0.3) ? txn::WriteKind::kDel : txn::WriteKind::kPut;
  if (p.write == txn::WriteKind::kPut) {
    p.value = random_bytes(rng, rng.below(48));
  }
  p.has_expected = rng.chance(0.5);
  if (p.has_expected) p.expected = random_bytes(rng, rng.below(16));
  return p;
}

TEST(WireFuzz, TxnRecordCodecsRoundTripExactly) {
  sim::Rng rng(0x7A10ull);
  for (int trial = 0; trial < 300; ++trial) {
    const txn::PrepareRecord p = random_prepare(rng);
    const auto dp = txn::decode_prepare(txn::encode_prepare(p));
    ASSERT_TRUE(dp.has_value()) << "trial " << trial;
    EXPECT_EQ(*dp, p);

    txn::DecisionRecord d;
    d.txn = rng.next();
    const auto dd = txn::decode_decision(txn::encode_decision(d));
    ASSERT_TRUE(dd.has_value()) << "trial " << trial;
    EXPECT_EQ(*dd, d);
  }
}

TEST(WireFuzz, TxnRecordTruncationsAndNoncanonicalFormsRejected) {
  sim::Rng rng(0x7A11ull);
  for (int trial = 0; trial < 150; ++trial) {
    const Bytes wire = txn::encode_prepare(random_prepare(rng));
    for (std::size_t cut = 0; cut < wire.size(); ++cut) {
      EXPECT_FALSE(
          txn::decode_prepare(util::ByteView(wire).subspan(0, cut)).has_value())
          << "trial " << trial << " cut " << cut;
    }
    Bytes extended = wire;
    extended.push_back(0);
    EXPECT_FALSE(txn::decode_prepare(extended).has_value());
  }

  // Non-canonical forms an encoder can never emit must still be rejected:
  // a delete buffering a payload, a bad write kind, a guard flag above 1.
  util::Writer del_with_value;
  del_with_value.u64(7)
      .u8(static_cast<std::uint8_t>(txn::WriteKind::kDel))
      .bytes(to_bytes("sneak"))
      .u8(0);
  EXPECT_FALSE(txn::decode_prepare(std::move(del_with_value).take()));
  for (const std::uint8_t kind : {std::uint8_t{0}, std::uint8_t{3},
                                  std::uint8_t{255}}) {
    util::Writer bad_kind;
    bad_kind.u64(7).u8(kind).bytes(Bytes{}).u8(0);
    EXPECT_FALSE(txn::decode_prepare(std::move(bad_kind).take()))
        << "kind " << int{kind};
  }
  util::Writer bad_guard;
  bad_guard.u64(7)
      .u8(static_cast<std::uint8_t>(txn::WriteKind::kPut))
      .bytes(Bytes{})
      .u8(2);
  EXPECT_FALSE(txn::decode_prepare(std::move(bad_guard).take()));

  const Bytes decision = txn::encode_decision({9});
  for (std::size_t cut = 0; cut < decision.size(); ++cut) {
    EXPECT_FALSE(txn::decode_decision(util::ByteView(decision).subspan(0, cut))
                     .has_value());
  }
  Bytes trailing = decision;
  trailing.push_back(0);
  EXPECT_FALSE(txn::decode_decision(trailing).has_value());
}

TEST(WireFuzz, TxnRecordRandomBytesNeverCrash) {
  sim::Rng rng(0x7A12ull);
  for (int trial = 0; trial < 2000; ++trial) {
    const Bytes junk = random_bytes(rng, rng.below(80));
    (void)txn::decode_prepare(junk);
    (void)txn::decode_decision(junk);
  }
}

TEST(WireFuzz, SignedTxnPrepareCrossShardReplayRejected) {
  // A PREPARE validly signed by its own client for shard 0's log, replayed
  // into shard 1 by a Byzantine member of both groups: the group binding in
  // the signing bytes must make it verify as forged — otherwise an attacker
  // could plant the victim's lock (and pending write) on a shard the
  // transaction never touched.
  crypto::KeyStore ks(0x51C7A0ull);
  const crypto::Signer client = ks.register_process(kv::client_signer_id(1));
  kv::Command c;
  c.op = kv::Op::kTxnPrepare;
  c.client = 1;
  c.seq = 1;
  c.key = to_bytes("acct-0");
  txn::PrepareRecord pr;
  pr.txn = 42;
  pr.write = txn::WriteKind::kPut;
  pr.value = to_bytes("999999");
  c.value = txn::encode_prepare(pr);
  const Bytes body = kv::encode_command(c);
  const Bytes wire = kv::encode_signed_command(
      body, client.sign(kv::command_signing_bytes(0, body)));

  kv::StateMachine home, other;
  home.set_keystore(&ks, /*group=*/0);
  other.set_keystore(&ks, /*group=*/1);
  home.apply(0, wire);
  EXPECT_EQ(home.forged(), 0u);
  EXPECT_EQ(home.locks_held(), 1u);  // the genuine wire locks at home
  other.apply(0, wire);
  EXPECT_EQ(other.forged(), 1u) << "cross-shard replay must verify as forged";
  EXPECT_EQ(other.locks_held(), 0u);
  EXPECT_EQ(other.ops_applied(), 0u);
}

/// random_kv_machine plus transaction traffic: prepares (guarded and not),
/// decisions (matching and orphan), malformed txn payloads — some locks
/// still held, every counter exercised.
kv::StateMachine random_txn_machine(sim::Rng& rng) {
  kv::StateMachine m = random_kv_machine(rng);
  std::map<std::uint64_t, std::uint64_t> seqs;
  for (kv::ClientId c = 1; c <= 4; ++c) seqs[c] = m.last_seq(c);
  const std::size_t ops = rng.below(16) + 4;
  for (std::size_t i = 0; i < ops; ++i) {
    kv::Command c;
    c.client = rng.below(4) + 1;
    c.seq = ++seqs[c.client];
    c.key = random_bytes(rng, rng.below(6) + 1);
    const std::size_t kind = rng.below(4);
    if (kind == 0) {
      c.op = kv::Op::kTxnPrepare;
      c.value = txn::encode_prepare(random_prepare(rng));
    } else if (kind == 1) {
      c.op = rng.chance(0.5) ? kv::Op::kTxnCommit : kv::Op::kTxnAbort;
      c.value = txn::encode_decision({rng.below(4)});
    } else if (kind == 2) {
      // Decision matching a held lock, if any — releases it.
      c.op = rng.chance(0.5) ? kv::Op::kTxnCommit : kv::Op::kTxnAbort;
      if (!m.locks().empty()) {
        const auto& [key, lock] = *m.locks().begin();
        c.key = key;
        c.client = lock.owner;
        c.seq = ++seqs[c.client];
        c.value = txn::encode_decision({lock.txn});
      } else {
        c.value = txn::encode_decision({7});
      }
    } else {
      c.op = kv::Op::kTxnPrepare;
      c.value = random_bytes(rng, rng.below(12));  // likely malformed payload
    }
    m.apply(100 + i, kv::encode_command(c));
  }
  return m;
}

TEST(WireFuzz, TxnSnapshotWithLocksRoundTripsExactly) {
  sim::Rng rng(0x7A13ull);
  std::uint64_t with_locks = 0;
  for (int trial = 0; trial < 150; ++trial) {
    const kv::StateMachine m = random_txn_machine(rng);
    if (m.locks_held() > 0) ++with_locks;
    kv::StateMachine fresh;
    ASSERT_TRUE(fresh.restore(m.snapshot())) << "trial " << trial;
    EXPECT_EQ(fresh.store_hash(), m.store_hash());
    EXPECT_EQ(fresh.locks_held(), m.locks_held());
    EXPECT_EQ(fresh.txn_prepared(), m.txn_prepared());
    EXPECT_EQ(fresh.txn_committed(), m.txn_committed());
    EXPECT_EQ(fresh.txn_aborted(), m.txn_aborted());
    EXPECT_EQ(fresh.txn_conflicts(), m.txn_conflicts());
    EXPECT_EQ(fresh.txn_orphans(), m.txn_orphans());
    EXPECT_EQ(fresh.txn_rejected(), m.txn_rejected());
    EXPECT_EQ(fresh.snapshot(), m.snapshot());
  }
  // The generator must actually produce held locks, or the lock section of
  // the codec went untested.
  EXPECT_GT(with_locks, 20u);
}

TEST(WireFuzz, TxnSnapshotTruncationsAndFlipsRejectedUntouched) {
  sim::Rng rng(0x7A14ull);
  for (int trial = 0; trial < 60; ++trial) {
    const Bytes wire = random_txn_machine(rng).snapshot();
    kv::StateMachine victim;
    victim.apply(0, kv::encode_command({kv::Op::kPut, 9, 1, to_bytes("canary"),
                                        to_bytes("alive"), {}}));
    const std::uint64_t before = victim.store_hash();
    for (std::size_t cut = 0; cut < wire.size(); cut += rng.below(9) + 1) {
      EXPECT_FALSE(victim.restore(util::ByteView(wire).subspan(0, cut)))
          << "trial " << trial << " cut " << cut;
    }
    Bytes flipped = wire;
    const std::size_t bit = rng.below(flipped.size() * 8);
    flipped[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
    EXPECT_FALSE(victim.restore(flipped)) << "trial " << trial;
    EXPECT_EQ(victim.store_hash(), before);
  }
}

TEST(WireFuzz, RangeSnapshotWithLocksRoundTripsAndFailsClosed) {
  sim::Rng rng(0x7A15ull);
  for (int trial = 0; trial < 100; ++trial) {
    kv::RangeSnapshot snap;
    snap.spec.epoch = rng.below(8) + 1;
    snap.spec.table_buckets = 4;
    snap.spec.buckets = {static_cast<std::uint32_t>(rng.below(4))};
    const std::size_t pairs = rng.below(4);
    for (std::size_t i = 0; i < pairs; ++i) {
      snap.pairs.emplace_back(to_bytes("k" + std::to_string(i)),
                              random_bytes(rng, rng.below(16)));
    }
    const std::size_t locks = rng.below(3) + 1;
    for (std::size_t i = 0; i < locks; ++i) {
      kv::LockRecord l;
      l.key = to_bytes("lk" + std::to_string(i));  // sorted by construction
      l.txn = rng.next();
      l.owner = rng.below(8) + 1;
      l.write = rng.chance(0.5) ? 1 : 2;
      l.value = random_bytes(rng, rng.below(16));
      l.has_expected = rng.chance(0.5) ? 1 : 0;
      if (l.has_expected != 0) l.expected = random_bytes(rng, rng.below(16));
      snap.locks.push_back(std::move(l));
    }
    // Prepare marks ride as their own tail section, sometimes absent.
    const std::size_t marks = rng.below(3);
    for (std::size_t i = 0; i < marks; ++i) {
      kv::PrepareMark pm;
      pm.client = i + 1;  // ascending by construction
      pm.seq = rng.below(64) + 1;
      pm.status = static_cast<std::uint8_t>(
          rng.chance(0.5) ? kv::Status::kOk : kv::Status::kTxnConflict);
      snap.prepare_marks.push_back(pm);
    }
    const Bytes wire = kv::encode_range_snapshot(snap);
    const auto d = kv::decode_range_snapshot(wire);
    ASSERT_TRUE(d.has_value()) << "trial " << trial;
    EXPECT_EQ(*d, snap) << "trial " << trial;

    // Truncations and any flipped bit fail the embedded digest, closed.
    for (std::size_t cut = 0; cut < wire.size(); cut += rng.below(9) + 1) {
      EXPECT_FALSE(
          kv::decode_range_snapshot(util::ByteView(wire).subspan(0, cut))
              .has_value())
          << "trial " << trial << " cut " << cut;
    }
    Bytes flipped = wire;
    const std::size_t bit = rng.below(flipped.size() * 8);
    flipped[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
    EXPECT_FALSE(kv::decode_range_snapshot(flipped).has_value())
        << "trial " << trial;
  }
}

TEST(WireFuzz, RangeSnapshotTailSectionsRejectNonCanonicalForms) {
  // Structural validators on the tagged tail fire before the digest check,
  // so these malformed forms must reject even with a consistent digest.
  kv::RangeSnapshot base;
  base.spec.epoch = 1;
  base.spec.table_buckets = 4;
  base.spec.buckets = {2};

  // Unordered prepare marks (the encoder writes whatever it is given; the
  // decoder enforces ascending clients).
  kv::RangeSnapshot unordered = base;
  unordered.prepare_marks.push_back({2, 5, 1});
  unordered.prepare_marks.push_back({1, 6, 1});
  EXPECT_FALSE(
      kv::decode_range_snapshot(kv::encode_range_snapshot(unordered))
          .has_value());

  // A zero-seq mark means "no mark" and is never drained.
  kv::RangeSnapshot zero_seq = base;
  zero_seq.prepare_marks.push_back({1, 0, 1});
  EXPECT_FALSE(
      kv::decode_range_snapshot(kv::encode_range_snapshot(zero_seq))
          .has_value());

  // Marks carry prepare outcomes only — a kStaleDup (non-persistable
  // marker) can never be one.
  kv::RangeSnapshot bad_status = base;
  bad_status.prepare_marks.push_back(
      {1, 3, static_cast<std::uint8_t>(kv::Status::kStaleDup)});
  EXPECT_FALSE(
      kv::decode_range_snapshot(kv::encode_range_snapshot(bad_status))
          .has_value());

  // Guard bytes without the guard flag are non-canonical.
  kv::RangeSnapshot stray_guard = base;
  {
    kv::LockRecord l;
    l.key = to_bytes("lk");
    l.txn = 7;
    l.owner = 1;
    l.write = 1;
    l.has_expected = 0;
    l.expected = to_bytes("stray");
    stray_guard.locks.push_back(std::move(l));
  }
  EXPECT_FALSE(
      kv::decode_range_snapshot(kv::encode_range_snapshot(stray_guard))
          .has_value());

  // Unknown or repeated tail tags reject regardless of the digest bytes:
  // splice extra sections into an otherwise valid wire.
  kv::RangeSnapshot marked = base;
  marked.prepare_marks.push_back({1, 3, 1});
  const Bytes wire = kv::encode_range_snapshot(marked);
  const Bytes no_tail_wire = kv::encode_range_snapshot(base);
  // Duplicate the marks section (tag 2 twice: not ascending).
  {
    const std::size_t tail = wire.size() - 8;          // digest offset
    const std::size_t head = no_tail_wire.size() - 8;  // tail-free prefix
    Bytes doubled(wire.begin(), wire.begin() + tail);
    doubled.insert(doubled.end(), wire.begin() + head, wire.begin() + tail);
    doubled.insert(doubled.end(), wire.begin() + tail, wire.end());
    EXPECT_FALSE(kv::decode_range_snapshot(doubled).has_value());
  }
  // Unknown tag 3 with enough bytes behind it to look like a section.
  {
    Bytes junk_tag(no_tail_wire.begin(), no_tail_wire.end() - 8);
    junk_tag.push_back(3);
    for (int i = 0; i < 12; ++i) junk_tag.push_back(0);
    junk_tag.insert(junk_tag.end(), no_tail_wire.end() - 8,
                    no_tail_wire.end());
    EXPECT_FALSE(kv::decode_range_snapshot(junk_tag).has_value());
  }
}

}  // namespace
}  // namespace mnm::core::trusted
