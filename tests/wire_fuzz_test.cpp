// Deterministic property/fuzz tests for the framed Byzantine wire decoders
// (T-send wires, history entry frames, receipts, NEB slots). Seeded
// sim::Rng, so every run exercises the same inputs — failures reproduce.
//
// Properties:
//  * encode_history / encode_tsend round-trip through decode_tsend, with and
//    without a verified prefix (the suffix-only decode path);
//  * random truncations and bit-flips of a valid wire must decode to nullopt
//    or fail verification — never crash, never over-read (the ASan/UBSan CI
//    job runs this binary), and never be *accepted*;
//  * a flip inside the verified prefix region must force the full-decode
//    fallback, never a prefix skip;
//  * pure random bytes never crash any framed decoder;
//  * the smr batch framing and the KV command codec share the decoder
//    hygiene: attacker-controlled count/length prefixes are capped by the
//    bytes actually present (the same unchecked-reserve class that caused
//    the decode_history bad_alloc), truncations and junk decode to
//    empty/nullopt, and round-trips are exact.

#include <gtest/gtest.h>

#include "src/core/nonequiv_broadcast.hpp"
#include "src/core/trusted_messaging.hpp"
#include "src/kv/command.hpp"
#include "src/sim/rng.hpp"
#include "src/smr/log.hpp"
#include "src/util/serde.hpp"

namespace mnm::core::trusted {
namespace {

using util::to_bytes;

Bytes random_bytes(sim::Rng& rng, std::size_t len) {
  Bytes b(len);
  for (auto& x : b) x = static_cast<std::uint8_t>(rng.below(256));
  return b;
}

/// A structurally valid random history for `s`'s process: chained, signed,
/// contiguous sent-seqs, arbitrary received entries.
History random_history(sim::Rng& rng, crypto::Signer& s, std::size_t entries,
                       std::uint64_t* sent_count = nullptr) {
  History h;
  Bytes prev;
  std::uint64_t next_sent = 1;
  for (std::size_t i = 0; i < entries; ++i) {
    HistoryEntry e;
    const bool sent = rng.chance(0.5);
    e.kind = sent ? HistoryEntry::Kind::kSent : HistoryEntry::Kind::kReceived;
    e.k = sent ? next_sent++ : rng.below(16) + 1;
    e.peer = static_cast<ProcessId>(rng.below(4));  // incl. kToAll
    e.payload = random_bytes(rng, rng.below(48));
    e.chain = chain_entry(prev, e.kind, e.k, e.peer, e.payload);
    e.sig = s.sign(e.chain);
    prev = e.chain;
    h.push_back(std::move(e));
  }
  if (sent_count != nullptr) *sent_count = next_sent - 1;
  return h;
}

/// The encoded body bytes (sans count header) of the first `j` entries —
/// what a receiver's verified-prefix cache would hold after accepting a
/// message that attached them.
Bytes body_prefix(const History& h, std::size_t j) {
  const History head(h.begin(), h.begin() + static_cast<std::ptrdiff_t>(j));
  const Bytes enc = encode_history(head);
  return Bytes(enc.begin() + 4, enc.end());
}

/// The deliver loop's full acceptance pipeline, standalone: decode,
/// structural verify, seq check, inner signature. Returns true iff a
/// receiver would accept the wire as `owner`'s `k`-th T-send.
bool audit(const crypto::KeyStore& ks, ProcessId owner, util::ByteView wire,
           std::uint64_t k) {
  const auto c = decode_tsend(wire);
  if (!c.has_value()) return false;
  Bytes prev_chain;
  std::uint64_t expected_sent = 1;
  if (!verify_history_suffix(ks, owner, c->suffix.data(), c->suffix.size(),
                             prev_chain, expected_sent)) {
    return false;
  }
  if (expected_sent != k || c->k != k) return false;
  return ks.valid_from(
      owner, tsend_signing_bytes(c->k, c->dst, c->payload, prev_chain),
      c->sig);
}

struct FuzzWorld {
  FuzzWorld() : rng(0xF00DF00Dull), ks(3), s(ks.register_process(1)) {}

  /// A fully valid wire for process 1's k-th T-send, k = #sends + 1.
  Bytes valid_wire(const History& h, std::uint64_t sent_count, Bytes* payload_out = nullptr) {
    const std::uint64_t k = sent_count + 1;
    const ProcessId dst = static_cast<ProcessId>(rng.below(4));
    const Bytes payload = random_bytes(rng, rng.below(64) + 1);
    const Bytes digest = h.empty() ? Bytes{} : h.back().chain;
    const crypto::Signature sig =
        s.sign(tsend_signing_bytes(k, dst, payload, digest));
    if (payload_out != nullptr) *payload_out = payload;
    return encode_tsend(dst, payload, h, k, sig);
  }

  sim::Rng rng;
  crypto::KeyStore ks;
  crypto::Signer s;
};

TEST(WireFuzz, RoundTripWithAndWithoutVerifiedPrefix) {
  FuzzWorld w;
  for (int trial = 0; trial < 200; ++trial) {
    std::uint64_t sends = 0;
    const History h = random_history(w.rng, w.s, w.rng.below(8), &sends);
    const Bytes wire = w.valid_wire(h, sends);
    ASSERT_TRUE(audit(w.ks, 1, wire, sends + 1)) << "trial " << trial;

    // Full decode reproduces every entry.
    const auto full = decode_tsend(wire);
    ASSERT_TRUE(full.has_value());
    EXPECT_EQ(full->prefix_entries, 0u);
    ASSERT_EQ(full->suffix.size(), h.size());
    for (std::size_t i = 0; i < h.size(); ++i) {
      EXPECT_EQ(full->suffix[i].chain, h[i].chain) << "trial " << trial;
      EXPECT_EQ(full->suffix[i].payload, h[i].payload);
    }

    // Suffix-only decode from any cache position yields exactly the tail.
    const std::size_t j = w.rng.below(h.size() + 1);
    const Bytes prefix = body_prefix(h, j);
    const auto part = decode_tsend(wire, prefix, j);
    ASSERT_TRUE(part.has_value());
    if (j > 0) {
      EXPECT_EQ(part->prefix_entries, j);
      ASSERT_EQ(part->suffix.size(), h.size() - j);
      for (std::size_t i = 0; i < part->suffix.size(); ++i) {
        EXPECT_EQ(part->suffix[i].chain, h[j + i].chain);
      }
      // Resuming verification from the cached chain state accepts.
      Bytes prev = j > 0 ? h[j - 1].chain : Bytes{};
      std::uint64_t expected = 1;
      for (std::size_t i = 0; i < j; ++i) {
        if (h[i].kind == HistoryEntry::Kind::kSent) ++expected;
      }
      EXPECT_TRUE(verify_history_suffix(w.ks, 1, part->suffix.data(),
                                        part->suffix.size(), prev, expected));
      EXPECT_EQ(expected, sends + 1);
    }
  }
}

TEST(WireFuzz, TruncationsDecodeToNulloptNeverCrash) {
  FuzzWorld w;
  for (int trial = 0; trial < 100; ++trial) {
    std::uint64_t sends = 0;
    const History h = random_history(w.rng, w.s, w.rng.below(6) + 1, &sends);
    const Bytes wire = w.valid_wire(h, sends);
    // Every proper truncation: removing trailing bytes can never leave a
    // parseable wire (length prefixes and expect_end overrun instead).
    for (std::size_t cut = 0; cut < wire.size();
         cut += w.rng.below(7) + 1) {
      const auto c = decode_tsend(util::ByteView(wire).subspan(0, cut));
      EXPECT_FALSE(c.has_value()) << "trial " << trial << " cut " << cut;
    }
  }
}

TEST(WireFuzz, BitFlipsNeverAccepted) {
  FuzzWorld w;
  for (int trial = 0; trial < 300; ++trial) {
    std::uint64_t sends = 0;
    const History h = random_history(w.rng, w.s, w.rng.below(5), &sends);
    Bytes wire = w.valid_wire(h, sends);
    const std::size_t bit = w.rng.below(wire.size() * 8);
    wire[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
    // Decode may succeed (flips in payload bytes parse fine) but the
    // acceptance pipeline must reject: every wire byte is covered by the
    // chain, the seq checks, or the inner signature.
    EXPECT_FALSE(audit(w.ks, 1, wire, sends + 1))
        << "trial " << trial << " bit " << bit;
  }
}

TEST(WireFuzz, FlipInsidePrefixForcesFullDecodeFallback) {
  FuzzWorld w;
  for (int trial = 0; trial < 100; ++trial) {
    std::uint64_t sends = 0;
    const History h = random_history(w.rng, w.s, w.rng.below(5) + 2, &sends);
    Bytes wire = w.valid_wire(h, sends);
    const std::size_t j = w.rng.below(h.size() - 1) + 1;
    const Bytes prefix = body_prefix(h, j);
    // Sanity: the untouched wire skips.
    ASSERT_EQ(decode_tsend(wire, prefix, j)->prefix_entries, j);
    // A flip anywhere inside the wire's prefix region must kill the skip —
    // the decoder falls back to entry 0 (and the full verify then rejects).
    wire[w.rng.below(prefix.size())] ^= 0x01;
    const auto c = decode_tsend(wire, prefix, j);
    if (c.has_value()) {
      EXPECT_EQ(c->prefix_entries, 0u) << "trial " << trial;
      EXPECT_FALSE(audit(w.ks, 1, wire, sends + 1));
    }
  }
}

TEST(WireFuzz, RandomBytesNeverCrashAnyDecoder) {
  FuzzWorld w;
  std::uint64_t decoded = 0;
  for (int trial = 0; trial < 2000; ++trial) {
    const Bytes junk = random_bytes(w.rng, w.rng.below(160));
    if (decode_tsend(junk).has_value()) ++decoded;
    if (decode_history(junk).has_value()) ++decoded;
    if (Receipt::decode(junk).has_value()) ++decoded;
    if (decode_neb_slot(junk).has_value()) ++decoded;
    // Random bytes with a random (receiver-side) verified prefix — exercises
    // the skip-compare bounds too.
    const Bytes junk_prefix = random_bytes(w.rng, w.rng.below(32));
    (void)decode_tsend(junk, junk_prefix, w.rng.below(4) + 1,
                       w.rng.below(64));
  }
  // Unstructured noise essentially never parses (no assertion on exact 0 —
  // an empty history body + empty tail is a few dozen constrained bytes).
  EXPECT_LT(decoded, 4u);
}

// ---------------------------------------------------------------------------
// smr::encode_batch / decode_batch — the slot-payload framing every engine
// decision flows through. decode_batch is total (garbage applies as zero
// commands), so the properties are: exact round-trips, truncations/flips
// never crash, and a forged count prefix never pre-allocates past the bytes
// present.
// ---------------------------------------------------------------------------

TEST(WireFuzz, SmrBatchRoundTripsExactly) {
  sim::Rng rng(0xBA7C4ull);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<Bytes> cmds;
    const std::size_t count = rng.below(6);
    for (std::size_t i = 0; i < count; ++i) {
      cmds.push_back(random_bytes(rng, rng.below(40)));
    }
    EXPECT_EQ(smr::decode_batch(smr::encode_batch(cmds)), cmds)
        << "trial " << trial;
  }
}

TEST(WireFuzz, SmrBatchTruncationsDecodeEmptyNeverCrash) {
  sim::Rng rng(0xBA7C5ull);
  for (int trial = 0; trial < 100; ++trial) {
    std::vector<Bytes> cmds;
    const std::size_t count = rng.below(4) + 1;
    for (std::size_t i = 0; i < count; ++i) {
      cmds.push_back(random_bytes(rng, rng.below(24) + 1));
    }
    const Bytes wire = smr::encode_batch(cmds);
    // Strict framing: every proper truncation under-runs a length prefix or
    // trips expect_end, and the total decoder maps that to the empty batch.
    for (std::size_t cut = 0; cut < wire.size(); cut += rng.below(5) + 1) {
      EXPECT_TRUE(
          smr::decode_batch(util::ByteView(wire).subspan(0, cut)).empty())
          << "trial " << trial << " cut " << cut;
    }
    // Bit flips parse or fail, deterministically — never crash. A flip in a
    // length prefix is the interesting case (huge claimed lengths).
    Bytes flipped = wire;
    const std::size_t bit = rng.below(flipped.size() * 8);
    flipped[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
    (void)smr::decode_batch(flipped);
  }
}

TEST(WireFuzz, SmrBatchForgedCountPrefixCappedByBytesPresent) {
  // A Byzantine slot winner claims 2^32 - 1 commands in a 12-byte payload.
  // The decoder's reserve must be capped by the bytes actually present —
  // an uncapped reserve(count) is a bad_alloc DoS on every correct replica.
  util::Writer w;
  w.u32(0xFFFFFFFFu);
  w.raw(util::to_bytes("12345678"));
  EXPECT_TRUE(smr::decode_batch(std::move(w).take()).empty());

  // Same with the largest count that still parses one command: fine.
  util::Writer w2;
  w2.u32(1).bytes(util::to_bytes("x"));
  const auto one = smr::decode_batch(std::move(w2).take());
  ASSERT_EQ(one.size(), 1u);
  EXPECT_EQ(one[0], util::to_bytes("x"));
}

TEST(WireFuzz, SmrBatchRandomBytesNeverCrash) {
  sim::Rng rng(0xBA7C6ull);
  for (int trial = 0; trial < 2000; ++trial) {
    (void)smr::decode_batch(random_bytes(rng, rng.below(120)));
  }
}

// ---------------------------------------------------------------------------
// kv command codec — client operations inside batch commands. Strict decode
// (nullopt on malformed), bounded by bytes present.
// ---------------------------------------------------------------------------

kv::Command random_kv_command(sim::Rng& rng) {
  kv::Command c;
  c.op = static_cast<kv::Op>(rng.below(4) + 1);
  c.client = rng.next();
  c.seq = rng.next();
  c.key = random_bytes(rng, rng.below(32));
  c.value = random_bytes(rng, rng.below(48));
  c.expected = random_bytes(rng, rng.below(16));
  return c;
}

TEST(WireFuzz, KvCommandRoundTripsExactly) {
  sim::Rng rng(0xC0DE1ull);
  for (int trial = 0; trial < 300; ++trial) {
    const kv::Command c = random_kv_command(rng);
    const auto d = kv::decode_command(kv::encode_command(c));
    ASSERT_TRUE(d.has_value()) << "trial " << trial;
    EXPECT_EQ(*d, c);
  }
}

TEST(WireFuzz, KvCommandTruncationsAndFlipsNeverCrash) {
  sim::Rng rng(0xC0DE2ull);
  for (int trial = 0; trial < 150; ++trial) {
    const kv::Command c = random_kv_command(rng);
    const Bytes wire = kv::encode_command(c);
    for (std::size_t cut = 0; cut < wire.size(); cut += rng.below(5) + 1) {
      EXPECT_FALSE(
          kv::decode_command(util::ByteView(wire).subspan(0, cut)).has_value())
          << "trial " << trial << " cut " << cut;
    }
    // A flipped bit may still decode (payload bytes carry no redundancy) —
    // the property is totality, plus strictness when a length prefix now
    // overruns the buffer.
    Bytes flipped = wire;
    const std::size_t bit = rng.below(flipped.size() * 8);
    flipped[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
    (void)kv::decode_command(flipped);
  }
}

TEST(WireFuzz, KvCommandRandomBytesNeverCrash) {
  sim::Rng rng(0xC0DE3ull);
  std::uint64_t decoded = 0;
  for (int trial = 0; trial < 2000; ++trial) {
    if (kv::decode_command(random_bytes(rng, rng.below(100))).has_value()) {
      ++decoded;
    }
  }
  // The leading op byte (1..4 of 256) + three strict length prefixes +
  // expect_end make accidental parses vanishingly rare.
  EXPECT_LT(decoded, 4u);
}

}  // namespace
}  // namespace mnm::core::trusted
