// Tests for trusted messaging (T-send/T-receive, Algorithm 3): history
// chains, receipts, structural verification, and the Paxos history validator
// that makes Byzantine ≡ crash.

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <vector>

#include "src/core/nonequiv_broadcast.hpp"
#include "src/core/paxos.hpp"
#include "src/core/paxos_validator.hpp"
#include "src/core/transport_mux.hpp"
#include "src/core/trusted_messaging.hpp"
#include "src/mem/memory.hpp"
#include "src/sim/executor.hpp"

namespace mnm::core::trusted {
namespace {

using sim::Executor;
using sim::Task;
using util::to_bytes;
using util::to_string;

struct TrustedFixture {
  explicit TrustedFixture(std::size_t n, HistoryValidator validator =
                                             accept_all_validator())
      : n(n), keystore(11) {
    for (std::size_t i = 0; i < 3; ++i) {
      auto mp = std::make_unique<mem::Memory>(exec, static_cast<MemoryId>(i + 1));
      regions = make_neb_regions(*mp, n);
      memories.push_back(std::move(mp));
      iface.push_back(memories.back().get());
    }
    for (ProcessId p : all_processes(n)) {
      signers.push_back(keystore.register_process(p));
      slots.push_back(std::make_unique<NebSlots>(exec, iface, regions));
      nebs.push_back(std::make_unique<NonEquivBroadcast>(
          exec, *slots.back(), keystore, signers.back(), NebConfig{n, 1}));
      transports.push_back(std::make_unique<TrustedTransport>(
          exec, *nebs.back(), keystore, signers.back(), TrustedConfig{n},
          validator));
    }
  }

  void start_all() {
    for (std::size_t i = 0; i < n; ++i) {
      nebs[i]->start();
      transports[i]->start();
    }
  }

  std::size_t n;
  Executor exec;
  crypto::KeyStore keystore;
  std::vector<std::unique_ptr<mem::Memory>> memories;
  std::vector<mem::MemoryIface*> iface;
  std::map<ProcessId, RegionId> regions;
  std::vector<crypto::Signer> signers;
  std::vector<std::unique_ptr<NebSlots>> slots;
  std::vector<std::unique_ptr<NonEquivBroadcast>> nebs;
  std::vector<std::unique_ptr<TrustedTransport>> transports;
};

TEST(HistoryStructure, ChainVerifies) {
  crypto::KeyStore ks(1);
  crypto::Signer s = ks.register_process(1);
  History h;
  Bytes prev;
  for (int i = 1; i <= 3; ++i) {
    HistoryEntry e;
    e.kind = HistoryEntry::Kind::kSent;
    e.k = static_cast<std::uint64_t>(i);
    e.peer = kToAll;
    e.payload = to_bytes("m" + std::to_string(i));
    e.chain = chain_entry(prev, e.kind, e.k, e.peer, e.payload);
    e.sig = s.sign(e.chain);
    prev = e.chain;
    h.push_back(e);
  }
  EXPECT_TRUE(verify_history_structure(ks, 1, h));
}

TEST(HistoryStructure, TamperedPayloadBreaksChain) {
  crypto::KeyStore ks(1);
  crypto::Signer s = ks.register_process(1);
  History h;
  HistoryEntry e;
  e.kind = HistoryEntry::Kind::kSent;
  e.k = 1;
  e.peer = kToAll;
  e.payload = to_bytes("original");
  e.chain = chain_entry({}, e.kind, e.k, e.peer, e.payload);
  e.sig = s.sign(e.chain);
  h.push_back(e);
  ASSERT_TRUE(verify_history_structure(ks, 1, h));

  h[0].payload = to_bytes("revised!");  // retroactive edit
  EXPECT_FALSE(verify_history_structure(ks, 1, h));
}

TEST(HistoryStructure, SkippedSeqRejected) {
  crypto::KeyStore ks(1);
  crypto::Signer s = ks.register_process(1);
  History h;
  HistoryEntry e;
  e.kind = HistoryEntry::Kind::kSent;
  e.k = 2;  // should be 1
  e.peer = kToAll;
  e.payload = to_bytes("m");
  e.chain = chain_entry({}, e.kind, e.k, e.peer, e.payload);
  e.sig = s.sign(e.chain);
  h.push_back(e);
  EXPECT_FALSE(verify_history_structure(ks, 1, h));
}

TEST(HistoryStructure, WrongSignerRejected) {
  crypto::KeyStore ks(1);
  crypto::Signer s1 = ks.register_process(1);
  (void)ks.register_process(2);
  History h;
  HistoryEntry e;
  e.kind = HistoryEntry::Kind::kSent;
  e.k = 1;
  e.peer = kToAll;
  e.payload = to_bytes("m");
  e.chain = chain_entry({}, e.kind, e.k, e.peer, e.payload);
  e.sig = s1.sign(e.chain);
  h.push_back(e);
  EXPECT_TRUE(verify_history_structure(ks, 1, h));
  EXPECT_FALSE(verify_history_structure(ks, 2, h));  // claimed owner mismatch
}

TEST(TSendWire, PaddedHistoryEntryFrameRejected) {
  // The deliver loop's prefix cache byte-compares the *raw* wire body, so
  // decode_tsend must reject non-canonical entry frames (trailing bytes
  // inside a length prefix) — otherwise a Byzantine sender could alternate
  // encodings of one history and force full re-verification every message.
  crypto::KeyStore ks(9);
  crypto::Signer s = ks.register_process(1);
  History h;
  HistoryEntry e;
  e.kind = HistoryEntry::Kind::kSent;
  e.k = 1;
  e.peer = kToAll;
  e.payload = to_bytes("m");
  e.chain = chain_entry({}, e.kind, e.k, e.peer, e.payload);
  e.sig = s.sign(e.chain);
  h.push_back(e);
  const Bytes payload = to_bytes("p");
  const crypto::Signature sig = s.sign(to_bytes("outer"));

  const Bytes canonical = encode_tsend(2, payload, h, 2, sig);
  ASSERT_TRUE(decode_tsend(canonical).has_value());

  // Same content, but the entry frame carries one trailing garbage byte.
  Bytes entry_enc = h[0].encode();
  entry_enc.push_back(0x5a);
  util::Writer w;
  w.bytes(entry_enc);  // padded frame
  w.u32(0);            // terminator
  w.u32(2).bytes(payload).u64(2);
  sig.encode(w);
  EXPECT_FALSE(decode_tsend(std::move(w).take()).has_value());
}

TEST(TrustedTransport, FabricatedPrefixWithCopiedChainTipRejected) {
  // Attack on the deliver-side prefix cache: after two honest sends, the
  // receiver's cache holds (entries=1, tip=chain_1). A Byzantine sender then
  // attaches a history whose first entry is fabricated but carries the
  // *copied* real chain tip (and a genuine signature over it — entry sigs
  // cover only the chain value). The cache-hit check must compare stored
  // verified bytes, not incoming chain fields, so this message is rejected:
  // the fabricated entry's recomputed chain does not match.
  TrustedFixture f(3);
  f.start_all();
  f.transports[1]->send_all(to_bytes("one"));
  f.exec.run(300);
  f.transports[1]->send_all(to_bytes("two"));
  f.exec.run(300);
  ASSERT_EQ(f.transports[0]->rejected(), 0u);

  // Craft the malicious third broadcast by hand and push it through p2's
  // (honest) NEB as its k=3 broadcast.
  crypto::Signer& s2 = f.signers[1];
  const Bytes real_chain1 =
      chain_entry({}, HistoryEntry::Kind::kSent, 1, kToAll, to_bytes("one"));
  HistoryEntry fab;
  fab.kind = HistoryEntry::Kind::kSent;
  fab.k = 1;
  fab.peer = kToAll;
  fab.payload = to_bytes("EVIL");   // not what was really sent
  fab.chain = real_chain1;          // copied real tip
  fab.sig = s2.sign(fab.chain);     // genuinely signed (sigs cover the chain)
  HistoryEntry e2;
  e2.kind = HistoryEntry::Kind::kSent;
  e2.k = 2;
  e2.peer = kToAll;
  e2.payload = to_bytes("two");
  e2.chain = chain_entry(real_chain1, e2.kind, e2.k, e2.peer, e2.payload);
  e2.sig = s2.sign(e2.chain);
  History h{fab, e2};
  const Bytes payload3 = to_bytes("three");
  const crypto::Signature outer =
      s2.sign(tsend_signing_bytes(3, kToAll, payload3, e2.chain));
  const Bytes wire = encode_tsend(kToAll, payload3, h, 3, outer);
  f.exec.spawn([](NonEquivBroadcast* neb, Bytes wire) -> sim::Task<void> {
    (void)co_await neb->broadcast(std::move(wire));
  }(f.nebs[1].get(), wire));
  f.exec.run(500);

  EXPECT_GE(f.transports[0]->rejected(), 1u);
  EXPECT_GE(f.transports[2]->rejected(), 1u);
}

TEST(Receipts, RoundTripAndVerify) {
  crypto::KeyStore ks(3);
  crypto::Signer s = ks.register_process(5);
  const Bytes payload = to_bytes("msg");
  const Bytes hdigest(32, 0x42);
  const crypto::Signature sig =
      s.sign(tsend_signing_bytes(7, 2, payload, hdigest));
  Receipt r{2, payload, hdigest, sig};
  const auto decoded = Receipt::decode(r.encode());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_TRUE(verify_receipt(ks, 5, 7, *decoded));
  EXPECT_FALSE(verify_receipt(ks, 5, 8, *decoded));  // wrong k
  Receipt forged = *decoded;
  forged.payload = to_bytes("other");
  EXPECT_FALSE(verify_receipt(ks, 5, 7, forged));
}

TEST(TrustedTransport, DeliversToAddresseeOnly) {
  TrustedFixture f(3);
  f.start_all();
  f.transports[0]->send(2, to_bytes("for p2"));
  std::map<ProcessId, int> got;
  for (ProcessId p : all_processes(3)) {
    f.exec.spawn([](TrustedTransport* t, int* count) -> Task<void> {
      while (true) {
        (void)co_await t->incoming().recv();
        ++*count;
      }
    }(f.transports[p - 1].get(), &got[p]));
  }
  f.exec.run(500);
  EXPECT_EQ(got[1], 0);
  EXPECT_EQ(got[2], 1);
  EXPECT_EQ(got[3], 0);
  // Everyone audited it regardless (receipts recorded).
  EXPECT_GE(f.transports[2]->history().size(), 1u);
}

TEST(TrustedTransport, SendAllReachesEveryoneIncludingSelf) {
  TrustedFixture f(3);
  f.start_all();
  f.transports[1]->send_all(to_bytes("broadcast"));
  std::map<ProcessId, int> got;
  for (ProcessId p : all_processes(3)) {
    f.exec.spawn([](TrustedTransport* t, int* count) -> Task<void> {
      while (true) {
        (void)co_await t->incoming().recv();
        ++*count;
      }
    }(f.transports[p - 1].get(), &got[p]));
  }
  f.exec.run(500);
  EXPECT_EQ(got[1], 1);
  EXPECT_EQ(got[2], 1);
  EXPECT_EQ(got[3], 1);
}

TEST(TrustedTransport, ValidatorRejectionsAreCounted) {
  // A validator that rejects everything: messages are audited, rejected,
  // never delivered.
  const auto reject_all = [](ProcessId, const History&, std::uint64_t,
                             ProcessId, const Bytes&) { return false; };
  TrustedFixture f(3, reject_all);
  f.start_all();
  f.transports[0]->send_all(to_bytes("doomed"));
  f.exec.run(500);
  EXPECT_GE(f.transports[1]->rejected(), 1u);
  EXPECT_TRUE(f.transports[1]->incoming().empty());
}

// --- Paxos validator semantics. ---

struct ValidatorFixture {
  ValidatorFixture() : ks(5) {
    for (ProcessId p : all_processes(3)) signers.push_back(ks.register_process(p));
    validator = paxos_validator(ks, 3);
  }

  /// Build a history for `owner` from (kind, peer, paxos-msg) tuples,
  /// with receipts signed properly by their origins.
  HistoryEntry make_sent(ProcessId owner, std::uint64_t k, ProcessId dst,
                         const Bytes& payload, Bytes& prev_chain,
                         std::uint64_t& next_k) {
    HistoryEntry e;
    e.kind = HistoryEntry::Kind::kSent;
    e.k = k;
    e.peer = dst;
    e.payload = payload;
    e.chain = chain_entry(prev_chain, e.kind, e.k, e.peer, e.payload);
    e.sig = signers[owner - 1].sign(e.chain);
    prev_chain = e.chain;
    next_k = k + 1;
    return e;
  }

  HistoryEntry make_received(ProcessId owner, ProcessId origin,
                             std::uint64_t origin_k, ProcessId dst,
                             const Bytes& payload, Bytes& prev_chain) {
    const Bytes hdigest(32, 0);  // arbitrary: signed below, so consistent
    const crypto::Signature osig = signers[origin - 1].sign(
        tsend_signing_bytes(origin_k, dst, payload, hdigest));
    const Receipt r{dst, payload, hdigest, osig};
    HistoryEntry e;
    e.kind = HistoryEntry::Kind::kReceived;
    e.k = origin_k;
    e.peer = origin;
    e.payload = r.encode();
    e.chain = chain_entry(prev_chain, e.kind, e.k, e.peer, e.payload);
    e.sig = signers[owner - 1].sign(e.chain);
    prev_chain = e.chain;
    return e;
  }

  crypto::KeyStore ks;
  std::vector<crypto::Signer> signers;
  HistoryValidator validator;
};

TEST(PaxosValidator, PromiseWithoutPrepareRejected) {
  ValidatorFixture f;
  History h;  // empty: p2 never received a prepare
  const Bytes promise =
      PaxosMsg{PaxosKind::kPromise, 4, 0, false, {}}.encode();
  EXPECT_FALSE(f.validator(2, h, 1, 2, promise));
}

TEST(PaxosValidator, PromiseAfterPrepareAccepted) {
  ValidatorFixture f;
  History h;
  Bytes chain;
  // p2 received PREPARE(4) from p2's owner... ballot 4 owner = 4%3+1 = p2.
  // Use ballot 3 (owner p1) prepared by p1, promise sent to p1.
  const Bytes prepare = PaxosMsg{PaxosKind::kPrepare, 3, 0, false, {}}.encode();
  h.push_back(f.make_received(2, 1, 1, kToAll, prepare, chain));
  const Bytes promise = PaxosMsg{PaxosKind::kPromise, 3, 0, false, {}}.encode();
  EXPECT_TRUE(f.validator(2, h, 1, 1, promise));
}

TEST(PaxosValidator, DoublePromiseOnLowerBallotRejected) {
  ValidatorFixture f;
  History h;
  Bytes chain;
  std::uint64_t next_k = 1;
  const Bytes prep6 = PaxosMsg{PaxosKind::kPrepare, 6, 0, false, {}}.encode();
  const Bytes prep3 = PaxosMsg{PaxosKind::kPrepare, 3, 0, false, {}}.encode();
  h.push_back(f.make_received(2, 1, 1, kToAll, prep6, chain));
  h.push_back(f.make_sent(2, 1, 1,
                          PaxosMsg{PaxosKind::kPromise, 6, 0, false, {}}.encode(),
                          chain, next_k));
  h.push_back(f.make_received(2, 1, 2, kToAll, prep3, chain));
  // Promising 3 after promising 6 is a protocol violation.
  const Bytes promise3 = PaxosMsg{PaxosKind::kPromise, 3, 0, false, {}}.encode();
  EXPECT_FALSE(f.validator(2, h, 2, 1, promise3));
}

TEST(PaxosValidator, AcceptWithoutQuorumOfPromisesRejected) {
  ValidatorFixture f;
  History h;
  Bytes chain;
  // p1 sends ACCEPT(3, v) having received only its own promise.
  const Bytes promise = PaxosMsg{PaxosKind::kPromise, 3, 0, false, {}}.encode();
  h.push_back(f.make_received(1, 1, 1, 1, promise, chain));
  const Bytes accept =
      PaxosMsg{PaxosKind::kAccept, 3, 0, true, to_bytes("v")}.encode();
  EXPECT_FALSE(f.validator(1, h, 1, kToAll, accept));
}

TEST(PaxosValidator, AcceptMustCarryHighestAcceptedValue) {
  ValidatorFixture f;
  History h;
  Bytes chain;
  // p1 received two promises for ballot 3: p2's empty, p3's carrying
  // (acc_ballot=2, "locked"). ACCEPT(3) must propose "locked".
  const Bytes pr2 = PaxosMsg{PaxosKind::kPromise, 3, 0, false, {}}.encode();
  const Bytes pr3 =
      PaxosMsg{PaxosKind::kPromise, 3, 2, true, to_bytes("locked")}.encode();
  h.push_back(f.make_received(1, 2, 1, 1, pr2, chain));
  h.push_back(f.make_received(1, 3, 1, 1, pr3, chain));
  const Bytes good =
      PaxosMsg{PaxosKind::kAccept, 3, 0, true, to_bytes("locked")}.encode();
  const Bytes bad =
      PaxosMsg{PaxosKind::kAccept, 3, 0, true, to_bytes("mine")}.encode();
  EXPECT_TRUE(f.validator(1, h, 1, kToAll, good));
  EXPECT_FALSE(f.validator(1, h, 1, kToAll, bad));
}

TEST(PaxosValidator, ForeignBallotAcceptRejected) {
  ValidatorFixture f;
  History h;
  // Ballot 4's owner is p2 (4 % 3 + 1); p1 cannot send ACCEPT(4).
  const Bytes accept =
      PaxosMsg{PaxosKind::kAccept, 4, 0, true, to_bytes("v")}.encode();
  EXPECT_FALSE(f.validator(1, h, 1, kToAll, accept));
}

TEST(PaxosValidator, FastBallotZeroAllowsLeaderInput) {
  ValidatorFixture f;
  History h;
  const Bytes accept =
      PaxosMsg{PaxosKind::kAccept, 0, 0, true, to_bytes("anything")}.encode();
  EXPECT_TRUE(f.validator(1, h, 1, kToAll, accept));   // p1 owns ballot 0
  EXPECT_FALSE(f.validator(2, h, 1, kToAll, accept));  // p2 does not
}

TEST(PaxosValidator, DecideRequiresAcceptedQuorumForOwnAccept) {
  ValidatorFixture f;
  History h;
  Bytes chain;
  std::uint64_t next_k = 1;
  // p1 fast-path: sends ACCEPT(0, v), receives ACCEPTED(0) from p2, p3.
  const Bytes accept =
      PaxosMsg{PaxosKind::kAccept, 0, 0, true, to_bytes("v")}.encode();
  h.push_back(f.make_sent(1, 1, kToAll, accept, chain, next_k));
  const Bytes accepted = PaxosMsg{PaxosKind::kAccepted, 0, 0, false, {}}.encode();
  h.push_back(f.make_received(1, 2, 1, 1, accepted, chain));
  h.push_back(f.make_received(1, 3, 1, 1, accepted, chain));
  const Bytes decide_v =
      PaxosMsg{PaxosKind::kDecide, 0, 0, true, to_bytes("v")}.encode();
  const Bytes decide_w =
      PaxosMsg{PaxosKind::kDecide, 0, 0, true, to_bytes("w")}.encode();
  EXPECT_TRUE(f.validator(1, h, 2, kToAll, decide_v));
  EXPECT_FALSE(f.validator(1, h, 2, kToAll, decide_w));  // wrong value
}

TEST(PaxosValidator, SetupPayloadsAlwaysLegal) {
  ValidatorFixture f;
  History h;
  Bytes setup = TransportMux::frame(kMuxSetup, to_bytes("any value at all"));
  EXPECT_TRUE(f.validator(2, h, 1, kToAll, setup));
}

TEST(PaxosValidator, MalformedPaxosPayloadRejected) {
  ValidatorFixture f;
  History h;
  EXPECT_FALSE(f.validator(2, h, 1, kToAll, to_bytes("\x03garbage")));
}

}  // namespace
}  // namespace mnm::core::trusted
