// Tests for trusted messaging (T-send/T-receive, Algorithm 3): history
// chains, receipts, structural verification, and the Paxos history validator
// that makes Byzantine ≡ crash.

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <vector>

#include "src/core/nonequiv_broadcast.hpp"
#include "src/core/paxos.hpp"
#include "src/core/paxos_validator.hpp"
#include "src/core/transport_mux.hpp"
#include "src/core/trusted_messaging.hpp"
#include "src/mem/memory.hpp"
#include "src/sim/executor.hpp"

namespace mnm::core::trusted {
namespace {

using sim::Executor;
using sim::Task;
using util::to_bytes;
using util::to_string;

struct TrustedFixture {
  explicit TrustedFixture(std::size_t n,
                          HistoryValidator validator = accept_all_validator(),
                          std::size_t checkpoint_interval = 0)
      : n(n), keystore(11) {
    for (std::size_t i = 0; i < 3; ++i) {
      auto mp = std::make_unique<mem::Memory>(exec, static_cast<MemoryId>(i + 1));
      regions = make_neb_regions(*mp, n);
      memories.push_back(std::move(mp));
      iface.push_back(memories.back().get());
    }
    for (ProcessId p : all_processes(n)) {
      signers.push_back(keystore.register_process(p));
      slots.push_back(std::make_unique<NebSlots>(exec, iface, regions));
      nebs.push_back(std::make_unique<NonEquivBroadcast>(
          exec, *slots.back(), keystore, signers.back(), NebConfig{n, 1}));
      transports.push_back(std::make_unique<TrustedTransport>(
          exec, *nebs.back(), keystore, signers.back(),
          TrustedConfig{n, checkpoint_interval}, validator));
    }
  }

  void start_all() {
    for (std::size_t i = 0; i < n; ++i) {
      nebs[i]->start();
      transports[i]->start();
    }
  }

  std::size_t n;
  Executor exec;
  crypto::KeyStore keystore;
  std::vector<std::unique_ptr<mem::Memory>> memories;
  std::vector<mem::MemoryIface*> iface;
  std::map<ProcessId, RegionId> regions;
  std::vector<crypto::Signer> signers;
  std::vector<std::unique_ptr<NebSlots>> slots;
  std::vector<std::unique_ptr<NonEquivBroadcast>> nebs;
  std::vector<std::unique_ptr<TrustedTransport>> transports;
};

TEST(HistoryStructure, ChainVerifies) {
  crypto::KeyStore ks(1);
  crypto::Signer s = ks.register_process(1);
  History h;
  Bytes prev;
  for (int i = 1; i <= 3; ++i) {
    HistoryEntry e;
    e.kind = HistoryEntry::Kind::kSent;
    e.k = static_cast<std::uint64_t>(i);
    e.peer = kToAll;
    e.payload = to_bytes("m" + std::to_string(i));
    e.chain = chain_entry(prev, e.kind, e.k, e.peer, e.payload);
    e.sig = s.sign(e.chain);
    prev = e.chain;
    h.push_back(e);
  }
  EXPECT_TRUE(verify_history_structure(ks, 1, h));
}

TEST(HistoryStructure, TamperedPayloadBreaksChain) {
  crypto::KeyStore ks(1);
  crypto::Signer s = ks.register_process(1);
  History h;
  HistoryEntry e;
  e.kind = HistoryEntry::Kind::kSent;
  e.k = 1;
  e.peer = kToAll;
  e.payload = to_bytes("original");
  e.chain = chain_entry({}, e.kind, e.k, e.peer, e.payload);
  e.sig = s.sign(e.chain);
  h.push_back(e);
  ASSERT_TRUE(verify_history_structure(ks, 1, h));

  h[0].payload = to_bytes("revised!");  // retroactive edit
  EXPECT_FALSE(verify_history_structure(ks, 1, h));
}

TEST(HistoryStructure, SkippedSeqRejected) {
  crypto::KeyStore ks(1);
  crypto::Signer s = ks.register_process(1);
  History h;
  HistoryEntry e;
  e.kind = HistoryEntry::Kind::kSent;
  e.k = 2;  // should be 1
  e.peer = kToAll;
  e.payload = to_bytes("m");
  e.chain = chain_entry({}, e.kind, e.k, e.peer, e.payload);
  e.sig = s.sign(e.chain);
  h.push_back(e);
  EXPECT_FALSE(verify_history_structure(ks, 1, h));
}

TEST(HistoryStructure, WrongSignerRejected) {
  crypto::KeyStore ks(1);
  crypto::Signer s1 = ks.register_process(1);
  (void)ks.register_process(2);
  History h;
  HistoryEntry e;
  e.kind = HistoryEntry::Kind::kSent;
  e.k = 1;
  e.peer = kToAll;
  e.payload = to_bytes("m");
  e.chain = chain_entry({}, e.kind, e.k, e.peer, e.payload);
  e.sig = s1.sign(e.chain);
  h.push_back(e);
  EXPECT_TRUE(verify_history_structure(ks, 1, h));
  EXPECT_FALSE(verify_history_structure(ks, 2, h));  // claimed owner mismatch
}

TEST(TSendWire, PaddedHistoryEntryFrameRejected) {
  // The deliver loop's prefix cache byte-compares the *raw* wire body, so
  // decode_tsend must reject non-canonical entry frames (trailing bytes
  // inside a length prefix) — otherwise a Byzantine sender could alternate
  // encodings of one history and force full re-verification every message.
  crypto::KeyStore ks(9);
  crypto::Signer s = ks.register_process(1);
  History h;
  HistoryEntry e;
  e.kind = HistoryEntry::Kind::kSent;
  e.k = 1;
  e.peer = kToAll;
  e.payload = to_bytes("m");
  e.chain = chain_entry({}, e.kind, e.k, e.peer, e.payload);
  e.sig = s.sign(e.chain);
  h.push_back(e);
  const Bytes payload = to_bytes("p");
  const crypto::Signature sig = s.sign(to_bytes("outer"));

  const Bytes canonical = encode_tsend(2, payload, h, 2, sig);
  ASSERT_TRUE(decode_tsend(canonical).has_value());

  // Same content, but the entry frame carries one trailing garbage byte.
  Bytes entry_enc = h[0].encode();
  entry_enc.push_back(0x5a);
  util::Writer w;
  w.bytes(entry_enc);  // padded frame
  w.u32(0);            // terminator
  w.u32(2).bytes(payload).u64(2);
  sig.encode(w);
  EXPECT_FALSE(decode_tsend(std::move(w).take()).has_value());
}

TEST(TrustedTransport, FabricatedPrefixWithCopiedChainTipRejected) {
  // Attack on the deliver-side prefix cache: after two honest sends, the
  // receiver's cache holds (entries=1, tip=chain_1). A Byzantine sender then
  // attaches a history whose first entry is fabricated but carries the
  // *copied* real chain tip (and a genuine signature over it — entry sigs
  // cover only the chain value). The cache-hit check must compare stored
  // verified bytes, not incoming chain fields, so this message is rejected:
  // the fabricated entry's recomputed chain does not match.
  TrustedFixture f(3);
  f.start_all();
  f.transports[1]->send_all(to_bytes("one"));
  f.exec.run(300);
  f.transports[1]->send_all(to_bytes("two"));
  f.exec.run(300);
  ASSERT_EQ(f.transports[0]->rejected(), 0u);

  // Craft the malicious third broadcast by hand and push it through p2's
  // (honest) NEB as its k=3 broadcast.
  crypto::Signer& s2 = f.signers[1];
  const Bytes real_chain1 =
      chain_entry({}, HistoryEntry::Kind::kSent, 1, kToAll, to_bytes("one"));
  HistoryEntry fab;
  fab.kind = HistoryEntry::Kind::kSent;
  fab.k = 1;
  fab.peer = kToAll;
  fab.payload = to_bytes("EVIL");   // not what was really sent
  fab.chain = real_chain1;          // copied real tip
  fab.sig = s2.sign(fab.chain);     // genuinely signed (sigs cover the chain)
  HistoryEntry e2;
  e2.kind = HistoryEntry::Kind::kSent;
  e2.k = 2;
  e2.peer = kToAll;
  e2.payload = to_bytes("two");
  e2.chain = chain_entry(real_chain1, e2.kind, e2.k, e2.peer, e2.payload);
  e2.sig = s2.sign(e2.chain);
  History h{fab, e2};
  const Bytes payload3 = to_bytes("three");
  const crypto::Signature outer =
      s2.sign(tsend_signing_bytes(3, kToAll, payload3, e2.chain));
  const Bytes wire = encode_tsend(kToAll, payload3, h, 3, outer);
  f.exec.spawn([](NonEquivBroadcast* neb, Bytes wire) -> sim::Task<void> {
    (void)co_await neb->broadcast(std::move(wire));
  }(f.nebs[1].get(), wire));
  f.exec.run(500);

  EXPECT_GE(f.transports[0]->rejected(), 1u);
  EXPECT_GE(f.transports[2]->rejected(), 1u);
}

/// Build a well-chained, properly signed kSent entry (helper for crafting
/// adversarial histories below).
HistoryEntry make_sent_entry(crypto::Signer& s, const Bytes& prev_chain,
                             std::uint64_t k, ProcessId dst,
                             const Bytes& payload) {
  HistoryEntry e;
  e.kind = HistoryEntry::Kind::kSent;
  e.k = k;
  e.peer = dst;
  e.payload = payload;
  e.chain = chain_entry(prev_chain, e.kind, e.k, e.peer, e.payload);
  e.sig = s.sign(e.chain);
  return e;
}

sim::Task<void> raw_broadcast(NonEquivBroadcast* neb, Bytes wire) {
  (void)co_await neb->broadcast(std::move(wire));
}

TEST(TSendWire, PrefixClaimLongerThanWireFallsBackToFullDecode) {
  // decode_tsend must never trust a verified prefix longer than the wire:
  // it falls back to decoding from entry 0 (and must not read past the
  // buffer — the ASan job watches this path).
  crypto::KeyStore ks(5);
  crypto::Signer s = ks.register_process(1);
  History h{make_sent_entry(s, {}, 1, kToAll, to_bytes("m"))};
  const crypto::Signature sig =
      s.sign(tsend_signing_bytes(2, kToAll, to_bytes("p"), h[0].chain));
  const Bytes wire = encode_tsend(kToAll, to_bytes("p"), h, 2, sig);

  Bytes long_prefix(wire.size() + 64, 0x7e);
  const auto c = decode_tsend(wire, long_prefix, /*prefix_entries=*/9);
  ASSERT_TRUE(c.has_value());
  EXPECT_EQ(c->prefix_entries, 0u);
  EXPECT_EQ(c->suffix.size(), 1u);

  // A prefix that is the right length but not *our* bytes must not be
  // skipped either — the memcmp anchors identity in receiver-stored bytes.
  const Bytes real_body = util::to_bytes(c->history_body);
  Bytes fake_body = real_body;
  fake_body[fake_body.size() / 2] ^= 0x01;
  const auto miss = decode_tsend(wire, fake_body, /*prefix_entries=*/1);
  ASSERT_TRUE(miss.has_value());
  EXPECT_EQ(miss->prefix_entries, 0u);
  EXPECT_EQ(miss->suffix.size(), 1u);

  // And the genuine stored bytes are skipped — suffix-only decode.
  const auto hit = decode_tsend(wire, real_body, /*prefix_entries=*/1);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->prefix_entries, 1u);
  EXPECT_EQ(hit->suffix.size(), 0u);
  EXPECT_EQ(hit->prefix_bytes_compared, real_body.size());
}

TEST(TrustedTransport, PrefixClaimLongerThanReceiverStoredRejected) {
  // A Byzantine broadcaster writes a NEB slot claiming more shared-prefix
  // bytes than the receiver's stored previous delivered message has. The
  // claim is unverifiable (those bytes are outside what the signature's
  // suffix digest covers), so NEB must refuse delivery outright.
  TrustedFixture f(3);
  f.start_all();
  f.transports[1]->send_all(to_bytes("one"));
  f.exec.run(300);
  f.transports[1]->send_all(to_bytes("two"));
  f.exec.run(300);
  ASSERT_EQ(f.transports[0]->tsend_stats().accepted, 2u);

  // Craft p2's k=3 wire honestly — from its *real* history (sends plus the
  // receipts its own audits appended) — but claim a prefix longer than the
  // receivers' stored k=2 delivery.
  crypto::Signer& s2 = f.signers[1];
  const History h = f.transports[1]->history();
  ASSERT_EQ(h.size(), 4u);  // sent one, receipt, sent two, receipt
  const Bytes payload3 = to_bytes("three");
  const crypto::Signature outer =
      s2.sign(tsend_signing_bytes(3, kToAll, payload3, h.back().chain));
  const Bytes wire3 = encode_tsend(kToAll, payload3, h, 3, outer);

  const std::uint32_t bogus_claim = static_cast<std::uint32_t>(wire3.size());
  const crypto::Signature slot_sig =
      s2.sign(neb_signing_bytes(3, wire3, bogus_claim));
  const Bytes slot_bytes = encode_neb_slot(3, wire3, slot_sig, bogus_claim);
  f.exec.spawn([](TrustedFixture* f, Bytes slot_bytes) -> sim::Task<void> {
    for (auto* m : f->iface) {
      (void)co_await m->write(2, f->regions.at(2), "neb/2/3/2", slot_bytes);
    }
  }(&f, slot_bytes));
  f.exec.run(500);

  // Never delivered: the transports saw no third message at all.
  EXPECT_EQ(f.transports[0]->tsend_stats().deliveries, 2u);
  EXPECT_EQ(f.transports[0]->rejected(), 0u);

  // The same wire with an honest claim goes through — and rides the
  // suffix-only path: the two entries the receivers verified on message 2
  // are hopped over, only the two new ones are decoded.
  f.exec.spawn(raw_broadcast(f.nebs[1].get(), wire3));
  f.exec.run(500);
  const TsendStats& st = f.transports[0]->tsend_stats();
  EXPECT_EQ(st.accepted, 3u);
  EXPECT_EQ(st.entries_skipped, 2u);
  EXPECT_EQ(st.entries_decoded, 4u);  // 0 + 2 + 2 entries per message
}

TEST(TrustedTransport, ByteFlipInsideClaimedSharedPrefixRejected) {
  // The suffix digest deliberately does not cover the claimed shared
  // prefix; the *only* thing standing between a Byzantine sender and a
  // revised prefix is the receiver-side byte compare. Flip one byte inside
  // the claimed region: (a) if the claim covers the flip, NEB's compare
  // against the previous delivered message must refuse delivery; (b) if the
  // claim honestly stops before the flip, NEB delivers and the transport's
  // residual compare must reject — full re-decode, chain mismatch.
  TrustedFixture f(3);
  f.start_all();
  f.transports[1]->send_all(to_bytes("one"));
  f.exec.run(300);
  f.transports[1]->send_all(to_bytes("two"));
  f.exec.run(300);
  ASSERT_EQ(f.transports[0]->tsend_stats().accepted, 2u);

  crypto::Signer& s2 = f.signers[1];
  const History h = f.transports[1]->history();
  const Bytes payload3 = to_bytes("three");
  const crypto::Signature outer =
      s2.sign(tsend_signing_bytes(3, kToAll, payload3, h.back().chain));
  Bytes wire3 = encode_tsend(kToAll, payload3, h, 3, outer);
  // Flip a byte inside the first entry's frame — well inside the region the
  // receivers verified on message 2.
  const std::size_t flip = 21;  // payload byte of entry 1
  wire3[flip] ^= 0x01;

  // (a) Claim covers the flip: the NEB-level compare must catch it.
  const std::uint32_t covering_claim = static_cast<std::uint32_t>(flip + 8);
  const crypto::Signature slot_sig =
      s2.sign(neb_signing_bytes(3, wire3, covering_claim));
  const Bytes slot_bytes = encode_neb_slot(3, wire3, slot_sig, covering_claim);
  f.exec.spawn([](TrustedFixture* f, Bytes slot_bytes) -> sim::Task<void> {
    for (auto* m : f->iface) {
      (void)co_await m->write(2, f->regions.at(2), "neb/2/3/2", slot_bytes);
    }
  }(&f, slot_bytes));
  f.exec.run(500);
  EXPECT_EQ(f.transports[0]->tsend_stats().deliveries, 2u);  // no delivery

  // (b) Honest claim (stops at the flip, computed by broadcast()): NEB
  // delivers, and the transport's residual prefix compare rejects — the
  // flipped prefix never rides the suffix-only path.
  f.exec.spawn(raw_broadcast(f.nebs[1].get(), wire3));
  f.exec.run(500);
  const TsendStats& st = f.transports[0]->tsend_stats();
  EXPECT_EQ(st.deliveries, 3u);
  EXPECT_EQ(st.accepted, 2u);
  EXPECT_GE(f.transports[0]->rejected(), 1u);
  EXPECT_EQ(st.entries_skipped, 0u);  // the flip forced a full re-decode
}

TEST(TrustedTransport, SuffixSeqRewindRejectedThenHonestRetryAccepted) {
  // Suffix entries whose sent-seqs rewind must be rejected even when the
  // verified prefix matches (the chain can be internally consistent — the
  // monotone sent-seq check is what catches it), and the reject must roll
  // the caches back so a subsequent honest message still verifies.
  TrustedFixture f(3);
  f.start_all();
  f.transports[1]->send_all(to_bytes("one"));
  f.exec.run(300);
  f.transports[1]->send_all(to_bytes("two"));
  f.exec.run(300);
  ASSERT_EQ(f.transports[0]->tsend_stats().accepted, 2u);

  crypto::Signer& s2 = f.signers[1];
  const History h = f.transports[1]->history();  // [s1, r1, s2, r2]
  ASSERT_EQ(h.size(), 4u);
  // The next entry rewinds the sent-seq to 2 — properly chained and signed.
  History bad = h;
  bad.push_back(make_sent_entry(s2, h.back().chain, 2, kToAll,
                                to_bytes("again")));
  const Bytes payload3 = to_bytes("three");
  const crypto::Signature outer_bad =
      s2.sign(tsend_signing_bytes(3, kToAll, payload3, bad.back().chain));
  f.exec.spawn(raw_broadcast(f.nebs[1].get(),
                             encode_tsend(kToAll, payload3, bad, 3, outer_bad)));
  f.exec.run(500);
  {
    const TsendStats& st = f.transports[0]->tsend_stats();
    EXPECT_EQ(st.deliveries, 3u);
    EXPECT_EQ(st.accepted, 2u);
    EXPECT_EQ(f.transports[0]->rejected(), 1u);
    EXPECT_EQ(st.entries_skipped, 2u);  // prefix matched; the suffix sank it
  }

  // Honest k=4: history records a third send, prefix still the verified two
  // entries — the rejected message did not advance (or poison) the cache.
  History good = h;
  good.push_back(make_sent_entry(s2, h.back().chain, 3, kToAll,
                                 to_bytes("three")));
  const Bytes payload4 = to_bytes("four");
  const crypto::Signature outer_good =
      s2.sign(tsend_signing_bytes(4, kToAll, payload4, good.back().chain));
  f.exec.spawn(raw_broadcast(
      f.nebs[1].get(), encode_tsend(kToAll, payload4, good, 4, outer_good)));
  f.exec.run(500);
  const TsendStats& st = f.transports[0]->tsend_stats();
  EXPECT_EQ(st.accepted, 3u);
  EXPECT_EQ(f.transports[0]->rejected(), 1u);
  EXPECT_EQ(st.entries_skipped, 4u);  // retry resumed from the old prefix
}

TEST(TrustedTransport, ValidatorRejectThenRetryRollsBackTogether) {
  // A stateful validator following the resumable contract: it commits its
  // per-owner entry count only on accept. The transport must call it with
  // prefix_entries equal to that committed count (or 0 on a rebuild) —
  // lockstep — including after a reject, where both sides must have rolled
  // back together.
  // `committed` is captured by value, so every transport's copy of the
  // validator owns independent per-owner state (as paxos_validator does);
  // only the violation flag is shared for the final assertion.
  auto violated = std::make_shared<bool>(false);
  const auto validator =
      [violated, committed = std::map<ProcessId, std::size_t>{}](
          const ValidatorCall& call) mutable {
        const std::size_t have = committed[call.owner];
        if (call.prefix_entries != have && call.prefix_entries != 0) {
          *violated = true;
          return false;
        }
        // Reject the message being sent when its payload is "BAD"; history
        // entries themselves are fine (mirrors paxos_validator, which judges
        // the *send*, with receipts as evidence).
        if (util::to_string(*call.payload) == "BAD") return false;
        committed[call.owner] = call.prefix_entries + call.suffix_len;
        return true;
      };

  TrustedFixture f(3, validator);
  f.start_all();
  std::vector<std::string> got;
  f.exec.spawn([](TrustedTransport* t, std::vector<std::string>* got)
                   -> Task<void> {
    while (true) {
      const TMsg m = co_await t->incoming().recv();
      got->push_back(to_string(m.payload));
    }
  }(f.transports[0].get(), &got));

  f.transports[1]->send_all(to_bytes("okA"));
  f.exec.run(300);
  f.transports[1]->send_all(to_bytes("BAD"));
  f.exec.run(300);
  EXPECT_EQ(f.transports[0]->rejected(), 1u);
  f.transports[1]->send_all(to_bytes("okB"));
  f.exec.run(300);
  f.transports[1]->send_all(to_bytes("okC"));
  f.exec.run(300);

  EXPECT_EQ(got, (std::vector<std::string>{"okA", "okB", "okC"}));
  EXPECT_FALSE(*violated);
  EXPECT_EQ(f.transports[0]->rejected(), 1u);
  const TsendStats& st = f.transports[0]->tsend_stats();
  EXPECT_EQ(st.deliveries, 4u);
  EXPECT_EQ(st.accepted, 3u);
  // okB's history (3 entries incl. the rejected send — p2's own audit also
  // rejected "BAD", so no receipt was recorded for it) was re-decoded in
  // full after the lockstep rollback, and okC resumed past all of it.
  EXPECT_EQ(st.entries_skipped, 3u);
}

TEST(Receipts, RoundTripAndVerify) {
  crypto::KeyStore ks(3);
  crypto::Signer s = ks.register_process(5);
  const Bytes payload = to_bytes("msg");
  const Bytes hdigest(32, 0x42);
  const crypto::Signature sig =
      s.sign(tsend_signing_bytes(7, 2, payload, hdigest));
  Receipt r{2, payload, hdigest, sig};
  const auto decoded = Receipt::decode(r.encode());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_TRUE(verify_receipt(ks, 5, 7, *decoded));
  EXPECT_FALSE(verify_receipt(ks, 5, 8, *decoded));  // wrong k
  Receipt forged = *decoded;
  forged.payload = to_bytes("other");
  EXPECT_FALSE(verify_receipt(ks, 5, 7, forged));
}

TEST(TrustedTransport, DeliversToAddresseeOnly) {
  TrustedFixture f(3);
  f.start_all();
  f.transports[0]->send(2, to_bytes("for p2"));
  std::map<ProcessId, int> got;
  for (ProcessId p : all_processes(3)) {
    f.exec.spawn([](TrustedTransport* t, int* count) -> Task<void> {
      while (true) {
        (void)co_await t->incoming().recv();
        ++*count;
      }
    }(f.transports[p - 1].get(), &got[p]));
  }
  f.exec.run(500);
  EXPECT_EQ(got[1], 0);
  EXPECT_EQ(got[2], 1);
  EXPECT_EQ(got[3], 0);
  // Everyone audited it regardless (receipts recorded).
  EXPECT_GE(f.transports[2]->history().size(), 1u);
}

TEST(TrustedTransport, SendAllReachesEveryoneIncludingSelf) {
  TrustedFixture f(3);
  f.start_all();
  f.transports[1]->send_all(to_bytes("broadcast"));
  std::map<ProcessId, int> got;
  for (ProcessId p : all_processes(3)) {
    f.exec.spawn([](TrustedTransport* t, int* count) -> Task<void> {
      while (true) {
        (void)co_await t->incoming().recv();
        ++*count;
      }
    }(f.transports[p - 1].get(), &got[p]));
  }
  f.exec.run(500);
  EXPECT_EQ(got[1], 1);
  EXPECT_EQ(got[2], 1);
  EXPECT_EQ(got[3], 1);
}

TEST(TrustedTransport, ValidatorRejectionsAreCounted) {
  // A validator that rejects everything: messages are audited, rejected,
  // never delivered.
  const auto reject_all = [](const ValidatorCall&) { return false; };
  TrustedFixture f(3, reject_all);
  f.start_all();
  f.transports[0]->send_all(to_bytes("doomed"));
  f.exec.run(500);
  EXPECT_GE(f.transports[1]->rejected(), 1u);
  EXPECT_TRUE(f.transports[1]->incoming().empty());
}

// --- History checkpointing (crash-and-rejoin support). ---

TEST(TSendCheckpoint, SenderDropsPublishedPrefixReceiversFollowAnchored) {
  // Checkpoint after every wire that published >= 2 entries: the sender's
  // retained history and every subsequent wire stay bounded, receivers keep
  // accepting via the anchored path, and nothing is ever rejected.
  TrustedFixture f(3, accept_all_validator(), /*checkpoint_interval=*/2);
  f.start_all();
  std::map<ProcessId, int> got;
  for (ProcessId p : all_processes(3)) {
    f.exec.spawn([](TrustedTransport* t, int* count) -> Task<void> {
      while (true) {
        (void)co_await t->incoming().recv();
        ++*count;
      }
    }(f.transports[p - 1].get(), &got[p]));
  }
  for (int i = 0; i < 6; ++i) {
    f.transports[0]->send_all(to_bytes("m" + std::to_string(i)));
    f.exec.run(300 * (i + 1));
  }
  EXPECT_EQ(got[2], 6);
  EXPECT_EQ(got[3], 6);
  const TrustedTransport& sender = *f.transports[0];
  EXPECT_GT(sender.checkpoints(), 0u);
  EXPECT_GT(sender.history_base(), 0u);
  // Bounded retention: far fewer live entries than the run produced.
  EXPECT_LT(sender.history().size(), sender.history_base() + 2);
  for (ProcessId p = 2; p <= 3; ++p) {
    const TrustedTransport& rx = *f.transports[p - 1];
    EXPECT_EQ(rx.rejected(), 0u) << "p" << p;
    EXPECT_EQ(rx.checkpoint_rejected(), 0u) << "p" << p;
    EXPECT_GT(rx.anchored_resumes(), 0u)
        << "p" << p << ": checkpointed wires must take the anchored path";
    // The receiver's verified position reaches past the sender's checkpoint
    // (it lags only the not-yet-published tail: the latest send's own entry
    // and self-receipt, which no wire has carried yet).
    const PeerCheckpoint cp = rx.peer_checkpoint(1);
    EXPECT_GE(cp.entries, sender.history_base()) << "p" << p;
    EXPECT_LE(cp.entries, sender.history_base() + sender.history().size())
        << "p" << p;
  }
}

TEST(TSendCheckpoint, SeededCheckpointResumesVerificationAfterRestart) {
  // A receiver restarts with nothing but an exported checkpoint (its own
  // recovered verification position): seeding it must let the very next
  // checkpointed wire verify from that anchor instead of entry 0.
  TrustedFixture f(3, accept_all_validator(), /*checkpoint_interval=*/2);
  f.start_all();
  for (int i = 0; i < 4; ++i) {
    f.transports[0]->send_all(to_bytes("m" + std::to_string(i)));
    f.exec.run(300 * (i + 1));
  }
  ASSERT_GT(f.transports[0]->checkpoints(), 0u);

  TrustedTransport& rx = *f.transports[1];
  const PeerCheckpoint cp = rx.peer_checkpoint(1);
  ASSERT_GT(cp.entries, 0u);
  // Simulate the restart: the seed wipes the cached body and re-enters the
  // position as pure checkpoint state (base = entries, nothing retained).
  rx.seed_peer_checkpoint(1, cp);
  const std::uint64_t resumes_before = rx.anchored_resumes();
  const std::uint64_t accepted_before = rx.tsend_stats().accepted;

  f.transports[0]->send_all(to_bytes("after-restart"));
  f.exec.run(2000);
  EXPECT_EQ(rx.checkpoint_rejected(), 0u);
  EXPECT_GT(rx.anchored_resumes(), resumes_before)
      << "the post-restart wire must verify from the seeded anchor";
  EXPECT_EQ(rx.tsend_stats().accepted, accepted_before + 1);
}

TEST(TSendCheckpoint, MismatchedAnchorRejectedNotTrusted) {
  // The checkpoint header is sender-claimed: a receiver whose held position
  // does not match it must reject, not adopt. Seed a forged position (wrong
  // chain tip) and watch the next wire bounce.
  TrustedFixture f(3, accept_all_validator(), /*checkpoint_interval=*/2);
  f.start_all();
  for (int i = 0; i < 4; ++i) {
    f.transports[0]->send_all(to_bytes("m" + std::to_string(i)));
    f.exec.run(300 * (i + 1));
  }
  ASSERT_GT(f.transports[0]->checkpoints(), 0u);

  TrustedTransport& rx = *f.transports[1];
  PeerCheckpoint forged = rx.peer_checkpoint(1);
  ASSERT_FALSE(forged.chain.empty());
  forged.chain[0] ^= 0x01;
  rx.seed_peer_checkpoint(1, forged);
  const std::uint64_t accepted_before = rx.tsend_stats().accepted;

  f.transports[0]->send_all(to_bytes("bounces"));
  f.exec.run(2000);
  EXPECT_GE(rx.checkpoint_rejected(), 1u);
  EXPECT_EQ(rx.tsend_stats().accepted, accepted_before)
      << "a wire anchored at an unverifiable position must not deliver";
}

// --- Paxos validator semantics. ---

struct ValidatorFixture {
  ValidatorFixture() : ks(5) {
    for (ProcessId p : all_processes(3)) signers.push_back(ks.register_process(p));
    validator = paxos_validator(ks, 3);
  }

  /// Build a history for `owner` from (kind, peer, paxos-msg) tuples,
  /// with receipts signed properly by their origins.
  HistoryEntry make_sent(ProcessId owner, std::uint64_t k, ProcessId dst,
                         const Bytes& payload, Bytes& prev_chain,
                         std::uint64_t& next_k) {
    HistoryEntry e;
    e.kind = HistoryEntry::Kind::kSent;
    e.k = k;
    e.peer = dst;
    e.payload = payload;
    e.chain = chain_entry(prev_chain, e.kind, e.k, e.peer, e.payload);
    e.sig = signers[owner - 1].sign(e.chain);
    prev_chain = e.chain;
    next_k = k + 1;
    return e;
  }

  HistoryEntry make_received(ProcessId owner, ProcessId origin,
                             std::uint64_t origin_k, ProcessId dst,
                             const Bytes& payload, Bytes& prev_chain) {
    const Bytes hdigest(32, 0);  // arbitrary: signed below, so consistent
    const crypto::Signature osig = signers[origin - 1].sign(
        tsend_signing_bytes(origin_k, dst, payload, hdigest));
    const Receipt r{dst, payload, hdigest, osig};
    HistoryEntry e;
    e.kind = HistoryEntry::Kind::kReceived;
    e.k = origin_k;
    e.peer = origin;
    e.payload = r.encode();
    e.chain = chain_entry(prev_chain, e.kind, e.k, e.peer, e.payload);
    e.sig = signers[owner - 1].sign(e.chain);
    prev_chain = e.chain;
    return e;
  }

  /// Drive the resumable validator the way the transport's rebuild path
  /// does: prefix_entries = 0 and the whole history as the suffix.
  bool check(ProcessId owner, const History& h, std::uint64_t k, ProcessId dst,
             const Bytes& payload) {
    ValidatorCall call;
    call.owner = owner;
    call.suffix = h.data();
    call.suffix_len = h.size();
    call.prefix_entries = 0;
    call.k = k;
    call.dst = dst;
    call.payload = &payload;
    return validator(call);
  }

  crypto::KeyStore ks;
  std::vector<crypto::Signer> signers;
  HistoryValidator validator;
};

TEST(PaxosValidator, PromiseWithoutPrepareRejected) {
  ValidatorFixture f;
  History h;  // empty: p2 never received a prepare
  const Bytes promise =
      PaxosMsg{PaxosKind::kPromise, 4, 0, false, {}}.encode();
  EXPECT_FALSE(f.check(2, h, 1, 2, promise));
}

TEST(PaxosValidator, PromiseAfterPrepareAccepted) {
  ValidatorFixture f;
  History h;
  Bytes chain;
  // p2 received PREPARE(4) from p2's owner... ballot 4 owner = 4%3+1 = p2.
  // Use ballot 3 (owner p1) prepared by p1, promise sent to p1.
  const Bytes prepare = PaxosMsg{PaxosKind::kPrepare, 3, 0, false, {}}.encode();
  h.push_back(f.make_received(2, 1, 1, kToAll, prepare, chain));
  const Bytes promise = PaxosMsg{PaxosKind::kPromise, 3, 0, false, {}}.encode();
  EXPECT_TRUE(f.check(2, h, 1, 1, promise));
}

TEST(PaxosValidator, DoublePromiseOnLowerBallotRejected) {
  ValidatorFixture f;
  History h;
  Bytes chain;
  std::uint64_t next_k = 1;
  const Bytes prep6 = PaxosMsg{PaxosKind::kPrepare, 6, 0, false, {}}.encode();
  const Bytes prep3 = PaxosMsg{PaxosKind::kPrepare, 3, 0, false, {}}.encode();
  h.push_back(f.make_received(2, 1, 1, kToAll, prep6, chain));
  h.push_back(f.make_sent(2, 1, 1,
                          PaxosMsg{PaxosKind::kPromise, 6, 0, false, {}}.encode(),
                          chain, next_k));
  h.push_back(f.make_received(2, 1, 2, kToAll, prep3, chain));
  // Promising 3 after promising 6 is a protocol violation.
  const Bytes promise3 = PaxosMsg{PaxosKind::kPromise, 3, 0, false, {}}.encode();
  EXPECT_FALSE(f.check(2, h, 2, 1, promise3));
}

TEST(PaxosValidator, AcceptWithoutQuorumOfPromisesRejected) {
  ValidatorFixture f;
  History h;
  Bytes chain;
  // p1 sends ACCEPT(3, v) having received only its own promise.
  const Bytes promise = PaxosMsg{PaxosKind::kPromise, 3, 0, false, {}}.encode();
  h.push_back(f.make_received(1, 1, 1, 1, promise, chain));
  const Bytes accept =
      PaxosMsg{PaxosKind::kAccept, 3, 0, true, to_bytes("v")}.encode();
  EXPECT_FALSE(f.check(1, h, 1, kToAll, accept));
}

TEST(PaxosValidator, AcceptMustCarryHighestAcceptedValue) {
  ValidatorFixture f;
  History h;
  Bytes chain;
  // p1 received two promises for ballot 3: p2's empty, p3's carrying
  // (acc_ballot=2, "locked"). ACCEPT(3) must propose "locked".
  const Bytes pr2 = PaxosMsg{PaxosKind::kPromise, 3, 0, false, {}}.encode();
  const Bytes pr3 =
      PaxosMsg{PaxosKind::kPromise, 3, 2, true, to_bytes("locked")}.encode();
  h.push_back(f.make_received(1, 2, 1, 1, pr2, chain));
  h.push_back(f.make_received(1, 3, 1, 1, pr3, chain));
  const Bytes good =
      PaxosMsg{PaxosKind::kAccept, 3, 0, true, to_bytes("locked")}.encode();
  const Bytes bad =
      PaxosMsg{PaxosKind::kAccept, 3, 0, true, to_bytes("mine")}.encode();
  EXPECT_TRUE(f.check(1, h, 1, kToAll, good));
  EXPECT_FALSE(f.check(1, h, 1, kToAll, bad));
}

TEST(PaxosValidator, ForeignBallotAcceptRejected) {
  ValidatorFixture f;
  History h;
  // Ballot 4's owner is p2 (4 % 3 + 1); p1 cannot send ACCEPT(4).
  const Bytes accept =
      PaxosMsg{PaxosKind::kAccept, 4, 0, true, to_bytes("v")}.encode();
  EXPECT_FALSE(f.check(1, h, 1, kToAll, accept));
}

TEST(PaxosValidator, FastBallotZeroAllowsLeaderInput) {
  ValidatorFixture f;
  History h;
  const Bytes accept =
      PaxosMsg{PaxosKind::kAccept, 0, 0, true, to_bytes("anything")}.encode();
  EXPECT_TRUE(f.check(1, h, 1, kToAll, accept));   // p1 owns ballot 0
  EXPECT_FALSE(f.check(2, h, 1, kToAll, accept));  // p2 does not
}

TEST(PaxosValidator, DecideRequiresAcceptedQuorumForOwnAccept) {
  ValidatorFixture f;
  History h;
  Bytes chain;
  std::uint64_t next_k = 1;
  // p1 fast-path: sends ACCEPT(0, v), receives ACCEPTED(0) from p2, p3.
  const Bytes accept =
      PaxosMsg{PaxosKind::kAccept, 0, 0, true, to_bytes("v")}.encode();
  h.push_back(f.make_sent(1, 1, kToAll, accept, chain, next_k));
  const Bytes accepted = PaxosMsg{PaxosKind::kAccepted, 0, 0, false, {}}.encode();
  h.push_back(f.make_received(1, 2, 1, 1, accepted, chain));
  h.push_back(f.make_received(1, 3, 1, 1, accepted, chain));
  const Bytes decide_v =
      PaxosMsg{PaxosKind::kDecide, 0, 0, true, to_bytes("v")}.encode();
  const Bytes decide_w =
      PaxosMsg{PaxosKind::kDecide, 0, 0, true, to_bytes("w")}.encode();
  EXPECT_TRUE(f.check(1, h, 2, kToAll, decide_v));
  EXPECT_FALSE(f.check(1, h, 2, kToAll, decide_w));  // wrong value
}

TEST(PaxosValidator, RejectedRebuildPreservesCommittedResumePosition) {
  // Rollback contract, rebuild edition: after the validator has committed E
  // entries, a full-history call (prefix_entries = 0 — the transport's
  // cache-miss path, e.g. a Byzantine non-extending wire) that FAILS must
  // leave the committed state untouched, so a later resume naming
  // prefix_entries = E is still accepted.
  ValidatorFixture f;
  History h;
  Bytes chain;
  const Bytes prepare = PaxosMsg{PaxosKind::kPrepare, 3, 0, false, {}}.encode();
  h.push_back(f.make_received(2, 1, 1, kToAll, prepare, chain));
  const Bytes promise = PaxosMsg{PaxosKind::kPromise, 3, 0, false, {}}.encode();
  ASSERT_TRUE(f.check(2, h, 1, 1, promise));  // commits 1 entry for owner 2

  // Rebuild attempt with a legal history but an illegal current message
  // (PROMISE(6) without a PREPARE(6) receipt) — rejected.
  const Bytes promise6 = PaxosMsg{PaxosKind::kPromise, 6, 0, false, {}}.encode();
  EXPECT_FALSE(f.check(2, h, 2, 1, promise6));

  // Resume exactly where the transport's cache still is: empty suffix past
  // the committed entry. Must accept — a wiped cache would refuse forever.
  ValidatorCall resume;
  resume.owner = 2;
  resume.suffix = nullptr;
  resume.suffix_len = 0;
  resume.prefix_entries = 1;
  resume.k = 1;
  resume.dst = 1;
  const Bytes promise_again =
      PaxosMsg{PaxosKind::kPromise, 3, 0, false, {}}.encode();
  resume.payload = &promise_again;
  EXPECT_TRUE(f.validator(resume));
}

TEST(PaxosValidator, SetupPayloadsAlwaysLegal) {
  ValidatorFixture f;
  History h;
  Bytes setup = TransportMux::frame(kMuxSetup, to_bytes("any value at all"));
  EXPECT_TRUE(f.check(2, h, 1, kToAll, setup));
}

TEST(PaxosValidator, MalformedPaxosPayloadRejected) {
  ValidatorFixture f;
  History h;
  EXPECT_FALSE(f.check(2, h, 1, kToAll, to_bytes("\x03garbage")));
}

}  // namespace
}  // namespace mnm::core::trusted
