// Tests for Cheap Quorum (Algorithms 4–5): fast decision, abort paths, the
// agreement lemmas (4.5/4.6), unanimity proofs, and permission revocation.

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <vector>

#include "src/core/cheap_quorum.hpp"
#include "src/mem/memory.hpp"
#include "src/sim/executor.hpp"

namespace mnm::core {
namespace {

using sim::Executor;
using sim::Task;
using util::to_bytes;
using util::to_string;

struct CqFixture {
  explicit CqFixture(std::size_t n, std::size_t m = 3, sim::Time timeout = 120)
      : n(n), keystore(3) {
    for (std::size_t i = 0; i < m; ++i) {
      auto mp = std::make_unique<mem::Memory>(exec, static_cast<MemoryId>(i + 1));
      regions = make_cq_regions(*mp, n);
      memories.push_back(std::move(mp));
      iface.push_back(memories.back().get());
    }
    CheapQuorumConfig cfg;
    cfg.n = n;
    cfg.timeout = timeout;
    for (ProcessId p : all_processes(n)) {
      signers.push_back(keystore.register_process(p));
      cqs.push_back(std::make_unique<CheapQuorum>(exec, iface, regions, keystore,
                                                  signers.back(), cfg));
    }
  }

  void propose_all(std::map<ProcessId, CqOutcome>& out) {
    for (ProcessId p : all_processes(n)) {
      exec.spawn([](CheapQuorum* cq, Bytes v, CqOutcome* sink) -> Task<void> {
        *sink = co_await cq->propose(std::move(v));
      }(cqs[p - 1].get(), to_bytes("in-" + std::to_string(p)), &out[p]));
    }
  }

  std::size_t n;
  Executor exec;
  crypto::KeyStore keystore;
  std::vector<std::unique_ptr<mem::Memory>> memories;
  std::vector<mem::MemoryIface*> iface;
  CheapQuorumRegions regions;
  std::vector<crypto::Signer> signers;
  std::vector<std::unique_ptr<CheapQuorum>> cqs;
};

TEST(CheapQuorum, LeaderDecidesInTwoDelays) {
  CqFixture f(3);
  std::map<ProcessId, CqOutcome> out;
  f.propose_all(out);
  f.exec.run(2000);
  ASSERT_TRUE(out[1].decided);
  EXPECT_TRUE(out[1].is_leader_decision);
  EXPECT_EQ(out[1].at, 2u);  // one replicated write
  EXPECT_EQ(to_string(out[1].value), "in-1");
}

TEST(CheapQuorum, OneSignatureOnLeaderFastPath) {
  // §4.2: "one signature for a fast decision" (prior work: 6f+2).
  CqFixture f(3);
  std::map<ProcessId, CqOutcome> out;
  f.propose_all(out);
  f.exec.run_until([&] { return out[1].decided; }, 2000);
  EXPECT_EQ(f.cqs[0]->signatures_on_path(), 1u);
}

TEST(CheapQuorum, FollowersDecideLeaderValueWithProofs) {
  CqFixture f(3);
  std::map<ProcessId, CqOutcome> out;
  f.propose_all(out);
  f.exec.run(5000);
  for (ProcessId p : all_processes(3)) {
    ASSERT_TRUE(out[p].decided) << "process " << p;
    EXPECT_EQ(to_string(out[p].value), "in-1");
  }
  // Follower decisions carry a correct unanimity proof for the value.
  LeaderBlob lb;
  ASSERT_FALSE(out[2].proof.empty());
  EXPECT_TRUE(verify_unanimity_proof(f.keystore, 3, kLeaderP1, out[2].proof, &lb));
  EXPECT_EQ(to_string(lb.value), "in-1");
}

TEST(CheapQuorum, DecisionAgreementLemma45) {
  CqFixture f(5, 3);
  std::map<ProcessId, CqOutcome> out;
  f.propose_all(out);
  f.exec.run(8000);
  std::string decided;
  for (ProcessId p : all_processes(5)) {
    if (!out[p].decided) continue;
    if (decided.empty()) decided = to_string(out[p].value);
    EXPECT_EQ(to_string(out[p].value), decided);
  }
  EXPECT_FALSE(decided.empty());
}

TEST(CheapQuorum, SilentLeaderMakesFollowersAbortWithOwnInput) {
  // Leader never proposes; followers time out, panic, abort with their own
  // inputs (class B: no leader signature).
  CqFixture f(3, 3, /*timeout=*/60);
  std::map<ProcessId, CqOutcome> out;
  for (ProcessId p : {ProcessId{2}, ProcessId{3}}) {
    f.exec.spawn([](CheapQuorum* cq, Bytes v, CqOutcome* sink) -> Task<void> {
      *sink = co_await cq->propose(std::move(v));
    }(f.cqs[p - 1].get(), to_bytes("in-" + std::to_string(p)), &out[p]));
  }
  f.exec.run(3000);
  for (ProcessId p : {ProcessId{2}, ProcessId{3}}) {
    ASSERT_FALSE(out[p].decided);
    EXPECT_EQ(to_string(out[p].value), "in-" + std::to_string(p));
    EXPECT_TRUE(out[p].leader_sig.empty());
    EXPECT_TRUE(out[p].proof.empty());
  }
}

TEST(CheapQuorum, AbortAgreementLemma46LeaderDecides) {
  // Leader decides fast; follower p2 participates but p3 never shows up, so
  // unanimity is unreachable and p2 eventually panics. Lemma 4.6: p2's abort
  // value must be the decided value, with the leader's signature.
  CqFixture f(3, 3, /*timeout=*/40);
  std::map<ProcessId, CqOutcome> out;
  f.exec.spawn([](CheapQuorum* cq, CqOutcome* sink) -> Task<void> {
    *sink = co_await cq->propose(to_bytes("chosen"));
  }(f.cqs[0].get(), &out[1]));
  f.exec.spawn([](CheapQuorum* cq, CqOutcome* sink) -> Task<void> {
    *sink = co_await cq->propose(to_bytes("other"));
  }(f.cqs[1].get(), &out[2]));
  f.exec.run(3000);
  ASSERT_TRUE(out[1].decided);
  EXPECT_EQ(to_string(out[1].value), "chosen");
  ASSERT_FALSE(out[2].decided);
  // Abort value equals the decided value, and carries p1's signature.
  EXPECT_EQ(to_string(out[2].value), "chosen");
  EXPECT_FALSE(out[2].leader_sig.empty());
}

TEST(CheapQuorum, PanicRevokesLeaderWritePermission) {
  CqFixture f(3, 3, /*timeout=*/0);
  std::map<ProcessId, CqOutcome> out;
  // p2 panics first (timeout 0), revoking the leader's permission...
  f.exec.spawn([](CheapQuorum* cq, Bytes v, CqOutcome* sink) -> Task<void> {
    *sink = co_await cq->propose(std::move(v));
  }(f.cqs[1].get(), to_bytes("in-2"), &out[2]));
  // ...then the leader proposes late: its write must nak → abort, not decide.
  f.exec.call_at(50, [&] {
    f.exec.spawn([](CheapQuorum* cq, CqOutcome* sink) -> Task<void> {
      *sink = co_await cq->propose(to_bytes("late"));
    }(f.cqs[0].get(), &out[1]));
  });
  f.exec.run(3000);
  ASSERT_FALSE(out[1].decided);
  // Leader aborts with its own input (nothing was replicated).
  EXPECT_EQ(to_string(out[1].value), "late");
  // Check the permission actually flipped on a majority of memories.
  std::size_t revoked = 0;
  for (auto& m : f.memories) {
    if (!m->region_permission(f.regions.leader).can_write(1)) ++revoked;
  }
  EXPECT_GE(revoked, majority(f.memories.size()));
}

TEST(CheapQuorum, ToleratesMinorityMemoryCrash) {
  CqFixture f(3);
  f.memories[1]->crash();
  std::map<ProcessId, CqOutcome> out;
  f.propose_all(out);
  f.exec.run(5000);
  for (ProcessId p : all_processes(3)) {
    ASSERT_TRUE(out[p].decided) << "process " << p;
    EXPECT_EQ(to_string(out[p].value), "in-1");
  }
}

TEST(UnanimityProof, RejectsForgeries) {
  CqFixture f(3);
  // Build a genuine run to get a real proof.
  std::map<ProcessId, CqOutcome> out;
  f.propose_all(out);
  f.exec.run(5000);
  ASSERT_TRUE(out[2].decided);
  const Bytes good = out[2].proof;
  LeaderBlob lb;
  ASSERT_TRUE(verify_unanimity_proof(f.keystore, 3, kLeaderP1, good, &lb));

  // Truncated / bit-flipped / empty proofs must fail.
  Bytes truncated = good;
  truncated.resize(truncated.size() / 2);
  EXPECT_FALSE(verify_unanimity_proof(f.keystore, 3, kLeaderP1, truncated));
  Bytes flipped = good;
  flipped[flipped.size() / 2] ^= 0x01;
  EXPECT_FALSE(verify_unanimity_proof(f.keystore, 3, kLeaderP1, flipped));
  EXPECT_FALSE(verify_unanimity_proof(f.keystore, 3, kLeaderP1, {}));
  // A valid 3-process proof is not a valid 5-process proof.
  EXPECT_FALSE(verify_unanimity_proof(f.keystore, 5, kLeaderP1, good));
}

TEST(CqWire, BlobEncodingsRoundTrip) {
  crypto::KeyStore ks(1);
  crypto::Signer p1 = ks.register_process(1);
  crypto::Signer p2 = ks.register_process(2);
  const Bytes v = to_bytes("v");
  const crypto::Signature s1 = p1.sign(cq_value_signing_bytes(v));
  const Bytes lb = encode_leader_blob(v, s1);
  const auto dlb = decode_leader_blob(lb);
  ASSERT_TRUE(dlb.has_value());
  EXPECT_EQ(to_string(dlb->value), "v");

  const crypto::Signature s2 = p2.sign(cq_copy_signing_bytes(lb));
  const auto dcb = decode_copy_blob(encode_copy_blob(lb, s2));
  ASSERT_TRUE(dcb.has_value());
  EXPECT_EQ(dcb->leader_blob, lb);
  EXPECT_EQ(dcb->sig.signer, 2u);

  EXPECT_FALSE(decode_leader_blob(to_bytes("junk")).has_value());
  EXPECT_FALSE(decode_copy_blob({}).has_value());
}

}  // namespace
}  // namespace mnm::core
