// Tests for the message-passing substrate (src/net): link integrity,
// no-loss, delay accounting, crash behaviour, partial synchrony.

#include <gtest/gtest.h>

#include <vector>

#include "src/net/network.hpp"
#include "src/sim/executor.hpp"
#include "src/util/bytes.hpp"

namespace mnm::net {
namespace {

using sim::Executor;
using sim::Task;
using sim::Time;
using util::to_bytes;
using util::to_string;

constexpr MsgType kPing = 1;
constexpr MsgType kPong = 2;

TEST(Network, MessageTakesOneDelay) {
  Executor exec;
  Network net(exec, 2);
  Time delivered_at = 0;
  exec.spawn([](Executor& e, Network& net, Time& at) -> Task<void> {
    Message m = co_await net.inbox(2).channel(kPing).recv();
    at = e.now();
    EXPECT_EQ(m.src, 1u);
    EXPECT_EQ(to_string(m.payload), "hi");
  }(exec, net, delivered_at));
  net.send(1, 2, kPing, to_bytes("hi"));
  exec.run();
  EXPECT_EQ(delivered_at, sim::kMessageDelay);
}

TEST(Network, RoundTripTakesTwoDelays) {
  Executor exec;
  Network net(exec, 2);
  Time done_at = 0;

  exec.spawn([](Network& net) -> Task<void> {
    Message m = co_await net.inbox(2).channel(kPing).recv();
    net.send(2, m.src, kPong, to_bytes("pong"));
  }(net));
  exec.spawn([](Executor& e, Network& net, Time& at) -> Task<void> {
    net.send(1, 2, kPing, to_bytes("ping"));
    (void)co_await net.inbox(1).channel(kPong).recv();
    at = e.now();
  }(exec, net, done_at));

  exec.run();
  EXPECT_EQ(done_at, 2 * sim::kMessageDelay);
}

TEST(Network, SenderIdentityIsStamped) {
  // Even a "malicious" caller of Endpoint::send cannot spoof its source: the
  // endpoint owns the id.
  Executor exec;
  Network net(exec, 3);
  Endpoint p3(net, 3);
  ProcessId seen_src = 0;
  exec.spawn([](Network& net, ProcessId& src) -> Task<void> {
    Message m = co_await net.inbox(1).channel(kPing).recv();
    src = m.src;
  }(net, seen_src));
  p3.send(1, kPing, to_bytes("i am p2, honest"));
  exec.run();
  EXPECT_EQ(seen_src, 3u);
}

TEST(Network, BroadcastReachesAll) {
  Executor exec;
  Network net(exec, 4);
  int received = 0;
  for (ProcessId p : all_processes(4)) {
    exec.spawn([](Network& net, ProcessId p, int& received) -> Task<void> {
      (void)co_await net.inbox(p).channel(kPing).recv();
      ++received;
    }(net, p, received));
  }
  net.broadcast(2, kPing, to_bytes("to all"));
  exec.run();
  EXPECT_EQ(received, 4);
}

TEST(Network, BroadcastCanExcludeSelf) {
  Executor exec;
  Network net(exec, 3);
  net.broadcast(1, kPing, to_bytes("x"), /*include_self=*/false);
  exec.run();
  EXPECT_EQ(net.inbox(1).channel(kPing).size(), 0u);
  EXPECT_EQ(net.inbox(2).channel(kPing).size(), 1u);
  EXPECT_EQ(net.inbox(3).channel(kPing).size(), 1u);
}

TEST(Network, CrashedSenderIsSilent) {
  Executor exec;
  Network net(exec, 2);
  net.crash(1);
  net.send(1, 2, kPing, to_bytes("ghost"));
  exec.run();
  EXPECT_EQ(net.inbox(2).channel(kPing).size(), 0u);
  EXPECT_EQ(net.messages_sent(), 0u);
}

TEST(Network, MessageToCrashedReceiverIsDropped) {
  Executor exec;
  Network net(exec, 2);
  net.send(1, 2, kPing, to_bytes("x"));
  net.crash(2);  // crashes before delivery
  exec.run();
  EXPECT_EQ(net.inbox(2).channel(kPing).size(), 0u);
  EXPECT_EQ(net.messages_sent(), 1u);
  EXPECT_EQ(net.messages_delivered(), 0u);
}

TEST(Network, InFlightMessageDroppedIfReceiverCrashesMidFlight) {
  Executor exec;
  Network net(exec, 2);
  net.set_delay_fn([](ProcessId, ProcessId, Time) { return Time{10}; });
  net.send(1, 2, kPing, to_bytes("x"));
  exec.call_at(5, [&] { net.crash(2); });
  exec.run();
  EXPECT_EQ(net.messages_delivered(), 0u);
}

TEST(Network, GstShapesDelays) {
  Executor exec;
  Network net(exec, 2);
  net.set_gst(/*gst=*/100, /*pre_delay=*/50);

  std::vector<Time> arrivals;
  exec.spawn([](Executor& e, Network& net, std::vector<Time>& arrivals) -> Task<void> {
    for (int i = 0; i < 2; ++i) {
      (void)co_await net.inbox(2).channel(kPing).recv();
      arrivals.push_back(e.now());
    }
  }(exec, net, arrivals));

  net.send(1, 2, kPing, to_bytes("slow"));                    // sent at 0 → +50
  exec.call_at(100, [&] { net.send(1, 2, kPing, to_bytes("fast")); });  // → +1
  exec.run();
  ASSERT_EQ(arrivals.size(), 2u);
  EXPECT_EQ(arrivals[0], 50u);
  EXPECT_EQ(arrivals[1], 101u);
}

TEST(Network, FifoPerLinkWithEqualDelays) {
  Executor exec;
  Network net(exec, 2);
  std::vector<std::string> got;
  exec.spawn([](Network& net, std::vector<std::string>& got) -> Task<void> {
    for (int i = 0; i < 3; ++i) {
      Message m = co_await net.inbox(2).channel(kPing).recv();
      got.push_back(to_string(m.payload));
    }
  }(net, got));
  net.send(1, 2, kPing, to_bytes("a"));
  net.send(1, 2, kPing, to_bytes("b"));
  net.send(1, 2, kPing, to_bytes("c"));
  exec.run();
  EXPECT_EQ(got, (std::vector<std::string>{"a", "b", "c"}));
}

TEST(Network, TypeDemultiplexing) {
  Executor exec;
  Network net(exec, 2);
  net.send(1, 2, kPing, to_bytes("p"));
  net.send(1, 2, kPong, to_bytes("q"));
  exec.run();
  EXPECT_EQ(net.inbox(2).channel(kPing).size(), 1u);
  EXPECT_EQ(net.inbox(2).channel(kPong).size(), 1u);
}

TEST(Network, UnknownDestinationIsIgnored) {
  Executor exec;
  Network net(exec, 2);
  net.send(1, 99, kPing, to_bytes("void"));  // must not throw
  exec.run();
  EXPECT_EQ(net.messages_delivered(), 0u);
}

}  // namespace
}  // namespace mnm::net
