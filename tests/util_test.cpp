// Tests for byte utilities and canonical serialization.

#include <gtest/gtest.h>

#include "src/util/bytes.hpp"
#include "src/util/serde.hpp"

namespace mnm::util {
namespace {

TEST(Bytes, BottomIsEmpty) {
  EXPECT_TRUE(is_bottom(bottom()));
  EXPECT_TRUE(is_bottom(Bytes{}));
  EXPECT_FALSE(is_bottom(to_bytes("x")));
}

TEST(Bytes, RoundTripString) {
  const std::string s = "hello \x01\x02 world";
  EXPECT_EQ(to_string(to_bytes(s)), s);
}

TEST(Hex, EncodeDecodeRoundTrip) {
  const Bytes b{0x00, 0x01, 0xab, 0xcd, 0xef, 0xff};
  EXPECT_EQ(hex_encode(b), "0001abcdefff");
  EXPECT_EQ(hex_decode("0001abcdefff"), b);
  EXPECT_EQ(hex_decode("0001ABCDEFFF"), b);
}

TEST(Hex, RejectsMalformed) {
  EXPECT_THROW(hex_decode("abc"), std::invalid_argument);   // odd length
  EXPECT_THROW(hex_decode("zz"), std::invalid_argument);    // non-hex
}

TEST(Hex, EmptyIsEmpty) {
  EXPECT_EQ(hex_encode({}), "");
  EXPECT_EQ(hex_decode(""), Bytes{});
}

TEST(CtEqual, Basics) {
  EXPECT_TRUE(ct_equal(to_bytes("abc"), to_bytes("abc")));
  EXPECT_FALSE(ct_equal(to_bytes("abc"), to_bytes("abd")));
  EXPECT_FALSE(ct_equal(to_bytes("abc"), to_bytes("ab")));
  EXPECT_TRUE(ct_equal({}, {}));
}

TEST(Serde, IntegersRoundTrip) {
  Writer w;
  w.u8(0xAB).u16(0xBEEF).u32(0xDEADBEEF).u64(0x0123456789ABCDEFULL).i64(-42);
  Reader r(w.data());
  EXPECT_EQ(r.u8(), 0xAB);
  EXPECT_EQ(r.u16(), 0xBEEF);
  EXPECT_EQ(r.u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.u64(), 0x0123456789ABCDEFULL);
  EXPECT_EQ(r.i64(), -42);
  EXPECT_TRUE(r.at_end());
}

TEST(Serde, BytesAndStringsRoundTrip) {
  Writer w;
  w.bytes(to_bytes("payload")).str("name").bytes({});
  Reader r(w.data());
  EXPECT_EQ(r.bytes(), to_bytes("payload"));
  EXPECT_EQ(r.str(), "name");
  EXPECT_EQ(r.bytes(), Bytes{});
  r.expect_end();
}

TEST(Serde, BooleanStrict) {
  Writer w;
  w.boolean(true).boolean(false).u8(2);
  Reader r(w.data());
  EXPECT_TRUE(r.boolean());
  EXPECT_FALSE(r.boolean());
  EXPECT_THROW(r.boolean(), SerdeError);  // 2 is not a valid bool
}

TEST(Serde, TruncatedInputThrows) {
  Writer w;
  w.u32(7);
  Reader r(w.data());
  EXPECT_THROW(r.u64(), SerdeError);
}

TEST(Serde, TruncatedLengthPrefixedBytesThrows) {
  Writer w;
  w.u32(1000);  // claims 1000 bytes follow; none do
  Reader r(w.data());
  EXPECT_THROW(r.bytes(), SerdeError);
}

TEST(Serde, ExpectEndRejectsTrailingGarbage) {
  Writer w;
  w.u8(1).u8(2);
  Reader r(w.data());
  (void)r.u8();
  EXPECT_THROW(r.expect_end(), SerdeError);
}

TEST(Serde, RawReadsExactCount) {
  Writer w;
  w.raw(to_bytes("abcdef"));
  Reader r(w.data());
  EXPECT_EQ(r.raw(3), to_bytes("abc"));
  EXPECT_EQ(r.remaining(), 3u);
  EXPECT_THROW(r.raw(4), SerdeError);
}


// --- Serde hot-path additions: size hints, length patching, view reads. ---

TEST(Writer, ReserveDoesNotChangeEncoding) {
  Writer plain;
  plain.u8(1).u32(7).bytes(to_bytes("payload"));
  Writer hinted(1 + 4 + 4 + 7);
  hinted.u8(1).u32(7).bytes(to_bytes("payload"));
  EXPECT_EQ(plain.data(), hinted.data());
}

TEST(Writer, PatchU32OverwritesInPlace) {
  Writer w;
  const std::size_t at = w.size();
  w.u32(0);  // placeholder length
  w.str("body");
  w.patch_u32(at, static_cast<std::uint32_t>(w.size() - at - 4));
  Reader r(w.data());
  EXPECT_EQ(r.u32(), w.size() - 4);
  EXPECT_EQ(r.str(), "body");
  EXPECT_THROW(Writer().patch_u32(0, 1), SerdeError);  // out of range
}

TEST(Reader, ViewReadsAliasTheSource) {
  Writer w;
  w.bytes(to_bytes("hello")).u8(9);
  const Bytes& buf = w.data();
  Reader r(buf);
  const ByteView v = r.bytes_view();
  ASSERT_EQ(v.size(), 5u);
  EXPECT_EQ(v.data(), buf.data() + 4);  // points into the source, no copy
  EXPECT_EQ(to_string(v), "hello");
  EXPECT_EQ(r.u8(), 9u);
  r.expect_end();
}

TEST(Reader, RawViewBoundsChecked) {
  const Bytes buf = to_bytes("abc");
  Reader r(buf);
  EXPECT_EQ(to_string(r.raw_view(2)), "ab");
  EXPECT_THROW(r.raw_view(2), SerdeError);
}

}  // namespace
}  // namespace mnm::util
