// Tests for the replicated SWMR register layer (src/swmr): majority
// write/read, memory-crash tolerance at/below the m ≥ 2fM+1 bound, regular
// semantics, and the revocation-visibility property Cheap Quorum relies on.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/mem/memory.hpp"
#include "src/sim/executor.hpp"
#include "src/swmr/swmr_register.hpp"
#include "src/util/bytes.hpp"

namespace mnm::swmr {
namespace {

using mem::Memory;
using mem::Permission;
using mem::ReadResult;
using mem::Status;
using sim::Executor;
using sim::Task;
using util::to_bytes;
using util::to_string;

struct Fixture {
  explicit Fixture(std::size_t m, std::size_t n = 3,
                   mem::LegalChangeFn legal = mem::static_permissions()) {
    for (std::size_t i = 0; i < m; ++i) {
      auto mp = std::make_unique<Memory>(exec, static_cast<MemoryId>(i + 1));
      region = mp->create_region({"r/"}, Permission::swmr(1, all_processes(n)), legal);
      memories.push_back(std::move(mp));
    }
    for (auto& mp : memories) ifaces.push_back(mp.get());
  }

  Executor exec;
  std::vector<std::unique_ptr<Memory>> memories;
  std::vector<mem::MemoryIface*> ifaces;
  RegionId region = 0;
};

TEST(ReplicatedRegister, WriteThenReadAcrossMemories) {
  Fixture f(3);
  ReplicatedRegister reg(f.exec, f.ifaces, f.region, "r/a");
  Status wst = Status::kNak;
  ReadResult rr;
  f.exec.spawn([](ReplicatedRegister& reg, Status& wst, ReadResult& rr) -> Task<void> {
    wst = co_await reg.write(1, to_bytes("v"));
    rr = co_await reg.read(2);
  }(reg, wst, rr));
  f.exec.run();
  EXPECT_EQ(wst, Status::kAck);
  ASSERT_TRUE(rr.ok());
  EXPECT_EQ(to_string(rr.value), "v");
}

TEST(ReplicatedRegister, CostsOneMemoryRoundTrip) {
  // The parallel fan-out keeps the replicated op at 2 delays — the paper's
  // algorithms stay "2-deciding" on replicated memory.
  Fixture f(5);
  ReplicatedRegister reg(f.exec, f.ifaces, f.region, "r/a");
  sim::Time wdone = 0;
  f.exec.spawn([](Executor& e, ReplicatedRegister& reg, sim::Time& wd) -> Task<void> {
    (void)co_await reg.write(1, to_bytes("v"));
    wd = e.now();
  }(f.exec, reg, wdone));
  f.exec.run();
  EXPECT_EQ(wdone, sim::kMemoryOpDelay);
}

TEST(ReplicatedRegister, ToleratesMinorityMemoryCrashes) {
  // m = 5, fM = 2: writes and reads still complete.
  Fixture f(5);
  f.memories[0]->crash();
  f.memories[3]->crash();
  ReplicatedRegister reg(f.exec, f.ifaces, f.region, "r/a");
  Status wst = Status::kNak;
  ReadResult rr;
  f.exec.spawn([](ReplicatedRegister& reg, Status& wst, ReadResult& rr) -> Task<void> {
    wst = co_await reg.write(1, to_bytes("survives"));
    rr = co_await reg.read(3);
  }(reg, wst, rr));
  f.exec.run();
  EXPECT_EQ(wst, Status::kAck);
  ASSERT_TRUE(rr.ok());
  EXPECT_EQ(to_string(rr.value), "survives");
}

TEST(ReplicatedRegister, MajorityMemoryCrashesHangOperations) {
  // m = 3, 2 crashed: beyond the bound; the op must hang (not return wrong
  // answers) — the caller would rely on its own timeout.
  Fixture f(3);
  f.memories[0]->crash();
  f.memories[1]->crash();
  ReplicatedRegister reg(f.exec, f.ifaces, f.region, "r/a");
  bool completed = false;
  f.exec.spawn([](ReplicatedRegister& reg, bool& completed) -> Task<void> {
    (void)co_await reg.write(1, to_bytes("x"));
    completed = true;
  }(reg, completed));
  f.exec.run();
  EXPECT_FALSE(completed);
}

TEST(ReplicatedRegister, NonWriterGetsNak) {
  Fixture f(3);
  ReplicatedRegister reg(f.exec, f.ifaces, f.region, "r/a");
  Status wst = Status::kAck;
  f.exec.spawn([](ReplicatedRegister& reg, Status& wst) -> Task<void> {
    wst = co_await reg.write(2, to_bytes("not mine"));
  }(reg, wst));
  f.exec.run();
  EXPECT_EQ(wst, Status::kNak);
}

TEST(ReplicatedRegister, UnwrittenReadsBottom) {
  Fixture f(3);
  ReplicatedRegister reg(f.exec, f.ifaces, f.region, "r/fresh");
  ReadResult rr;
  f.exec.spawn([](ReplicatedRegister& reg, ReadResult& rr) -> Task<void> {
    rr = co_await reg.read(2);
  }(reg, rr));
  f.exec.run();
  ASSERT_TRUE(rr.ok());
  EXPECT_TRUE(util::is_bottom(rr.value));
}

TEST(ReplicatedRegister, RevocationAtMajorityFailsWriter) {
  // The Cheap Quorum panic path: revoking the writer's permission at a
  // majority of memories makes the writer's subsequent replicated write nak.
  Fixture f(3, 3, mem::dynamic_permissions());
  ReplicatedRegister reg(f.exec, f.ifaces, f.region, "r/a");

  Status wst = Status::kAck;
  f.exec.spawn([](Fixture& f, ReplicatedRegister& reg, Status& wst) -> Task<void> {
    // p2 revokes p1's write permission on memories 1 and 2 (a majority).
    const Permission ro = Permission::read_only(all_processes(3));
    (void)co_await f.ifaces[0]->change_permission(2, f.region, ro);
    (void)co_await f.ifaces[1]->change_permission(2, f.region, ro);
    wst = co_await reg.write(1, to_bytes("should fail"));
  }(f, reg, wst));
  f.exec.run();
  EXPECT_EQ(wst, Status::kNak);
}

TEST(ReplicatedRegister, CompletedWriteVisibleToLaterReadDespiteCrash) {
  // Write completes against {m1, m2, m3}; then m1 crashes; a later read must
  // still see the value (majority intersection).
  Fixture f(3);
  ReplicatedRegister reg(f.exec, f.ifaces, f.region, "r/a");
  ReadResult rr;
  f.exec.spawn([](Fixture& f, ReplicatedRegister& reg, ReadResult& rr) -> Task<void> {
    (void)co_await reg.write(1, to_bytes("durable"));
    f.memories[0]->crash();
    rr = co_await reg.read(2);
  }(f, reg, rr));
  f.exec.run();
  ASSERT_TRUE(rr.ok());
  EXPECT_EQ(to_string(rr.value), "durable");
}

TEST(ReplicatedRegister, ConcurrentReadIsRegularNotLinearizable) {
  // A read overlapping a write may return ⊥ (old) or the new value — either
  // is legal for a regular register. Here the read starts before the write's
  // effects land anywhere, so it must return ⊥.
  Fixture f(3);
  ReplicatedRegister reg(f.exec, f.ifaces, f.region, "r/a");
  ReadResult rr;
  f.exec.spawn([](ReplicatedRegister& reg, ReadResult& rr) -> Task<void> {
    rr = co_await reg.read(2);
  }(reg, rr));
  f.exec.spawn([](ReplicatedRegister& reg) -> Task<void> {
    (void)co_await reg.write(1, to_bytes("new"));
  }(reg));
  f.exec.run();
  ASSERT_TRUE(rr.ok());
  // Both ⊥ and "new" are legal under regularity; our deterministic schedule
  // delivers the read effects at the same instant as the write effects, and
  // FIFO ordering places the read first.
  EXPECT_TRUE(util::is_bottom(rr.value) || to_string(rr.value) == "new");
}

TEST(ReplicatedRegister, TimestampedModeReturnsLatest) {
  Fixture f(3);
  ReplicatedRegister reg(f.exec, f.ifaces, f.region, "r/a", Mode::kTimestamped);
  ReadResult rr;
  f.exec.spawn([](ReplicatedRegister& reg, ReadResult& rr) -> Task<void> {
    (void)co_await reg.write(1, to_bytes("v1"));
    (void)co_await reg.write(1, to_bytes("v2"));
    (void)co_await reg.write(1, to_bytes("v3"));
    rr = co_await reg.read(2);
  }(reg, rr));
  f.exec.run();
  ASSERT_TRUE(rr.ok());
  EXPECT_EQ(to_string(rr.value), "v3");
}

TEST(ReplicatedRegister, TimestampedModeSurvivesStaleMinority) {
  // Write v1 everywhere; crash a memory; write v2 (lands on the live
  // majority); reads must return v2 even when the crashed memory's stale v1
  // would have answered first.
  Fixture f(3);
  ReplicatedRegister reg(f.exec, f.ifaces, f.region, "r/a", Mode::kTimestamped);
  ReadResult rr;
  f.exec.spawn([](Fixture& f, ReplicatedRegister& reg, ReadResult& rr) -> Task<void> {
    (void)co_await reg.write(1, to_bytes("v1"));
    f.memories[2]->crash();
    (void)co_await reg.write(1, to_bytes("v2"));
    rr = co_await reg.read(2);
  }(f, reg, rr));
  f.exec.run();
  ASSERT_TRUE(rr.ok());
  EXPECT_EQ(to_string(rr.value), "v2");
}

TEST(RegisterSpace, CreatesAndCachesRegisters) {
  Fixture f(3);
  RegisterSpace space(f.exec, f.ifaces, f.region);
  ReplicatedRegister& a = space.reg("r/a");
  ReplicatedRegister& a2 = space.reg("r/a");
  ReplicatedRegister& b = space.reg("r/b");
  EXPECT_EQ(&a, &a2);
  EXPECT_NE(&a, &b);
  EXPECT_EQ(a.name(), "r/a");
}

}  // namespace
}  // namespace mnm::swmr
