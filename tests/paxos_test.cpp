// Unit tests for classic Paxos over NetTransport (src/core/paxos.*) and the
// Ω oracle.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/core/fast_paxos.hpp"
#include "src/core/omega.hpp"
#include "src/core/paxos.hpp"
#include "src/core/transport.hpp"
#include "src/net/network.hpp"
#include "src/sim/executor.hpp"

namespace mnm::core {
namespace {

using sim::Executor;
using sim::Task;
using sim::Time;
using util::to_bytes;
using util::to_string;

TEST(PaxosMsgWire, RoundTrip) {
  PaxosMsg m{PaxosKind::kAccept, 42, 7, true, to_bytes("v")};
  const auto decoded = PaxosMsg::decode(m.encode());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->kind, PaxosKind::kAccept);
  EXPECT_EQ(decoded->ballot, 42u);
  EXPECT_EQ(decoded->acc_ballot, 7u);
  EXPECT_TRUE(decoded->has_value);
  EXPECT_EQ(to_string(decoded->value), "v");
}

TEST(PaxosMsgWire, RejectsMalformed) {
  EXPECT_FALSE(PaxosMsg::decode(to_bytes("")).has_value());
  EXPECT_FALSE(PaxosMsg::decode(to_bytes("\x09garbage")).has_value());
  Bytes truncated = PaxosMsg{PaxosKind::kPrepare, 1, 0, false, {}}.encode();
  truncated.pop_back();
  EXPECT_FALSE(PaxosMsg::decode(truncated).has_value());
  Bytes padded = PaxosMsg{PaxosKind::kPrepare, 1, 0, false, {}}.encode();
  padded.push_back(0);
  EXPECT_FALSE(PaxosMsg::decode(padded).has_value());
}

TEST(OmegaOracle, FixedLeader) {
  Executor exec;
  Omega omega = Omega::fixed(exec, 2);
  EXPECT_EQ(omega.leader(), 2u);
  EXPECT_TRUE(omega.trusts(2));
  EXPECT_FALSE(omega.trusts(1));
}

TEST(OmegaOracle, TimeVaryingLeaderAndWait) {
  // wait_leadership is notification-driven: whoever changes the oracle's
  // inputs pokes Ω, and the waiter wakes at exactly that instant (no
  // per-tick polling).
  Executor exec;
  Omega omega(exec, [](Time t) -> ProcessId { return t < 10 ? 1u : 3u; });
  Time became_leader_at = 0;
  exec.spawn([](Executor& e, Omega& o, Time& at) -> Task<void> {
    co_await o.wait_leadership(3);
    at = e.now();
  }(exec, omega, became_leader_at));
  exec.schedule_at(10, [&omega] { omega.poke(); });
  exec.run(/*until=*/100);
  EXPECT_EQ(became_leader_at, 10u);
}

TEST(OmegaOracle, UnpokedScheduleChangeCaughtByBackoff) {
  // Without a poke the capped-backoff fallback still observes the change,
  // within kBackoffCap ticks of the flip.
  Executor exec;
  Omega omega(exec, [](Time t) -> ProcessId { return t < 10 ? 1u : 3u; });
  Time became_leader_at = 0;
  exec.spawn([](Executor& e, Omega& o, Time& at) -> Task<void> {
    co_await o.wait_leadership(3);
    at = e.now();
  }(exec, omega, became_leader_at));
  exec.run(/*until=*/200);
  EXPECT_GE(became_leader_at, 10u);
  EXPECT_LE(became_leader_at, 10u + Omega::kBackoffCap);
}

struct PaxosCluster {
  explicit PaxosCluster(std::size_t n, bool fast = false,
                        ProcessId fixed_leader = kLeaderP1)
      : n(n), network(exec, n), omega(Omega::fixed(exec, fixed_leader)) {
    PaxosConfig pc;
    pc.n = n;
    pc.skip_phase1_for_p1 = fast;
    for (ProcessId p : all_processes(n)) {
      transports.push_back(std::make_unique<NetTransport>(exec, network, p, 100));
      paxoses.push_back(std::make_unique<Paxos>(exec, *transports.back(), omega, pc));
      paxoses.back()->start();
    }
  }

  void propose_all() {
    for (ProcessId p : all_processes(n)) {
      exec.spawn([](Paxos* px, Bytes v) -> Task<void> {
        (void)co_await px->propose(std::move(v));
      }(paxoses[p - 1].get(), to_bytes("input-" + std::to_string(p))));
    }
  }

  bool all_decided() const {
    for (const auto& px : paxoses) {
      if (!px->decided()) return false;
    }
    return true;
  }

  std::size_t n;
  sim::Executor exec;
  net::Network network;
  Omega omega;
  std::vector<std::unique_ptr<NetTransport>> transports;
  std::vector<std::unique_ptr<Paxos>> paxoses;
};

TEST(Paxos, AllProcessesDecideSameValue) {
  PaxosCluster c(3);
  c.propose_all();
  c.exec.run_until([&] { return c.all_decided(); }, 5000);
  ASSERT_TRUE(c.all_decided());
  const std::string v = to_string(c.paxoses[0]->decision());
  for (const auto& px : c.paxoses) EXPECT_EQ(to_string(px->decision()), v);
  EXPECT_EQ(v, "input-1");  // fixed leader p1 proposes its own input
}

TEST(Paxos, LeaderDecidesInFourDelays) {
  PaxosCluster c(3);
  c.propose_all();
  c.exec.run_until([&] { return c.paxoses[0]->decided(); }, 5000);
  EXPECT_EQ(c.paxoses[0]->decided_at(), 4u);
}

TEST(Paxos, FastVariantDecidesInTwoDelays) {
  PaxosCluster c(3, /*fast=*/true);
  c.propose_all();
  c.exec.run_until([&] { return c.paxoses[0]->decided(); }, 5000);
  EXPECT_EQ(c.paxoses[0]->decided_at(), 2u);
}

TEST(Paxos, NonLeaderEventuallyLeadsWhenOmegaChanges) {
  // Leader is p2 from the start: p1's fast ballot is never used; p2 runs the
  // full two phases.
  PaxosCluster c(3, /*fast=*/false, /*fixed_leader=*/2);
  c.propose_all();
  c.exec.run_until([&] { return c.all_decided(); }, 5000);
  ASSERT_TRUE(c.all_decided());
  EXPECT_EQ(to_string(c.paxoses[0]->decision()), "input-2");
}

TEST(Paxos, FivePaxosScalesAndAgrees) {
  PaxosCluster c(5);
  c.propose_all();
  c.exec.run_until([&] { return c.all_decided(); }, 5000);
  ASSERT_TRUE(c.all_decided());
  const std::string v = to_string(c.paxoses[0]->decision());
  for (const auto& px : c.paxoses) EXPECT_EQ(to_string(px->decision()), v);
}

TEST(Paxos, MalformedMessagesAreIgnored) {
  PaxosCluster c(3);
  // Inject garbage on the Paxos tag before and during the run.
  c.network.broadcast(2, 100, to_bytes("\xff\xff\xff"));
  c.propose_all();
  c.network.broadcast(3, 100, to_bytes(""));
  c.exec.run_until([&] { return c.all_decided(); }, 5000);
  EXPECT_TRUE(c.all_decided());
}

TEST(Paxos, CompetingProposersConverge) {
  // Ω flaps between p1 and p2 before settling on p2: both run rounds; the
  // protocol must still reach a single decision.
  struct Flapping {
    static ProcessId leader(Time t) {
      if (t < 20) return 1;
      if (t < 40) return 2;
      if (t < 60) return 1;
      return 2;
    }
  };
  sim::Executor exec;
  net::Network network(exec, 3);
  Omega omega(exec, [](Time t) { return Flapping::leader(t); });
  PaxosConfig pc;
  pc.n = 3;
  std::vector<std::unique_ptr<NetTransport>> transports;
  std::vector<std::unique_ptr<Paxos>> paxoses;
  for (ProcessId p : all_processes(3)) {
    transports.push_back(std::make_unique<NetTransport>(exec, network, p, 100));
    paxoses.push_back(std::make_unique<Paxos>(exec, *transports.back(), omega, pc));
    paxoses.back()->start();
    exec.spawn([](Paxos* px, Bytes v) -> Task<void> {
      (void)co_await px->propose(std::move(v));
    }(paxoses.back().get(), to_bytes("input-" + std::to_string(p))));
  }
  exec.run_until(
      [&] {
        for (const auto& px : paxoses) {
          if (!px->decided()) return false;
        }
        return true;
      },
      20000);
  ASSERT_TRUE(paxoses[0]->decided());
  const std::string v = to_string(paxoses[0]->decision());
  for (const auto& px : paxoses) {
    ASSERT_TRUE(px->decided());
    EXPECT_EQ(to_string(px->decision()), v);
  }
  EXPECT_TRUE(v == "input-1" || v == "input-2") << v;
}

}  // namespace
}  // namespace mnm::core
