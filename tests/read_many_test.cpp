// Batched scatter-gather reads (MemoryIface::read_many) on both backends:
// one round trip, one batch counter tick, per-slot results and naks, crash
// semantics, and write-version signals for poll-free watchers.

#include <gtest/gtest.h>

#include <memory>
#include <optional>
#include <vector>

#include "src/harness/process_view.hpp"
#include "src/mem/memory.hpp"
#include "src/sim/executor.hpp"
#include "src/sim/task.hpp"
#include "src/verbs/verbs.hpp"

namespace mnm::mem {
namespace {

using sim::Executor;
using sim::Task;
using util::to_bytes;

Task<void> write_reg(Memory* m, ProcessId p, RegionId r, std::string reg,
                     Bytes v) {
  (void)co_await m->write(p, r, std::move(reg), std::move(v));
}

TEST(ReadMany, OneRoundTripPerSlotResultsInOrder) {
  Executor exec;
  Memory m(exec, 1);
  const auto all = all_processes(2);
  const RegionId r = m.create_region({"slot/"}, Permission::open(all));
  exec.spawn(write_reg(&m, 1, r, "slot/a", to_bytes("A")));
  exec.spawn(write_reg(&m, 1, r, "slot/c", to_bytes("C")));
  exec.run();

  std::vector<ReadResult> out;
  sim::Time completed_at = 0;
  std::vector<std::string> regs{"slot/a", "slot/b", "slot/c"};
  exec.spawn([](Executor* e, Memory* m, RegionId r, std::vector<std::string> regs,
                std::vector<ReadResult>* out, sim::Time* at) -> Task<void> {
    *out = co_await m->read_many(1, r, std::move(regs));
    *at = e->now();
  }(&exec, &m, r, std::move(regs), &out, &completed_at));
  const sim::Time start = exec.now();
  exec.run();

  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0].value, to_bytes("A"));
  EXPECT_TRUE(util::is_bottom(out[1].value));  // unwritten slot reads ⊥
  EXPECT_EQ(out[2].value, to_bytes("C"));
  for (const auto& rr : out) EXPECT_TRUE(rr.ok());
  // The whole batch costs exactly one memory round trip.
  EXPECT_EQ(completed_at - start, sim::kMemoryOpDelay);
  // Counters: one batch, per-slot read detail.
  EXPECT_EQ(m.read_batches(), 1u);
  EXPECT_EQ(m.reads(), 3u);
}

TEST(ReadMany, PerSlotNaksForSlotsOutsideRegion) {
  Executor exec;
  Memory m(exec, 1);
  const auto all = all_processes(2);
  const RegionId r = m.create_region({"slot/"}, Permission::open(all));
  std::vector<ReadResult> out;
  std::vector<std::string> regs{"slot/a", "other/x"};
  exec.spawn([](Memory* m, RegionId r, std::vector<std::string> regs,
                std::vector<ReadResult>* out) -> Task<void> {
    *out = co_await m->read_many(1, r, std::move(regs));
  }(&m, r, std::move(regs), &out));
  exec.run();
  ASSERT_EQ(out.size(), 2u);
  EXPECT_TRUE(out[0].ok());
  EXPECT_FALSE(out[1].ok());  // outside the region: per-slot nak
}

TEST(ReadMany, NoReadPermissionNaksEverySlot) {
  Executor exec;
  Memory m(exec, 1);
  const auto all = all_processes(2);
  // p1 is exclusive writer; p2 can read, p3 is a stranger with no rights.
  const RegionId r = m.create_region({"slot/"}, Permission::exclusive_writer(1, all));
  std::vector<ReadResult> out;
  std::vector<std::string> regs{"slot/a", "slot/b"};
  exec.spawn([](Memory* m, RegionId r, std::vector<std::string> regs,
                std::vector<ReadResult>* out) -> Task<void> {
    *out = co_await m->read_many(3, r, std::move(regs));
  }(&m, r, std::move(regs), &out));
  exec.run();
  ASSERT_EQ(out.size(), 2u);
  EXPECT_FALSE(out[0].ok());
  EXPECT_FALSE(out[1].ok());
  EXPECT_EQ(m.reads(), 0u);
  EXPECT_EQ(m.read_batches(), 1u);  // the batch arrived; every slot nak'd
}

TEST(ReadMany, CrashedMemoryHangsTheWholeBatch) {
  Executor exec;
  Memory m(exec, 1);
  const RegionId r = m.create_region({"slot/"}, Permission::open(all_processes(2)));
  m.crash();
  bool completed = false;
  std::vector<std::string> regs{"slot/a"};
  exec.spawn([](Memory* m, RegionId r, std::vector<std::string> regs,
                bool* done) -> Task<void> {
    (void)co_await m->read_many(1, r, std::move(regs));
    *done = true;
  }(&m, r, std::move(regs), &completed));
  exec.run(1000);
  EXPECT_FALSE(completed);  // §3: operations on crashed memories hang
}

TEST(ReadMany, VerbsBackendMatchesModelBackend) {
  Executor exec;
  const auto all = all_processes(2);
  verbs::VerbsMemory vm(exec,
                        std::make_unique<verbs::RdmaDevice>(exec, 1, 0xfeed),
                        all);
  const RegionId r = vm.create_region({"slot/"}, Permission::open(all));
  exec.spawn([](verbs::VerbsMemory* vm, RegionId r) -> Task<void> {
    (void)co_await vm->write(1, r, "slot/a", to_bytes("A"));
  }(&vm, r));
  exec.run();

  std::vector<ReadResult> out;
  sim::Time completed_at = 0;
  std::vector<std::string> regs{"slot/a", "slot/b"};
  exec.spawn([](Executor* e, verbs::VerbsMemory* vm, RegionId r,
                std::vector<std::string> regs, std::vector<ReadResult>* out,
                sim::Time* at) -> Task<void> {
    *out = co_await vm->read_many(1, r, std::move(regs));
    *at = e->now();
  }(&exec, &vm, r, std::move(regs), &out, &completed_at));
  const sim::Time start = exec.now();
  exec.run();

  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].value, to_bytes("A"));
  EXPECT_TRUE(out[1].ok());
  EXPECT_TRUE(util::is_bottom(out[1].value));
  EXPECT_EQ(completed_at - start, sim::kMemoryOpDelay);
  EXPECT_EQ(vm.device().posted_read_batches(), 1u);
  EXPECT_EQ(vm.device().posted_reads(), 2u);
}

TEST(ReadMany, VerbsRevokedRkeyNaksAtTheNic) {
  Executor exec;
  const auto all = all_processes(2);
  verbs::VerbsMemory vm(exec,
                        std::make_unique<verbs::RdmaDevice>(exec, 1, 0xbeef),
                        all);
  // p1 exclusive writer: p2 may read; nobody else registered.
  const RegionId r = vm.create_region({"slot/"}, Permission::exclusive_writer(1, all));
  std::vector<ReadResult> p2;
  std::vector<std::string> regs{"slot/a"};
  exec.spawn([](verbs::VerbsMemory* vm, RegionId r,
                std::vector<std::string> regs,
                std::vector<ReadResult>* out) -> Task<void> {
    *out = co_await vm->read_many(2, r, std::move(regs));
  }(&vm, r, std::move(regs), &p2));
  exec.run();
  ASSERT_EQ(p2.size(), 1u);
  EXPECT_TRUE(p2[0].ok());  // reader registration present

  // An unknown region naks immediately without touching the device,
  // mirroring read().
  std::vector<ReadResult> bad;
  sim::Time at = 0;
  std::vector<std::string> regs2{"slot/a"};
  exec.spawn([](Executor* e, verbs::VerbsMemory* vm,
                std::vector<std::string> regs, std::vector<ReadResult>* out,
                sim::Time* at) -> Task<void> {
    *out = co_await vm->read_many(2, RegionId{99}, std::move(regs));
    *at = e->now();
  }(&exec, &vm, std::move(regs2), &bad, &at));
  const sim::Time start = exec.now();
  exec.run();
  ASSERT_EQ(bad.size(), 1u);
  EXPECT_FALSE(bad[0].ok());
  EXPECT_EQ(at, start);  // no device round trip for an unknown region
}

TEST(ReadMany, ProcessViewHangsBatchAfterCrash) {
  Executor exec;
  Memory m(exec, 1);
  const RegionId r = m.create_region({"slot/"}, Permission::open(all_processes(2)));
  auto alive = std::make_shared<bool>(true);
  harness::ProcessView view(exec, m, alive);
  *alive = false;
  bool completed = false;
  std::vector<std::string> regs{"slot/a"};
  exec.spawn([](harness::ProcessView* v, RegionId r,
                std::vector<std::string> regs, bool* done) -> Task<void> {
    (void)co_await v->read_many(1, r, std::move(regs));
    *done = true;
  }(&view, r, std::move(regs), &completed));
  exec.run(1000);
  EXPECT_FALSE(completed);
}

TEST(WriteVersion, BumpsOnAppliedWritesOnly) {
  Executor exec;
  Memory m(exec, 1);
  const auto all = all_processes(2);
  const RegionId r = m.create_region({"slot/"}, Permission::exclusive_writer(1, all));
  ASSERT_NE(m.write_version(), nullptr);
  const std::uint64_t v0 = m.write_version()->version();

  exec.spawn(write_reg(&m, 1, r, "slot/a", to_bytes("A")));  // applied
  exec.spawn(write_reg(&m, 2, r, "slot/a", to_bytes("B")));  // nak'd (no perm)
  exec.run();
  EXPECT_EQ(m.write_version()->version(), v0 + 1);  // only the ack bumped

  // ProcessView forwards the inner memory's signal.
  auto alive = std::make_shared<bool>(true);
  harness::ProcessView view(exec, m, alive);
  EXPECT_EQ(view.write_version(), m.write_version());
}

}  // namespace
}  // namespace mnm::mem
