// Unit tests for Protected Memory Paxos (Algorithm 7) and Disk Paxos,
// exercised directly (not through the harness): slot wire format, the
// permission-transfer mechanics (Lemma D.3), value adoption, and the
// 2-vs-4-delay structural difference.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/core/disk_paxos.hpp"
#include "src/core/omega.hpp"
#include "src/core/protected_memory_paxos.hpp"
#include "src/core/transport.hpp"
#include "src/mem/memory.hpp"
#include "src/net/network.hpp"
#include "src/sim/executor.hpp"

namespace mnm::core {
namespace {

using sim::Executor;
using sim::Task;
using util::to_bytes;
using util::to_string;

TEST(PmpSlotWire, RoundTrip) {
  PmpSlot s{7, 5, true, to_bytes("v")};
  const auto d = PmpSlot::decode(s.encode());
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->min_proposal, 7u);
  EXPECT_EQ(d->acc_proposal, 5u);
  EXPECT_TRUE(d->has_value);
  EXPECT_EQ(to_string(d->value), "v");
}

TEST(PmpSlotWire, BottomDecodesToEmptySlot) {
  const auto d = PmpSlot::decode({});
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->min_proposal, 0u);
  EXPECT_FALSE(d->has_value);
}

TEST(PmpSlotWire, GarbageRejected) {
  EXPECT_FALSE(PmpSlot::decode(to_bytes("xx")).has_value());
}

TEST(PmpLegalChange, OnlyExclusiveSelfGrabAllowed) {
  const auto all = all_processes(3);
  const auto legal = pmp_legal_change(all);
  // p2 taking exclusive writership for itself: legal.
  EXPECT_TRUE(legal(2, 1, mem::Permission::exclusive_writer(1, all),
                    mem::Permission::exclusive_writer(2, all)));
  // p2 granting writership to p3: illegal.
  EXPECT_FALSE(legal(2, 1, mem::Permission::exclusive_writer(1, all),
                     mem::Permission::exclusive_writer(3, all)));
  // p2 opening the region: illegal.
  EXPECT_FALSE(legal(2, 1, mem::Permission::exclusive_writer(1, all),
                     mem::Permission::open(all)));
}

struct PmpWorld {
  explicit PmpWorld(std::size_t n, std::size_t m, ProcessId leader = kLeaderP1)
      : n(n), network(exec, n), omega(Omega::fixed(exec, leader)) {
    for (std::size_t i = 0; i < m; ++i) {
      memories.push_back(std::make_unique<mem::Memory>(exec, static_cast<MemoryId>(i + 1)));
      region = make_pmp_region(*memories.back(), n);
      ifc.push_back(memories.back().get());
    }
    PmpConfig pc;
    pc.n = n;
    for (ProcessId p : all_processes(n)) {
      transports.push_back(
          std::make_unique<NetTransport>(exec, network, p, /*tag=*/900));
      pmps.push_back(std::make_unique<ProtectedMemoryPaxos>(
          exec, ifc, region, *transports.back(), omega, pc));
      pmps.back()->start();
    }
  }

  void propose(ProcessId p, const std::string& v) {
    exec.spawn([](ProtectedMemoryPaxos* pmp, Bytes value) -> Task<void> {
      (void)co_await pmp->propose(std::move(value));
    }(pmps[p - 1].get(), to_bytes(v)));
  }

  std::size_t n;
  Executor exec;
  net::Network network;
  Omega omega;
  std::vector<std::unique_ptr<mem::Memory>> memories;
  std::vector<mem::MemoryIface*> ifc;
  RegionId region = 0;
  std::vector<std::unique_ptr<NetTransport>> transports;
  std::vector<std::unique_ptr<ProtectedMemoryPaxos>> pmps;
};

TEST(ProtectedMemoryPaxos, LeaderFastPathIsOneWrite) {
  PmpWorld w(2, 3);
  w.propose(1, "fast");
  w.propose(2, "slow");
  w.exec.run_until([&] { return w.pmps[0]->decided(); }, 5000);
  ASSERT_TRUE(w.pmps[0]->decided());
  EXPECT_EQ(w.pmps[0]->decided_at(), 2u);
  EXPECT_EQ(to_string(w.pmps[0]->decision()), "fast");
  // The fast path did zero permission changes (p1 owns them initially).
  std::uint64_t changes = 0;
  for (auto& m : w.memories) changes += m->permission_changes();
  EXPECT_EQ(changes, 0u);
}

TEST(ProtectedMemoryPaxos, NonP1LeaderRunsFullPhase) {
  PmpWorld w(3, 3, /*leader=*/2);
  w.propose(2, "from-p2");
  w.exec.run_until([&] { return w.pmps[1]->decided(); }, 5000);
  ASSERT_TRUE(w.pmps[1]->decided());
  EXPECT_EQ(to_string(w.pmps[1]->decision()), "from-p2");
  // Phase 1 grabbed permissions on the memories.
  std::uint64_t changes = 0;
  for (auto& m : w.memories) changes += m->permission_changes();
  EXPECT_GE(changes, majority(3));
  // Full phase costs more than the fast path: grab(2)+write(2)+read(2)+write(2).
  EXPECT_GE(w.pmps[1]->decided_at(), 8u);
}

TEST(ProtectedMemoryPaxos, LateLeaderAdoptsDecidedValue) {
  // p1 decides; then Ω moves to p2 (simulated by a fresh oracle): p2's
  // phase-1 reads must adopt p1's value (agreement, Theorem D.2).
  PmpWorld w(2, 3);
  w.propose(1, "first");
  w.exec.run_until([&] { return w.pmps[0]->decided(); }, 5000);
  ASSERT_TRUE(w.pmps[0]->decided());

  // New world state: p2 becomes leader and proposes a different value. Use
  // a second PMP instance bound to the same memories (decide broadcast off:
  // fresh network tag).
  Omega omega2 = Omega::fixed(w.exec, 2);
  PmpConfig pc;
  pc.n = 2;
  NetTransport late_transport(w.exec, w.network, 2, /*tag=*/990);
  ProtectedMemoryPaxos late(w.exec, w.ifc, w.region, late_transport, omega2, pc);
  late.start();
  w.exec.spawn([](ProtectedMemoryPaxos* pmp) -> Task<void> {
    (void)co_await pmp->propose(to_bytes("second"));
  }(&late));
  w.exec.run_until([&] { return late.decided(); }, 10000);
  ASSERT_TRUE(late.decided());
  EXPECT_EQ(to_string(late.decision()), "first");  // adopted, not its own
}

TEST(ProtectedMemoryPaxos, StolenPermissionNaksOldLeaderWrite) {
  // Lemma D.3's mechanism in isolation: after p2 grabs a memory, p1's
  // phase-2 write naks there.
  PmpWorld w(2, 1);
  mem::Status p1_write = mem::Status::kAck;
  w.exec.spawn([](PmpWorld* w, mem::Status* out) -> Task<void> {
    // p2 seizes the permission.
    (void)co_await w->ifc[0]->change_permission(
        2, w->region, mem::Permission::exclusive_writer(2, all_processes(2)));
    // p1's write now fails.
    PmpSlot s{0, 0, true, to_bytes("stale")};
    *out = co_await w->ifc[0]->write(1, w->region, "pmp/slot/1", s.encode());
  }(&w, &p1_write));
  w.exec.run(100);
  EXPECT_EQ(p1_write, mem::Status::kNak);
}

struct DiskWorld {
  explicit DiskWorld(std::size_t n, std::size_t m)
      : n(n), network(exec, n), omega(Omega::fixed(exec, kLeaderP1)) {
    for (std::size_t i = 0; i < m; ++i) {
      memories.push_back(std::make_unique<mem::Memory>(exec, static_cast<MemoryId>(i + 1)));
      region = make_disk_region(*memories.back(), n);
      ifc.push_back(memories.back().get());
    }
    DiskPaxosConfig dc;
    dc.n = n;
    for (ProcessId p : all_processes(n)) {
      transports.push_back(
          std::make_unique<NetTransport>(exec, network, p, /*tag=*/910));
      dps.push_back(std::make_unique<DiskPaxos>(exec, ifc, region,
                                                *transports.back(), omega, dc));
      dps.back()->start();
    }
  }

  std::size_t n;
  Executor exec;
  net::Network network;
  Omega omega;
  std::vector<std::unique_ptr<mem::Memory>> memories;
  std::vector<mem::MemoryIface*> ifc;
  RegionId region = 0;
  std::vector<std::unique_ptr<NetTransport>> transports;
  std::vector<std::unique_ptr<DiskPaxos>> dps;
};

TEST(DiskPaxos, FourDelaysBecauseOfVerifyingRead) {
  DiskWorld w(2, 3);
  w.exec.spawn([](DiskPaxos* dp) -> Task<void> {
    (void)co_await dp->propose(to_bytes("v"));
  }(w.dps[0].get()));
  w.exec.run_until([&] { return w.dps[0]->decided(); }, 5000);
  ASSERT_TRUE(w.dps[0]->decided());
  EXPECT_EQ(w.dps[0]->decided_at(), 4u);
  // And it truly read back: every memory served reads, not just writes.
  for (auto& m : w.memories) EXPECT_GT(m->reads(), 0u);
}

TEST(DiskPaxos, StaticPermissionsNeverChange) {
  DiskWorld w(2, 3);
  mem::Status st = mem::Status::kAck;
  w.exec.spawn([](DiskWorld* w, mem::Status* out) -> Task<void> {
    *out = co_await w->ifc[0]->change_permission(
        1, w->region, mem::Permission::exclusive_writer(1, all_processes(2)));
  }(&w, &st));
  w.exec.run(100);
  EXPECT_EQ(st, mem::Status::kNak);  // the disk model has no changePermission
}

TEST(DiskPaxos, BothProposersAgreeUnderContention) {
  DiskWorld w(2, 3);
  Bytes d1, d2;
  w.exec.spawn([](DiskPaxos* dp, Bytes* out) -> Task<void> {
    *out = co_await dp->propose(to_bytes("a"));
  }(w.dps[0].get(), &d1));
  w.exec.spawn([](DiskPaxos* dp, Bytes* out) -> Task<void> {
    *out = co_await dp->propose(to_bytes("b"));
  }(w.dps[1].get(), &d2));
  w.exec.run_until([&] { return !d1.empty() && !d2.empty(); }, 20000);
  ASSERT_TRUE(w.dps[0]->decided());
  ASSERT_TRUE(w.dps[1]->decided());
  EXPECT_EQ(to_string(d1), to_string(d2));
}

TEST(DiskBlockWire, RoundTripAndBottom) {
  DiskBlock b{9, 3, true, to_bytes("x")};
  const auto d = DiskBlock::decode(b.encode());
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->mbal, 9u);
  EXPECT_EQ(d->bal, 3u);
  EXPECT_EQ(to_string(d->value), "x");
  const auto bot = DiskBlock::decode({});
  ASSERT_TRUE(bot.has_value());
  EXPECT_FALSE(bot->has_value);
  EXPECT_FALSE(DiskBlock::decode(to_bytes("?")).has_value());
}

}  // namespace
}  // namespace mnm::core
