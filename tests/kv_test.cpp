// kv/ unit invariants: the command codec, the state machine's GET/PUT/DEL/
// CAS semantics and exactly-once session dedup, the shard map, and the
// workload generators (zipfian skew, fixed-seed reproducibility).

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <vector>

#include "src/core/omega.hpp"
#include "src/crypto/signature.hpp"
#include "src/kv/command.hpp"
#include "src/kv/router.hpp"
#include "src/kv/shard.hpp"
#include "src/kv/state_machine.hpp"
#include "src/kv/workload.hpp"
#include "src/sim/executor.hpp"
#include "src/sim/rng.hpp"
#include "src/sim/task.hpp"
#include "src/sim/time.hpp"

namespace mnm::kv {
namespace {

using util::to_bytes;

Command cmd(Op op, ClientId client, std::uint64_t seq, const char* key,
            const char* value = "", const char* expected = "") {
  Command c;
  c.op = op;
  c.client = client;
  c.seq = seq;
  c.key = to_bytes(key);
  c.value = to_bytes(value);
  c.expected = to_bytes(expected);
  return c;
}

TEST(KvCodec, RoundTripAllOps) {
  for (const Op op : {Op::kGet, Op::kPut, Op::kDel, Op::kCas}) {
    const Command c = cmd(op, 7, 42, "key-3", "some value", "old value");
    const auto d = decode_command(encode_command(c));
    ASSERT_TRUE(d.has_value());
    EXPECT_EQ(*d, c);
  }
}

TEST(KvCodec, MalformedInputsDecodeToNullopt) {
  const Bytes wire = encode_command(cmd(Op::kPut, 1, 1, "k", "v"));
  // Every proper truncation fails (strict length prefixes + expect_end).
  for (std::size_t cut = 0; cut < wire.size(); ++cut) {
    EXPECT_FALSE(
        decode_command(util::ByteView(wire).subspan(0, cut)).has_value())
        << "cut " << cut;
  }
  // Trailing garbage fails.
  Bytes extended = wire;
  extended.push_back(0);
  EXPECT_FALSE(decode_command(extended).has_value());
  // Bad op byte fails.
  Bytes bad_op = wire;
  bad_op[0] = 99;
  EXPECT_FALSE(decode_command(bad_op).has_value());
  EXPECT_FALSE(decode_command(Bytes{}).has_value());
}

TEST(KvStateMachine, GetPutDelCasSemantics) {
  StateMachine sm;
  std::vector<Reply> replies;
  sm.set_reply_sink(
      [&](ClientId, std::uint64_t, const Reply& r) { replies.push_back(r); });

  sm.apply(0, encode_command(cmd(Op::kGet, 1, 1, "a")));
  EXPECT_EQ(replies.back().status, Status::kNotFound);

  sm.apply(0, encode_command(cmd(Op::kPut, 1, 2, "a", "v1")));
  EXPECT_EQ(replies.back().status, Status::kOk);
  sm.apply(1, encode_command(cmd(Op::kGet, 1, 3, "a")));
  EXPECT_EQ(replies.back().status, Status::kOk);
  EXPECT_EQ(replies.back().value, to_bytes("v1"));

  // CAS with the right expectation swaps; with a stale one reports the
  // actual current value.
  sm.apply(2, encode_command(cmd(Op::kCas, 1, 4, "a", "v2", "v1")));
  EXPECT_EQ(replies.back().status, Status::kOk);
  sm.apply(2, encode_command(cmd(Op::kCas, 1, 5, "a", "v3", "v1")));
  EXPECT_EQ(replies.back().status, Status::kCasMismatch);
  EXPECT_EQ(replies.back().value, to_bytes("v2"));
  // CAS with empty expectation means "create iff absent".
  sm.apply(3, encode_command(cmd(Op::kCas, 1, 6, "b", "fresh")));
  EXPECT_EQ(replies.back().status, Status::kOk);

  sm.apply(4, encode_command(cmd(Op::kDel, 1, 7, "a")));
  EXPECT_EQ(replies.back().status, Status::kOk);
  sm.apply(4, encode_command(cmd(Op::kDel, 1, 8, "a")));
  EXPECT_EQ(replies.back().status, Status::kNotFound);

  EXPECT_EQ(sm.ops_applied(), 8u);
  EXPECT_EQ(sm.duplicates_suppressed(), 0u);
  EXPECT_EQ(sm.last_seq(1), 8u);
}

TEST(KvStateMachine, DuplicateApplySuppressedAndCachedReplyRedelivered) {
  StateMachine sm;
  std::vector<std::pair<std::uint64_t, Reply>> replies;
  sm.set_reply_sink([&](ClientId, std::uint64_t seq, const Reply& r) {
    replies.emplace_back(seq, r);
  });

  const Bytes put = encode_command(cmd(Op::kPut, 9, 1, "k", "first"));
  sm.apply(0, put);
  // The same (client, seq) lands again — a leader hand-off re-proposal or a
  // client retry racing the original. The mutation must not repeat, and the
  // cached reply must be re-delivered for the retrying client.
  sm.apply(1, put);
  EXPECT_EQ(sm.ops_applied(), 1u);
  EXPECT_EQ(sm.duplicates_suppressed(), 1u);
  ASSERT_EQ(replies.size(), 2u);
  EXPECT_EQ(replies[0], replies[1]);
  EXPECT_EQ(sm.store().at(to_bytes("k")), to_bytes("first"));

  // A duplicate whose effect would differ if re-applied: PUT k=second, then
  // a stale copy of the first PUT. The store must keep "second".
  sm.apply(2, encode_command(cmd(Op::kPut, 9, 2, "k", "second")));
  sm.apply(3, put);
  EXPECT_EQ(sm.store().at(to_bytes("k")), to_bytes("second"));
  EXPECT_EQ(sm.ops_applied(), 2u);
  EXPECT_EQ(sm.duplicates_suppressed(), 2u);

  // Duplicate CAS: the second apply must NOT see its own write and flip to
  // mismatch — it must echo the original success.
  const Bytes cas = encode_command(cmd(Op::kCas, 9, 3, "k", "third", "second"));
  sm.apply(4, cas);
  ASSERT_EQ(replies.back().second.status, Status::kOk);
  sm.apply(5, cas);
  EXPECT_EQ(replies.back().second.status, Status::kOk) << "duplicate CAS must "
      "re-deliver the cached success, not re-evaluate against its own write";
  EXPECT_EQ(sm.ops_applied(), 3u);
}

TEST(KvStateMachine, MalformedCommandsNoopDeterministically) {
  StateMachine sm;
  sm.apply(0, to_bytes("\xde\xad\xbe\xef"));
  sm.apply(0, Bytes{});
  EXPECT_EQ(sm.malformed(), 2u);
  EXPECT_EQ(sm.ops_applied(), 0u);
  EXPECT_TRUE(sm.store().empty());
}

TEST(KvStateMachine, StoreHashCoversStoreAndSessions) {
  StateMachine a, b;
  const Bytes put = encode_command(cmd(Op::kPut, 1, 1, "k", "v"));
  a.apply(0, put);
  b.apply(0, put);
  EXPECT_EQ(a.store_hash(), b.store_hash());
  // Same store, different session history (a saw a duplicate) — hashes
  // still equal because duplicates change no session state...
  a.apply(1, put);
  EXPECT_EQ(a.store_hash(), b.store_hash());
  // ...but a diverging applied op changes the hash even when the store ends
  // up identical (DEL of an absent key).
  b.apply(2, encode_command(cmd(Op::kDel, 2, 1, "nope")));
  EXPECT_NE(a.store_hash(), b.store_hash());
}

TEST(KvShardMap, StableAndReasonablySpread) {
  const ShardMap map(8);
  std::map<std::size_t, std::size_t> counts;
  for (int i = 0; i < 256; ++i) {
    const Bytes key = util::to_bytes("key-" + std::to_string(i));
    const std::size_t s = map.shard_of(key);
    EXPECT_EQ(s, map.shard_of(key));  // deterministic
    EXPECT_LT(s, 8u);
    ++counts[s];
  }
  // Every shard owns a meaningful chunk of a 256-key space.
  EXPECT_EQ(counts.size(), 8u);
  for (const auto& [shard, count] : counts) {
    EXPECT_GE(count, 12u) << "shard " << shard << " nearly empty";
  }
  // One shard degenerates to everything-on-0.
  const ShardMap one(1);
  EXPECT_EQ(one.shard_of(util::to_bytes("anything")), 0u);
}

TEST(KvShardNs, DistinctPerGroup) {
  EXPECT_EQ(shard_ns(0, "dp"), "g0/dp");
  EXPECT_EQ(shard_ns(3, "neb"), "g3/neb");
  EXPECT_NE(shard_ns(1, "cq"), shard_ns(2, "cq"));
}

TEST(KvZipf, SkewedAndDeterministic) {
  ZipfGenerator zipf(100, 0.99);
  sim::Rng rng1(7), rng2(7);
  std::map<std::size_t, std::size_t> hist;
  for (int i = 0; i < 4000; ++i) {
    const std::size_t a = zipf.next(rng1);
    ASSERT_LT(a, 100u);
    ++hist[a];
  }
  ZipfGenerator zipf2(100, 0.99);
  for (int i = 0; i < 4000; ++i) {
    const std::size_t b = zipf2.next(rng2);
    --hist[b];
  }
  for (const auto& [k, v] : hist) {
    EXPECT_EQ(v, 0u) << "zipf stream diverged at key " << k;
  }
  // Skew: the hottest item dominates a uniform draw's share by far.
  ZipfGenerator zipf3(100, 0.99);
  sim::Rng rng3(11);
  std::size_t zero = 0;
  for (int i = 0; i < 4000; ++i) {
    if (zipf3.next(rng3) == 0) ++zero;
  }
  EXPECT_GT(zero, 400u) << "item 0 should draw far more than the uniform 1%";
}

TEST(KvWorkloadMix, ReadFractions) {
  EXPECT_DOUBLE_EQ(read_fraction(Mix::kA), 0.5);
  EXPECT_DOUBLE_EQ(read_fraction(Mix::kB), 0.95);
  EXPECT_DOUBLE_EQ(read_fraction(Mix::kC), 1.0);
}

// ---------------------------------------------------------------------------
// Snapshot / restore: the crash-and-rejoin codec.
// ---------------------------------------------------------------------------

TEST(KvStateMachine, SnapshotRestoreRoundTripPreservesEverything) {
  StateMachine a;
  a.apply(0, encode_command(cmd(Op::kPut, 1, 1, "a", "v1")));
  a.apply(1, encode_command(cmd(Op::kPut, 2, 1, "b", "v2")));
  a.apply(2, encode_command(cmd(Op::kCas, 1, 2, "a", "v3", "wrong")));  // mismatch
  a.apply(3, encode_command(cmd(Op::kDel, 2, 2, "nope")));  // not-found
  a.apply(4, encode_command(cmd(Op::kPut, 1, 2, "a", "dup")));  // dup of seq 2
  a.apply(5, to_bytes("\xde\xad"));  // malformed

  StateMachine b;
  ASSERT_TRUE(b.restore(a.snapshot()));
  EXPECT_EQ(b.store_hash(), a.store_hash());
  EXPECT_EQ(b.ops_applied(), a.ops_applied());
  EXPECT_EQ(b.duplicates_suppressed(), a.duplicates_suppressed());
  EXPECT_EQ(b.malformed(), a.malformed());
  EXPECT_EQ(b.store(), a.store());
  EXPECT_EQ(b.last_seq(1), a.last_seq(1));
  EXPECT_EQ(b.last_seq(2), a.last_seq(2));

  // The restored sessions still dedup: a retry of client 1's last op must be
  // suppressed and re-deliver the cached reply — across the restart.
  std::vector<std::pair<std::uint64_t, Reply>> replies;
  b.set_reply_sink([&](ClientId, std::uint64_t seq, const Reply& r) {
    replies.emplace_back(seq, r);
  });
  const std::uint64_t before = b.ops_applied();
  b.apply(6, encode_command(cmd(Op::kCas, 1, 2, "a", "v3", "wrong")));
  EXPECT_EQ(b.ops_applied(), before);
  ASSERT_EQ(replies.size(), 1u);
  EXPECT_EQ(replies[0].second.status, Status::kCasMismatch);
  EXPECT_EQ(replies[0].second.value, to_bytes("v1"));
  // Restored and original must keep hashing identically as they diverge
  // together.
  a.apply(6, encode_command(cmd(Op::kCas, 1, 2, "a", "v3", "wrong")));
  EXPECT_EQ(b.store_hash(), a.store_hash());
}

TEST(KvStateMachine, EmptyMachineSnapshotRoundTrips) {
  StateMachine a, b;
  b.apply(0, encode_command(cmd(Op::kPut, 1, 1, "junk", "junk")));
  ASSERT_TRUE(b.restore(a.snapshot()));  // restore back to pristine
  EXPECT_EQ(b.store_hash(), a.store_hash());
  EXPECT_TRUE(b.store().empty());
  EXPECT_EQ(b.ops_applied(), 0u);
}

TEST(KvStateMachine, RestoreRejectsCorruptSnapshotsUntouched) {
  StateMachine a;
  a.apply(0, encode_command(cmd(Op::kPut, 1, 1, "k", "v")));
  a.apply(1, encode_command(cmd(Op::kPut, 2, 1, "k2", "v2")));
  const Bytes snap = a.snapshot();

  StateMachine b;
  b.apply(0, encode_command(cmd(Op::kPut, 7, 1, "mine", "intact")));
  const std::uint64_t hash_before = b.store_hash();

  // Every truncation fails (strict total decode).
  for (std::size_t cut = 0; cut < snap.size(); ++cut) {
    EXPECT_FALSE(b.restore(util::ByteView(snap).subspan(0, cut)))
        << "cut " << cut;
  }
  // Trailing garbage fails.
  Bytes extended = snap;
  extended.push_back(0);
  EXPECT_FALSE(b.restore(extended));
  // Any flipped byte fails: either the codec rejects it or the embedded
  // digest catches it.
  for (std::size_t i = 0; i < snap.size(); ++i) {
    Bytes bad = snap;
    bad[i] ^= 0x01;
    EXPECT_FALSE(b.restore(bad)) << "flipped byte " << i;
  }
  EXPECT_FALSE(b.restore(Bytes{}));
  // Every rejection left the target machine untouched.
  EXPECT_EQ(b.store_hash(), hash_before);
  EXPECT_EQ(b.store().at(to_bytes("mine")), to_bytes("intact"));
}

// --- Stale duplicates (seq < last_seq). ---

TEST(KvStateMachine, StaleDuplicateGetsMarkerNotSomeoneElsesReply) {
  StateMachine sm;
  std::vector<std::pair<std::uint64_t, Reply>> replies;
  sm.set_reply_sink([&](ClientId, std::uint64_t seq, const Reply& r) {
    replies.emplace_back(seq, r);
  });
  const Bytes put = encode_command(cmd(Op::kPut, 3, 1, "k", "mine"));
  const Bytes get = encode_command(cmd(Op::kGet, 3, 2, "k"));
  sm.apply(0, put);
  sm.apply(1, get);
  ASSERT_EQ(replies.size(), 2u);
  const Reply get_reply = replies[1].second;

  // A very late replay of seq 1 arrives after seq 2 already applied. Only
  // seq 2's reply is cached — re-delivering it for seq 1 would hand the PUT
  // a GET's answer. The stale replay must get the explicit marker instead.
  sm.apply(2, put);
  ASSERT_EQ(replies.size(), 3u);
  EXPECT_EQ(replies[2].first, 1u);
  EXPECT_EQ(replies[2].second.status, Status::kStaleDup);
  EXPECT_TRUE(replies[2].second.value.empty());
  EXPECT_EQ(sm.duplicates_suppressed(), 1u);

  // A replay of the *newest* seq still re-delivers the cached original.
  sm.apply(3, get);
  ASSERT_EQ(replies.size(), 4u);
  EXPECT_EQ(replies[3].first, 2u);
  EXPECT_EQ(replies[3].second, get_reply);
  EXPECT_EQ(sm.ops_applied(), 2u);
}

// --- Client-signed commands. ---

Bytes signed_wire(const crypto::Signer& signer, const Command& c,
                  std::uint32_t group = 0) {
  const Bytes body = encode_command(c);
  return encode_signed_command(body,
                               signer.sign(command_signing_bytes(group, body)));
}

TEST(KvSignedCodec, RoundTripAndLegacyPassthrough) {
  crypto::KeyStore ks(11);
  const crypto::Signer signer = ks.register_process(client_signer_id(7));
  const Command c = cmd(Op::kCas, 7, 42, "key", "new", "old");

  // Legacy wire: decode_signed_command is decode_command exactly.
  const auto legacy = decode_signed_command(encode_command(c));
  ASSERT_TRUE(legacy.has_value());
  EXPECT_FALSE(legacy->has_sig);
  EXPECT_EQ(legacy->cmd, c);

  const auto s = decode_signed_command(signed_wire(signer, c));
  ASSERT_TRUE(s.has_value());
  EXPECT_TRUE(s->has_sig);
  EXPECT_EQ(s->cmd, c);
  EXPECT_EQ(s->sig.signer, client_signer_id(7));
  EXPECT_EQ(s->body, encode_command(c));
  EXPECT_TRUE(ks.valid(command_signing_bytes(0, s->body), s->sig));
  // The signing bytes bind the shard group: the same body signed for
  // group 0 does not verify under group 1's domain.
  EXPECT_FALSE(ks.valid(command_signing_bytes(1, s->body), s->sig));
}

TEST(KvSignedCodec, MalformedSignedWiresReject) {
  crypto::KeyStore ks(11);
  const crypto::Signer signer = ks.register_process(client_signer_id(1));
  const Bytes wire = signed_wire(signer, cmd(Op::kPut, 1, 1, "k", "v"));
  for (std::size_t cut = 0; cut < wire.size(); ++cut) {
    EXPECT_FALSE(
        decode_signed_command(util::ByteView(wire).subspan(0, cut)).has_value())
        << "cut " << cut;
  }
  Bytes extended = wire;
  extended.push_back(0);
  EXPECT_FALSE(decode_signed_command(extended).has_value());
  // A signed wrapper around junk body bytes is malformed, not forged.
  crypto::Signature sig = signer.sign(to_bytes("x"));
  EXPECT_FALSE(
      decode_signed_command(encode_signed_command(to_bytes("junk"), sig))
          .has_value());
  // Wrong-size MAC is malformed even before verification.
  sig.mac.pop_back();
  const Bytes body = encode_command(cmd(Op::kPut, 1, 1, "k", "v"));
  EXPECT_FALSE(decode_signed_command(encode_signed_command(body, sig))
                   .has_value());
}

TEST(KvStateMachine, SignedModeRejectsForgeriesBeforeSessionLookup) {
  crypto::KeyStore ks(5);
  const crypto::Signer victim = ks.register_process(client_signer_id(1));
  const crypto::Signer attacker = ks.register_process(777);
  StateMachine sm;
  sm.set_keystore(&ks);
  std::size_t sink_calls = 0;
  sm.set_reply_sink(
      [&](ClientId, std::uint64_t, const Reply&) { ++sink_calls; });

  const Command hijack = cmd(Op::kPut, 1, 1000000, "k", "hijack");
  // Unsigned legacy wire: rejected in signed mode.
  sm.apply(0, encode_command(hijack));
  // A valid signature under the attacker's OWN identity claiming client 1 —
  // the strongest forgery the model allows (Byzantine processes hold only
  // their own signer).
  sm.apply(1, signed_wire(attacker, hijack));
  // Victim-signed bytes with a flipped MAC bit.
  Bytes tampered = signed_wire(victim, hijack);
  tampered.back() ^= 0x01;
  sm.apply(2, tampered);
  EXPECT_EQ(sm.forged(), 3u);
  EXPECT_EQ(sm.ops_applied(), 0u);
  EXPECT_EQ(sink_calls, 0u);
  EXPECT_TRUE(sm.store().empty());
  // The forgeries never created a session: the victim's real seq 1 applies
  // fresh, not as a duplicate of the forged seq 1000000.
  EXPECT_EQ(sm.last_seq(1), 0u);
  const Bytes real = signed_wire(victim, cmd(Op::kPut, 1, 1, "k", "mine"));
  sm.apply(3, real);
  EXPECT_EQ(sm.ops_applied(), 1u);
  EXPECT_EQ(sm.store().at(to_bytes("k")), to_bytes("mine"));
  // Signed retries still deduplicate.
  sm.apply(4, real);
  EXPECT_EQ(sm.duplicates_suppressed(), 1u);
  EXPECT_EQ(sm.ops_applied(), 1u);
}

TEST(KvStateMachine, SignerIdWrapForgeryRejected) {
  // The claimed client id is 64-bit and attacker-controlled while signer
  // ids are 32-bit: without a range check, a claim of 0x100000000 -
  // kClientSignerBase + p wraps client_signer_id back to replica p itself,
  // so a Byzantine replica could "authenticate" arbitrary writes with its
  // OWN signer. Out-of-range claims must verify as forged.
  crypto::KeyStore ks(9);
  const crypto::ProcessId attacker_id = 3;  // a replica's own identity
  const crypto::Signer attacker = ks.register_process(attacker_id);
  StateMachine sm;
  sm.set_keystore(&ks);
  Command wrap = cmd(Op::kPut, 1, 1, "k", "owned");
  wrap.client = 0x100000000ULL - kClientSignerBase + attacker_id;
  ASSERT_FALSE(client_signer_representable(wrap.client));
  // Unchecked, the mapping would land exactly on the attacker's signer.
  ASSERT_EQ(kClientSignerBase +
                static_cast<crypto::ProcessId>(wrap.client),
            attacker_id);
  const Bytes body = encode_command(wrap);
  sm.apply(0, encode_signed_command(
                  body, attacker.sign(command_signing_bytes(0, body))));
  EXPECT_EQ(sm.forged(), 1u);
  EXPECT_EQ(sm.ops_applied(), 0u);
  EXPECT_TRUE(sm.store().empty());

  // Truncation aliasing dies at the same check: a claim past 2^32 whose
  // low bits match a real client never reaches the signer comparison,
  // even with a MAC that is valid under the aliased identity.
  const crypto::Signer victim = ks.register_process(client_signer_id(1));
  Command alias = cmd(Op::kPut, 1, 1, "k", "alias");
  alias.client = 0x100000001ULL;  // truncates onto client 1
  const Bytes abody = encode_command(alias);
  sm.apply(1, encode_signed_command(
                  abody, victim.sign(command_signing_bytes(0, abody))));
  EXPECT_EQ(sm.forged(), 2u);
  EXPECT_EQ(sm.ops_applied(), 0u);
}

TEST(KvStateMachine, CrossShardReplayRejected) {
  // A Byzantine replica is a member of every shard group: without shard
  // binding it could replay a victim's validly-signed command from shard
  // 0's log into shard 1's, advancing the victim's session there so the
  // victim's later op routed to shard 1 is swallowed as a stale duplicate.
  // The signing bytes bind the target group, so the replay verifies as
  // forged.
  crypto::KeyStore ks(10);
  const crypto::Signer client = ks.register_process(client_signer_id(1));
  StateMachine a, b;
  a.set_keystore(&ks, 0);
  b.set_keystore(&ks, 1);
  const Bytes wire = signed_wire(client, cmd(Op::kPut, 1, 7, "k", "v"), 0);
  a.apply(0, wire);
  EXPECT_EQ(a.ops_applied(), 1u);
  b.apply(0, wire);
  EXPECT_EQ(b.forged(), 1u);
  EXPECT_EQ(b.ops_applied(), 0u);
  EXPECT_EQ(b.last_seq(1), 0u) << "replay must not create a session";
  // The victim's own op signed for shard 1 still applies fresh there.
  b.apply(1, signed_wire(client, cmd(Op::kPut, 1, 1, "bk", "bv"), 1));
  EXPECT_EQ(b.ops_applied(), 1u);
  EXPECT_EQ(b.last_seq(1), 1u);
}

TEST(KvStateMachine, AdminOpsRequireAllowListedSigner) {
  crypto::KeyStore ks(6);
  const crypto::Signer admin = ks.register_process(client_signer_id(1));
  StateMachine sm;
  sm.set_keystore(&ks);
  // A perfectly valid *client* signature on an admin op is still forged:
  // reconfiguration authority is allow-listed per identity.
  const Bytes seal = signed_wire(admin, cmd(Op::kSeal, 1, 1, ""));
  sm.apply(0, seal);
  EXPECT_EQ(sm.forged(), 1u);
  EXPECT_EQ(sm.admin_applied(), 0u);
  sm.allow_admin_signer(client_signer_id(1));
  sm.apply(1, seal);
  EXPECT_EQ(sm.forged(), 1u);
  EXPECT_EQ(sm.admin_applied(), 1u);  // verified; rejected only as unpartitioned
  EXPECT_EQ(sm.admin_rejected(), 1u);
}

TEST(KvStateMachine, SnapshotForgedFieldIsSelfDescribing) {
  crypto::KeyStore ks(7);
  const crypto::Signer client = ks.register_process(client_signer_id(2));
  StateMachine a;
  a.set_keystore(&ks);
  a.apply(0, signed_wire(client, cmd(Op::kPut, 2, 1, "k", "v")));
  a.apply(1, encode_command(cmd(Op::kPut, 2, 2, "k", "forged")));
  EXPECT_EQ(a.forged(), 1u);

  // Signed-mode snapshot restores signed-mode state, forged count included —
  // a rejoiner must keep deduplicating signed retries AND keep its forgery
  // accounting.
  StateMachine b;
  b.set_keystore(&ks);
  ASSERT_TRUE(b.restore(a.snapshot()));
  EXPECT_EQ(b.forged(), 1u);
  EXPECT_EQ(b.ops_applied(), 1u);
  EXPECT_EQ(b.last_seq(2), 1u);
  EXPECT_EQ(b.store_hash(), a.store_hash());

  // The layout is self-describing (the digest disambiguates the forged
  // field), not inferred from wiring: signed-mode bytes restore into a
  // machine that is not (yet) armed, forged count intact — arming order
  // must never reject a valid snapshot — and the restored count keeps
  // riding that machine's own snapshots to the next hop.
  StateMachine legacy;
  EXPECT_TRUE(legacy.restore(a.snapshot()));
  EXPECT_EQ(legacy.forged(), 1u);
  EXPECT_EQ(legacy.store_hash(), a.store_hash());
  StateMachine rearmed;
  rearmed.set_keystore(&ks);
  ASSERT_TRUE(rearmed.restore(legacy.snapshot()));
  EXPECT_EQ(rearmed.forged(), 1u);

  // A never-signed machine's snapshot stays byte-identical to the
  // pre-signing codec; an armed machine still accepts those legacy bytes.
  StateMachine c, d;
  const Bytes put = encode_command(cmd(Op::kPut, 2, 1, "k", "v"));
  c.apply(0, put);
  d.set_keystore(&ks);
  d.apply(0, signed_wire(client, cmd(Op::kPut, 2, 1, "k", "v")));
  // Same logical state; the signed-mode snapshot differs only by the
  // forged field.
  EXPECT_EQ(c.snapshot().size() + 8, d.snapshot().size());
  StateMachine armed;
  armed.set_keystore(&ks);
  EXPECT_TRUE(armed.restore(c.snapshot()));
  EXPECT_EQ(armed.forged(), 0u);
  EXPECT_EQ(armed.store_hash(), c.store_hash());
}

// --- Router retry-deadline saturation (halted shard). ---

sim::Task<void> drive_one_put(Router* router, ClientId client, bool* done) {
  Command put;
  put.op = Op::kPut;
  put.key = to_bytes("k");
  put.value = to_bytes("v");
  (void)co_await router->execute(client, put);
  *done = true;
}

TEST(KvRouter, RetryDeadlineSaturatesInsteadOfOverflowing) {
  // A shard with no live replica at all: every submit is dropped, every
  // attempt times out. With an (effectively) unbounded cap the per-attempt
  // doubling used to overflow sim::Time after ~60 attempts and wrap the
  // deadline to zero — an infinite same-instant retry storm. Saturated
  // backoff must keep the attempt count logarithmic in the horizon.
  sim::Executor exec;
  core::Omega omega = core::Omega::fixed(exec, 1);
  std::vector<ShardBackend> backends(1);
  backends[0].replicas = {nullptr};
  backends[0].machines = {nullptr};
  RouterConfig rc;
  rc.retry_timeout = 1;
  rc.adaptive_retry = false;
  rc.retry_timeout_cap = sim::kTimeInfinity;
  Router router(exec, omega, ShardMap(1), std::move(backends), rc);
  const ClientId client = router.register_client();
  bool done = false;
  exec.spawn(drive_one_put(&router, client, &done));
  exec.run(sim::Time{1} << 60);
  EXPECT_FALSE(done);  // the shard is dead; the op can never complete
  EXPECT_GE(router.retries(), 30u);
  EXPECT_LE(router.retries(), 80u);
}

}  // namespace
}  // namespace mnm::kv
