// Tests for the shared-memory substrate (src/mem): regions, permissions,
// legalChange, operation timing, crash semantics.

#include <gtest/gtest.h>

#include <optional>

#include "src/mem/memory.hpp"
#include "src/sim/executor.hpp"
#include "src/util/bytes.hpp"

namespace mnm::mem {
namespace {

using sim::Executor;
using sim::Task;
using sim::Time;
using util::to_bytes;
using util::to_string;

std::vector<ProcessId> procs(std::size_t n) { return all_processes(n); }

TEST(Permission, DisjointnessChecked) {
  Permission p;
  p.read = {1, 2};
  p.write = {3};
  p.read_write = {4};
  EXPECT_TRUE(p.disjoint());
  p.write.insert(1);
  EXPECT_FALSE(p.disjoint());
}

TEST(Permission, SwmrShape) {
  const Permission p = Permission::swmr(2, procs(3));
  EXPECT_TRUE(p.can_write(2));
  EXPECT_TRUE(p.can_read(2));
  EXPECT_FALSE(p.can_write(1));
  EXPECT_TRUE(p.can_read(1));
  EXPECT_TRUE(p.can_read(3));
  EXPECT_TRUE(p.disjoint());
}

TEST(Permission, OpenAndReadOnly) {
  const Permission open = Permission::open(procs(2));
  EXPECT_TRUE(open.can_write(1));
  EXPECT_TRUE(open.can_write(2));
  const Permission ro = Permission::read_only(procs(2));
  EXPECT_TRUE(ro.can_read(1));
  EXPECT_FALSE(ro.can_write(1));
}

// Helper: run one write then read, return (status, value, finish time).
struct RunResult {
  Status wstatus = Status::kNak;
  ReadResult rresult;
  Time wdone = 0, rdone = 0;
};

RunResult write_then_read(ProcessId writer, ProcessId reader) {
  Executor exec;
  Memory memory(exec, 1);
  const RegionId r =
      memory.create_region({"slot/"}, Permission::swmr(writer, procs(3)));
  RunResult out;
  exec.spawn([](Executor& e, Memory& m, RegionId r, ProcessId w, ProcessId rd,
                RunResult& out) -> Task<void> {
    out.wstatus = co_await m.write(w, r, "slot/a", to_bytes("v1"));
    out.wdone = e.now();
    out.rresult = co_await m.read(rd, r, "slot/a");
    out.rdone = e.now();
  }(exec, memory, r, writer, reader, out));
  exec.run();
  return out;
}

TEST(Memory, WriteThenReadHappyPath) {
  const RunResult out = write_then_read(/*writer=*/1, /*reader=*/2);
  EXPECT_EQ(out.wstatus, Status::kAck);
  ASSERT_TRUE(out.rresult.ok());
  EXPECT_EQ(to_string(out.rresult.value), "v1");
}

TEST(Memory, EachOpCostsTwoDelays) {
  const RunResult out = write_then_read(1, 2);
  EXPECT_EQ(out.wdone, sim::kMemoryOpDelay);
  EXPECT_EQ(out.rdone, 2 * sim::kMemoryOpDelay);
}

TEST(Memory, WriteWithoutPermissionNaks) {
  const RunResult out = write_then_read(/*writer=*/2, /*reader=*/2);
  // Region is SWMR(2) here, so writing as 2 works; use a fresh scenario where
  // a non-writer tries.
  EXPECT_EQ(out.wstatus, Status::kAck);

  Executor exec;
  Memory memory(exec, 1);
  const RegionId r = memory.create_region({"slot/"}, Permission::swmr(1, procs(3)));
  Status status = Status::kAck;
  exec.spawn([](Memory& m, RegionId r, Status& status) -> Task<void> {
    status = co_await m.write(3, r, "slot/a", to_bytes("intruder"));
  }(memory, r, status));
  exec.run();
  EXPECT_EQ(status, Status::kNak);
  EXPECT_EQ(memory.naks(), 1u);
  EXPECT_EQ(memory.peek("slot/a"), std::nullopt);  // nothing written
}

TEST(Memory, ReadUnwrittenRegisterReturnsBottom) {
  Executor exec;
  Memory memory(exec, 1);
  const RegionId r = memory.create_region({"x/"}, Permission::open(procs(1)));
  ReadResult rr;
  exec.spawn([](Memory& m, RegionId r, ReadResult& rr) -> Task<void> {
    rr = co_await m.read(1, r, "x/fresh");
  }(memory, r, rr));
  exec.run();
  ASSERT_TRUE(rr.ok());
  EXPECT_TRUE(util::is_bottom(rr.value));
}

TEST(Memory, RegisterOutsideRegionNaks) {
  Executor exec;
  Memory memory(exec, 1);
  const RegionId r = memory.create_region({"a/"}, Permission::open(procs(1)));
  ReadResult rr;
  exec.spawn([](Memory& m, RegionId r, ReadResult& rr) -> Task<void> {
    rr = co_await m.read(1, r, "b/elsewhere");
  }(memory, r, rr));
  exec.run();
  EXPECT_FALSE(rr.ok());
}

TEST(Memory, UnknownRegionNaks) {
  Executor exec;
  Memory memory(exec, 1);
  Status st = Status::kAck;
  exec.spawn([](Memory& m, Status& st) -> Task<void> {
    st = co_await m.write(1, /*region=*/77, "r", to_bytes("x"));
  }(memory, st));
  exec.run();
  EXPECT_EQ(st, Status::kNak);
}

TEST(Memory, StaticPermissionsRefuseChange) {
  Executor exec;
  Memory memory(exec, 1);
  const RegionId r = memory.create_region({"s/"}, Permission::swmr(1, procs(2)),
                                          static_permissions());
  Status st = Status::kAck;
  exec.spawn([](Memory& m, RegionId r, Status& st) -> Task<void> {
    st = co_await m.change_permission(2, r, Permission::open(procs(2)));
  }(memory, r, st));
  exec.run();
  EXPECT_EQ(st, Status::kNak);
  EXPECT_EQ(memory.region_permission(r), Permission::swmr(1, procs(2)));
}

TEST(Memory, DynamicPermissionChangeApplies) {
  Executor exec;
  Memory memory(exec, 1);
  const RegionId r = memory.create_region({"s/"}, Permission::swmr(1, procs(2)),
                                          dynamic_permissions());
  Status st = Status::kNak;
  exec.spawn([](Memory& m, RegionId r, Status& st) -> Task<void> {
    st = co_await m.change_permission(2, r, Permission::swmr(2, procs(2)));
  }(memory, r, st));
  exec.run();
  EXPECT_EQ(st, Status::kAck);
  EXPECT_TRUE(memory.region_permission(r).can_write(2));
  EXPECT_FALSE(memory.region_permission(r).can_write(1));
  EXPECT_EQ(memory.permission_changes(), 1u);
}

TEST(Memory, LegalChangePredicateIsConsulted) {
  // Cheap Quorum's rule: the only legal change removes the leader's write
  // permission (§4.2).
  Executor exec;
  Memory memory(exec, 1);
  const auto all = procs(3);
  const auto only_revoke_leader = [](ProcessId, RegionId, const Permission&,
                                     const Permission& proposed) {
    return proposed.write.empty() && proposed.read_write.empty();
  };
  const RegionId r = memory.create_region({"L/"}, Permission::swmr(1, all),
                                          only_revoke_leader);

  Status grab = Status::kAck, revoke = Status::kNak;
  exec.spawn([](Memory& m, RegionId r, const std::vector<ProcessId>& all,
                Status& grab, Status& revoke) -> Task<void> {
    // Illegal: p2 tries to take write permission for itself.
    grab = co_await m.change_permission(2, r, Permission::swmr(2, all));
    // Legal: p2 revokes the leader's write permission.
    revoke = co_await m.change_permission(2, r, Permission::read_only(all));
  }(memory, r, all, grab, revoke));
  exec.run();
  EXPECT_EQ(grab, Status::kNak);
  EXPECT_EQ(revoke, Status::kAck);
  EXPECT_FALSE(memory.region_permission(r).can_write(1));
}

TEST(Memory, RevocationInFlightBeatsWrite) {
  // A write issued before, but arriving after, a permission revocation must
  // nak — the "uncontended instantaneous guarantee" race (§1, §4.2).
  Executor exec;
  Memory memory(exec, 1);
  const auto all = procs(2);
  const RegionId r = memory.create_region({"L/"}, Permission::swmr(1, all),
                                          dynamic_permissions());
  Status wstatus = Status::kAck;

  // p2's revocation is issued at t=0, taking effect at t=1.
  exec.spawn([](Memory& m, RegionId r, const std::vector<ProcessId>& all) -> Task<void> {
    (void)co_await m.change_permission(2, r, Permission::read_only(all));
  }(memory, r, all));
  // p1's write is also issued at t=0, arriving at t=1 — after the
  // revocation's effect (FIFO tie-break puts the earlier-scheduled effect
  // first).
  exec.spawn([](Memory& m, RegionId r, Status& st) -> Task<void> {
    st = co_await m.write(1, r, "L/value", to_bytes("v"));
  }(memory, r, wstatus));
  exec.run();
  EXPECT_EQ(wstatus, Status::kNak);
  EXPECT_EQ(memory.peek("L/value"), std::nullopt);
}

TEST(Memory, CrashedMemoryHangsOperations) {
  Executor exec;
  Memory memory(exec, 1);
  const RegionId r = memory.create_region({"s/"}, Permission::open(procs(1)));
  memory.crash();
  bool completed = false;
  exec.spawn([](Memory& m, RegionId r, bool& completed) -> Task<void> {
    (void)co_await m.write(1, r, "s/a", to_bytes("x"));
    completed = true;
  }(memory, r, completed));
  exec.run();
  EXPECT_FALSE(completed);  // hangs forever (§3), never naks
}

TEST(Memory, CrashBetweenEffectAndResponseAppliesButHangs) {
  Executor exec;
  Memory memory(exec, 1);
  const RegionId r = memory.create_region({"s/"}, Permission::open(procs(1)));
  bool completed = false;
  exec.spawn([](Memory& m, RegionId r, bool& completed) -> Task<void> {
    (void)co_await m.write(1, r, "s/a", to_bytes("persisted"));
    completed = true;
  }(memory, r, completed));
  // Write effect lands at t=1; the crash is scheduled at t=2 and — having
  // been registered before the coroutine ran — fires ahead of the response
  // event at the same instant, so the response is swallowed.
  exec.call_at(2, [&] { memory.crash(); });
  exec.run();
  EXPECT_FALSE(completed);
  ASSERT_TRUE(memory.peek("s/a").has_value());
  EXPECT_EQ(to_string(*memory.peek("s/a")), "persisted");
}

TEST(Memory, OverlappingRegionsGrantIndependentAccess) {
  // §3: "a register may belong to several regions, and a process may have
  // access to the register on one region but not another".
  Executor exec;
  Memory memory(exec, 1);
  const auto all = procs(2);
  const RegionId ro = memory.create_region({"arr/"}, Permission::read_only(all));
  Permission writer_only;
  writer_only.read_write = {1};
  const RegionId rw1 = memory.create_region({"arr/row1/"}, writer_only);

  Status via_ro = Status::kAck, via_rw = Status::kNak;
  ReadResult read_back;
  exec.spawn([](Memory& m, RegionId ro, RegionId rw1, Status& via_ro,
                Status& via_rw, ReadResult& rb) -> Task<void> {
    via_ro = co_await m.write(1, ro, "arr/row1/c3", to_bytes("x"));   // denied
    via_rw = co_await m.write(1, rw1, "arr/row1/c3", to_bytes("x"));  // allowed
    rb = co_await m.read(2, ro, "arr/row1/c3");                       // read via other region
  }(memory, ro, rw1, via_ro, via_rw, read_back));
  exec.run();
  EXPECT_EQ(via_ro, Status::kNak);
  EXPECT_EQ(via_rw, Status::kAck);
  ASSERT_TRUE(read_back.ok());
  EXPECT_EQ(to_string(read_back.value), "x");
}

TEST(Memory, ExactRegisterRegions) {
  Executor exec;
  Memory memory(exec, 1);
  const RegionId r = memory.create_region({}, Permission::open(procs(1)),
                                          static_permissions(), {"only_this"});
  EXPECT_TRUE(memory.region_contains(r, "only_this"));
  EXPECT_FALSE(memory.region_contains(r, "only_this_not"));
  EXPECT_FALSE(memory.region_contains(r, "other"));
}

TEST(Memory, NonDisjointRegionRejected) {
  Executor exec;
  Memory memory(exec, 1);
  Permission bad;
  bad.read = {1};
  bad.read_write = {1};
  EXPECT_THROW(memory.create_region({"x/"}, bad), std::invalid_argument);
}

TEST(Memory, CountersTrackOperations) {
  Executor exec;
  Memory memory(exec, 1);
  const RegionId r = memory.create_region({"s/"}, Permission::open(procs(1)));
  exec.spawn([](Memory& m, RegionId r) -> Task<void> {
    (void)co_await m.write(1, r, "s/a", to_bytes("1"));
    (void)co_await m.read(1, r, "s/a");
    (void)co_await m.read(1, r, "s/a");
  }(memory, r));
  exec.run();
  EXPECT_EQ(memory.writes(), 1u);
  EXPECT_EQ(memory.reads(), 2u);
}

}  // namespace
}  // namespace mnm::mem
