// Dynamic reconfiguration (src/reconfig/) — unit and cluster invariants.
//
// Three layers under test, bottom up:
//
//  * the versioned routing model — kv::ShardTable, apply_change, the strict
//    codecs — including the routing-preservation law behind bucket doubling;
//  * the migration state machines in isolation — reconfig::TableMachine's
//    CAS apply and fail-closed snapshots, kv::StateMachine's
//    SEAL → export → INSTALL → PURGE sequence, and the straddling-retry
//    exactly-once case (applied at the source pre-seal, retried at the
//    destination post-install, suppressed by the merged session);
//  * whole-cluster runs where the harness doubles the shard count (1→2 and
//    4→8) *during* a zipfian workload, merges groups, crashes the source
//    leader mid-drain, and rejoins a wiped process into a post-split world —
//    in every case Σ per-shard effective applies must equal completed client
//    ops, and all correct replicas (data groups and the config group alike)
//    must converge to identical fingerprints.

#include <gtest/gtest.h>

#include <numeric>
#include <string>

#include "src/harness/cluster.hpp"
#include "src/kv/range.hpp"
#include "src/kv/shard.hpp"
#include "src/kv/state_machine.hpp"
#include "src/reconfig/change.hpp"
#include "src/reconfig/table_machine.hpp"

namespace mnm::harness {
namespace {

using kv::Command;
using kv::Op;
using kv::RangeSnapshot;
using kv::RangeSpec;
using kv::Reply;
using kv::ShardMap;
using kv::ShardTable;
using kv::Status;
using reconfig::ChangeKind;
using reconfig::ConfigChange;
using reconfig::decode_config_change;
using reconfig::encode_config_change;

// ---------------------------------------------------------------------------
// Routing model: ShardTable / apply_change.
// ---------------------------------------------------------------------------

Bytes key_bytes(std::size_t i) {
  return util::to_bytes("key-" + std::to_string(i));
}

/// First "key-<i>" whose hash lands in bucket `want` of a `buckets`-sized
/// table.
Bytes key_in_bucket(std::size_t buckets, std::size_t want) {
  for (std::size_t i = 0;; ++i) {
    const Bytes k = key_bytes(i);
    if (ShardMap::key_hash(k) % buckets == want) return k;
  }
}

TEST(ShardTableUnit, InitialRoutesExactlyLikeShardMap) {
  for (const std::size_t shards : {1u, 2u, 3u, 4u, 8u}) {
    const ShardTable t = ShardTable::initial(shards);
    const ShardMap map(shards);
    ASSERT_EQ(t.buckets.size(), shards);
    for (std::size_t i = 0; i < 64; ++i) {
      const Bytes k = key_bytes(i);
      EXPECT_EQ(kv::shard_of(t, k), map.shard_of(k))
          << "key-" << i << " with " << shards << " shards";
    }
  }
}

TEST(ShardTableUnit, SingleBucketSplitDoublesAndPreservesRouting) {
  const ShardTable t0 = ShardTable::initial(1);
  const ConfigChange c{ChangeKind::kSplit, 0, 0, 1};
  const std::optional<ShardTable> t1 = apply_change(t0, c);
  ASSERT_TRUE(t1.has_value());
  EXPECT_EQ(t1->epoch, 1u);
  EXPECT_EQ(t1->groups, 2u);  // dst == groups activated a new group
  ASSERT_EQ(t1->buckets.size(), 2u);
  EXPECT_EQ(t1->buckets[0], 0u);
  EXPECT_EQ(t1->buckets[1], 1u);
  // The doubling law: a key moved iff it gained the new hash bit. Keys in
  // bucket 0 of the doubled table stay home.
  for (std::size_t i = 0; i < 64; ++i) {
    const Bytes k = key_bytes(i);
    const std::size_t owner = kv::shard_of(*t1, k);
    EXPECT_EQ(owner, ShardMap::key_hash(k) % 2);
  }
}

TEST(ShardTableUnit, SplitOfMultiBucketGroupMovesUpperHalf) {
  // 4 groups, 4 buckets; split g1 into brand-new g4. g1 owns one bucket, so
  // the array doubles to 8 and exactly one of g1's two doubled buckets
  // (the upper) moves.
  const ShardTable t0 = ShardTable::initial(4);
  const std::optional<ShardTable> t1 =
      apply_change(t0, ConfigChange{ChangeKind::kSplit, 0, 1, 4});
  ASSERT_TRUE(t1.has_value());
  EXPECT_EQ(t1->groups, 5u);
  ASSERT_EQ(t1->buckets.size(), 8u);
  EXPECT_EQ(t1->buckets[1], 1u);  // lower half stays
  EXPECT_EQ(t1->buckets[5], 4u);  // upper half (one more hash bit) moves
  // Every other group's routing is untouched by the doubling.
  for (const std::size_t b : {0u, 2u, 3u, 4u, 6u, 7u}) {
    EXPECT_EQ(t1->buckets[b], t0.buckets[b % 4]) << "bucket " << b;
  }
}

TEST(ShardTableUnit, MergeMovesEveryBucketAndEmptiesSource) {
  const ShardTable t0 = ShardTable::initial(2);
  const std::optional<ShardTable> t1 =
      apply_change(t0, ConfigChange{ChangeKind::kMerge, 0, 1, 0});
  ASSERT_TRUE(t1.has_value());
  EXPECT_EQ(t1->epoch, 1u);
  EXPECT_EQ(t1->groups, 2u);  // the group id survives, owning nothing
  for (const std::uint32_t b : t1->buckets) EXPECT_EQ(b, 0u);
  // Splitting the now-empty source must reject: nothing to split.
  EXPECT_FALSE(
      apply_change(*t1, ConfigChange{ChangeKind::kSplit, 1, 1, 0}).has_value());
  // Merging it again must also reject, deterministically.
  EXPECT_FALSE(
      apply_change(*t1, ConfigChange{ChangeKind::kMerge, 1, 1, 0}).has_value());
}

TEST(ShardTableUnit, StaleAndInvalidChangesRejectDeterministically) {
  const ShardTable t = ShardTable::initial(2);
  // CAS miss: base_epoch must match exactly — the duplicate-re-propose rule.
  EXPECT_FALSE(
      apply_change(t, ConfigChange{ChangeKind::kSplit, 1, 0, 1}).has_value());
  // src == dst.
  EXPECT_FALSE(
      apply_change(t, ConfigChange{ChangeKind::kSplit, 0, 0, 0}).has_value());
  // Unknown src group.
  EXPECT_FALSE(
      apply_change(t, ConfigChange{ChangeKind::kSplit, 0, 7, 1}).has_value());
  // dst beyond the next id (no gaps in group activation).
  EXPECT_FALSE(
      apply_change(t, ConfigChange{ChangeKind::kSplit, 0, 0, 3}).has_value());
  // Merge into an unknown destination.
  EXPECT_FALSE(
      apply_change(t, ConfigChange{ChangeKind::kMerge, 0, 1, 2}).has_value());
  // Bucket cap: a single-bucket source at the cap cannot double.
  ShardTable at_cap;
  at_cap.groups = 2;
  at_cap.buckets.assign(kv::kMaxTableBuckets, 0);
  at_cap.buckets[1] = 1;  // group 1 owns exactly one bucket
  EXPECT_FALSE(
      apply_change(at_cap, ConfigChange{ChangeKind::kSplit, 0, 1, 0})
          .has_value());
}

TEST(ShardTableUnit, CodecsRoundTripAndRejectMalformed) {
  const ShardTable t =
      *apply_change(ShardTable::initial(2), ConfigChange{ChangeKind::kSplit,
                                                         0, 0, 2});
  const Bytes tb = kv::encode_shard_table(t);
  ASSERT_TRUE(kv::decode_shard_table(tb).has_value());
  EXPECT_EQ(*kv::decode_shard_table(tb), t);
  Bytes trailing = tb;
  trailing.push_back(0);
  EXPECT_FALSE(kv::decode_shard_table(trailing).has_value());
  EXPECT_FALSE(
      kv::decode_shard_table(util::ByteView(tb.data(), tb.size() - 1))
          .has_value());

  const ConfigChange c{ChangeKind::kMerge, 7, 3, 1};
  const Bytes cb = encode_config_change(c);
  ASSERT_TRUE(decode_config_change(cb).has_value());
  EXPECT_EQ(*decode_config_change(cb), c);
  Bytes bad_kind = cb;
  bad_kind[0] = 9;
  EXPECT_FALSE(decode_config_change(bad_kind).has_value());

  RangeSpec spec;
  spec.epoch = 3;
  spec.table_buckets = 4;
  spec.buckets = {1, 3};
  const Bytes sb = kv::encode_range_spec(spec);
  ASSERT_TRUE(kv::decode_range_spec(sb).has_value());
  EXPECT_EQ(*kv::decode_range_spec(sb), spec);

  RangeSnapshot snap;
  snap.spec = spec;
  snap.pairs.emplace_back(key_bytes(1), util::to_bytes("v1"));
  snap.sessions.push_back({/*client=*/4, /*last_seq=*/9, Reply{}});
  const Bytes nb = kv::encode_range_snapshot(snap);
  ASSERT_TRUE(kv::decode_range_snapshot(nb).has_value());
  EXPECT_EQ(*kv::decode_range_snapshot(nb), snap);
  // Any flipped byte must fail the embedded digest, closed.
  Bytes forged = nb;
  forged[forged.size() / 2] ^= 0x40;
  EXPECT_FALSE(kv::decode_range_snapshot(forged).has_value());
}

// ---------------------------------------------------------------------------
// TableMachine: CAS apply, fail-closed snapshots.
// ---------------------------------------------------------------------------

TEST(TableMachineUnit, CasApplyCountsAndSinksOncePerEpoch) {
  reconfig::TableMachine m(ShardTable::initial(1));
  std::size_t sunk = 0;
  m.set_table_sink([&](const ShardTable& t, const ConfigChange&) {
    ++sunk;
    EXPECT_EQ(t.epoch, 1u);
  });
  const Bytes change =
      encode_config_change(ConfigChange{ChangeKind::kSplit, 0, 0, 1});
  m.apply(0, change);
  EXPECT_EQ(m.changes_applied(), 1u);
  EXPECT_EQ(m.table().epoch, 1u);
  EXPECT_EQ(sunk, 1u);
  // The re-proposed duplicate (same bytes, bumped epoch) rejects — no sink.
  m.apply(1, change);
  EXPECT_EQ(m.changes_applied(), 1u);
  EXPECT_EQ(m.changes_rejected(), 1u);
  EXPECT_EQ(sunk, 1u);
  // Byzantine garbage in a won slot no-ops deterministically.
  m.apply(2, util::to_bytes("not a change"));
  EXPECT_EQ(m.malformed(), 1u);
}

TEST(TableMachineUnit, SnapshotRestoresExactlyOrFailsClosed) {
  reconfig::TableMachine a(ShardTable::initial(2));
  a.apply(0, encode_config_change(ConfigChange{ChangeKind::kSplit, 0, 0, 2}));
  a.apply(1, util::to_bytes("junk"));
  const Bytes snap = a.snapshot();

  reconfig::TableMachine b(ShardTable::initial(2));
  ASSERT_TRUE(b.restore(snap));
  EXPECT_EQ(b.state_hash(), a.state_hash());
  EXPECT_EQ(b.table(), a.table());
  EXPECT_EQ(b.malformed(), 1u);

  reconfig::TableMachine c(ShardTable::initial(2));
  Bytes forged = snap;
  forged[forged.size() - 3] ^= 0x01;  // inside the trailing digest
  EXPECT_FALSE(c.restore(forged));
  EXPECT_EQ(c.table().epoch, 0u) << "failed restore must leave state alone";
}

// ---------------------------------------------------------------------------
// StateMachine: SEAL → export → INSTALL → PURGE, and the straddling retry.
// ---------------------------------------------------------------------------

Bytes client_put(kv::ClientId client, std::uint64_t seq, Bytes key) {
  Command c;
  c.op = Op::kPut;
  c.client = client;
  c.seq = seq;
  c.key = std::move(key);
  std::string value = "v";
  value += std::to_string(seq);
  c.value = util::to_bytes(value);
  return encode_command(c);
}

Bytes admin_cmd(Op op, std::uint64_t seq, Bytes payload) {
  Command c;
  c.op = op;
  c.client = 99;  // the Migrator's admin session
  c.seq = seq;
  c.value = std::move(payload);
  return encode_command(c);
}

TEST(StateMachineUnit, SealExportInstallPurgeMovesRangeExactlyOnce) {
  const ShardTable initial = ShardTable::initial(1);
  kv::StateMachine src, dst;
  src.configure_partition(0, initial);
  dst.configure_partition(1, initial);

  Reply last;
  std::uint64_t last_seq_seen = 0;
  const auto capture = [&](kv::ClientId, std::uint64_t seq, const Reply& r) {
    last = r;
    last_seq_seen = seq;
  };
  src.set_reply_sink(capture);
  dst.set_reply_sink(capture);

  // Post-split geometry: 2 buckets, bucket 1 moves to group 1.
  const Bytes moving = key_in_bucket(2, 1);
  const Bytes staying = key_in_bucket(2, 0);
  src.apply(0, client_put(1, 1, moving));    // the op the retry will straddle
  src.apply(1, client_put(2, 1, staying));
  EXPECT_EQ(src.ops_applied(), 2u);

  RangeSpec spec;
  spec.epoch = 1;
  spec.table_buckets = 2;
  spec.buckets = {1};
  const Bytes spec_bytes = kv::encode_range_spec(spec);

  // Before the seal the source must refuse to drain (in-flight pre-seal ops
  // could still land).
  EXPECT_TRUE(src.export_range(spec_bytes).empty());

  src.apply(2, admin_cmd(Op::kSeal, 1, spec_bytes));
  EXPECT_EQ(src.admin_applied(), 1u);
  EXPECT_EQ(src.config_epoch(), 1u);
  EXPECT_EQ(src.owned_buckets(), 1u);

  // A client op on the sealed bucket bounces — and the session is NOT
  // advanced, so the very same seq can still apply at the destination.
  src.apply(3, client_put(3, 1, moving));
  EXPECT_EQ(src.bounces(), 1u);
  EXPECT_EQ(last.status, Status::kWrongEpoch);
  EXPECT_EQ(src.last_seq(3), 0u);
  EXPECT_EQ(src.ops_applied(), 2u);

  const Bytes drained = src.export_range(spec_bytes);
  ASSERT_FALSE(drained.empty());
  const std::optional<RangeSnapshot> snap = kv::decode_range_snapshot(drained);
  ASSERT_TRUE(snap.has_value());
  ASSERT_EQ(snap->pairs.size(), 1u);
  EXPECT_EQ(snap->pairs[0].first, moving);

  dst.apply(0, admin_cmd(Op::kInstall, 1, drained));
  EXPECT_EQ(dst.admin_applied(), 1u);
  EXPECT_EQ(dst.keys_imported(), 1u);
  EXPECT_EQ(dst.owned_buckets(), 1u);

  // THE straddle: client 1's op applied at the source pre-seal; the retry
  // of the same (client, seq) arrives at the destination post-install. The
  // merged session must suppress it and re-deliver the original reply.
  dst.apply(1, client_put(1, 1, moving));
  EXPECT_EQ(dst.duplicates_suppressed(), 1u);
  EXPECT_EQ(dst.ops_applied(), 0u);
  EXPECT_EQ(last.status, Status::kOk);
  EXPECT_EQ(last_seq_seen, 1u);

  // The bounced client's retry applies FRESH here — its session was never
  // advanced at the source.
  dst.apply(2, client_put(3, 1, moving));
  EXPECT_EQ(dst.ops_applied(), 1u);
  EXPECT_EQ(dst.duplicates_suppressed(), 1u);

  src.apply(4, admin_cmd(Op::kPurge, 2, spec_bytes));
  EXPECT_EQ(src.keys_purged(), 1u);
  EXPECT_EQ(src.store().count(moving), 0u);
  EXPECT_EQ(src.store().count(staying), 1u);

  // Stale admin ops (an old epoch's seal re-delivered) reject, counted.
  RangeSpec stale = spec;
  stale.epoch = 0;
  src.apply(5, admin_cmd(Op::kSeal, 3, kv::encode_range_spec(stale)));
  EXPECT_EQ(src.admin_rejected(), 1u);
}

TEST(StateMachineUnit, UnpartitionedMachineRejectsAdminOps) {
  kv::StateMachine m;
  RangeSpec spec;
  spec.epoch = 1;
  spec.table_buckets = 2;
  spec.buckets = {1};
  m.apply(0, admin_cmd(Op::kSeal, 1, kv::encode_range_spec(spec)));
  EXPECT_EQ(m.admin_rejected(), 1u);
  EXPECT_EQ(m.admin_applied(), 1u);  // the session advanced; the op rejected
  EXPECT_TRUE(m.export_range(kv::encode_range_spec(spec)).empty());
}

// ---------------------------------------------------------------------------
// Whole-cluster reconfiguration runs.
// ---------------------------------------------------------------------------

ClusterConfig reconfig_config(std::size_t shards, std::size_t clients,
                              std::size_t ops) {
  ClusterConfig c;
  c.algo = Algorithm::kFastPaxos;
  c.n = 3;
  c.m = 0;
  c.kv.enabled = true;
  c.kv.shards = shards;
  c.kv.clients = clients;
  c.kv.ops_per_client = ops;
  c.kv.dist = kv::KeyDist::kZipfian;
  return c;
}

std::uint64_t total_shard_ops(const RunReport& r) {
  return std::accumulate(r.kv_shard_ops.begin(), r.kv_shard_ops.end(),
                         std::uint64_t{0});
}

TEST(ReconfigCluster, SplitOneToTwoDuringZipfianWorkload) {
  ClusterConfig c = reconfig_config(/*shards=*/1, /*clients=*/8, /*ops=*/24);
  c.kv.reconfig.push_back({/*at=*/40, ChangeKind::kSplit, 0, 1});
  const RunReport r = run_cluster(c);
  EXPECT_TRUE(r.all_ok()) << r.summary();
  EXPECT_EQ(r.kv_ops, 8u * 24u) << "every client op must complete";
  // THE acceptance invariant: effective applies across all groups — old and
  // new — equal completed client ops, across the epoch flip.
  EXPECT_EQ(total_shard_ops(r), r.kv_ops) << r.summary();
  EXPECT_EQ(r.reconfig_epoch, 1u) << r.summary();
  EXPECT_EQ(r.reconfig_migrations, 1u);
  EXPECT_GT(r.reconfig_keys_moved, 0u) << "the split range was not empty";
  EXPECT_GT(r.reconfig_bounces, 0u)
      << "ops in flight at the seal must bounce with WrongEpoch and "
         "re-route: "
      << r.summary();
  ASSERT_EQ(r.kv_shard_ops.size(), 2u);
  EXPECT_GT(r.kv_shard_ops[1], 0u)
      << "the activated group must take post-split traffic: " << r.summary();
  ASSERT_EQ(r.reconfig_flip_times.size(), 1u);
  EXPECT_GE(r.reconfig_flip_times[0], sim::Time{40});
}

TEST(ReconfigCluster, DoubleFourToEightDuringZipfianWorkload) {
  ClusterConfig c = reconfig_config(/*shards=*/4, /*clients=*/8, /*ops=*/24);
  for (std::uint32_t g = 0; g < 4; ++g) {
    c.kv.reconfig.push_back(
        {/*at=*/sim::Time{40 + 60 * g}, ChangeKind::kSplit, g, 4 + g});
  }
  const RunReport r = run_cluster(c);
  EXPECT_TRUE(r.all_ok()) << r.summary();
  EXPECT_EQ(r.kv_ops, 8u * 24u);
  EXPECT_EQ(total_shard_ops(r), r.kv_ops) << r.summary();
  EXPECT_EQ(r.reconfig_epoch, 4u) << r.summary();
  EXPECT_EQ(r.reconfig_migrations, 4u);
  ASSERT_EQ(r.kv_shard_ops.size(), 8u);
  EXPECT_EQ(r.reconfig_flip_times.size(), 4u);
}

TEST(ReconfigCluster, MergeDrainsSourceGroupIntoDestination) {
  ClusterConfig c = reconfig_config(/*shards=*/2, /*clients=*/6, /*ops=*/20);
  c.kv.mix = kv::Mix::kA;  // writes on both groups before the merge
  c.kv.reconfig.push_back({/*at=*/60, ChangeKind::kMerge, 1, 0});
  const RunReport r = run_cluster(c);
  EXPECT_TRUE(r.all_ok()) << r.summary();
  EXPECT_EQ(r.kv_ops, 6u * 20u);
  EXPECT_EQ(total_shard_ops(r), r.kv_ops) << r.summary();
  EXPECT_EQ(r.reconfig_epoch, 1u);
  EXPECT_EQ(r.reconfig_migrations, 1u);
  EXPECT_GT(r.reconfig_keys_moved, 0u)
      << "group 1 held pairs before the merge: " << r.summary();
}

TEST(ReconfigCluster, SourceLeaderCrashMidMigrationStaysExactlyOnce) {
  // p1 (the initial leader of every group, and the drain source) dies just
  // after the split is proposed: the seal may be mid-flight, the drain hits
  // a halted log and must re-target the new leader Ω elects. Clients whose
  // ops died with p1's queue retry; across the crash AND the epoch flip the
  // exactly-once sum must hold.
  ClusterConfig c = reconfig_config(/*shards=*/1, /*clients=*/8, /*ops=*/24);
  c.kv.retry_timeout = 24;
  c.kv.reconfig.push_back({/*at=*/40, ChangeKind::kSplit, 0, 1});
  c.faults.process_crashes[1] = 46;
  const RunReport r = run_cluster(c);
  EXPECT_TRUE(r.agreement) << r.summary();
  EXPECT_TRUE(r.termination) << r.summary();
  EXPECT_TRUE(r.validity) << r.summary();
  EXPECT_EQ(r.kv_ops, 8u * 24u) << "every client op must complete";
  EXPECT_EQ(total_shard_ops(r), r.kv_ops) << r.summary();
  EXPECT_EQ(r.reconfig_epoch, 1u) << r.summary();
  EXPECT_EQ(r.reconfig_migrations, 1u) << r.summary();
}

TEST(ReconfigCluster, RejoinerLandsInPostSplitWorld) {
  // p3 crashes before the split and rejoins wiped long after the migration
  // completed: its fresh machines start from the *initial* table and must be
  // carried to the post-split world by snapshot install or replayed admin
  // ops — on the data groups and on the config group alike. The harness
  // agreement check (which includes rejoined processes and the config
  // group's state hash) is the oracle.
  ClusterConfig c = reconfig_config(/*shards=*/1, /*clients=*/6, /*ops=*/16);
  c.kv.retry_timeout = 24;
  c.kv.snapshot_interval = 4;
  c.kv.reconfig.push_back({/*at=*/40, ChangeKind::kSplit, 0, 1});
  c.faults.process_crashes[3] = 20;
  c.faults.process_rejoins[3] = 900;
  const RunReport r = run_cluster(c);
  EXPECT_TRUE(r.all_ok()) << r.summary();
  EXPECT_EQ(r.kv_ops, 6u * 16u);
  EXPECT_EQ(total_shard_ops(r), r.kv_ops) << r.summary();
  EXPECT_EQ(r.reconfig_epoch, 1u) << r.summary();
  EXPECT_EQ(r.processes[2].rejoined_at, 900u);
  // Fingerprint rows (per-group slots+hashes, config group included) must
  // agree across all three processes, the rejoiner included.
  EXPECT_EQ(r.processes[0].decision, r.processes[1].decision) << r.summary();
  EXPECT_EQ(r.processes[1].decision, r.processes[2].decision) << r.summary();
}

TEST(ReconfigCluster, FastRobustShardsSplitUnderLoad) {
  // The config group and both data groups ride FastRobust (all-propose
  // fan-out, Byzantine-tolerant): the Migrator submits ConfigChanges to
  // every replica and the CAS rejects the duplicate wins.
  ClusterConfig c;
  c.algo = Algorithm::kFastRobust;
  c.n = 3;
  c.m = 3;
  c.kv.enabled = true;
  c.kv.shards = 1;
  c.kv.clients = 2;
  c.kv.ops_per_client = 6;
  c.kv.reconfig.push_back({/*at=*/120, ChangeKind::kSplit, 0, 1});
  const RunReport r = run_cluster(c);
  EXPECT_TRUE(r.all_ok()) << r.summary();
  EXPECT_EQ(r.kv_ops, 2u * 6u);
  EXPECT_EQ(total_shard_ops(r), r.kv_ops) << r.summary();
  EXPECT_EQ(r.reconfig_epoch, 1u) << r.summary();
}

TEST(ReconfigCluster, StaticRunsReportNoReconfigState) {
  // An empty plan is the pre-reconfig world, byte-for-byte: no epochs, no
  // proposals, no flips in the report.
  ClusterConfig c = reconfig_config(/*shards=*/2, /*clients=*/4, /*ops=*/8);
  c.kv.reconfig.clear();
  const RunReport r = run_cluster(c);
  EXPECT_TRUE(r.all_ok()) << r.summary();
  EXPECT_EQ(r.reconfig_epoch, 0u);
  EXPECT_EQ(r.reconfig_proposals, 0u);
  EXPECT_EQ(r.reconfig_bounces, 0u);
  EXPECT_TRUE(r.reconfig_flip_times.empty());
}

}  // namespace
}  // namespace mnm::harness
