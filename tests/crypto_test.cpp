// Tests for SHA-256 (FIPS 180-4 vectors), HMAC (RFC 4231 vectors) and the
// identity-bound signature scheme.

#include <gtest/gtest.h>

#include "src/crypto/sha256.hpp"
#include "src/crypto/signature.hpp"
#include "src/util/bytes.hpp"

namespace mnm::crypto {
namespace {

using util::Bytes;
using util::hex_decode;
using util::hex_encode;
using util::to_bytes;

std::string sha256_hex(const std::string& msg) {
  const Digest d = sha256(to_bytes(msg));
  return hex_encode(Bytes(d.begin(), d.end()));
}

TEST(Sha256, EmptyString) {
  EXPECT_EQ(sha256_hex(""),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256, Abc) {
  EXPECT_EQ(sha256_hex("abc"),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, TwoBlockMessage) {
  EXPECT_EQ(
      sha256_hex("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"),
      "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, MillionAs) {
  Sha256 h;
  const Bytes chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.update(chunk);
  const Digest d = h.finish();
  EXPECT_EQ(hex_encode(Bytes(d.begin(), d.end())),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, ExactBlockBoundary) {
  // 64-byte message: padding must spill into a second block.
  const std::string msg(64, 'x');
  Sha256 h;
  h.update(to_bytes(msg));
  const Digest once = h.finish();

  // Same message fed byte by byte must agree.
  Sha256 h2;
  for (char c : msg) {
    const std::uint8_t b = static_cast<std::uint8_t>(c);
    h2.update(&b, 1);
  }
  EXPECT_EQ(once, h2.finish());
}

TEST(Sha256, ResetAllowsReuse) {
  Sha256 h;
  h.update(to_bytes("garbage"));
  (void)h.finish();  // finish() resets
  h.update(to_bytes("abc"));
  const Digest d = h.finish();
  EXPECT_EQ(hex_encode(Bytes(d.begin(), d.end())),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Hmac, Rfc4231Case1) {
  const Bytes key(20, 0x0b);
  const Digest d = hmac_sha256(key, to_bytes("Hi There"));
  EXPECT_EQ(hex_encode(Bytes(d.begin(), d.end())),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

TEST(Hmac, Rfc4231Case2) {
  const Digest d = hmac_sha256(to_bytes("Jefe"),
                               to_bytes("what do ya want for nothing?"));
  EXPECT_EQ(hex_encode(Bytes(d.begin(), d.end())),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

TEST(Hmac, Rfc4231Case3) {
  const Bytes key(20, 0xaa);
  const Bytes msg(50, 0xdd);
  const Digest d = hmac_sha256(key, msg);
  EXPECT_EQ(hex_encode(Bytes(d.begin(), d.end())),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe");
}

TEST(Hmac, LongKeyIsHashedFirst) {
  // RFC 4231 case 6: 131-byte key.
  const Bytes key(131, 0xaa);
  const Digest d = hmac_sha256(
      key, to_bytes("Test Using Larger Than Block-Size Key - Hash Key First"));
  EXPECT_EQ(hex_encode(Bytes(d.begin(), d.end())),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

TEST(Signatures, SignAndVerify) {
  KeyStore ks(1);
  Signer alice = ks.register_process(1);
  const Bytes msg = to_bytes("propose v=7");
  const Signature sig = alice.sign(msg);
  EXPECT_EQ(sig.signer, 1u);
  EXPECT_TRUE(ks.valid(msg, sig));
  EXPECT_TRUE(ks.valid_from(1, msg, sig));
}

TEST(Signatures, TamperedMessageFailsVerification) {
  KeyStore ks(1);
  Signer alice = ks.register_process(1);
  const Signature sig = alice.sign(to_bytes("value A"));
  EXPECT_FALSE(ks.valid(to_bytes("value B"), sig));
}

TEST(Signatures, CannotClaimAnotherSignersIdentity) {
  // A Byzantine process relabeling its own signature as someone else's must
  // fail verification — the unforgeability the paper's model assumes.
  KeyStore ks(1);
  Signer alice = ks.register_process(1);
  (void)ks.register_process(2);
  const Bytes msg = to_bytes("equivocation attempt");
  Signature forged = alice.sign(msg);
  forged.signer = 2;
  EXPECT_FALSE(ks.valid(msg, forged));
  EXPECT_FALSE(ks.valid_from(2, msg, forged));
}

TEST(Signatures, TamperedMacFails) {
  KeyStore ks(1);
  Signer alice = ks.register_process(1);
  const Bytes msg = to_bytes("m");
  Signature sig = alice.sign(msg);
  sig.mac[0] ^= 0x01;
  EXPECT_FALSE(ks.valid(msg, sig));
}

TEST(Signatures, UnknownSignerFails) {
  KeyStore ks(1);
  Signer alice = ks.register_process(1);
  Signature sig = alice.sign(to_bytes("m"));
  sig.signer = 99;
  EXPECT_FALSE(ks.valid(to_bytes("m"), sig));
}

TEST(Signatures, DuplicateRegistrationThrows) {
  KeyStore ks(1);
  (void)ks.register_process(1);
  EXPECT_THROW((void)ks.register_process(1), std::logic_error);
}

TEST(Signatures, CountersTrackUsage) {
  KeyStore ks(1);
  Signer alice = ks.register_process(1);
  ks.reset_counters();
  const Signature sig = alice.sign(to_bytes("x"));
  (void)ks.valid(to_bytes("x"), sig);
  (void)ks.valid(to_bytes("x"), sig);
  EXPECT_EQ(ks.signatures_made(), 1u);
  EXPECT_EQ(ks.verifications_made(), 2u);
}

TEST(Signatures, DifferentSeedsGiveDifferentKeys) {
  KeyStore ks1(1), ks2(2);
  Signer a1 = ks1.register_process(1);
  Signer a2 = ks2.register_process(1);
  const Bytes msg = to_bytes("m");
  // A signature from one universe must not verify in another.
  EXPECT_FALSE(ks2.valid(msg, a1.sign(msg)));
  EXPECT_FALSE(ks1.valid(msg, a2.sign(msg)));
}

}  // namespace
}  // namespace mnm::crypto
