// End-to-end tests: every algorithm through the harness, common case first,
// then the paper's headline claims as assertions:
//   - delay counts (2-deciding / 4-delay baselines),
//   - resilience bounds (n ≥ fP+1 / 2fP+1, m ≥ 2fM+1, combined majority),
//   - Byzantine behaviour (silent / equivocating / garbage),
//   - partial synchrony (decisions after GST).

#include <gtest/gtest.h>

#include "src/harness/cluster.hpp"
#include "src/sim/time.hpp"

namespace mnm::harness {
namespace {

ClusterConfig base(Algorithm algo, std::size_t n, std::size_t m) {
  ClusterConfig c;
  c.algo = algo;
  c.n = n;
  c.m = m;
  return c;
}

// ---------- Common case: correctness + the paper's delay numbers ----------

TEST(CommonCase, PaxosDecidesInFourDelays) {
  const RunReport r = run_cluster(base(Algorithm::kPaxos, 3, 0));
  EXPECT_TRUE(r.all_ok()) << r.summary();
  EXPECT_EQ(r.first_decision_delay, 4u) << r.summary();
}

TEST(CommonCase, FastPaxosDecidesInTwoDelays) {
  const RunReport r = run_cluster(base(Algorithm::kFastPaxos, 3, 0));
  EXPECT_TRUE(r.all_ok()) << r.summary();
  EXPECT_EQ(r.first_decision_delay, 2u) << r.summary();
}

TEST(CommonCase, DiskPaxosDecidesInFourDelays) {
  // §1: "Disk Paxos ... takes at least four delays" — write + verifying read.
  const RunReport r = run_cluster(base(Algorithm::kDiskPaxos, 2, 3));
  EXPECT_TRUE(r.all_ok()) << r.summary();
  EXPECT_EQ(r.first_decision_delay, 4u) << r.summary();
}

TEST(CommonCase, ProtectedMemoryPaxosIsTwoDeciding) {
  // Theorem 5.1: 2-deciding with n ≥ fP+1, m ≥ 2fM+1.
  const RunReport r = run_cluster(base(Algorithm::kProtectedMemoryPaxos, 2, 3));
  EXPECT_TRUE(r.all_ok()) << r.summary();
  EXPECT_EQ(r.first_decision_delay, 2u) << r.summary();
}

TEST(CommonCase, FastRobustIsTwoDeciding) {
  // Theorem 4.9 / Lemma B.6: the leader decides after one replicated write.
  const RunReport r = run_cluster(base(Algorithm::kFastRobust, 3, 3));
  EXPECT_TRUE(r.all_ok()) << r.summary();
  EXPECT_EQ(r.first_decision_delay, 2u) << r.summary();
  // And the leader's decision came via the fast path.
  EXPECT_TRUE(r.processes[0].fast_path);
}

TEST(CommonCase, RobustBackupDecides) {
  const RunReport r = run_cluster(base(Algorithm::kRobustBackup, 3, 3));
  EXPECT_TRUE(r.all_ok()) << r.summary();
  // The slow path costs at least one non-equivocating broadcast round trip
  // (≥ 6 delays, §4 footnote 2).
  EXPECT_GE(r.first_decision_delay, 6u) << r.summary();
}

TEST(CommonCase, AlignedPaxosDecides) {
  const RunReport r = run_cluster(base(Algorithm::kAlignedPaxos, 3, 3));
  EXPECT_TRUE(r.all_ok()) << r.summary();
}

TEST(CommonCase, VerbsBackendMatchesMemBackendOnDelays) {
  for (Algorithm a : {Algorithm::kProtectedMemoryPaxos, Algorithm::kDiskPaxos}) {
    ClusterConfig c = base(a, 2, 3);
    const RunReport plain = run_cluster(c);
    c.verbs_backend = true;
    const RunReport rdma = run_cluster(c);
    EXPECT_TRUE(rdma.all_ok()) << rdma.summary();
    EXPECT_EQ(plain.first_decision_delay, rdma.first_decision_delay)
        << algorithm_name(a);
  }
}

TEST(CommonCase, FastRobustOnVerbsBackend) {
  ClusterConfig c = base(Algorithm::kFastRobust, 3, 3);
  c.verbs_backend = true;
  const RunReport r = run_cluster(c);
  EXPECT_TRUE(r.all_ok()) << r.summary();
  EXPECT_EQ(r.first_decision_delay, 2u) << r.summary();
}

// ---------- Crash resilience at the paper's bounds ----------

TEST(CrashResilience, PmpSurvivesAllButOneProcess) {
  // n ≥ fP + 1: with n = 3, crash p1 and p2 right away; p3 must decide.
  ClusterConfig c = base(Algorithm::kProtectedMemoryPaxos, 3, 3);
  c.faults.process_crashes[1] = 0;
  c.faults.process_crashes[2] = 0;
  const RunReport r = run_cluster(c);
  EXPECT_TRUE(r.all_ok()) << r.summary();
  EXPECT_TRUE(r.processes[2].decided);
}

TEST(CrashResilience, PmpSurvivesLeaderCrashMidRun) {
  ClusterConfig c = base(Algorithm::kProtectedMemoryPaxos, 3, 3);
  c.faults.process_crashes[1] = 1;  // p1 dies right after starting
  const RunReport r = run_cluster(c);
  EXPECT_TRUE(r.all_ok()) << r.summary();
}

TEST(CrashResilience, PmpSurvivesMinorityMemoryCrashes) {
  ClusterConfig c = base(Algorithm::kProtectedMemoryPaxos, 2, 5);
  c.faults.memory_crashes[1] = 0;
  c.faults.memory_crashes[4] = 0;
  const RunReport r = run_cluster(c);
  EXPECT_TRUE(r.all_ok()) << r.summary();
  EXPECT_EQ(r.first_decision_delay, 2u);  // fast path unaffected
}

TEST(CrashResilience, DiskPaxosSurvivesAllButOneProcess) {
  ClusterConfig c = base(Algorithm::kDiskPaxos, 3, 3);
  c.faults.process_crashes[1] = 0;
  c.faults.process_crashes[3] = 0;
  const RunReport r = run_cluster(c);
  EXPECT_TRUE(r.all_ok()) << r.summary();
}

TEST(CrashResilience, PaxosSurvivesMinorityCrash) {
  ClusterConfig c = base(Algorithm::kPaxos, 5, 0);
  c.faults.process_crashes[1] = 0;
  c.faults.process_crashes[5] = 3;
  const RunReport r = run_cluster(c);
  EXPECT_TRUE(r.all_ok()) << r.summary();
}

TEST(CrashResilience, AlignedPaxosSurvivesCombinedMinority) {
  // §5.2: any majority of processes+memories suffices. n=3, m=3, 6 agents;
  // crash 1 process + 1 memory (2 < majority needed to block).
  ClusterConfig c = base(Algorithm::kAlignedPaxos, 3, 3);
  c.faults.process_crashes[1] = 0;
  c.faults.memory_crashes[2] = 0;
  const RunReport r = run_cluster(c);
  EXPECT_TRUE(r.all_ok()) << r.summary();
}

TEST(CrashResilience, AlignedPaxosSurvivesMemoryMajorityIfProcessesAlive) {
  // The headline §5.2 case: MORE than half the memories die (2 of 3), yet
  // processes+memories still form a majority (3+1=4 of 6). PMP would be
  // stuck; Aligned Paxos decides.
  ClusterConfig c = base(Algorithm::kAlignedPaxos, 3, 3);
  c.faults.memory_crashes[1] = 0;
  c.faults.memory_crashes[3] = 0;
  const RunReport r = run_cluster(c);
  EXPECT_TRUE(r.all_ok()) << r.summary();
}

TEST(CrashResilience, PmpBlocksWithoutMemoryMajority) {
  // Negative control for the previous test: PMP cannot terminate when a
  // majority of memories is down (safety holds; termination does not).
  ClusterConfig c = base(Algorithm::kProtectedMemoryPaxos, 3, 3);
  c.faults.memory_crashes[1] = 0;
  c.faults.memory_crashes[3] = 0;
  c.horizon = 3000;
  const RunReport r = run_cluster(c);
  EXPECT_TRUE(r.agreement);
  EXPECT_FALSE(r.termination);
}

// ---------- Byzantine failures at n = 2f+1 ----------

TEST(Byzantine, FastRobustToleratesSilentFollower) {
  ClusterConfig c = base(Algorithm::kFastRobust, 3, 3);
  c.faults.byzantine[3] = ByzantineStrategy::kSilent;
  const RunReport r = run_cluster(c);
  EXPECT_TRUE(r.agreement) << r.summary();
  EXPECT_TRUE(r.termination) << r.summary();
}

TEST(Byzantine, FastRobustToleratesSilentLeader) {
  // Leader never proposes: followers time out, panic, and the backup decides.
  ClusterConfig c = base(Algorithm::kFastRobust, 3, 3);
  c.faults.byzantine[1] = ByzantineStrategy::kSilent;
  const RunReport r = run_cluster(c);
  EXPECT_TRUE(r.agreement) << r.summary();
  EXPECT_TRUE(r.termination) << r.summary();
}

TEST(Byzantine, FastRobustToleratesEquivocatingLeader) {
  // The leader plants different signed values on different memories — the
  // attack dynamic permissions + unanimity are designed to catch.
  ClusterConfig c = base(Algorithm::kFastRobust, 3, 3);
  c.faults.byzantine[1] = ByzantineStrategy::kCqLeaderEquivocate;
  const RunReport r = run_cluster(c);
  EXPECT_TRUE(r.agreement) << r.summary();
  EXPECT_TRUE(r.termination) << r.summary();
}

TEST(Byzantine, RobustBackupToleratesNebEquivocator) {
  ClusterConfig c = base(Algorithm::kRobustBackup, 3, 3);
  c.faults.byzantine[2] = ByzantineStrategy::kNebEquivocate;
  const RunReport r = run_cluster(c);
  EXPECT_TRUE(r.agreement) << r.summary();
  EXPECT_TRUE(r.termination) << r.summary();
}

TEST(Byzantine, RobustBackupToleratesGarbageWriter) {
  ClusterConfig c = base(Algorithm::kRobustBackup, 3, 3);
  c.faults.byzantine[3] = ByzantineStrategy::kGarbage;
  const RunReport r = run_cluster(c);
  EXPECT_TRUE(r.agreement) << r.summary();
  EXPECT_TRUE(r.termination) << r.summary();
}

TEST(Byzantine, FastRobustWithFiveProcessesTwoByzantine) {
  // n = 5 = 2f+1 with f = 2.
  ClusterConfig c = base(Algorithm::kFastRobust, 5, 3);
  c.faults.byzantine[4] = ByzantineStrategy::kSilent;
  c.faults.byzantine[5] = ByzantineStrategy::kGarbage;
  const RunReport r = run_cluster(c);
  EXPECT_TRUE(r.agreement) << r.summary();
  EXPECT_TRUE(r.termination) << r.summary();
}

// ---------- Partial synchrony ----------

TEST(PartialSynchrony, FastRobustSafeBeforeGstLiveAfter) {
  // Slow network until GST: the fast path may abort, but agreement holds and
  // everyone decides after GST.
  ClusterConfig c = base(Algorithm::kFastRobust, 3, 3);
  c.gst = 400;
  c.pre_gst_delay = 50;
  c.horizon = 120000;
  const RunReport r = run_cluster(c);
  EXPECT_TRUE(r.agreement) << r.summary();
  EXPECT_TRUE(r.termination) << r.summary();
}

TEST(PartialSynchrony, PaxosWithLateGst) {
  ClusterConfig c = base(Algorithm::kPaxos, 3, 0);
  c.gst = 300;
  c.pre_gst_delay = 40;
  const RunReport r = run_cluster(c);
  EXPECT_TRUE(r.all_ok()) << r.summary();
  EXPECT_GE(r.first_decision_delay, 300u);  // no decision before GST here
}

// ---------- Identical inputs / validity shapes ----------

TEST(Validity, IdenticalInputsDecideThatValue) {
  for (Algorithm a : {Algorithm::kPaxos, Algorithm::kProtectedMemoryPaxos,
                      Algorithm::kFastRobust}) {
    ClusterConfig c = base(a, 3, 3);
    c.identical_inputs = true;
    const RunReport r = run_cluster(c);
    EXPECT_TRUE(r.all_ok()) << algorithm_name(a) << ": " << r.summary();
    ASSERT_TRUE(r.decided_value.has_value());
    EXPECT_EQ(*r.decided_value, "value-all");
  }
}

}  // namespace
}  // namespace mnm::harness
