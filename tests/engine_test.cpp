// core::ConsensusEngine conformance across all seven protocol adapters.
//
// The engine contract every adapter must honor (engine.hpp): propose
// resolves with the slot's decision, decisions() streams each locally
// decided slot exactly once, replicas agree per slot, slots are independent
// (different slots may decide different values), and everything runs over
// ONE base transport / memory set per replica — no per-slot tags or
// regions leak into the caller.

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/core/engine.hpp"
#include "src/core/omega.hpp"
#include "src/core/transport.hpp"
#include "src/mem/memory.hpp"
#include "src/net/network.hpp"
#include "src/sim/executor.hpp"

namespace mnm::core {
namespace {

using sim::Executor;
using sim::Task;
using util::to_bytes;
using util::to_string;

enum class Kind {
  kPaxos,
  kFastPaxos,
  kDiskPaxos,
  kPmp,
  kAligned,
  kCheapQuorum,
  kFastRobust,
};

/// Minimal cluster: n processes, m memories, one engine per process over one
/// NetTransport (message engines) or the shared memories (Byzantine engines).
struct EngineWorld {
  EngineWorld(Kind kind, std::size_t n, std::size_t m)
      : n(n),
        network(exec, n),
        omega(Omega::fixed(exec, kLeaderP1)),
        keystore(99) {
    for (std::size_t i = 0; i < m; ++i) {
      memories.push_back(
          std::make_unique<mem::Memory>(exec, static_cast<MemoryId>(i + 1)));
      ifc.push_back(memories.back().get());
    }
    for (ProcessId p : all_processes(n)) {
      signers.push_back(keystore.register_process(p));
    }

    switch (kind) {
      case Kind::kPaxos:
      case Kind::kFastPaxos: {
        PaxosConfig pc;
        pc.n = n;
        pc.skip_phase1_for_p1 = (kind == Kind::kFastPaxos);
        for (ProcessId p : all_processes(n)) {
          transports.push_back(
              std::make_unique<NetTransport>(exec, network, p, /*tag=*/100));
          engines.push_back(std::make_unique<PaxosEngine>(
              exec, *transports.back(), omega, pc));
        }
        break;
      }
      case Kind::kDiskPaxos: {
        auto pool = std::make_shared<SlotRegions<RegionId>>([this](Slot s) {
          RegionId region = 0;
          for (auto& mp : memories) {
            region = make_disk_region(*mp, this->n, slot_ns(s, "dp"));
          }
          return region;
        });
        DiskPaxosConfig dc;
        dc.n = n;
        for (ProcessId p : all_processes(n)) {
          transports.push_back(
              std::make_unique<NetTransport>(exec, network, p, /*tag=*/910));
          engines.push_back(std::make_unique<DiskPaxosEngine>(
              exec, ifc, *transports.back(), omega, pool, dc));
        }
        break;
      }
      case Kind::kPmp:
      case Kind::kAligned: {
        auto pool = std::make_shared<SlotRegions<RegionId>>([this](Slot s) {
          RegionId region = 0;
          for (auto& mp : memories) {
            region = make_pmp_region(*mp, this->n, kLeaderP1, slot_ns(s, "pmp"));
          }
          return region;
        });
        for (ProcessId p : all_processes(n)) {
          transports.push_back(
              std::make_unique<NetTransport>(exec, network, p, /*tag=*/920));
          if (kind == Kind::kAligned) {
            AlignedPaxosConfig ac;
            ac.n = n;
            engines.push_back(std::make_unique<AlignedEngine>(
                exec, ifc, *transports.back(), omega, pool, ac));
          } else {
            PmpConfig pc;
            pc.n = n;
            engines.push_back(std::make_unique<PmpEngine>(
                exec, ifc, *transports.back(), omega, pool, pc));
          }
        }
        break;
      }
      case Kind::kCheapQuorum: {
        auto pool =
            std::make_shared<SlotRegions<CheapQuorumRegions>>([this](Slot s) {
              CheapQuorumRegions out;
              for (auto& mp : memories) {
                out = make_cq_regions(*mp, this->n, kLeaderP1, slot_ns(s, "cq"));
              }
              return out;
            });
        CheapQuorumConfig cc;
        cc.n = n;
        cc.timeout = 120;
        for (ProcessId p : all_processes(n)) {
          engines.push_back(std::make_unique<CheapQuorumEngine>(
              exec, ifc, pool, keystore, signers[p - 1], cc));
        }
        break;
      }
      case Kind::kFastRobust: {
        auto pool = std::make_shared<SlotRegions<FastRobustSlotRegions>>(
            [this](Slot s) {
              FastRobustSlotRegions out;
              for (auto& mp : memories) {
                out.cq = make_cq_regions(*mp, this->n, kLeaderP1, slot_ns(s, "cq"));
                out.neb = make_neb_regions(*mp, this->n, slot_ns(s, "neb"));
              }
              return out;
            });
        FastRobustConfig fc;
        fc.n = n;
        fc.f = (n - 1) / 2;
        fc.cheap.n = n;
        fc.neb.n = n;
        fc.paxos.n = n;
        fc.paxos.round_timeout = 150 * n;
        fc.paxos.retry_backoff = 40;
        for (ProcessId p : all_processes(n)) {
          engines.push_back(std::make_unique<FastRobustEngine>(
              exec, ifc, pool, keystore, signers[p - 1], omega, fc));
        }
        break;
      }
    }
    for (auto& e : engines) e->start();
    decided.resize(n);
  }

  /// Collect every decision each replica's stream emits.
  void start_collectors() {
    for (ProcessId p : all_processes(n)) {
      exec.spawn([](ConsensusEngine* e,
                    std::map<Slot, std::string>* out) -> Task<void> {
        while (true) {
          const SlotDecision sd = co_await e->decisions().recv();
          EXPECT_FALSE(out->contains(sd.slot))
              << "slot " << sd.slot << " decided twice";
          (*out)[sd.slot] = to_string(sd.decision.value);
        }
      }(engines[p - 1].get(), &decided[p - 1]));
    }
  }

  void propose(ProcessId p, Slot s, const std::string& v) {
    exec.spawn([](ConsensusEngine* e, Slot s, Bytes v) -> Task<void> {
      (void)co_await e->propose(s, std::move(v));
    }(engines[p - 1].get(), s, to_bytes(v)));
  }

  bool all_decided(std::size_t slots) const {
    for (const auto& d : decided) {
      if (d.size() < slots) return false;
    }
    return true;
  }

  std::size_t n;
  Executor exec;
  net::Network network;
  Omega omega;
  crypto::KeyStore keystore;
  std::vector<crypto::Signer> signers;
  std::vector<std::unique_ptr<mem::Memory>> memories;
  std::vector<mem::MemoryIface*> ifc;
  std::vector<std::unique_ptr<NetTransport>> transports;
  std::vector<std::unique_ptr<ConsensusEngine>> engines;
  std::vector<std::map<Slot, std::string>> decided;  // index p - 1
};

/// Leader-driven conformance: the leader proposes 3 slots; followers must
/// discover the slots from traffic, participate, and stream identical
/// decisions.
void leader_driven_roundtrip(Kind kind, std::size_t n, std::size_t m) {
  EngineWorld w(kind, n, m);
  w.start_collectors();
  w.propose(1, 0, "v0");
  w.propose(1, 1, "v1");
  w.propose(1, 2, "v2");
  w.exec.run_until([&] { return w.all_decided(3); }, 100000);
  ASSERT_TRUE(w.all_decided(3));
  for (ProcessId p : all_processes(n)) {
    EXPECT_EQ(w.decided[p - 1].at(0), "v0") << "p" << p;
    EXPECT_EQ(w.decided[p - 1].at(1), "v1") << "p" << p;
    EXPECT_EQ(w.decided[p - 1].at(2), "v2") << "p" << p;
  }
}

/// All-propose conformance (Byzantine engines): every replica proposes its
/// own candidate per slot; per slot exactly one candidate wins everywhere.
void all_propose_roundtrip(Kind kind, std::size_t n, std::size_t m) {
  EngineWorld w(kind, n, m);
  w.start_collectors();
  for (Slot s = 0; s < 2; ++s) {
    for (ProcessId p : all_processes(n)) {
      w.propose(p, s, "s" + std::to_string(s) + "-from-p" + std::to_string(p));
    }
  }
  w.exec.run_until([&] { return w.all_decided(2); }, 200000);
  ASSERT_TRUE(w.all_decided(2));
  for (Slot s = 0; s < 2; ++s) {
    const std::string& winner = w.decided[0].at(s);
    EXPECT_TRUE(winner.rfind("s" + std::to_string(s) + "-from-p", 0) == 0)
        << winner;
    for (ProcessId p : all_processes(n)) {
      EXPECT_EQ(w.decided[p - 1].at(s), winner) << "p" << p << " slot " << s;
    }
  }
}

TEST(ConsensusEngine, PaxosThreeSlots) {
  leader_driven_roundtrip(Kind::kPaxos, 3, 0);
}

TEST(ConsensusEngine, FastPaxosThreeSlots) {
  leader_driven_roundtrip(Kind::kFastPaxos, 3, 0);
}

TEST(ConsensusEngine, DiskPaxosThreeSlots) {
  leader_driven_roundtrip(Kind::kDiskPaxos, 2, 3);
}

TEST(ConsensusEngine, ProtectedMemoryPaxosThreeSlots) {
  leader_driven_roundtrip(Kind::kPmp, 2, 3);
}

TEST(ConsensusEngine, AlignedPaxosThreeSlots) {
  leader_driven_roundtrip(Kind::kAligned, 3, 3);
}

TEST(ConsensusEngine, CheapQuorumTwoSlots) {
  all_propose_roundtrip(Kind::kCheapQuorum, 3, 3);
}

TEST(ConsensusEngine, FastRobustTwoSlots) {
  all_propose_roundtrip(Kind::kFastRobust, 3, 3);
}

TEST(ConsensusEngine, FastPaxosLeaderDecisionsAreFastPath) {
  EngineWorld w(Kind::kFastPaxos, 3, 0);
  bool fast = false;
  w.exec.spawn([](ConsensusEngine* e, bool* fast) -> Task<void> {
    const Decision d = co_await e->propose(0, to_bytes("v"));
    *fast = d.fast;
  }(w.engines[0].get(), &fast));
  w.exec.run_until([&] { return fast; }, 100000);
  EXPECT_TRUE(fast) << "p1's ballot-0 skip should report the fast path";
}

TEST(ConsensusEngine, SlotsAreIndependentInstances) {
  // Different slots decide different values; a slot proposed twice resolves
  // both proposals with the same (first) decision.
  EngineWorld w(Kind::kFastPaxos, 3, 0);
  std::vector<std::string> got;
  w.exec.spawn([](ConsensusEngine* e, std::vector<std::string>* got) -> Task<void> {
    const Decision a = co_await e->propose(7, to_bytes("first"));
    got->push_back(to_string(a.value));
    const Decision b = co_await e->propose(7, to_bytes("second"));
    got->push_back(to_string(b.value));
    const Decision c = co_await e->propose(8, to_bytes("other"));
    got->push_back(to_string(c.value));
  }(w.engines[0].get(), &got));
  w.exec.run_until([&] { return got.size() == 3; }, 100000);
  ASSERT_EQ(got.size(), 3u);
  EXPECT_EQ(got[0], "first");
  EXPECT_EQ(got[1], "first");  // slot 7 already decided
  EXPECT_EQ(got[2], "other");  // slot 8 is a fresh instance
}

TEST(ConsensusEngine, CheapQuorumAbortThrowsProposeAborted) {
  // The leader never proposes: followers time out, panic, and abort — the
  // engine surfaces that as ProposeAborted instead of hanging or deciding.
  EngineWorld w(Kind::kCheapQuorum, 3, 3);
  int aborted = 0;
  for (ProcessId p : {ProcessId{2}, ProcessId{3}}) {
    w.exec.spawn([](ConsensusEngine* e, ProcessId p, int* aborted) -> Task<void> {
      try {
        (void)co_await e->propose(0, to_bytes("v" + std::to_string(p)));
      } catch (const ProposeAborted&) {
        ++*aborted;
      }
    }(w.engines[p - 1].get(), p, &aborted));
  }
  w.exec.run_until([&] { return aborted == 2; }, 100000);
  EXPECT_EQ(aborted, 2);
}

TEST(SlotTransportHub, OversizedSlotIdsAreDropped) {
  // A malformed frame claiming an absurd slot id must not inflate the
  // horizon (learners would open unbounded state).
  sim::Executor exec;
  net::Network network(exec, 2);
  NetTransport t1(exec, network, 1, /*tag=*/5);
  NetTransport t2(exec, network, 2, /*tag=*/5);
  SlotTransportHub hub(exec, t2);
  hub.start();
  (void)hub.slot(0);  // open slot 0 so the demux has somewhere to deliver
  // p1 sends a frame for an enormous slot id and a well-formed one.
  t1.send(2, SlotTransportHub::frame(Slot{1} << 40, to_bytes("x")));
  t1.send(2, SlotTransportHub::frame(3, to_bytes("y")));
  exec.run_until([&] { return hub.horizon() >= 4; }, 1000);
  EXPECT_EQ(hub.horizon(), 4u);  // slot 3 heard; 2^40 dropped
}

}  // namespace
}  // namespace mnm::core
