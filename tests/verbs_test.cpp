// Tests for the RDMA-like verbs layer (src/verbs): rkeys, protection
// domains, queue pairs, deregistration-as-revocation, and the VerbsMemory
// adapter's equivalence with mem::Memory (the §7 mapping).

#include <gtest/gtest.h>

#include <memory>

#include "src/mem/memory.hpp"
#include "src/sim/executor.hpp"
#include "src/util/bytes.hpp"
#include "src/verbs/verbs.hpp"

namespace mnm::verbs {
namespace {

using mem::Permission;
using mem::ReadResult;
using mem::Status;
using sim::Executor;
using sim::Task;
using util::to_bytes;
using util::to_string;

std::vector<ProcessId> procs(std::size_t n) { return all_processes(n); }

struct DeviceFixture {
  Executor exec;
  std::unique_ptr<RdmaDevice> dev = std::make_unique<RdmaDevice>(exec, 1, /*seed=*/7);
};

TEST(RdmaDevice, RegisterPostReadWrite) {
  DeviceFixture f;
  const PdId pd = f.dev->alloc_pd();
  const QpId qp = f.dev->create_qp(pd, /*owner=*/1);
  const RKey key = f.dev->register_mr(pd, {"data/"}, Access{true, true});

  Status wst = Status::kNak;
  ReadResult rr;
  f.exec.spawn([](RdmaDevice& d, QpId qp, RKey key, Status& wst,
                  ReadResult& rr) -> Task<void> {
    wst = co_await d.post_write(qp, 1, key, "data/x", to_bytes("hello"));
    rr = co_await d.post_read(qp, 1, key, "data/x");
  }(*f.dev, qp, key, wst, rr));
  f.exec.run();
  EXPECT_EQ(wst, Status::kAck);
  ASSERT_TRUE(rr.ok());
  EXPECT_EQ(to_string(rr.value), "hello");
}

TEST(RdmaDevice, StaleRkeyNaks) {
  DeviceFixture f;
  const PdId pd = f.dev->alloc_pd();
  const QpId qp = f.dev->create_qp(pd, 1);
  const RKey key = f.dev->register_mr(pd, {"data/"}, Access{true, true});
  EXPECT_TRUE(f.dev->deregister_mr(key));
  EXPECT_FALSE(f.dev->rkey_valid(key));

  Status wst = Status::kAck;
  f.exec.spawn([](RdmaDevice& d, QpId qp, RKey key, Status& wst) -> Task<void> {
    wst = co_await d.post_write(qp, 1, key, "data/x", to_bytes("late"));
  }(*f.dev, qp, key, wst));
  f.exec.run();
  EXPECT_EQ(wst, Status::kNak);
  EXPECT_EQ(f.dev->nic_naks(), 1u);
}

TEST(RdmaDevice, DeregistrationRacesInFlightWrite) {
  // §7: "p can revoke permissions dynamically by simply deregistering the
  // memory region". A write in flight when the rkey dies must nak — the NIC
  // checks at arrival.
  DeviceFixture f;
  const PdId pd = f.dev->alloc_pd();
  const QpId qp = f.dev->create_qp(pd, 1);
  const RKey key = f.dev->register_mr(pd, {"data/"}, Access{true, true});

  Status wst = Status::kAck;
  f.exec.spawn([](RdmaDevice& d, QpId qp, RKey key, Status& wst) -> Task<void> {
    wst = co_await d.post_write(qp, 1, key, "data/x", to_bytes("racer"));
  }(*f.dev, qp, key, wst));
  // Write posted at t=0, reaches NIC at t=1. Deregister at t=0 (control
  // plane is host-local and instant).
  f.dev->deregister_mr(key);
  f.exec.run();
  EXPECT_EQ(wst, Status::kNak);
  EXPECT_EQ(f.dev->peek("data/x"), std::nullopt);
}

TEST(RdmaDevice, PdMismatchNaks) {
  DeviceFixture f;
  const PdId pd1 = f.dev->alloc_pd();
  const PdId pd2 = f.dev->alloc_pd();
  const QpId qp_in_pd2 = f.dev->create_qp(pd2, 1);
  const RKey key_in_pd1 = f.dev->register_mr(pd1, {"d/"}, Access{true, true});

  ReadResult rr;
  f.exec.spawn([](RdmaDevice& d, QpId qp, RKey key, ReadResult& rr) -> Task<void> {
    rr = co_await d.post_read(qp, 1, key, "d/x");
  }(*f.dev, qp_in_pd2, key_in_pd1, rr));
  f.exec.run();
  EXPECT_FALSE(rr.ok());
}

TEST(RdmaDevice, QpOwnershipEnforced) {
  DeviceFixture f;
  const PdId pd = f.dev->alloc_pd();
  const QpId qp_of_p1 = f.dev->create_qp(pd, 1);
  const RKey key = f.dev->register_mr(pd, {"d/"}, Access{true, true});

  Status wst = Status::kAck;
  f.exec.spawn([](RdmaDevice& d, QpId qp, RKey key, Status& wst) -> Task<void> {
    wst = co_await d.post_write(qp, /*caller=*/2, key, "d/x", to_bytes("spoof"));
  }(*f.dev, qp_of_p1, key, wst));
  f.exec.run();
  EXPECT_EQ(wst, Status::kNak);
}

TEST(RdmaDevice, ReadOnlyAccessBlocksWrites) {
  DeviceFixture f;
  const PdId pd = f.dev->alloc_pd();
  const QpId qp = f.dev->create_qp(pd, 1);
  const RKey key = f.dev->register_mr(pd, {"d/"}, Access{.remote_read = true,
                                                         .remote_write = false});
  Status wst = Status::kAck;
  ReadResult rr;
  f.exec.spawn([](RdmaDevice& d, QpId qp, RKey key, Status& wst,
                  ReadResult& rr) -> Task<void> {
    wst = co_await d.post_write(qp, 1, key, "d/x", to_bytes("no"));
    rr = co_await d.post_read(qp, 1, key, "d/x");
  }(*f.dev, qp, key, wst, rr));
  f.exec.run();
  EXPECT_EQ(wst, Status::kNak);
  ASSERT_TRUE(rr.ok());
  EXPECT_TRUE(util::is_bottom(rr.value));
}

TEST(RdmaDevice, OverlappingRegistrations) {
  DeviceFixture f;
  const PdId pd = f.dev->alloc_pd();
  const QpId qp = f.dev->create_qp(pd, 1);
  const RKey ro_all = f.dev->register_mr(pd, {"arr/"}, Access{true, false});
  const RKey rw_row = f.dev->register_mr(pd, {"arr/row1/"}, Access{true, true});

  Status via_ro = Status::kAck, via_rw = Status::kNak;
  f.exec.spawn([](RdmaDevice& d, QpId qp, RKey ro, RKey rw, Status& a,
                  Status& b) -> Task<void> {
    a = co_await d.post_write(qp, 1, ro, "arr/row1/c", to_bytes("x"));
    b = co_await d.post_write(qp, 1, rw, "arr/row1/c", to_bytes("x"));
  }(*f.dev, qp, ro_all, rw_row, via_ro, via_rw));
  f.exec.run();
  EXPECT_EQ(via_ro, Status::kNak);
  EXPECT_EQ(via_rw, Status::kAck);
}

TEST(RdmaDevice, CrashHangsDataPlane) {
  DeviceFixture f;
  const PdId pd = f.dev->alloc_pd();
  const QpId qp = f.dev->create_qp(pd, 1);
  const RKey key = f.dev->register_mr(pd, {"d/"}, Access{true, true});
  f.dev->crash();

  bool completed = false;
  f.exec.spawn([](RdmaDevice& d, QpId qp, RKey key, bool& completed) -> Task<void> {
    (void)co_await d.post_read(qp, 1, key, "d/x");
    completed = true;
  }(*f.dev, qp, key, completed));
  f.exec.run();
  EXPECT_FALSE(completed);
}

// --- VerbsMemory: the §7 mapping must behave like mem::Memory. ---

struct AdapterFixture {
  Executor exec;
  VerbsMemory vm{exec, std::make_unique<RdmaDevice>(exec, 1, 7), procs(3)};
};

TEST(VerbsMemory, SwmrRegionBehaviour) {
  AdapterFixture f;
  const RegionId r = f.vm.create_region({"p1/"}, Permission::swmr(1, procs(3)));

  Status own = Status::kNak, other = Status::kAck;
  ReadResult rr;
  f.exec.spawn([](VerbsMemory& vm, RegionId r, Status& own, Status& other,
                  ReadResult& rr) -> Task<void> {
    own = co_await vm.write(1, r, "p1/v", to_bytes("mine"));
    other = co_await vm.write(2, r, "p1/v", to_bytes("stolen"));
    rr = co_await vm.read(3, r, "p1/v");
  }(f.vm, r, own, other, rr));
  f.exec.run();
  EXPECT_EQ(own, Status::kAck);
  EXPECT_EQ(other, Status::kNak);
  ASSERT_TRUE(rr.ok());
  EXPECT_EQ(to_string(rr.value), "mine");
}

TEST(VerbsMemory, OpsCostOneRoundTrip) {
  AdapterFixture f;
  const RegionId r = f.vm.create_region({"p1/"}, Permission::swmr(1, procs(3)));
  sim::Time wdone = 0, rdone = 0;
  f.exec.spawn([](Executor& e, VerbsMemory& vm, RegionId r, sim::Time& wd,
                  sim::Time& rd) -> Task<void> {
    (void)co_await vm.write(1, r, "p1/v", to_bytes("x"));
    wd = e.now();
    (void)co_await vm.read(2, r, "p1/v");
    rd = e.now();
  }(f.exec, f.vm, r, wdone, rdone));
  f.exec.run();
  EXPECT_EQ(wdone, sim::kMemoryOpDelay);
  EXPECT_EQ(rdone, 2 * sim::kMemoryOpDelay);
}

TEST(VerbsMemory, LegalChangeEnforcedByHostKernel) {
  AdapterFixture f;
  const auto all = procs(3);
  const auto only_revoke = [](ProcessId, RegionId, const Permission&,
                              const Permission& proposed) {
    return proposed.write.empty() && proposed.read_write.empty();
  };
  const RegionId r = f.vm.create_region({"L/"}, Permission::swmr(1, all), only_revoke);

  Status illegal = Status::kAck, legal = Status::kNak, after = Status::kAck;
  f.exec.spawn([](VerbsMemory& vm, RegionId r, const std::vector<ProcessId>& all,
                  Status& illegal, Status& legal, Status& after) -> Task<void> {
    illegal = co_await vm.change_permission(2, r, Permission::swmr(2, all));
    legal = co_await vm.change_permission(2, r, Permission::read_only(all));
    after = co_await vm.write(1, r, "L/v", to_bytes("too late"));
  }(f.vm, r, all, illegal, legal, after));
  f.exec.run();
  EXPECT_EQ(illegal, Status::kNak);
  EXPECT_EQ(legal, Status::kAck);
  EXPECT_EQ(after, Status::kNak);  // leader's rkey was deregistered
}

TEST(VerbsMemory, PermissionChangeRotatesRkeys) {
  // After a revoke-and-regrant cycle the new writer works and the old
  // writer's access is gone — rkeys rotated underneath.
  AdapterFixture f;
  const auto all = procs(3);
  const RegionId r = f.vm.create_region({"s/"}, Permission::swmr(1, all),
                                        mem::dynamic_permissions());
  Status p1_after = Status::kAck, p2_after = Status::kNak;
  f.exec.spawn([](VerbsMemory& vm, RegionId r, const std::vector<ProcessId>& all,
                  Status& p1_after, Status& p2_after) -> Task<void> {
    (void)co_await vm.change_permission(2, r, Permission::swmr(2, all));
    p1_after = co_await vm.write(1, r, "s/v", to_bytes("old writer"));
    p2_after = co_await vm.write(2, r, "s/v", to_bytes("new writer"));
  }(f.vm, r, all, p1_after, p2_after));
  f.exec.run();
  EXPECT_EQ(p1_after, Status::kNak);
  EXPECT_EQ(p2_after, Status::kAck);
}

TEST(VerbsMemory, UnknownRegionNaks) {
  AdapterFixture f;
  Status st = Status::kAck;
  f.exec.spawn([](VerbsMemory& vm, Status& st) -> Task<void> {
    st = co_await vm.write(1, 42, "x", to_bytes("y"));
  }(f.vm, st));
  f.exec.run();
  EXPECT_EQ(st, Status::kNak);
}

}  // namespace
}  // namespace mnm::verbs
