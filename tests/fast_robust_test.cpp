// Tests for the Fast & Robust composition pieces: the Definition 3 priority
// function, Preferential Paxos's priority-decision property (Lemma 4.7),
// and the Composition Lemma (4.8) end to end.

#include <gtest/gtest.h>

#include "src/core/fast_robust.hpp"
#include "src/harness/cluster.hpp"
#include "src/mem/memory.hpp"
#include "src/sim/executor.hpp"

namespace mnm::core {
namespace {

using util::to_bytes;
using util::to_string;

TEST(PrioInputWire, RoundTrip) {
  PrioInput in{to_bytes("v"), to_bytes("proof"), to_bytes("sig")};
  const auto d = PrioInput::decode(in.encode());
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(*d, in);
  EXPECT_FALSE(PrioInput::decode(to_bytes("bad")).has_value());
}

struct PriorityFixture {
  PriorityFixture() : ks(9) {
    for (ProcessId p : all_processes(3)) signers.push_back(ks.register_process(p));
    priority = fast_robust_priority(ks, 3, kLeaderP1);
  }

  Bytes leader_sig_for(const Bytes& v) {
    const crypto::Signature sig = signers[0].sign(cq_value_signing_bytes(v));
    util::Writer w;
    sig.encode(w);
    return std::move(w).take();
  }

  /// Build a genuine unanimity proof for `v` signed by all 3 processes.
  Bytes unanimity_proof_for(const Bytes& v) {
    const crypto::Signature s1 = signers[0].sign(cq_value_signing_bytes(v));
    const Bytes lb = encode_leader_blob(v, s1);
    std::vector<Bytes> copies;
    for (ProcessId p : all_processes(3)) {
      const crypto::Signature cs = signers[p - 1].sign(cq_copy_signing_bytes(lb));
      copies.push_back(encode_copy_blob(lb, cs));
    }
    // Assembler signature over the copies (as CheapQuorum does internally).
    util::Writer w;
    w.str("cq-proof").u32(3);
    for (const auto& c : copies) w.bytes(c);
    const crypto::Signature as = signers[1].sign(w.data());
    return encode_unanimity_proof(copies, as);
  }

  crypto::KeyStore ks;
  std::vector<crypto::Signer> signers;
  PriorityFn priority;
};

TEST(Definition3Priority, ClassesOrderTOverMOverB) {
  PriorityFixture f;
  const Bytes v = to_bytes("v");
  const PrioInput t_input{v, f.unanimity_proof_for(v), {}};
  const PrioInput m_input{v, {}, f.leader_sig_for(v)};
  const PrioInput b_input{v, {}, {}};
  EXPECT_EQ(f.priority(t_input), 2);
  EXPECT_EQ(f.priority(m_input), 1);
  EXPECT_EQ(f.priority(b_input), 0);
}

TEST(Definition3Priority, ForgedEvidenceDropsToB) {
  PriorityFixture f;
  const Bytes v = to_bytes("v");
  // Proof for a different value does not lift THIS value to T.
  const PrioInput wrong_proof{v, f.unanimity_proof_for(to_bytes("other")), {}};
  EXPECT_EQ(f.priority(wrong_proof), 0);
  // A non-leader's signature is not an M-class ticket.
  const crypto::Signature s2 = f.signers[1].sign(cq_value_signing_bytes(v));
  util::Writer w;
  s2.encode(w);
  const PrioInput wrong_signer{v, {}, std::move(w).take()};
  EXPECT_EQ(f.priority(wrong_signer), 0);
  // Garbage bytes in the sig slot.
  const PrioInput junk{v, {}, to_bytes("zzz")};
  EXPECT_EQ(f.priority(junk), 0);
}

TEST(Definition3Priority, LeaderSigOnDifferentValueRejected) {
  PriorityFixture f;
  const PrioInput mismatched{to_bytes("v"), {}, f.leader_sig_for(to_bytes("w"))};
  EXPECT_EQ(f.priority(mismatched), 0);
}

// --- Lemma 4.7 / 4.8 observed through the harness. ---

TEST(CompositionLemma, FastDeciderValueWinsBackup) {
  // Common case: leader decides fast; everyone (including backup-path
  // processes under an injected follower timeout) must end on that value.
  harness::ClusterConfig c;
  c.algo = harness::Algorithm::kFastRobust;
  c.n = 3;
  c.m = 3;
  c.cq_timeout = 20;  // aggressive: followers may panic before unanimity
  const harness::RunReport r = harness::run_cluster(c);
  EXPECT_TRUE(r.agreement) << r.summary();
  EXPECT_TRUE(r.termination) << r.summary();
  ASSERT_TRUE(r.decided_value.has_value());
  EXPECT_EQ(*r.decided_value, "value-1");  // the fast decider's value
}

TEST(CompositionLemma, HoldsAcrossTimeoutSweep) {
  // Sweep the follower timeout through the racy region: whatever mix of
  // fast deciders and aborters results, agreement must hold and, if anyone
  // decided fast, the final value is theirs.
  for (sim::Time timeout : {sim::Time{4}, sim::Time{8}, sim::Time{12},
                            sim::Time{30}, sim::Time{60}}) {
    harness::ClusterConfig c;
    c.algo = harness::Algorithm::kFastRobust;
    c.n = 3;
    c.m = 3;
    c.cq_timeout = timeout;
    const harness::RunReport r = harness::run_cluster(c);
    EXPECT_TRUE(r.agreement) << "timeout=" << timeout << " " << r.summary();
    EXPECT_TRUE(r.termination) << "timeout=" << timeout << " " << r.summary();
    bool any_fast = false;
    for (const auto& p : r.processes) any_fast |= p.fast_path;
    if (any_fast) {
      EXPECT_EQ(*r.decided_value, "value-1") << "timeout=" << timeout;
    }
  }
}

TEST(FastRobustEngine, BackupTakeoverUnderByzantineLeaderAndSlowSchedule) {
  // Engine-API coverage of the backup path: the Cheap Quorum leader is
  // Byzantine (plants conflicting signed values, then goes silent) and the
  // follower timeout is aggressive — the "slow leader" schedule — so every
  // slot falls through to Robust Backup(Paxos) over the trusted transport.
  // The replicated log must still converge, and the t-send deliveries that
  // carried it must have ridden the suffix-only decode path.
  harness::ClusterConfig c;
  c.algo = harness::Algorithm::kFastRobust;
  c.n = 3;
  c.m = 3;
  c.seed = 5;
  c.smr.enabled = true;
  c.smr.commands = 6;
  c.smr.batch = 2;
  c.smr.window = 2;
  c.cq_timeout = 10;  // followers panic quickly: leader looks slow
  c.faults.byzantine[1] = harness::ByzantineStrategy::kCqLeaderEquivocate;
  const harness::RunReport r = harness::run_cluster(c);

  EXPECT_TRUE(r.termination) << r.summary();
  EXPECT_TRUE(r.agreement) << r.summary();
  EXPECT_EQ(r.slots_applied, 3u) << r.summary();  // 6 commands, batch 2
  EXPECT_EQ(r.fast_slots, 0u) << r.summary();     // nothing decided fast
  for (const auto& p : r.processes) {
    if (p.byzantine) continue;
    EXPECT_FALSE(p.log.empty()) << "p" << p.id;
  }

  // Suffix-only decode counters: the backup exchanged t-sends, the verified
  // prefixes were hopped over rather than re-decoded, and the per-delivery
  // decode stayed flat (each delivery materializes only the handful of
  // entries appended since the sender's previous message — not the whole
  // history, which grows with every round).
  EXPECT_GT(r.tsend_deliveries, 0u) << r.summary();
  EXPECT_GT(r.history_entries_skipped, 0u) << r.summary();
  EXPECT_GT(r.decoded_per_delivery, 0.0);
  EXPECT_LT(r.decoded_per_delivery, 6.0) << r.summary();
}

TEST(PreferentialPaxos, PriorityDecisionLemma47) {
  // Give one process a T-class input (unanimity proof): with n=3, f=1, the
  // decision must be within the top f+1 = 2 priorities — and since only one
  // input is T and the rest are B, the T input must win whenever its sender
  // is among the n − f set-up inputs everyone waits for. We validate the
  // stronger observable: the decided value is never a B value when a T
  // value was seen by all (synchronous run, no failures).
  //
  // Construct via the harness's Fast & Robust with an injected CQ timeout
  // of 0 for followers is intricate; instead run the equivalence check
  // through CompositionLemma tests above and assert here the pure priority
  // ordering maths on which Lemma 4.7 relies.
  PriorityFixture f;
  const Bytes v = to_bytes("winner");
  const PrioInput t_input{v, f.unanimity_proof_for(v), {}};
  const PrioInput b1{to_bytes("x"), {}, {}};
  const PrioInput b2{to_bytes("y"), {}, {}};
  // Adopting the max over any (n−f)=2 subset containing t_input yields v.
  EXPECT_GT(f.priority(t_input), f.priority(b1));
  EXPECT_GT(f.priority(t_input), f.priority(b2));
}

}  // namespace
}  // namespace mnm::core
