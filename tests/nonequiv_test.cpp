// Tests for non-equivocating broadcast (Algorithm 2): the three properties
// of Definition 1, the 6-delay cost, and equivocation suppression.

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <vector>

#include "src/core/nonequiv_broadcast.hpp"
#include "src/crypto/signature.hpp"
#include "src/mem/memory.hpp"
#include "src/sim/executor.hpp"

namespace mnm::core {
namespace {

using mem::Memory;
using sim::Executor;
using sim::Task;
using util::to_bytes;
using util::to_string;

struct NebFixture {
  explicit NebFixture(std::size_t n, std::size_t m) : n(n), keystore(7) {
    for (std::size_t i = 0; i < m; ++i) {
      auto mp = std::make_unique<Memory>(exec, static_cast<MemoryId>(i + 1));
      regions = make_neb_regions(*mp, n);
      memories.push_back(std::move(mp));
      iface.push_back(memories.back().get());
    }
    for (ProcessId p : all_processes(n)) {
      signers.push_back(keystore.register_process(p));
      slots.push_back(std::make_unique<NebSlots>(exec, iface, regions));
      nebs.push_back(std::make_unique<NonEquivBroadcast>(
          exec, *slots.back(), keystore, signers.back(), NebConfig{n, 1}));
    }
  }

  void start_all() {
    for (auto& neb : nebs) neb->start();
  }

  /// Collect deliveries per process into maps for assertions.
  void collect(std::map<ProcessId, std::vector<NebDelivery>>& out,
               std::size_t expected_total, sim::Time horizon = 2000) {
    for (ProcessId p : all_processes(n)) {
      exec.spawn([](NonEquivBroadcast* neb,
                    std::vector<NebDelivery>* sink) -> Task<void> {
        while (true) {
          sink->push_back(co_await neb->deliveries().recv());
        }
      }(nebs[p - 1].get(), &out[p]));
    }
    exec.run_until(
        [&] {
          std::size_t total = 0;
          for (auto& [p, v] : out) total += v.size();
          return total >= expected_total;
        },
        horizon);
  }

  std::size_t n;
  Executor exec;
  crypto::KeyStore keystore;
  std::vector<std::unique_ptr<Memory>> memories;
  std::vector<mem::MemoryIface*> iface;
  std::map<ProcessId, RegionId> regions;
  std::vector<crypto::Signer> signers;
  std::vector<std::unique_ptr<NebSlots>> slots;
  std::vector<std::unique_ptr<NonEquivBroadcast>> nebs;
};

TEST(NebWire, SlotEncodingRoundTrip) {
  crypto::KeyStore ks(1);
  crypto::Signer s = ks.register_process(1);
  const Bytes msg = to_bytes("hello");
  const crypto::Signature sig = s.sign(neb_signing_bytes(3, msg));
  const auto decoded = decode_neb_slot(encode_neb_slot(3, msg, sig));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->k, 3u);
  EXPECT_EQ(to_string(decoded->message), "hello");
  EXPECT_TRUE(ks.valid_from(1, neb_signing_bytes(decoded->k, decoded->message),
                            decoded->sig));
}

TEST(NebWire, RejectsGarbage) {
  EXPECT_FALSE(decode_neb_slot(to_bytes("nonsense")).has_value());
  EXPECT_FALSE(decode_neb_slot({}).has_value());
}

TEST(NebWire, SuffixDigestSigningBindsPrefixLength) {
  // neb_signing_bytes(k, m, p) hashes only m[p:]; the same message with a
  // different prefix claim signs differently, and two messages sharing a
  // prefix of p bytes sign identically iff their suffixes match.
  crypto::KeyStore ks(1);
  crypto::Signer s = ks.register_process(1);
  const Bytes m1 = to_bytes("shared-prefix|tail-one");
  const Bytes m2 = to_bytes("shared-prefix|tail-two");
  EXPECT_NE(neb_signing_bytes(3, m1, 0), neb_signing_bytes(3, m1, 14));
  EXPECT_NE(neb_signing_bytes(3, m1, 14), neb_signing_bytes(3, m2, 14));
  // Suffix equality ⇒ identical signing bytes under the same prefix claim.
  const Bytes m3 = to_bytes("SHARED-PREFIX|tail-one");
  EXPECT_EQ(neb_signing_bytes(3, m1, 14), neb_signing_bytes(3, m3, 14));

  const crypto::Signature sig = s.sign(neb_signing_bytes(7, m1, 14));
  const auto decoded = decode_neb_slot(encode_neb_slot(7, m1, sig, 14));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->k, 7u);
  EXPECT_EQ(decoded->prefix_len, 14u);
  EXPECT_TRUE(ks.valid_from(
      1, neb_signing_bytes(decoded->k, decoded->message, decoded->prefix_len),
      decoded->sig));
}

TEST(NonEquivBroadcast, SharedPrefixMessagesDeliverInOrder) {
  // Broadcasts whose wires share long prefixes (the t-send shape: append-only
  // history first) exercise the prefix_len > 0 verification path: receivers
  // must anchor each claim against the previous delivered message.
  NebFixture f(3, 3);
  f.start_all();
  std::map<ProcessId, std::vector<NebDelivery>> got;
  f.exec.spawn([](NonEquivBroadcast* neb) -> Task<void> {
    (void)co_await neb->broadcast(to_bytes("hist|AAAA|m1"));
    (void)co_await neb->broadcast(to_bytes("hist|AAAA|m1|BBBB|m2"));
    (void)co_await neb->broadcast(to_bytes("hist|AAAA|m1|BBBB|m2|CCCC|m3"));
  }(f.nebs[0].get()));
  f.collect(got, /*expected_total=*/9);
  for (ProcessId p : all_processes(3)) {
    ASSERT_EQ(got[p].size(), 3u) << "process " << p;
    EXPECT_EQ(to_string(got[p][0].message), "hist|AAAA|m1");
    EXPECT_EQ(to_string(got[p][1].message), "hist|AAAA|m1|BBBB|m2");
    EXPECT_EQ(to_string(got[p][2].message), "hist|AAAA|m1|BBBB|m2|CCCC|m3");
  }
}

TEST(NonEquivBroadcast, ForgedPrefixClaimsNeverDeliver) {
  // A Byzantine broadcaster writes slots whose prefix_len claims are bogus:
  // (a) longer than the previous delivered message, (b) claiming shared
  // bytes that differ from it. Correct processes must reject both.
  NebFixture f(3, 3);
  f.nebs[0]->start();
  f.nebs[2]->start();

  f.exec.spawn([](NebFixture* f) -> Task<void> {
    // k = 1 with a nonzero prefix claim: there is no previous message, so
    // any prefix_len > 0 is unverifiable.
    const Bytes m1 = to_bytes("first");
    const crypto::Signature s1 = f->signers[1].sign(neb_signing_bytes(1, m1, 3));
    (void)co_await f->iface[0]->write(2, f->regions.at(2), "neb/2/1/2",
                                      encode_neb_slot(1, m1, s1, 3));
  }(&f));
  std::map<ProcessId, std::vector<NebDelivery>> got;
  for (ProcessId p : {ProcessId{1}, ProcessId{3}}) {
    f.exec.spawn([](NonEquivBroadcast* neb,
                    std::vector<NebDelivery>* sink) -> Task<void> {
      while (true) sink->push_back(co_await neb->deliveries().recv());
    }(f.nebs[p - 1].get(), &got[p]));
  }
  f.exec.run(800);
  EXPECT_TRUE(got[1].empty());
  EXPECT_TRUE(got[3].empty());
}

TEST(NonEquivBroadcast, PrefixMismatchAgainstDeliveredHistoryRejected) {
  // q = 2 broadcasts k = 1 honestly; its k = 2 slot claims a prefix shared
  // with k = 1 but the actual bytes differ — the memcmp anchor must fail.
  NebFixture f(3, 3);
  f.nebs[0]->start();
  f.nebs[2]->start();

  f.exec.spawn([](NebFixture* f) -> Task<void> {
    const Bytes m1 = to_bytes("honest-first");
    const crypto::Signature s1 = f->signers[1].sign(neb_signing_bytes(1, m1, 0));
    for (std::size_t i = 0; i < f->iface.size(); ++i) {
      (void)co_await f->iface[i]->write(2, f->regions.at(2), "neb/2/1/2",
                                        encode_neb_slot(1, m1, s1, 0));
    }
    // k = 2: claims 7 shared bytes with "honest-first" but starts "HONEST-".
    const Bytes m2 = to_bytes("HONEST-second");
    const crypto::Signature s2 = f->signers[1].sign(neb_signing_bytes(2, m2, 7));
    for (std::size_t i = 0; i < f->iface.size(); ++i) {
      (void)co_await f->iface[i]->write(2, f->regions.at(2), "neb/2/2/2",
                                        encode_neb_slot(2, m2, s2, 7));
    }
  }(&f));
  std::map<ProcessId, std::vector<NebDelivery>> got;
  for (ProcessId p : {ProcessId{1}, ProcessId{3}}) {
    f.exec.spawn([](NonEquivBroadcast* neb,
                    std::vector<NebDelivery>* sink) -> Task<void> {
      while (true) sink->push_back(co_await neb->deliveries().recv());
    }(f.nebs[p - 1].get(), &got[p]));
  }
  f.exec.run(1500);
  // k = 1 delivers (it is honest); the forged k = 2 never does.
  for (ProcessId p : {ProcessId{1}, ProcessId{3}}) {
    ASSERT_EQ(got[p].size(), 1u) << "process " << p;
    EXPECT_EQ(to_string(got[p][0].message), "honest-first");
  }
}

TEST(NonEquivBroadcast, Property1AllCorrectDeliver) {
  NebFixture f(3, 3);
  f.start_all();
  std::map<ProcessId, std::vector<NebDelivery>> got;
  f.exec.spawn([](NonEquivBroadcast* neb) -> Task<void> {
    (void)co_await neb->broadcast(to_bytes("m1"));
  }(f.nebs[0].get()));
  f.collect(got, /*expected_total=*/3);
  for (ProcessId p : all_processes(3)) {
    ASSERT_EQ(got[p].size(), 1u) << "process " << p;
    EXPECT_EQ(got[p][0].from, 1u);
    EXPECT_EQ(got[p][0].k, 1u);
    EXPECT_EQ(to_string(got[p][0].message), "m1");
  }
}

TEST(NonEquivBroadcast, SequenceNumbersDeliverInOrder) {
  NebFixture f(3, 3);
  f.start_all();
  std::map<ProcessId, std::vector<NebDelivery>> got;
  f.exec.spawn([](NonEquivBroadcast* neb) -> Task<void> {
    (void)co_await neb->broadcast(to_bytes("a"));
    (void)co_await neb->broadcast(to_bytes("b"));
    (void)co_await neb->broadcast(to_bytes("c"));
  }(f.nebs[1].get()));
  f.collect(got, /*expected_total=*/9);
  for (ProcessId p : all_processes(3)) {
    ASSERT_EQ(got[p].size(), 3u);
    EXPECT_EQ(to_string(got[p][0].message), "a");
    EXPECT_EQ(to_string(got[p][1].message), "b");
    EXPECT_EQ(to_string(got[p][2].message), "c");
    EXPECT_EQ(got[p][2].k, 3u);
  }
}

TEST(NonEquivBroadcast, DeliveryCostsSixDelays) {
  // Footnote 2: non-equivocating broadcast incurs at least 6 delays —
  // read (2) + copy write (2) + cross-check reads (2) after the slot is
  // visible.
  NebFixture f(3, 3);
  f.start_all();
  std::map<ProcessId, std::vector<NebDelivery>> got;
  sim::Time first_delivery = 0;
  f.exec.spawn([](NonEquivBroadcast* neb) -> Task<void> {
    (void)co_await neb->broadcast(to_bytes("timed"));
  }(f.nebs[0].get()));
  f.exec.spawn([](Executor* e, NonEquivBroadcast* neb, sim::Time* at) -> Task<void> {
    (void)co_await neb->deliveries().recv();
    *at = e->now();
  }(&f.exec, f.nebs[1].get(), &first_delivery));
  f.exec.run(3000);
  // Broadcast write completes at 2; scan needs read+write+read ≥ 6 more.
  EXPECT_GE(first_delivery, 8u);
}

TEST(NonEquivBroadcast, Property2EquivocatorNeverSplitsCorrectProcesses) {
  // Byzantine p2 writes different validly-signed values for k=1 directly to
  // different memories. No two correct processes may deliver different
  // messages; with 2-of-3 read quorums seeing both values, typically nobody
  // delivers.
  NebFixture f(3, 3);
  std::map<ProcessId, std::vector<NebDelivery>> got;
  // Start only the correct processes' scanners (p2 is the attacker).
  f.nebs[0]->start();
  f.nebs[2]->start();

  const std::string slot = "neb/2/1/2";
  f.exec.spawn([](NebFixture* f, const std::string slot) -> Task<void> {
    for (std::size_t i = 0; i < f->iface.size(); ++i) {
      const Bytes msg = to_bytes("equiv-" + std::to_string(i));
      const crypto::Signature sig = f->signers[1].sign(neb_signing_bytes(1, msg));
      (void)co_await f->iface[i]->write(2, f->regions.at(2), slot,
                                        encode_neb_slot(1, msg, sig));
    }
  }(&f, slot));

  for (ProcessId p : {ProcessId{1}, ProcessId{3}}) {
    f.exec.spawn([](NonEquivBroadcast* neb,
                    std::vector<NebDelivery>* sink) -> Task<void> {
      while (true) sink->push_back(co_await neb->deliveries().recv());
    }(f.nebs[p - 1].get(), &got[p]));
  }
  f.exec.run(1500);

  // Property 2: if both delivered, the messages must match.
  if (!got[1].empty() && !got[3].empty()) {
    EXPECT_EQ(to_string(got[1][0].message), to_string(got[3][0].message));
  }
}

TEST(NonEquivBroadcast, InvalidSignatureNeverDelivers) {
  NebFixture f(3, 3);
  f.nebs[0]->start();
  f.nebs[2]->start();
  // p2 writes a slot signed with the *wrong* key binding (signs as itself
  // but over different bytes).
  f.exec.spawn([](NebFixture* f) -> Task<void> {
    const Bytes msg = to_bytes("forged");
    const crypto::Signature sig = f->signers[1].sign(to_bytes("not the msg"));
    (void)co_await f->iface[0]->write(2, f->regions.at(2), "neb/2/1/2",
                                      encode_neb_slot(1, msg, sig));
  }(&f));
  std::map<ProcessId, std::vector<NebDelivery>> got;
  for (ProcessId p : {ProcessId{1}, ProcessId{3}}) {
    f.exec.spawn([](NonEquivBroadcast* neb,
                    std::vector<NebDelivery>* sink) -> Task<void> {
      while (true) sink->push_back(co_await neb->deliveries().recv());
    }(f.nebs[p - 1].get(), &got[p]));
  }
  f.exec.run(800);
  EXPECT_TRUE(got[1].empty());
  EXPECT_TRUE(got[3].empty());
}

TEST(NonEquivBroadcast, ToleratesMemoryCrashMinority) {
  NebFixture f(3, 3);
  f.memories[1]->crash();
  f.start_all();
  std::map<ProcessId, std::vector<NebDelivery>> got;
  f.exec.spawn([](NonEquivBroadcast* neb) -> Task<void> {
    (void)co_await neb->broadcast(to_bytes("resilient"));
  }(f.nebs[2].get()));
  f.collect(got, 3);
  for (ProcessId p : all_processes(3)) {
    ASSERT_EQ(got[p].size(), 1u);
    EXPECT_EQ(to_string(got[p][0].message), "resilient");
  }
}

TEST(NonEquivBroadcast, TryDeliverReturnsFalseOnEmptySlot) {
  NebFixture f(3, 3);
  bool result = true;
  f.exec.spawn([](NonEquivBroadcast* neb, bool* out) -> Task<void> {
    *out = co_await neb->try_deliver(2);
  }(f.nebs[0].get(), &result));
  f.exec.run(100);
  EXPECT_FALSE(result);
}

}  // namespace
}  // namespace mnm::core
