// Tests for the virtual-time coroutine simulator (src/sim).

#include <gtest/gtest.h>

#include <optional>
#include <string>
#include <vector>

#include "src/sim/channel.hpp"
#include "src/sim/executor.hpp"
#include "src/sim/rng.hpp"
#include "src/sim/sync.hpp"
#include "src/sim/task.hpp"

namespace mnm::sim {
namespace {

TEST(Executor, StartsAtTimeZero) {
  Executor exec;
  EXPECT_EQ(exec.now(), 0u);
}

TEST(Executor, RunsCallbacksInTimeOrder) {
  Executor exec;
  std::vector<int> order;
  exec.call_at(5, [&] { order.push_back(5); });
  exec.call_at(1, [&] { order.push_back(1); });
  exec.call_at(3, [&] { order.push_back(3); });
  exec.run();
  EXPECT_EQ(order, (std::vector<int>{1, 3, 5}));
  EXPECT_EQ(exec.now(), 5u);
}

TEST(Executor, TiesBreakByInsertionOrder) {
  Executor exec;
  std::vector<int> order;
  exec.call_at(2, [&] { order.push_back(0); });
  exec.call_at(2, [&] { order.push_back(1); });
  exec.call_at(2, [&] { order.push_back(2); });
  exec.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(Executor, CancelledTimerDoesNotFire) {
  Executor exec;
  bool fired = false;
  TimerHandle h = exec.call_at(3, [&] { fired = true; });
  h.cancel();
  exec.run();
  EXPECT_FALSE(fired);
}

TEST(Executor, RunUntilStopsAtHorizon) {
  Executor exec;
  int fired = 0;
  exec.call_at(1, [&] { ++fired; });
  exec.call_at(10, [&] { ++fired; });
  exec.run(/*until=*/5);
  EXPECT_EQ(fired, 1);
  exec.run();
  EXPECT_EQ(fired, 2);
}

TEST(Executor, RunUntilPredicate) {
  Executor exec;
  int counter = 0;
  for (Time t = 1; t <= 10; ++t) exec.call_at(t, [&] { ++counter; });
  const bool reached = exec.run_until([&] { return counter == 4; });
  EXPECT_TRUE(reached);
  EXPECT_EQ(counter, 4);
  EXPECT_EQ(exec.now(), 4u);
}

TEST(Task, SleepAdvancesVirtualTime) {
  Executor exec;
  Time woke_at = 0;
  exec.spawn([](Executor& e, Time& woke) -> Task<void> {
    co_await e.sleep(7);
    woke = e.now();
  }(exec, woke_at));
  exec.run();
  EXPECT_EQ(woke_at, 7u);
}

TEST(Task, NestedAwaitPropagatesValue) {
  Executor exec;
  int result = 0;

  auto inner = [](Executor& e) -> Task<int> {
    co_await e.sleep(2);
    co_return 21;
  };
  exec.spawn([](Executor& e, auto inner, int& result) -> Task<void> {
    const int a = co_await inner(e);
    const int b = co_await inner(e);
    result = a + b;
  }(exec, inner, result));

  exec.run();
  EXPECT_EQ(result, 42);
  EXPECT_EQ(exec.now(), 4u);
}

TEST(Task, ExceptionPropagatesAcrossAwait) {
  Executor exec;
  bool caught = false;

  auto thrower = [](Executor& e) -> Task<int> {
    co_await e.sleep(1);
    throw std::runtime_error("boom");
  };
  exec.spawn([](Executor& e, auto thrower, bool& caught) -> Task<void> {
    try {
      (void)co_await thrower(e);
    } catch (const std::runtime_error&) {
      caught = true;
    }
  }(exec, thrower, caught));

  exec.run();
  EXPECT_TRUE(caught);
}

TEST(Task, SuspendedRootsAreReapedSafelyAtTeardown) {
  // A coroutine suspended forever (awaiting a sleep beyond the horizon)
  // must be destroyed cleanly when the executor dies; ASAN would flag
  // leaks/double-frees here.
  auto exec = std::make_unique<Executor>();
  exec->spawn([](Executor& e) -> Task<void> {
    co_await e.sleep(kTimeInfinity - 1);
  }(*exec));
  exec->run(/*until=*/10);
  EXPECT_EQ(exec->live_roots(), 1u);
  exec.reset();  // must not crash or leak
}

TEST(Channel, SendBeforeRecvIsQueued) {
  Executor exec;
  Channel<int> ch(exec);
  ch.send(1);
  ch.send(2);
  std::vector<int> got;
  exec.spawn([](Channel<int>& ch, std::vector<int>& got) -> Task<void> {
    got.push_back(co_await ch.recv());
    got.push_back(co_await ch.recv());
  }(ch, got));
  exec.run();
  EXPECT_EQ(got, (std::vector<int>{1, 2}));
}

TEST(Channel, RecvBlocksUntilSend) {
  Executor exec;
  Channel<std::string> ch(exec);
  std::string got;
  Time when = 0;
  exec.spawn([](Executor& e, Channel<std::string>& ch, std::string& got,
                Time& when) -> Task<void> {
    got = co_await ch.recv();
    when = e.now();
  }(exec, ch, got, when));
  exec.call_at(9, [&] { ch.send("hello"); });
  exec.run();
  EXPECT_EQ(got, "hello");
  EXPECT_EQ(when, 9u);
}

TEST(Channel, RecvUntilTimesOut) {
  Executor exec;
  Channel<int> ch(exec);
  std::optional<int> got = 123;
  exec.spawn([](Channel<int>& ch, std::optional<int>& got) -> Task<void> {
    got = co_await ch.recv_until(5);
  }(ch, got));
  exec.run();
  EXPECT_EQ(got, std::nullopt);
  EXPECT_EQ(exec.now(), 5u);
}

TEST(Channel, RecvUntilDeliversValueBeforeDeadline) {
  Executor exec;
  Channel<int> ch(exec);
  std::optional<int> got;
  exec.spawn([](Channel<int>& ch, std::optional<int>& got) -> Task<void> {
    got = co_await ch.recv_until(100);
  }(ch, got));
  exec.call_at(3, [&] { ch.send(77); });
  exec.run();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, 77);
  EXPECT_EQ(exec.now(), 3u);
}

TEST(Channel, TimedOutWaiterDoesNotStealLaterValue) {
  Executor exec;
  Channel<int> ch(exec);
  std::optional<int> first;
  int second = 0;

  exec.spawn([](Channel<int>& ch, std::optional<int>& first) -> Task<void> {
    first = co_await ch.recv_until(2);
  }(ch, first));
  exec.spawn([](Channel<int>& ch, int& second) -> Task<void> {
    second = co_await ch.recv();
  }(ch, second));
  exec.call_at(10, [&] { ch.send(5); });

  exec.run();
  EXPECT_EQ(first, std::nullopt);
  EXPECT_EQ(second, 5);
}

TEST(Channel, MultipleWaitersServedFifo) {
  Executor exec;
  Channel<int> ch(exec);
  std::vector<std::pair<int, int>> got;  // (waiter, value)
  for (int i = 0; i < 3; ++i) {
    exec.spawn([](Channel<int>& ch, std::vector<std::pair<int, int>>& got,
                  int idx) -> Task<void> {
      const int v = co_await ch.recv();
      got.emplace_back(idx, v);
    }(ch, got, i));
  }
  exec.call_at(1, [&] {
    ch.send(10);
    ch.send(20);
    ch.send(30);
  });
  exec.run();
  ASSERT_EQ(got.size(), 3u);
  EXPECT_EQ(got[0], (std::pair<int, int>{0, 10}));
  EXPECT_EQ(got[1], (std::pair<int, int>{1, 20}));
  EXPECT_EQ(got[2], (std::pair<int, int>{2, 30}));
}

TEST(Gate, OpenWakesAllWaiters) {
  Executor exec;
  Gate gate(exec);
  int woken = 0;
  for (int i = 0; i < 4; ++i) {
    exec.spawn([](Gate& g, int& woken) -> Task<void> {
      co_await g.wait();
      ++woken;
    }(gate, woken));
  }
  exec.call_at(6, [&] { gate.open(); });
  exec.run();
  EXPECT_EQ(woken, 4);
  EXPECT_TRUE(gate.is_open());
}

TEST(Gate, WaitAfterOpenReturnsImmediately) {
  Executor exec;
  Gate gate(exec);
  gate.open();
  Time when = 99;
  exec.spawn([](Executor& e, Gate& g, Time& when) -> Task<void> {
    co_await g.wait();
    when = e.now();
  }(exec, gate, when));
  exec.run();
  EXPECT_EQ(when, 0u);
}

TEST(Latch, WaitForThreshold) {
  Executor exec;
  Latch latch(exec);
  Time majority_at = 0;
  Time all_at = 0;
  exec.spawn([](Executor& e, Latch& l, Time& t) -> Task<void> {
    co_await l.wait_for(2);
    t = e.now();
  }(exec, latch, majority_at));
  exec.spawn([](Executor& e, Latch& l, Time& t) -> Task<void> {
    co_await l.wait_for(3);
    t = e.now();
  }(exec, latch, all_at));

  exec.call_at(1, [&] { latch.arrive(); });
  exec.call_at(4, [&] { latch.arrive(); });
  exec.call_at(9, [&] { latch.arrive(); });
  exec.run();
  EXPECT_EQ(majority_at, 4u);
  EXPECT_EQ(all_at, 9u);
}

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == b.next()) ++equal;
  }
  EXPECT_LT(equal, 4);
}

TEST(Rng, BelowStaysInRange) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(r.below(13), 13u);
    const auto v = r.range(5, 9);
    EXPECT_GE(v, 5u);
    EXPECT_LE(v, 9u);
  }
}


// --- Allocation-free event loop: determinism and pooling contracts. ---

/// The (time, seq) ordering contract, exercised through a mixed schedule of
/// cancellable and non-cancellable events. The trace is compared against a
/// golden order (insertion order within a timestamp, timestamps ascending),
/// which pins the pre-pool scheduling semantics bit-for-bit.
TEST(Executor, MixedScheduleTraceIsDeterministic) {
  auto run_trace = []() {
    Executor exec;
    std::vector<int> trace;
    exec.schedule_at(5, [&] { trace.push_back(1); });
    exec.call_at(2, [&] { trace.push_back(2); });
    exec.schedule_at(2, [&] { trace.push_back(3); });
    TimerHandle cancelled = exec.call_at(3, [&] { trace.push_back(99); });
    exec.schedule_at(5, [&] { trace.push_back(4); });
    exec.call_after(1, [&] { trace.push_back(5); });
    cancelled.cancel();
    exec.run();
    return trace;
  };
  const std::vector<int> expected{5, 2, 3, 1, 4};
  EXPECT_EQ(run_trace(), expected);
  EXPECT_EQ(run_trace(), run_trace());
}

/// Events scheduled from inside a callback at the current instant run after
/// everything already queued for that instant (the yield() contract).
TEST(Executor, SameInstantInsertionKeepsFifoOrder) {
  Executor exec;
  std::vector<int> trace;
  exec.schedule_at(1, [&] {
    trace.push_back(1);
    exec.schedule_at(1, [&] { trace.push_back(3); });
  });
  exec.schedule_at(1, [&] { trace.push_back(2); });
  exec.run();
  EXPECT_EQ(trace, (std::vector<int>{1, 2, 3}));
}

/// Cancel cells are recycled through the free list: a handle from a fired
/// timer goes stale and cannot cancel the timer that reused its cell.
TEST(Executor, StaleTimerHandleCannotCancelRecycledCell) {
  Executor exec;
  int fired = 0;
  TimerHandle first = exec.call_at(1, [&] { ++fired; });
  EXPECT_TRUE(first.valid());
  exec.run();
  EXPECT_EQ(fired, 1);
  EXPECT_FALSE(first.valid());  // cell retired, generation bumped

  // The next cancellable timer reuses the pooled cell; the stale handle
  // must not be able to touch it.
  TimerHandle second = exec.call_at(2, [&] { ++fired; });
  first.cancel();  // no-op: generation mismatch
  EXPECT_TRUE(second.valid());
  exec.run();
  EXPECT_EQ(fired, 2);
}

/// sleep()/yield() carry no cancel state at all; a long mixed workload must
/// not grow the cancel-cell pool beyond the cancellable timers in flight.
TEST(Executor, SleepAndYieldScheduleWithoutCancelCells) {
  Executor exec;
  int wakes = 0;
  auto sleeper = [](Executor* e, int* w) -> Task<void> {
    for (int i = 0; i < 100; ++i) {
      co_await e->sleep(1);
      co_await e->yield();
      ++*w;
    }
  };
  exec.spawn(sleeper(&exec, &wakes));
  exec.run();
  EXPECT_EQ(wakes, 100);
}

/// Channel fast path: a queued value is consumed without suspending (and
/// without allocating a waiter node — observable as no extra resume event).
TEST(Channel, ReadyValueConsumedWithoutExtraEvent) {
  Executor exec;
  Channel<int> ch(exec);
  ch.send(7);
  std::optional<int> got;
  auto reader = [](Channel<int>* c, std::optional<int>* out) -> Task<void> {
    *out = co_await c->recv();
  };
  exec.spawn(reader(&ch, &got));
  exec.run();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, 7);
}

}  // namespace
}  // namespace mnm::sim
