// smr::Tuner unit tests: the cost model's monotonicity, the greedy step's
// clamping and direction, config repair, epoch cadence, and the
// determinism of the adaptation trajectory given an identical feed.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "src/smr/tuner.hpp"

namespace mnm::smr {
namespace {

TunerConfig enabled_config() {
  TunerConfig c;
  c.enabled = true;
  return c;
}

// ---------------------------------------------------------------------------
// Cost model.
// ---------------------------------------------------------------------------

TEST(TunerCostModel, DrainNonincreasingInWindowAndBatch) {
  const std::uint64_t depth = 1000;
  const sim::Time service = 4;
  for (std::size_t w = 1; w <= 32; w *= 2) {
    for (std::size_t b = 1; b <= 32; b *= 2) {
      EXPECT_GE(Tuner::queue_drain(depth, w, b, service),
                Tuner::queue_drain(depth, w * 2, b, service))
          << "w=" << w << " b=" << b;
      EXPECT_GE(Tuner::queue_drain(depth, w, b, service),
                Tuner::queue_drain(depth, w, b * 2, service))
          << "w=" << w << " b=" << b;
    }
  }
}

TEST(TunerCostModel, DrainNondecreasingInDepthAndService) {
  for (std::uint64_t depth = 0; depth <= 512; depth += 64) {
    EXPECT_LE(Tuner::queue_drain(depth, 4, 4, 3),
              Tuner::queue_drain(depth + 64, 4, 4, 3));
  }
  for (sim::Time service = 1; service <= 64; service *= 2) {
    EXPECT_LE(Tuner::queue_drain(100, 4, 4, service),
              Tuner::queue_drain(100, 4, 4, service * 2));
  }
}

TEST(TunerCostModel, DrainExactValues) {
  // ceil(depth / (w*b)) * service.
  EXPECT_EQ(Tuner::queue_drain(0, 4, 4, 10), 0u);
  EXPECT_EQ(Tuner::queue_drain(1, 4, 4, 10), 10u);
  EXPECT_EQ(Tuner::queue_drain(16, 4, 4, 10), 10u);
  EXPECT_EQ(Tuner::queue_drain(17, 4, 4, 10), 20u);
  // Degenerate knobs are lifted to 1, not divided by zero.
  EXPECT_EQ(Tuner::queue_drain(3, 0, 0, 5), 15u);
}

// ---------------------------------------------------------------------------
// Config repair.
// ---------------------------------------------------------------------------

TEST(TunerConfigRepair, ZerosAndInvertedBoundsAreRepaired) {
  TunerConfig c = enabled_config();
  c.window = 0;  // lifted to min
  c.batch = 0;
  c.min_window = 0;  // lifted to 1
  c.min_batch = 0;
  c.epoch_slots = 0;  // lifted to 1
  const Tuner t(c);
  EXPECT_GE(t.window(), 1u);
  EXPECT_GE(t.batch(), 1u);
  EXPECT_EQ(t.config().min_window, 1u);
  EXPECT_EQ(t.config().epoch_slots, 1u);
}

TEST(TunerConfigRepair, InvertedRangeSwapsAndInitialClamps) {
  TunerConfig c = enabled_config();
  c.min_window = 16;  // inverted: swapped to [2, 16]
  c.max_window = 2;
  c.window = 64;  // clamped into the repaired range
  c.min_batch = 8;
  c.max_batch = 2;
  c.batch = 1;
  const Tuner t(c);
  EXPECT_EQ(t.config().min_window, 2u);
  EXPECT_EQ(t.config().max_window, 16u);
  EXPECT_EQ(t.window(), 16u);
  EXPECT_EQ(t.config().min_batch, 2u);
  EXPECT_EQ(t.config().max_batch, 8u);
  EXPECT_EQ(t.batch(), 2u);
}

// ---------------------------------------------------------------------------
// Greedy step.
// ---------------------------------------------------------------------------

/// Feed `n` observations of a heavily queued pipeline (wait and backlog far
/// above the service time).
void feed_saturated(Tuner& t, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    t.observe(/*wait=*/50, /*service=*/2, /*queue_cmds=*/500,
              /*in_flight=*/t.window(), /*slot_cmds=*/t.batch());
  }
}

/// Feed `n` observations of an idle pipeline (no wait, no backlog, barely
/// occupied window, single-command slots).
void feed_idle(Tuner& t, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    t.observe(/*wait=*/0, /*service=*/2, /*queue_cmds=*/0,
              /*in_flight=*/1, /*slot_cmds=*/1);
  }
}

TEST(TunerStep, SaturationGrowsCapacityWithinBounds) {
  TunerConfig c = enabled_config();
  c.window = 1;
  c.batch = 1;
  c.max_window = 16;
  c.max_batch = 8;
  Tuner t(c);
  const std::size_t start = t.window() * t.batch();
  feed_saturated(t, c.epoch_slots);
  EXPECT_GT(t.window() * t.batch(), start)
      << "a saturated epoch must grow capacity";
  // However long the pressure lasts, the bounds hold.
  for (int e = 0; e < 50; ++e) feed_saturated(t, c.epoch_slots);
  EXPECT_LE(t.window(), c.max_window);
  EXPECT_LE(t.batch(), c.max_batch);
  EXPECT_EQ(t.window(), c.max_window) << "sustained saturation reaches the cap";
  EXPECT_EQ(t.batch(), c.max_batch);
}

TEST(TunerStep, MildSaturationGrowsSmallerKnobFirst) {
  TunerConfig c = enabled_config();
  c.window = 1;
  c.batch = 4;
  Tuner t(c);
  // Backlog worth exactly two rounds (drain == 2·service): saturated, but
  // not deep enough for the double-both fast path.
  for (std::size_t i = 0; i < c.epoch_slots; ++i) {
    t.observe(/*wait=*/0, /*service=*/4, /*queue_cmds=*/6,
              /*in_flight=*/1, /*slot_cmds=*/4);
  }
  EXPECT_EQ(t.window(), 2u) << "window (smaller knob) must double first";
  EXPECT_EQ(t.batch(), 4u);
}

TEST(TunerStep, DeepBacklogDoublesBothKnobs) {
  TunerConfig c = enabled_config();
  c.window = 2;
  c.batch = 2;
  Tuner t(c);
  // drain = ceil(500/4)·2 = 250, far past 2·service: both knobs double.
  feed_saturated(t, c.epoch_slots);
  EXPECT_EQ(t.window(), 4u);
  EXPECT_EQ(t.batch(), 4u);
}

TEST(TunerStep, IdleShrinksTowardPeakNeverBelowMin) {
  TunerConfig c = enabled_config();
  c.window = 16;
  c.batch = 8;
  c.max_window = 16;
  c.min_window = 2;
  Tuner t(c);
  feed_idle(t, c.epoch_slots);
  EXPECT_LT(t.window(), 16u) << "an idle epoch must shrink the window";
  for (int e = 0; e < 50; ++e) feed_idle(t, c.epoch_slots);
  EXPECT_GE(t.window(), c.min_window);
  EXPECT_GE(t.batch(), c.min_batch);
}

TEST(TunerStep, ConvergedPipelineHolds) {
  // Wait at zero but a backlog worth exactly one round: neither saturated
  // (drain == service) nor idle (queue nonempty) — settings must not move.
  TunerConfig c = enabled_config();
  c.window = 4;
  c.batch = 4;
  Tuner t(c);
  for (std::size_t i = 0; i < c.epoch_slots; ++i) {
    t.observe(/*wait=*/0, /*service=*/4, /*queue_cmds=*/8,
              /*in_flight=*/4, /*slot_cmds=*/4);
  }
  EXPECT_EQ(t.trajectory().size(), 1u);
  EXPECT_EQ(t.window(), 4u);
  EXPECT_EQ(t.batch(), 4u);
}

TEST(TunerStep, EpochCadenceGatesDecisions) {
  TunerConfig c = enabled_config();
  c.epoch_slots = 8;
  Tuner t(c);
  feed_saturated(t, 7);
  EXPECT_TRUE(t.trajectory().empty()) << "no decision before a full epoch";
  EXPECT_EQ(t.window(), c.window);
  feed_saturated(t, 1);
  EXPECT_EQ(t.trajectory().size(), 1u);
  EXPECT_EQ(t.observations(), 8u);
}

TEST(TunerStep, DisabledTunerIgnoresObservations) {
  TunerConfig c;  // enabled = false
  c.window = 4;
  c.batch = 4;
  Tuner t(c);
  for (int i = 0; i < 100; ++i) {
    t.observe(/*wait=*/50, /*service=*/2, /*queue_cmds=*/500, 4, 4);
  }
  EXPECT_EQ(t.observations(), 0u);
  EXPECT_TRUE(t.trajectory().empty());
  EXPECT_EQ(t.window(), 4u);
  EXPECT_EQ(t.batch(), 4u);
}

// ---------------------------------------------------------------------------
// Determinism.
// ---------------------------------------------------------------------------

TEST(TunerDeterminism, IdenticalFeedIdenticalTrajectory) {
  const auto run = [] {
    Tuner t(enabled_config());
    feed_saturated(t, 8);
    feed_idle(t, 8);
    feed_saturated(t, 4);
    feed_idle(t, 12);
    return t.trajectory_fingerprint();
  };
  const std::string a = run();
  const std::string b = run();
  EXPECT_EQ(a, b);
  EXPECT_NE(a.find("w"), std::string::npos);
}

TEST(TunerDeterminism, FingerprintEncodesEveryEpoch) {
  TunerConfig c = enabled_config();
  c.window = 2;
  c.batch = 2;
  Tuner t(c);
  feed_saturated(t, c.epoch_slots * 3);
  EXPECT_EQ(t.trajectory().size(), 3u);
  const std::string fp = t.trajectory_fingerprint();
  // Final settings up front, then one ">at:wXbY" per epoch.
  EXPECT_EQ(static_cast<std::size_t>(
                std::count(fp.begin(), fp.end(), '>')),
            3u)
      << fp;
}

}  // namespace
}  // namespace mnm::smr
