// smr::Log / smr::Replica: pipelined replication invariants.
//
// Unit level: the Log's in-order apply over a scripted engine that decides
// slots out of order (the engine API makes the Log testable without any
// network). Cluster level (through harness SMR mode): pipelined logs under
// leader crash mid-window converge, ≥64 slots flow over a single shared
// transport per replica, batching packs commands, Byzantine plans apply to
// multi-slot runs, and the report carries commit-latency percentiles.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/core/engine.hpp"
#include "src/core/omega.hpp"
#include "src/harness/cluster.hpp"
#include "src/sim/executor.hpp"
#include "src/smr/replica.hpp"
#include "src/util/serde.hpp"

namespace mnm {
namespace {

using harness::Algorithm;
using harness::ClusterConfig;
using harness::RunReport;
using util::to_bytes;
using util::to_string;

/// Test double: decisions are injected by the test, in any order.
struct ScriptedEngine : core::ConsensusEngine {
  explicit ScriptedEngine(sim::Executor& exec) : ConsensusEngine(exec) {}

  ProcessId self() const override { return 1; }
  std::size_t process_count() const override { return 1; }
  void start() override {}
  void open_slot(Slot s) override { note_slot(s); }
  sim::Task<core::Decision> propose(Slot, Bytes) override {
    throw std::logic_error("scripted engine: propose not scripted");
  }

  void inject(Slot s, const std::vector<Bytes>& commands, sim::Time at) {
    push_decision(s, core::Decision{smr::encode_batch(commands), false, at});
  }
  void inject_raw(Slot s, Bytes value) {
    push_decision(s, core::Decision{std::move(value), false, 0});
  }
};

struct RecordingSm : smr::StateMachine {
  std::vector<std::pair<Slot, std::string>> applied;
  void apply(Slot slot, util::ByteView command) override {
    applied.emplace_back(slot, to_string(command));
  }
};

TEST(SmrLog, OutOfOrderDecisionsApplyInSlotOrder) {
  sim::Executor exec;
  // Ω trusts someone else: the pump stays passive, decisions are scripted.
  core::Omega omega = core::Omega::fixed(exec, 2);
  ScriptedEngine engine(exec);
  RecordingSm sm;
  smr::Log log(exec, engine, omega, sm, smr::LogConfig{});
  log.start();

  engine.inject(2, {to_bytes("c2")}, 10);
  engine.inject(0, {to_bytes("c0a"), to_bytes("c0b")}, 11);
  exec.run_until([&] { return log.applied_len() == 2; }, 1000);
  // Slot 1 is missing: 2 stays stashed after 0 applies... 0 applies alone.
  EXPECT_EQ(log.applied_len(), 1u);
  ASSERT_EQ(sm.applied.size(), 2u);
  EXPECT_EQ(sm.applied[0], (std::pair<Slot, std::string>{0, "c0a"}));
  EXPECT_EQ(sm.applied[1], (std::pair<Slot, std::string>{0, "c0b"}));

  engine.inject(1, {to_bytes("c1")}, 12);
  exec.run_until([&] { return log.applied_len() == 3; }, 1000);
  EXPECT_EQ(log.applied_len(), 3u);
  ASSERT_EQ(sm.applied.size(), 4u);
  EXPECT_EQ(sm.applied[2], (std::pair<Slot, std::string>{1, "c1"}));
  EXPECT_EQ(sm.applied[3], (std::pair<Slot, std::string>{2, "c2"}));
  // Record bookkeeping followed the decisions.
  EXPECT_EQ(log.records()[2].commands, 1u);
  EXPECT_EQ(log.records()[2].decided_at, 10u);
}

TEST(SmrLog, EmptyAndGarbageBatchesApplyAsNoops) {
  sim::Executor exec;
  core::Omega omega = core::Omega::fixed(exec, 2);
  ScriptedEngine engine(exec);
  RecordingSm sm;
  smr::Log log(exec, engine, omega, sm, smr::LogConfig{});
  log.start();

  engine.inject(0, {}, 1);  // explicit no-op filler
  // A Byzantine proposer can win a slot with bytes that are not a batch.
  engine.inject_raw(1, to_bytes("\xde\xad"));
  exec.run_until([&] { return log.applied_len() == 2; }, 1000);
  EXPECT_EQ(log.applied_len(), 2u);
  EXPECT_TRUE(sm.applied.empty());
  EXPECT_TRUE(log.records()[0].noop);
  EXPECT_TRUE(log.records()[1].noop);
}

TEST(SmrBatchCodec, RoundTrip) {
  const std::vector<Bytes> cmds = {to_bytes("a"), to_bytes("bb"), Bytes{}};
  const auto decoded = smr::decode_batch(smr::encode_batch(cmds));
  EXPECT_EQ(decoded, cmds);
  EXPECT_TRUE(smr::decode_batch(to_bytes("garbage")).empty());
  EXPECT_TRUE(smr::decode_batch(smr::encode_batch({})).empty());
}

// ---------------------------------------------------------------------------
// Cluster-level SMR invariants (harness SMR mode).
// ---------------------------------------------------------------------------

ClusterConfig smr_config(Algorithm algo, std::size_t n, std::size_t m,
                         std::size_t commands, std::size_t batch,
                         std::size_t window) {
  ClusterConfig c;
  c.algo = algo;
  c.n = n;
  c.m = m;
  c.smr.enabled = true;
  c.smr.commands = commands;
  c.smr.batch = batch;
  c.smr.window = window;
  return c;
}

TEST(SmrCluster, LeaderCrashMidWindowLogsConverge) {
  ClusterConfig c = smr_config(Algorithm::kFastPaxos, 3, 0, 24, 2, 4);
  c.faults.process_crashes[1] = 6;  // several slots in flight at the crash
  const RunReport r = harness::run_cluster(c);
  EXPECT_TRUE(r.all_ok()) << r.summary();
  // Survivors hold identical logs and committed the new leader's workload.
  EXPECT_EQ(r.processes[1].log, r.processes[2].log);
  EXPECT_GE(r.slots_applied, 12u) << r.summary();
  // The crashed ex-leader's applied prefix is a prefix of the survivors'.
  const auto& dead = r.processes[0].log;
  const auto& live = r.processes[1].log;
  ASSERT_LE(dead.size(), live.size());
  EXPECT_TRUE(std::equal(dead.begin(), dead.end(), live.begin()))
      << "crashed replica's log diverged from the survivors' prefix";
}

TEST(SmrCluster, SixtyFourSlotsOverOneTransportPerReplica) {
  const RunReport r =
      harness::run_cluster(smr_config(Algorithm::kFastPaxos, 3, 0, 64, 1, 16));
  EXPECT_TRUE(r.all_ok()) << r.summary();
  EXPECT_EQ(r.slots_applied, 64u);
  EXPECT_EQ(r.commands_applied, 64u);
  EXPECT_GT(r.fast_slots, 0u);
}

TEST(SmrCluster, BatchingPacksManyCommandsPerSlot) {
  const RunReport r =
      harness::run_cluster(smr_config(Algorithm::kFastPaxos, 3, 0, 32, 8, 4));
  EXPECT_TRUE(r.all_ok()) << r.summary();
  EXPECT_EQ(r.slots_applied, 4u);  // 32 commands / 8 per batch
  EXPECT_EQ(r.commands_applied, 32u);
}

TEST(SmrCluster, DeepWindowBeatsSerialOnVirtualTime) {
  const RunReport serial =
      harness::run_cluster(smr_config(Algorithm::kFastPaxos, 3, 0, 32, 1, 1));
  const RunReport piped =
      harness::run_cluster(smr_config(Algorithm::kFastPaxos, 3, 0, 32, 1, 8));
  ASSERT_TRUE(serial.all_ok() && piped.all_ok());
  // Same #slots, strictly earlier completion with the window open.
  EXPECT_EQ(serial.slots_applied, piped.slots_applied);
  EXPECT_LT(piped.processes[0].decided_at, serial.processes[0].decided_at);
}

TEST(SmrCluster, MemoryEnginesReplicateLogs) {
  for (const Algorithm algo :
       {Algorithm::kDiskPaxos, Algorithm::kProtectedMemoryPaxos,
        Algorithm::kAlignedPaxos}) {
    const std::size_t n = algo == Algorithm::kAlignedPaxos ? 3 : 2;
    const RunReport r = harness::run_cluster(smr_config(algo, n, 3, 8, 2, 4));
    EXPECT_TRUE(r.all_ok()) << harness::algorithm_name(algo) << ": "
                            << r.summary();
    EXPECT_EQ(r.slots_applied, 4u) << harness::algorithm_name(algo);
  }
}

TEST(SmrCluster, FastRobustAllProposeCommitsFastPath) {
  const RunReport r =
      harness::run_cluster(smr_config(Algorithm::kFastRobust, 3, 3, 4, 2, 2));
  EXPECT_TRUE(r.all_ok()) << r.summary();
  EXPECT_EQ(r.slots_applied, 2u);
  EXPECT_EQ(r.fast_slots, 2u) << "honest synchronous run must stay fast";
}

TEST(SmrCluster, FastRobustByzantineLeaderCannotForkTheLog) {
  ClusterConfig c = smr_config(Algorithm::kFastRobust, 3, 3, 4, 2, 2);
  c.faults.byzantine[1] = harness::ByzantineStrategy::kCqLeaderEquivocate;
  const RunReport r = harness::run_cluster(c);
  EXPECT_TRUE(r.agreement) << r.summary();
  EXPECT_TRUE(r.termination) << r.summary();
  EXPECT_EQ(r.processes[1].log, r.processes[2].log);
}

TEST(SmrCluster, ReportCarriesCommitPercentiles) {
  const RunReport r =
      harness::run_cluster(smr_config(Algorithm::kFastPaxos, 3, 0, 32, 2, 4));
  ASSERT_TRUE(r.all_ok()) << r.summary();
  EXPECT_GT(r.commit_p50, 0u);
  EXPECT_GE(r.commit_p99, r.commit_p50);
  EXPECT_GT(r.events_per_slot, 0.0);
}

TEST(SmrCluster, ReportCarriesQueueWaitAndOccupancy) {
  // A narrow window over a big workload: commands must wait behind the
  // window (queue-wait > 0), and launches must see a busy window.
  const RunReport r =
      harness::run_cluster(smr_config(Algorithm::kFastPaxos, 3, 0, 64, 2, 2));
  ASSERT_TRUE(r.all_ok()) << r.summary();
  EXPECT_GT(r.queue_wait_p99, 0u) << r.summary();
  EXPECT_GE(r.queue_wait_p99, r.queue_wait_p50);
  EXPECT_GT(r.occupancy_limit, 0u);
  EXPECT_GT(r.window_occupancy, 0.0);
  EXPECT_LE(r.window_occupancy, 1.0 + 1e-9) << r.summary();
}

// ---------------------------------------------------------------------------
// Config validation edges (the documented clamp rules).
// ---------------------------------------------------------------------------

TEST(SmrCluster, ZeroWindowAndBatchAreClampedNotStuck) {
  // window=0 used to stall the pump silently and batch=0 grew the open
  // batch without bound; both now clamp to 1 and the run completes.
  ClusterConfig c = smr_config(Algorithm::kFastPaxos, 3, 0, 8, 0, 0);
  const RunReport r = harness::run_cluster(c);
  EXPECT_TRUE(r.all_ok()) << r.summary();
  // Leader-driven mode commits the leader's workload (one command per slot
  // at the clamped batch of 1).
  EXPECT_EQ(r.commands_applied, 8u) << r.summary();
  EXPECT_EQ(r.slots_applied, 8u) << r.summary();
}

TEST(SmrCluster, WindowWiderThanSlotTargetIsHarmless) {
  // all_propose with fixed_slots < window: the window is simply never
  // filled; every slot still commits on every correct replica.
  const RunReport r =
      harness::run_cluster(smr_config(Algorithm::kFastRobust, 3, 3, 4, 2, 64));
  EXPECT_TRUE(r.all_ok()) << r.summary();
  // fixed_slots = 4 commands / batch 2 = 2 slots, each won by one replica's
  // candidate batch.
  EXPECT_EQ(r.slots_applied, 2u) << r.summary();
  EXPECT_EQ(r.commands_applied, 4u) << r.summary();
}

// ---------------------------------------------------------------------------
// Auto-tuning (smr::Tuner through the harness).
// ---------------------------------------------------------------------------

TEST(SmrCluster, AutoTuneGrowsCapacityUnderBacklogWithinBounds) {
  // Start from the worst fixed config (serial, single-command slots) with a
  // large backlog: the controller must detect saturation and grow, and the
  // run must finish markedly faster than the fixed w1/b1 run.
  ClusterConfig fixed = smr_config(Algorithm::kFastPaxos, 3, 0, 128, 1, 1);
  ClusterConfig tuned = fixed;
  tuned.smr.auto_tune = true;
  tuned.smr.max_window = 16;
  tuned.smr.max_batch = 8;
  const RunReport rf = harness::run_cluster(fixed);
  const RunReport rt = harness::run_cluster(tuned);
  ASSERT_TRUE(rf.all_ok()) << rf.summary();
  ASSERT_TRUE(rt.all_ok()) << rt.summary();
  EXPECT_EQ(rt.commands_applied, 128u) << rt.summary();
  EXPECT_GT(rt.tuner_epochs, 0u) << rt.summary();
  EXPECT_FALSE(rt.tuner_trajectory.empty());
  EXPECT_GT(rt.tuner_window * rt.tuner_batch, 1u)
      << "backlog must have grown capacity: " << rt.summary();
  EXPECT_LE(rt.tuner_window, tuned.smr.max_window);
  EXPECT_LE(rt.tuner_batch, tuned.smr.max_batch);
  ASSERT_GT(rt.slots_applied, 0u);
  EXPECT_LT(rt.slots_applied, rf.slots_applied)
      << "merged batches must commit the workload in fewer slots";
}

TEST(SmrCluster, AutoTuneIsForcedOffUnderAllPropose) {
  // Byzantine engines need lockstep queues; the tuner must not engage even
  // when asked for, and the run must stay correct.
  ClusterConfig c = smr_config(Algorithm::kFastRobust, 3, 3, 4, 2, 2);
  c.smr.auto_tune = true;
  const RunReport r = harness::run_cluster(c);
  EXPECT_TRUE(r.all_ok()) << r.summary();
  EXPECT_EQ(r.tuner_epochs, 0u);
  EXPECT_TRUE(r.tuner_trajectory.empty()) << r.tuner_trajectory;
}

// ---------------------------------------------------------------------------
// Recovery: snapshots, log compaction, crash-and-rejoin catch-up.
// ---------------------------------------------------------------------------

/// RecordingSm plus the snapshot/restore pair compaction requires (a machine
/// that returns an empty snapshot opts out of compaction entirely).
struct SnapshotSm : smr::StateMachine {
  std::vector<std::string> applied;
  void apply(Slot, util::ByteView command) override {
    applied.push_back(to_string(command));
  }
  Bytes snapshot() const override {
    util::Writer w(16);
    w.u32(static_cast<std::uint32_t>(applied.size()));
    for (const std::string& c : applied) w.str(c);
    return std::move(w).take();
  }
  bool restore(util::ByteView raw) override {
    try {
      util::Reader r(raw);
      const std::uint32_t count = r.u32();
      std::vector<std::string> out;
      out.reserve(std::min<std::size_t>(count, r.remaining() / 4));
      for (std::uint32_t i = 0; i < count; ++i) out.push_back(r.str());
      r.expect_end();
      applied = std::move(out);
      return true;
    } catch (const util::SerdeError&) {
      return false;
    }
  }
};

TEST(SmrLogRecovery, SnapshotCadenceCompactsWithoutLosingAccounting) {
  sim::Executor exec;
  core::Omega omega = core::Omega::fixed(exec, 2);
  ScriptedEngine engine(exec);
  SnapshotSm sm;
  smr::LogConfig lc;
  lc.snapshot_interval = 4;
  smr::Log log(exec, engine, omega, sm, lc);
  log.start();

  for (Slot s = 0; s < 10; ++s) {
    engine.inject(s, {to_bytes("c" + std::to_string(s))}, s + 1);
  }
  exec.run_until([&] { return log.applied_len() == 10; }, 1000);
  ASSERT_EQ(log.applied_len(), 10u);
  ASSERT_EQ(sm.applied.size(), 10u);

  // Two snapshot boundaries passed (slots 4 and 8): the applied prefix below
  // the last snapshot is gone, its stats folded — totals stay exact.
  EXPECT_GE(log.snapshots_taken(), 2u);
  EXPECT_EQ(log.records_base(), 8u);
  EXPECT_EQ(log.slots_truncated(), 8u);
  EXPECT_EQ(log.records().size(), 2u);
  std::uint64_t commands = log.compacted().commands;
  for (const auto& rec : log.records()) commands += rec.commands;
  EXPECT_EQ(commands, 10u);
  // The fold kept the compacted prefix's apply times; the live suffix is
  // at least as new.
  EXPECT_LE(log.compacted().last_apply_at, log.records().back().applied_at);
}

TEST(SmrLogRecovery, CompactionIsInvisibleToReplicaStats) {
  // Same scripted decisions with and without compaction: RunStats (and the
  // latency vectors the harness aggregates) must be byte-identical.
  const auto run = [](Slot interval) {
    auto exec = std::make_unique<sim::Executor>();
    core::Omega omega = core::Omega::fixed(*exec, 2);
    auto engine = std::make_unique<ScriptedEngine>(*exec);
    auto sm = std::make_unique<SnapshotSm>();
    smr::LogConfig lc;
    lc.snapshot_interval = interval;
    smr::Log log(*exec, *engine, omega, *sm, lc);
    log.start();
    for (Slot s = 0; s < 13; ++s) {
      engine->inject(s, {to_bytes("x" + std::to_string(s)),
                         to_bytes("y" + std::to_string(s))},
                     2 * s + 3);
    }
    exec->run_until([&] { return log.applied_len() == 13; }, 1000);
    EXPECT_EQ(log.applied_len(), 13u);
    std::uint64_t commands = log.compacted().commands;
    sim::Time last = log.compacted().last_apply_at;
    for (const auto& rec : log.records()) {
      commands += rec.commands;
      last = std::max(last, rec.applied_at);
    }
    return std::pair<std::uint64_t, sim::Time>{commands, last};
  };
  const auto plain = run(0);
  const auto compacted = run(5);
  EXPECT_EQ(plain, compacted);
}

TEST(SmrCluster, LeaderCrashAndRejoinCatchesUpAndConverges) {
  // p1 crashes mid-window, the cluster moves on under p2, and p1 rejoins
  // much later with wiped state: it must install a peer snapshot, replay the
  // retained suffix, and end bit-identical to the survivors — after which
  // it is the lowest-id correct process and takes leadership back.
  ClusterConfig c = smr_config(Algorithm::kFastPaxos, 3, 0, 24, 2, 4);
  c.smr.snapshot_interval = 4;
  c.faults.process_crashes[1] = 6;
  c.faults.process_rejoins[1] = 400;
  const RunReport r = harness::run_cluster(c);
  EXPECT_TRUE(r.all_ok()) << r.summary();
  EXPECT_EQ(r.processes[0].rejoined_at, 400u);
  // Full convergence — the rejoined replica too, not just the survivors.
  EXPECT_EQ(r.processes[0].log, r.processes[1].log);
  EXPECT_EQ(r.processes[1].log, r.processes[2].log);
  EXPECT_FALSE(r.processes[0].log.empty());
  EXPECT_GT(r.snapshots_taken, 0u) << r.summary();
  EXPECT_GE(r.snapshots_installed, 1u) << r.summary();
  EXPECT_GT(r.slots_truncated, 0u) << r.summary();
  EXPECT_GT(r.catchup_bytes, 0u) << r.summary();
}

TEST(SmrCluster, TwoReplicasRejoinFromDifferentSnapshotSlots) {
  // Two crashes at different depths of the same run: each rejoiner catches
  // up from whatever snapshot its serving peer holds at that moment — two
  // different base slots — and both must still converge.
  ClusterConfig c = smr_config(Algorithm::kFastPaxos, 5, 0, 20, 2, 4);
  c.smr.snapshot_interval = 4;
  c.faults.process_crashes[1] = 6;
  c.faults.process_rejoins[1] = 300;
  c.faults.process_crashes[2] = 40;
  c.faults.process_rejoins[2] = 700;
  const RunReport r = harness::run_cluster(c);
  EXPECT_TRUE(r.all_ok()) << r.summary();
  for (ProcessId p = 2; p <= 5; ++p) {
    EXPECT_EQ(r.processes[0].log, r.processes[p - 1].log) << "p" << p;
  }
  EXPECT_GE(r.snapshots_installed, 2u) << r.summary();
  EXPECT_GT(r.slots_truncated, 0u) << r.summary();
}

TEST(SmrCluster, RejoinConfigIsValidated) {
  ClusterConfig c = smr_config(Algorithm::kFastPaxos, 3, 0, 8, 2, 4);
  c.faults.process_crashes[1] = 6;
  c.faults.process_rejoins[1] = 100;
  // No snapshot cadence: peers would have nothing to serve.
  EXPECT_THROW(harness::run_cluster(c), std::invalid_argument);
  c.smr.snapshot_interval = 4;

  ClusterConfig before_crash = c;
  before_crash.faults.process_rejoins[1] = 4;  // rejoin precedes the crash
  EXPECT_THROW(harness::run_cluster(before_crash), std::invalid_argument);

  ClusterConfig no_crash = c;
  no_crash.faults.process_crashes.clear();
  EXPECT_THROW(harness::run_cluster(no_crash), std::invalid_argument);

  ClusterConfig memory_engine = c;
  memory_engine.algo = Algorithm::kDiskPaxos;
  memory_engine.m = 3;
  EXPECT_THROW(harness::run_cluster(memory_engine), std::invalid_argument);
}

TEST(SmrFaultPlan, CrashedByHorizonAccountsForRejoins) {
  harness::FaultPlan plan;
  plan.process_crashes[1] = 10;
  plan.process_crashes[2] = 20;
  EXPECT_EQ(plan.crashed_by_horizon(), 2u);
  // p1 comes back: only p2 is still down at the horizon.
  plan.process_rejoins[1] = 50;
  EXPECT_EQ(plan.crashed_by_horizon(), 1u);
  plan.process_rejoins[2] = 90;
  EXPECT_EQ(plan.crashed_by_horizon(), 0u);
}

}  // namespace
}  // namespace mnm
