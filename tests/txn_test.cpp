// Cross-shard transactions (src/txn/): unit invariants for the state
// machine's lock table — the deterministic no-wait conflict rule, buffered
// writes, presumed abort, lock migration — and end-to-end atomicity in the
// harness: a transactional workload must conserve Σ account balances == 0
// and leave zero residual locks under each of {coordinator crash after
// PREPARE, participant leader crash, Byzantine forger on one shard, live
// 1→2 split mid-transaction}, while the global exactly-once sum
// (Σ per-shard ops_applied == completed client ops) keeps holding.

#include <gtest/gtest.h>

#include <numeric>

#include "src/harness/cluster.hpp"
#include "src/kv/command.hpp"
#include "src/kv/range.hpp"
#include "src/kv/shard.hpp"
#include "src/kv/state_machine.hpp"
#include "src/txn/record.hpp"
#include "src/util/serde.hpp"

namespace mnm {
namespace {

using kv::Command;
using kv::Op;
using kv::Reply;
using kv::Status;
using util::to_bytes;

// ---------------------------------------------------------------------------
// Builders.
// ---------------------------------------------------------------------------

Bytes cmd_bytes(Op op, kv::ClientId client, std::uint64_t seq, Bytes key,
                Bytes value = {}) {
  Command c;
  c.op = op;
  c.client = client;
  c.seq = seq;
  c.key = std::move(key);
  c.value = std::move(value);
  return encode_command(c);
}

Bytes prepare_bytes(txn::TxnId txn, Bytes value,
                    txn::WriteKind kind = txn::WriteKind::kPut,
                    bool has_expected = false, Bytes expected = {}) {
  txn::PrepareRecord rec;
  rec.txn = txn;
  rec.write = kind;
  rec.value = std::move(value);
  rec.has_expected = has_expected;
  rec.expected = std::move(expected);
  return txn::encode_prepare(rec);
}

Bytes decision_bytes(txn::TxnId txn) {
  txn::DecisionRecord rec;
  rec.txn = txn;
  return txn::encode_decision(rec);
}

/// First "key-<i>" whose hash lands in bucket `want` of a `buckets`-sized
/// table (the reconfig tests' idiom).
Bytes key_in_bucket(std::size_t buckets, std::size_t want) {
  for (std::size_t i = 0;; ++i) {
    const Bytes k = to_bytes("key-" + std::to_string(i));
    if (kv::ShardMap::key_hash(k) % buckets == want) return k;
  }
}

/// Machine + captured last reply, so every test reads outcomes the way a
/// router would — through the sink.
struct Machine {
  kv::StateMachine sm;
  Reply last;

  Machine() {
    sm.set_reply_sink(
        [this](kv::ClientId, std::uint64_t, const Reply& r) { last = r; });
  }

  Reply apply(Slot slot, const Bytes& wire) {
    sm.apply(slot, wire);
    return last;
  }
};

// ---------------------------------------------------------------------------
// Lock table semantics.
// ---------------------------------------------------------------------------

TEST(TxnStateMachine, PrepareLocksBuffersAndCommitApplies) {
  Machine m;
  const Bytes key = to_bytes("acct-0");

  Reply r = m.apply(0, cmd_bytes(Op::kTxnPrepare, 1, 1, key,
                                 prepare_bytes(7, to_bytes("42"))));
  EXPECT_EQ(r.status, Status::kOk);
  EXPECT_EQ(m.sm.locks_held(), 1u);
  EXPECT_EQ(m.sm.txn_prepared(), 1u);

  // The buffered write is invisible: GET reads committed state only.
  r = m.apply(1, cmd_bytes(Op::kGet, 2, 1, key));
  EXPECT_EQ(r.status, Status::kNotFound);

  // A plain write on the locked key is refused — the same no-wait rule as
  // a conflicting prepare, and a *committed* outcome for that client.
  r = m.apply(2, cmd_bytes(Op::kPut, 2, 2, key, to_bytes("smash")));
  EXPECT_EQ(r.status, Status::kTxnConflict);
  EXPECT_EQ(m.sm.txn_conflicts(), 1u);

  // Commit applies the buffered write and releases.
  r = m.apply(3, cmd_bytes(Op::kTxnCommit, 1, 2, key, decision_bytes(7)));
  EXPECT_EQ(r.status, Status::kOk);
  EXPECT_EQ(m.sm.locks_held(), 0u);
  EXPECT_EQ(m.sm.txn_committed(), 1u);
  r = m.apply(4, cmd_bytes(Op::kGet, 2, 3, key));
  EXPECT_EQ(r.status, Status::kOk);
  EXPECT_EQ(r.value, to_bytes("42"));

  // Unlocked again: plain writes flow.
  r = m.apply(5, cmd_bytes(Op::kPut, 2, 4, key, to_bytes("free")));
  EXPECT_EQ(r.status, Status::kOk);
  // Txn records were ordinary counted client ops throughout.
  EXPECT_EQ(m.sm.ops_applied(), 6u);
}

TEST(TxnStateMachine, ConflictingPrepareRefusedOwnPrepareIdempotent) {
  Machine m;
  const Bytes key = to_bytes("acct-1");
  EXPECT_EQ(m.apply(0, cmd_bytes(Op::kTxnPrepare, 1, 1, key,
                                 prepare_bytes(7, to_bytes("a")))).status,
            Status::kOk);

  // Another transaction's prepare on the held lock: refused immediately,
  // never queued — log order is lock order, identical on every replica.
  EXPECT_EQ(m.apply(1, cmd_bytes(Op::kTxnPrepare, 2, 1, key,
                                 prepare_bytes(8, to_bytes("b")))).status,
            Status::kTxnConflict);
  EXPECT_EQ(m.sm.txn_conflicts(), 1u);

  // The owner re-preparing (a recovery replay under a fresh seq) succeeds
  // idempotently — no second lock, no second prepared count.
  EXPECT_EQ(m.apply(2, cmd_bytes(Op::kTxnPrepare, 1, 2, key,
                                 prepare_bytes(7, to_bytes("a")))).status,
            Status::kOk);
  EXPECT_EQ(m.sm.locks_held(), 1u);
  EXPECT_EQ(m.sm.txn_prepared(), 1u);

  EXPECT_EQ(m.apply(3, cmd_bytes(Op::kTxnAbort, 1, 3, key, decision_bytes(7)))
                .status,
            Status::kOk);
  EXPECT_EQ(m.sm.locks_held(), 0u);
  EXPECT_EQ(m.sm.txn_aborted(), 1u);
}

TEST(TxnStateMachine, ReprepareWithDifferentPayloadRefused) {
  // Idempotent re-prepare is byte-identical re-prepare only: the same
  // (txn, owner) sending a different value, write kind or guard must be
  // refused, with the originally buffered write untouched — success here
  // would let an equivocating coordinator swap bytes under a held lock.
  Machine m;
  const Bytes key = to_bytes("acct-7");
  EXPECT_EQ(m.apply(0, cmd_bytes(Op::kTxnPrepare, 1, 1, key,
                                 prepare_bytes(7, to_bytes("a")))).status,
            Status::kOk);

  // Different value.
  EXPECT_EQ(m.apply(1, cmd_bytes(Op::kTxnPrepare, 1, 2, key,
                                 prepare_bytes(7, to_bytes("b")))).status,
            Status::kTxnConflict);
  // Different write kind.
  EXPECT_EQ(m.apply(2, cmd_bytes(Op::kTxnPrepare, 1, 3, key,
                                 prepare_bytes(7, Bytes{},
                                               txn::WriteKind::kDel))).status,
            Status::kTxnConflict);
  // Same value but a guard appears.
  EXPECT_EQ(m.apply(3, cmd_bytes(Op::kTxnPrepare, 1, 4, key,
                                 prepare_bytes(7, to_bytes("a"),
                                               txn::WriteKind::kPut,
                                               /*has_expected=*/true,
                                               Bytes{}))).status,
            Status::kTxnConflict);
  EXPECT_EQ(m.sm.txn_conflicts(), 3u);

  // The byte-identical re-prepare is still idempotent, and the commit
  // applies the *original* buffered write.
  EXPECT_EQ(m.apply(4, cmd_bytes(Op::kTxnPrepare, 1, 5, key,
                                 prepare_bytes(7, to_bytes("a")))).status,
            Status::kOk);
  EXPECT_EQ(m.sm.locks_held(), 1u);
  EXPECT_EQ(m.apply(5, cmd_bytes(Op::kTxnCommit, 1, 6, key,
                                 decision_bytes(7))).status,
            Status::kOk);
  EXPECT_EQ(m.sm.store().at(key), to_bytes("a"));
}

TEST(TxnStateMachine, PrepareMarkRedeliversRefusalAfterLaterAbort) {
  // The recovery-ambiguity window: coordinator session 9 prepares key "a"
  // (accepted), prepares key "c" (refused — a foreign lock holds it), then
  // an abort for "a" lands on the same machine and advances the session
  // cache past the refused prepare. A replay of that prepare must re-read
  // the *refusal* from the prepare mark — a bare kStaleDup here is what
  // used to turn this abort into a partial commit.
  Machine m;
  const Bytes a = to_bytes("acct-a");
  const Bytes c = to_bytes("acct-c");
  // Foreign lock on "c" (txn 5, session 8).
  ASSERT_EQ(m.apply(0, cmd_bytes(Op::kTxnPrepare, 8, 1, c,
                                 prepare_bytes(5, to_bytes("x")))).status,
            Status::kOk);
  // Session 9, txn 7: prepare "a" accepted, prepare "c" refused, abort "a".
  ASSERT_EQ(m.apply(1, cmd_bytes(Op::kTxnPrepare, 9, 1, a,
                                 prepare_bytes(7, to_bytes("1")))).status,
            Status::kOk);
  ASSERT_EQ(m.apply(2, cmd_bytes(Op::kTxnPrepare, 9, 2, c,
                                 prepare_bytes(7, to_bytes("2")))).status,
            Status::kTxnConflict);
  ASSERT_EQ(m.apply(3, cmd_bytes(Op::kTxnAbort, 9, 3, a,
                                 decision_bytes(7))).status,
            Status::kOk);

  // Replay of the refused prepare (seq 2 < last_seq 3): the mark answers
  // with the recorded refusal, not kStaleDup.
  EXPECT_EQ(m.apply(4, cmd_bytes(Op::kTxnPrepare, 9, 2, c,
                                 prepare_bytes(7, to_bytes("2")))).status,
            Status::kTxnConflict);
  // Replay of the *accepted* prepare (seq 1, older than the mark): plain
  // kStaleDup — which now really does imply acceptance, since only an
  // accepted prepare is ever followed by a newer one.
  EXPECT_EQ(m.apply(5, cmd_bytes(Op::kTxnPrepare, 9, 1, a,
                                 prepare_bytes(7, to_bytes("1")))).status,
            Status::kStaleDup);
  // Replays are duplicates: no state moved, nothing double-counted.
  EXPECT_EQ(m.sm.duplicates_suppressed(), 2u);
  EXPECT_EQ(m.sm.txn_conflicts(), 1u);

  // The mark is replicated state: it survives a snapshot round trip and
  // still answers the replay on the restored machine.
  const Bytes snap = m.sm.snapshot();
  Machine b;
  ASSERT_TRUE(b.sm.restore(snap));
  EXPECT_EQ(b.sm.store_hash(), m.sm.store_hash());
  EXPECT_EQ(b.apply(0, cmd_bytes(Op::kTxnPrepare, 9, 2, c,
                                 prepare_bytes(7, to_bytes("2")))).status,
            Status::kTxnConflict);
}

TEST(TxnStateMachine, OptimisticGuardRefusesOnChangedValue) {
  Machine m;
  const Bytes key = to_bytes("acct-2");
  m.apply(0, cmd_bytes(Op::kPut, 1, 1, key, to_bytes("100")));

  // Guard on stale bytes: conflict, current value riding back (the CAS
  // mismatch shape, so the coordinator could re-read without a GET).
  Reply r = m.apply(1, cmd_bytes(Op::kTxnPrepare, 2, 1, key,
                                 prepare_bytes(9, to_bytes("150"),
                                               txn::WriteKind::kPut,
                                               /*has_expected=*/true,
                                               to_bytes("50"))));
  EXPECT_EQ(r.status, Status::kTxnConflict);
  EXPECT_EQ(r.value, to_bytes("100"));
  EXPECT_EQ(m.sm.locks_held(), 0u);

  // Guard on the exact committed bytes: accepted.
  r = m.apply(2, cmd_bytes(Op::kTxnPrepare, 2, 2, key,
                           prepare_bytes(10, to_bytes("150"),
                                         txn::WriteKind::kPut,
                                         /*has_expected=*/true,
                                         to_bytes("100"))));
  EXPECT_EQ(r.status, Status::kOk);
  m.apply(3, cmd_bytes(Op::kTxnAbort, 2, 3, key, decision_bytes(10)));

  // Guard "absent" (empty expected) against a missing key: accepted —
  // the kCas convention, which is how transfers create accounts.
  r = m.apply(4, cmd_bytes(Op::kTxnPrepare, 2, 4, to_bytes("acct-new"),
                           prepare_bytes(11, to_bytes("5"),
                                         txn::WriteKind::kPut,
                                         /*has_expected=*/true, Bytes{})));
  EXPECT_EQ(r.status, Status::kOk);
}

TEST(TxnStateMachine, PresumedAbortOrphanDecisions) {
  Machine m;
  const Bytes key = to_bytes("acct-3");

  // Commit with no matching lock: the prepare never landed (or an abort
  // released it) — kTxnAborted, nothing applied.
  Reply r =
      m.apply(0, cmd_bytes(Op::kTxnCommit, 1, 1, key, decision_bytes(7)));
  EXPECT_EQ(r.status, Status::kTxnAborted);
  EXPECT_EQ(m.sm.txn_orphans(), 1u);
  EXPECT_EQ(m.sm.store().count(key), 0u);

  // Abort with no lock succeeds idempotently: absence of a lock IS the
  // aborted state.
  r = m.apply(1, cmd_bytes(Op::kTxnAbort, 1, 2, key, decision_bytes(7)));
  EXPECT_EQ(r.status, Status::kOk);
  EXPECT_EQ(m.sm.txn_orphans(), 2u);

  // A decision naming the wrong transaction id does not release someone
  // else's lock.
  m.apply(2, cmd_bytes(Op::kTxnPrepare, 2, 1, key,
                       prepare_bytes(8, to_bytes("x"))));
  r = m.apply(3, cmd_bytes(Op::kTxnCommit, 1, 3, key, decision_bytes(999)));
  EXPECT_EQ(r.status, Status::kTxnAborted);
  EXPECT_EQ(m.sm.locks_held(), 1u);
}

TEST(TxnStateMachine, DelWriteKindCommitsToDeletion) {
  Machine m;
  const Bytes key = to_bytes("acct-4");
  m.apply(0, cmd_bytes(Op::kPut, 1, 1, key, to_bytes("doomed")));
  m.apply(1, cmd_bytes(Op::kTxnPrepare, 2, 1, key,
                       prepare_bytes(5, Bytes{}, txn::WriteKind::kDel)));
  m.apply(2, cmd_bytes(Op::kTxnCommit, 2, 2, key, decision_bytes(5)));
  EXPECT_EQ(m.sm.store().count(key), 0u);
  EXPECT_EQ(m.sm.locks_held(), 0u);
}

TEST(TxnStateMachine, MalformedPayloadsAbortDeterministically) {
  Machine m;
  const Bytes key = to_bytes("acct-5");
  const Bytes junk = to_bytes("\xde\xad\xbe\xef");
  for (const Op op : {Op::kTxnPrepare, Op::kTxnCommit, Op::kTxnAbort}) {
    const Reply r = m.apply(0, cmd_bytes(op, 1, m.sm.last_seq(1) + 1, key,
                                         junk));
    EXPECT_EQ(r.status, Status::kTxnAborted);
  }
  EXPECT_EQ(m.sm.txn_rejected(), 3u);
  EXPECT_EQ(m.sm.locks_held(), 0u);
  // Still counted client ops with cached (persistable) replies.
  EXPECT_EQ(m.sm.ops_applied(), 3u);
  EXPECT_TRUE(kv::status_persistable(
      static_cast<std::uint8_t>(Status::kTxnAborted)));
  EXPECT_TRUE(kv::status_persistable(
      static_cast<std::uint8_t>(Status::kTxnConflict)));
}

// ---------------------------------------------------------------------------
// Lock table in the state codecs.
// ---------------------------------------------------------------------------

TEST(TxnStateMachine, SnapshotRoundTripCarriesLockTable) {
  Machine a;
  a.apply(0, cmd_bytes(Op::kPut, 1, 1, to_bytes("acct-0"), to_bytes("10")));
  a.apply(1, cmd_bytes(Op::kTxnPrepare, 2, 1, to_bytes("acct-1"),
                       prepare_bytes(3, to_bytes("20"))));
  a.apply(2, cmd_bytes(Op::kTxnPrepare, 3, 1, to_bytes("acct-2"),
                       prepare_bytes(4, Bytes{}, txn::WriteKind::kDel)));
  ASSERT_EQ(a.sm.locks_held(), 2u);

  const Bytes snap = a.sm.snapshot();
  Machine b;
  ASSERT_TRUE(b.sm.restore(snap));
  EXPECT_EQ(b.sm.store_hash(), a.sm.store_hash());
  EXPECT_EQ(b.sm.locks_held(), 2u);
  EXPECT_EQ(b.sm.txn_prepared(), 2u);

  // The restored lock still decides: commit applies the buffered write the
  // snapshot carried.
  const Reply r = b.apply(3, cmd_bytes(Op::kTxnCommit, 2, 2,
                                       to_bytes("acct-1"),
                                       decision_bytes(3)));
  EXPECT_EQ(r.status, Status::kOk);
  EXPECT_EQ(b.sm.store().at(to_bytes("acct-1")), to_bytes("20"));

  // Fail-closed: any flipped byte must miss the embedded digest.
  for (const std::size_t at : {std::size_t{0}, snap.size() / 2,
                               snap.size() - 1}) {
    Bytes forged = snap;
    forged[at] ^= 0x20;
    kv::StateMachine c;
    EXPECT_FALSE(c.restore(forged)) << "flip at " << at;
  }
}

TEST(TxnStateMachine, LocksMigrateWithTheDrainedRange) {
  // A transaction straddling a live reshard: the prepare lands at the
  // source, the range (lock included) drains to the destination, and the
  // decision — routed by key to the new owner — must still decide there.
  const kv::ShardTable initial = kv::ShardTable::initial(1);
  Machine src, dst;
  src.sm.configure_partition(0, initial);
  dst.sm.configure_partition(1, initial);

  const Bytes moving = key_in_bucket(2, 1);
  src.apply(0, cmd_bytes(Op::kPut, 1, 1, moving, to_bytes("30")));
  EXPECT_EQ(src.apply(1, cmd_bytes(Op::kTxnPrepare, 2, 1, moving,
                                   prepare_bytes(6, to_bytes("99"),
                                                 txn::WriteKind::kPut,
                                                 /*has_expected=*/true,
                                                 to_bytes("30")))).status,
            Status::kOk);
  ASSERT_EQ(src.sm.locks_held(), 1u);

  kv::RangeSpec spec;
  spec.epoch = 1;
  spec.table_buckets = 2;
  spec.buckets = {1};
  const Bytes spec_bytes = kv::encode_range_spec(spec);
  Command seal;
  seal.op = Op::kSeal;
  seal.client = 99;
  seal.seq = 1;
  seal.value = spec_bytes;
  src.apply(2, encode_command(seal));

  const Bytes drained = src.sm.export_range(spec_bytes);
  ASSERT_FALSE(drained.empty());
  const auto snap = kv::decode_range_snapshot(drained);
  ASSERT_TRUE(snap.has_value());
  ASSERT_EQ(snap->locks.size(), 1u);
  EXPECT_EQ(snap->locks[0].key, moving);
  EXPECT_EQ(snap->locks[0].txn, 6u);
  // The guard travels with the lock, and the prepare mark travels with the
  // session table — a coordinator replaying this prepare at the new owner
  // must read its original outcome there.
  EXPECT_EQ(snap->locks[0].has_expected, 1u);
  EXPECT_EQ(snap->locks[0].expected, to_bytes("30"));
  ASSERT_EQ(snap->prepare_marks.size(), 1u);
  EXPECT_EQ(snap->prepare_marks[0].client, 2u);
  EXPECT_EQ(snap->prepare_marks[0].seq, 1u);
  EXPECT_EQ(snap->prepare_marks[0].status,
            static_cast<std::uint8_t>(Status::kOk));

  Command install;
  install.op = Op::kInstall;
  install.client = 99;
  install.seq = 1;
  install.value = drained;
  dst.apply(0, encode_command(install));
  EXPECT_EQ(dst.sm.locks_held(), 1u);

  // The commit record routes to the new owner and applies the buffered
  // write the lock carried across the wire.
  const Reply r = dst.apply(1, cmd_bytes(Op::kTxnCommit, 2, 2, moving,
                                         decision_bytes(6)));
  EXPECT_EQ(r.status, Status::kOk);
  EXPECT_EQ(dst.sm.store().at(moving), to_bytes("99"));
  EXPECT_EQ(dst.sm.locks_held(), 0u);

  // PURGE drops the source's sealed-away copy of the lock, not just the
  // pairs — no shard may end a run holding a lock for a range it lost.
  Command purge;
  purge.op = Op::kPurge;
  purge.client = 99;
  purge.seq = 2;
  purge.value = spec_bytes;
  src.apply(3, encode_command(purge));
  EXPECT_EQ(src.sm.locks_held(), 0u);
}

// ---------------------------------------------------------------------------
// End-to-end atomicity (harness).
// ---------------------------------------------------------------------------

harness::ClusterConfig txn_config(std::size_t shards, std::size_t clients,
                                  std::size_t ops) {
  harness::ClusterConfig c;
  c.algo = harness::Algorithm::kFastPaxos;
  c.n = 3;
  c.m = 0;
  c.kv.enabled = true;
  c.kv.shards = shards;
  c.kv.clients = clients;
  c.kv.ops_per_client = ops;
  c.kv.txn_fraction = 0.4;
  return c;
}

std::uint64_t total_shard_ops(const harness::RunReport& r) {
  return std::accumulate(r.kv_shard_ops.begin(), r.kv_shard_ops.end(),
                         std::uint64_t{0});
}

/// The transactional contract every scenario must satisfy: balances
/// conserve, no lock survives the run, every transfer reached exactly one
/// outcome, and the global exactly-once sum still holds.
void expect_atomic(const harness::RunReport& r) {
  EXPECT_EQ(r.kv_txn_balance, 0) << r.summary();
  EXPECT_EQ(r.kv_locks_held, 0u) << r.summary();
  EXPECT_EQ(r.kv_txn_commits + r.kv_txn_aborts, r.kv_txns) << r.summary();
  EXPECT_EQ(total_shard_ops(r), r.kv_ops) << r.summary();
}

TEST(TxnCluster, TransfersConserveBalanceAcrossShards) {
  const harness::RunReport r = run_cluster(txn_config(3, 8, 16));
  EXPECT_TRUE(r.all_ok()) << r.summary();
  expect_atomic(r);
  EXPECT_GT(r.kv_txns, 0u) << r.summary();
  EXPECT_GT(r.kv_txn_commits, 0u) << r.summary();
  EXPECT_GE(r.kv_txn_commit_p999, r.kv_txn_commit_p50) << r.summary();
}

TEST(TxnCluster, HotAccountsConflictAndAbortNeverCorrupt) {
  // Zipfian account popularity over a small account space: conflicting
  // prepares must show up as aborts, and an abort must be as conservative
  // as a commit — Σ balances still 0.
  harness::ClusterConfig c = txn_config(2, 8, 16);
  c.kv.accounts = 8;
  c.kv.txn_zipf_theta = 0.95;
  const harness::RunReport r = run_cluster(c);
  EXPECT_TRUE(r.all_ok()) << r.summary();
  expect_atomic(r);
  EXPECT_GT(r.kv_txn_aborts, 0u)
      << "hot accounts must conflict: " << r.summary();
  EXPECT_GT(r.kv_txn_conflicts, 0u) << r.summary();
}

TEST(TxnCluster, CoordinatorCrashAfterPrepareRecoversExactlyOnce) {
  // Acceptance scenario 1: client 1's first transfer stops dead after both
  // prepares (all locks taken, no decision sent), sleeps, then recovers by
  // replaying the identical record stream under the original seqs. The
  // replay must re-derive the decision from participant state, release
  // every lock, and not double-count a single record.
  harness::ClusterConfig c = txn_config(2, 6, 12);
  c.kv.txn_fraction = 0.5;
  c.kv.txn_crash_client = 1;
  c.kv.txn_crash_txn = 1;
  c.kv.txn_crash_records = 2;  // == txn_accounts: crash at the decision gap
  c.kv.txn_crash_pause = 200;
  const harness::RunReport r = run_cluster(c);
  EXPECT_TRUE(r.all_ok()) << r.summary();
  expect_atomic(r);
  EXPECT_EQ(r.kv_txn_recoveries, 1u)
      << "the scripted crash must have happened and recovered: "
      << r.summary();
  EXPECT_GT(r.kv_txns, 0u);
}

TEST(TxnCluster, CoordinatorCrashWithRefusedPrepareRecoversAbort) {
  // The reviewer's partial-commit window, end to end: a 3-account transfer
  // whose *last* prepare is refused (a planted foreign lock), crashing
  // after the first abort record already landed on the refused prepare's
  // shard. The recovery replay sees that prepare behind the session cache;
  // it must re-read the refusal from the prepare mark and drive the abort
  // side — inferring acceptance from kStaleDup would decide commit and
  // apply the middle account's credit without the first account's debit.
  // Single shard makes the collision certain: every record shares one
  // session on one machine.
  harness::ClusterConfig c = txn_config(1, 6, 12);
  c.kv.txn_fraction = 0.5;
  c.kv.txn_accounts = 3;
  c.kv.txn_crash_client = 1;
  c.kv.txn_crash_txn = 1;
  c.kv.txn_crash_records = 4;  // 3 prepares + the first abort
  c.kv.txn_crash_conflict = true;
  c.kv.txn_crash_pause = 200;
  const harness::RunReport r = run_cluster(c);
  EXPECT_TRUE(r.all_ok()) << r.summary();
  expect_atomic(r);
  EXPECT_EQ(r.kv_txn_recoveries, 1u) << r.summary();
  EXPECT_GT(r.kv_txn_aborts, 0u)
      << "the crashed transfer must resolve as a full abort: " << r.summary();
}

TEST(TxnCluster, ParticipantLeaderCrashMidTransactions) {
  // Acceptance scenario 2: a shard leader dies mid-run with 2PC records in
  // flight. Retries and the leader hand-off may duplicate records in the
  // log; session dedup must keep every prepare/decision exactly-once, so
  // atomicity and the rollup survive the crash.
  harness::ClusterConfig c = txn_config(2, 6, 12);
  c.kv.retry_timeout = 24;
  c.kv.batch = 1;
  c.kv.window = 2;
  c.faults.process_crashes[1] = 7;
  const harness::RunReport r = run_cluster(c);
  EXPECT_TRUE(r.agreement) << r.summary();
  EXPECT_TRUE(r.termination) << r.summary();
  EXPECT_TRUE(r.validity) << r.summary();
  expect_atomic(r);
  EXPECT_GT(r.kv_txns, 0u);
  EXPECT_GT(r.kv_retries, 0u)
      << "records stranded in the dead leader's queue must have retried";
}

TEST(TxnCluster, ByzantineForgedPrepareIsRejected) {
  // Acceptance scenario 3: a Byzantine slot winner smuggles a well-formed,
  // validly-signed-by-the-attacker TxnPrepare under the victim's session
  // (alongside the two plain forgeries of the session-hijack scenario).
  // With client signing on, all three must verify as forged before the
  // session lookup — no phantom lock, no phantom balance.
  harness::ClusterConfig c = txn_config(1, 2, 3);
  c.algo = harness::Algorithm::kFastRobust;
  c.m = 3;
  c.faults.byzantine[1] = harness::ByzantineStrategy::kForgeClientCommands;
  c.kv.sign_commands = true;
  c.horizon = 200000;
  const harness::RunReport r = run_cluster(c);
  EXPECT_TRUE(r.all_ok()) << r.summary();
  expect_atomic(r);
  EXPECT_EQ(r.kv_forged, 3u)
      << "plain pair + forged prepare must all be counted, not applied: "
      << r.summary();
}

TEST(TxnCluster, LiveSplitMidTransactionsStaysAtomic) {
  // Acceptance scenario 4: a 1→2 split lands mid-run, so transactions
  // straddle the epoch flip — prepares at the old owner, locks drained
  // with the range, decisions routed (and re-signed) to the new owner.
  harness::ClusterConfig c = txn_config(1, 8, 16);
  c.kv.sign_commands = true;
  c.kv.reconfig.push_back({40, reconfig::ChangeKind::kSplit, 0, 1});
  const harness::RunReport r = run_cluster(c);
  EXPECT_TRUE(r.all_ok()) << r.summary();
  expect_atomic(r);
  EXPECT_GT(r.kv_txns, 0u);
  EXPECT_EQ(r.reconfig_epoch, 1u) << r.summary();
  EXPECT_GT(r.reconfig_keys_moved, 0u) << r.summary();
  EXPECT_EQ(r.kv_forged, 0u)
      << "re-routed txn records must re-sign for the new group: "
      << r.summary();
}

TEST(TxnCluster, CrashAndRejoinRestoresLockTable) {
  // Snapshots taken mid-run carry the lock table; a replica that crashes
  // and rejoins must converge to the survivors' store hash — which folds
  // the locks — and the run must still end lock-free and balanced.
  harness::ClusterConfig c = txn_config(2, 6, 12);
  c.kv.retry_timeout = 24;
  c.kv.batch = 1;
  c.kv.window = 2;
  c.kv.snapshot_interval = 4;
  c.faults.process_crashes[1] = 7;
  c.faults.process_rejoins[1] = 600;
  const harness::RunReport r = run_cluster(c);
  EXPECT_TRUE(r.all_ok()) << r.summary();
  expect_atomic(r);
  EXPECT_GE(r.snapshots_installed, 1u) << r.summary();
  EXPECT_EQ(r.processes[0].decision, r.processes[1].decision) << r.summary();
}

}  // namespace
}  // namespace mnm
