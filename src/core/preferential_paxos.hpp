// Preferential Paxos (paper §4.3, Algorithm 8, Lemma 4.7).
//
// A wrapper around Robust Backup(Paxos) guaranteeing *priority decision*:
// with inputs v1..vn ordered by priority, the decision is one of the top
// fP+1. The set-up phase simply T-sends every input to everyone; each
// process waits for n − fP inputs and adopts the highest-priority one it
// saw, then proposes that to the embedded Paxos. Because at most fP inputs
// can be missed, the adopted value is always among the top fP+1.
//
// Fast & Robust instantiates the priority order of Definition 3
// (unanimity-proof values ≻ leader-signed values ≻ the rest); standalone
// users may pass any priority function.

#pragma once

#include <cstdint>
#include <functional>
#include <optional>

#include "src/common.hpp"
#include "src/core/paxos.hpp"
#include "src/core/transport.hpp"
#include "src/sim/executor.hpp"
#include "src/sim/task.hpp"

namespace mnm::core {

/// A prioritized input: the consensus value plus the evidence that
/// determines its priority class (Definition 3).
struct PrioInput {
  Bytes value;
  Bytes proof;       // unanimity proof bytes, empty if none
  Bytes leader_sig;  // encoded Signature of p1 over value, empty if none

  Bytes encode() const;
  static std::optional<PrioInput> decode(util::ByteView raw);
  bool operator==(const PrioInput&) const = default;
};

/// Maps an input to a priority (higher wins). Must be a *verifying*
/// function: it should ignore unverifiable claims, since Byzantine processes
/// choose their own inputs.
using PriorityFn = std::function<int(const PrioInput&)>;

struct PreferentialPaxosConfig {
  std::size_t n = 3;
  std::size_t f = 1;  // fP: inputs that may be missed in set-up
};

class PreferentialPaxos {
 public:
  /// `setup` carries the set-up exchange (a kMuxSetup sub-transport when run
  /// inside Fast & Robust); `paxos` is the embedded (Robust Backup) Paxos,
  /// already started.
  PreferentialPaxos(sim::Executor& exec, Transport& setup, Paxos& paxos,
                    PreferentialPaxosConfig config, PriorityFn priority);

  /// Run set-up then the embedded Paxos. Returns the decided PrioInput.
  sim::Task<PrioInput> propose(PrioInput input);

 private:
  sim::Executor* exec_;
  Transport* setup_;
  Paxos* paxos_;
  PreferentialPaxosConfig config_;
  PriorityFn priority_;
};

}  // namespace mnm::core
