// Transport multiplexer.
//
// Preferential Paxos (Algorithm 8) runs two conversations over one trusted
// transport: its set-up exchange and the embedded Paxos. The mux frames each
// payload with a one-byte tag and demultiplexes inbound messages to per-tag
// sub-transports. Tags are chosen outside the PaxosKind byte range so a
// history validator can tell framed from raw payloads unambiguously.

#pragma once

#include <cstdint>
#include <map>
#include <memory>

#include "src/common.hpp"
#include "src/core/transport.hpp"
#include "src/sim/executor.hpp"

namespace mnm::core {

inline constexpr std::uint8_t kMuxPaxos = 0x50;  // 'P'
inline constexpr std::uint8_t kMuxSetup = 0x53;  // 'S'

class TransportMux {
 public:
  TransportMux(sim::Executor& exec, Transport& base)
      : exec_(&exec), base_(&base) {}

  /// The sub-transport for `tag` (created on first use). start() must be
  /// called after all subs are created and before messages flow.
  Transport& sub(std::uint8_t tag) {
    auto it = subs_.find(tag);
    if (it == subs_.end()) {
      it = subs_.emplace(tag, std::make_unique<Sub>(*exec_, *base_, tag)).first;
    }
    return *it->second;
  }

  void start() { exec_->spawn(demux_loop(base_, &subs_)); }

  static Bytes frame(std::uint8_t tag, const Bytes& payload) {
    Bytes out;
    out.reserve(payload.size() + 1);
    out.push_back(tag);
    out.insert(out.end(), payload.begin(), payload.end());
    return out;
  }

 private:
  class Sub : public Transport {
   public:
    Sub(sim::Executor& exec, Transport& base, std::uint8_t tag)
        : base_(&base), tag_(tag), incoming_(exec) {}

    ProcessId self() const override { return base_->self(); }
    std::size_t process_count() const override { return base_->process_count(); }
    void send(ProcessId dst, Bytes payload) override {
      base_->send(dst, frame(tag_, payload));
    }
    void send_all(const Bytes& payload, bool include_self = true) override {
      base_->send_all(frame(tag_, payload), include_self);
    }
    sim::Channel<TMsg>& incoming() override { return incoming_; }

   private:
    Transport* base_;
    std::uint8_t tag_;
    sim::Channel<TMsg> incoming_;
    friend class TransportMux;
  };

  static sim::Task<void> demux_loop(Transport* base,
                                    std::map<std::uint8_t, std::unique_ptr<Sub>>* subs) {
    while (true) {
      TMsg m = co_await base->incoming().recv();
      if (m.payload.empty()) continue;
      const std::uint8_t tag = static_cast<std::uint8_t>(m.payload[0]);
      const auto it = subs->find(tag);
      if (it == subs->end()) continue;  // unknown tag: drop
      m.payload.erase(m.payload.begin());
      it->second->incoming_.send(std::move(m));
    }
  }

  sim::Executor* exec_;
  Transport* base_;
  std::map<std::uint8_t, std::unique_ptr<Sub>> subs_;
};

}  // namespace mnm::core
