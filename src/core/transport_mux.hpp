// Transport multiplexer.
//
// Preferential Paxos (Algorithm 8) runs two conversations over one trusted
// transport: its set-up exchange and the embedded Paxos. The mux frames each
// payload with a one-byte tag and demultiplexes inbound messages to per-tag
// sub-transports. Tags are chosen outside the PaxosKind byte range so a
// history validator can tell framed from raw payloads unambiguously.
//
// The tag is one byte, so the demux table is a direct-indexed 256-entry
// array, and stripping the tag on the inbound path is a zero-copy Buffer
// slice into the same backing bytes.

#pragma once

#include <array>
#include <cstdint>
#include <memory>

#include "src/common.hpp"
#include "src/core/transport.hpp"
#include "src/sim/executor.hpp"
#include "src/util/serde.hpp"

namespace mnm::core {

inline constexpr std::uint8_t kMuxPaxos = 0x50;  // 'P'
inline constexpr std::uint8_t kMuxSetup = 0x53;  // 'S'
/// Aligned Paxos frames only its DECIDE payloads (aligned_paxos.*): acceptor
/// traffic travels as raw PaxosMsg encodings, whose first byte is a
/// PaxosKind in 1..6, so the single out-of-range tag byte disambiguates
/// without a demux hop.
inline constexpr std::uint8_t kMuxDecide = 0x44;  // 'D'

class TransportMux {
 public:
  TransportMux(sim::Executor& exec, Transport& base)
      : exec_(&exec), base_(&base) {}

  /// The sub-transport for `tag` (created on first use). start() must be
  /// called after all subs are created and before messages flow.
  Transport& sub(std::uint8_t tag) {
    if (subs_[tag] == nullptr) {
      subs_[tag] = std::make_unique<Sub>(*exec_, *base_, tag);
    }
    return *subs_[tag];
  }

  void start() { exec_->spawn(demux_loop(base_, &subs_)); }

  static Bytes frame(std::uint8_t tag, util::ByteView payload) {
    util::Writer w(payload.size() + 1);
    w.u8(tag).raw(payload);
    return std::move(w).take();
  }

 private:
  class Sub : public Transport {
   public:
    Sub(sim::Executor& exec, Transport& base, std::uint8_t tag)
        : base_(&base), tag_(tag), incoming_(exec) {}

    ProcessId self() const override { return base_->self(); }
    std::size_t process_count() const override { return base_->process_count(); }
    void send(ProcessId dst, util::Buffer payload) override {
      base_->send(dst, frame(tag_, payload));
    }
    void send_all(util::Buffer payload, bool include_self = true) override {
      // Frame once; the framed buffer is shared across the fan-out.
      base_->send_all(frame(tag_, payload), include_self);
    }
    sim::Channel<TMsg>& incoming() override { return incoming_; }

   private:
    Transport* base_;
    std::uint8_t tag_;
    sim::Channel<TMsg> incoming_;
    friend class TransportMux;
  };

  using SubTable = std::array<std::unique_ptr<Sub>, 256>;

  static sim::Task<void> demux_loop(Transport* base, SubTable* subs) {
    while (true) {
      TMsg m = co_await base->incoming().recv();
      if (m.payload.empty()) continue;
      const std::uint8_t tag = m.payload[0];
      Sub* sub = (*subs)[tag].get();
      if (sub == nullptr) continue;  // unknown tag: drop
      m.payload = m.payload.suffix(1);  // strip the tag in place, zero-copy
      sub->incoming_.send(std::move(m));
    }
  }

  sim::Executor* exec_;
  Transport* base_;
  SubTable subs_;
};

}  // namespace mnm::core
