// Robust Backup(A) — the Byzantine transformation (paper §4.1, Definition 2,
// Lemma 4.3, Theorem 4.4).
//
//   "Let A be a message-passing algorithm. Robust Backup(A) is the algorithm
//    A in which all send and receive operations are replaced by T-send and
//    T-receive operations implemented with non-equivocating broadcast."
//
// Here A = classic Paxos (crash-tolerant, n ≥ 2fP+1 because Paxos needs a
// majority of *participating* processes and Byzantine processes are reduced
// to crashed ones). The replacement is literal: Paxos is written against the
// Transport interface, and this bundle instantiates it over a
// TrustedTransport (NEB + signed histories + the Paxos protocol validator)
// instead of a NetTransport.
//
// The result is weak Byzantine agreement with n ≥ 2fP+1 processes and
// m ≥ 2fM+1 memories, using static permissions only — the slow-but-robust
// half of Fast & Robust.

#pragma once

#include <memory>

#include "src/core/nonequiv_broadcast.hpp"
#include "src/core/omega.hpp"
#include "src/core/paxos.hpp"
#include "src/core/paxos_validator.hpp"
#include "src/core/trusted_messaging.hpp"

namespace mnm::core {

struct RobustBackupConfig {
  std::size_t n = 3;
  NebConfig neb{};
  PaxosConfig paxos{};
};

/// One process's stack: NEB → TrustedTransport(paxos_validator) → Paxos.
class RobustBackup {
 public:
  RobustBackup(sim::Executor& exec, NebSlots& slots,
               const crypto::KeyStore& keystore, crypto::Signer signer,
               Omega& omega, RobustBackupConfig config)
      : neb_(exec, slots, keystore, signer, config.neb),
        transport_(exec, neb_, keystore, signer, trusted::TrustedConfig{config.n},
                   paxos_validator(keystore, config.n)),
        paxos_(exec, transport_, omega, config.paxos) {}

  void start() {
    neb_.start();
    transport_.start();
    paxos_.start();
  }

  sim::Task<Bytes> propose(Bytes value) { return paxos_.propose(std::move(value)); }

  NonEquivBroadcast& neb() { return neb_; }
  trusted::TrustedTransport& transport() { return transport_; }
  Paxos& paxos() { return paxos_; }
  /// T-send decode accounting (suffix-only decode proof).
  const trusted::TsendStats& tsend_stats() const {
    return transport_.tsend_stats();
  }

 private:
  NonEquivBroadcast neb_;
  trusted::TrustedTransport transport_;
  Paxos paxos_;
};

}  // namespace mnm::core
