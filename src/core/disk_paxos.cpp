#include "src/core/disk_paxos.hpp"

#include "src/sim/fanout.hpp"
#include "src/util/serde.hpp"

namespace mnm::core {

Bytes DiskBlock::encode() const {
  util::Writer w(8 + 8 + 1 + 4 + value.size());
  w.u64(mbal).u64(bal).boolean(has_value).bytes(value);
  return std::move(w).take();
}

std::optional<DiskBlock> DiskBlock::decode(util::ByteView raw) {
  if (util::is_bottom(raw)) return DiskBlock{};
  try {
    util::Reader r(raw);
    DiskBlock b;
    b.mbal = r.u64();
    b.bal = r.u64();
    b.has_value = r.boolean();
    b.value = r.bytes();
    r.expect_end();
    return b;
  } catch (const util::SerdeError&) {
    return std::nullopt;
  }
}

DiskPaxos::DiskPaxos(sim::Executor& exec,
                     std::vector<mem::MemoryIface*> memories, RegionId region,
                     Transport& transport, Omega& omega, DiskPaxosConfig config)
    : exec_(&exec),
      memories_(std::move(memories)),
      region_(region),
      transport_(&transport),
      omega_(&omega),
      self_(transport.self()),
      config_(std::move(config)),
      all_(all_processes(config_.n)),
      decision_gate_(exec) {
  for (ProcessId p : all_) {
    block_names_.push_back(config_.prefix + "/block/" + std::to_string(p));
  }
}

void DiskPaxos::start() { exec_->spawn(decide_listener()); }

void DiskPaxos::decide_locally(util::ByteView value) {
  if (decided_value_.has_value()) return;
  decided_value_ = util::to_bytes(value);
  decided_at_ = exec_->now();
  decision_gate_.open();
}

sim::Task<void> DiskPaxos::decide_listener() {
  while (true) {
    const TMsg m = co_await transport_->incoming().recv();
    decide_locally(m.payload);
  }
}

sim::Task<DiskPaxos::RoundResult> DiskPaxos::phase_at_memory(
    std::size_t idx, DiskBlock own) {
  mem::MemoryIface* m = memories_[idx];
  RoundResult out;

  const mem::Status wrote = co_await m->write(
      self_, region_, block_names_[self_ - 1], own.encode());
  if (wrote != mem::Status::kAck) co_return out;

  // Batched scatter-gather read of every block at this disk: one completion
  // event, results in block_names_ order.
  auto reads = co_await m->read_many(self_, region_, block_names_);
  out.blocks.resize(all_.size());
  for (std::size_t i = 0; i < reads.size(); ++i) {
    if (!reads[i].ok()) co_return out;
    const auto block = DiskBlock::decode(reads[i].value);
    if (!block.has_value()) co_return out;
    out.blocks[i] = *block;
  }
  out.ok = true;
  co_return out;
}

sim::Task<Bytes> DiskPaxos::propose(Bytes v) {
  const std::size_t m = memories_.size();
  const std::size_t quorum = majority(m);
  const auto& all = all_;

  while (!decided()) {
    co_await omega_->wait_leadership_or(self_, decision_gate_, config_.poll);
    if (decided()) break;

    std::uint64_t mbal;
    Bytes my_value = v;

    const bool fast = (self_ == kLeaderP1 && first_attempt_);
    first_attempt_ = false;
    if (fast) {
      // p1's implicit phase 1 at ballot 0: blocks are all ⊥ initially, so no
      // value adoption is needed. Unlike Protected Memory Paxos, Disk Paxos
      // must still pay the verifying read in phase 2 below.
      mbal = 0;
    } else {
      mbal = (max_mbal_seen_ / config_.n + 1) * config_.n + (self_ - 1);
      max_mbal_seen_ = mbal;

      // Phase 1: announce mbal, read everyone's blocks from a majority.
      DiskBlock own;
      own.mbal = mbal;
      sim::Fanout<RoundResult> fanout(*exec_);
      for (std::size_t i = 0; i < m; ++i) fanout.add(i, phase_at_memory(i, own));
      auto results = co_await fanout.collect(quorum);

      bool restart = false;
      std::uint64_t best_bal = 0;
      bool adopted = false;
      for (auto& [idx, r] : results) {
        if (!r.ok) {
          restart = true;
          break;
        }
        for (std::size_t i = 0; i < r.blocks.size(); ++i) {
          const DiskBlock& b = r.blocks[i];
          max_mbal_seen_ = std::max(max_mbal_seen_, b.mbal);
          if (all[i] != self_ && b.mbal > mbal) restart = true;
          if (b.has_value && (!adopted || b.bal > best_bal)) {
            adopted = true;
            best_bal = b.bal;
            my_value = b.value;
          }
        }
        if (restart) break;
      }
      if (restart) {
        co_await exec_->sleep(config_.retry_backoff);
        continue;
      }
    }

    // Phase 2: write the chosen value, then *verify* by re-reading all
    // blocks — with static permissions an acked write proves nothing about
    // contention, so the extra read (2 more delays) is unavoidable (§6).
    DiskBlock commit;
    commit.mbal = mbal;
    commit.bal = mbal;
    commit.has_value = true;
    commit.value = my_value;
    sim::Fanout<RoundResult> fanout(*exec_);
    for (std::size_t i = 0; i < m; ++i) fanout.add(i, phase_at_memory(i, commit));
    auto results = co_await fanout.collect(quorum);

    bool restart = false;
    for (auto& [idx, r] : results) {
      if (!r.ok) {
        restart = true;
        break;
      }
      for (std::size_t i = 0; i < r.blocks.size(); ++i) {
        const DiskBlock& b = r.blocks[i];
        max_mbal_seen_ = std::max(max_mbal_seen_, b.mbal);
        if (all[i] != self_ && b.mbal > mbal) restart = true;
      }
      if (restart) break;
    }
    if (restart) {
      co_await exec_->sleep(config_.retry_backoff);
      continue;
    }

    decide_locally(my_value);
    transport_->send_all(my_value, /*include_self=*/false);
  }

  co_return decision();
}

}  // namespace mnm::core
