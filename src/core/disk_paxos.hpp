// Disk Paxos (Gafni & Lamport [28]) — the static-permission baseline.
//
// Memory-only consensus with n ≥ fP+1 processes and m ≥ 2fM+1 memories, but
// *no* dynamic permissions: every memory exposes a single region that always
// permits all processes to read and write (the paper's "disk model", §3).
// Matching the paper's framing (§1, §6), a leader here cannot know its
// phase-2 write was uncontended, so after writing it must re-read all blocks
// to check that no higher ballot appeared — the verifying read that
// Protected Memory Paxos eliminates with permissions. Common case:
//
//   write block (2 delays) + verifying read (2 delays) = 4 delays,
//
// even when p1 skips phase 1 on its first attempt. Theorem 6.1 shows no
// static-permission shared-memory algorithm can do better than this 2-op
// structure (no 2-deciding algorithm exists); bench_lower_bound measures the
// gap.
//
// Registers: "<prefix>/block/<p>" holds p's block (mbal, bal, value) — Disk
// Paxos's dblock — replicated across the m memories by direct per-memory
// writes. The prefix defaults to "dp"; multi-slot engines namespace it per
// slot ("s<slot>/dp") so one memory serves a whole log.
//
// DECIDE dissemination runs over the Transport abstraction (one conversation,
// no tag plumbing): pass a NetTransport in a standalone setup or a slot
// sub-transport under core::ConsensusEngine.

#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "src/common.hpp"
#include "src/core/omega.hpp"
#include "src/core/transport.hpp"
#include "src/mem/memory.hpp"
#include "src/sim/executor.hpp"
#include "src/sim/sync.hpp"
#include "src/sim/task.hpp"

namespace mnm::core {

/// Create the single open, static region of the disk model on one memory.
template <typename MemoryT>
RegionId make_disk_region(MemoryT& memory, std::size_t n,
                          const std::string& prefix = "dp") {
  return memory.create_region({prefix + "/"},
                              mem::Permission::open(all_processes(n)),
                              mem::static_permissions());
}

struct DiskBlock {
  std::uint64_t mbal = 0;  // ballot being attempted
  std::uint64_t bal = 0;   // ballot of the accepted value
  bool has_value = false;
  Bytes value;

  Bytes encode() const;
  static std::optional<DiskBlock> decode(util::ByteView raw);
};

struct DiskPaxosConfig {
  std::size_t n = 2;
  /// Register-name namespace; must match the region's make_disk_region prefix.
  std::string prefix = "dp";
  sim::Time poll = 1;
  sim::Time retry_backoff = 8;
};

class DiskPaxos {
 public:
  /// `transport` carries the DECIDE dissemination; `transport.self()` is this
  /// process's identity.
  DiskPaxos(sim::Executor& exec, std::vector<mem::MemoryIface*> memories,
            RegionId region, Transport& transport, Omega& omega,
            DiskPaxosConfig config);

  void start();
  sim::Task<Bytes> propose(Bytes v);

  bool decided() const { return decided_value_.has_value(); }
  const Bytes& decision() const { return *decided_value_; }
  sim::Time decided_at() const { return decided_at_; }
  /// Disk Paxos is never 2-deciding (Theorem 6.1) — kept for the uniform
  /// ConsensusEngine surface.
  bool decided_fast() const { return false; }
  sim::Gate& decision_gate() { return decision_gate_; }

 private:
  struct RoundResult {
    bool ok = false;                 // no higher mbal seen
    std::vector<DiskBlock> blocks;   // all blocks at this memory
  };

  /// Write own block then read all blocks at memory `idx` (one Disk Paxos
  /// "phase" at one disk).
  sim::Task<RoundResult> phase_at_memory(std::size_t idx, DiskBlock own);
  sim::Task<void> decide_listener();
  void decide_locally(util::ByteView value);

  sim::Executor* exec_;
  std::vector<mem::MemoryIface*> memories_;
  RegionId region_;
  Transport* transport_;
  Omega* omega_;
  ProcessId self_;
  DiskPaxosConfig config_;

  // Hot-path caches (built once in the constructor).
  std::vector<ProcessId> all_;
  std::vector<std::string> block_names_;  // index p - 1

  std::uint64_t max_mbal_seen_ = 0;
  bool first_attempt_ = true;
  std::optional<Bytes> decided_value_;
  sim::Time decided_at_ = 0;
  sim::Gate decision_gate_;
};

}  // namespace mnm::core
