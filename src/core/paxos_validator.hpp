// Paxos protocol validator for trusted histories.
//
// Robust Backup (§4.1) needs receivers to check "whether a received message
// is consistent with the protocol" given the sender's full history. This
// validator replays the sender's history against the Paxos state machine and
// rejects any send a correct Paxos process could not have produced:
//
//  * PROMISE(b) requires an earlier verified receipt of PREPARE(b) from b's
//    owner, b ≥ the acceptor's promised ballot at that point, and the
//    reported (acc_ballot, value) to match the replayed acceptor state;
//  * ACCEPTED(b) requires an earlier receipt of ACCEPT(b, v), b ≥ promised;
//  * PREPARE/ACCEPT(b) must use a ballot owned by the sender; ACCEPT(b, v)
//    (b > 0) requires receipts of a majority of PROMISE(b) from distinct
//    processes and v to be the value of the highest-ballot promise that
//    carried one (the Paxos value-choice rule); ballot 0 is p1's implicit
//    phase-1 fast ballot, whose value is the sender's own input and thus
//    unconstrained;
//  * DECIDE(v) requires a majority of ACCEPTED(b) receipts for a ballot b at
//    which the sender itself sent ACCEPT(b, v).
//
// Receipts are verified cryptographically (verify_receipt), so a Byzantine
// process cannot invent justifying evidence; it can only withhold messages —
// crash behaviour, which the underlying crash-tolerant Paxos already
// handles. This is the failure translation of Clement et al. made
// executable.
//
// Payload framing: payloads tagged kMuxPaxos (or raw, untagged PaxosMsg
// bytes) are validated; kMuxSetup payloads are Preferential Paxos set-up
// values, which carry arbitrary inputs and are always protocol-legal.

#pragma once

#include "src/core/trusted_messaging.hpp"

namespace mnm::core {

/// Build a HistoryValidator enforcing Paxos semantics for an n-process
/// system. `keystore` must outlive the validator.
trusted::HistoryValidator paxos_validator(const crypto::KeyStore& keystore,
                                          std::size_t n);

}  // namespace mnm::core
