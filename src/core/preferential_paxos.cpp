#include "src/core/preferential_paxos.hpp"

#include <set>

#include "src/util/serde.hpp"

namespace mnm::core {

Bytes PrioInput::encode() const {
  util::Writer w(12 + value.size() + proof.size() + leader_sig.size());
  w.bytes(value).bytes(proof).bytes(leader_sig);
  return std::move(w).take();
}

std::optional<PrioInput> PrioInput::decode(util::ByteView raw) {
  try {
    util::Reader r(raw);
    PrioInput p;
    p.value = r.bytes();
    p.proof = r.bytes();
    p.leader_sig = r.bytes();
    r.expect_end();
    return p;
  } catch (const util::SerdeError&) {
    return std::nullopt;
  }
}

PreferentialPaxos::PreferentialPaxos(sim::Executor& exec, Transport& setup,
                                     Paxos& paxos,
                                     PreferentialPaxosConfig config,
                                     PriorityFn priority)
    : exec_(&exec),
      setup_(&setup),
      paxos_(&paxos),
      config_(config),
      priority_(std::move(priority)) {}

sim::Task<PrioInput> PreferentialPaxos::propose(PrioInput input) {
  // Set-up phase (Algorithm 8): T-send our input to all, wait for n − fP
  // inputs (our own arrives through the same broadcast path), adopt the
  // highest-priority one.
  setup_->send_all(input.encode());

  PrioInput best = input;
  int best_priority = priority_(input);
  std::set<ProcessId> senders;
  const std::size_t needed = config_.n - config_.f;
  while (senders.size() < needed) {
    TMsg m = co_await setup_->incoming().recv();
    const auto candidate = PrioInput::decode(m.payload);
    if (!candidate.has_value()) continue;       // Byzantine junk: not an input
    if (!senders.insert(m.src).second) continue;  // one input per process
    const int p = priority_(*candidate);
    if (p > best_priority) {
      best_priority = p;
      best = *candidate;
    }
  }

  // Embedded Robust Backup(Paxos) on the adopted input.
  const Bytes decided = co_await paxos_->propose(best.encode());
  const auto out = PrioInput::decode(decided);
  // The decided bytes came through Paxos validity from some process's
  // encoded input; decode failure would mean a correct process proposed
  // garbage, which cannot happen.
  co_return out.value_or(PrioInput{decided, {}, {}});
}

}  // namespace mnm::core
