#include "src/core/trusted_messaging.hpp"

#include <cassert>

namespace mnm::core::trusted {

Bytes HistoryEntry::encode() const {
  util::Writer w;
  w.u8(static_cast<std::uint8_t>(kind)).u64(k).u32(peer).bytes(payload).bytes(chain);
  sig.encode(w);
  return std::move(w).take();
}

std::optional<HistoryEntry> HistoryEntry::decode(util::Reader& r) {
  try {
    HistoryEntry e;
    const std::uint8_t kind = r.u8();
    if (kind != 1 && kind != 2) return std::nullopt;
    e.kind = static_cast<Kind>(kind);
    e.k = r.u64();
    e.peer = r.u32();
    e.payload = r.bytes();
    e.chain = r.bytes();
    e.sig = crypto::Signature::decode(r);
    return e;
  } catch (const util::SerdeError&) {
    return std::nullopt;
  }
}

Bytes encode_history(const History& h) {
  util::Writer w;
  w.u32(static_cast<std::uint32_t>(h.size()));
  for (const auto& e : h) w.bytes(e.encode());
  return std::move(w).take();
}

std::optional<History> decode_history(const Bytes& raw) {
  try {
    util::Reader r(raw);
    const std::uint32_t count = r.u32();
    History h;
    h.reserve(count);
    for (std::uint32_t i = 0; i < count; ++i) {
      const Bytes entry_bytes = r.bytes();
      util::Reader er(entry_bytes);
      auto e = HistoryEntry::decode(er);
      if (!e.has_value()) return std::nullopt;
      h.push_back(std::move(*e));
    }
    r.expect_end();
    return h;
  } catch (const util::SerdeError&) {
    return std::nullopt;
  }
}

Bytes chain_entry(const Bytes& prev_chain, HistoryEntry::Kind kind,
                  std::uint64_t k, ProcessId peer, const Bytes& payload) {
  util::Writer w;
  w.bytes(prev_chain).u8(static_cast<std::uint8_t>(kind)).u64(k).u32(peer).bytes(payload);
  return crypto::digest_bytes(crypto::sha256(w.data()));
}

bool verify_history_structure(const crypto::KeyStore& ks, ProcessId owner,
                              const History& h) {
  Bytes prev_chain;  // empty seed
  std::uint64_t expected_sent = 1;
  for (const auto& e : h) {
    if (e.chain != chain_entry(prev_chain, e.kind, e.k, e.peer, e.payload)) {
      return false;
    }
    if (!ks.valid_from(owner, e.chain, e.sig)) return false;
    if (e.kind == HistoryEntry::Kind::kSent) {
      if (e.k != expected_sent) return false;
      ++expected_sent;
    }
    prev_chain = e.chain;
  }
  return true;
}

Bytes encode_tsend(ProcessId dst, const Bytes& payload, const History& h,
                   std::uint64_t k, const crypto::Signature& sig) {
  util::Writer w;
  w.u32(dst).bytes(payload).bytes(encode_history(h)).u64(k);
  sig.encode(w);
  return std::move(w).take();
}

std::optional<TSendContent> decode_tsend(const Bytes& raw) {
  try {
    util::Reader r(raw);
    TSendContent c;
    c.dst = r.u32();
    c.payload = r.bytes();
    auto h = decode_history(r.bytes());
    if (!h.has_value()) return std::nullopt;
    c.history = std::move(*h);
    c.k = r.u64();
    c.sig = crypto::Signature::decode(r);
    r.expect_end();
    return c;
  } catch (const util::SerdeError&) {
    return std::nullopt;
  }
}

Bytes tsend_signing_bytes(std::uint64_t k, ProcessId dst, const Bytes& payload,
                          const Bytes& history_digest) {
  util::Writer w;
  w.str("tsend")
      .u64(k)
      .u32(dst)
      .raw(crypto::digest_bytes(crypto::sha256(payload)))
      .bytes(history_digest);
  return std::move(w).take();
}

Bytes Receipt::encode() const {
  util::Writer w;
  w.u32(dst).bytes(payload).bytes(history_digest);
  origin_sig.encode(w);
  return std::move(w).take();
}

std::optional<Receipt> Receipt::decode(const Bytes& raw) {
  try {
    util::Reader r(raw);
    Receipt rec;
    rec.dst = r.u32();
    rec.payload = r.bytes();
    rec.history_digest = r.bytes();
    rec.origin_sig = crypto::Signature::decode(r);
    r.expect_end();
    return rec;
  } catch (const util::SerdeError&) {
    return std::nullopt;
  }
}

bool verify_receipt(const crypto::KeyStore& ks, ProcessId origin,
                    std::uint64_t k, const Receipt& r) {
  return ks.valid_from(
      origin, tsend_signing_bytes(k, r.dst, r.payload, r.history_digest),
      r.origin_sig);
}

TrustedTransport::TrustedTransport(sim::Executor& exec, NonEquivBroadcast& neb,
                                   const crypto::KeyStore& keystore,
                                   crypto::Signer signer, TrustedConfig config,
                                   HistoryValidator validator)
    : exec_(&exec),
      neb_(&neb),
      keystore_(&keystore),
      signer_(signer),
      config_(config),
      validator_(std::move(validator)),
      incoming_(exec) {}

void TrustedTransport::start() {
  assert(!started_);
  started_ = true;
  exec_->spawn(deliver_loop());
}

void TrustedTransport::append_entry(HistoryEntry::Kind kind, std::uint64_t k,
                                    ProcessId peer, const Bytes& payload) {
  const Bytes prev = history_.empty() ? Bytes{} : history_.back().chain;
  HistoryEntry e;
  e.kind = kind;
  e.k = k;
  e.peer = peer;
  e.payload = payload;
  e.chain = chain_entry(prev, kind, k, peer, payload);
  e.sig = signer_.sign(e.chain);
  history_.push_back(std::move(e));
}

namespace {
sim::Task<void> run_broadcast(NonEquivBroadcast* neb, Bytes wire) {
  (void)co_await neb->broadcast(std::move(wire));
}
}  // namespace

void TrustedTransport::send(ProcessId dst, Bytes payload) {
  // Algorithm 3 T-send: k++; broadcast(k, (m, H)); append sent(k, m) to H.
  const std::uint64_t k = next_k_++;
  const Bytes history_digest =
      crypto::digest_bytes(crypto::sha256(encode_history(history_)));
  const crypto::Signature sig =
      signer_.sign(tsend_signing_bytes(k, dst, payload, history_digest));
  const Bytes wire = encode_tsend(dst, payload, history_, k, sig);
  append_entry(HistoryEntry::Kind::kSent, k, dst, payload);
  // Fire-and-forget: the broadcast completes (majority ack) in background.
  exec_->spawn(run_broadcast(neb_, wire));
}

sim::Task<void> TrustedTransport::deliver_loop() {
  while (true) {
    const NebDelivery d = co_await neb_->deliveries().recv();
    const auto content = decode_tsend(d.message);
    if (!content.has_value()) {
      ++rejected_;
      continue;
    }
    // Structural audit of the sender's attached history: hash chain intact,
    // every link signed by the sender, sent-sequence contiguous, and the
    // NEB sequence number matches the number of prior sends.
    if (!verify_history_structure(*keystore_, d.from, content->history)) {
      ++rejected_;
      continue;
    }
    std::uint64_t prior_sends = 0;
    for (const auto& e : content->history) {
      if (e.kind == HistoryEntry::Kind::kSent) ++prior_sends;
    }
    if (prior_sends + 1 != d.k || content->k != d.k) {
      ++rejected_;
      continue;
    }
    // The sender's inner signature must bind (k, dst, payload, history) —
    // this is what makes receipts citable later.
    const Bytes history_digest =
        crypto::digest_bytes(crypto::sha256(encode_history(content->history)));
    if (!keystore_->valid_from(d.from,
                               tsend_signing_bytes(d.k, content->dst,
                                                   content->payload,
                                                   history_digest),
                               content->sig)) {
      ++rejected_;
      continue;
    }
    // Protocol-level audit ("whether they correspond to a correct history of
    // the algorithm", Algorithm 3 line 10).
    if (!validator_(d.from, content->history, d.k, content->dst,
                    content->payload)) {
      ++rejected_;
      continue;
    }
    // T-receive: record a standalone-verifiable receipt in our own history,
    // hand the message to the protocol if it is addressed to us.
    const Receipt receipt{content->dst, content->payload, history_digest,
                          content->sig};
    append_entry(HistoryEntry::Kind::kReceived, d.k, d.from, receipt.encode());
    if (content->dst == self() || content->dst == kToAll) {
      incoming_.send(TMsg{d.from, content->payload});
    }
  }
}

}  // namespace mnm::core::trusted
