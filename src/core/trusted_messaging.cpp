#include "src/core/trusted_messaging.hpp"

#include <algorithm>
#include <cassert>
#include <cstring>

namespace mnm::core::trusted {

void HistoryEntry::encode_into(util::Writer& w) const {
  w.u8(static_cast<std::uint8_t>(kind)).u64(k).u32(peer).bytes(payload).bytes(chain);
  sig.encode(w);
}

Bytes HistoryEntry::encode() const {
  util::Writer w(1 + 8 + 4 + 8 + payload.size() + chain.size() + 8 + sig.mac.size());
  encode_into(w);
  return std::move(w).take();
}

std::optional<HistoryEntry> HistoryEntry::decode(util::Reader& r) {
  try {
    HistoryEntry e;
    const std::uint8_t kind = r.u8();
    if (kind != 1 && kind != 2) return std::nullopt;
    e.kind = static_cast<Kind>(kind);
    e.k = r.u64();
    e.peer = r.u32();
    e.payload = r.bytes();
    e.chain = r.bytes();
    e.sig = crypto::Signature::decode(r);
    return e;
  } catch (const util::SerdeError&) {
    return std::nullopt;
  }
}

namespace {
/// Append one length-prefixed entry encoding to `w` — the single owner of
/// the entry framing shared by encode_history and the incremental
/// per-transport encoding.
void append_prefixed_entry(util::Writer& w, const HistoryEntry& e) {
  const std::size_t at = w.size();
  w.u32(0);
  e.encode_into(w);
  w.patch_u32(at, static_cast<std::uint32_t>(w.size() - at - 4));
}
}  // namespace

Bytes encode_history(const History& h) {
  // One pre-sized buffer; each entry is written in place behind a patched
  // length prefix instead of being encoded into its own temporary.
  std::size_t estimate = 4;
  for (const auto& e : h) {
    estimate += 4 + 1 + 8 + 4 + 8 + e.payload.size() + e.chain.size() + 8 +
                e.sig.mac.size();
  }
  util::Writer w(estimate);
  w.u32(static_cast<std::uint32_t>(h.size()));
  for (const auto& e : h) append_prefixed_entry(w, e);
  return std::move(w).take();
}

std::optional<History> decode_history(const Bytes& raw) {
  try {
    util::Reader r(raw);
    const std::uint32_t count = r.u32();
    History h;
    // The count is attacker-controlled; cap the pre-size by what the buffer
    // could possibly hold (every entry frame is > 8 bytes) so a forged
    // header cannot force a huge allocation before the bounds checks bite.
    h.reserve(std::min<std::size_t>(count, r.remaining() / 8));
    for (std::uint32_t i = 0; i < count; ++i) {
      const util::ByteView entry_bytes = r.bytes_view();
      util::Reader er(entry_bytes);
      auto e = HistoryEntry::decode(er);
      if (!e.has_value()) return std::nullopt;
      er.expect_end();  // entry frames are canonical (see decode_tsend)
      h.push_back(std::move(*e));
    }
    r.expect_end();
    return h;
  } catch (const util::SerdeError&) {
    return std::nullopt;
  }
}

Bytes chain_entry(const Bytes& prev_chain, HistoryEntry::Kind kind,
                  std::uint64_t k, ProcessId peer, util::ByteView payload) {
  util::Writer w(4 + prev_chain.size() + 1 + 8 + 4 + 4 + payload.size());
  w.bytes(prev_chain).u8(static_cast<std::uint8_t>(kind)).u64(k).u32(peer).bytes(payload);
  return crypto::digest_bytes(crypto::sha256(w.data()));
}

bool verify_history_suffix(const crypto::KeyStore& ks, ProcessId owner,
                           const HistoryEntry* entries, std::size_t count,
                           Bytes& prev_chain, std::uint64_t& expected_sent) {
  for (std::size_t i = 0; i < count; ++i) {
    const HistoryEntry& e = entries[i];
    if (e.chain != chain_entry(prev_chain, e.kind, e.k, e.peer, e.payload)) {
      return false;
    }
    if (!ks.valid_from(owner, e.chain, e.sig)) return false;
    if (e.kind == HistoryEntry::Kind::kSent) {
      if (e.k != expected_sent) return false;
      ++expected_sent;
    }
    prev_chain = e.chain;
  }
  return true;
}

bool verify_history_structure(const crypto::KeyStore& ks, ProcessId owner,
                              const History& h) {
  Bytes prev_chain;  // empty seed
  std::uint64_t expected_sent = 1;
  return verify_history_suffix(ks, owner, h.data(), h.size(), prev_chain,
                               expected_sent);
}

namespace {
/// The single owner of the T-send wire layout, taking the history as its
/// pre-encoded body so callers that maintain the encoding incrementally
/// never have to materialize a concatenation. The body leads the wire (see
/// trusted_messaging.hpp): append-only bodies give consecutive wires a long
/// shared prefix, which NEB's digest-over-suffix verification exploits. A
/// zero length-prefix terminates the entry stream (entries are never empty).
Bytes encode_tsend_wire(ProcessId dst, util::ByteView payload,
                        util::ByteView history_body, std::uint64_t k,
                        const crypto::Signature& sig, std::uint64_t base,
                        const Bytes& base_chain) {
  util::Writer w(16 + base_chain.size() + history_body.size() + 4 + 4 + 4 +
                 payload.size() + 8 + 8 + sig.mac.size());
  if (base > 0) {
    // Checkpoint header: the marker can never open a real entry frame (a
    // 4 GiB entry is unencodable), so decoders disambiguate on the first
    // word alone.
    w.u32(kCheckpointMarker).u64(base).bytes(base_chain);
  }
  w.raw(history_body);
  w.u32(0);  // entry-stream terminator
  w.u32(dst).bytes(payload).u64(k);
  sig.encode(w);
  return std::move(w).take();
}
}  // namespace

Bytes encode_tsend(ProcessId dst, util::ByteView payload, const History& h,
                   std::uint64_t k, const crypto::Signature& sig,
                   std::uint64_t base, const Bytes& base_chain) {
  const Bytes enc = encode_history(h);
  return encode_tsend_wire(dst, payload, util::ByteView(enc).subspan(4), k, sig,
                           base, base_chain);
}

std::optional<TSendContent> decode_tsend(util::ByteView raw,
                                         util::ByteView verified_prefix,
                                         std::size_t prefix_entries,
                                         std::size_t known_shared) {
  try {
    TSendContent c;
    // Checkpoint header, if present (see kCheckpointMarker). Parsed before
    // the prefix hop so `base`/`base_chain` are available either way; when
    // the hop below matches, the header bytes are part of the verified
    // prefix (the stored prefix always begins at wire byte 0).
    std::size_t header = 0;
    if (raw.size() >= 4) {
      util::Reader hr(raw);
      if (hr.u32() == kCheckpointMarker) {
        c.base = hr.u64();
        c.base_chain = hr.bytes();
        if (c.base == 0) return std::nullopt;  // canonical: header ⇔ base > 0
        header = raw.size() - hr.remaining();
      }
    }
    // Hop over the verified prefix if the wire leads with exactly those
    // bytes. The prefix is a concatenation of well-formed length-prefixed
    // entry frames (preceded by the sender's checkpoint header when it has
    // one), so a byte-identical wire prefix parses to the same entries with
    // a frame boundary exactly at its end — no decode needed. Only the
    // residual past `known_shared` is compared; both inputs are
    // receiver-established (stored verified bytes / NEB delivered-prefix
    // identity), never fields of the incoming message.
    std::size_t skip = 0;
    if (prefix_entries > 0 && !verified_prefix.empty() &&
        raw.size() > verified_prefix.size()) {
      const std::size_t from = std::min(known_shared, verified_prefix.size());
      const std::size_t residual = verified_prefix.size() - from;
      c.prefix_bytes_compared = residual;  // paid whether or not it matches
      if (residual == 0 ||
          std::memcmp(raw.data() + from, verified_prefix.data() + from,
                      residual) == 0) {
        skip = verified_prefix.size();
        c.prefix_entries = prefix_entries;
      }
    }
    // A matched prefix always spans the header (stored prefixes start at
    // wire byte 0); on a miss, entry parsing starts right past it.
    util::Reader r(raw.subspan(std::max(skip, header)));
    while (true) {
      const util::ByteView entry_bytes = r.bytes_view();
      if (entry_bytes.empty()) break;  // terminator
      util::Reader er(entry_bytes);
      auto e = HistoryEntry::decode(er);
      if (!e.has_value()) return std::nullopt;
      // Reject trailing bytes inside an entry frame: entry encodings must
      // be canonical so that NEB's prefix-digest sharing (and any raw-byte
      // comparison of wires) cannot be defeated by a Byzantine sender
      // alternating encodings of the same history.
      er.expect_end();
      c.suffix.push_back(std::move(*e));
    }
    // Everything before the 4-byte terminator is the history body
    // (including the checkpoint header and any skipped prefix).
    c.history_body = raw.subspan(0, raw.size() - r.remaining() - 4);
    c.dst = r.u32();
    c.payload = r.bytes();
    c.k = r.u64();
    c.sig = crypto::Signature::decode(r);
    r.expect_end();
    return c;
  } catch (const util::SerdeError&) {
    return std::nullopt;
  }
}

Bytes tsend_signing_bytes(std::uint64_t k, ProcessId dst, util::ByteView payload,
                          const Bytes& history_digest) {
  util::Writer w(4 + 5 + 8 + 4 + crypto::kSha256DigestSize + 4 +
                 history_digest.size());
  w.str("tsend")
      .u64(k)
      .u32(dst)
      .raw(crypto::digest_bytes(crypto::sha256(payload)))
      .bytes(history_digest);
  return std::move(w).take();
}

Bytes Receipt::encode() const {
  util::Writer w(4 + 4 + payload.size() + 4 + history_digest.size() + 8 +
                 origin_sig.mac.size());
  w.u32(dst).bytes(payload).bytes(history_digest);
  origin_sig.encode(w);
  return std::move(w).take();
}

std::optional<Receipt> Receipt::decode(util::ByteView raw) {
  try {
    util::Reader r(raw);
    Receipt rec;
    rec.dst = r.u32();
    rec.payload = r.bytes();
    rec.history_digest = r.bytes();
    rec.origin_sig = crypto::Signature::decode(r);
    r.expect_end();
    return rec;
  } catch (const util::SerdeError&) {
    return std::nullopt;
  }
}

bool verify_receipt(const crypto::KeyStore& ks, ProcessId origin,
                    std::uint64_t k, const Receipt& r) {
  return ks.valid_from(
      origin, tsend_signing_bytes(k, r.dst, r.payload, r.history_digest),
      r.origin_sig);
}

TrustedTransport::TrustedTransport(sim::Executor& exec, NonEquivBroadcast& neb,
                                   const crypto::KeyStore& keystore,
                                   crypto::Signer signer, TrustedConfig config,
                                   HistoryValidator validator)
    : exec_(&exec),
      neb_(&neb),
      keystore_(&keystore),
      signer_(signer),
      config_(config),
      validator_(std::move(validator)),
      incoming_(exec) {}

void TrustedTransport::start() {
  assert(!started_);
  started_ = true;
  exec_->spawn(deliver_loop());
}

void TrustedTransport::maybe_checkpoint(std::size_t published,
                                        std::size_t published_bytes) {
  if (config_.checkpoint_interval == 0 ||
      published < config_.checkpoint_interval) {
    return;
  }
  // Drop exactly the prefix that was on the wire just broadcast. Entries
  // appended after that encode (the new kSent link, receipts since the last
  // send) have never been published, so dropping them would strand every
  // receiver: a receiver's verified position can only reach entries it has
  // seen on some wire. The chain tip of the dropped prefix commits to all
  // of it, so chaining, signing, and the wire header continue from there.
  history_base_ += published;
  base_chain_ = history_[published - 1].chain;
  history_.erase(history_.begin(),
                 history_.begin() + static_cast<std::ptrdiff_t>(published));
  encoded_body_.erase(
      encoded_body_.begin(),
      encoded_body_.begin() + static_cast<std::ptrdiff_t>(published_bytes));
  ++checkpoints_;
}

PeerCheckpoint TrustedTransport::peer_checkpoint(ProcessId owner) const {
  const PeerCache* pc = peer_cache_.find(owner);
  if (pc == nullptr) return {};
  return {pc->base + pc->entries, pc->last_chain, pc->expected_sent};
}

void TrustedTransport::seed_peer_checkpoint(ProcessId owner,
                                            const PeerCheckpoint& cp) {
  PeerCache& pc = peer_cache_[owner];
  pc.base = cp.entries;
  pc.entries = 0;
  pc.body.clear();
  pc.last_chain = cp.chain;
  pc.expected_sent = cp.expected_sent;
  pc.neb_known = 0;
}

void TrustedTransport::append_entry(HistoryEntry::Kind kind, std::uint64_t k,
                                    ProcessId peer, util::ByteView payload) {
  const Bytes prev = history_.empty() ? base_chain_ : history_.back().chain;
  HistoryEntry e;
  e.kind = kind;
  e.k = k;
  e.peer = peer;
  e.payload = util::to_bytes(payload);
  e.chain = chain_entry(prev, kind, k, peer, payload);
  e.sig = signer_.sign(e.chain);
  // Keep the incremental encoding in lockstep with history_.
  util::Writer w(4 + 1 + 8 + 4 + 8 + e.payload.size() + e.chain.size() + 8 +
                 e.sig.mac.size());
  append_prefixed_entry(w, e);
  const Bytes& entry_enc = w.data();
  encoded_body_.insert(encoded_body_.end(), entry_enc.begin(), entry_enc.end());
  history_.push_back(std::move(e));
}

namespace {
sim::Task<void> run_broadcast(NonEquivBroadcast* neb, Bytes wire) {
  (void)co_await neb->broadcast(std::move(wire));
}
}  // namespace

void TrustedTransport::send(ProcessId dst, util::Buffer payload) {
  // Algorithm 3 T-send: k++; broadcast(k, (m, H)); append sent(k, m) to H.
  // The wire is produced from the incrementally-maintained encoded_body_,
  // and the history is bound by its chain tip — O(1), no re-hash of the
  // encoding (the chain already commits to every entry).
  const std::uint64_t k = next_k_++;
  const Bytes history_digest =
      history_.empty() ? base_chain_ : history_.back().chain;

  const crypto::Signature sig =
      signer_.sign(tsend_signing_bytes(k, dst, payload, history_digest));

  // Everything retained right now goes out on this wire — that is the
  // prefix maybe_checkpoint below may drop (published entries only).
  const std::size_t published = history_.size();
  const std::size_t published_bytes = encoded_body_.size();
  Bytes wire = encode_tsend_wire(dst, payload, encoded_body_, k, sig,
                                 history_base_, base_chain_);

  append_entry(HistoryEntry::Kind::kSent, k, dst, payload);
  maybe_checkpoint(published, published_bytes);
  // Fire-and-forget: the broadcast completes (majority ack) in background.
  exec_->spawn(run_broadcast(neb_, std::move(wire)));
}

sim::Task<void> TrustedTransport::deliver_loop() {
  while (true) {
    const NebDelivery d = co_await neb_->deliveries().recv();
    ++stats_.deliveries;
    // Fold this wire into the prefix-identity anchor *before* decoding: NEB
    // verified the wire's first `shared_prefix` bytes equal the sender's
    // previous delivered wire, of which the first `neb_known` bytes are
    // known equal to our stored verified body — min-composing keeps the
    // identity receiver-anchored across deliveries, including rejected ones
    // (NEB's prev-delivered advances on those too).
    PeerCache& pc = peer_cache_[d.from];
    pc.neb_known = std::min<std::size_t>(pc.neb_known, d.shared_prefix);
    // Decode only past the verified prefix. Histories only ever extend, so a
    // wire whose leading bytes match the prefix we already verified on this
    // sender's previous message needs neither re-decoding nor re-verifying —
    // at most one residual memcmp bounded by the stored prefix. The compare
    // is against our stored verified bytes: a chain value read out of the
    // *incoming* prefix is attacker-supplied and proves nothing
    // (paxos_validator may resume from its committed state only because the
    // transport anchors prefix identity this way).
    auto content =
        decode_tsend(d.message, pc.body, pc.entries, pc.neb_known);
    if (!content.has_value()) {
      ++rejected_;
      continue;
    }
    stats_.entries_decoded += content->suffix.size();
    stats_.entries_skipped += content->prefix_entries;
    stats_.prefix_bytes_compared += content->prefix_bytes_compared;
    // Structural audit of the attached history's new entries: hash chain
    // intact, every link signed by the sender, sent-sequence contiguous,
    // and the NEB sequence number matches the number of prior sends.
    const util::ByteView body = content->history_body;
    Bytes prev_chain;
    std::uint64_t expected_sent = 1;
    bool anchored = false;
    if (content->prefix_entries > 0) {
      prev_chain = pc.last_chain;
      expected_sent = pc.expected_sent;
    } else if (content->base > 0) {
      // Checkpointed wire with no byte-prefix match: the dropped entries
      // are not on the wire, so verification can only resume from a
      // position this receiver already holds (earlier deliveries or a
      // seed). The wire's claimed base chain is checked against that held
      // state — never the other way around. No anchor ⇒ reject: to this
      // receiver the sender has crashed, exactly the Byzantine downgrade
      // T-send promises.
      if (pc.base + pc.entries != content->base ||
          pc.last_chain != content->base_chain) {
        ++rejected_;
        ++checkpoint_rejected_;
        continue;
      }
      anchored = true;
      prev_chain = pc.last_chain;
      expected_sent = pc.expected_sent;
    }
    if (!verify_history_suffix(*keystore_, d.from, content->suffix.data(),
                               content->suffix.size(), prev_chain,
                               expected_sent)) {
      ++rejected_;
      continue;
    }
    // verify_history_suffix left expected_sent at 1 + (#kSent entries in the
    // whole history), i.e. prior sends + 1 — no re-scan needed. It also left
    // prev_chain at the chain tip, which *is* the history digest the inner
    // signature binds (empty history ⇒ empty digest) — no O(history) hash.
    if (expected_sent != d.k || content->k != d.k) {
      ++rejected_;
      continue;
    }
    // The sender's inner signature must bind (k, dst, payload, history) —
    // this is what makes receipts citable later.
    const Bytes& history_digest = prev_chain;
    if (!keystore_->valid_from(d.from,
                               tsend_signing_bytes(d.k, content->dst,
                                                   content->payload,
                                                   history_digest),
                               content->sig)) {
      ++rejected_;
      continue;
    }
    // Protocol-level audit ("whether they correspond to a correct history of
    // the algorithm", Algorithm 3 line 10), resumable: the validator sees
    // only the suffix and commits its replay state iff it accepts, so its
    // per-owner position and our prefix cache advance (and roll back on
    // reject) in lockstep.
    ValidatorCall vc;
    vc.owner = d.from;
    vc.suffix = content->suffix.data();
    vc.suffix_len = content->suffix.size();
    // Global (checkpoint-inclusive) entry count before the suffix, so a
    // stateful validator's committed position lines up whether the prefix
    // was byte-skipped, checkpoint-anchored, or absent.
    vc.prefix_entries =
        anchored ? static_cast<std::size_t>(content->base)
                 : (content->prefix_entries > 0
                        ? static_cast<std::size_t>(pc.base) +
                              content->prefix_entries
                        : 0);
    vc.k = d.k;
    vc.dst = content->dst;
    vc.payload = &content->payload;
    if (!validator_(vc)) {
      ++rejected_;
      continue;
    }
    // All checks passed: remember this sender's now-verified prefix. On a
    // cache hit the existing body bytes were just confirmed equal, so only
    // the new suffix needs appending; the whole body is by construction a
    // prefix of this delivered wire, re-seeding the identity anchor.
    pc.entries = content->prefix_entries + content->suffix.size();
    if (content->prefix_entries > 0) {
      pc.body.insert(pc.body.end(),
                     body.begin() + static_cast<std::ptrdiff_t>(pc.body.size()),
                     body.end());
    } else {
      // Rebuild or checkpoint-anchored accept: the cache re-bases at the
      // wire's checkpoint (0 when the sender has none) and stores its full
      // history section — header included, so future prefix compares start
      // at wire byte 0.
      pc.base = content->base;
      pc.body.assign(body.begin(), body.end());
    }
    pc.last_chain = prev_chain;
    pc.expected_sent = expected_sent;
    pc.neb_known = pc.body.size();
    ++stats_.accepted;
    if (anchored) ++anchored_resumes_;
    // T-receive: record a standalone-verifiable receipt in our own history,
    // hand the message to the protocol if it is addressed to us.
    const Receipt receipt{content->dst, content->payload, history_digest,
                          content->sig};
    append_entry(HistoryEntry::Kind::kReceived, d.k, d.from, receipt.encode());
    if (content->dst == self() || content->dst == kToAll) {
      incoming_.send(TMsg{d.from, Bytes(std::move(content->payload))});
    }
  }
}

}  // namespace mnm::core::trusted
