// Transport abstraction for message-passing algorithms.
//
// The Robust Backup construction (§4.1, Definition 2) takes a crash-tolerant
// message-passing algorithm A and replaces its sends/receives with trusted
// T-send/T-receive. To make that replacement literal in code, Paxos and
// Preferential Paxos are written against this interface; they run over
// `NetTransport` (plain authenticated links) in the crash model and over
// `trusted::TrustedTransport` (non-equivocating broadcast + signed
// histories) inside Robust Backup.
//
// Payloads are util::Buffer end to end: an encoder serializes once, and
// send_all shares the same bytes across all n point-to-point sends.

#pragma once

#include <memory>

#include "src/common.hpp"
#include "src/net/network.hpp"
#include "src/sim/channel.hpp"
#include "src/sim/task.hpp"
#include "src/util/buffer.hpp"

namespace mnm::core {

/// An inbound algorithm-level message. `payload` is the algorithm's own
/// encoding (e.g. a Paxos message), shared with — never copied from — the
/// network-level message that carried it.
struct TMsg {
  ProcessId src = 0;
  util::Buffer payload;
};

class Transport {
 public:
  virtual ~Transport() = default;

  virtual ProcessId self() const = 0;
  virtual std::size_t process_count() const = 0;

  /// Send `payload` to `dst` (fire and forget; delivery per the model).
  virtual void send(ProcessId dst, util::Buffer payload) = 0;

  /// Stream of inbound messages addressed to this process.
  virtual sim::Channel<TMsg>& incoming() = 0;

  /// Send to every process. Default: one point-to-point send per process,
  /// all sharing one payload buffer.
  /// TrustedTransport overrides this with a single broadcast (every T-send
  /// is a broadcast anyway), in which case self always receives a copy.
  virtual void send_all(util::Buffer payload, bool include_self = true) {
    const ProcessId n = static_cast<ProcessId>(process_count());
    for (ProcessId p = 1; p <= n; ++p) {
      if (!include_self && p == self()) continue;
      send(p, payload);
    }
  }
};

/// Plain message-passing transport over src/net, scoped to one message type
/// tag so several protocol instances can share a network. Inbound messages
/// are re-wrapped into the transport's TMsg channel directly inside the
/// network delivery event (an Inbox sink) — no pump coroutine, no extra
/// executor event per message. The destructor unhooks the sink, so a
/// transport may die before its network; traffic on the tag then falls
/// back to the inbox channel instead of a dangling callback.
class NetTransport : public Transport {
 public:
  NetTransport(sim::Executor& exec, net::Network& net, ProcessId self,
               net::MsgType tag)
      : endpoint_(net, self), tag_(tag), incoming_(exec) {
    net.inbox(self).set_sink(tag, [this](net::Message&& m) {
      incoming_.send(TMsg{m.src, std::move(m.payload)});
    });
  }
  ~NetTransport() override {
    // A severed transport already gave up its sink — possibly to a
    // successor incarnation on the same tag. Unhooking here would clobber
    // the successor's wiring.
    if (!severed_) {
      endpoint_.network().inbox(endpoint_.self()).set_sink(tag_, nullptr);
    }
  }

  /// Retire this transport without destroying it (crash-and-rejoin keeps
  /// the old incarnation alive for its parked coroutines): sends become
  /// no-ops and the inbox sink is released immediately so a successor
  /// NetTransport on the same (process, tag) can claim it.
  void sever() {
    if (severed_) return;
    severed_ = true;
    endpoint_.network().inbox(endpoint_.self()).set_sink(tag_, nullptr);
  }

  ProcessId self() const override { return endpoint_.self(); }
  std::size_t process_count() const override {
    return endpoint_.network().process_count();
  }

  void send(ProcessId dst, util::Buffer payload) override {
    if (severed_) return;
    endpoint_.send(dst, tag_, std::move(payload));
  }

  sim::Channel<TMsg>& incoming() override { return incoming_; }

 private:
  net::Endpoint endpoint_;
  net::MsgType tag_;
  sim::Channel<TMsg> incoming_;
  bool severed_ = false;
};

}  // namespace mnm::core
