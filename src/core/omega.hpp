// Ω failure detector (eventual leader election).
//
// The paper's liveness arguments assume the standard Ω oracle: eventually
// all correct processes trust the same correct process forever (§5.1,
// Algorithm 7 line 5 "Ω: failure detector that returns current leader";
// Theorem C.5). Ω is an *assumption*, not an algorithm, so we model it as a
// queryable oracle: the harness supplies a leader function over virtual
// time — typically "lowest-id process alive at t", which converges once
// crashes stop, or a scripted schedule for adversarial tests.
//
// Waiting for leadership is notification-driven: whoever changes the inputs
// of the leader function (the harness, at fault-injection events) calls
// poke(), which wakes every suspended wait_leadership immediately. A capped
// exponential-backoff re-check guards oracles whose schedule changes without
// a poke (scripted test schedules), so a non-leader costs O(log t) + O(t /
// kBackoffCap) timer events instead of one per poll tick — and with a fixed
// leader and prompt pokes, effectively none.

#pragma once

#include <algorithm>
#include <functional>

#include "src/common.hpp"
#include "src/sim/executor.hpp"
#include "src/sim/select.hpp"
#include "src/sim/sync.hpp"
#include "src/sim/task.hpp"

namespace mnm::core {

class Omega {
 public:
  using LeaderFn = std::function<ProcessId(sim::Time now)>;

  /// Fallback re-check ceiling for un-poked leader changes.
  static constexpr sim::Time kBackoffCap = 64;

  /// Leader oracle from an arbitrary time-indexed function. Pass
  /// `poke_complete = true` (or call set_poke_complete) when every output
  /// change will be announced with poke().
  Omega(sim::Executor& exec, LeaderFn fn, bool poke_complete = false)
      : exec_(&exec),
        fn_(std::move(fn)),
        changed_(exec),
        poke_complete_(poke_complete) {}

  /// Fixed leader forever (the common-case benchmark configuration). The
  /// output never changes, so waits need no re-check fallback at all.
  static Omega fixed(sim::Executor& exec, ProcessId leader) {
    return Omega(exec, [leader](sim::Time) { return leader; }, true);
  }

  /// Declare that every change of the leader function's output is announced
  /// with poke() (the harness pokes at its fault-injection events). Waits
  /// then suspend with no fallback timer: zero events while nothing changes.
  void set_poke_complete(bool v) { poke_complete_ = v; }

  ProcessId leader() const { return fn_(exec_->now()); }
  bool trusts(ProcessId p) const { return leader() == p; }

  /// Notify suspended waiters that the leader function's output may have
  /// changed (the harness pokes at crash events).
  void poke() { changed_.bump(); }

  /// The change signal itself, for composing with other wait sources.
  sim::VersionSignal& changed() { return changed_; }

  /// Suspend until this process is the leader ("wait until Ω == p",
  /// Alg. 7 line 9). Wakes on poke(); `poll` seeds the backoff fallback.
  sim::Task<void> wait_leadership(ProcessId self, sim::Time poll = 1) {
    // Floor at 1: a zero fallback would make the select time out without
    // suspending and spin the loop in native code.
    sim::Time backoff = std::max<sim::Time>(poll, 1);
    while (!trusts(self)) {
      sim::Select sel(*exec_);
      sel.on(changed_, changed_.version());
      if (!poke_complete_) sel.until(exec_->now() + backoff);
      (void)co_await sel;
      backoff = std::min(backoff * 2, kBackoffCap);
    }
  }

  /// As wait_leadership, but also returns (possibly without leadership) once
  /// `stop` opens — the proposers' "wait until Ω == p or we already decided".
  sim::Task<void> wait_leadership_or(ProcessId self, sim::Gate& stop,
                                     sim::Time poll = 1) {
    sim::Time backoff = std::max<sim::Time>(poll, 1);  // see wait_leadership
    while (!trusts(self) && !stop.is_open()) {
      sim::Select sel(*exec_);
      sel.on(stop).on(changed_, changed_.version());
      if (!poke_complete_) sel.until(exec_->now() + backoff);
      (void)co_await sel;
      backoff = std::min(backoff * 2, kBackoffCap);
    }
  }

 private:
  sim::Executor* exec_;
  LeaderFn fn_;
  sim::VersionSignal changed_;
  bool poke_complete_ = false;
};

}  // namespace mnm::core
