// Ω failure detector (eventual leader election).
//
// The paper's liveness arguments assume the standard Ω oracle: eventually
// all correct processes trust the same correct process forever (§5.1,
// Algorithm 7 line 5 "Ω: failure detector that returns current leader";
// Theorem C.5). Ω is an *assumption*, not an algorithm, so we model it as a
// queryable oracle: the harness supplies a leader function over virtual
// time — typically "lowest-id process alive at t", which converges once
// crashes stop, or a scripted schedule for adversarial tests.

#pragma once

#include <functional>

#include "src/common.hpp"
#include "src/sim/executor.hpp"
#include "src/sim/task.hpp"

namespace mnm::core {

class Omega {
 public:
  using LeaderFn = std::function<ProcessId(sim::Time now)>;

  /// Leader oracle from an arbitrary time-indexed function.
  Omega(sim::Executor& exec, LeaderFn fn)
      : exec_(&exec), fn_(std::move(fn)) {}

  /// Fixed leader forever (the common-case benchmark configuration).
  static Omega fixed(sim::Executor& exec, ProcessId leader) {
    return Omega(exec, [leader](sim::Time) { return leader; });
  }

  ProcessId leader() const { return fn_(exec_->now()); }
  bool trusts(ProcessId p) const { return leader() == p; }

  /// Suspend until this process is the leader ("wait until Ω == p",
  /// Alg. 7 line 9). Polls the oracle every `poll` units.
  sim::Task<void> wait_leadership(ProcessId self, sim::Time poll = 1) {
    while (!trusts(self)) {
      co_await exec_->sleep(poll);
    }
  }

 private:
  sim::Executor* exec_;
  LeaderFn fn_;
};

}  // namespace mnm::core
