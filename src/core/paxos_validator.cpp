#include "src/core/paxos_validator.hpp"

#include <map>
#include <optional>
#include <set>

#include "src/core/paxos.hpp"
#include "src/core/transport_mux.hpp"

namespace mnm::core {

namespace {

using trusted::History;
using trusted::HistoryEntry;
using trusted::Receipt;

ProcessId ballot_owner(std::uint64_t ballot, std::size_t n) {
  return static_cast<ProcessId>(ballot % n) + 1;
}

/// Framing: returns the Paxos bytes if this payload is (framed or raw)
/// Paxos; nullopt for set-up payloads or garbage-with-setup-tag.
enum class Framing { kPaxos, kSetup, kMalformed };

Framing classify(const Bytes& payload, Bytes& paxos_bytes) {
  if (payload.empty()) return Framing::kMalformed;
  const std::uint8_t first = payload[0];
  if (first == kMuxSetup) return Framing::kSetup;
  if (first == kMuxPaxos) {
    paxos_bytes.assign(payload.begin() + 1, payload.end());
    return Framing::kPaxos;
  }
  // Raw (unframed) PaxosMsg bytes.
  paxos_bytes = payload;
  return Framing::kPaxos;
}

/// Replayed state of one process's Paxos run.
struct Replay {
  explicit Replay(std::size_t n) : n(n) {}

  std::size_t n;
  // Acceptor state.
  std::uint64_t promised = 0;
  std::optional<std::uint64_t> acc_ballot;
  Bytes acc_value;
  // Verified receipts, grouped for the proposer rules.
  // ballot → origins that sent PROMISE(b) (+ their reported accepted pair).
  struct PromiseInfo {
    bool has_value = false;
    std::uint64_t acc_ballot = 0;
    Bytes value;
  };
  std::map<std::uint64_t, std::map<ProcessId, PromiseInfo>> promises;
  std::map<std::uint64_t, std::set<ProcessId>> prepares_seen;  // ballot → owners
  std::map<std::uint64_t, std::map<ProcessId, Bytes>> accepts_seen;  // ballot → origin → value
  std::map<std::uint64_t, std::set<ProcessId>> accepted_seen;  // ballot → origins
  // Our own sent ACCEPTs: ballot → value.
  std::map<std::uint64_t, Bytes> sent_accepts;

  bool ingest_receipt(ProcessId origin, const PaxosMsg& m) {
    switch (m.kind) {
      case PaxosKind::kPrepare:
        prepares_seen[m.ballot].insert(origin);
        return true;
      case PaxosKind::kPromise: {
        auto& info = promises[m.ballot][origin];
        info.has_value = m.has_value;
        info.acc_ballot = m.acc_ballot;
        info.value = m.value;
        return true;
      }
      case PaxosKind::kAccept:
        accepts_seen[m.ballot][origin] = m.value;
        return true;
      case PaxosKind::kAccepted:
        accepted_seen[m.ballot].insert(origin);
        return true;
      case PaxosKind::kNack:
      case PaxosKind::kDecide:
        return true;
    }
    return false;
  }

  /// Check a message `owner` sends and advance the replayed state.
  bool ingest_send(ProcessId owner, const PaxosMsg& m, ProcessId dst) {
    const std::size_t quorum = majority(n);
    switch (m.kind) {
      case PaxosKind::kPrepare:
        return ballot_owner(m.ballot, n) == owner;

      case PaxosKind::kPromise: {
        const ProcessId proposer = ballot_owner(m.ballot, n);
        if (dst != proposer && dst != trusted::kToAll) return false;
        if (!prepares_seen[m.ballot].contains(proposer)) return false;
        if (m.ballot < promised) return false;
        // The promise must report the acceptor's real accepted state.
        if (m.has_value != acc_ballot.has_value()) return false;
        if (m.has_value &&
            (m.acc_ballot != *acc_ballot || m.value != acc_value)) {
          return false;
        }
        promised = m.ballot;
        return true;
      }

      case PaxosKind::kAccepted: {
        const ProcessId proposer = ballot_owner(m.ballot, n);
        if (dst != proposer && dst != trusted::kToAll) return false;
        const auto bit = accepts_seen.find(m.ballot);
        if (bit == accepts_seen.end() || !bit->second.contains(proposer)) {
          return false;
        }
        if (m.ballot < promised) return false;
        promised = m.ballot;
        acc_ballot = m.ballot;
        acc_value = bit->second.at(proposer);
        return true;
      }

      case PaxosKind::kAccept: {
        if (ballot_owner(m.ballot, n) != owner) return false;
        if (!m.has_value) return false;
        if (m.ballot == 0) {  // p1's fast ballot: value is its own input
          sent_accepts[0] = m.value;
          return true;
        }
        const auto pit = promises.find(m.ballot);
        if (pit == promises.end() || pit->second.size() < quorum) return false;
        // Value-choice rule.
        bool any = false;
        std::uint64_t best = 0;
        Bytes best_value;
        for (const auto& [origin, info] : pit->second) {
          if (info.has_value && (!any || info.acc_ballot > best)) {
            any = true;
            best = info.acc_ballot;
            best_value = info.value;
          }
        }
        if (any && m.value != best_value) return false;
        sent_accepts[m.ballot] = m.value;
        return true;
      }

      case PaxosKind::kDecide: {
        if (!m.has_value) return false;
        for (const auto& [ballot, origins] : accepted_seen) {
          if (origins.size() < quorum) continue;
          const auto sit = sent_accepts.find(ballot);
          if (sit != sent_accepts.end() && sit->second == m.value) return true;
          if (ballot == 0 && ballot_owner(0, n) == owner) {
            // Fast ballot: the accept itself may be ballot 0.
            const auto fit = sent_accepts.find(0);
            if (fit != sent_accepts.end() && fit->second == m.value) return true;
          }
        }
        return false;
      }

      case PaxosKind::kNack:
        return true;
    }
    return false;
  }
};

}  // namespace

namespace {

/// Process one history entry of `owner` into `replay`. Returns false if the
/// entry proves the history illegal.
bool ingest_entry(const crypto::KeyStore& keystore, ProcessId owner,
                  const HistoryEntry& e, Replay& replay) {
  const auto process_send = [&](ProcessId to, const Bytes& p) {
    Bytes paxos_bytes;
    switch (classify(p, paxos_bytes)) {
      case Framing::kSetup:
        return true;  // set-up values are arbitrary inputs
      case Framing::kMalformed:
        return false;
      case Framing::kPaxos:
        break;
    }
    const auto msg = PaxosMsg::decode(paxos_bytes);
    if (!msg.has_value()) return false;
    return replay.ingest_send(owner, *msg, to);
  };

  if (e.kind == HistoryEntry::Kind::kSent) {
    return process_send(e.peer, e.payload);
  }
  // kReceived: verify the receipt, then feed it to the replay.
  const auto receipt = Receipt::decode(e.payload);
  if (!receipt.has_value()) return false;
  if (!trusted::verify_receipt(keystore, e.peer, e.k, *receipt)) {
    return false;
  }
  // Only messages addressed to the owner (or broadcast) may influence it.
  if (receipt->dst != owner && receipt->dst != trusted::kToAll) return true;
  Bytes paxos_bytes;
  switch (classify(receipt->payload, paxos_bytes)) {
    case Framing::kSetup:
      return true;
    case Framing::kMalformed:
      return true;  // junk the origin sent; ignore, it cannot justify anything
    case Framing::kPaxos:
      break;
  }
  const auto msg = PaxosMsg::decode(paxos_bytes);
  if (!msg.has_value()) return true;
  return replay.ingest_receipt(e.peer, *msg);
}

/// Replayed state of one owner's history, committed exactly as far as the
/// transport's verified-prefix cache: `entries` always equals the transport's
/// prefix position (both advance only when a whole message is accepted, and
/// both stay put on any reject), so a resume needs no chain compare at all —
/// the transport already anchored prefix identity in receiver-stored bytes.
struct OwnerCache {
  std::size_t entries = 0;
  Replay replay{0};
};

}  // namespace

trusted::HistoryValidator paxos_validator(const crypto::KeyStore& keystore,
                                          std::size_t n) {
  return [&keystore, n, caches = std::map<ProcessId, OwnerCache>{}](
             const trusted::ValidatorCall& call) mutable -> bool {
    OwnerCache& c = caches.try_emplace(call.owner).first->second;
    if (call.prefix_entries != 0 && call.prefix_entries != c.entries) {
      // Lockstep violation — cannot happen through TrustedTransport, but a
      // resume from the wrong position would be unsound, so refuse.
      return false;
    }
    // Replay the suffix on a staged state: a reject must leave the committed
    // state exactly where the transport's cache stays (rollback together).
    // That includes the rebuild case (prefix_entries == 0, suffix = whole
    // history): the fresh Replay is staged too, so a rejected rebuild does
    // not wipe the committed position a later resume will name.
    Replay staged = call.prefix_entries == 0 ? Replay(n) : c.replay;
    for (std::size_t i = 0; i < call.suffix_len; ++i) {
      if (!ingest_entry(keystore, call.owner, call.suffix[i], staged)) {
        return false;
      }
    }
    // Finally, the message being sent right now. It is not part of the
    // history yet (it will arrive as a kSent entry of a later suffix), so
    // replay it as a synthetic sent entry on a second scratch copy that is
    // never committed — one code path for "entry in history" and "entry
    // being sent".
    Replay scratch = staged;
    HistoryEntry current;
    current.kind = HistoryEntry::Kind::kSent;
    current.peer = call.dst;
    current.payload = *call.payload;
    if (!ingest_entry(keystore, call.owner, current, scratch)) return false;
    c.replay = std::move(staged);
    c.entries = call.prefix_entries + call.suffix_len;
    return true;
  };
}

}  // namespace mnm::core
