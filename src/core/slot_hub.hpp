// Slot-tag namespace over ONE Transport.
//
// A replicated log runs one consensus instance per slot. Before this hub,
// every instance needed its own network tag (examples hand-allocated
// kBaseTag + slot); now a replica owns a single base transport and the hub
// frames each payload with its 8-byte slot id, demultiplexing inbound
// messages to per-slot sub-transports. Sub-transports are created on demand
// on BOTH sides: a follower that has never heard of slot s gets a buffering
// sub the moment the first message for s arrives, and the `heard` signal +
// `horizon()` tell the engine's discovery loop to open the slot's instance,
// which then drains the buffered messages. That is what makes leader-driven
// pipelining work without any out-of-band slot announcement.
//
// Hot-path shape matches TransportMux: framing is one extra Writer into the
// shared broadcast buffer (still one serialize per broadcast), inbound
// stripping is a zero-copy Buffer slice, and the slot → sub table is a
// util::FlatMap (open-addressed, no erase).

#pragma once

#include <cstdint>
#include <memory>

#include "src/common.hpp"
#include "src/core/transport.hpp"
#include "src/sim/executor.hpp"
#include "src/sim/sync.hpp"
#include "src/util/flat_map.hpp"
#include "src/util/serde.hpp"

namespace mnm::core {

class SlotTransportHub {
 public:
  /// Frames whose slot id is ≥ max_slot are dropped: malformed (or
  /// Byzantine) traffic must not inflate the horizon and trick learners
  /// into opening unbounded per-slot state.
  static constexpr Slot kDefaultMaxSlot = Slot{1} << 20;

  /// Reserved frame id for the control channel (catch-up requests and
  /// responses between replicas, and the range-snapshot transfer frames of
  /// live resharding — smr/catchup.hpp demuxes the kinds by leading tag
  /// byte). All-ones can never be a real slot — it is
  /// far above every max_slot guard — so the demux routes it to a dedicated
  /// sub-transport without advancing the horizon: control traffic must not
  /// look like slot activity to the discovery loop.
  static constexpr Slot kControlSlot = ~Slot{0};

  SlotTransportHub(sim::Executor& exec, Transport& base,
                   Slot max_slot = kDefaultMaxSlot)
      : exec_(&exec), base_(&base), max_slot_(max_slot), heard_(exec) {}

  ProcessId self() const { return base_->self(); }
  std::size_t process_count() const { return base_->process_count(); }

  /// The sub-transport for `slot` (created on first use; also advances the
  /// horizon, so opening a slot locally counts as hearing of it).
  Transport& slot(Slot s) {
    note(s);
    return sub(s);
  }

  /// Spawn the demux loop. Call exactly once, before messages flow.
  void start() { exec_->spawn(demux_loop(this)); }

  /// One past the highest slot with observed activity (local opens and
  /// inbound frames). `heard()` bumps whenever it grows.
  Slot horizon() const { return horizon_; }
  sim::VersionSignal& heard() { return heard_; }

  /// The control channel: a sub-transport on the reserved kControlSlot
  /// frame id. Created on first use; its traffic never notes the horizon.
  Transport& control() { return sub(kControlSlot); }

  static Bytes frame(Slot s, util::ByteView payload) {
    util::Writer w(payload.size() + 8);
    w.u64(s).raw(payload);
    return std::move(w).take();
  }

 private:
  class Sub : public Transport {
   public:
    Sub(sim::Executor& exec, Transport& base, Slot s)
        : base_(&base), slot_(s), incoming_(exec) {}

    ProcessId self() const override { return base_->self(); }
    std::size_t process_count() const override {
      return base_->process_count();
    }
    void send(ProcessId dst, util::Buffer payload) override {
      base_->send(dst, frame(slot_, payload));
    }
    void send_all(util::Buffer payload, bool include_self = true) override {
      // Frame once; the framed buffer is shared across the fan-out.
      base_->send_all(frame(slot_, payload), include_self);
    }
    sim::Channel<TMsg>& incoming() override { return incoming_; }

   private:
    Transport* base_;
    Slot slot_;
    sim::Channel<TMsg> incoming_;
    friend class SlotTransportHub;
  };

  Sub& sub(Slot s) {
    std::unique_ptr<Sub>& cell = subs_[s];
    if (cell == nullptr) cell = std::make_unique<Sub>(*exec_, *base_, s);
    return *cell;
  }

  void note(Slot s) {
    if (s >= max_slot_) return;
    if (s + 1 > horizon_) {
      horizon_ = s + 1;
      heard_.bump();
    }
  }

  static sim::Task<void> demux_loop(SlotTransportHub* hub) {
    while (true) {
      TMsg m = co_await hub->base_->incoming().recv();
      if (m.payload.size() < 8) continue;  // malformed: drop
      std::uint64_t s = 0;
      try {
        util::Reader r(m.payload);
        s = r.u64();
      } catch (const util::SerdeError&) {
        continue;
      }
      if (s == kControlSlot) {  // control frame: route, never note
        Sub& ctl = hub->sub(kControlSlot);
        m.payload = m.payload.suffix(8);
        ctl.incoming_.send(std::move(m));
        continue;
      }
      if (s >= hub->max_slot_) continue;  // horizon guard: drop
      hub->note(s);
      Sub& sub = hub->sub(s);
      m.payload = m.payload.suffix(8);  // strip the slot id, zero-copy
      sub.incoming_.send(std::move(m));
    }
  }

  sim::Executor* exec_;
  Transport* base_;
  Slot max_slot_;
  Slot horizon_ = 0;
  sim::VersionSignal heard_;
  util::FlatMap<std::uint64_t, std::unique_ptr<Sub>> subs_;
};

}  // namespace mnm::core
