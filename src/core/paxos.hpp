// Classic single-decree Paxos (Lamport, "The Part-Time Parliament") over the
// Transport abstraction, tolerating fP < n/2 crash failures.
//
// Roles in the paper's uses:
//  * It is the crash-tolerant algorithm A that Robust Backup(A) transforms
//    into a Byzantine-tolerant one (§4.1, Definition 2) — run it over
//    trusted::TrustedTransport and the transformation is literal.
//  * With `skip_phase1_for_p1` it becomes the message-passing baseline that
//    decides in 2 delays with n ≥ 2fP+1 (the steady-state/fast path the
//    paper contrasts with Protected Memory Paxos in §1); without it, the
//    conservative 4-delay two-phase baseline.
//
// Ballot numbering: ballot b is owned by process (b mod n) + 1; p1's first
// ballot is 0, which acceptors implicitly pre-promise (minBallot starts
// at 0), making the phase-1 skip safe.

#pragma once

#include <cstdint>
#include <optional>

#include "src/common.hpp"
#include "src/core/omega.hpp"
#include "src/core/transport.hpp"
#include "src/crypto/signature.hpp"
#include "src/sim/executor.hpp"
#include "src/sim/sync.hpp"
#include "src/sim/task.hpp"
#include "src/util/serde.hpp"

namespace mnm::core {

// Wire format shared with the trusted-history validator
// (trusted_messaging.*), which replays Paxos messages.
enum class PaxosKind : std::uint8_t {
  kPrepare = 1,
  kPromise = 2,
  kAccept = 3,
  kAccepted = 4,
  kNack = 5,
  kDecide = 6,
};

struct PaxosMsg {
  PaxosKind kind = PaxosKind::kNack;
  std::uint64_t ballot = 0;
  // For kPromise: the highest ballot at which the acceptor accepted a value
  // (meaningful when has_value). For kAccept/kDecide: `value` carries data.
  std::uint64_t acc_ballot = 0;
  bool has_value = false;
  Bytes value;

  Bytes encode() const;
  static std::optional<PaxosMsg> decode(util::ByteView raw);
};

struct PaxosConfig {
  std::size_t n = 3;
  /// How long a proposer waits for a quorum of replies before retrying.
  sim::Time round_timeout = 40;
  /// Backoff between failed rounds.
  sim::Time retry_backoff = 10;
  /// Leadership polling period while not the leader.
  sim::Time poll = 1;
  /// Allow p1 to skip phase 1 at ballot 0 (2-delay fast path).
  bool skip_phase1_for_p1 = false;
};

class Paxos {
 public:
  Paxos(sim::Executor& exec, Transport& transport, Omega& omega,
        PaxosConfig config);

  /// Spawn the message-handling loop. Call exactly once before propose.
  void start();

  /// Propose `value`; resolves with the decided value (§3 consensus:
  /// uniform agreement, validity; termination under Ω).
  sim::Task<Bytes> propose(Bytes value);

  bool decided() const { return decided_value_.has_value(); }
  const Bytes& decision() const { return *decided_value_; }
  sim::Time decided_at() const { return decided_at_; }
  /// True iff this process decided as the proposer of the ballot-0 phase-1
  /// skip (the 2-delay steady-state round). Learners report false.
  bool decided_fast() const { return decided_fast_; }
  sim::Gate& decision_gate() { return decision_gate_; }

 private:
  sim::Task<void> dispatch_loop();
  void handle_acceptor(ProcessId src, const PaxosMsg& msg);
  sim::Task<bool> run_round(const Bytes& input, bool fast_first);
  void decide_locally(util::ByteView value);

  sim::Executor* exec_;
  Transport* transport_;
  Omega* omega_;
  PaxosConfig config_;

  // Acceptor state.
  std::uint64_t min_ballot_ = 0;
  std::optional<std::uint64_t> accepted_ballot_;
  Bytes accepted_value_;

  // Proposer state.
  std::uint64_t max_ballot_seen_ = 0;
  bool used_fast_ballot_ = false;
  bool decided_fast_ = false;
  sim::Channel<std::pair<ProcessId, PaxosMsg>> replies_;

  // Decision.
  std::optional<Bytes> decided_value_;
  sim::Time decided_at_ = 0;
  sim::Gate decision_gate_;
  bool started_ = false;
};

}  // namespace mnm::core
