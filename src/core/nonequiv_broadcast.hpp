// Non-equivocating broadcast (paper §4.1, Algorithm 2, Lemma 4.1).
//
// Prevents a Byzantine broadcaster from delivering different k-th messages
// to different correct processes:
//
//  (1) a correct broadcaster's (k, m) is eventually delivered by all correct
//      processes;
//  (2) no two correct processes deliver different messages for the same
//      (broadcaster, k);
//  (3) delivery from a correct broadcaster implies it broadcast exactly that.
//
// Mechanics (verbatim from Algorithm 2): every process p owns an SWMR slot
// slot[p, k, q] for each sequence number k and broadcaster q. To broadcast
// its k-th message, q signs (k, m) and writes it to slot[q, k, q]. To
// deliver, p (a) reads q's own slot and validates the signature and key,
// (b) copies the signed value into its own slot[p, k, q], then (c) reads
// slot[i, k, q] of every process i and refuses delivery if any holds a
// *different* validly-signed value for the same key — that can only happen
// if q equivocated, because nobody else can forge q's signature.
//
// Registers live in the replicated SWMR layer (src/swmr), so the primitive
// tolerates fM < m/2 memory crashes exactly as §4.1 prescribes. Slot
// register names: "neb/<owner>/<k>/<broadcaster>"; each owner's slots form
// one SWMR region per memory, created by make_neb_regions().

#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/common.hpp"
#include "src/crypto/signature.hpp"
#include "src/mem/memory.hpp"
#include "src/sim/channel.hpp"
#include "src/sim/executor.hpp"
#include "src/sim/task.hpp"
#include "src/swmr/swmr_register.hpp"
#include "src/util/flat_map.hpp"

namespace mnm::core {

/// Create the n SWMR regions ("neb/<p>/" owned by p) on one memory, in
/// process-id order so region ids agree across memories. Returns the map
/// owner → region id. Works for both mem::Memory and verbs::VerbsMemory.
template <typename MemoryT>
std::map<ProcessId, RegionId> make_neb_regions(MemoryT& memory, std::size_t n,
                                               const std::string& prefix = "neb") {
  std::map<ProcessId, RegionId> out;
  const auto all = all_processes(n);
  for (ProcessId p : all) {
    out[p] = memory.create_region({prefix + "/" + std::to_string(p) + "/"},
                                  mem::Permission::swmr(p, all));
  }
  return out;
}

/// Shared table of replicated slot registers. Lookups are on the scan-loop
/// hot path (every poll tick touches slot(q, k, q)), so registers are keyed
/// by a packed (owner, k, broadcaster) integer in a flat table; the string
/// register name is only built when a slot is first created.
class NebSlots {
 public:
  NebSlots(sim::Executor& exec, std::vector<mem::MemoryIface*> memories,
           std::map<ProcessId, RegionId> owner_regions,
           std::string prefix = "neb");

  /// slot[owner, k, broadcaster].
  swmr::ReplicatedRegister& slot(ProcessId owner, std::uint64_t k,
                                 ProcessId broadcaster);

  /// The backing memories, for composing scan wakeups with their
  /// write-version signals (NonEquivBroadcast's event-driven delivery loop).
  const std::vector<mem::MemoryIface*>& memories() const { return memories_; }

 private:
  static std::uint64_t slot_key(ProcessId owner, std::uint64_t k,
                                ProcessId broadcaster) {
    // owner and broadcaster are 1..n (n is small); k gets the middle 48 bits.
    return (static_cast<std::uint64_t>(owner) << 56) | ((k & 0xFFFFFFFFFFFFULL) << 8) |
           static_cast<std::uint64_t>(broadcaster & 0xFF);
  }

  sim::Executor* exec_;
  std::vector<mem::MemoryIface*> memories_;
  std::map<ProcessId, RegionId> owner_regions_;
  std::string prefix_;
  util::FlatMap<std::uint64_t, std::unique_ptr<swmr::ReplicatedRegister>> cache_;
};

struct NebDelivery {
  ProcessId from = 0;
  std::uint64_t k = 0;
  Bytes message;
  /// The broadcaster's signature over neb_signing_bytes(k, message). Carried
  /// so higher layers (trusted messaging receipts) can cite it as evidence.
  crypto::Signature sig;
  /// Bytes this message was *verified* (memcmp by this receiver's NEB
  /// instance) to share with the broadcaster's previous delivered message —
  /// receiver-established prefix identity, never the sender's bare claim.
  /// TrustedTransport chains these to skip its own verified-prefix compare
  /// transitively (see PeerCache::neb_known).
  std::uint32_t shared_prefix = 0;
};

/// Canonical signed-slot encoding: (k, prefix_len, m, sig_q(...)). Exposed so
/// tests and Byzantine strategies can craft (in)valid slot contents.
Bytes encode_neb_slot(std::uint64_t k, const Bytes& message,
                      const crypto::Signature& sig,
                      std::uint32_t prefix_len = 0);

/// What a broadcaster signs: ("neb", k, prefix_len, SHA256(m[prefix_len:])).
///
/// Signing a *digest* of m lets receipts prove "q broadcast a message with
/// digest d as its k-th" without embedding m — the receipt compression that
/// keeps Clement-style histories linear. Hashing only the suffix past
/// `prefix_len` makes verification incremental: the first prefix_len bytes
/// are committed transitively, because a verifier only accepts the claim
/// after byte-comparing them against q's (k−1)-th *delivered* message — and
/// non-equivocation guarantees all correct processes hold the same one.
/// T-send wires put the append-only history body first precisely so that
/// consecutive broadcasts share a long prefix and the hashed suffix is O(new
/// bytes), not O(history). prefix_len = 0 (the default, and the only legal
/// value for k = 1) is the self-contained form: SHA256 over all of m.
Bytes neb_signing_bytes(std::uint64_t k, util::ByteView message,
                        std::uint32_t prefix_len = 0);
struct NebSlotContent {
  std::uint64_t k = 0;
  std::uint32_t prefix_len = 0;  // bytes shared with the previous message
  Bytes message;
  crypto::Signature sig;
};
std::optional<NebSlotContent> decode_neb_slot(const Bytes& raw);

struct NebConfig {
  std::size_t n = 3;
  /// Fallback scan period, used only when a memory backend offers no
  /// write-version signal; the delivery loop is otherwise event-driven.
  sim::Time poll = 1;
};

class NonEquivBroadcast {
 public:
  NonEquivBroadcast(sim::Executor& exec, NebSlots& slots,
                    const crypto::KeyStore& keystore, crypto::Signer signer,
                    NebConfig config);

  /// Spawn the delivery scanner (try_deliver over all broadcasters forever).
  void start();

  /// broadcast(k, m) with k auto-incremented (Definition 1 requires each
  /// invocation to use the next k). Completes when the slot write is
  /// acknowledged by a memory majority.
  sim::Task<mem::Status> broadcast(Bytes message);

  /// Stream of deliveries, in (broadcaster, k) order per broadcaster.
  sim::Channel<NebDelivery>& deliveries() { return deliveries_; }

  std::uint64_t broadcasts_made() const { return next_k_ - 1; }

  /// Suffix-digest verification accounting over delivered head slots:
  /// bytes hashed (the suffix past each verified prefix claim) vs bytes the
  /// prefix identity let verification skip.
  std::uint64_t suffix_bytes_hashed() const { return suffix_bytes_hashed_; }
  std::uint64_t prefix_bytes_skipped() const { return prefix_bytes_skipped_; }

  /// One delivery attempt for broadcaster q (Algorithm 2 try_deliver).
  /// Exposed for step-by-step unit tests; normally driven by start().
  sim::Task<bool> try_deliver(ProcessId q);

 private:
  sim::Task<void> scan_loop();
  /// Signature + prefix-claim check of a decoded slot for broadcaster `q`
  /// at its next undelivered sequence number (hashes only the suffix past
  /// the prefix verified against q's previous delivered message).
  bool slot_valid(ProcessId q, const NebSlotContent& c) const;

  sim::Executor* exec_;
  NebSlots* slots_;
  const crypto::KeyStore* keystore_;
  crypto::Signer signer_;
  NebConfig config_;
  std::uint64_t next_k_ = 1;
  std::vector<std::uint64_t> last_;  // next seq to deliver, index q - 1
  /// Per-broadcaster previous delivered message — the anchor for suffix-
  /// digest verification. Index q - 1.
  std::vector<Bytes> prev_delivered_;
  Bytes prev_broadcast_;  // our own previous broadcast (prefix_len source)
  sim::Channel<NebDelivery> deliveries_;
  std::uint64_t suffix_bytes_hashed_ = 0;
  std::uint64_t prefix_bytes_skipped_ = 0;
  bool started_ = false;
};

}  // namespace mnm::core
