#include "src/core/fast_robust.hpp"

namespace mnm::core {

PriorityFn fast_robust_priority(const crypto::KeyStore& keystore, std::size_t n,
                                ProcessId leader) {
  return [&keystore, n, leader](const PrioInput& input) -> int {
    // T: contains a correct unanimity proof *for this value*.
    LeaderBlob lb;
    if (verify_unanimity_proof(keystore, n, leader, input.proof, &lb) &&
        lb.value == input.value) {
      return 2;
    }
    // M: contains the leader's signature over the value.
    if (!input.leader_sig.empty()) {
      try {
        util::Reader r(input.leader_sig);
        const crypto::Signature sig = crypto::Signature::decode(r);
        r.expect_end();
        if (keystore.valid_from(leader, cq_value_signing_bytes(input.value), sig)) {
          return 1;
        }
      } catch (const util::SerdeError&) {
        // fall through to B
      }
    }
    return 0;  // B
  };
}

FastRobustProcess::FastRobustProcess(sim::Executor& exec,
                                     std::vector<mem::MemoryIface*> memories,
                                     CheapQuorumRegions cq_regions,
                                     NebSlots& neb_slots,
                                     const crypto::KeyStore& keystore,
                                     crypto::Signer signer, Omega& omega,
                                     FastRobustConfig config)
    : config_(config),
      cheap_(exec, std::move(memories), cq_regions, keystore, signer,
             config.cheap),
      neb_(exec, neb_slots, keystore, signer, config.neb),
      trusted_(exec, neb_, keystore, signer, trusted::TrustedConfig{config.n},
               paxos_validator(keystore, config.n)),
      mux_(exec, trusted_),
      paxos_(exec, mux_.sub(kMuxPaxos), omega, config.paxos),
      preferential_(exec, mux_.sub(kMuxSetup), paxos_,
                    PreferentialPaxosConfig{config.n, config.f},
                    fast_robust_priority(keystore, config.n, config.cheap.leader)) {}

void FastRobustProcess::start() {
  neb_.start();
  trusted_.start();
  mux_.start();
  paxos_.start();
}

sim::Task<FastRobustOutcome> FastRobustProcess::propose(Bytes v) {
  // Fast path.
  const CqOutcome cq = co_await cheap_.propose(std::move(v));

  // Backup path — joined unconditionally (Figure 6): the abort (or fast
  // decision, for liveness of the others) becomes this process's
  // Preferential Paxos input with Definition 3 priorities computed by
  // verification at each receiver.
  PrioInput input;
  input.value = cq.value;
  input.proof = cq.proof;
  input.leader_sig = cq.leader_sig;
  const PrioInput backup = co_await preferential_.propose(std::move(input));

  FastRobustOutcome out;
  if (cq.decided) {
    out.value = cq.value;
    out.fast = true;
    out.decided_at = cq.at;
  } else {
    out.value = backup.value;
    out.fast = false;
    out.decided_at = paxos_.decided_at();
  }
  co_return out;
}

}  // namespace mnm::core
