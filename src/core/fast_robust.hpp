// Fast & Robust (paper §4.3, Theorem 4.9, Figure 6).
//
// The composition: run Cheap Quorum; on abort, feed each process's abort
// value — prioritized per Definition 3 — into Preferential Paxos, whose
// embedded consensus is Robust Backup(Paxos). The Composition Lemma (4.8)
// guarantees that a value decided on the fast path is the only value the
// backup can decide:
//
//   T (priority 2): abort values carrying a correct unanimity proof
//   M (priority 1): abort values signed by the leader p1
//   B (priority 0): everything else
//
// Every process joins the backup phase regardless of whether it decided on
// the fast path (a fast decider keeps its fast decision; its participation
// keeps the backup live for the others). Weak Byzantine agreement with
// n ≥ 2fP+1, m ≥ 2fM+1; 2-deciding in the common case.

#pragma once

#include <memory>

#include "src/core/cheap_quorum.hpp"
#include "src/core/nonequiv_broadcast.hpp"
#include "src/core/omega.hpp"
#include "src/core/paxos.hpp"
#include "src/core/paxos_validator.hpp"
#include "src/core/preferential_paxos.hpp"
#include "src/core/transport_mux.hpp"
#include "src/core/trusted_messaging.hpp"

namespace mnm::core {

/// The verifying priority function of Definition 3.
PriorityFn fast_robust_priority(const crypto::KeyStore& keystore, std::size_t n,
                                ProcessId leader = kLeaderP1);

struct FastRobustConfig {
  std::size_t n = 3;
  std::size_t f = 1;  // fP; requires n >= 2f+1
  CheapQuorumConfig cheap{};
  NebConfig neb{};
  PaxosConfig paxos{};
};

struct FastRobustOutcome {
  Bytes value;
  bool fast = false;        // decided on the Cheap Quorum path
  sim::Time decided_at = 0; // virtual time of this process's decision
};

/// One process's full Fast & Robust stack.
class FastRobustProcess {
 public:
  FastRobustProcess(sim::Executor& exec,
                    std::vector<mem::MemoryIface*> memories,
                    CheapQuorumRegions cq_regions, NebSlots& neb_slots,
                    const crypto::KeyStore& keystore, crypto::Signer signer,
                    Omega& omega, FastRobustConfig config);

  void start();

  sim::Task<FastRobustOutcome> propose(Bytes v);

  CheapQuorum& cheap_quorum() { return cheap_; }
  Paxos& backup_paxos() { return paxos_; }
  trusted::TrustedTransport& trusted_transport() { return trusted_; }
  NonEquivBroadcast& neb() { return neb_; }
  /// Backup-path t-send decode accounting (suffix-only decode proof).
  const trusted::TsendStats& tsend_stats() const {
    return trusted_.tsend_stats();
  }

 private:
  FastRobustConfig config_;
  CheapQuorum cheap_;
  NonEquivBroadcast neb_;
  trusted::TrustedTransport trusted_;
  TransportMux mux_;
  Paxos paxos_;
  PreferentialPaxos preferential_;
};

}  // namespace mnm::core
