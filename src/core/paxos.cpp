#include "src/core/paxos.hpp"

#include <cassert>

namespace mnm::core {

Bytes PaxosMsg::encode() const {
  util::Writer w(1 + 8 + 8 + 1 + 4 + value.size());
  w.u8(static_cast<std::uint8_t>(kind))
      .u64(ballot)
      .u64(acc_ballot)
      .boolean(has_value)
      .bytes(value);
  return std::move(w).take();
}

std::optional<PaxosMsg> PaxosMsg::decode(util::ByteView raw) {
  try {
    util::Reader r(raw);
    PaxosMsg m;
    const std::uint8_t kind = r.u8();
    if (kind < 1 || kind > 6) return std::nullopt;
    m.kind = static_cast<PaxosKind>(kind);
    m.ballot = r.u64();
    m.acc_ballot = r.u64();
    m.has_value = r.boolean();
    m.value = r.bytes();
    r.expect_end();
    return m;
  } catch (const util::SerdeError&) {
    return std::nullopt;
  }
}

Paxos::Paxos(sim::Executor& exec, Transport& transport, Omega& omega,
             PaxosConfig config)
    : exec_(&exec),
      transport_(&transport),
      omega_(&omega),
      config_(config),
      replies_(exec),
      decision_gate_(exec) {}

void Paxos::start() {
  assert(!started_ && "Paxos::start called twice");
  started_ = true;
  exec_->spawn(dispatch_loop());
}

void Paxos::decide_locally(util::ByteView value) {
  if (decided_value_.has_value()) return;
  decided_value_ = util::to_bytes(value);
  decided_at_ = exec_->now();
  decision_gate_.open();
}

sim::Task<void> Paxos::dispatch_loop() {
  while (true) {
    TMsg raw = co_await transport_->incoming().recv();
    const auto msg = PaxosMsg::decode(raw.payload);
    if (!msg.has_value()) continue;  // malformed (possibly Byzantine) — drop
    switch (msg->kind) {
      case PaxosKind::kPrepare:
      case PaxosKind::kAccept:
        handle_acceptor(raw.src, *msg);
        break;
      case PaxosKind::kDecide:
        decide_locally(msg->value);
        break;
      case PaxosKind::kPromise:
      case PaxosKind::kAccepted:
      case PaxosKind::kNack:
        replies_.send({raw.src, *msg});
        break;
    }
  }
}

void Paxos::handle_acceptor(ProcessId src, const PaxosMsg& msg) {
  max_ballot_seen_ = std::max(max_ballot_seen_, msg.ballot);
  if (msg.kind == PaxosKind::kPrepare) {
    if (msg.ballot >= min_ballot_) {
      min_ballot_ = msg.ballot;
      PaxosMsg reply{PaxosKind::kPromise, msg.ballot,
                     accepted_ballot_.value_or(0), accepted_ballot_.has_value(),
                     accepted_value_};
      transport_->send(src, reply.encode());
    } else {
      transport_->send(src, PaxosMsg{PaxosKind::kNack, msg.ballot, min_ballot_,
                                     false, {}}
                                .encode());
    }
    return;
  }
  // kAccept.
  if (msg.ballot >= min_ballot_) {
    min_ballot_ = msg.ballot;
    accepted_ballot_ = msg.ballot;
    accepted_value_ = msg.value;
    transport_->send(src,
                     PaxosMsg{PaxosKind::kAccepted, msg.ballot, 0, false, {}}
                         .encode());
  } else {
    transport_->send(src, PaxosMsg{PaxosKind::kNack, msg.ballot, min_ballot_,
                                   false, {}}
                              .encode());
  }
}

sim::Task<bool> Paxos::run_round(const Bytes& input, bool fast_first) {
  const std::size_t n = config_.n;
  const std::size_t quorum = majority(n);
  const ProcessId self = transport_->self();

  std::uint64_t ballot;
  Bytes value = input;

  if (fast_first) {
    // p1's implicit phase 1 at ballot 0.
    ballot = 0;
  } else {
    // Pick a fresh ballot owned by self, above everything seen.
    const std::uint64_t round = max_ballot_seen_ / n + 1;
    ballot = round * n + (self - 1);
    max_ballot_seen_ = std::max(max_ballot_seen_, ballot);

    // Phase 1: prepare / promise.
    transport_->send_all(PaxosMsg{PaxosKind::kPrepare, ballot, 0, false, {}}
                             .encode());
    std::size_t promises = 0;
    std::uint64_t best_acc = 0;
    bool adopted = false;
    const sim::Time deadline = exec_->now() + config_.round_timeout;
    while (promises < quorum) {
      auto reply = co_await replies_.recv_until(deadline);
      if (!reply.has_value()) co_return false;  // timeout
      const PaxosMsg& m = reply->second;
      if (m.ballot != ballot) continue;  // stale round
      if (m.kind == PaxosKind::kNack) co_return false;
      if (m.kind != PaxosKind::kPromise) continue;
      ++promises;
      if (m.has_value && (!adopted || m.acc_ballot > best_acc)) {
        adopted = true;
        best_acc = m.acc_ballot;
        value = m.value;
      }
    }
  }

  // Phase 2: accept / accepted.
  transport_->send_all(
      PaxosMsg{PaxosKind::kAccept, ballot, 0, true, value}.encode());
  std::size_t accepts = 0;
  const sim::Time deadline = exec_->now() + config_.round_timeout;
  while (accepts < quorum) {
    auto reply = co_await replies_.recv_until(deadline);
    if (!reply.has_value()) co_return false;
    const PaxosMsg& m = reply->second;
    if (m.ballot != ballot) continue;
    if (m.kind == PaxosKind::kNack) co_return false;
    if (m.kind != PaxosKind::kAccepted) continue;
    ++accepts;
  }

  // Chosen. Decide and tell everyone.
  if (!decided()) decided_fast_ = fast_first;
  decide_locally(value);
  transport_->send_all(
      PaxosMsg{PaxosKind::kDecide, ballot, 0, true, value}.encode(),
      /*include_self=*/false);
  co_return true;
}

sim::Task<Bytes> Paxos::propose(Bytes value) {
  assert(started_ && "Paxos::propose before start()");
  const ProcessId self = transport_->self();
  while (!decided()) {
    if (omega_->trusts(self)) {
      const bool fast = config_.skip_phase1_for_p1 && self == kLeaderP1 &&
                        !used_fast_ballot_;
      used_fast_ballot_ = used_fast_ballot_ || fast;
      const bool ok = co_await run_round(value, fast);
      if (ok) break;
      co_await exec_->sleep(config_.retry_backoff);
    } else {
      // Event-driven: woken by an Ω poke or by our own DECIDE.
      co_await omega_->wait_leadership_or(self, decision_gate_, config_.poll);
    }
  }
  co_return decision();
}

}  // namespace mnm::core
