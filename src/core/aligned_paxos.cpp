#include "src/core/aligned_paxos.hpp"

#include "src/sim/fanout.hpp"
#include "src/sim/select.hpp"
#include "src/util/serde.hpp"

namespace mnm::core {

AlignedPaxos::AlignedPaxos(sim::Executor& exec,
                           std::vector<mem::MemoryIface*> memories,
                           RegionId region, Transport& transport, Omega& omega,
                           AlignedPaxosConfig config)
    : exec_(&exec),
      memories_(std::move(memories)),
      region_(region),
      transport_(&transport),
      omega_(&omega),
      self_(transport.self()),
      config_(std::move(config)),
      replies_(exec),
      all_(all_processes(config_.n)),
      excl_perm_(mem::Permission::exclusive_writer(self_, all_)),
      decision_gate_(exec) {
  for (ProcessId p : all_) {
    slot_names_.push_back(config_.prefix + "/slot/" + std::to_string(p));
  }
}

void AlignedPaxos::start() { exec_->spawn(dispatch_loop()); }

void AlignedPaxos::decide_locally(util::ByteView value) {
  if (decided_value_.has_value()) return;
  decided_value_ = util::to_bytes(value);
  decided_at_ = exec_->now();
  decision_gate_.open();
}

sim::Task<void> AlignedPaxos::dispatch_loop() {
  while (true) {
    const TMsg raw = co_await transport_->incoming().recv();
    if (raw.payload.empty()) continue;
    if (raw.payload[0] == kMuxDecide) {
      decide_locally(util::ByteView(raw.payload).subspan(1));
      continue;
    }
    const auto msg = PaxosMsg::decode(raw.payload);
    if (!msg.has_value()) continue;  // malformed — drop
    switch (msg->kind) {
      case PaxosKind::kPrepare:
      case PaxosKind::kAccept:
        handle_acceptor(raw.src, *msg);
        break;
      case PaxosKind::kPromise:
      case PaxosKind::kAccepted:
      case PaxosKind::kNack:
        replies_.send({raw.src, *msg});
        break;
      case PaxosKind::kDecide:
        break;  // not part of Aligned's wire protocol
    }
  }
}

void AlignedPaxos::handle_acceptor(ProcessId src, const PaxosMsg& msg) {
  max_proposal_seen_ = std::max(max_proposal_seen_, msg.ballot);
  if (msg.kind == PaxosKind::kPrepare) {
    if (msg.ballot >= promised_) {
      promised_ = msg.ballot;
      transport_->send(src,
                       PaxosMsg{PaxosKind::kPromise, msg.ballot,
                                acc_ballot_.value_or(0), acc_ballot_.has_value(),
                                acc_value_}
                           .encode());
    } else {
      transport_->send(src,
                       PaxosMsg{PaxosKind::kNack, msg.ballot, promised_, false,
                                {}}
                           .encode());
    }
  } else if (msg.kind == PaxosKind::kAccept) {
    if (msg.ballot >= promised_) {
      promised_ = msg.ballot;
      acc_ballot_ = msg.ballot;
      acc_value_ = msg.value;
      transport_->send(src,
                       PaxosMsg{PaxosKind::kAccepted, msg.ballot, 0, false, {}}
                           .encode());
    } else {
      transport_->send(src,
                       PaxosMsg{PaxosKind::kNack, msg.ballot, promised_, false,
                                {}}
                           .encode());
    }
  }
}

sim::Task<AlignedPaxos::Phase1Answer> AlignedPaxos::phase1_memory(
    std::size_t idx, std::uint64_t prop_nr) {
  mem::MemoryIface* m = memories_[idx];
  Phase1Answer out;

  const mem::Status grabbed =
      co_await m->change_permission(self_, region_, excl_perm_);
  if (grabbed != mem::Status::kAck) co_return out;

  PmpSlot own;
  own.min_proposal = prop_nr;
  const mem::Status wrote =
      co_await m->write(self_, region_, slot_names_[self_ - 1], own.encode());
  if (wrote != mem::Status::kAck) co_return out;

  // One batched scatter-gather read of every slot: a single completion event
  // and one permission evaluation instead of n independent reads.
  auto reads = co_await m->read_many(self_, region_, slot_names_);
  for (auto& rr : reads) {
    if (!rr.ok()) co_return out;
    const auto slot = PmpSlot::decode(rr.value);
    if (!slot.has_value()) co_return out;
    out.slots.push_back(*slot);
  }
  out.ok = true;
  co_return out;
}

sim::Task<mem::Status> AlignedPaxos::phase2_memory(std::size_t idx,
                                                   std::uint64_t prop_nr,
                                                   Bytes value) {
  PmpSlot s;
  s.min_proposal = prop_nr;
  s.acc_proposal = prop_nr;
  s.has_value = true;
  s.value = std::move(value);
  co_return co_await memories_[idx]->write(self_, region_,
                                           slot_names_[self_ - 1], s.encode());
}

sim::Task<Bytes> AlignedPaxos::propose(Bytes v) {
  const std::size_t n = config_.n;
  const std::size_t agents = n + memories_.size();
  const std::size_t quorum = majority(agents);

  while (!decided()) {
    co_await omega_->wait_leadership_or(self_, decision_gate_, config_.poll);
    if (decided()) break;

    const std::uint64_t prop_nr =
        (max_proposal_seen_ / n + 1) * n + (self_ - 1);
    max_proposal_seen_ = prop_nr;
    Bytes my_value = v;

    // ---- Phase 1 against every agent (communicate1 / hearback1). ----
    // Memory agents.
    sim::Fanout<Phase1Answer> mem_fan(*exec_);
    for (std::size_t i = 0; i < memories_.size(); ++i) {
      mem_fan.add(i, phase1_memory(i, prop_nr));
    }
    // Process agents.
    transport_->send_all(
        PaxosMsg{PaxosKind::kPrepare, prop_nr, 0, false, {}}.encode());

    std::size_t responses = 0;
    bool reject = false;
    bool adopted = false;
    std::uint64_t best_acc = 0;
    const sim::Time deadline = exec_->now() + config_.round_timeout;

    // Collect from both sources until a combined majority answers. One
    // suspension per wait, woken by whichever source signals first in
    // executor (time, seq) order — a round costs O(responses) events, not
    // O(round_timeout / poll) timer ticks. Queued memory answers drain
    // before process replies, mirroring the old memory-first alternation.
    auto& proc_ch = replies_;
    auto& mem_ch = mem_fan.results();
    while (responses < quorum && !reject) {
      if (auto batch = mem_ch.try_recv()) {
        ++responses;
        Phase1Answer& answer = batch->second;
        if (!answer.ok) {
          reject = true;
          break;
        }
        for (const auto& slot : answer.slots) {
          max_proposal_seen_ = std::max(max_proposal_seen_, slot.min_proposal);
          if (slot.min_proposal > prop_nr) reject = true;
          if (slot.has_value && (!adopted || slot.acc_proposal > best_acc)) {
            adopted = true;
            best_acc = slot.acc_proposal;
            my_value = slot.value;
          }
        }
        continue;
      }
      if (auto reply = proc_ch.try_recv()) {
        const PaxosMsg& msg = reply->second;
        if (msg.ballot != prop_nr) continue;
        if (msg.kind == PaxosKind::kNack) {
          max_proposal_seen_ = std::max(max_proposal_seen_, msg.acc_ballot);
          reject = true;
          break;
        }
        if (msg.kind != PaxosKind::kPromise) continue;
        ++responses;
        if (msg.has_value && (!adopted || msg.acc_ballot > best_acc)) {
          adopted = true;
          best_acc = msg.acc_ballot;
          my_value = msg.value;
        }
        continue;
      }
      sim::Select sel(*exec_);
      sel.on(mem_ch).on(proc_ch).until(deadline);
      if (co_await sel == sim::Select::kTimedOut) break;
    }
    if (reject || responses < quorum) {
      co_await exec_->sleep(config_.retry_backoff);
      continue;
    }

    // ---- Phase 2 against every agent (communicate2 / analyze2). ----
    sim::Fanout<mem::Status> mem2_fan(*exec_);
    for (std::size_t i = 0; i < memories_.size(); ++i) {
      mem2_fan.add(i, phase2_memory(i, prop_nr, my_value));
    }
    transport_->send_all(
        PaxosMsg{PaxosKind::kAccept, prop_nr, 0, true, my_value}.encode());

    std::size_t acks = 0;
    bool reject2 = false;
    const sim::Time deadline2 = exec_->now() + config_.round_timeout;
    auto& mem2_ch = mem2_fan.results();
    while (acks < quorum && !reject2) {
      if (auto batch = mem2_ch.try_recv()) {
        if (batch->second == mem::Status::kAck) {
          ++acks;
        } else {
          reject2 = true;
        }
        continue;
      }
      if (auto reply = proc_ch.try_recv()) {
        const PaxosMsg& msg = reply->second;
        if (msg.ballot != prop_nr) continue;
        if (msg.kind == PaxosKind::kNack) {
          max_proposal_seen_ = std::max(max_proposal_seen_, msg.acc_ballot);
          reject2 = true;
          break;
        }
        if (msg.kind == PaxosKind::kAccepted) ++acks;
        continue;
      }
      sim::Select sel(*exec_);
      sel.on(mem2_ch).on(proc_ch).until(deadline2);
      if (co_await sel == sim::Select::kTimedOut) break;
    }
    if (reject2 || acks < quorum) {
      co_await exec_->sleep(config_.retry_backoff);
      continue;
    }

    decide_locally(my_value);
    transport_->send_all(TransportMux::frame(kMuxDecide, my_value),
                         /*include_self=*/false);
  }

  co_return decision();
}

}  // namespace mnm::core
