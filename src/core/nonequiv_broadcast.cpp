#include "src/core/nonequiv_broadcast.hpp"

#include <cassert>

#include "src/sim/fanout.hpp"
#include "src/util/serde.hpp"

namespace mnm::core {

NebSlots::NebSlots(sim::Executor& exec, std::vector<mem::MemoryIface*> memories,
                   std::map<ProcessId, RegionId> owner_regions,
                   std::string prefix)
    : exec_(&exec),
      memories_(std::move(memories)),
      owner_regions_(std::move(owner_regions)),
      prefix_(std::move(prefix)) {}

swmr::ReplicatedRegister& NebSlots::slot(ProcessId owner, std::uint64_t k,
                                         ProcessId broadcaster) {
  std::unique_ptr<swmr::ReplicatedRegister>& entry =
      cache_[slot_key(owner, k, broadcaster)];
  if (entry == nullptr) {
    const std::string name = prefix_ + "/" + std::to_string(owner) + "/" +
                             std::to_string(k) + "/" + std::to_string(broadcaster);
    entry = std::make_unique<swmr::ReplicatedRegister>(
        *exec_, memories_, owner_regions_.at(owner), name);
  }
  return *entry;
}

Bytes neb_signing_bytes(std::uint64_t k, const Bytes& message) {
  util::Writer w(4 + 3 + 8 + crypto::kSha256DigestSize);
  w.str("neb").u64(k).raw(crypto::digest_bytes(crypto::sha256(message)));
  return std::move(w).take();
}

Bytes encode_neb_slot(std::uint64_t k, const Bytes& message,
                      const crypto::Signature& sig) {
  util::Writer w(8 + 4 + message.size() + 8 + sig.mac.size());
  w.u64(k).bytes(message);
  sig.encode(w);
  return std::move(w).take();
}

std::optional<NebSlotContent> decode_neb_slot(const Bytes& raw) {
  try {
    util::Reader r(raw);
    NebSlotContent c;
    c.k = r.u64();
    c.message = r.bytes();
    c.sig = crypto::Signature::decode(r);
    r.expect_end();
    return c;
  } catch (const util::SerdeError&) {
    return std::nullopt;
  }
}

NonEquivBroadcast::NonEquivBroadcast(sim::Executor& exec, NebSlots& slots,
                                     const crypto::KeyStore& keystore,
                                     crypto::Signer signer, NebConfig config)
    : exec_(&exec),
      slots_(&slots),
      keystore_(&keystore),
      signer_(signer),
      config_(config),
      deliveries_(exec) {
  last_.assign(config_.n, 1);
}

void NonEquivBroadcast::start() {
  assert(!started_);
  started_ = true;
  exec_->spawn(scan_loop());
}

sim::Task<mem::Status> NonEquivBroadcast::broadcast(Bytes message) {
  const std::uint64_t k = next_k_++;
  const ProcessId self = signer_.id();
  const crypto::Signature sig = signer_.sign(neb_signing_bytes(k, message));
  // Algorithm 2 line 4: write(slots[p, k, p], sign((k, m))).
  co_return co_await slots_->slot(self, k, self)
      .write(self, encode_neb_slot(k, message, sig));
}

sim::Task<bool> NonEquivBroadcast::try_deliver(ProcessId q) {
  const ProcessId self = signer_.id();
  const std::uint64_t k = last_.at(q - 1);

  // (1) Read q's own slot for its k-th broadcast.
  const mem::ReadResult head = co_await slots_->slot(q, k, q).read(self);
  if (!head.ok() || util::is_bottom(head.value)) co_return false;
  const auto content = decode_neb_slot(head.value);
  if (!content.has_value() || content->k != k ||
      !keystore_->valid_from(q, neb_signing_bytes(content->k, content->message),
                             content->sig)) {
    // q hasn't written anything valid (or is Byzantine). Retry later.
    co_return false;
  }

  // (2) Copy the signed value into our own slot so others can cross-check.
  const mem::Status copied =
      co_await slots_->slot(self, k, q).write(self, head.value);
  if (copied != mem::Status::kAck) co_return false;

  // (3) Read everyone's copy; a different validly-signed value for the same
  // key proves q equivocated — refuse delivery (forever: last_ stays put).
  sim::Fanout<mem::ReadResult> fanout(*exec_);
  for (std::size_t i = 0; i < config_.n; ++i) {
    fanout.add(i, slots_->slot(static_cast<ProcessId>(i + 1), k, q).read(self));
  }
  auto copies = co_await fanout.collect(config_.n);
  for (auto& [idx, rr] : copies) {
    if (!rr.ok() || util::is_bottom(rr.value)) continue;
    if (rr.value == head.value) continue;
    const auto other = decode_neb_slot(rr.value);
    if (other.has_value() && other->k == k &&
        keystore_->valid_from(q, neb_signing_bytes(other->k, other->message),
                              other->sig) &&
        other->message != content->message) {
      co_return false;  // q is Byzantine; no delivery.
    }
  }

  deliveries_.send(NebDelivery{q, k, content->message, content->sig});
  last_[q - 1] = k + 1;
  co_return true;
}

sim::Task<void> NonEquivBroadcast::scan_loop() {
  while (true) {
    for (ProcessId q = 1; q <= static_cast<ProcessId>(config_.n); ++q) {
      // Drain q's backlog before moving on; stop at the first gap.
      while (co_await try_deliver(q)) {
      }
    }
    co_await exec_->sleep(config_.poll);
  }
}

}  // namespace mnm::core
