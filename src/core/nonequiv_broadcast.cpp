#include "src/core/nonequiv_broadcast.hpp"

#include <algorithm>
#include <cassert>
#include <cstring>

#include "src/mem/write_watch.hpp"
#include "src/sim/fanout.hpp"
#include "src/util/serde.hpp"

namespace mnm::core {

NebSlots::NebSlots(sim::Executor& exec, std::vector<mem::MemoryIface*> memories,
                   std::map<ProcessId, RegionId> owner_regions,
                   std::string prefix)
    : exec_(&exec),
      memories_(std::move(memories)),
      owner_regions_(std::move(owner_regions)),
      prefix_(std::move(prefix)) {}

swmr::ReplicatedRegister& NebSlots::slot(ProcessId owner, std::uint64_t k,
                                         ProcessId broadcaster) {
  std::unique_ptr<swmr::ReplicatedRegister>& entry =
      cache_[slot_key(owner, k, broadcaster)];
  if (entry == nullptr) {
    const std::string name = prefix_ + "/" + std::to_string(owner) + "/" +
                             std::to_string(k) + "/" + std::to_string(broadcaster);
    entry = std::make_unique<swmr::ReplicatedRegister>(
        *exec_, memories_, owner_regions_.at(owner), name);
  }
  return *entry;
}

Bytes neb_signing_bytes(std::uint64_t k, util::ByteView message,
                        std::uint32_t prefix_len) {
  util::Writer w(4 + 3 + 8 + 4 + crypto::kSha256DigestSize);
  w.str("neb").u64(k).u32(prefix_len).raw(
      crypto::digest_bytes(crypto::sha256(message.subspan(prefix_len))));
  return std::move(w).take();
}

Bytes encode_neb_slot(std::uint64_t k, const Bytes& message,
                      const crypto::Signature& sig, std::uint32_t prefix_len) {
  util::Writer w(8 + 4 + 4 + message.size() + 8 + sig.mac.size());
  w.u64(k).u32(prefix_len).bytes(message);
  sig.encode(w);
  return std::move(w).take();
}

std::optional<NebSlotContent> decode_neb_slot(const Bytes& raw) {
  try {
    util::Reader r(raw);
    NebSlotContent c;
    c.k = r.u64();
    c.prefix_len = r.u32();
    c.message = r.bytes();
    c.sig = crypto::Signature::decode(r);
    r.expect_end();
    return c;
  } catch (const util::SerdeError&) {
    return std::nullopt;
  }
}

NonEquivBroadcast::NonEquivBroadcast(sim::Executor& exec, NebSlots& slots,
                                     const crypto::KeyStore& keystore,
                                     crypto::Signer signer, NebConfig config)
    : exec_(&exec),
      slots_(&slots),
      keystore_(&keystore),
      signer_(signer),
      config_(config),
      deliveries_(exec) {
  last_.assign(config_.n, 1);
  prev_delivered_.assign(config_.n, Bytes{});
}

void NonEquivBroadcast::start() {
  assert(!started_);
  started_ = true;
  exec_->spawn(scan_loop());
}

sim::Task<mem::Status> NonEquivBroadcast::broadcast(Bytes message) {
  const std::uint64_t k = next_k_++;
  const ProcessId self = signer_.id();
  // Suffix-digest signing: declare how many leading bytes this message
  // shares with our previous broadcast and hash only the rest. Receivers
  // deliver strictly in order, so their anchor (our (k−1)-th delivered
  // message) is exactly prev_broadcast_.
  const std::uint32_t prefix_len = static_cast<std::uint32_t>(
      std::mismatch(message.begin(), message.end(), prev_broadcast_.begin(),
                    prev_broadcast_.end())
          .first -
      message.begin());
  const crypto::Signature sig =
      signer_.sign(neb_signing_bytes(k, message, prefix_len));
  // Algorithm 2 line 4: write(slots[p, k, p], sign((k, m))).
  const Bytes slot_bytes = encode_neb_slot(k, message, sig, prefix_len);
  prev_broadcast_ = std::move(message);
  co_return co_await slots_->slot(self, k, self).write(self, slot_bytes);
}

bool NonEquivBroadcast::slot_valid(ProcessId q, const NebSlotContent& c) const {
  const Bytes& prev = prev_delivered_[q - 1];
  if (c.prefix_len > c.message.size() || c.prefix_len > prev.size()) {
    return false;  // claims more shared bytes than exist
  }
  if (c.prefix_len != 0 &&
      std::memcmp(c.message.data(), prev.data(), c.prefix_len) != 0) {
    return false;  // claimed prefix does not match the delivered history
  }
  return keystore_->valid_from(
      q, neb_signing_bytes(c.k, c.message, c.prefix_len), c.sig);
}

sim::Task<bool> NonEquivBroadcast::try_deliver(ProcessId q) {
  const ProcessId self = signer_.id();
  const std::uint64_t k = last_.at(q - 1);

  // (1) Read q's own slot for its k-th broadcast. Verification hashes only
  // the suffix past the prefix shared with q's previous delivered message.
  const mem::ReadResult head = co_await slots_->slot(q, k, q).read(self);
  if (!head.ok() || util::is_bottom(head.value)) co_return false;
  auto content = decode_neb_slot(head.value);
  if (!content.has_value() || content->k != k || !slot_valid(q, *content)) {
    // q hasn't written anything valid (or is Byzantine). Retry later.
    co_return false;
  }

  // (2) Copy the signed value into our own slot so others can cross-check.
  const mem::Status copied =
      co_await slots_->slot(self, k, q).write(self, head.value);
  if (copied != mem::Status::kAck) co_return false;

  // (3) Read everyone's copy; a different validly-signed value for the same
  // key proves q equivocated — refuse delivery (forever: last_ stays put).
  sim::Fanout<mem::ReadResult> fanout(*exec_);
  for (std::size_t i = 0; i < config_.n; ++i) {
    fanout.add(i, slots_->slot(static_cast<ProcessId>(i + 1), k, q).read(self));
  }
  auto copies = co_await fanout.collect(config_.n);
  for (auto& [idx, rr] : copies) {
    if (!rr.ok() || util::is_bottom(rr.value)) continue;
    if (rr.value == head.value) continue;
    const auto other = decode_neb_slot(rr.value);
    if (other.has_value() && other->k == k && slot_valid(q, *other) &&
        other->message != content->message) {
      co_return false;  // q is Byzantine; no delivery.
    }
  }

  suffix_bytes_hashed_ += content->message.size() - content->prefix_len;
  prefix_bytes_skipped_ += content->prefix_len;
  deliveries_.send(NebDelivery{q, k, content->message, content->sig,
                               content->prefix_len});
  prev_delivered_[q - 1] = std::move(content->message);
  last_[q - 1] = k + 1;
  co_return true;
}

sim::Task<void> NonEquivBroadcast::scan_loop() {
  // Event-driven scanning: instead of re-reading every broadcaster's head
  // slot each poll tick, suspend on the memories' write-version signals and
  // rescan only when some register actually changed. The watch snapshots
  // *before* a pass, so a write landing mid-scan re-arms the select
  // immediately — no lost wakeups. Backends without a signal (none in-tree)
  // degrade to the config_.poll timeout.
  mem::WriteWatch watch(slots_->memories());
  while (true) {
    watch.snapshot();
    bool progress = false;
    for (ProcessId q = 1; q <= static_cast<ProcessId>(config_.n); ++q) {
      // Drain q's backlog before moving on; stop at the first gap.
      while (co_await try_deliver(q)) progress = true;
    }
    if (progress) continue;  // re-snapshot and look again before sleeping
    co_await watch.wait_change(*exec_, sim::kTimeInfinity, config_.poll);
  }
}

}  // namespace mnm::core
