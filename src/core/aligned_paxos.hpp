// Aligned Paxos (paper §5.2, Algorithms 9–15).
//
// Processes and memories are *equivalent agents*: consensus survives as long
// as a majority of the combined set P ∪ M stays alive. The proposer runs the
// two Paxos phases against every agent, translating each step per agent
// kind (the communicate / hear-back / analyze factoring of Algorithm 9):
//
//   phase 1   process: send prepare(b), await promise    (Paxos acceptor)
//             memory:  seize write permission, write (b, -, -) into own
//                      slot, read all slots               (PMP phase 1)
//   phase 2   process: send accept(b, v), await accepted
//             memory:  write (b, b, v) into own slot; an acked write is the
//                      memory's "accepted"
//
// Quorums are majorities of n + m, so any majority of agents — mixing
// processes and memories freely — suffices. Compare bench_aligned: PMP dies
// when a majority of *memories* is gone even with all processes alive;
// Aligned Paxos keeps going.
//
// Memory layout reuses the PMP region/slot format ("<prefix>/slot/<p>");
// acceptor messages reuse the Paxos wire format. All conversations run over
// ONE base Transport — a standalone setup passes a NetTransport, a
// multi-slot engine a slot sub-transport. A single dispatch loop (the Paxos
// shape) routes inbound messages: raw PaxosMsg bytes (first byte is a
// PaxosKind) are acceptor traffic, a kMuxDecide-framed payload is a DECIDE
// — no per-conversation demux hop, no per-message re-framing.

#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "src/common.hpp"
#include "src/core/omega.hpp"
#include "src/core/paxos.hpp"
#include "src/core/protected_memory_paxos.hpp"
#include "src/core/transport_mux.hpp"
#include "src/mem/memory.hpp"
#include "src/sim/executor.hpp"
#include "src/sim/sync.hpp"
#include "src/sim/task.hpp"

namespace mnm::core {

struct AlignedPaxosConfig {
  std::size_t n = 3;
  /// Register-name namespace; must match the region's make_pmp_region prefix.
  std::string prefix = "pmp";
  sim::Time round_timeout = 40;
  /// Seed for the leadership-wait backoff (waits are event-driven; this only
  /// paces the fallback re-check of un-poked Ω schedules).
  sim::Time poll = 1;
  sim::Time retry_backoff = 8;
};

class AlignedPaxos {
 public:
  /// `region` is a PMP-style region (make_pmp_region), identical across
  /// memories. `transport` carries all three conversations;
  /// `transport.self()` is this process's identity.
  AlignedPaxos(sim::Executor& exec, std::vector<mem::MemoryIface*> memories,
               RegionId region, Transport& transport, Omega& omega,
               AlignedPaxosConfig config);

  /// Spawn the acceptor + decide listeners.
  void start();

  sim::Task<Bytes> propose(Bytes v);

  bool decided() const { return decided_value_.has_value(); }
  const Bytes& decision() const { return *decided_value_; }
  sim::Time decided_at() const { return decided_at_; }
  /// Aligned Paxos always runs both phases — kept for the uniform
  /// ConsensusEngine surface.
  bool decided_fast() const { return false; }
  sim::Gate& decision_gate() { return decision_gate_; }

 private:
  /// One agent's phase-1 answer translated to the common language
  /// (Algorithm 11/12): either a rejection or the accepted pairs it knows.
  struct Phase1Answer {
    bool ok = false;
    std::vector<PmpSlot> slots;  // processes report one; memories report n
  };

  sim::Task<Phase1Answer> phase1_memory(std::size_t idx, std::uint64_t prop_nr);
  sim::Task<mem::Status> phase2_memory(std::size_t idx, std::uint64_t prop_nr,
                                       Bytes value);
  sim::Task<void> dispatch_loop();
  void handle_acceptor(ProcessId src, const PaxosMsg& msg);
  void decide_locally(util::ByteView value);

  sim::Executor* exec_;
  std::vector<mem::MemoryIface*> memories_;
  RegionId region_;
  Transport* transport_;
  Omega* omega_;
  ProcessId self_;
  AlignedPaxosConfig config_;
  /// Promise/accepted/nack replies routed to the proposer by dispatch_loop.
  sim::Channel<std::pair<ProcessId, PaxosMsg>> replies_;

  // Hot-path caches (built once in the constructor).
  std::vector<ProcessId> all_;
  std::vector<std::string> slot_names_;  // index p - 1
  mem::Permission excl_perm_;            // exclusive_writer(self, all)

  // Acceptor state (for the process-agent role).
  std::uint64_t promised_ = 0;
  std::optional<std::uint64_t> acc_ballot_;
  Bytes acc_value_;

  std::uint64_t max_proposal_seen_ = 0;
  std::optional<Bytes> decided_value_;
  sim::Time decided_at_ = 0;
  sim::Gate decision_gate_;
};

}  // namespace mnm::core
