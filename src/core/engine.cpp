#include "src/core/engine.hpp"

namespace mnm::core {

// ---------------------------------------------------------------------------
// CheapQuorumEngine
// ---------------------------------------------------------------------------

CheapQuorumEngine::CheapQuorumEngine(
    sim::Executor& exec, std::vector<mem::MemoryIface*> memories,
    std::shared_ptr<SlotRegions<CheapQuorumRegions>> regions,
    const crypto::KeyStore& keystore, crypto::Signer signer,
    CheapQuorumConfig config, std::string ns)
    : ConsensusEngine(exec),
      memories_(std::move(memories)),
      regions_(std::move(regions)),
      keystore_(&keystore),
      signer_(signer),
      config_(std::move(config)),
      ns_(std::move(ns)) {}

ProcessId CheapQuorumEngine::self() const { return signer_.id(); }

void CheapQuorumEngine::open_slot(Slot slot) {
  auto it = slots_.find(slot);
  if (it != slots_.end()) return;
  CheapQuorumConfig c = config_;
  c.prefix = slot_ns(slot, ns_);
  slots_.emplace(slot, std::make_unique<CheapQuorum>(*exec_, memories_,
                                                     regions_->get(slot),
                                                     *keystore_, signer_,
                                                     std::move(c)));
  note_slot(slot);
}

sim::Task<Decision> CheapQuorumEngine::propose(Slot slot, Bytes value) {
  open_slot(slot);
  CheapQuorum* inst = slots_.at(slot).get();
  const CqOutcome out = co_await inst->propose(std::move(value));
  if (!out.decided) {
    throw ProposeAborted("cheap quorum aborted at slot " +
                         std::to_string(slot));
  }
  Decision d{out.value, /*fast=*/true, out.at};
  push_decision(slot, d);
  co_return d;
}

// ---------------------------------------------------------------------------
// FastRobustEngine
// ---------------------------------------------------------------------------

FastRobustEngine::FastRobustEngine(
    sim::Executor& exec, std::vector<mem::MemoryIface*> memories,
    std::shared_ptr<SlotRegions<FastRobustSlotRegions>> regions,
    const crypto::KeyStore& keystore, crypto::Signer signer, Omega& omega,
    FastRobustConfig config, std::string cq_ns, std::string neb_ns)
    : ConsensusEngine(exec),
      memories_(std::move(memories)),
      regions_(std::move(regions)),
      keystore_(&keystore),
      signer_(signer),
      omega_(&omega),
      config_(config),
      cq_ns_(std::move(cq_ns)),
      neb_ns_(std::move(neb_ns)) {}

ProcessId FastRobustEngine::self() const { return signer_.id(); }

void FastRobustEngine::open_slot(Slot slot) {
  auto it = slots_.find(slot);
  if (it != slots_.end()) return;
  const FastRobustSlotRegions& r = regions_->get(slot);
  FastRobustConfig c = config_;
  c.cheap.prefix = slot_ns(slot, cq_ns_);
  SlotStack stack;
  stack.neb_slots = std::make_unique<NebSlots>(*exec_, memories_, r.neb,
                                               slot_ns(slot, neb_ns_));
  stack.process = std::make_unique<FastRobustProcess>(
      *exec_, memories_, r.cq, *stack.neb_slots, *keystore_, signer_, *omega_,
      c);
  stack.process->start();
  slots_.emplace(slot, std::move(stack));
  note_slot(slot);
}

trusted::TsendStats FastRobustEngine::tsend_stats() const {
  trusted::TsendStats out;
  for (const auto& [slot, stack] : slots_) out += stack.process->tsend_stats();
  return out;
}

sim::Task<Decision> FastRobustEngine::propose(Slot slot, Bytes value) {
  open_slot(slot);
  FastRobustProcess* inst = slots_.at(slot).process.get();
  const FastRobustOutcome out = co_await inst->propose(std::move(value));
  Decision d{out.value, out.fast, out.decided_at};
  push_decision(slot, d);
  co_return d;
}

}  // namespace mnm::core
