// Protected Memory Paxos (paper §5.1, Algorithm 7, Theorem 5.1).
//
// Disk Paxos with dynamic permissions: each memory has a single region whose
// write permission is held *exclusively* by the current leader. Because a
// new leader must seize the permission before writing, a leader whose
// phase-2 write is acknowledged knows no other leader intervened — the
// "uncontended instantaneous guarantee" (§1) — and can decide immediately,
// without Disk Paxos's verifying read. That removes two delays:
//
//   crash consensus, n ≥ fP+1 processes, m ≥ 2fM+1 memories, 2-deciding
//   (p1's first attempt is a single parallel write across the memories).
//
// Memory layout: one region per memory covering "pmp/"; registers
// "pmp/slot/<p>" hold (minProposal, accProposal, value) triples. legalChange
// permits exactly one kind of change: a process taking exclusive
// write-ownership for itself (pmp_legal_change) — this is a crash-failure
// algorithm, so the rule only needs to encode the protocol, not defend
// against Byzantine behaviour.
//
// Decisions are disseminated with a DECIDE broadcast so every correct
// process decides (the standard extension the paper notes after Alg. 7).

#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "src/common.hpp"
#include "src/core/omega.hpp"
#include "src/core/transport.hpp"
#include "src/mem/memory.hpp"
#include "src/sim/executor.hpp"
#include "src/sim/sync.hpp"
#include "src/sim/task.hpp"

namespace mnm::core {

/// legalChange for PMP regions: the only legal change is `requester` taking
/// exclusive writership (R: Π−{requester}, RW: {requester}).
mem::LegalChangeFn pmp_legal_change(std::vector<ProcessId> all);

/// Create the single PMP region on one memory. Initial exclusive writer is
/// the fixed first leader p1. Multi-slot engines namespace the prefix per
/// slot ("s<slot>/pmp") so one memory serves a whole log.
template <typename MemoryT>
RegionId make_pmp_region(MemoryT& memory, std::size_t n,
                         ProcessId first_leader = kLeaderP1,
                         const std::string& prefix = "pmp") {
  const auto all = all_processes(n);
  return memory.create_region({prefix + "/"},
                              mem::Permission::exclusive_writer(first_leader, all),
                              pmp_legal_change(all));
}

/// Slot contents (minProposal, accProposal, value) — Algorithm 7 line 4.
struct PmpSlot {
  std::uint64_t min_proposal = 0;
  std::uint64_t acc_proposal = 0;
  bool has_value = false;
  Bytes value;

  Bytes encode() const;
  static std::optional<PmpSlot> decode(util::ByteView raw);
};

struct PmpConfig {
  std::size_t n = 2;
  /// Register-name namespace; must match the region's make_pmp_region prefix.
  std::string prefix = "pmp";
  sim::Time poll = 1;
  sim::Time retry_backoff = 8;
};

class ProtectedMemoryPaxos {
 public:
  /// `region` must be the PMP region id, identical across `memories`.
  /// `transport` carries the DECIDE dissemination; `transport.self()` is this
  /// process's identity.
  ProtectedMemoryPaxos(sim::Executor& exec,
                       std::vector<mem::MemoryIface*> memories, RegionId region,
                       Transport& transport, Omega& omega, PmpConfig config);

  /// Spawn the DECIDE listener.
  void start();

  sim::Task<Bytes> propose(Bytes v);

  bool decided() const { return decided_value_.has_value(); }
  const Bytes& decision() const { return *decided_value_; }
  sim::Time decided_at() const { return decided_at_; }
  /// True iff this process decided on p1's single-write fast path (§1's
  /// uncontended instantaneous guarantee), i.e. as the proposer of the
  /// 2-delay first attempt. Learners report false.
  bool decided_fast() const { return decided_fast_; }
  sim::Gate& decision_gate() { return decision_gate_; }

 private:
  struct Phase1Result {
    bool ok = false;                   // permission + write1 succeeded
    std::vector<PmpSlot> slots;        // all processes' slots at this memory
  };

  sim::Task<Phase1Result> phase1_at_memory(std::size_t idx, std::uint64_t prop_nr);
  sim::Task<mem::Status> phase2_at_memory(std::size_t idx, std::uint64_t prop_nr,
                                          Bytes value);
  sim::Task<void> decide_listener();
  void decide_locally(util::ByteView value);

  sim::Executor* exec_;
  std::vector<mem::MemoryIface*> memories_;
  RegionId region_;
  Transport* transport_;
  Omega* omega_;
  ProcessId self_;
  PmpConfig config_;

  // Hot-path caches (built once in the constructor).
  std::vector<ProcessId> all_;
  std::vector<std::string> slot_names_;  // index p - 1
  mem::Permission excl_perm_;            // exclusive_writer(self, all)

  std::uint64_t max_proposal_seen_ = 0;
  bool first_attempt_ = true;
  bool decided_fast_ = false;
  std::optional<Bytes> decided_value_;
  sim::Time decided_at_ = 0;
  sim::Gate decision_gate_;
};

}  // namespace mnm::core
