#include "src/core/protected_memory_paxos.hpp"

#include "src/sim/fanout.hpp"
#include "src/util/serde.hpp"

namespace mnm::core {

mem::LegalChangeFn pmp_legal_change(std::vector<ProcessId> all) {
  // Precompute each process's exclusive-writer permission: the memory
  // evaluates legalChange on every change_permission, and rebuilding the
  // target permission there allocated three sets per call.
  std::vector<mem::Permission> targets;
  targets.reserve(all.size());
  for (ProcessId p : all) {
    targets.push_back(mem::Permission::exclusive_writer(p, all));
  }
  return [all = std::move(all), targets = std::move(targets)](
             ProcessId requester, RegionId, const mem::Permission&,
             const mem::Permission& proposed) {
    for (std::size_t i = 0; i < all.size(); ++i) {
      if (all[i] == requester) return proposed == targets[i];
    }
    return proposed == mem::Permission::exclusive_writer(requester, all);
  };
}

Bytes PmpSlot::encode() const {
  util::Writer w(8 + 8 + 1 + 4 + value.size());
  w.u64(min_proposal).u64(acc_proposal).boolean(has_value).bytes(value);
  return std::move(w).take();
}

std::optional<PmpSlot> PmpSlot::decode(util::ByteView raw) {
  if (util::is_bottom(raw)) return PmpSlot{};  // ⊥ slot: all zero
  try {
    util::Reader r(raw);
    PmpSlot s;
    s.min_proposal = r.u64();
    s.acc_proposal = r.u64();
    s.has_value = r.boolean();
    s.value = r.bytes();
    r.expect_end();
    return s;
  } catch (const util::SerdeError&) {
    return std::nullopt;
  }
}

ProtectedMemoryPaxos::ProtectedMemoryPaxos(
    sim::Executor& exec, std::vector<mem::MemoryIface*> memories,
    RegionId region, Transport& transport, Omega& omega, PmpConfig config)
    : exec_(&exec),
      memories_(std::move(memories)),
      region_(region),
      transport_(&transport),
      omega_(&omega),
      self_(transport.self()),
      config_(std::move(config)),
      all_(all_processes(config_.n)),
      excl_perm_(mem::Permission::exclusive_writer(self_, all_)),
      decision_gate_(exec) {
  for (ProcessId p : all_) {
    slot_names_.push_back(config_.prefix + "/slot/" + std::to_string(p));
  }
}

void ProtectedMemoryPaxos::start() { exec_->spawn(decide_listener()); }

void ProtectedMemoryPaxos::decide_locally(util::ByteView value) {
  if (decided_value_.has_value()) return;
  decided_value_ = util::to_bytes(value);
  decided_at_ = exec_->now();
  decision_gate_.open();
}

sim::Task<void> ProtectedMemoryPaxos::decide_listener() {
  while (true) {
    const TMsg m = co_await transport_->incoming().recv();
    decide_locally(m.payload);
  }
}

sim::Task<ProtectedMemoryPaxos::Phase1Result>
ProtectedMemoryPaxos::phase1_at_memory(std::size_t idx, std::uint64_t prop_nr) {
  mem::MemoryIface* m = memories_[idx];
  Phase1Result out;

  // Seize exclusive write permission (Alg. 7 line 13).
  const mem::Status grabbed =
      co_await m->change_permission(self_, region_, excl_perm_);
  if (grabbed != mem::Status::kAck) co_return out;

  // write1: stamp our proposal number (line 14).
  PmpSlot own;
  own.min_proposal = prop_nr;
  const mem::Status wrote = co_await m->write(self_, region_,
                                              slot_names_[self_ - 1], own.encode());
  if (wrote != mem::Status::kAck) co_return out;

  // Read every process's slot at this memory in one batched scatter-gather
  // request (line 15): a single completion and permission evaluation.
  auto reads = co_await m->read_many(self_, region_, slot_names_);
  out.slots.resize(all_.size());
  for (std::size_t i = 0; i < reads.size(); ++i) {
    if (!reads[i].ok()) co_return out;  // lost permission mid-phase: fail
    const auto slot = PmpSlot::decode(reads[i].value);
    if (!slot.has_value()) co_return out;
    out.slots[i] = *slot;
  }
  out.ok = true;
  co_return out;
}

sim::Task<mem::Status> ProtectedMemoryPaxos::phase2_at_memory(
    std::size_t idx, std::uint64_t prop_nr, Bytes value) {
  PmpSlot s;
  s.min_proposal = prop_nr;
  s.acc_proposal = prop_nr;
  s.has_value = true;
  s.value = std::move(value);
  co_return co_await memories_[idx]->write(self_, region_,
                                           slot_names_[self_ - 1], s.encode());
}

sim::Task<Bytes> ProtectedMemoryPaxos::propose(Bytes v) {
  const std::size_t m = memories_.size();
  const std::size_t quorum = majority(m);

  while (!decided()) {
    // Wait to become leader (line 9), but wake up if a DECIDE arrives.
    co_await omega_->wait_leadership_or(self_, decision_gate_, config_.poll);
    if (decided()) break;

    Bytes my_value = v;
    std::uint64_t prop_nr;

    const bool fast_attempt = (self_ == kLeaderP1 && first_attempt_);
    if (fast_attempt) {
      // p1's first attempt: it already holds every permission, and no slot
      // can contain anything yet — skip straight to phase 2 (the 2-delay
      // fast path). Proposal number 0 is owned by p1.
      prop_nr = 0;
      first_attempt_ = false;
    } else {
      first_attempt_ = false;
      prop_nr = (max_proposal_seen_ / config_.n + 1) * config_.n + (self_ - 1);
      max_proposal_seen_ = prop_nr;

      // Phase 1 on all memories in parallel; continue after a majority of
      // iterations complete (lines 12–16). Crashed memories never complete.
      sim::Fanout<Phase1Result> fanout(*exec_);
      for (std::size_t i = 0; i < m; ++i) {
        fanout.add(i, phase1_at_memory(i, prop_nr));
      }
      auto results = co_await fanout.collect(quorum);

      bool restart = false;
      std::uint64_t best_acc = 0;
      bool adopted = false;
      for (auto& [idx, r] : results) {
        if (!r.ok) {
          restart = true;  // write1 failed somewhere we heard from (line 17)
          break;
        }
        for (const auto& slot : r.slots) {
          max_proposal_seen_ = std::max(max_proposal_seen_, slot.min_proposal);
          if (slot.min_proposal > prop_nr) restart = true;  // line 18
          if (slot.has_value && (!adopted || slot.acc_proposal > best_acc)) {
            adopted = true;
            best_acc = slot.acc_proposal;
            my_value = slot.value;  // line 20
          }
        }
        if (restart) break;
      }
      if (restart) {
        co_await exec_->sleep(config_.retry_backoff);
        continue;
      }
    }

    // Phase 2: write (propNr, propNr, value) to all memories; a majority of
    // acks decides — no verifying read needed, because an acked write proves
    // the permission was still ours at that memory (lines 21–24).
    sim::Fanout<mem::Status> fanout(*exec_);
    for (std::size_t i = 0; i < m; ++i) {
      fanout.add(i, phase2_at_memory(i, prop_nr, my_value));
    }
    auto acks = co_await fanout.collect(quorum);
    bool all_acked = true;
    for (auto& [idx, st] : acks) {
      if (st != mem::Status::kAck) all_acked = false;
    }
    if (!all_acked) {
      co_await exec_->sleep(config_.retry_backoff);
      continue;
    }

    if (!decided()) decided_fast_ = fast_attempt;
    decide_locally(my_value);
    transport_->send_all(my_value, /*include_self=*/false);
  }

  co_return decision();
}

}  // namespace mnm::core
