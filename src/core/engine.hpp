// core::ConsensusEngine — the uniform multi-slot consensus surface.
//
// The paper positions its protocols as drop-in engines for log replication
// systems (DARE, APUS — §1/§2), but each protocol grew its own single-shot
// propose() signature, config type, and transport/region plumbing. This
// header unifies them: an engine exposes
//
//   propose(slot, value) → Task<Decision>      (value, fast/slow path, time)
//
// for an open-ended space of slots, multiplexed over ONE base transport per
// replica (SlotTransportHub's slot-tag namespace) and ONE set of memories
// whose per-slot regions live under "s<slot>/..." name prefixes
// (SlotRegions). Adapters exist for all seven protocols: Paxos, Fast Paxos,
// Disk Paxos, Protected Memory Paxos, Aligned Paxos, Cheap Quorum, and
// Fast & Robust. smr::Log builds pipelined replication on top.
//
// Contract:
//  * propose(slot, v) resolves with the slot's decision (which may be
//    another proposer's value). Calling propose for an already-decided slot
//    resolves immediately. Cheap Quorum — not a full consensus — throws
//    ProposeAborted when it aborts (its abort outcome seeds Fast & Robust's
//    backup; use FastRobustEngine for totality).
//  * open_slot(slot) makes this replica participate passively (acceptor /
//    learner roles) without proposing. Message-routed engines discover and
//    open slots automatically from inbound traffic (the hub's horizon);
//    all-propose engines (Cheap Quorum, Fast & Robust, whose traffic runs
//    through memories) require every correct replica to propose each slot —
//    smr::Log's all_propose mode does exactly that.
//  * decisions() streams every locally decided slot exactly once, in local
//    decision order (slot order NOT guaranteed — that is the pipelining).
//    Single consumer.
//  * slot_horizon()/horizon_signal(): one past the highest slot this
//    replica knows of; grows on open/propose/inbound traffic. smr::Log's
//    leader hand-off re-proposes the open suffix [applied, horizon).
//
// Hot-path invariants preserved: engines add no per-message work beyond one
// slot-id frame (encoded into the same single broadcast buffer) and one
// FlatMap probe; per-slot instance setup allocates, steady-state message
// flow does not.

#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "src/common.hpp"
#include "src/core/aligned_paxos.hpp"
#include "src/core/cheap_quorum.hpp"
#include "src/core/disk_paxos.hpp"
#include "src/core/fast_robust.hpp"
#include "src/core/omega.hpp"
#include "src/core/paxos.hpp"
#include "src/core/protected_memory_paxos.hpp"
#include "src/core/slot_hub.hpp"
#include "src/core/transport.hpp"
#include "src/crypto/signature.hpp"
#include "src/mem/memory.hpp"
#include "src/sim/channel.hpp"
#include "src/sim/executor.hpp"
#include "src/sim/sync.hpp"
#include "src/sim/task.hpp"

namespace mnm::core {

/// What a slot decided: the value, whether the local process took a fast
/// (2-delay) path to it, and the virtual time of the local decision.
struct Decision {
  Bytes value;
  bool fast = false;
  sim::Time decided_at = 0;
};

struct SlotDecision {
  Slot slot = 0;
  Decision decision;
};

/// Thrown by engines whose protocol may terminate without deciding
/// (Cheap Quorum's abort, §4.2).
struct ProposeAborted : std::runtime_error {
  explicit ProposeAborted(const std::string& what) : std::runtime_error(what) {}
};

/// Per-slot memory-region namespace: "s<slot>/<base>". All per-slot
/// register names and region prefixes live under it. Memory-backed engines
/// take `base` as a constructor parameter (default "dp"/"pmp"/"cq"/"neb")
/// so several engine instances — e.g. one per KV shard, base
/// kv::shard_ns(g, ...) — can share one set of memories with disjoint
/// region namespaces.
inline std::string slot_ns(Slot s, const std::string& base) {
  std::string out;
  out.reserve(base.size() + 22);
  out += 's';
  out += std::to_string(s);
  out += '/';
  out += base;
  return out;
}

/// Shared, lazily-populated slot → regions table. `make(slot)` must create
/// the slot's regions identically (same order) on EVERY backing memory so
/// region ids agree; it runs exactly once per slot, on first touch by any
/// replica's engine. One SlotRegions instance is shared by all replicas of
/// a cluster.
template <typename Regions>
class SlotRegions {
 public:
  explicit SlotRegions(std::function<Regions(Slot)> make)
      : make_(std::move(make)) {}

  const Regions& get(Slot s) {
    auto it = cache_.find(s);
    if (it == cache_.end()) it = cache_.emplace(s, make_(s)).first;
    return it->second;
  }

 private:
  std::function<Regions(Slot)> make_;
  std::map<Slot, Regions> cache_;
};

class ConsensusEngine {
 public:
  explicit ConsensusEngine(sim::Executor& exec)
      : exec_(&exec), decisions_(exec), horizon_signal_(exec) {}
  ConsensusEngine(const ConsensusEngine&) = delete;
  ConsensusEngine& operator=(const ConsensusEngine&) = delete;
  virtual ~ConsensusEngine() = default;

  virtual ProcessId self() const = 0;
  virtual std::size_t process_count() const = 0;

  /// Spawn the engine's background loops (demux, discovery). Call exactly
  /// once before the first propose/open_slot.
  virtual void start() = 0;

  /// Ensure the slot's instance exists and participates passively.
  virtual void open_slot(Slot slot) = 0;

  /// Propose `value` for `slot`; resolves with the slot's decision.
  virtual sim::Task<Decision> propose(Slot slot, Bytes value) = 0;

  /// Locally decided slots, exactly once each, in local decision order.
  sim::Channel<SlotDecision>& decisions() { return decisions_; }

  /// The replica-to-replica control channel (snapshot catch-up requests and
  /// responses), or nullptr when the engine has no message path for it.
  /// Hub-routed engines expose the hub's reserved control frame; memory-
  /// routed Byzantine engines (Cheap Quorum, Fast & Robust) return nullptr —
  /// replica recovery is not supported on those backends.
  virtual Transport* control_transport() { return nullptr; }

  /// One past the highest slot this replica knows of.
  Slot slot_horizon() const { return horizon_; }
  sim::VersionSignal& horizon_signal() { return horizon_signal_; }

 protected:
  void note_slot(Slot s) {
    if (s + 1 > horizon_) {
      horizon_ = s + 1;
      horizon_signal_.bump();
    }
  }

  void push_decision(Slot s, Decision d) {
    decisions_.send(SlotDecision{s, std::move(d)});
  }

  /// Per-slot decision watcher for gate-exposing instances: pushes into
  /// decisions() exactly once, whether the decision came from our own
  /// propose or from a learned DECIDE.
  template <typename Inst>
  sim::Task<void> watch_decision(Slot s, Inst* inst) {
    co_await inst->decision_gate().wait();
    push_decision(
        s, Decision{inst->decision(), inst->decided_fast(), inst->decided_at()});
  }

  /// Follower-side slot discovery: open every slot the hub hears about.
  sim::Task<void> discover_from_hub(SlotTransportHub* hub) {
    while (true) {
      const std::uint64_t seen = hub->heard().version();
      while (slot_horizon() < hub->horizon()) open_slot(slot_horizon());
      sim::Select sel(*exec_);
      sel.on(hub->heard(), seen);
      (void)co_await sel;
    }
  }

  sim::Executor* exec_;
  sim::Channel<SlotDecision> decisions_;
  sim::VersionSignal horizon_signal_;
  Slot horizon_ = 0;
};

// ---------------------------------------------------------------------------
// Hub-routed engines (Paxos / Fast Paxos / Disk Paxos / PMP / Aligned) —
// per-slot protocol instances over the slot hub, differing only in how an
// instance is made. Every instance type exposes start(), propose(Bytes),
// decision()/decided_fast()/decided_at() and decision_gate().
// ---------------------------------------------------------------------------

template <typename Inst>
class HubEngine : public ConsensusEngine {
 public:
  /// Builds the slot's protocol instance over its sub-transport.
  using MakeInstanceFn =
      std::function<std::unique_ptr<Inst>(Slot, Transport&)>;

  HubEngine(sim::Executor& exec, Transport& base, MakeInstanceFn make)
      : ConsensusEngine(exec), hub_(exec, base), make_(std::move(make)) {}

  ProcessId self() const override { return hub_.self(); }
  std::size_t process_count() const override { return hub_.process_count(); }

  void start() override {
    hub_.start();
    exec_->spawn(discover_from_hub(&hub_));
  }

  void open_slot(Slot slot) override {
    if (slots_.contains(slot)) return;
    std::unique_ptr<Inst> inst = make_(slot, hub_.slot(slot));
    inst->start();
    exec_->spawn(watch_decision(slot, inst.get()));
    slots_.emplace(slot, std::move(inst));
    note_slot(slot);
  }

  sim::Task<Decision> propose(Slot slot, Bytes value) override {
    open_slot(slot);
    Inst* inst = slots_.at(slot).get();
    const Bytes decided = co_await inst->propose(std::move(value));
    co_return Decision{decided, inst->decided_fast(), inst->decided_at()};
  }

  Transport* control_transport() override { return &hub_.control(); }

 private:
  SlotTransportHub hub_;
  MakeInstanceFn make_;
  std::map<Slot, std::unique_ptr<Inst>> slots_;
};

/// Paxos per slot over the slot hub. With config.skip_phase1_for_p1 this is
/// the Fast Paxos engine (2-delay steady state under a stable leader).
class PaxosEngine : public HubEngine<Paxos> {
 public:
  PaxosEngine(sim::Executor& exec, Transport& base, Omega& omega,
              PaxosConfig config)
      : HubEngine(exec, base,
                  [&exec, &omega, config](Slot, Transport& t) {
                    return std::make_unique<Paxos>(exec, t, omega, config);
                  }) {}
};

class DiskPaxosEngine : public HubEngine<DiskPaxos> {
 public:
  /// `regions->get(s)` must create make_disk_region(m, n, slot_ns(s, ns))
  /// on every backing memory.
  DiskPaxosEngine(sim::Executor& exec, std::vector<mem::MemoryIface*> memories,
                  Transport& base, Omega& omega,
                  std::shared_ptr<SlotRegions<RegionId>> regions,
                  DiskPaxosConfig config, std::string ns = "dp")
      : HubEngine(exec, base,
                  [&exec, &omega, memories = std::move(memories),
                   regions = std::move(regions), config = std::move(config),
                   ns = std::move(ns)](Slot s, Transport& t) {
                    DiskPaxosConfig c = config;
                    c.prefix = slot_ns(s, ns);
                    return std::make_unique<DiskPaxos>(
                        exec, memories, regions->get(s), t, omega,
                        std::move(c));
                  }) {}
};

class PmpEngine : public HubEngine<ProtectedMemoryPaxos> {
 public:
  /// `regions->get(s)` must create make_pmp_region(m, n, first_leader,
  /// slot_ns(s, ns)) on every backing memory.
  PmpEngine(sim::Executor& exec, std::vector<mem::MemoryIface*> memories,
            Transport& base, Omega& omega,
            std::shared_ptr<SlotRegions<RegionId>> regions, PmpConfig config,
            std::string ns = "pmp")
      : HubEngine(exec, base,
                  [&exec, &omega, memories = std::move(memories),
                   regions = std::move(regions), config = std::move(config),
                   ns = std::move(ns)](Slot s, Transport& t) {
                    PmpConfig c = config;
                    c.prefix = slot_ns(s, ns);
                    return std::make_unique<ProtectedMemoryPaxos>(
                        exec, memories, regions->get(s), t, omega,
                        std::move(c));
                  }) {}
};

class AlignedEngine : public HubEngine<AlignedPaxos> {
 public:
  /// `regions->get(s)` must create make_pmp_region(m, n, first_leader,
  /// slot_ns(s, ns)) on every backing memory (Aligned reuses the PMP slot
  /// format).
  AlignedEngine(sim::Executor& exec, std::vector<mem::MemoryIface*> memories,
                Transport& base, Omega& omega,
                std::shared_ptr<SlotRegions<RegionId>> regions,
                AlignedPaxosConfig config, std::string ns = "pmp")
      : HubEngine(exec, base,
                  [&exec, &omega, memories = std::move(memories),
                   regions = std::move(regions), config = std::move(config),
                   ns = std::move(ns)](Slot s, Transport& t) {
                    AlignedPaxosConfig c = config;
                    c.prefix = slot_ns(s, ns);
                    return std::make_unique<AlignedPaxos>(
                        exec, memories, regions->get(s), t, omega,
                        std::move(c));
                  }) {}
};

// ---------------------------------------------------------------------------
// Byzantine-model engines (Cheap Quorum / Fast & Robust) — all traffic runs
// through the memories; every correct replica must propose each slot.
// ---------------------------------------------------------------------------

class CheapQuorumEngine : public ConsensusEngine {
 public:
  /// `regions->get(s)` must create make_cq_regions(m, n, leader,
  /// slot_ns(s, ns)) on every backing memory.
  CheapQuorumEngine(sim::Executor& exec,
                    std::vector<mem::MemoryIface*> memories,
                    std::shared_ptr<SlotRegions<CheapQuorumRegions>> regions,
                    const crypto::KeyStore& keystore, crypto::Signer signer,
                    CheapQuorumConfig config, std::string ns = "cq");

  ProcessId self() const override;
  std::size_t process_count() const override { return config_.n; }
  void start() override {}
  void open_slot(Slot slot) override;
  /// Throws ProposeAborted when Cheap Quorum aborts (§4.2): the fast half
  /// alone is not a consensus.
  sim::Task<Decision> propose(Slot slot, Bytes value) override;

 private:
  std::vector<mem::MemoryIface*> memories_;
  std::shared_ptr<SlotRegions<CheapQuorumRegions>> regions_;
  const crypto::KeyStore* keystore_;
  crypto::Signer signer_;
  CheapQuorumConfig config_;
  std::string ns_;
  std::map<Slot, std::unique_ptr<CheapQuorum>> slots_;
};

/// Per-slot regions of a Fast & Robust slot: Cheap Quorum's plus NEB's.
struct FastRobustSlotRegions {
  CheapQuorumRegions cq;
  std::map<ProcessId, RegionId> neb;
};

class FastRobustEngine : public ConsensusEngine {
 public:
  /// `regions->get(s)` must create make_cq_regions(m, n, leader,
  /// slot_ns(s, cq_ns)) then make_neb_regions(m, n, slot_ns(s, neb_ns)) on
  /// every backing memory, in that order.
  FastRobustEngine(sim::Executor& exec,
                   std::vector<mem::MemoryIface*> memories,
                   std::shared_ptr<SlotRegions<FastRobustSlotRegions>> regions,
                   const crypto::KeyStore& keystore, crypto::Signer signer,
                   Omega& omega, FastRobustConfig config,
                   std::string cq_ns = "cq", std::string neb_ns = "neb");

  ProcessId self() const override;
  std::size_t process_count() const override { return config_.n; }
  void start() override {}
  void open_slot(Slot slot) override;
  sim::Task<Decision> propose(Slot slot, Bytes value) override;

  /// Aggregate t-send decode accounting across this replica's slot stacks —
  /// the per-delivery suffix-only-decode counters bench_log_pipeline and the
  /// harness RunReport surface.
  trusted::TsendStats tsend_stats() const;

 private:
  struct SlotStack {
    std::unique_ptr<NebSlots> neb_slots;
    std::unique_ptr<FastRobustProcess> process;
  };

  std::vector<mem::MemoryIface*> memories_;
  std::shared_ptr<SlotRegions<FastRobustSlotRegions>> regions_;
  const crypto::KeyStore* keystore_;
  crypto::Signer signer_;
  Omega* omega_;
  FastRobustConfig config_;
  std::string cq_ns_;
  std::string neb_ns_;
  std::map<Slot, SlotStack> slots_;
};

}  // namespace mnm::core
