// Fast message-passing baseline ("Fast Paxos" in the paper's §1 framing).
//
// The paper contrasts Protected Memory Paxos with Fast Paxos [38]: a pure
// message-passing algorithm that decides in two delays in common executions
// but needs n ≥ 2fP+1. The property the comparison uses — 2 delays, majority
// resilience, messages only — is exactly classic Paxos with the leader's
// phase-1 skip (stable-leader steady state / ballot-0 pre-promise), so that
// is what we ship as the baseline rather than Lamport's full client-driven
// fast-round protocol with its larger quorums. (Full Fast Paxos's
// any-proposer fast rounds need n > 3f fast quorums; the paper's comparison
// is about the leader-driven common case.)
//
// FastPaxos is Paxos with skip_phase1_for_p1 = true.

#pragma once

#include "src/core/paxos.hpp"

namespace mnm::core {

class FastPaxos : public Paxos {
 public:
  FastPaxos(sim::Executor& exec, Transport& transport, Omega& omega,
            PaxosConfig config)
      : Paxos(exec, transport, omega, patch(config)) {}

 private:
  static PaxosConfig patch(PaxosConfig c) {
    c.skip_phase1_for_p1 = true;
    return c;
  }
};

}  // namespace mnm::core
