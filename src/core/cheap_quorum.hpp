// Cheap Quorum (paper §4.2, Algorithms 4–5, Lemmas 4.5/4.6, B.1–B.6).
//
// The fast half of Fast & Robust: in synchronous failure-free executions the
// leader p1 decides after a single replicated write — 2 delays — using one
// signature. The algorithm is not a full consensus: under failures or
// asynchrony processes *abort*, emitting an abort value (and possibly a
// unanimity proof) that seeds Preferential Paxos so the composition stays
// safe (Lemma 4.8).
//
// Memory layout (regions created identically on every memory by
// make_cq_regions):
//   Region[ℓ]  prefix "cq/leader/"  — RW {p1}; legalChange permits exactly
//              one change: revoking all write access (panic, Alg. 5 line 3).
//   Region[p]  prefix "cq/p/<p>/"   — SWMR(p), static; holds Value[p],
//              Panic[p], Proof[p].
//
// Value encodings:
//   leader blob  = (v, sig_p1(v))                 — what p1 writes to Value[ℓ]
//   copy blob    = (leader blob, sig_p(leader blob)) — follower p's Value[p]
//   unanimity proof = n copy blobs of the same leader blob from distinct
//              signers + the assembler's signature (Alg. 4 line 18)
//
// Followers decide only after seeing all n copy blobs *and* n valid proofs —
// the unanimity that lets an abort-side process trust a proof it finds.
//
// The leader also runs the follower's copy/proof steps ("p1 serves both as a
// leader and a follower") so that Value[p1]/Proof[p1] fill in, but never
// decides twice.

#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "src/common.hpp"
#include "src/crypto/signature.hpp"
#include "src/mem/memory.hpp"
#include "src/sim/executor.hpp"
#include "src/sim/task.hpp"
#include "src/swmr/swmr_register.hpp"

namespace mnm::core {

struct CheapQuorumRegions {
  RegionId leader = 0;
  std::map<ProcessId, RegionId> per_process;
};

/// Create Cheap Quorum's regions on one memory (identical order on every
/// memory keeps region ids aligned). Works for mem::Memory / VerbsMemory.
/// Multi-slot engines namespace the prefix per slot ("s<slot>/cq").
template <typename MemoryT>
CheapQuorumRegions make_cq_regions(MemoryT& memory, std::size_t n,
                                   ProcessId leader = kLeaderP1,
                                   const std::string& prefix = "cq") {
  CheapQuorumRegions out;
  const auto all = all_processes(n);
  // legalChange: only total write revocation is permitted (§4.2).
  const auto revoke_only = [](ProcessId, RegionId, const mem::Permission&,
                              const mem::Permission& proposed) {
    return proposed.write.empty() && proposed.read_write.empty();
  };
  out.leader = memory.create_region({prefix + "/leader/"},
                                    mem::Permission::swmr(leader, all), revoke_only);
  for (ProcessId p : all) {
    out.per_process[p] =
        memory.create_region({prefix + "/p/" + std::to_string(p) + "/"},
                             mem::Permission::swmr(p, all));
  }
  return out;
}

// --- Value encodings (exposed for tests and Byzantine strategies). ---

Bytes cq_value_signing_bytes(const Bytes& v);
Bytes encode_leader_blob(const Bytes& v, const crypto::Signature& sig_p1);
struct LeaderBlob {
  Bytes value;
  crypto::Signature sig;
};
std::optional<LeaderBlob> decode_leader_blob(const Bytes& raw);

Bytes cq_copy_signing_bytes(const Bytes& leader_blob);
Bytes encode_copy_blob(const Bytes& leader_blob, const crypto::Signature& sig);
struct CopyBlob {
  Bytes leader_blob;
  crypto::Signature sig;
};
std::optional<CopyBlob> decode_copy_blob(const Bytes& raw);

Bytes encode_unanimity_proof(const std::vector<Bytes>& copy_blobs,
                             const crypto::Signature& assembler_sig);

/// Definition 3 / Lemma 4.6's "correct unanimity proof": n copy blobs of the
/// same leader blob, signed by n distinct processes, leader blob signed by
/// p1. On success returns the inner value and its p1 signature.
bool verify_unanimity_proof(const crypto::KeyStore& ks, std::size_t n,
                            ProcessId leader, const Bytes& proof,
                            LeaderBlob* out = nullptr);

struct CheapQuorumConfig {
  std::size_t n = 3;
  ProcessId leader = kLeaderP1;
  /// Register-name namespace; must match the make_cq_regions prefix.
  std::string prefix = "cq";
  /// Follower patience before panicking (virtual time units). "An upper
  /// bound on the communication, processing and computation delays in the
  /// common case" (§4.2 footnote 3).
  sim::Time timeout = 120;
  sim::Time poll = 2;
};

struct CqOutcome {
  bool decided = false;
  bool is_leader_decision = false;
  Bytes value;       // decided value, or the abort value
  Bytes proof;       // unanimity proof bytes (abort proof / decision proof)
  Bytes leader_sig;  // encoded p1 Signature over `value`, empty if unknown
  sim::Time at = 0;  // when the outcome was fixed
};

class CheapQuorum {
 public:
  CheapQuorum(sim::Executor& exec, std::vector<mem::MemoryIface*> memories,
              CheapQuorumRegions regions, const crypto::KeyStore& keystore,
              crypto::Signer signer, CheapQuorumConfig config);

  /// Run Cheap Quorum for this process. Resolves with a decision or an
  /// abort outcome (never hangs: panic mode always terminates).
  sim::Task<CqOutcome> propose(Bytes v);

  std::uint64_t signatures_on_path() const { return signatures_on_path_; }

 private:
  swmr::ReplicatedRegister& value_reg(ProcessId p);
  swmr::ReplicatedRegister& panic_reg(ProcessId p);
  swmr::ReplicatedRegister& proof_reg(ProcessId p);
  swmr::ReplicatedRegister& leader_value_reg();

  sim::Task<CqOutcome> follower_body(Bytes input, bool decide_allowed);
  sim::Task<CqOutcome> panic_mode(Bytes input);
  /// Read all Panic[q]; true if any is set.
  sim::Task<bool> anyone_panicked();

  sim::Executor* exec_;
  std::vector<mem::MemoryIface*> memories_;
  CheapQuorumRegions regions_;
  const crypto::KeyStore* keystore_;
  crypto::Signer signer_;
  CheapQuorumConfig config_;
  std::map<std::string, std::unique_ptr<swmr::ReplicatedRegister>> regs_;
  std::uint64_t signatures_on_path_ = 0;
};

}  // namespace mnm::core
