// Trusted message passing: T-send / T-receive (paper §4.1, Algorithm 3,
// after Clement et al. [20]).
//
// The transformation that powers Robust Backup needs message passing in
// which a Byzantine process can behave, at worst, like a crashed one. It is
// built from two ingredients the M&M model supplies:
//
//  * non-equivocation — every T-send is carried by non-equivocating
//    broadcast, so all correct processes that deliver a sender's k-th
//    message deliver the same bytes;
//  * signatures + full histories — each message carries the sender's entire
//    hash-chained, signed history (every message it ever sent or received),
//    and receivers check that the history is internally consistent and that
//    the current message is a protocol-legal continuation.
//
// History entries are chained: chain_i = SHA256(chain_{i-1} || entry_i) and
// the sender signs each link, so a Byzantine process cannot revise history
// retroactively; it can only extend it. Combined with non-equivocation
// (everyone sees the same k-th broadcast), a faulty process either produces
// protocol-consistent messages — indistinguishable from a correct process —
// or its messages are rejected by every correct receiver, i.e. it has
// crashed as far as the protocol is concerned.
//
// Protocol legality is checked by a pluggable `HistoryValidator`; the
// structural checks (chain, signatures, sequence numbers, echo of the
// current message) are always enforced. `paxos_validator()` (see
// paxos_validator.hpp) replays Paxos semantics and is what Robust
// Backup(Paxos) installs.

#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "src/common.hpp"
#include "src/core/nonequiv_broadcast.hpp"
#include "src/core/transport.hpp"
#include "src/crypto/sha256.hpp"
#include "src/crypto/signature.hpp"
#include "src/sim/channel.hpp"
#include "src/sim/executor.hpp"
#include "src/sim/task.hpp"
#include "src/util/flat_map.hpp"

namespace mnm::core::trusted {

/// Destination marker for T-send broadcasts addressed to everyone.
inline constexpr ProcessId kToAll = 0;

struct HistoryEntry {
  enum class Kind : std::uint8_t { kSent = 1, kReceived = 2 };

  Kind kind = Kind::kSent;
  std::uint64_t k = 0;     // sender seq (kSent) / origin's seq (kReceived)
  ProcessId peer = 0;      // destination (kSent) / origin (kReceived)
  Bytes payload;           // protocol message bytes
  Bytes chain;             // SHA256(prev_chain || fields)
  crypto::Signature sig;   // history owner's signature over `chain`

  Bytes encode() const;
  /// Append this entry's encoding to `w` (hot path: encode_history writes
  /// every entry into one pre-sized buffer).
  void encode_into(util::Writer& w) const;
  static std::optional<HistoryEntry> decode(util::Reader& r);
};

using History = std::vector<HistoryEntry>;

Bytes encode_history(const History& h);
std::optional<History> decode_history(const Bytes& raw);

/// Chain hash of an entry given its predecessor's chain value.
Bytes chain_entry(const Bytes& prev_chain, HistoryEntry::Kind kind,
                  std::uint64_t k, ProcessId peer, util::ByteView payload);

/// Structural verification of `owner`'s history: chain hashes link, every
/// link is signed by owner, sent-seqs are 1,2,3,… Returns false on any
/// inconsistency.
bool verify_history_structure(const crypto::KeyStore& ks, ProcessId owner,
                              const History& h);

/// Verify `count` suffix entries given the already-verified prefix's last
/// chain value and next expected sent-seq. On success, `prev_chain` and
/// `expected_sent` are advanced to the new suffix state. This is the
/// incremental form deliver-side caching uses: a history can only be
/// extended, so once a byte-identical prefix has been verified it never
/// needs re-verifying — or even re-decoding (see decode_tsend).
bool verify_history_suffix(const crypto::KeyStore& ks, ProcessId owner,
                           const HistoryEntry* entries, std::size_t count,
                           Bytes& prev_chain, std::uint64_t& expected_sent);

/// One protocol-level audit request (Algorithm 3 line 10), in the resumable
/// form: the transport hands the validator only the *suffix* of the owner's
/// history past the receiver's verified-prefix cache, never the whole thing.
///
/// Contract (state ownership / rollback — kept in lockstep with the
/// transport's prefix cache):
///  * `suffix` holds entries [prefix_entries, prefix_entries + suffix_len)
///    of the owner's history, already structurally verified (chain +
///    signatures + sent-seqs) by the transport. `prefix_entries` == 0 means
///    the transport (re)built its cache and the suffix is the whole history.
///    With history checkpointing, `prefix_entries` counts *global* entries
///    (checkpointed-away ones included), so a stateful validator's
///    committed position still lines up; a validator with no committed
///    state cannot audit a checkpoint-anchored suffix (the dropped entries
///    are gone from the wire) — seeded resume is for validators that carry
///    their own recovered state, or for accept_all_validator.
///  * The transport guarantees entries [0, prefix_entries) are byte-identical
///    to those of the last call for this owner that returned true — prefix
///    identity is anchored in receiver-stored verified bytes, so a stateful
///    validator may resume its replay from its committed per-owner state.
///  * Both sides commit together: a validator persists replay state covering
///    exactly prefix_entries + suffix_len entries iff it returns true; on
///    false it must leave state untouched (the transport rejects the message
///    and keeps its cache too — rollback in lockstep). Hence on every call
///    either prefix_entries == the validator's committed entry count, or
///    prefix_entries == 0 (rebuild); anything else is a caller bug a
///    validator should answer with false.
struct ValidatorCall {
  ProcessId owner = 0;
  const HistoryEntry* suffix = nullptr;
  std::size_t suffix_len = 0;
  std::size_t prefix_entries = 0;
  std::uint64_t k = 0;  // NEB sequence number of the message being sent
  ProcessId dst = 0;
  const Bytes* payload = nullptr;
};

/// Protocol-level check: is (k, dst, payload) a legal continuation of the
/// owner's (prefix + suffix) history? The default accepts everything.
using HistoryValidator = std::function<bool(const ValidatorCall&)>;

inline HistoryValidator accept_all_validator() {
  return [](const ValidatorCall&) { return true; };
}

/// Per-transport cost counters for the Byzantine wire path. `entries_decoded`
/// vs `entries_skipped` is the suffix-only-decode proof: decoded entries per
/// delivery stay O(new entries) while skipped entries grow with history.
struct TsendStats {
  std::uint64_t deliveries = 0;       // NEB deliveries audited
  std::uint64_t accepted = 0;         // deliveries that passed every check
  std::uint64_t entries_decoded = 0;  // history entries materialized
  std::uint64_t entries_skipped = 0;  // verified-prefix entries hopped over
  /// Residual prefix bytes memcmp'd (the part NEB's shared-prefix identity
  /// did not already cover transitively); 0 in the honest steady state.
  std::uint64_t prefix_bytes_compared = 0;

  TsendStats& operator+=(const TsendStats& o) {
    deliveries += o.deliveries;
    accepted += o.accepted;
    entries_decoded += o.entries_decoded;
    entries_skipped += o.entries_skipped;
    prefix_bytes_compared += o.prefix_bytes_compared;
    return *this;
  }
};

struct TrustedConfig {
  std::size_t n = 3;
  /// History checkpointing: after a T-send whose wire carried at least this
  /// many entries, the sender drops exactly that published prefix, keeping
  /// only its chain tip (base_chain) and the count of dropped entries
  /// (history_base). Only published entries are droppable — a receiver's
  /// verified position can reach only entries it has seen on some wire.
  /// Subsequent wires lead with a checkpoint header (marker, base, chain
  /// tip) instead of the dropped entry frames, so sender memory and wire
  /// size are bounded by the interval instead of the run length. 0 = off —
  /// wires stay byte-identical to the pre-checkpoint format.
  ///
  /// Receivers accept a checkpointed wire only when it anchors in state
  /// they already hold: their verified entry count must equal the wire's
  /// base and their verified chain tip must equal the header's chain — the
  /// header is checked against receiver-held trust, never taken on faith. A
  /// rejoining receiver re-enters that state via seed_peer_checkpoint()
  /// (from its own recovered state or a peer's exported checkpoint) and
  /// resumes verification at the checkpoint instead of entry 0.
  std::size_t checkpoint_interval = 0;
};

/// A receiver-side verification position in one peer's history: `entries`
/// history entries verified, ending at chain tip `chain`, with
/// `expected_sent` the peer's next sent-seq. Exported by peer_checkpoint()
/// and installed by seed_peer_checkpoint() on a rejoining transport.
struct PeerCheckpoint {
  std::uint64_t entries = 0;
  Bytes chain;
  std::uint64_t expected_sent = 1;
};

/// Transport implementing T-send / T-receive. All sends are broadcast via
/// the NEB instance (receivers filter on the destination field), matching
/// Algorithm 3 where every message is a broadcast so that everyone can audit
/// everyone's history.
class TrustedTransport : public Transport {
 public:
  TrustedTransport(sim::Executor& exec, NonEquivBroadcast& neb,
                   const crypto::KeyStore& keystore, crypto::Signer signer,
                   TrustedConfig config,
                   HistoryValidator validator = accept_all_validator());

  /// Spawn the delivery/verification loop.
  void start();

  ProcessId self() const override { return signer_.id(); }
  std::size_t process_count() const override { return config_.n; }

  /// T-send(dst, m): append a signed `sent` link, broadcast (dst, m, H).
  void send(ProcessId dst, util::Buffer payload) override;

  /// T-send addressed to everyone as a single broadcast (dst = kToAll);
  /// cheaper than n point-to-point T-sends and semantically identical
  /// because every T-send is a broadcast anyway. `include_self` is ignored:
  /// broadcasts always self-deliver.
  void send_all(util::Buffer payload, bool include_self = true) override {
    (void)include_self;
    send(kToAll, std::move(payload));
  }

  /// T-received messages addressed to this process (or to kToAll).
  sim::Channel<TMsg>& incoming() override { return incoming_; }

  /// Messages from `p` rejected by verification (metrics / tests).
  std::uint64_t rejected() const { return rejected_; }

  /// Byzantine-wire-path cost counters (suffix-only decode accounting).
  const TsendStats& tsend_stats() const { return stats_; }

  /// Retained (post-checkpoint) history suffix; entry i here is global
  /// entry history_base() + i.
  const History& history() const { return history_; }
  /// Entries dropped by sender-side checkpointing (0 with the feature off).
  std::uint64_t history_base() const { return history_base_; }
  /// Sender-side checkpoints taken.
  std::uint64_t checkpoints() const { return checkpoints_; }
  /// Checkpointed wires rejected because they did not anchor in held state.
  std::uint64_t checkpoint_rejected() const { return checkpoint_rejected_; }
  /// Deliveries resumed at a checkpoint header (anchored, not byte-skip).
  std::uint64_t anchored_resumes() const { return anchored_resumes_; }

  /// Export this receiver's verified position in `owner`'s history, for
  /// seeding a rejoining transport. Zero-entry checkpoint when `owner` was
  /// never heard from.
  PeerCheckpoint peer_checkpoint(ProcessId owner) const;
  /// Install a verified position in `owner`'s history so verification
  /// resumes there instead of entry 0. The seed must come from trusted
  /// receiver state (own recovered cache or a correct peer's export) — it
  /// IS the trust anchor checkpointed wires are checked against. Replaces
  /// any existing cache for `owner`.
  void seed_peer_checkpoint(ProcessId owner, const PeerCheckpoint& cp);

 private:
  sim::Task<void> deliver_loop();
  void append_entry(HistoryEntry::Kind kind, std::uint64_t k, ProcessId peer,
                    util::ByteView payload);
  void maybe_checkpoint(std::size_t published, std::size_t published_bytes);

  sim::Executor* exec_;
  NonEquivBroadcast* neb_;
  const crypto::KeyStore* keystore_;
  crypto::Signer signer_;
  TrustedConfig config_;
  HistoryValidator validator_;

  std::uint64_t next_k_ = 1;
  History history_;
  /// Concatenated length-prefixed entry encodings of history_ (the body of
  /// encode_history without its leading count), appended on append_entry.
  Bytes encoded_body_;
  /// Sender-side checkpoint state: entries dropped before history_[0] and
  /// the chain tip of the last dropped entry (the seed chain_entry() and
  /// the wire header continue from).
  std::uint64_t history_base_ = 0;
  Bytes base_chain_;
  std::uint64_t checkpoints_ = 0;

  /// Verified prefix of one peer's attached history. Histories are
  /// append-only, so if a new message's encoded history starts with the
  /// bytes we already verified, only the suffix needs decoding and
  /// chain/signature checks — this turns O(k) entry materializations and
  /// signature verifications per receive into O(new entries). The cache-hit
  /// check must compare *our stored verified bytes* (not any field of the
  /// incoming message): chain values inside an unverified prefix are
  /// attacker-supplied, so shortcutting the compare through them would let
  /// a fabricated prefix ride a copied chain tip.
  struct PeerCache {
    /// Global entry index of the first entry covered by `body` — the
    /// sender's checkpoint base when the cached wire prefix was accepted, a
    /// seed's entry count, or 0. base + entries is the receiver's total
    /// verified position in this peer's history.
    std::uint64_t base = 0;
    std::size_t entries = 0;  // entries in `body` (past `base`)
    /// Verified leading wire bytes (checkpoint header, when the sender has
    /// one, plus entry frames), byte-compared against the next wire.
    Bytes body;
    Bytes last_chain;
    std::uint64_t expected_sent = 1;
    /// Leading bytes of this peer's *latest NEB-delivered wire* known equal
    /// to `body`, established transitively: at accept time the new body is
    /// by construction a prefix of the delivered wire, and each later
    /// delivery shares a NEB-verified `shared_prefix` with its predecessor —
    /// min-composing the two facts keeps the identity receiver-anchored
    /// with zero extra compares. Only bytes past this need memcmp.
    std::size_t neb_known = 0;
  };
  util::FlatMap<ProcessId, PeerCache> peer_cache_;

  sim::Channel<TMsg> incoming_;
  std::uint64_t rejected_ = 0;
  std::uint64_t checkpoint_rejected_ = 0;
  std::uint64_t anchored_resumes_ = 0;
  TsendStats stats_;
  bool started_ = false;
};

/// Wire format of a T-send broadcast: the history-before-send *first* (its
/// length-prefixed entries terminated by a zero length), then (dst, payload,
/// k, sender signature). History bodies are append-only, so leading with
/// them makes consecutive broadcasts from one sender share a long byte
/// prefix — which is exactly what NEB's digest-over-suffix verification
/// (neb_signing_bytes) needs to hash only the new bytes per delivery.
///
/// The signature covers (k, dst, H(payload), history-digest) — see
/// tsend_signing_bytes — so a *receipt* citing this message can be verified
/// later from just (k, dst, payload, history-digest, sig), without
/// re-embedding the sender's history. This is what keeps Clement-style
/// attached histories linear instead of recursively nested. The history
/// digest is the chain value of the history's last entry (empty for an empty
/// history): the hash chain already commits to every prior entry, and the
/// receiver holds the chain tip as a byproduct of incremental verification,
/// so binding the history costs O(1) instead of re-hashing its encoding.
/// When `base > 0` the wire leads with a checkpoint header — the marker
/// word kCheckpointMarker (which can never open a real entry frame: entry
/// frames are length-prefixed and a 4 GiB entry is unencodable), the count
/// of dropped entries, and their chain tip — followed by the retained entry
/// frames. `h` then holds only entries [base, …).
Bytes encode_tsend(ProcessId dst, util::ByteView payload, const History& h,
                   std::uint64_t k, const crypto::Signature& sig,
                   std::uint64_t base = 0, const Bytes& base_chain = {});

/// Leading u32 of a checkpointed wire's history section.
inline constexpr std::uint32_t kCheckpointMarker = 0xFFFFFFFFu;

struct TSendContent {
  ProcessId dst = 0;
  Bytes payload;
  /// Checkpoint header fields: entries the sender dropped before the wire's
  /// first entry frame and their claimed chain tip. base == 0 ⇔ no header.
  /// The chain is *sender-claimed* — a receiver must check it against a
  /// position it already holds (PeerCache / seed) before resuming from it.
  std::uint64_t base = 0;
  Bytes base_chain;
  /// History entries decoded past the caller's verified prefix — the whole
  /// attached history when no prefix was supplied or it did not match.
  History suffix;
  /// Whole entries hopped over: the caller-supplied verified prefix, byte-
  /// confirmed against the wire (0 when the prefix did not match, in which
  /// case `suffix` starts at entry 0).
  std::size_t prefix_entries = 0;
  /// Prefix bytes this decode actually memcmp'd (cost visibility).
  std::size_t prefix_bytes_compared = 0;
  /// View of the raw encoded history body inside the decoded wire bytes
  /// (valid while they live), including any skipped prefix — the deliver
  /// loop extends its verified-bytes cache from it without re-encoding.
  util::ByteView history_body;
  std::uint64_t k = 0;
  crypto::Signature sig;
};

/// Decode a T-send wire, skipping `verified_prefix` if the wire starts with
/// exactly those bytes. `verified_prefix` MUST be receiver-stored verified
/// bytes (`prefix_entries` whole entry frames from previously accepted
/// messages of the same sender) — never anything read out of an incoming
/// message. The first `known_shared` bytes of the wire may be skipped in the
/// compare when the caller has already established (e.g. through NEB's
/// delivered-prefix identity chain) that they equal the stored prefix; the
/// residual compare is one memcmp bounded by the stored prefix. On a match,
/// only the suffix entries are materialized — decode cost is O(new bytes).
/// On any mismatch the whole history is decoded from entry 0.
std::optional<TSendContent> decode_tsend(util::ByteView raw,
                                         util::ByteView verified_prefix = {},
                                         std::size_t prefix_entries = 0,
                                         std::size_t known_shared = 0);

/// Bytes a sender signs for its k-th T-send.
Bytes tsend_signing_bytes(std::uint64_t k, ProcessId dst, util::ByteView payload,
                          const Bytes& history_digest);

/// Payload stored in a kReceived history entry: standalone-verifiable
/// evidence that `origin` really T-sent (k, dst, payload).
struct Receipt {
  ProcessId dst = 0;
  Bytes payload;
  /// Chain value of the last entry of the origin's attached history (empty
  /// for an empty history) — the hash chain commits to the whole history.
  Bytes history_digest;
  crypto::Signature origin_sig;

  Bytes encode() const;
  static std::optional<Receipt> decode(util::ByteView raw);
};

/// Verify a receipt for origin's k-th send.
bool verify_receipt(const crypto::KeyStore& ks, ProcessId origin,
                    std::uint64_t k, const Receipt& r);

}  // namespace mnm::core::trusted
