// Trusted message passing: T-send / T-receive (paper §4.1, Algorithm 3,
// after Clement et al. [20]).
//
// The transformation that powers Robust Backup needs message passing in
// which a Byzantine process can behave, at worst, like a crashed one. It is
// built from two ingredients the M&M model supplies:
//
//  * non-equivocation — every T-send is carried by non-equivocating
//    broadcast, so all correct processes that deliver a sender's k-th
//    message deliver the same bytes;
//  * signatures + full histories — each message carries the sender's entire
//    hash-chained, signed history (every message it ever sent or received),
//    and receivers check that the history is internally consistent and that
//    the current message is a protocol-legal continuation.
//
// History entries are chained: chain_i = SHA256(chain_{i-1} || entry_i) and
// the sender signs each link, so a Byzantine process cannot revise history
// retroactively; it can only extend it. Combined with non-equivocation
// (everyone sees the same k-th broadcast), a faulty process either produces
// protocol-consistent messages — indistinguishable from a correct process —
// or its messages are rejected by every correct receiver, i.e. it has
// crashed as far as the protocol is concerned.
//
// Protocol legality is checked by a pluggable `HistoryValidator`; the
// structural checks (chain, signatures, sequence numbers, echo of the
// current message) are always enforced. `paxos_validator()` (see
// paxos_validator.hpp) replays Paxos semantics and is what Robust
// Backup(Paxos) installs.

#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "src/common.hpp"
#include "src/core/nonequiv_broadcast.hpp"
#include "src/core/transport.hpp"
#include "src/crypto/sha256.hpp"
#include "src/crypto/signature.hpp"
#include "src/sim/channel.hpp"
#include "src/sim/executor.hpp"
#include "src/sim/task.hpp"
#include "src/util/flat_map.hpp"

namespace mnm::core::trusted {

/// Destination marker for T-send broadcasts addressed to everyone.
inline constexpr ProcessId kToAll = 0;

struct HistoryEntry {
  enum class Kind : std::uint8_t { kSent = 1, kReceived = 2 };

  Kind kind = Kind::kSent;
  std::uint64_t k = 0;     // sender seq (kSent) / origin's seq (kReceived)
  ProcessId peer = 0;      // destination (kSent) / origin (kReceived)
  Bytes payload;           // protocol message bytes
  Bytes chain;             // SHA256(prev_chain || fields)
  crypto::Signature sig;   // history owner's signature over `chain`

  Bytes encode() const;
  /// Append this entry's encoding to `w` (hot path: encode_history writes
  /// every entry into one pre-sized buffer).
  void encode_into(util::Writer& w) const;
  static std::optional<HistoryEntry> decode(util::Reader& r);
};

using History = std::vector<HistoryEntry>;

Bytes encode_history(const History& h);
std::optional<History> decode_history(const Bytes& raw);

/// Chain hash of an entry given its predecessor's chain value.
Bytes chain_entry(const Bytes& prev_chain, HistoryEntry::Kind kind,
                  std::uint64_t k, ProcessId peer, util::ByteView payload);

/// Structural verification of `owner`'s history: chain hashes link, every
/// link is signed by owner, sent-seqs are 1,2,3,… Returns false on any
/// inconsistency.
bool verify_history_structure(const crypto::KeyStore& ks, ProcessId owner,
                              const History& h);

/// Verify only entries [start, h.size()) given the already-verified prefix's
/// last chain value and next expected sent-seq. On success, `prev_chain` and
/// `expected_sent` are advanced to the new suffix state. This is the
/// incremental form deliver-side caching uses: a history can only be
/// extended, so once a byte-identical prefix has been verified it never
/// needs re-verifying.
bool verify_history_suffix(const crypto::KeyStore& ks, ProcessId owner,
                           const History& h, std::size_t start,
                           Bytes& prev_chain, std::uint64_t& expected_sent);

/// Protocol-level check: given `owner`'s verified history and the message it
/// is now sending (seq `k`, destination `dst`, bytes `payload`), is this a
/// legal continuation? The default accepts everything.
using HistoryValidator = std::function<bool(
    ProcessId owner, const History& h, std::uint64_t k, ProcessId dst,
    const Bytes& payload)>;

inline HistoryValidator accept_all_validator() {
  return [](ProcessId, const History&, std::uint64_t, ProcessId, const Bytes&) {
    return true;
  };
}

struct TrustedConfig {
  std::size_t n = 3;
};

/// Transport implementing T-send / T-receive. All sends are broadcast via
/// the NEB instance (receivers filter on the destination field), matching
/// Algorithm 3 where every message is a broadcast so that everyone can audit
/// everyone's history.
class TrustedTransport : public Transport {
 public:
  TrustedTransport(sim::Executor& exec, NonEquivBroadcast& neb,
                   const crypto::KeyStore& keystore, crypto::Signer signer,
                   TrustedConfig config,
                   HistoryValidator validator = accept_all_validator());

  /// Spawn the delivery/verification loop.
  void start();

  ProcessId self() const override { return signer_.id(); }
  std::size_t process_count() const override { return config_.n; }

  /// T-send(dst, m): append a signed `sent` link, broadcast (dst, m, H).
  void send(ProcessId dst, util::Buffer payload) override;

  /// T-send addressed to everyone as a single broadcast (dst = kToAll);
  /// cheaper than n point-to-point T-sends and semantically identical
  /// because every T-send is a broadcast anyway. `include_self` is ignored:
  /// broadcasts always self-deliver.
  void send_all(util::Buffer payload, bool include_self = true) override {
    (void)include_self;
    send(kToAll, std::move(payload));
  }

  /// T-received messages addressed to this process (or to kToAll).
  sim::Channel<TMsg>& incoming() override { return incoming_; }

  /// Messages from `p` rejected by verification (metrics / tests).
  std::uint64_t rejected() const { return rejected_; }

  const History& history() const { return history_; }

 private:
  sim::Task<void> deliver_loop();
  void append_entry(HistoryEntry::Kind kind, std::uint64_t k, ProcessId peer,
                    util::ByteView payload);

  sim::Executor* exec_;
  NonEquivBroadcast* neb_;
  const crypto::KeyStore* keystore_;
  crypto::Signer signer_;
  TrustedConfig config_;
  HistoryValidator validator_;

  std::uint64_t next_k_ = 1;
  History history_;
  /// Concatenated length-prefixed entry encodings of history_ (the body of
  /// encode_history without its leading count), appended on append_entry.
  Bytes encoded_body_;

  /// Verified prefix of one peer's attached history. Histories are
  /// append-only, so if a new message's encoded history starts with the
  /// bytes we already verified, only the suffix needs chain/signature
  /// checks — this turns O(k) signature verifications per receive into
  /// O(new entries). The cache-hit check must compare *our stored verified
  /// bytes* (not any field of the incoming message): chain values inside an
  /// unverified prefix are attacker-supplied, so shortcutting the compare
  /// through them would let a fabricated prefix ride a copied chain tip.
  struct PeerCache {
    std::size_t entries = 0;
    Bytes body;  // verified encoding (sans framing), byte-compared
    Bytes last_chain;
    std::uint64_t expected_sent = 1;
  };
  util::FlatMap<ProcessId, PeerCache> peer_cache_;

  sim::Channel<TMsg> incoming_;
  std::uint64_t rejected_ = 0;
  bool started_ = false;
};

/// Wire format of a T-send broadcast: the history-before-send *first* (its
/// length-prefixed entries terminated by a zero length), then (dst, payload,
/// k, sender signature). History bodies are append-only, so leading with
/// them makes consecutive broadcasts from one sender share a long byte
/// prefix — which is exactly what NEB's digest-over-suffix verification
/// (neb_signing_bytes) needs to hash only the new bytes per delivery.
///
/// The signature covers (k, dst, H(payload), history-digest) — see
/// tsend_signing_bytes — so a *receipt* citing this message can be verified
/// later from just (k, dst, payload, history-digest, sig), without
/// re-embedding the sender's history. This is what keeps Clement-style
/// attached histories linear instead of recursively nested. The history
/// digest is the chain value of the history's last entry (empty for an empty
/// history): the hash chain already commits to every prior entry, and the
/// receiver holds the chain tip as a byproduct of incremental verification,
/// so binding the history costs O(1) instead of re-hashing its encoding.
Bytes encode_tsend(ProcessId dst, util::ByteView payload, const History& h,
                   std::uint64_t k, const crypto::Signature& sig);
struct TSendContent {
  ProcessId dst = 0;
  Bytes payload;
  History history;
  /// View of the raw encoded history body inside the decoded wire bytes
  /// (valid while they live) — the deliver loop byte-compares it against the
  /// sender's verified prefix without re-encoding.
  util::ByteView history_body;
  std::uint64_t k = 0;
  crypto::Signature sig;
};
std::optional<TSendContent> decode_tsend(util::ByteView raw);

/// Bytes a sender signs for its k-th T-send.
Bytes tsend_signing_bytes(std::uint64_t k, ProcessId dst, util::ByteView payload,
                          const Bytes& history_digest);

/// Payload stored in a kReceived history entry: standalone-verifiable
/// evidence that `origin` really T-sent (k, dst, payload).
struct Receipt {
  ProcessId dst = 0;
  Bytes payload;
  /// Chain value of the last entry of the origin's attached history (empty
  /// for an empty history) — the hash chain commits to the whole history.
  Bytes history_digest;
  crypto::Signature origin_sig;

  Bytes encode() const;
  static std::optional<Receipt> decode(util::ByteView raw);
};

/// Verify a receipt for origin's k-th send.
bool verify_receipt(const crypto::KeyStore& ks, ProcessId origin,
                    std::uint64_t k, const Receipt& r);

}  // namespace mnm::core::trusted
