#include "src/core/cheap_quorum.hpp"

#include <set>

#include "src/mem/write_watch.hpp"
#include "src/sim/fanout.hpp"
#include "src/util/serde.hpp"

namespace mnm::core {

Bytes cq_value_signing_bytes(const Bytes& v) {
  util::Writer w;
  w.str("cq-val").bytes(v);
  return std::move(w).take();
}

Bytes encode_leader_blob(const Bytes& v, const crypto::Signature& sig_p1) {
  util::Writer w;
  w.bytes(v);
  sig_p1.encode(w);
  return std::move(w).take();
}

std::optional<LeaderBlob> decode_leader_blob(const Bytes& raw) {
  try {
    util::Reader r(raw);
    LeaderBlob b;
    b.value = r.bytes();
    b.sig = crypto::Signature::decode(r);
    r.expect_end();
    return b;
  } catch (const util::SerdeError&) {
    return std::nullopt;
  }
}

Bytes cq_copy_signing_bytes(const Bytes& leader_blob) {
  util::Writer w;
  w.str("cq-copy").bytes(leader_blob);
  return std::move(w).take();
}

Bytes encode_copy_blob(const Bytes& leader_blob, const crypto::Signature& sig) {
  util::Writer w;
  w.bytes(leader_blob);
  sig.encode(w);
  return std::move(w).take();
}

std::optional<CopyBlob> decode_copy_blob(const Bytes& raw) {
  try {
    util::Reader r(raw);
    CopyBlob b;
    b.leader_blob = r.bytes();
    b.sig = crypto::Signature::decode(r);
    r.expect_end();
    return b;
  } catch (const util::SerdeError&) {
    return std::nullopt;
  }
}

Bytes encode_unanimity_proof(const std::vector<Bytes>& copy_blobs,
                             const crypto::Signature& assembler_sig) {
  util::Writer w;
  w.u32(static_cast<std::uint32_t>(copy_blobs.size()));
  for (const auto& c : copy_blobs) w.bytes(c);
  assembler_sig.encode(w);
  return std::move(w).take();
}

namespace {
Bytes proof_signing_bytes(const std::vector<Bytes>& copy_blobs) {
  util::Writer w;
  w.str("cq-proof").u32(static_cast<std::uint32_t>(copy_blobs.size()));
  for (const auto& c : copy_blobs) w.bytes(c);
  return std::move(w).take();
}
}  // namespace

bool verify_unanimity_proof(const crypto::KeyStore& ks, std::size_t n,
                            ProcessId leader, const Bytes& proof,
                            LeaderBlob* out) {
  if (util::is_bottom(proof)) return false;
  std::vector<Bytes> copy_blobs;
  crypto::Signature assembler_sig;
  try {
    util::Reader r(proof);
    const std::uint32_t count = r.u32();
    copy_blobs.reserve(count);
    for (std::uint32_t i = 0; i < count; ++i) copy_blobs.push_back(r.bytes());
    assembler_sig = crypto::Signature::decode(r);
    r.expect_end();
  } catch (const util::SerdeError&) {
    return false;
  }
  if (copy_blobs.size() < n) return false;
  if (!ks.valid(proof_signing_bytes(copy_blobs), assembler_sig)) return false;

  std::set<ProcessId> signers;
  std::optional<Bytes> common_leader_blob;
  for (const auto& cb : copy_blobs) {
    const auto copy = decode_copy_blob(cb);
    if (!copy.has_value()) return false;
    if (!ks.valid_from(copy->sig.signer, cq_copy_signing_bytes(copy->leader_blob),
                       copy->sig)) {
      return false;
    }
    if (!signers.insert(copy->sig.signer).second) return false;  // duplicate
    if (common_leader_blob.has_value() && *common_leader_blob != copy->leader_blob) {
      return false;
    }
    common_leader_blob = copy->leader_blob;
  }
  if (signers.size() < n) return false;

  const auto lb = decode_leader_blob(*common_leader_blob);
  if (!lb.has_value() ||
      !ks.valid_from(leader, cq_value_signing_bytes(lb->value), lb->sig)) {
    return false;
  }
  if (out != nullptr) *out = *lb;
  return true;
}

// ---------------------------------------------------------------------------

CheapQuorum::CheapQuorum(sim::Executor& exec,
                         std::vector<mem::MemoryIface*> memories,
                         CheapQuorumRegions regions,
                         const crypto::KeyStore& keystore, crypto::Signer signer,
                         CheapQuorumConfig config)
    : exec_(&exec),
      memories_(std::move(memories)),
      regions_(regions),
      keystore_(&keystore),
      signer_(signer),
      config_(config) {}

swmr::ReplicatedRegister& CheapQuorum::leader_value_reg() {
  const std::string name = config_.prefix + "/leader/value";
  auto it = regs_.find(name);
  if (it == regs_.end()) {
    it = regs_
             .emplace(name, std::make_unique<swmr::ReplicatedRegister>(
                                *exec_, memories_, regions_.leader, name))
             .first;
  }
  return *it->second;
}

swmr::ReplicatedRegister& CheapQuorum::value_reg(ProcessId p) {
  const std::string name = config_.prefix + "/p/" + std::to_string(p) + "/value";
  auto it = regs_.find(name);
  if (it == regs_.end()) {
    it = regs_
             .emplace(name, std::make_unique<swmr::ReplicatedRegister>(
                                *exec_, memories_, regions_.per_process.at(p), name))
             .first;
  }
  return *it->second;
}

swmr::ReplicatedRegister& CheapQuorum::panic_reg(ProcessId p) {
  const std::string name = config_.prefix + "/p/" + std::to_string(p) + "/panic";
  auto it = regs_.find(name);
  if (it == regs_.end()) {
    it = regs_
             .emplace(name, std::make_unique<swmr::ReplicatedRegister>(
                                *exec_, memories_, regions_.per_process.at(p), name))
             .first;
  }
  return *it->second;
}

swmr::ReplicatedRegister& CheapQuorum::proof_reg(ProcessId p) {
  const std::string name = config_.prefix + "/p/" + std::to_string(p) + "/proof";
  auto it = regs_.find(name);
  if (it == regs_.end()) {
    it = regs_
             .emplace(name, std::make_unique<swmr::ReplicatedRegister>(
                                *exec_, memories_, regions_.per_process.at(p), name))
             .first;
  }
  return *it->second;
}

sim::Task<bool> CheapQuorum::anyone_panicked() {
  sim::Fanout<mem::ReadResult> fanout(*exec_);
  const auto all = all_processes(config_.n);
  for (std::size_t i = 0; i < all.size(); ++i) {
    fanout.add(i, panic_reg(all[i]).read(signer_.id()));
  }
  auto results = co_await fanout.collect(all.size());
  for (auto& [idx, rr] : results) {
    if (rr.ok() && !util::is_bottom(rr.value)) co_return true;
  }
  co_return false;
}

sim::Task<CqOutcome> CheapQuorum::propose(Bytes v) {
  const ProcessId self = signer_.id();
  if (self != config_.leader) {
    co_return co_await follower_body(std::move(v), /*decide_allowed=*/true);
  }

  // Leader (Algorithm 4, lines 1–6): sign v, write it to Value[ℓ]; decide on
  // ack, panic on nak. The signature is the fast path's *only* signature.
  const crypto::Signature sig = signer_.sign(cq_value_signing_bytes(v));
  ++signatures_on_path_;
  const Bytes blob = encode_leader_blob(v, sig);
  const mem::Status st = co_await leader_value_reg().write(self, blob);
  if (st != mem::Status::kAck) {
    co_return co_await panic_mode(v);
  }
  CqOutcome out;
  out.decided = true;
  out.is_leader_decision = true;
  out.value = v;
  out.leader_sig = [&] {
    util::Writer w;
    sig.encode(w);
    return std::move(w).take();
  }();
  out.at = exec_->now();
  // "p1 serves both as a leader and a follower": keep copying/proof-building
  // in the background so followers can reach unanimity, but never decide
  // again.
  exec_->spawn([](CheapQuorum* cq, Bytes input) -> sim::Task<void> {
    (void)co_await cq->follower_body(std::move(input), /*decide_allowed=*/false);
  }(this, v));
  co_return out;
}

sim::Task<CqOutcome> CheapQuorum::follower_body(Bytes input, bool decide_allowed) {
  const ProcessId self = signer_.id();
  const sim::Time deadline = exec_->now() + config_.timeout;

  // Both waits below are event-driven: a pass over the registers, then a
  // suspension on the memories' write-version signals (bounded by the panic
  // deadline) — a write by the leader, a copier or a panicker wakes us, and
  // an idle wait costs no events at all. The watch snapshots before each
  // pass, so writes landing mid-pass rescan immediately.
  mem::WriteWatch watch(memories_);

  // Wait for the leader's value (Algorithm 4 lines 10–12).
  Bytes leader_blob;
  std::optional<LeaderBlob> lb;
  while (true) {
    watch.snapshot();
    const mem::ReadResult rr = co_await leader_value_reg().read(self);
    if (rr.ok() && !util::is_bottom(rr.value)) {
      lb = decode_leader_blob(rr.value);
      if (lb.has_value() &&
          keystore_->valid_from(config_.leader, cq_value_signing_bytes(lb->value),
                                lb->sig)) {
        leader_blob = rr.value;
        break;
      }
      lb.reset();  // invalid signature: treat as nothing (Alg. 4 line 13)
    }
    if (co_await anyone_panicked() || exec_->now() >= deadline) {
      co_return co_await panic_mode(std::move(input));
    }
    co_await watch.wait_change(*exec_, deadline, config_.poll);
  }

  // Sign and replicate our copy (line 14–15).
  const crypto::Signature copy_sig = signer_.sign(cq_copy_signing_bytes(leader_blob));
  ++signatures_on_path_;
  const Bytes copy_blob = encode_copy_blob(leader_blob, copy_sig);
  (void)co_await value_reg(self).write(self, copy_blob);

  // Wait for unanimity, then for n proofs (lines 16–22).
  const auto all = all_processes(config_.n);
  bool proof_written = false;
  while (true) {
    watch.snapshot();
    // Read all Value[q].
    sim::Fanout<mem::ReadResult> fanout(*exec_);
    for (std::size_t i = 0; i < all.size(); ++i) {
      fanout.add(i, value_reg(all[i]).read(self));
    }
    auto copies = co_await fanout.collect(all.size());
    std::vector<Bytes> copy_blobs;
    std::set<ProcessId> signers;
    for (auto& [idx, rr] : copies) {
      if (!rr.ok() || util::is_bottom(rr.value)) continue;
      const auto copy = decode_copy_blob(rr.value);
      if (!copy.has_value() || copy->leader_blob != leader_blob) continue;
      if (!keystore_->valid_from(all[idx], cq_copy_signing_bytes(copy->leader_blob),
                                 copy->sig)) {
        continue;
      }
      if (signers.insert(all[idx]).second) copy_blobs.push_back(rr.value);
    }

    if (signers.size() >= config_.n) {
      if (!proof_written) {
        const crypto::Signature proof_sig = signer_.sign(proof_signing_bytes(copy_blobs));
        ++signatures_on_path_;
        (void)co_await proof_reg(self).write(
            self, encode_unanimity_proof(copy_blobs, proof_sig));
        proof_written = true;
      }
      // Read all Proof[q].
      sim::Fanout<mem::ReadResult> pf(*exec_);
      for (std::size_t i = 0; i < all.size(); ++i) {
        pf.add(i, proof_reg(all[i]).read(self));
      }
      auto proofs = co_await pf.collect(all.size());
      std::size_t valid = 0;
      Bytes my_proof;
      for (auto& [idx, rr] : proofs) {
        if (!rr.ok() || util::is_bottom(rr.value)) continue;
        LeaderBlob proof_lb;
        if (verify_unanimity_proof(*keystore_, config_.n, config_.leader, rr.value,
                                   &proof_lb) &&
            encode_leader_blob(proof_lb.value, proof_lb.sig) == leader_blob) {
          ++valid;
          if (all[idx] == self) my_proof = rr.value;
        }
      }
      if (valid >= config_.n) {
        CqOutcome out;
        out.decided = decide_allowed;
        out.value = lb->value;
        out.proof = my_proof;
        out.leader_sig = [&] {
          util::Writer w;
          lb->sig.encode(w);
          return std::move(w).take();
        }();
        out.at = exec_->now();
        co_return out;
      }
    }

    if (co_await anyone_panicked() || exec_->now() >= deadline) {
      co_return co_await panic_mode(std::move(input));
    }
    co_await watch.wait_change(*exec_, deadline, config_.poll);
  }
}

sim::Task<CqOutcome> CheapQuorum::panic_mode(Bytes input) {
  const ProcessId self = signer_.id();

  // Announce panic (Algorithm 5 line 2).
  (void)co_await panic_reg(self).write(self, util::to_bytes("1"));

  // Revoke the leader's write permission on every memory; wait for a
  // majority so the revocation is effective against future leader writes
  // (line 3).
  sim::Fanout<mem::Status> revoke(*exec_);
  const mem::Permission ro = mem::Permission::read_only(all_processes(config_.n));
  for (std::size_t i = 0; i < memories_.size(); ++i) {
    revoke.add(i, memories_[i]->change_permission(self, regions_.leader, ro));
  }
  (void)co_await revoke.collect(majority(memories_.size()));

  // Choose the abort value (lines 4–9).
  const mem::ReadResult own = co_await value_reg(self).read(self);
  const mem::ReadResult prf = co_await proof_reg(self).read(self);

  CqOutcome out;
  out.decided = false;
  out.at = exec_->now();

  if (own.ok() && !util::is_bottom(own.value)) {
    const auto copy = decode_copy_blob(own.value);
    if (copy.has_value()) {
      const auto lb = decode_leader_blob(copy->leader_blob);
      if (lb.has_value()) {
        out.value = lb->value;
        util::Writer w;
        lb->sig.encode(w);
        out.leader_sig = std::move(w).take();
        if (prf.ok() && !util::is_bottom(prf.value)) out.proof = prf.value;
        co_return out;
      }
    }
  }

  const mem::ReadResult lval = co_await leader_value_reg().read(self);
  if (lval.ok() && !util::is_bottom(lval.value)) {
    const auto lb = decode_leader_blob(lval.value);
    if (lb.has_value() &&
        keystore_->valid_from(config_.leader, cq_value_signing_bytes(lb->value),
                              lb->sig)) {
      out.value = lb->value;
      util::Writer w;
      lb->sig.encode(w);
      out.leader_sig = std::move(w).take();
      co_return out;
    }
  }

  out.value = std::move(input);
  co_return out;
}

}  // namespace mnm::core
