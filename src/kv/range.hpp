// Range migration codec — the payloads behind the reconfiguration admin
// operations (Op::kSeal / kInstall / kPurge) and the control-channel drain.
//
//  * RangeSpec names a set of hash buckets at a config epoch, against a
//    stated table size: the seal and purge payloads, and the range-snapshot
//    request a Migrator broadcasts on a source group's catch-up control
//    channel.
//  * RangeSnapshot is the drained state of a sealed range: the (key, value)
//    pairs of the moving buckets plus the source machine's full session
//    table (merged max-seq at the destination, so a retry straddling the
//    epoch flip still deduplicates), with an embedded FNV-1a digest the
//    decoder recomputes — a corrupted or forged drain fails closed before
//    any import.
//
// Both decoders are strict and total, mirroring the catch-up decoder
// hygiene: these bytes travel through consensus slots (a Byzantine proposer
// can win a slot with arbitrary bytes) and over the control wire from
// unverified peers, so malformed input yields nullopt deterministically,
// counts are capped, pre-sizing is byte-bounded, and trailing garbage is
// rejected. Nothing here throws out of apply.

#pragma once

#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "src/common.hpp"
#include "src/kv/command.hpp"
#include "src/kv/shard.hpp"

namespace mnm::kv {

/// A set of hash buckets under a table of `table_buckets` buckets, at
/// config epoch `epoch`. Bucket lists are strictly ascending (canonical
/// form; decoders reject anything else).
struct RangeSpec {
  std::uint64_t epoch = 0;
  std::uint32_t table_buckets = 1;  // bucket-array size the ids index into
  std::vector<std::uint32_t> buckets;

  bool operator==(const RangeSpec&) const = default;
};

Bytes encode_range_spec(const RangeSpec& spec);
/// Strict decode: nullopt on truncation, trailing bytes, zero/oversized
/// table, an empty / unsorted / out-of-range bucket list. Never throws.
std::optional<RangeSpec> decode_range_spec(util::ByteView raw);

/// One client session record as drained from a source machine.
struct SessionRecord {
  ClientId client = 0;
  std::uint64_t last_seq = 0;
  Reply reply;

  bool operator==(const SessionRecord&) const = default;
};

/// One transaction lock (+ its buffered pending write) as drained from a
/// source machine — what lets a 2PC transaction straddle a live reshard:
/// the lock migrates with its bucket, and the commit/abort record re-routes
/// to the new owner and finds it there.
struct LockRecord {
  Bytes key;
  std::uint64_t txn = 0;
  ClientId owner = 0;      // coordinator session holding the lock
  std::uint8_t write = 1;  // txn::WriteKind of the pending mutation
  Bytes value;             // pending kPut payload (empty for kDel)
  std::uint8_t has_expected = 0;  // prepare carried an optimistic guard
  Bytes expected;                 // guard value (empty when !has_expected)

  bool operator==(const LockRecord&) const = default;
};

/// One session prepare mark as drained from a source machine: the seq and
/// outcome of the client's newest TxnPrepare there. Merged by max seq at
/// the destination (like the session records it extends), so a coordinator
/// replaying a pre-seal prepare at the new owner reads its true outcome.
struct PrepareMark {
  ClientId client = 0;
  std::uint64_t seq = 0;    // never 0 — a zero mark means "none", not drained
  std::uint8_t status = 1;  // kv::Status of the prepare outcome
  bool operator==(const PrepareMark&) const = default;
};

/// The drained state of a sealed range. pairs are in store (map) order,
/// sessions and prepare_marks in client-id order, locks in key order —
/// canonical, so equal drains are byte-identical and the digest doubles as
/// a fingerprint. The transaction tail (locks, prepare_marks) is encoded as
/// tagged sections, each present only when non-empty and in ascending tag
/// order — a transaction-free drain carries no tail at all and stays
/// byte-identical to the pre-transaction codec.
struct RangeSnapshot {
  RangeSpec spec;
  std::vector<std::pair<Bytes, Bytes>> pairs;
  std::vector<SessionRecord> sessions;
  std::vector<LockRecord> locks;
  std::vector<PrepareMark> prepare_marks;

  bool operator==(const RangeSnapshot&) const = default;
};

/// Digest the decoder recomputes: FNV-1a over spec, pairs and sessions.
std::uint64_t range_snapshot_digest(const RangeSnapshot& snap);

Bytes encode_range_snapshot(const RangeSnapshot& snap);
/// Strict decode + digest check: nullopt on malformed bytes, out-of-order
/// pairs/sessions, or a digest mismatch — state never partially imports.
std::optional<RangeSnapshot> decode_range_snapshot(util::ByteView raw);

}  // namespace mnm::kv
