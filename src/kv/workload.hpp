// kv::Workload — seeded, deterministic closed-loop YCSB-style load.
//
// M concurrent clients, each a coroutine driving one operation at a time
// through kv::Router (issue → await committed reply → next). Operation
// mixes follow the YCSB core workloads:
//
//   mix A  update-heavy   50% read / 50% write
//   mix B  read-mostly    95% read /  5% write
//   mix C  read-only     100% read
//
// with the write share split 80% PUT / 10% CAS / 10% DEL so all four ops
// exercise the log. Key popularity is uniform or zipfian (the YCSB
// generator: theta 0.99 by default) over a fixed key space. Every choice
// flows from one sim::Rng fork per client, so a (seed, config) pair
// reproduces the identical operation stream — the determinism suite pins
// whole sharded runs on that.
//
// Client identity is the Router's concern: each register_client() session
// owns a crypto::Signer in signed-command mode, and the wire every
// operation travels on carries that session's signature. The workload
// itself never sees keys or signatures — it drives Commands, the Router
// authenticates them.

#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "src/common.hpp"
#include "src/kv/router.hpp"
#include "src/sim/rng.hpp"

namespace mnm::kv {

enum class Mix : std::uint8_t { kA, kB, kC };
enum class KeyDist : std::uint8_t { kUniform, kZipfian };

const char* mix_name(Mix mix);
/// Read share of the mix: 0.5 / 0.95 / 1.0.
double read_fraction(Mix mix);

/// YCSB-style zipfian generator over [0, n): item 0 most popular.
class ZipfGenerator {
 public:
  ZipfGenerator(std::size_t n, double theta);
  std::size_t next(sim::Rng& rng);

 private:
  std::size_t n_;
  double theta_, alpha_, zetan_, eta_;
};

struct WorkloadConfig {
  std::size_t clients = 8;
  std::size_t ops_per_client = 32;
  Mix mix = Mix::kA;
  KeyDist dist = KeyDist::kUniform;
  std::size_t keys = 128;  // key-space size
  double zipf_theta = 0.99;
  std::uint64_t seed = 1;
};

struct WorkloadStats {
  std::uint64_t ops = 0;  // completed client operations
  std::uint64_t reads = 0, puts = 0, dels = 0, cas_ops = 0;
  std::uint64_t not_found = 0, cas_mismatch = 0;
  sim::Time last_reply_at = 0;
  /// Issue → committed-reply latency of every completed op, completion
  /// order (unsorted).
  std::vector<sim::Time> latencies;

  /// Completed operations per 1000 sim-time units — the aggregate
  /// throughput sharding is supposed to scale.
  double ops_per_kdelay() const {
    return last_reply_at > 0
               ? 1000.0 * static_cast<double>(ops) /
                     static_cast<double>(last_reply_at)
               : 0.0;
  }
};

class Workload {
 public:
  /// Registers `config.clients` sessions with the router.
  Workload(sim::Executor& exec, Router& router, WorkloadConfig config);

  /// Spawn every client loop. Call once, after the shard replicas started.
  void start();

  /// Every client completed its full operation count.
  bool done() const { return finished_ == clients_.size(); }

  const WorkloadStats& stats() const { return stats_; }

 private:
  struct Client {
    ClientId id = 0;
    sim::Rng rng{0};
    /// Last value this client observed per key index (reads and writes) —
    /// seeds CAS expectations so both success and mismatch paths occur.
    std::map<std::size_t, Bytes> seen;
  };

  static sim::Task<void> client_loop(Workload* self, std::size_t idx);
  std::size_t next_key(Client& c);
  Command next_op(Client& c);
  void record(const Command& cmd, const Reply& reply, sim::Time issued_at);

  sim::Executor* exec_;
  Router* router_;
  WorkloadConfig config_;
  ZipfGenerator zipf_;
  std::vector<Client> clients_;
  std::size_t finished_ = 0;
  WorkloadStats stats_;
  bool started_ = false;
};

}  // namespace mnm::kv
