// kv::Workload — seeded, deterministic closed-loop YCSB-style load.
//
// M concurrent clients, each a coroutine driving one operation at a time
// through kv::Router (issue → await committed reply → next). Operation
// mixes follow the YCSB core workloads:
//
//   mix A  update-heavy   50% read / 50% write
//   mix B  read-mostly    95% read /  5% write
//   mix C  read-only     100% read
//
// with the write share split 80% PUT / 10% CAS / 10% DEL so all four ops
// exercise the log. Key popularity is uniform or zipfian (the YCSB
// generator: theta 0.99 by default) over a fixed key space. Every choice
// flows from one sim::Rng fork per client, so a (seed, config) pair
// reproduces the identical operation stream — the determinism suite pins
// whole sharded runs on that.
//
// Client identity is the Router's concern: each register_client() session
// owns a crypto::Signer in signed-command mode, and the wire every
// operation travels on carries that session's signature. The workload
// itself never sees keys or signatures — it drives Commands, the Router
// authenticates them.
//
// Transactional mix (YCSB+T-style, txn_fraction > 0): a fraction of each
// client's operation slots run a bank transfer through txn::Coordinator
// instead of a plain op — read `txn_accounts` distinct accounts, debit the
// first, credit the rest, with optimistic guards pinning each prepare to the
// value read. Accounts live in their own "acct-<i>" key space (disjoint from
// the plain "key-<i>" space, so plain writes can never corrupt balances) and
// every account starts absent ⇒ balance 0 — committed transfers conserve
// Σ balances == 0, the harness's atomicity invariant. Account popularity has
// its own zipfian knob: contention (conflicting prepares → aborts) rises
// with txn_zipf_theta, which is what bench_txn sweeps. A scripted
// coordinator crash (txn_crash_*) stops one chosen transaction dead after N
// completed records, pauses, then recovers through the presumed-abort
// replay — all on the deterministic clock, so crash runs fingerprint too.

#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "src/common.hpp"
#include "src/kv/router.hpp"
#include "src/sim/rng.hpp"
#include "src/txn/coordinator.hpp"

namespace mnm::kv {

enum class Mix : std::uint8_t { kA, kB, kC };
enum class KeyDist : std::uint8_t { kUniform, kZipfian };

const char* mix_name(Mix mix);
/// Read share of the mix: 0.5 / 0.95 / 1.0.
double read_fraction(Mix mix);

/// YCSB-style zipfian generator over [0, n): item 0 most popular.
class ZipfGenerator {
 public:
  ZipfGenerator(std::size_t n, double theta);
  std::size_t next(sim::Rng& rng);

 private:
  std::size_t n_;
  double theta_, alpha_, zetan_, eta_;
};

struct WorkloadConfig {
  std::size_t clients = 8;
  std::size_t ops_per_client = 32;
  Mix mix = Mix::kA;
  KeyDist dist = KeyDist::kUniform;
  std::size_t keys = 128;  // key-space size
  double zipf_theta = 0.99;
  std::uint64_t seed = 1;

  // Transactional mix (see file comment). 0 keeps the plain workload
  // byte-identical — no extra rng draws, no txn state anywhere.
  double txn_fraction = 0.0;   // share of op slots that run a transfer
  std::size_t txn_accounts = 2;  // accounts touched per transfer (≥ 2)
  std::size_t accounts = 64;     // "acct-<i>" key-space size
  /// Account popularity: 0 = uniform, else zipfian with this theta — the
  /// contention knob (hot accounts ⇒ conflicting prepares ⇒ aborts).
  double txn_zipf_theta = 0.0;
  /// Scripted coordinator crash: client `txn_crash_client` (1-based router
  /// id; 0 = never) stops its `txn_crash_txn`-th transaction after
  /// `txn_crash_records` completed records, sleeps `txn_crash_pause`, then
  /// recovers via the presumed-abort replay.
  ClientId txn_crash_client = 0;
  std::size_t txn_crash_txn = 1;
  std::size_t txn_crash_records = 0;
  sim::Time txn_crash_pause = 64;
  /// Force the crash transaction's *last* prepare to be refused: a separate
  /// blocker session pre-locks that key under a foreign txn id just before
  /// the crash attempt, and releases it after recovery. This pins the
  /// abort-side replay — prepares accepted, one refused, abort records
  /// racing the crash — the window where recovery must re-read the refusal
  /// from the participant's prepare mark rather than guess from kStaleDup.
  bool txn_crash_conflict = false;
};

struct WorkloadStats {
  std::uint64_t ops = 0;  // completed client operations
  std::uint64_t reads = 0, puts = 0, dels = 0, cas_ops = 0;
  std::uint64_t not_found = 0, cas_mismatch = 0;
  sim::Time last_reply_at = 0;
  /// Issue → committed-reply latency of every completed op, completion
  /// order (unsorted).
  std::vector<sim::Time> latencies;

  // Transactional mix only (all zero otherwise).
  std::uint64_t txns = 0;         // transfers driven to a final outcome
  std::uint64_t txn_commits = 0;  // committed everywhere
  std::uint64_t txn_aborts = 0;   // aborted everywhere (conflict/guard miss)
  std::uint64_t txn_recoveries = 0;  // crashed coordinators recovered
  /// Start → decision latency of every *committed* transfer (crash pause
  /// included for the recovered one), completion order.
  std::vector<sim::Time> txn_commit_latencies;

  /// Completed operations per 1000 sim-time units — the aggregate
  /// throughput sharding is supposed to scale.
  double ops_per_kdelay() const {
    return last_reply_at > 0
               ? 1000.0 * static_cast<double>(ops) /
                     static_cast<double>(last_reply_at)
               : 0.0;
  }
};

class Workload {
 public:
  /// Registers `config.clients` sessions with the router.
  Workload(sim::Executor& exec, Router& router, WorkloadConfig config);

  /// Spawn every client loop. Call once, after the shard replicas started.
  void start();

  /// Every client completed its full operation count.
  bool done() const { return finished_ == clients_.size(); }

  const WorkloadStats& stats() const { return stats_; }

 private:
  struct Client {
    ClientId id = 0;
    sim::Rng rng{0};
    /// Last value this client observed per key index (reads and writes) —
    /// seeds CAS expectations so both success and mismatch paths occur.
    std::map<std::size_t, Bytes> seen;
    /// Transfers started by this client — feeds the txn id and the scripted
    /// crash ordinal.
    std::uint64_t txns_started = 0;
  };

  static sim::Task<void> client_loop(Workload* self, std::size_t idx);
  /// One bank transfer end to end: reads, 2PC, and (for the scripted crash
  /// victim) the crash + recovery.
  static sim::Task<void> run_txn(Workload* self, Client& c);
  std::size_t next_key(Client& c);
  std::size_t next_account(Client& c);
  Command next_op(Client& c);
  void record(const Command& cmd, const Reply& reply, sim::Time issued_at);

  sim::Executor* exec_;
  Router* router_;
  WorkloadConfig config_;
  ZipfGenerator zipf_;
  std::optional<ZipfGenerator> txn_zipf_;  // txn_zipf_theta > 0 only
  std::optional<txn::Coordinator> coordinator_;  // txn_fraction > 0 only
  std::vector<Client> clients_;
  std::size_t finished_ = 0;
  WorkloadStats stats_;
  bool started_ = false;
  /// Lazily-registered session for txn_crash_conflict's planted lock —
  /// separate from every workload client so the conflict is a genuinely
  /// foreign transaction.
  ClientId blocker_ = 0;
};

}  // namespace mnm::kv
