#include "src/kv/router.hpp"

#include <cassert>

#include "src/sim/select.hpp"

namespace mnm::kv {

Router::Router(sim::Executor& exec, core::Omega& omega, ShardMap map,
               std::vector<ShardBackend> shards, RouterConfig config)
    : exec_(&exec),
      omega_(&omega),
      map_(map),
      shards_(std::move(shards)),
      config_(config),
      flush_armed_(shards_.size(), 0) {
  assert(map_.shards() == shards_.size() &&
         "kv::Router: one backend per shard");
  for (ShardBackend& b : shards_) {
    for (StateMachine* sm : b.machines) {
      if (sm == nullptr) continue;
      sm->set_reply_sink([this](ClientId c, std::uint64_t seq, const Reply& r) {
        deliver(c, seq, r);
      });
    }
  }
}

ClientId Router::register_client() {
  sessions_.emplace_back(*exec_);
  return static_cast<ClientId>(sessions_.size());
}

void Router::deliver(ClientId client, std::uint64_t seq, const Reply& reply) {
  if (client == 0 || client > sessions_.size()) return;  // not one of ours
  ClientSession& s = sessions_[client - 1];
  // First replica to apply wins; replays of older seqs wake nobody.
  if (s.wait_seq != seq || s.reply.has_value()) return;
  s.reply = reply;
  s.signal.bump();
}

void Router::submit(std::size_t shard, const Bytes& wire) {
  ShardBackend& b = shards_[shard];
  if (b.fan_out) {
    // Every correct replica proposes the same candidate in the same tick —
    // the all-propose engines' requirement.
    for (smr::Replica* r : b.replicas) {
      if (r != nullptr) r->submit(wire);
    }
  } else {
    // Ω never outputs a Byzantine process, so the leader has a replica; the
    // first-correct fallback only covers scripted oracles pointing at a
    // process this cluster never built.
    const ProcessId lead = omega_->leader();
    smr::Replica* r = (lead >= 1 && lead <= b.replicas.size())
                          ? b.replicas[lead - 1]
                          : nullptr;
    if (r == nullptr) {
      for (smr::Replica* cand : b.replicas) {
        if (cand != nullptr) {
          r = cand;
          break;
        }
      }
    }
    if (r == nullptr) return;  // wholly faulty shard: the retry loop re-asks Ω
    r->submit(wire);
  }
  if (!flush_armed_[shard]) {
    flush_armed_[shard] = 1;
    exec_->spawn(flush_soon(this, shard));
  }
}

sim::Task<void> Router::flush_soon(Router* self, std::size_t shard) {
  // One yield lets every same-instant submit for this shard join the open
  // batch before it becomes a slot payload.
  co_await self->exec_->yield();
  self->flush_armed_[shard] = 0;
  for (smr::Replica* r : self->shards_[shard].replicas) {
    if (r != nullptr) r->flush();
  }
}

sim::Task<Reply> Router::execute(ClientId client, Command cmd) {
  assert(client >= 1 && client <= sessions_.size() &&
         "kv::Router: unknown client");
  ClientSession& s = sessions_[client - 1];
  assert(s.wait_seq == 0 && "kv::Router: one outstanding op per session");
  cmd.client = client;
  cmd.seq = ++s.next_seq;
  const std::size_t shard = map_.shard_of(cmd.key);
  const Bytes wire = encode_command(cmd);
  s.wait_seq = cmd.seq;
  s.reply.reset();
  submit(shard, wire);
  while (true) {
    // Snapshot before checking: a delivery landing between the check and
    // the await makes the select ready immediately (no lost wakeup).
    const std::uint64_t seen = s.signal.version();
    if (s.reply.has_value()) break;
    sim::Select sel(*exec_);
    sel.on(s.signal, seen).until(exec_->now() + config_.retry_timeout);
    const int which = co_await sel;
    if (s.reply.has_value()) break;
    if (which == sim::Select::kTimedOut) {
      // Same client id, same seq, same bytes: the state machines' session
      // dedup turns a double commit into one apply + a cached-reply echo.
      ++retries_;
      submit(shard, wire);
    }
  }
  s.wait_seq = 0;
  Reply reply = *std::move(s.reply);
  s.reply.reset();
  co_return reply;
}

}  // namespace mnm::kv
