#include "src/kv/router.hpp"

#include <algorithm>
#include <cassert>

#include "src/sim/select.hpp"

namespace mnm::kv {

Router::Router(sim::Executor& exec, core::Omega& omega, ShardMap map,
               std::vector<ShardBackend> shards, RouterConfig config,
               reconfig::TableView* view)
    : exec_(&exec),
      omega_(&omega),
      map_(map),
      view_(view),
      shards_(std::move(shards)),
      config_(config),
      flush_armed_(shards_.size(), 0),
      shard_latency_(shards_.size(), 0) {
  // Static routing needs exactly one backend per shard; live routing only
  // needs every group the table can ever name to have a backend (split
  // targets exist from the start, idle until their first install).
  assert((view_ != nullptr ? map_.shards() <= shards_.size()
                           : map_.shards() == shards_.size()) &&
         "kv::Router: one backend per shard");
  config_.retry_timeout = std::max<sim::Time>(1, config_.retry_timeout);
  config_.retry_timeout_cap =
      std::max(config_.retry_timeout, config_.retry_timeout_cap);
  for (ShardBackend& b : shards_) {
    for (StateMachine* sm : b.machines) {
      if (sm == nullptr) continue;
      sm->set_reply_sink([this](ClientId c, std::uint64_t seq, const Reply& r) {
        deliver(c, seq, r);
      });
    }
  }
  for (std::size_t shard = 0; shard < shards_.size(); ++shard) {
    for (StateMachine* sm : shards_[shard].machines) arm_machine(sm, shard);
  }
}

void Router::arm_machine(StateMachine* sm, std::size_t shard) const {
  if (config_.keystore == nullptr || sm == nullptr) return;
  sm->set_keystore(config_.keystore, static_cast<std::uint32_t>(shard));
  for (const crypto::ProcessId id : admin_signer_ids_) {
    sm->allow_admin_signer(id);
  }
}

Bytes Router::encode_wire(const ClientSession& s, const Command& cmd,
                          std::size_t shard) const {
  Bytes body = encode_command(cmd);
  if (config_.keystore == nullptr) return body;  // legacy unsigned wire
  // The signature binds the target shard's log: a Byzantine member of
  // every group must not be able to replay this wire into another group.
  // Re-routes (bounce, post-timeout table flip) re-sign for the new shard.
  const crypto::Signature sig = s.signer->sign(
      command_signing_bytes(static_cast<std::uint32_t>(shard), body));
  return encode_signed_command(body, sig);
}

void Router::rebind(std::size_t shard, ProcessId p, smr::Replica* replica,
                    StateMachine* machine) {
  if (shard >= shards_.size()) return;
  ShardBackend& b = shards_[shard];
  if (p < 1 || p > b.replicas.size()) return;
  b.replicas[p - 1] = replica;
  b.machines[p - 1] = machine;
  if (machine != nullptr) {
    machine->set_reply_sink(
        [this](ClientId c, std::uint64_t seq, const Reply& r) {
          deliver(c, seq, r);
        });
    // A rejoiner's fresh machine must verify like the incarnation it
    // replaces, or forged commands would apply there and fork the shard.
    arm_machine(machine, shard);
  }
}

ClientId Router::register_client() {
  sessions_.emplace_back(*exec_);
  const ClientId id = static_cast<ClientId>(sessions_.size());
  if (config_.keystore != nullptr) {
    sessions_.back().signer =
        config_.keystore->register_process(client_signer_id(id));
  }
  return id;
}

ClientId Router::register_admin_client() {
  const ClientId id = register_client();
  sessions_.back().admin = true;
  if (config_.keystore != nullptr) {
    // Reconfiguration authority is per-identity: allow-list this session's
    // signer on every backend machine, present and future (arm_machine
    // replays the list on rebind).
    const crypto::ProcessId signer = client_signer_id(id);
    admin_signer_ids_.push_back(signer);
    for (ShardBackend& b : shards_) {
      for (StateMachine* sm : b.machines) {
        if (sm != nullptr) sm->allow_admin_signer(signer);
      }
    }
  }
  return id;
}

std::size_t Router::route(util::ByteView key) const {
  if (view_ != nullptr) return shard_of(view_->table(), key);
  return map_.shard_of(key);
}

void Router::deliver(ClientId client, std::uint64_t seq, const Reply& reply) {
  if (client == 0 || client > sessions_.size()) return;  // not one of ours
  ClientSession& s = sessions_[client - 1];
  // First replica to apply wins; replays of older seqs wake nobody.
  if (s.wait_seq != seq || s.reply.has_value()) return;
  if (reply.status == Status::kWrongEpoch && !s.admin) {
    // Not an outcome: the bucket is sealed or moved. Wake the retry loop to
    // re-route; the state machine recorded nothing, so the re-submission
    // still applies exactly once.
    if (!s.bounced) {
      s.bounced = true;
      s.signal.bump();
    }
    return;
  }
  s.reply = reply;
  s.signal.bump();
}

smr::Replica* Router::leader_replica(std::size_t shard) {
  ShardBackend& b = shards_[shard];
  // Ω never outputs a Byzantine process, so the leader has a replica; the
  // first-correct fallback only covers scripted oracles pointing at a
  // process this cluster never built.
  const ProcessId lead = omega_->leader();
  smr::Replica* r = (lead >= 1 && lead <= b.replicas.size())
                        ? b.replicas[lead - 1]
                        : nullptr;
  if (r == nullptr) {
    for (smr::Replica* cand : b.replicas) {
      if (cand != nullptr) {
        r = cand;
        break;
      }
    }
  }
  return r;
}

void Router::submit(std::size_t shard, const Bytes& wire) {
  ShardBackend& b = shards_[shard];
  if (b.fan_out) {
    // Every correct replica proposes the same candidate in the same tick —
    // the all-propose engines' requirement.
    for (smr::Replica* r : b.replicas) {
      if (r != nullptr) r->submit(wire);
    }
  } else {
    smr::Replica* r = leader_replica(shard);
    if (r == nullptr) return;  // wholly faulty shard: the retry loop re-asks Ω
    r->submit(wire);
  }
  if (!flush_armed_[shard]) {
    flush_armed_[shard] = 1;
    exec_->spawn(flush_soon(this, shard));
  }
}

sim::Task<void> Router::flush_soon(Router* self, std::size_t shard) {
  // One yield lets every same-instant submit for this shard join the open
  // batch before it becomes a slot payload.
  co_await self->exec_->yield();
  // Pack-more vs flush-now (auto-tuned leaders only): while the leader's
  // partial batch would just queue behind a saturated window, hold it —
  // every apply frees capacity and bumps applied_signal, so the wait always
  // wakes; a leader change re-evaluates against the new leader. The armed
  // flag stays set, so submits landing during the hold join this flush
  // instead of spawning another.
  while (true) {
    smr::Replica* lead =
        self->shards_[shard].fan_out ? nullptr : self->leader_replica(shard);
    if (lead == nullptr) break;
    // Snapshot before checking (no lost wakeup).
    const std::uint64_t v_applied = lead->log().applied_signal().version();
    const std::uint64_t v_omega = self->omega_->changed().version();
    if (!lead->flush_hold()) break;
    sim::Select sel(*self->exec_);
    sel.on(lead->log().applied_signal(), v_applied)
        .on(self->omega_->changed(), v_omega);
    (void)co_await sel;
  }
  self->flush_armed_[shard] = 0;
  for (smr::Replica* r : self->shards_[shard].replicas) {
    if (r != nullptr) r->flush();
  }
}

sim::Time Router::retry_deadline(std::size_t shard, std::size_t attempt) const {
  sim::Time base = config_.retry_timeout;
  if (config_.adaptive_retry && shard_latency_[shard] > 0) {
    // 2× the slowest recent op + slack: one straggler commit must not be
    // mistaken for a lost command.
    base = 2 * shard_latency_[shard] + 2;
  }
  // Exponential backoff: retries must not storm a slow shard. Saturate at
  // the cap *before* the multiply — a long outage can push `attempt` far
  // past the doubling range of sim::Time, and the old `base *= 2` wrapped
  // to a tiny (even zero) deadline, turning backoff into a retry storm.
  for (std::size_t i = 0; i < attempt; ++i) {
    if (base >= config_.retry_timeout_cap / 2) {
      base = config_.retry_timeout_cap;
      break;
    }
    base *= 2;
  }
  // Never 0 — the constructor clamps the cap to ≥ retry_timeout ≥ 1, but a
  // zero deadline here is the same-instant retry storm this function exists
  // to prevent, so guard the degenerate case locally too.
  return std::max<sim::Time>(1, std::min(base, config_.retry_timeout_cap));
}

void Router::observe_latency(std::size_t shard, sim::Time sample) {
  // Decaying max: jumps to a new slow observation immediately, forgets an
  // old spike over ~8 replies. Integer arithmetic, sim-time only — the
  // deadline trajectory is as deterministic as everything else.
  const sim::Time decayed =
      shard_latency_[shard] - shard_latency_[shard] / 8;
  shard_latency_[shard] = std::max(sample, decayed);
}

sim::Task<Reply> Router::execute(ClientId client, Command cmd) {
  return run_op(client, std::move(cmd), std::nullopt, std::nullopt);
}

sim::Task<Reply> Router::execute_on(ClientId client, std::size_t group,
                                    Command cmd) {
  assert(group < shards_.size() && "kv::Router: unknown group");
  return run_op(client, std::move(cmd), group, std::nullopt);
}

sim::Task<Reply> Router::execute_replay(ClientId client, std::uint64_t seq,
                                        Command cmd) {
  assert(seq >= 1 && "kv::Router: replayed seqs are 1-based");
  return run_op(client, std::move(cmd), std::nullopt, seq);
}

sim::Task<Reply> Router::run_op(ClientId client, Command cmd,
                                std::optional<std::size_t> pinned,
                                std::optional<std::uint64_t> forced_seq) {
  assert(client >= 1 && client <= sessions_.size() &&
         "kv::Router: unknown client");
  ClientSession& s = sessions_[client - 1];
  assert(s.wait_seq == 0 && "kv::Router: one outstanding op per session");
  cmd.client = client;
  if (forced_seq.has_value()) {
    // Recovery replay: the seq was stamped by a previous (crashed) attempt.
    // Re-submitting it verbatim hits the session dedup if it applied, and
    // applies fresh if it never did — either way the outcome is the one the
    // original attempt was bound to. next_seq only moves forward.
    cmd.seq = *forced_seq;
    s.next_seq = std::max(s.next_seq, *forced_seq);
  } else {
    cmd.seq = ++s.next_seq;
  }
  std::size_t shard = pinned.has_value() ? *pinned : route(cmd.key);
  Bytes wire = encode_wire(s, cmd, shard);
  s.wait_seq = cmd.seq;
  s.reply.reset();
  s.bounced = false;
  std::size_t attempt = 0;
  sim::Time submitted_at = exec_->now();
  submit(shard, wire);
  while (true) {
    // Snapshot before checking: a delivery landing between the check and
    // the await makes the select ready immediately (no lost wakeup).
    const std::uint64_t seen = s.signal.version();
    if (s.reply.has_value()) break;
    if (s.bounced) {
      // The key's bucket is sealed or already moved. Re-read the live
      // table; a changed route re-signs for the new shard's log and
      // re-submits immediately (same client, same seq — session dedup
      // keeps it exactly-once). An unchanged route means the destination
      // hasn't opened the bucket yet — fall through to the deadline wait
      // so sealed buckets back off like timeouts.
      s.bounced = false;
      ++bounces_;
      const std::size_t next = route(cmd.key);
      if (next != shard) {
        shard = next;
        wire = encode_wire(s, cmd, shard);
        submitted_at = exec_->now();
        submit(shard, wire);
        continue;
      }
      ++attempt;
    }
    // Saturating add: near the end of a huge horizon (or with a huge cap)
    // now + deadline must not wrap past kTimeInfinity into the past.
    const sim::Time deadline = retry_deadline(shard, attempt);
    const sim::Time now = exec_->now();
    sim::Select sel(*exec_);
    sel.on(s.signal, seen)
        .until(now > sim::kTimeInfinity - deadline ? sim::kTimeInfinity
                                                   : now + deadline);
    const int which = co_await sel;
    if (s.reply.has_value()) break;
    if (s.bounced) continue;  // handled at the top of the loop
    if (which == sim::Select::kTimedOut) {
      // Same client id, same seq: the state machines' session dedup turns
      // a double commit into one apply + a cached-reply echo. Keyed ops
      // re-route first — the table may have flipped while the reply (or
      // its bounce) was lost to a crash — and a changed route re-signs for
      // the new shard's log (an unchanged one re-submits identical bytes).
      ++retries_;
      ++attempt;
      if (!pinned.has_value()) {
        const std::size_t next = route(cmd.key);
        if (next != shard) {
          shard = next;
          wire = encode_wire(s, cmd, shard);
        }
      }
      submitted_at = exec_->now();
      submit(shard, wire);
    }
  }
  // Feed the deadline model with this op's latency, measured from the last
  // submission (a retry that raced its predecessor's reply under-reports,
  // which the decaying max tolerates).
  observe_latency(shard, exec_->now() - submitted_at);
  s.wait_seq = 0;
  Reply reply = *std::move(s.reply);
  s.reply.reset();
  co_return reply;
}

}  // namespace mnm::kv
