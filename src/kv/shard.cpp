#include "src/kv/shard.hpp"

#include <algorithm>

#include "src/util/serde.hpp"

namespace mnm::kv {

namespace {

inline std::uint64_t fnv1a_u64(std::uint64_t h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= static_cast<std::uint8_t>(v >> (i * 8));
    h *= 0x100000001B3ULL;
  }
  return h;
}

}  // namespace

ShardTable ShardTable::initial(std::size_t shards) {
  ShardTable t;
  const std::size_t n = std::clamp<std::size_t>(shards, 1, kMaxTableGroups);
  t.groups = static_cast<std::uint32_t>(n);
  t.buckets.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    t.buckets[i] = static_cast<std::uint32_t>(i);
  }
  return t;
}

bool valid_shard_table(const ShardTable& t) {
  if (t.buckets.empty() || t.buckets.size() > kMaxTableBuckets) return false;
  if (t.groups == 0 || t.groups > kMaxTableGroups) return false;
  for (const std::uint32_t g : t.buckets) {
    if (g >= t.groups) return false;
  }
  return true;
}

std::uint64_t shard_table_hash(const ShardTable& t) {
  std::uint64_t h = 0xCBF29CE484222325ULL;
  h = fnv1a_u64(h, t.epoch);
  h = fnv1a_u64(h, t.groups);
  h = fnv1a_u64(h, t.buckets.size());
  for (const std::uint32_t b : t.buckets) h = fnv1a_u64(h, b);
  return h;
}

Bytes encode_shard_table(const ShardTable& t) {
  util::Writer w(8 + 4 + 4 + 4 * t.buckets.size());
  w.u64(t.epoch).u32(t.groups).u32(
      static_cast<std::uint32_t>(t.buckets.size()));
  for (const std::uint32_t b : t.buckets) w.u32(b);
  return std::move(w).take();
}

std::optional<ShardTable> decode_shard_table(util::ByteView raw) {
  try {
    util::Reader r(raw);
    ShardTable t;
    t.epoch = r.u64();
    t.groups = r.u32();
    const std::uint32_t count = r.u32();
    if (count == 0 || count > kMaxTableBuckets) return std::nullopt;
    // The count is peer-controlled (tables travel through consensus slots a
    // Byzantine proposer can win): cap the pre-size by the bytes actually
    // present — each bucket costs 4 bytes — so a forged header cannot force
    // an allocation before parsing fails.
    t.buckets.reserve(std::min<std::size_t>(count, r.remaining() / 4));
    for (std::uint32_t i = 0; i < count; ++i) t.buckets.push_back(r.u32());
    r.expect_end();
    if (!valid_shard_table(t)) return std::nullopt;
    return t;
  } catch (const util::SerdeError&) {
    return std::nullopt;
  }
}

}  // namespace mnm::kv
