// kv::StateMachine — the deterministic KV state machine behind every shard
// replica, with exactly-once client sessions.
//
// Applied from smr::Log batches, strictly in slot order, identically on
// every correct replica of a shard. On top of the plain GET/PUT/DEL/CAS
// semantics it keeps one session record per client: (last applied seq,
// cached reply). A command whose seq is ≤ the session's last applied seq is
// a duplicate — it can appear in the log twice when a leader hand-off
// re-proposes an open slot the old leader also won, or when a client retry
// races the original — and its mutation is suppressed; the *cached* reply is
// re-delivered so the retrying client observes the original outcome. That is
// the client-visible exactly-once contract.
//
// The reply sink is how the co-located router learns outcomes: every replica
// applies every command, each calls the sink, and the router keeps the first
// delivery per (client, seq). Everything here is deterministic — iteration
// is over ordered maps, and store_hash() folds store + sessions into one
// fingerprint the determinism suite and the harness agreement check pin.

#pragma once

#include <cstdint>
#include <functional>
#include <map>

#include "src/common.hpp"
#include "src/kv/command.hpp"
#include "src/smr/log.hpp"

namespace mnm::kv {

class StateMachine : public smr::StateMachine {
 public:
  /// Called once per applied command — fresh applies with the new reply,
  /// duplicate applies with the session's cached reply (seq == last applied
  /// only; older duplicates are counted and dropped, no client waits on
  /// them in the closed-loop model).
  using ReplySink =
      std::function<void(ClientId, std::uint64_t seq, const Reply&)>;

  void set_reply_sink(ReplySink sink) { sink_ = std::move(sink); }

  void apply(Slot slot, util::ByteView command) override;

  /// Deterministic full-state codec for log compaction and peer catch-up:
  /// store pairs + session records + op counters, length-prefixed in map
  /// order, with the store_hash() fold embedded as a trailing digest. Equal
  /// states ⇒ identical bytes, so snapshots themselves fingerprint.
  Bytes snapshot() const override;
  /// Total inverse: decodes into temporaries, recomputes the state fold and
  /// checks it against the embedded digest, and only then swaps the decoded
  /// state in (the reply sink is wiring, not state — it survives). Malformed
  /// bytes or a digest mismatch return false with *this untouched. Never
  /// throws — snapshots arrive from unverified peers.
  bool restore(util::ByteView raw) override;

  const std::map<Bytes, Bytes>& store() const { return store_; }

  /// FNV-1a over the store and the session table (last seq + cached reply
  /// per client). Equal hashes across a shard's correct replicas ⇔ equal
  /// stores and equal client-visible histories.
  std::uint64_t store_hash() const;

  /// Effective (non-duplicate, well-formed) operations applied.
  std::uint64_t ops_applied() const { return ops_applied_; }
  /// Duplicate (client, seq) applies whose mutation was suppressed.
  std::uint64_t duplicates_suppressed() const { return duplicates_; }
  /// Commands that failed decode_command (a Byzantine win can put arbitrary
  /// bytes in a slot; they no-op deterministically).
  std::uint64_t malformed() const { return malformed_; }

  /// Last applied request seq for a client (0 = no session).
  std::uint64_t last_seq(ClientId c) const;

 private:
  struct Session {
    std::uint64_t last_seq = 0;
    Reply last_reply;
  };

  Reply apply_op(const Command& c);

  std::map<Bytes, Bytes> store_;
  std::map<ClientId, Session> sessions_;
  ReplySink sink_;
  std::uint64_t ops_applied_ = 0;
  std::uint64_t duplicates_ = 0;
  std::uint64_t malformed_ = 0;
};

}  // namespace mnm::kv
