// kv::StateMachine — the deterministic KV state machine behind every shard
// replica, with exactly-once client sessions and (optionally) partitioned
// bucket ownership for live reconfiguration.
//
// Applied from smr::Log batches, strictly in slot order, identically on
// every correct replica of a shard. On top of the plain GET/PUT/DEL/CAS
// semantics it keeps one session record per client: (last applied seq,
// cached reply). A command whose seq is ≤ the session's last applied seq is
// a duplicate — it can appear in the log twice when a leader hand-off
// re-proposes an open slot the old leader also won, or when a client retry
// races the original — and its mutation is suppressed; the *cached* reply is
// re-delivered so the retrying client observes the original outcome. That is
// the client-visible exactly-once contract.
//
// Partitioned mode (configure_partition, reconfiguration runs only): the
// machine knows which hash buckets its group owns. The reconfig admin
// operations — replicated through the group's own log like any command, so
// every replica transitions at the same slot — move ownership:
//
//   SEAL    marks the moving buckets not-owned; later client ops on them
//           bounce with Status::kWrongEpoch, *without* touching the session
//           (the retried seq must still apply exactly once at the new
//           owner). Sealed pairs stay in the store for the drain.
//   INSTALL imports a digest-checked RangeSnapshot: pairs land in the
//           store, drained sessions merge by max seq (a retry straddling
//           the epoch flip finds its cached reply here), buckets open.
//   PURGE   drops the sealed-away pairs at the source once the destination
//           has installed.
//
// Admin operations ride the Migrator's own session (dedup-covered retries)
// but count in admin_applied(), never ops_applied() — the harness invariant
// Σ per-shard ops_applied == completed client ops holds across epochs.
//
// Transactions (src/txn/): the machine keeps a lock table — key → (txn id,
// owner session, buffered write + its guard). A TxnPrepare locks its key
// and buffers the write (refused with kTxnConflict when the key is locked
// by another transaction or the prepare's optimistic guard misses —
// deterministic and no-wait, so replicas cannot diverge on lock wait
// order); TxnCommit applies the buffered write and releases; TxnAbort
// releases. Plain writes on a locked key also get kTxnConflict; GETs read
// committed state. Txn records are ordinary keyed client ops everywhere
// else: they count in ops_applied(), advance their session (so a
// coordinator's recovery replay deduplicates), bounce on sealed buckets,
// and the lock table travels in snapshot(), export_range() and INSTALL — a
// transaction straddling a live reshard or a crash-and-rejoin commits or
// aborts exactly once.
//
// On top of the (last seq, cached reply) record, each session keeps a
// *prepare mark*: the seq and outcome of the newest TxnPrepare it applied.
// Decision records advance last_seq but never touch the mark, so when a
// recovering coordinator replays a prepare whose seq fell behind last_seq
// (an abort for an earlier key landed on the same shard before the crash),
// the duplicate path still re-delivers the prepare's true accept/refuse
// outcome instead of an ambiguous kStaleDup — the replayed decision is
// guaranteed to equal the crashed attempt's (see txn::Coordinator). The
// mark is replicated state: hashed, snapshotted, drained and merged (by max
// seq) exactly like the session record it extends.
//
// The reply sink is how the co-located router learns outcomes: every replica
// applies every command, each calls the sink, and the router keeps the first
// delivery per (client, seq). Everything here is deterministic — iteration
// is over ordered maps, and store_hash() folds store + sessions (+ the
// partition state in partitioned mode) into one fingerprint the determinism
// suite and the harness agreement check pin.

#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <set>

#include "src/common.hpp"
#include "src/crypto/signature.hpp"
#include "src/kv/command.hpp"
#include "src/kv/range.hpp"
#include "src/kv/shard.hpp"
#include "src/smr/log.hpp"

namespace mnm::kv {

class StateMachine : public smr::StateMachine {
 public:
  /// Called once per applied command — fresh applies with the new reply,
  /// duplicate applies with the session's cached reply (seq == last applied
  /// only; older duplicates are counted and dropped, no client waits on
  /// them in the closed-loop model), bounced applies with a kWrongEpoch
  /// reply that is never cached.
  using ReplySink =
      std::function<void(ClientId, std::uint64_t seq, const Reply&)>;

  void set_reply_sink(ReplySink sink) { sink_ = std::move(sink); }

  /// Enable signed-command verification: every applied command must carry a
  /// signature by its claimed client's identity (client_signer_id) over the
  /// bytes bound to *this* machine's shard group — checked *before* the
  /// session lookup, so a forgery never touches (or creates) a session.
  /// `group` is the Router's backend index for this shard; binding it means
  /// a command validly signed for another shard's log verifies as forged
  /// here (cross-log replay protection). Forged commands are deterministic
  /// no-ops counted in forged(), exactly like malformed ones. Without a
  /// keystore (the default) the machine accepts legacy unsigned wires and
  /// behaves byte-identically to the pre-signing build. The keystore and
  /// group are wiring, not state — not snapshotted, surviving restore().
  void set_keystore(const crypto::KeyStore* ks, std::uint32_t group = 0) {
    keystore_ = ks;
    signing_group_ = group;
  }
  bool signing_enabled() const { return keystore_ != nullptr; }

  /// Allow `signer` to issue admin (SEAL/INSTALL/PURGE) operations. Admin
  /// commands signed by any other identity — including a perfectly valid
  /// *client* signature — are forged: reconfiguration authority is the
  /// migrator's alone. No-op unless signing is enabled.
  void allow_admin_signer(crypto::ProcessId signer) {
    admin_signers_.insert(signer);
  }

  /// Enter partitioned mode as group `group` of `initial` (epoch 0 table):
  /// the machine starts owning exactly the buckets the table assigns it and
  /// honors the reconfig admin operations. Without this call the machine
  /// owns every key and admin operations are rejected — the static-sharding
  /// behavior, byte-for-byte.
  void configure_partition(std::uint32_t group, const ShardTable& initial);

  void apply(Slot slot, util::ByteView command) override;

  /// Deterministic full-state codec for log compaction and peer catch-up:
  /// store pairs + session records + op counters + partition state,
  /// length-prefixed in map order, with the digest fold embedded as a
  /// trailing digest. Equal states ⇒ identical bytes, so snapshots
  /// themselves fingerprint.
  Bytes snapshot() const override;
  /// Total inverse: decodes into temporaries, recomputes the state fold and
  /// checks it against the embedded digest, and only then swaps the decoded
  /// state in (the reply sink is wiring, not state — it survives). Both the
  /// legacy and the signed-mode (forged-field) layouts are accepted
  /// regardless of this machine's own wiring — the digest disambiguates
  /// them, so arming order does not matter. Malformed bytes or a digest
  /// mismatch return false with *this untouched. Never throws — snapshots
  /// arrive from unverified peers.
  bool restore(util::ByteView raw) override;

  /// Drain service for the Migrator (smr::Log serves this over the catch-up
  /// control channel): `request` is an encoded RangeSpec; the reply is an
  /// encoded RangeSnapshot of the sealed range, or empty when this machine
  /// cannot serve it yet (not partitioned, seal not applied, or the listed
  /// buckets still owned).
  Bytes export_range(util::ByteView request) const override;

  const std::map<Bytes, Bytes>& store() const { return store_; }

  /// FNV-1a over the store and the session table (last seq + cached reply
  /// per client), plus the partition state in partitioned mode. Equal
  /// hashes across a shard's correct replicas ⇔ equal stores and equal
  /// client-visible histories.
  std::uint64_t store_hash() const;

  /// Effective (non-duplicate, well-formed) client operations applied.
  std::uint64_t ops_applied() const { return ops_applied_; }
  /// Duplicate (client, seq) applies whose mutation was suppressed.
  std::uint64_t duplicates_suppressed() const { return duplicates_; }
  /// Commands that failed decode_command (a Byzantine win can put arbitrary
  /// bytes in a slot; they no-op deterministically).
  std::uint64_t malformed() const { return malformed_; }
  /// Well-formed commands rejected by signature verification (missing
  /// signature, bad MAC, signer ≠ claimed client, unauthorized admin
  /// signer). Only ever non-zero with signing enabled.
  std::uint64_t forged() const { return forged_; }

  bool partitioned() const { return partitioned_; }
  std::uint32_t group() const { return group_; }
  /// Highest config epoch of any accepted admin operation.
  std::uint64_t config_epoch() const { return cfg_epoch_; }
  /// Buckets currently owned (and the table size they index into).
  std::size_t owned_buckets() const;
  std::size_t table_buckets() const { return owned_.size(); }
  bool owns_bucket(std::size_t b) const {
    return b < owned_.size() && owned_[b] != 0;
  }

  /// Admin (SEAL/INSTALL/PURGE) operations applied — excluded from
  /// ops_applied so the exactly-once rollup sees client ops only.
  std::uint64_t admin_applied() const { return admin_applied_; }
  /// Client ops bounced with kWrongEpoch (sealed or not-yet-open bucket).
  std::uint64_t bounces() const { return bounces_; }
  /// Admin operations rejected (malformed payload, stale epoch, bucket
  /// geometry mismatch) — deterministic no-ops, counted.
  std::uint64_t admin_rejected() const { return admin_rejected_; }
  std::uint64_t keys_imported() const { return keys_imported_; }
  std::uint64_t keys_purged() const { return keys_purged_; }

  /// Last applied request seq for a client (0 = no session).
  std::uint64_t last_seq(ClientId c) const;

  /// One held transaction lock: the pending write buffered at prepare,
  /// applied on commit, discarded on abort. The guard fields record the
  /// prepare's full payload so a re-prepare by the same (txn, owner) is
  /// idempotent only when byte-identical — an equivocating coordinator
  /// re-preparing with different bytes is refused, never silently merged.
  struct Lock {
    std::uint64_t txn = 0;
    ClientId owner = 0;      // coordinator session that prepared it
    std::uint8_t write = 1;  // txn::WriteKind of the buffered mutation
    Bytes value;             // pending kPut payload (empty for kDel)
    bool has_expected = false;  // optimistic guard carried by the prepare
    Bytes expected;             // guard value (empty when !has_expected)
  };

  const std::map<Bytes, Lock>& locks() const { return locks_; }
  /// Locks currently held — zero once every transaction has decided, which
  /// is the harness's residual-lock atomicity check.
  std::uint64_t locks_held() const { return locks_.size(); }
  std::uint64_t txn_prepared() const { return txn_prepared_; }
  std::uint64_t txn_committed() const { return txn_committed_; }
  std::uint64_t txn_aborted() const { return txn_aborted_; }
  /// Prepares refused (lock held / guard miss) + plain writes that hit a
  /// locked key — every kTxnConflict this machine ever returned.
  std::uint64_t txn_conflicts() const { return txn_conflicts_; }
  /// Decisions that found no matching lock (presumed abort / double abort).
  std::uint64_t txn_orphans() const { return txn_orphans_; }
  /// Txn records whose payload failed to decode — deterministic kTxnAborted.
  std::uint64_t txn_rejected() const { return txn_rejected_; }

 private:
  struct Session {
    std::uint64_t last_seq = 0;
    Reply last_reply;
    // Prepare mark (see class comment): seq + outcome of the newest
    // TxnPrepare this session applied. 0 = no prepare ever applied.
    // Decisions never overwrite it, so a replayed prepare's outcome
    // survives later same-session records on this shard.
    std::uint64_t last_prepare_seq = 0;
    Status last_prepare_status = Status::kOk;
  };

  Reply apply_op(const Command& c);
  Reply apply_admin(const Command& c);
  Reply apply_txn(const Command& c);
  /// True once any transaction state exists — counters, live locks, or a
  /// session prepare mark (marks can arrive alone via INSTALL). Gates the
  /// txn hash fold and the snapshot txn section, keeping transaction-free
  /// runs byte-identical to the pre-transaction build.
  bool txn_active() const;
  std::uint64_t txn_fold(std::uint64_t h) const;
  /// Signature check for a decoded command (signing enabled only): true iff
  /// the wire carried a signature, the claimed client id maps to a signer
  /// without wrapping, the signer is the claimed client's identity (and an
  /// allowed admin signer for admin ops), and the MAC verifies over the
  /// canonical bytes domain-tagged and bound to this machine's shard group.
  bool verify_signed(const SignedCommand& sc) const;
  /// Grow owned_ to `table_buckets` by routing-preserving doubling; false
  /// when the target is not reachable (reject the admin op).
  bool resize_owned(std::uint32_t table_buckets);
  std::uint64_t partition_fold(std::uint64_t h) const;

  std::map<Bytes, Bytes> store_;
  std::map<ClientId, Session> sessions_;
  std::map<Bytes, Lock> locks_;
  std::uint64_t txn_prepared_ = 0;
  std::uint64_t txn_committed_ = 0;
  std::uint64_t txn_aborted_ = 0;
  std::uint64_t txn_conflicts_ = 0;
  std::uint64_t txn_orphans_ = 0;
  std::uint64_t txn_rejected_ = 0;
  ReplySink sink_;
  const crypto::KeyStore* keystore_ = nullptr;   // wiring, not state
  std::uint32_t signing_group_ = 0;              // wiring, not state
  std::set<crypto::ProcessId> admin_signers_;    // wiring, not state
  std::uint64_t ops_applied_ = 0;
  std::uint64_t duplicates_ = 0;
  std::uint64_t malformed_ = 0;
  std::uint64_t forged_ = 0;

  // Partition state (reconfiguration runs only; see class comment).
  bool partitioned_ = false;
  std::uint32_t group_ = 0;
  std::uint64_t cfg_epoch_ = 0;
  std::vector<std::uint8_t> owned_;  // owned_[bucket] != 0 ⇔ we serve it
  std::uint64_t admin_applied_ = 0;
  std::uint64_t bounces_ = 0;
  std::uint64_t admin_rejected_ = 0;
  std::uint64_t keys_imported_ = 0;
  std::uint64_t keys_purged_ = 0;
};

}  // namespace mnm::kv
