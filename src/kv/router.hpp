// kv::Router — the client-facing front door of the sharded store.
//
// One Router per cluster (clients are simulated actors, not processes): it
// owns the client sessions, routes every operation to its key's shard, and
// replicates it through that shard's smr::Replica group. Two submission
// modes per shard, matching the engine model:
//
//  * Leader-driven (crash-model engines): enqueue at the Ω-trusted
//    replica's queue. If the leader dies with the command queued (or the
//    command's slot is lost), the reply never arrives; the client's retry —
//    same client id, same seq — re-routes to Ω's new output, and the
//    session dedup in kv::StateMachine makes the duplicate harmless.
//  * Fan-out (`all_propose` engines — Fast & Robust): every correct replica
//    of the shard enqueues the same payload in the same tick, so all of
//    them propose each slot with identical candidates, which is what the
//    memory-routed Byzantine engines require to decide at all.
//
// Submissions batch per shard per tick: the first submit in an instant arms
// a one-yield flush task, so every same-tick operation for a shard packs
// into the same slot payload (up to the replica's batch size) — the closed-
// loop workload's natural batching.
//
// execute() is the exactly-once retry loop: submit, wait on the session's
// reply signal with a deadline, re-submit the same (client, seq) wire on
// timeout (identical bytes while the route holds; a re-route re-signs in
// signed mode).
// Replies come back through the reply sinks of the shard's state machines
// (every replica applies every command); the first delivery per (client,
// seq) wins, later ones are ignored.
//
// The reply deadline is adaptive by default: a static `retry_timeout` tuned
// for a fast shard retry-storms on a slow one (a Byzantine-backed shard
// committing at ~80 time units against the old fixed 64 re-submitted every
// operation, every time). Each shard tracks a decaying max of observed
// op latencies; the deadline is 2× that plus slack, doubled per retry
// attempt (exponential backoff, capped). The static timeout remains the
// cold-start fallback and the fixed deadline when `adaptive_retry` is off.
//
// Reconfiguration (src/reconfig/): when the Router is built with a
// reconfig::TableView, routing consults the newest decided kv::ShardTable
// instead of the static ShardMap. A `Status::kWrongEpoch` reply is not an
// outcome — it means the key's bucket is sealed (mid-migration) or already
// moved: the session marks itself bounced, re-reads the live table, and
// re-submits the same (client, seq) command to the new owner — re-signed
// for that shard's log in signed mode, since signatures bind the target
// group. If the route hasn't
// changed yet (the destination has not opened the bucket), the bounce
// backs off like a timeout so sealed buckets aren't storm-retried. The
// Migrator's own admin sessions (register_admin_client) are exempt: for
// them kWrongEpoch is a real, resolved outcome (a stale seal/install).
//
// When a shard's leader replica is auto-tuning (smr::Tuner), the flush task
// also consults Replica::flush_hold(): while the open batch is short of the
// live batch size and the leader's pipeline is saturated, flushing is
// deferred until an apply frees window capacity (or the leader changes) —
// pack-more beats flush-now exactly when the slot would queue anyway. With
// tuning off the hold is constantly false and the flush keeps the original
// one-yield behavior.

#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <vector>

#include "src/common.hpp"
#include "src/core/omega.hpp"
#include "src/kv/command.hpp"
#include "src/kv/shard.hpp"
#include "src/kv/state_machine.hpp"
#include "src/reconfig/table_view.hpp"
#include "src/sim/executor.hpp"
#include "src/sim/sync.hpp"
#include "src/sim/task.hpp"
#include "src/smr/replica.hpp"

namespace mnm::kv {

/// One shard's replica group, indexed by process (index p - 1; nullptr for
/// Byzantine processes, which run no correct replica).
struct ShardBackend {
  std::vector<smr::Replica*> replicas;
  std::vector<StateMachine*> machines;
  /// All-propose engines: submit to every correct replica (see above).
  bool fan_out = false;
};

struct RouterConfig {
  /// Reply deadline before observing any commit latency (and the fixed
  /// per-attempt deadline when `adaptive_retry` is off — which must exceed
  /// the shard's typical commit latency or every operation retries).
  sim::Time retry_timeout = 64;
  /// Derive the deadline from the shard's observed op latency (decaying
  /// max): 2×observed + 2 slack, doubled per retry attempt.
  bool adaptive_retry = true;
  /// Upper bound on the backed-off deadline.
  sim::Time retry_timeout_cap = 4096;
  /// Signed-command mode: every session registers a client identity here
  /// (client_signer_id) and signs each canonical command; the Router
  /// enables verification on every backend machine (including rebound
  /// ones) and allow-lists admin sessions' identities for SEAL/INSTALL/
  /// PURGE. nullptr (the default) keeps the legacy unsigned wire,
  /// byte-identical to the pre-signing build.
  crypto::KeyStore* keystore = nullptr;
};

class Router {
 public:
  /// Wires itself as the reply sink of every machine in `shards`. With a
  /// TableView the live table routes (and backends beyond the initial
  /// shard count are legal — they are split targets); without one, the
  /// static map routes, exactly as before reconfiguration existed.
  Router(sim::Executor& exec, core::Omega& omega, ShardMap map,
         std::vector<ShardBackend> shards, RouterConfig config,
         reconfig::TableView* view = nullptr);

  /// Allocate a client session (dense ids, 1-based).
  ClientId register_client();
  /// Allocate an admin session (the Migrator's): same exactly-once
  /// machinery, but kWrongEpoch replies resolve instead of bouncing.
  ClientId register_admin_client();

  std::size_t shards() const { return shards_.size(); }
  const ShardMap& shard_map() const { return map_; }
  const reconfig::TableView* view() const { return view_; }

  /// Stamp `cmd` with the client's next seq, route it by key, replicate it,
  /// and resolve with the committed reply. Retries (same seq) on timeout —
  /// exactly-once end to end thanks to the state machines' session dedup.
  sim::Task<Reply> execute(ClientId client, Command cmd);

  /// Like execute(), but pinned to one shard group regardless of the key —
  /// the Migrator's seal/install/purge ops carry their payload in `value`
  /// and must land in a specific group's log.
  sim::Task<Reply> execute_on(ClientId client, std::size_t group, Command cmd);

  /// Coordinator crash recovery (src/txn/): re-submit `cmd` under an
  /// explicit seq instead of the session's next one. Replaying a txn
  /// record's original (client, seq) makes the machines' session dedup
  /// re-deliver the reply the crashed attempt already earned — the replayed
  /// decision is pinned to the original — while a seq the crash never
  /// reached applies fresh. Advances next_seq past `seq`, so the session
  /// continues cleanly after recovery.
  sim::Task<Reply> execute_replay(ClientId client, std::uint64_t seq,
                                  Command cmd);

  /// Seqs stamped so far for a session — what a coordinator records before
  /// its first prepare so recovery can replay the identical wire.
  std::uint64_t next_seq(ClientId client) const {
    return sessions_[client - 1].next_seq;
  }

  /// The Ω-trusted replica of a shard group (first-correct fallback,
  /// nullptr for a wholly faulty shard) — the Migrator drains range
  /// snapshots from here.
  smr::Replica* leader_of(std::size_t shard) {
    return shard < shards_.size() ? leader_replica(shard) : nullptr;
  }

  /// Crash-and-rejoin: point shard `shard`'s backend slot for process `p`
  /// at a fresh replica incarnation (and wire its state machine's reply
  /// sink). The old incarnation stops delivering replies the moment its
  /// machine is unhooked from the backend — the caller keeps it alive but
  /// quarantined. Either pointer may be nullptr (process gone for good).
  void rebind(std::size_t shard, ProcessId p, smr::Replica* replica,
              StateMachine* machine);

  /// Client re-submissions issued after a reply deadline expired.
  std::uint64_t retries() const { return retries_; }
  /// kWrongEpoch replies that re-routed a client op (each is one sealed or
  /// moved bucket hit; the op still applies exactly once).
  std::uint64_t bounces() const { return bounces_; }
  /// Decaying max of observed op latencies for a shard (0 until the first
  /// reply) — what the adaptive deadline is derived from.
  sim::Time observed_latency(std::size_t shard) const {
    return shard_latency_[shard];
  }

 private:
  struct ClientSession {
    explicit ClientSession(sim::Executor& exec) : signal(exec) {}
    std::uint64_t next_seq = 0;
    std::uint64_t wait_seq = 0;  // seq currently awaited; 0 = none
    std::optional<Reply> reply;
    bool bounced = false;  // kWrongEpoch seen for wait_seq; re-route needed
    bool admin = false;    // Migrator session: kWrongEpoch resolves
    /// Signed mode only: this session's signing capability under its
    /// client_signer_id identity.
    std::optional<crypto::Signer> signer;
    sim::VersionSignal signal;
  };

  void deliver(ClientId client, std::uint64_t seq, const Reply& reply);
  void submit(std::size_t shard, const Bytes& wire);
  static sim::Task<void> flush_soon(Router* self, std::size_t shard);
  /// The key's current shard: live table when a view is wired, static map
  /// otherwise.
  std::size_t route(util::ByteView key) const;
  /// The shared retry loop behind execute()/execute_on()/execute_replay().
  /// `pinned` fixes the shard (admin ops); otherwise the key re-routes on
  /// bounce/timeout. `forced_seq` replays an explicit seq (txn recovery)
  /// instead of stamping the next one.
  sim::Task<Reply> run_op(ClientId client, Command cmd,
                          std::optional<std::size_t> pinned,
                          std::optional<std::uint64_t> forced_seq);
  /// The Ω-trusted replica of a shard (first-correct fallback, nullptr for
  /// a wholly faulty shard).
  smr::Replica* leader_replica(std::size_t shard);
  /// Per-attempt reply deadline (adaptive base, exponential backoff,
  /// saturating at retry_timeout_cap even for attempt counts that would
  /// overflow the doubling).
  sim::Time retry_deadline(std::size_t shard, std::size_t attempt) const;
  void observe_latency(std::size_t shard, sim::Time sample);
  /// Wire bytes for `cmd` headed to `shard`: signed form (canonical bytes
  /// + this session's signature bound to the shard's log) in signed mode,
  /// the legacy encoding otherwise.
  Bytes encode_wire(const ClientSession& s, const Command& cmd,
                    std::size_t shard) const;
  /// Enable signed-command verification on `sm` as shard `shard`'s machine
  /// (no-op without a keystore): sets the keystore + signing group and
  /// replays the admin allow-list, so machines created after
  /// register_admin_client (rejoin, split targets) still accept the
  /// Migrator.
  void arm_machine(StateMachine* sm, std::size_t shard) const;

  sim::Executor* exec_;
  core::Omega* omega_;
  ShardMap map_;
  reconfig::TableView* view_;
  std::vector<ShardBackend> shards_;
  RouterConfig config_;
  std::deque<ClientSession> sessions_;  // stable addresses; index = id - 1
  std::vector<crypto::ProcessId> admin_signer_ids_;  // signed mode only
  std::vector<std::uint8_t> flush_armed_;
  std::vector<sim::Time> shard_latency_;  // decaying max per shard
  std::uint64_t retries_ = 0;
  std::uint64_t bounces_ = 0;
};

}  // namespace mnm::kv
