// KV command / reply codec — the replicated operation format of the sharded
// key-value store.
//
// Every client operation (GET/PUT/DEL/CAS) travels through the consensus log
// as one smr batch command, stamped with the issuing client's session id and
// per-client request sequence number. The (client, seq) pair is what makes
// replies exactly-once: a command re-proposed after a leader hand-off, or
// re-submitted by a retrying client, is recognized as a duplicate by
// kv::StateMachine and suppressed (the cached reply is re-delivered instead).
//
// The wire format is the canonical util::Writer encoding; decode_command is
// strict (expect_end) and total — Byzantine proposers can win log slots with
// arbitrary bytes, so malformed commands must decode to nullopt
// deterministically on every correct replica, never throw out of apply.

#pragma once

#include <cstdint>
#include <optional>

#include "src/common.hpp"
#include "src/util/serde.hpp"

namespace mnm::kv {

/// Client-session identifier. Allocated by kv::Router (dense, 1-based);
/// unique per closed-loop client for the lifetime of the run.
using ClientId = std::uint64_t;

enum class Op : std::uint8_t {
  kGet = 1,  // read key
  kPut = 2,  // write key := value
  kDel = 3,  // remove key
  kCas = 4,  // compare-and-swap: key := value iff current == expected

  // Reconfiguration admin operations (src/reconfig/): issued by the
  // Migrator through its own router session — same exactly-once machinery
  // as client ops — with the payload in `value` (a RangeSpec or
  // RangeSnapshot encoding, see src/kv/range.hpp) and an empty key. They
  // mutate the machine's ownership state, not the store's client-visible
  // counters.
  kSeal = 5,     // stop serving the listed buckets (ops on them bounce)
  kInstall = 6,  // import a drained range snapshot and open its buckets
  kPurge = 7,    // drop sealed-away pairs after the destination installed
};

const char* op_name(Op op);

inline bool is_admin(Op op) { return op >= Op::kSeal && op <= Op::kPurge; }

struct Command {
  Op op = Op::kGet;
  ClientId client = 0;
  /// 1-based per-client request number; strictly increasing per session.
  std::uint64_t seq = 0;
  Bytes key;
  Bytes value;     // kPut / kCas: the new value
  Bytes expected;  // kCas only: the required current value (empty = absent)

  bool operator==(const Command&) const = default;
};

enum class Status : std::uint8_t {
  kOk = 1,
  kNotFound = 2,     // GET/DEL of an absent key
  kCasMismatch = 3,  // CAS whose expectation failed
  kWrongEpoch = 4,   // key's bucket is sealed here (or not owned yet): the
                     // client must refetch the shard table and retry — the
                     // reply is NOT recorded in the session, so the retried
                     // seq still applies exactly once at the new owner
};

/// What a committed operation returned. Cached per session by
/// kv::StateMachine so duplicate applies re-deliver the original answer.
struct Reply {
  Status status = Status::kOk;
  Bytes value;  // GET: the read value; CAS mismatch: the actual current value

  bool operator==(const Reply&) const = default;
};

Bytes encode_command(const Command& c);
/// Strict decode; nullopt on any malformed input (bad op byte, truncation,
/// trailing bytes). Never throws, never over-reads.
std::optional<Command> decode_command(util::ByteView raw);

}  // namespace mnm::kv
