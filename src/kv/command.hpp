// KV command / reply codec — the replicated operation format of the sharded
// key-value store.
//
// Every client operation (GET/PUT/DEL/CAS) travels through the consensus log
// as one smr batch command, stamped with the issuing client's session id and
// per-client request sequence number. The (client, seq) pair is what makes
// replies exactly-once: a command re-proposed after a leader hand-off, or
// re-submitted by a retrying client, is recognized as a duplicate by
// kv::StateMachine and suppressed (the cached reply is re-delivered instead).
//
// The wire format is the canonical util::Writer encoding; decode_command is
// strict (expect_end) and total — Byzantine proposers can win log slots with
// arbitrary bytes, so malformed commands must decode to nullopt
// deterministically on every correct replica, never throw out of apply.
//
// Signed commands: a Byzantine slot winner can put a *well-formed* command
// under a victim's (client, seq) into the log — replicas would stay in
// agreement while the victim's session is hijacked. The signed wire closes
// that hole: a marker byte (outside the legacy op range, so the two forms
// are unambiguous), the length-prefixed canonical command bytes, and a
// detached crypto::Signature by the client's identity over those bytes
// (domain-tagged). decode_signed_command accepts both forms and is as
// strict and total as decode_command; verification stays with the state
// machine, which holds the keystore. With signing off the legacy encoding
// is used untouched, byte for byte.

#pragma once

#include <cstdint>
#include <optional>

#include "src/common.hpp"
#include "src/crypto/signature.hpp"
#include "src/util/serde.hpp"

namespace mnm::kv {

/// Client-session identifier. Allocated by kv::Router (dense, 1-based);
/// unique per closed-loop client for the lifetime of the run.
using ClientId = std::uint64_t;

enum class Op : std::uint8_t {
  kGet = 1,  // read key
  kPut = 2,  // write key := value
  kDel = 3,  // remove key
  kCas = 4,  // compare-and-swap: key := value iff current == expected

  // Reconfiguration admin operations (src/reconfig/): issued by the
  // Migrator through its own router session — same exactly-once machinery
  // as client ops — with the payload in `value` (a RangeSpec or
  // RangeSnapshot encoding, see src/kv/range.hpp) and an empty key. They
  // mutate the machine's ownership state, not the store's client-visible
  // counters.
  kSeal = 5,     // stop serving the listed buckets (ops on them bounce)
  kInstall = 6,  // import a drained range snapshot and open its buckets
  kPurge = 7,    // drop sealed-away pairs after the destination installed

  // Cross-shard transaction records (src/txn/): per-key 2PC operations
  // issued by a txn::Coordinator through an ordinary client session. The
  // touched key rides in `key` (so the record routes, bounces and re-signs
  // like any keyed op) and the txn::PrepareRecord / DecisionRecord payload
  // in `value`. They mutate the machine's lock table + pending-write
  // buffer; commit additionally applies the buffered write to the store.
  kTxnPrepare = 8,  // lock key for (txn, session), buffer the write
  kTxnCommit = 9,   // apply the buffered write, release the lock
  kTxnAbort = 10,   // discard the buffered write, release the lock
};

const char* op_name(Op op);

inline bool is_admin(Op op) { return op >= Op::kSeal && op <= Op::kPurge; }
inline bool is_txn(Op op) { return op >= Op::kTxnPrepare && op <= Op::kTxnAbort; }

struct Command {
  Op op = Op::kGet;
  ClientId client = 0;
  /// 1-based per-client request number; strictly increasing per session.
  std::uint64_t seq = 0;
  Bytes key;
  Bytes value;     // kPut / kCas: the new value
  Bytes expected;  // kCas only: the required current value (empty = absent)

  bool operator==(const Command&) const = default;
};

enum class Status : std::uint8_t {
  kOk = 1,
  kNotFound = 2,     // GET/DEL of an absent key
  kCasMismatch = 3,  // CAS whose expectation failed
  kWrongEpoch = 4,   // key's bucket is sealed here (or not owned yet): the
                     // client must refetch the shard table and retry — the
                     // reply is NOT recorded in the session, so the retried
                     // seq still applies exactly once at the new owner
  kStaleDup = 5,     // duplicate of a seq *older* than the session's newest:
                     // only the newest request's reply is cached, so a very
                     // late retry gets this marker instead of someone else's
                     // answer. Never cached in a session, and in the
                     // closed-loop model no client waits on a stale seq.
  kTxnConflict = 6,  // prepare refused: the key is locked by another live
                     // transaction, or the prepare's optimistic guard did
                     // not match the current committed value (the value
                     // rides back like a CAS mismatch). Also returned to a
                     // plain write (PUT/DEL/CAS) that hits a locked key —
                     // the deterministic no-wait rule: a conflict is an
                     // immediate committed outcome, never a block, so
                     // replicas cannot diverge on lock wait order.
  kTxnAborted = 7,   // decision resolved against the transaction: a commit
                     // that found no matching lock (presumed abort — the
                     // lock was never taken here or an abort already
                     // released it), or a txn record whose payload failed
                     // to decode.
};

/// THE reply-caching rule, in one place for every codec that persists
/// session replies (the state-machine snapshot codec and the range-drain
/// SessionRecord): a status is persistable iff it is a committed operation
/// outcome — kOk, kNotFound, kCasMismatch, kTxnConflict, kTxnAborted. The
/// two transport markers are not: kWrongEpoch is a routing bounce that is
/// never recorded in a session (the retried seq must still apply exactly
/// once at the new owner), and kStaleDup is synthesized for late retries of
/// seqs whose cache slot was already overwritten. Decoders reject them —
/// bytes claiming to have cached one were not produced by an honest
/// machine.
inline bool status_persistable(std::uint8_t status) {
  switch (static_cast<Status>(status)) {
    case Status::kOk:
    case Status::kNotFound:
    case Status::kCasMismatch:
    case Status::kTxnConflict:
    case Status::kTxnAborted:
      return true;
    case Status::kWrongEpoch:
    case Status::kStaleDup:
      return false;
  }
  return false;
}

/// What a committed operation returned. Cached per session by
/// kv::StateMachine so duplicate applies re-deliver the original answer.
struct Reply {
  Status status = Status::kOk;
  Bytes value;  // GET: the read value; CAS mismatch: the actual current value

  bool operator==(const Reply&) const = default;
};

Bytes encode_command(const Command& c);
/// Strict decode; nullopt on any malformed input (bad op byte, truncation,
/// trailing bytes). Never throws, never over-reads.
std::optional<Command> decode_command(util::ByteView raw);

// --- Client-signed commands. ---

/// First wire byte of the signed form. Legacy commands start with their op
/// byte (1..10), so the two encodings are unambiguous and old decoders
/// reject signed wires as malformed instead of misparsing them.
inline constexpr std::uint8_t kSignedCommandMarker = 0x53;  // 'S'

/// The signing identity a client session uses in the shared crypto::KeyStore.
/// Replica processes occupy the low ids (1..n); clients live in a disjoint
/// space, so a Byzantine *replica*'s own signer can never collide with any
/// client identity.
inline constexpr crypto::ProcessId kClientSignerBase = 0x40000000;

/// Largest client id whose signer identity is representable without wrapping
/// the 32-bit ProcessId space. The claimed client id on the wire is 64-bit
/// and attacker-controlled: past this bound the base+client sum would wrap
/// back into (or truncate onto) the replica id range, letting a Byzantine
/// replica pick a claimed client whose mapped signer is *itself* — so
/// verification must reject any claim above it before mapping.
inline constexpr ClientId kMaxSignableClient =
    0xFFFFFFFFULL - kClientSignerBase;

inline bool client_signer_representable(ClientId client) {
  return client <= kMaxSignableClient;
}
/// Precondition: client_signer_representable(client).
inline crypto::ProcessId client_signer_id(ClientId client) {
  return kClientSignerBase + static_cast<crypto::ProcessId>(client);
}

/// Domain-tagged message a client signs: "kvc1" + the target shard group id
/// + the canonical command bytes. The tag keeps client-command signatures
/// unmixable with the consensus-layer signing domains (NEB slots, Cheap
/// Quorum blobs); the group id binds the signature to one shard's log, so a
/// Byzantine replica (a member of every group) cannot replay a victim's
/// validly-signed command from shard A into shard B's log and advance the
/// victim's session there. A re-route (bounce, post-timeout table flip)
/// re-signs for the new group.
Bytes command_signing_bytes(std::uint32_t group,
                            util::ByteView canonical_command);

/// Signed wire: marker byte + length-prefixed canonical command bytes +
/// detached signature over command_signing_bytes(body).
Bytes encode_signed_command(util::ByteView canonical_command,
                            const crypto::Signature& sig);

/// A decoded command plus its authentication evidence. `body` keeps the
/// exact canonical bytes the signature covers, so verification needs no
/// re-encode.
struct SignedCommand {
  Command cmd;
  bool has_sig = false;   // false: legacy unsigned wire
  crypto::Signature sig;  // valid only when has_sig
  Bytes body;             // canonical command bytes (signed form only)
};

/// Total decode of either wire form. Strict end to end: the signed form
/// requires a 32-byte MAC, a strictly-decodable inner command and no
/// trailing bytes; the legacy form is decode_command exactly. Never throws,
/// never over-reads — slot payloads are attacker-controlled.
std::optional<SignedCommand> decode_signed_command(util::ByteView raw);

}  // namespace mnm::kv
