// kv::ShardMap / kv::ShardTable — routing policy of the sharded store.
//
// Two routing models share one hash (FNV-1a over the key bytes):
//
//  * ShardMap — static hash partitioning, shard i owns every key whose hash
//    maps to i mod N. The frozen-at-construction model every pre-reconfig
//    run keeps, byte-for-byte.
//  * ShardTable — the *versioned* model behind dynamic reconfiguration
//    (src/reconfig/): an epoch-stamped bucket→group table. A key hashes to
//    bucket h mod B and the table names the owning consensus group. The
//    initial table with N groups has N buckets owned identity-style, so it
//    routes exactly like ShardMap(N); a split doubles the bucket array
//    (new[i] = old[i mod B], which provably preserves routing: (h mod 2B)
//    mod B == h mod B) and then reassigns half of the source group's
//    buckets — one more hash bit — to the destination group.
//
// Each shard/group is one independent consensus group (its own engine
// instances per replica, its own SlotTransportHub slot namespace over a
// TransportMux sub, its own slot-prefixed memory regions via shard_ns), so
// any of the seven paper protocols can back any shard and groups commit in
// parallel. Everything routing-side funnels through shard_of so the policy
// has exactly one home; ShardTable lookups take the table by const
// reference — the table is never copied on the per-op hot path.
//
// The ShardTable codec is strict and total (tables travel through the
// config group's consensus log and through snapshots): malformed bytes
// decode to nullopt deterministically, counts are capped and pre-sizing is
// byte-bounded, trailing garbage is rejected.

#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "src/common.hpp"

namespace mnm::kv {

class ShardMap {
 public:
  explicit ShardMap(std::size_t shards) : shards_(shards == 0 ? 1 : shards) {}

  std::size_t shards() const { return shards_; }

  static std::uint64_t key_hash(util::ByteView key) {
    std::uint64_t h = 0xCBF29CE484222325ULL;
    for (const std::uint8_t b : key) {
      h ^= b;
      h *= 0x100000001B3ULL;
    }
    return h;
  }

  std::size_t shard_of(util::ByteView key) const {
    return static_cast<std::size_t>(key_hash(key) % shards_);
  }

 private:
  std::size_t shards_;
};

/// Caps on the versioned table: bucket counts double on single-bucket
/// splits, so 4096 buckets supports 12 doublings from one shard; groups are
/// bounded by the TransportMux tag byte (shard groups + the config group
/// must fit in 256 tags).
inline constexpr std::size_t kMaxTableBuckets = 1 << 12;
inline constexpr std::size_t kMaxTableGroups = 256;

/// Epoch-stamped bucket→group routing table. Value type; the epoch
/// increments once per accepted ConfigChange (src/reconfig/), never
/// in-place — routing at epoch e is immutable history.
struct ShardTable {
  std::uint64_t epoch = 0;
  /// Number of consensus groups the table can name (ids [0, groups)); a
  /// group may own zero buckets (pre-activation destination of a split, or
  /// a merged-away source).
  std::uint32_t groups = 1;
  /// buckets[i] = owning group of every key with key_hash(key) % size == i.
  std::vector<std::uint32_t> buckets;

  /// The table that routes exactly like ShardMap(shards): `shards` buckets,
  /// bucket i owned by group i, epoch 0.
  static ShardTable initial(std::size_t shards);

  bool operator==(const ShardTable&) const = default;
};

/// Structural validity: at least one bucket, counts within caps, every
/// bucket names a group < groups. Decoders reject tables that fail this.
bool valid_shard_table(const ShardTable& t);

/// Hash bucket of `key` under `t` (t.buckets must be non-empty).
inline std::size_t bucket_of(const ShardTable& t, util::ByteView key) {
  return static_cast<std::size_t>(ShardMap::key_hash(key) %
                                  t.buckets.size());
}

/// Owning group of `key` under `t` — THE routing policy point of the
/// versioned model. Takes the table by const reference: no copies on the
/// per-op hot path.
inline std::size_t shard_of(const ShardTable& t, util::ByteView key) {
  return static_cast<std::size_t>(t.buckets[bucket_of(t, key)]);
}

/// Deterministic fingerprint of a table (epoch + groups + bucket array),
/// FNV-1a folded — what the config-group agreement check and the
/// determinism suite pin.
std::uint64_t shard_table_hash(const ShardTable& t);

Bytes encode_shard_table(const ShardTable& t);
/// Strict total decode: nullopt on truncation, trailing bytes, counts over
/// the caps, or a bucket naming a group ≥ groups. Pre-sizing is bounded by
/// the bytes actually present. Never throws.
std::optional<ShardTable> decode_shard_table(util::ByteView raw);

/// Per-shard memory-region namespace: "g<group>/<base>". Composed with
/// core::slot_ns by each shard's SlotRegions pool, a shard's slot-s regions
/// live under "s<slot>/g<group>/<base>" — disjoint across groups on the
/// same memories, exactly like the per-slot prefixes within a group.
inline std::string shard_ns(std::size_t group, const char* base) {
  std::string out;
  out.reserve(24);
  out += 'g';
  out += std::to_string(group);
  out += '/';
  out += base;
  return out;
}

/// The config group's region namespace: "cfg/<base>" — disjoint from every
/// "g<i>/" shard namespace on the same memories.
inline std::string config_ns(const char* base) {
  std::string out;
  out.reserve(16);
  out += "cfg/";
  out += base;
  return out;
}

}  // namespace mnm::kv
