// kv::ShardMap — static hash partitioning of the key space.
//
// Shard i owns every key whose FNV-1a hash maps to i mod N. Each shard is
// one independent consensus group (its own engine instances per replica,
// its own SlotTransportHub slot namespace over a TransportMux sub, its own
// slot-prefixed memory regions via shard_ns), so any of the seven paper
// protocols can back any shard and groups commit in parallel. Static for
// now — reconfiguration/rebalancing is a future PR; everything routing-side
// funnels through shard_of so the policy has exactly one home.

#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "src/common.hpp"

namespace mnm::kv {

class ShardMap {
 public:
  explicit ShardMap(std::size_t shards) : shards_(shards == 0 ? 1 : shards) {}

  std::size_t shards() const { return shards_; }

  static std::uint64_t key_hash(util::ByteView key) {
    std::uint64_t h = 0xCBF29CE484222325ULL;
    for (const std::uint8_t b : key) {
      h ^= b;
      h *= 0x100000001B3ULL;
    }
    return h;
  }

  std::size_t shard_of(util::ByteView key) const {
    return static_cast<std::size_t>(key_hash(key) % shards_);
  }

 private:
  std::size_t shards_;
};

/// Per-shard memory-region namespace: "g<group>/<base>". Composed with
/// core::slot_ns by each shard's SlotRegions pool, a shard's slot-s regions
/// live under "s<slot>/g<group>/<base>" — disjoint across groups on the
/// same memories, exactly like the per-slot prefixes within a group.
inline std::string shard_ns(std::size_t group, const char* base) {
  std::string out;
  out.reserve(24);
  out += 'g';
  out += std::to_string(group);
  out += '/';
  out += base;
  return out;
}

}  // namespace mnm::kv
