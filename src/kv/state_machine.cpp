#include "src/kv/state_machine.hpp"

#include <utility>

#include "src/util/serde.hpp"

namespace mnm::kv {

namespace {

inline std::uint64_t fnv1a(std::uint64_t h, util::ByteView bytes) {
  for (const std::uint8_t b : bytes) {
    h ^= b;
    h *= 0x100000001B3ULL;
  }
  return h;
}

inline std::uint64_t fnv1a_u64(std::uint64_t h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= static_cast<std::uint8_t>(v >> (i * 8));
    h *= 0x100000001B3ULL;
  }
  return h;
}

}  // namespace

void StateMachine::apply(Slot, util::ByteView command) {
  const std::optional<Command> c = decode_command(command);
  if (!c.has_value()) {
    ++malformed_;  // no-op, deterministically, on every correct replica
    return;
  }
  Session& session = sessions_[c->client];
  if (c->seq <= session.last_seq) {
    ++duplicates_;
    // Re-deliver the cached outcome for the newest request only: in the
    // closed-loop session model that is the only seq a client can still be
    // waiting on.
    if (c->seq == session.last_seq && sink_) {
      sink_(c->client, c->seq, session.last_reply);
    }
    return;
  }
  const Reply reply = apply_op(*c);
  session.last_seq = c->seq;
  session.last_reply = reply;
  ++ops_applied_;
  if (sink_) sink_(c->client, c->seq, reply);
}

Reply StateMachine::apply_op(const Command& c) {
  Reply r;
  switch (c.op) {
    case Op::kGet: {
      const auto it = store_.find(c.key);
      if (it == store_.end()) {
        r.status = Status::kNotFound;
      } else {
        r.value = it->second;
      }
      break;
    }
    case Op::kPut:
      store_[c.key] = c.value;
      break;
    case Op::kDel:
      if (store_.erase(c.key) == 0) r.status = Status::kNotFound;
      break;
    case Op::kCas: {
      const auto it = store_.find(c.key);
      const Bytes& current = it == store_.end() ? util::bottom() : it->second;
      if (current == c.expected) {
        store_[c.key] = c.value;
      } else {
        r.status = Status::kCasMismatch;
        r.value = current;
      }
      break;
    }
  }
  return r;
}

std::uint64_t StateMachine::store_hash() const {
  std::uint64_t h = 0xCBF29CE484222325ULL;
  for (const auto& [k, v] : store_) {
    h = fnv1a(h, k);
    h = fnv1a(h, v);
  }
  for (const auto& [client, s] : sessions_) {
    h = fnv1a_u64(h, client);
    h = fnv1a_u64(h, s.last_seq);
    h = fnv1a_u64(h, static_cast<std::uint64_t>(s.last_reply.status));
    h = fnv1a(h, s.last_reply.value);
  }
  h = fnv1a_u64(h, ops_applied_);
  return h;
}

Bytes StateMachine::snapshot() const {
  util::Writer w(64);
  w.u32(static_cast<std::uint32_t>(store_.size()));
  for (const auto& [k, v] : store_) w.bytes(k).bytes(v);
  w.u32(static_cast<std::uint32_t>(sessions_.size()));
  for (const auto& [client, s] : sessions_) {
    w.u64(client)
        .u64(s.last_seq)
        .u8(static_cast<std::uint8_t>(s.last_reply.status))
        .bytes(s.last_reply.value);
  }
  w.u64(ops_applied_).u64(duplicates_).u64(malformed_);
  // Trailing digest: the store_hash() fold extended over the two counters
  // the replicated-state hash leaves out, so the digest covers every byte an
  // installer will adopt and any corruption fails closed on restore.
  w.u64(fnv1a_u64(fnv1a_u64(store_hash(), duplicates_), malformed_));
  return std::move(w).take();
}

bool StateMachine::restore(util::ByteView raw) {
  std::map<Bytes, Bytes> store;
  std::map<ClientId, Session> sessions;
  std::uint64_t ops = 0, dups = 0, malformed = 0, claimed = 0;
  try {
    util::Reader r(raw);
    const std::uint32_t nkeys = r.u32();
    for (std::uint32_t i = 0; i < nkeys; ++i) {
      Bytes k = r.bytes();
      Bytes v = r.bytes();
      // Map order is the codec's canonical order: out-of-order or duplicate
      // keys mean the bytes were not produced by snapshot().
      if (!store.emplace(std::move(k), std::move(v)).second) return false;
    }
    const std::uint32_t nsessions = r.u32();
    for (std::uint32_t i = 0; i < nsessions; ++i) {
      const ClientId client = r.u64();
      Session s;
      s.last_seq = r.u64();
      const std::uint8_t status = r.u8();
      if (status < static_cast<std::uint8_t>(Status::kOk) ||
          status > static_cast<std::uint8_t>(Status::kCasMismatch)) {
        return false;
      }
      s.last_reply.status = static_cast<Status>(status);
      s.last_reply.value = r.bytes();
      if (!sessions.emplace(client, std::move(s)).second) return false;
    }
    ops = r.u64();
    dups = r.u64();
    malformed = r.u64();
    claimed = r.u64();
    r.expect_end();
  } catch (const util::SerdeError&) {
    return false;
  }
  // Recompute the fold over the decoded state and compare against the
  // embedded digest — a corrupted or forged snapshot fails closed here.
  std::uint64_t h = 0xCBF29CE484222325ULL;
  for (const auto& [k, v] : store) {
    h = fnv1a(h, k);
    h = fnv1a(h, v);
  }
  for (const auto& [client, s] : sessions) {
    h = fnv1a_u64(h, client);
    h = fnv1a_u64(h, s.last_seq);
    h = fnv1a_u64(h, static_cast<std::uint64_t>(s.last_reply.status));
    h = fnv1a(h, s.last_reply.value);
  }
  h = fnv1a_u64(h, ops);
  h = fnv1a_u64(h, dups);
  h = fnv1a_u64(h, malformed);
  if (h != claimed) return false;
  store_ = std::move(store);
  sessions_ = std::move(sessions);
  ops_applied_ = ops;
  duplicates_ = dups;
  malformed_ = malformed;
  return true;
}

std::uint64_t StateMachine::last_seq(ClientId c) const {
  const auto it = sessions_.find(c);
  return it == sessions_.end() ? 0 : it->second.last_seq;
}

}  // namespace mnm::kv
