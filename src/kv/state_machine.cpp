#include "src/kv/state_machine.hpp"

namespace mnm::kv {

namespace {

inline std::uint64_t fnv1a(std::uint64_t h, util::ByteView bytes) {
  for (const std::uint8_t b : bytes) {
    h ^= b;
    h *= 0x100000001B3ULL;
  }
  return h;
}

inline std::uint64_t fnv1a_u64(std::uint64_t h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= static_cast<std::uint8_t>(v >> (i * 8));
    h *= 0x100000001B3ULL;
  }
  return h;
}

}  // namespace

void StateMachine::apply(Slot, util::ByteView command) {
  const std::optional<Command> c = decode_command(command);
  if (!c.has_value()) {
    ++malformed_;  // no-op, deterministically, on every correct replica
    return;
  }
  Session& session = sessions_[c->client];
  if (c->seq <= session.last_seq) {
    ++duplicates_;
    // Re-deliver the cached outcome for the newest request only: in the
    // closed-loop session model that is the only seq a client can still be
    // waiting on.
    if (c->seq == session.last_seq && sink_) {
      sink_(c->client, c->seq, session.last_reply);
    }
    return;
  }
  const Reply reply = apply_op(*c);
  session.last_seq = c->seq;
  session.last_reply = reply;
  ++ops_applied_;
  if (sink_) sink_(c->client, c->seq, reply);
}

Reply StateMachine::apply_op(const Command& c) {
  Reply r;
  switch (c.op) {
    case Op::kGet: {
      const auto it = store_.find(c.key);
      if (it == store_.end()) {
        r.status = Status::kNotFound;
      } else {
        r.value = it->second;
      }
      break;
    }
    case Op::kPut:
      store_[c.key] = c.value;
      break;
    case Op::kDel:
      if (store_.erase(c.key) == 0) r.status = Status::kNotFound;
      break;
    case Op::kCas: {
      const auto it = store_.find(c.key);
      const Bytes& current = it == store_.end() ? util::bottom() : it->second;
      if (current == c.expected) {
        store_[c.key] = c.value;
      } else {
        r.status = Status::kCasMismatch;
        r.value = current;
      }
      break;
    }
  }
  return r;
}

std::uint64_t StateMachine::store_hash() const {
  std::uint64_t h = 0xCBF29CE484222325ULL;
  for (const auto& [k, v] : store_) {
    h = fnv1a(h, k);
    h = fnv1a(h, v);
  }
  for (const auto& [client, s] : sessions_) {
    h = fnv1a_u64(h, client);
    h = fnv1a_u64(h, s.last_seq);
    h = fnv1a_u64(h, static_cast<std::uint64_t>(s.last_reply.status));
    h = fnv1a(h, s.last_reply.value);
  }
  h = fnv1a_u64(h, ops_applied_);
  return h;
}

std::uint64_t StateMachine::last_seq(ClientId c) const {
  const auto it = sessions_.find(c);
  return it == sessions_.end() ? 0 : it->second.last_seq;
}

}  // namespace mnm::kv
