#include "src/kv/state_machine.hpp"

#include <utility>

#include "src/txn/record.hpp"
#include "src/util/serde.hpp"

namespace mnm::kv {

namespace {

inline std::uint64_t fnv1a(std::uint64_t h, util::ByteView bytes) {
  for (const std::uint8_t b : bytes) {
    h ^= b;
    h *= 0x100000001B3ULL;
  }
  return h;
}

inline std::uint64_t fnv1a_u64(std::uint64_t h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= static_cast<std::uint8_t>(v >> (i * 8));
    h *= 0x100000001B3ULL;
  }
  return h;
}

}  // namespace

void StateMachine::configure_partition(std::uint32_t group,
                                       const ShardTable& initial) {
  partitioned_ = true;
  group_ = group;
  cfg_epoch_ = initial.epoch;
  owned_.assign(initial.buckets.size(), 0);
  for (std::size_t i = 0; i < initial.buckets.size(); ++i) {
    if (initial.buckets[i] == group) owned_[i] = 1;
  }
}

std::size_t StateMachine::owned_buckets() const {
  std::size_t n = 0;
  for (const std::uint8_t o : owned_) n += o;
  return n;
}

bool StateMachine::resize_owned(std::uint32_t table_buckets) {
  if (owned_.empty()) return false;
  if (table_buckets < owned_.size()) return false;
  std::size_t b = owned_.size();
  while (b < table_buckets) b *= 2;  // routing-preserving doubling only
  if (b != table_buckets) return false;
  while (owned_.size() < table_buckets) {
    const std::size_t half = owned_.size();
    owned_.resize(2 * half);
    for (std::size_t i = 0; i < half; ++i) owned_[half + i] = owned_[i];
  }
  return true;
}

bool StateMachine::verify_signed(const SignedCommand& sc) const {
  if (!sc.has_sig) return false;
  // The claimed client id is attacker-controlled 64-bit input: past the
  // representable range the base+client mapping would wrap the 32-bit
  // signer space, letting a Byzantine replica claim a client whose mapped
  // identity is its *own* signer. Reject before mapping.
  if (!client_signer_representable(sc.cmd.client)) return false;
  // The signer must be the claimed client's own identity — a valid
  // signature under identity A on a command claiming client B is a hijack
  // attempt, not a misconfiguration.
  const crypto::ProcessId expected = client_signer_id(sc.cmd.client);
  if (sc.sig.signer != expected) return false;
  // Admin authority is allow-listed on top: a perfectly valid client
  // signature on a SEAL/INSTALL/PURGE is still forged unless that identity
  // was granted reconfiguration authority.
  if (is_admin(sc.cmd.op) &&
      admin_signers_.find(expected) == admin_signers_.end()) {
    return false;
  }
  // The signed bytes bind the shard group: a command signed for another
  // group's log — replayed here by a Byzantine member of both groups —
  // fails verification instead of advancing the victim's session.
  return keystore_->valid(command_signing_bytes(signing_group_, sc.body),
                          sc.sig);
}

void StateMachine::apply(Slot, util::ByteView command) {
  const std::optional<SignedCommand> sc = decode_signed_command(command);
  if (!sc.has_value()) {
    ++malformed_;  // no-op, deterministically, on every correct replica
    return;
  }
  if (keystore_ != nullptr && !verify_signed(*sc)) {
    // Forged: well-formed bytes that fail authentication. Rejected *before*
    // the session lookup — a forgery must never create a session nor
    // advance last_seq, or the victim's own retries would deduplicate
    // against the attacker's write. Deterministic no-op, mirroring the
    // malformed rule: never a throw out of apply.
    ++forged_;
    return;
  }
  const Command* c = &sc->cmd;
  Session& session = sessions_[c->client];
  if (c->seq <= session.last_seq) {
    ++duplicates_;
    // Only the newest request's reply is cached. Re-deliver it for a
    // duplicate of exactly that seq — in the closed-loop session model that
    // is the only seq a client can still be waiting on. One more seq stays
    // answerable: the session's newest TxnPrepare keeps its outcome in the
    // prepare mark, which decision records never overwrite — a recovering
    // coordinator replaying its record stream re-reads that prepare's true
    // accept/refuse outcome even after later abort records advanced
    // last_seq on this shard (re-deriving it from kStaleDup alone would
    // mistake a refused prepare for an accepted one and partially commit).
    // Any *other* stale duplicate (seq < last_seq) must not observe someone
    // else's answer, so it gets an explicit kStaleDup marker instead.
    if (sink_) {
      if (c->seq == session.last_seq) {
        sink_(c->client, c->seq, session.last_reply);
      } else if (session.last_prepare_seq != 0 &&
                 c->seq == session.last_prepare_seq) {
        Reply mark;
        mark.status = session.last_prepare_status;
        sink_(c->client, c->seq, mark);
      } else {
        Reply stale;
        stale.status = Status::kStaleDup;
        sink_(c->client, c->seq, stale);
      }
    }
    return;
  }
  if (is_admin(c->op)) {
    const Reply reply = apply_admin(*c);
    session.last_seq = c->seq;
    session.last_reply = reply;
    ++admin_applied_;
    if (sink_) sink_(c->client, c->seq, reply);
    return;
  }
  if (partitioned_ && !owns_bucket(ShardMap::key_hash(c->key) % owned_.size())) {
    // Sealed or not-yet-installed bucket: bounce. The session is NOT
    // touched — the client re-routes and the same seq must apply fresh,
    // exactly once, at the owner.
    ++bounces_;
    if (sink_) {
      Reply bounce;
      bounce.status = Status::kWrongEpoch;
      sink_(c->client, c->seq, bounce);
    }
    return;
  }
  // Txn records are client ops: they count in ops_applied_ and advance the
  // session exactly like GET/PUT — that session advance is what makes a
  // coordinator's recovery replay re-deliver the original outcomes.
  const Reply reply = is_txn(c->op) ? apply_txn(*c) : apply_op(*c);
  session.last_seq = c->seq;
  session.last_reply = reply;
  if (c->op == Op::kTxnPrepare) {
    // Record the prepare mark (replicated state; see class comment). Every
    // prepare outcome is a committed, persistable status — kOk,
    // kTxnConflict or kTxnAborted — so caching it here is as safe as the
    // last_reply cache it extends.
    session.last_prepare_seq = c->seq;
    session.last_prepare_status = reply.status;
  }
  ++ops_applied_;
  if (sink_) sink_(c->client, c->seq, reply);
}

Reply StateMachine::apply_op(const Command& c) {
  Reply r;
  // A plain write on a locked key is a conflict, committed immediately — the
  // same deterministic no-wait rule as a refused prepare. Reads are not
  // blocked: GET returns the committed value (buffered txn writes are
  // invisible until commit).
  if (!locks_.empty() && c.op != Op::kGet &&
      locks_.find(c.key) != locks_.end()) {
    ++txn_conflicts_;
    r.status = Status::kTxnConflict;
    return r;
  }
  switch (c.op) {
    case Op::kGet: {
      const auto it = store_.find(c.key);
      if (it == store_.end()) {
        r.status = Status::kNotFound;
      } else {
        r.value = it->second;
      }
      break;
    }
    case Op::kPut:
      store_[c.key] = c.value;
      break;
    case Op::kDel:
      if (store_.erase(c.key) == 0) r.status = Status::kNotFound;
      break;
    case Op::kCas: {
      const auto it = store_.find(c.key);
      const Bytes& current = it == store_.end() ? util::bottom() : it->second;
      if (current == c.expected) {
        store_[c.key] = c.value;
      } else {
        r.status = Status::kCasMismatch;
        r.value = current;
      }
      break;
    }
    default:
      break;  // admin/txn ops never reach here (apply() dispatches them)
  }
  return r;
}

Reply StateMachine::apply_txn(const Command& c) {
  Reply r;
  switch (c.op) {
    case Op::kTxnPrepare: {
      const std::optional<txn::PrepareRecord> rec = txn::decode_prepare(c.value);
      if (!rec.has_value()) {
        // Undecodable payload: the transaction can never commit here, so the
        // deterministic answer is an abort outcome, cached like any reply.
        ++txn_rejected_;
        r.status = Status::kTxnAborted;
        return r;
      }
      const auto it = locks_.find(c.key);
      if (it != locks_.end()) {
        if (it->second.txn == rec->txn && it->second.owner == c.client) {
          const Lock& held = it->second;
          if (static_cast<std::uint8_t>(rec->write) != held.write ||
              rec->value != held.value ||
              rec->has_expected != held.has_expected ||
              (rec->has_expected && rec->expected != held.expected)) {
            // Same (txn, owner) but a different payload: a buggy or
            // equivocating coordinator re-preparing with new bytes. Only a
            // byte-identical re-prepare (a recovery replay re-driving the
            // original record) is idempotent — refuse anything else so the
            // held buffered write is never silently swapped, and the sender
            // never gets success for bytes that will not commit.
            ++txn_conflicts_;
            r.status = Status::kTxnConflict;
            return r;
          }
          // Our own lock again, byte-identical — a recovery replay
          // re-driving the prepare under a fresh seq (the cached-seq path
          // never reaches here). Idempotent success keeps the replayed
          // decision identical.
          return r;
        }
        // Locked by another live transaction: refuse now, never wait. Lock
        // acquisition order is log order, identical on every replica.
        ++txn_conflicts_;
        r.status = Status::kTxnConflict;
        return r;
      }
      if (rec->has_expected) {
        // Optimistic guard: the coordinator read this key before preparing;
        // if someone committed in between, the transfer would be a lost
        // update — refuse like a CAS miss, current value riding back.
        const auto sit = store_.find(c.key);
        const Bytes& current =
            sit == store_.end() ? util::bottom() : sit->second;
        if (current != rec->expected) {
          ++txn_conflicts_;
          r.status = Status::kTxnConflict;
          r.value = current;
          return r;
        }
      }
      Lock& l = locks_[c.key];
      l.txn = rec->txn;
      l.owner = c.client;
      l.write = static_cast<std::uint8_t>(rec->write);
      l.value = rec->value;
      l.has_expected = rec->has_expected;
      l.expected = rec->has_expected ? rec->expected : Bytes{};
      ++txn_prepared_;
      return r;
    }
    case Op::kTxnCommit: {
      const std::optional<txn::DecisionRecord> rec =
          txn::decode_decision(c.value);
      if (!rec.has_value()) {
        ++txn_rejected_;
        r.status = Status::kTxnAborted;
        return r;
      }
      const auto it = locks_.find(c.key);
      if (it == locks_.end() || it->second.txn != rec->txn ||
          it->second.owner != c.client) {
        // Presumed abort: no matching lock means the prepare never landed
        // here (or an abort already released it), so the commit cannot
        // apply. A correct coordinator only sends commit after every
        // prepare returned kOk, so honest runs never take this path.
        ++txn_orphans_;
        r.status = Status::kTxnAborted;
        return r;
      }
      if (it->second.write == static_cast<std::uint8_t>(txn::WriteKind::kDel)) {
        store_.erase(c.key);
      } else {
        store_[c.key] = it->second.value;
      }
      locks_.erase(it);
      ++txn_committed_;
      return r;
    }
    case Op::kTxnAbort: {
      const std::optional<txn::DecisionRecord> rec =
          txn::decode_decision(c.value);
      if (!rec.has_value()) {
        ++txn_rejected_;
        r.status = Status::kTxnAborted;
        return r;
      }
      const auto it = locks_.find(c.key);
      if (it != locks_.end() && it->second.txn == rec->txn &&
          it->second.owner == c.client) {
        locks_.erase(it);
        ++txn_aborted_;
      } else {
        // Abort is idempotent: releasing a lock that is not there (never
        // taken, or already released) still succeeds — presumed abort
        // means absence of a lock IS the aborted state.
        ++txn_orphans_;
      }
      return r;
    }
    default:
      return r;  // unreachable: apply() dispatches is_txn ops only
  }
}

Reply StateMachine::apply_admin(const Command& c) {
  Reply rejected;
  rejected.status = Status::kWrongEpoch;
  if (!partitioned_) {
    ++admin_rejected_;
    return rejected;
  }
  switch (c.op) {
    case Op::kSeal: {
      const std::optional<RangeSpec> spec = decode_range_spec(c.value);
      if (!spec.has_value() || spec->epoch < cfg_epoch_ ||
          !resize_owned(spec->table_buckets)) {
        ++admin_rejected_;
        return rejected;
      }
      cfg_epoch_ = spec->epoch;
      for (const std::uint32_t b : spec->buckets) owned_[b] = 0;
      break;
    }
    case Op::kInstall: {
      const std::optional<RangeSnapshot> snap = decode_range_snapshot(c.value);
      if (!snap.has_value() || snap->spec.epoch < cfg_epoch_ ||
          !resize_owned(snap->spec.table_buckets)) {
        ++admin_rejected_;
        return rejected;
      }
      cfg_epoch_ = snap->spec.epoch;
      for (const auto& [k, v] : snap->pairs) store_[k] = v;
      keys_imported_ += snap->pairs.size();
      // Merge the drained sessions by max seq: the machine holding the
      // newest seq for a client also holds the only reply that client can
      // still be waiting on. This is what lets a retry that straddles the
      // epoch flip (applied at the source pre-seal, re-sent here) hit the
      // duplicate path instead of applying twice.
      for (const SessionRecord& rec : snap->sessions) {
        Session& s = sessions_[rec.client];
        if (rec.last_seq > s.last_seq) {
          s.last_seq = rec.last_seq;
          s.last_reply = rec.reply;
        }
      }
      // Locks migrate with their buckets: a transaction prepared before the
      // split finds its lock here when the commit/abort record re-routes,
      // so it still decides exactly once.
      for (const LockRecord& rec : snap->locks) {
        Lock& l = locks_[rec.key];
        l.txn = rec.txn;
        l.owner = rec.owner;
        l.write = rec.write;
        l.value = rec.value;
        l.has_expected = rec.has_expected != 0;
        l.expected = rec.expected;
      }
      // Prepare marks merge by max seq, the same monotone rule as the
      // session records they extend: the machine holding a client's newest
      // prepare also holds the only prepare outcome a recovering
      // coordinator can still replay against.
      for (const PrepareMark& rec : snap->prepare_marks) {
        Session& s = sessions_[rec.client];
        if (rec.seq > s.last_prepare_seq) {
          s.last_prepare_seq = rec.seq;
          s.last_prepare_status = static_cast<Status>(rec.status);
        }
      }
      for (const std::uint32_t b : snap->spec.buckets) owned_[b] = 1;
      break;
    }
    case Op::kPurge: {
      const std::optional<RangeSpec> spec = decode_range_spec(c.value);
      if (!spec.has_value() || spec->epoch < cfg_epoch_ ||
          !resize_owned(spec->table_buckets)) {
        ++admin_rejected_;
        return rejected;
      }
      cfg_epoch_ = spec->epoch;
      std::vector<std::uint8_t> drop(owned_.size(), 0);
      for (const std::uint32_t b : spec->buckets) drop[b] = 1;
      for (auto it = store_.begin(); it != store_.end();) {
        if (drop[ShardMap::key_hash(it->first) % owned_.size()] != 0) {
          it = store_.erase(it);
          ++keys_purged_;
        } else {
          ++it;
        }
      }
      // Sealed-away locks were drained with the range (export_range) and now
      // live at the destination — drop the local copies with their pairs.
      for (auto it = locks_.begin(); it != locks_.end();) {
        if (drop[ShardMap::key_hash(it->first) % owned_.size()] != 0) {
          it = locks_.erase(it);
        } else {
          ++it;
        }
      }
      break;
    }
    default:
      ++admin_rejected_;
      return rejected;
  }
  return Reply{};
}

Bytes StateMachine::export_range(util::ByteView request) const {
  if (!partitioned_) return {};
  const std::optional<RangeSpec> spec = decode_range_spec(request);
  if (!spec.has_value()) return {};
  // Serve only once the seal for this epoch has applied here: the epoch has
  // been reached, the geometry matches, and every listed bucket is sealed
  // away — otherwise the drain would miss in-flight pre-seal ops.
  if (cfg_epoch_ < spec->epoch) return {};
  if (spec->table_buckets != owned_.size()) return {};
  for (const std::uint32_t b : spec->buckets) {
    if (owned_[b] != 0) return {};
  }
  std::vector<std::uint8_t> take(owned_.size(), 0);
  for (const std::uint32_t b : spec->buckets) take[b] = 1;
  RangeSnapshot snap;
  snap.spec = *spec;
  for (const auto& [k, v] : store_) {
    if (take[ShardMap::key_hash(k) % owned_.size()] != 0) {
      snap.pairs.emplace_back(k, v);
    }
  }
  for (const auto& [client, s] : sessions_) {
    SessionRecord rec;
    rec.client = client;
    rec.last_seq = s.last_seq;
    rec.reply = s.last_reply;
    snap.sessions.push_back(std::move(rec));
  }
  for (const auto& [k, l] : locks_) {
    if (take[ShardMap::key_hash(k) % owned_.size()] != 0) {
      LockRecord rec;
      rec.key = k;
      rec.txn = l.txn;
      rec.owner = l.owner;
      rec.write = l.write;
      rec.value = l.value;
      rec.has_expected = l.has_expected ? 1 : 0;
      rec.expected = l.expected;
      snap.locks.push_back(std::move(rec));
    }
  }
  // Prepare marks travel with the full session table (they extend it): a
  // coordinator whose prepare landed pre-seal can crash and replay it at
  // the new owner and still read the original outcome.
  for (const auto& [client, s] : sessions_) {
    if (s.last_prepare_seq == 0) continue;
    PrepareMark m;
    m.client = client;
    m.seq = s.last_prepare_seq;
    m.status = static_cast<std::uint8_t>(s.last_prepare_status);
    snap.prepare_marks.push_back(m);
  }
  return encode_range_snapshot(snap);
}

bool StateMachine::txn_active() const {
  if (!locks_.empty() || txn_prepared_ != 0 || txn_committed_ != 0 ||
      txn_aborted_ != 0 || txn_conflicts_ != 0 || txn_orphans_ != 0 ||
      txn_rejected_ != 0) {
    return true;
  }
  // Marks can exist with every counter zero: INSTALL imports them from a
  // machine that applied the prepares elsewhere.
  for (const auto& [client, s] : sessions_) {
    if (s.last_prepare_seq != 0) return true;
  }
  return false;
}

std::uint64_t StateMachine::txn_fold(std::uint64_t h) const {
  h = fnv1a_u64(h, locks_.size());
  for (const auto& [k, l] : locks_) {
    h = fnv1a(h, k);
    h = fnv1a_u64(h, l.txn);
    h = fnv1a_u64(h, l.owner);
    h = fnv1a_u64(h, l.write);
    h = fnv1a(h, l.value);
    h = fnv1a_u64(h, l.has_expected ? 1 : 0);
    h = fnv1a(h, l.expected);
  }
  h = fnv1a_u64(h, txn_prepared_);
  h = fnv1a_u64(h, txn_committed_);
  h = fnv1a_u64(h, txn_aborted_);
  h = fnv1a_u64(h, txn_conflicts_);
  h = fnv1a_u64(h, txn_orphans_);
  // Prepare marks are replicated state (the duplicate path answers from
  // them), so divergent marks must diverge the agreement hash.
  std::uint64_t nmarks = 0;
  for (const auto& [client, s] : sessions_) {
    if (s.last_prepare_seq != 0) ++nmarks;
  }
  h = fnv1a_u64(h, nmarks);
  for (const auto& [client, s] : sessions_) {
    if (s.last_prepare_seq == 0) continue;
    h = fnv1a_u64(h, client);
    h = fnv1a_u64(h, s.last_prepare_seq);
    h = fnv1a_u64(h, static_cast<std::uint64_t>(s.last_prepare_status));
  }
  return h;
}

std::uint64_t StateMachine::partition_fold(std::uint64_t h) const {
  h = fnv1a_u64(h, group_);
  h = fnv1a_u64(h, cfg_epoch_);
  h = fnv1a_u64(h, owned_.size());
  h = fnv1a(h, owned_);
  h = fnv1a_u64(h, admin_applied_);
  h = fnv1a_u64(h, bounces_);
  h = fnv1a_u64(h, keys_imported_);
  h = fnv1a_u64(h, keys_purged_);
  return h;
}

std::uint64_t StateMachine::store_hash() const {
  std::uint64_t h = 0xCBF29CE484222325ULL;
  for (const auto& [k, v] : store_) {
    h = fnv1a(h, k);
    h = fnv1a(h, v);
  }
  for (const auto& [client, s] : sessions_) {
    h = fnv1a_u64(h, client);
    h = fnv1a_u64(h, s.last_seq);
    h = fnv1a_u64(h, static_cast<std::uint64_t>(s.last_reply.status));
    h = fnv1a(h, s.last_reply.value);
  }
  h = fnv1a_u64(h, ops_applied_);
  // Partition state is replicated state: fold it in partitioned mode so the
  // agreement check covers ownership and the epoch; static-sharding hashes
  // are unchanged byte-for-byte.
  if (partitioned_) h = partition_fold(h);
  // Same rule for transaction state: the fold exists only once transactions
  // have touched this machine, so plain-KV hashes are unchanged.
  if (txn_active()) h = txn_fold(h);
  return h;
}

Bytes StateMachine::snapshot() const {
  util::Writer w(64);
  w.u32(static_cast<std::uint32_t>(store_.size()));
  for (const auto& [k, v] : store_) w.bytes(k).bytes(v);
  w.u32(static_cast<std::uint32_t>(sessions_.size()));
  for (const auto& [client, s] : sessions_) {
    w.u64(client)
        .u64(s.last_seq)
        .u8(static_cast<std::uint8_t>(s.last_reply.status))
        .bytes(s.last_reply.value);
  }
  w.u64(ops_applied_).u64(duplicates_).u64(malformed_);
  // The forged counter rides along whenever it can matter: in signed mode,
  // and when a restored signed-mode count must survive another hop through
  // a not-yet-armed machine. Legacy (signing-off) snapshot bytes stay
  // identical to the pre-signing codec. restore() does not need to guess
  // the layout from wiring — the trailing digest covers the field, so the
  // bytes are self-describing (see restore()).
  const bool with_forged = keystore_ != nullptr || forged_ != 0;
  if (with_forged) w.u64(forged_);
  // Partition section: a rejoiner restoring this snapshot lands in the
  // post-split world — table geometry, ownership and epoch included —
  // before it chases the log tip.
  w.u8(partitioned_ ? 1 : 0);
  if (partitioned_) {
    w.u32(group_).u64(cfg_epoch_).bytes(owned_);
    w.u64(admin_applied_).u64(bounces_).u64(admin_rejected_);
    w.u64(keys_imported_).u64(keys_purged_);
  }
  // Txn section — same self-describing pattern as the forged field: present
  // exactly when transaction state exists, resolved on restore by the
  // digest, never by wiring. Transaction-free snapshots keep the
  // pre-transaction bytes.
  const bool with_txn = txn_active();
  if (with_txn) {
    w.u32(static_cast<std::uint32_t>(locks_.size()));
    for (const auto& [k, l] : locks_) {
      w.bytes(k).u64(l.txn).u64(l.owner).u8(l.write).bytes(l.value);
      w.u8(l.has_expected ? 1 : 0).bytes(l.expected);
    }
    w.u64(txn_prepared_).u64(txn_committed_).u64(txn_aborted_);
    w.u64(txn_conflicts_).u64(txn_orphans_).u64(txn_rejected_);
    // Prepare marks, client order (canonical — sessions_ is ordered).
    std::uint32_t nmarks = 0;
    for (const auto& [client, s] : sessions_) {
      if (s.last_prepare_seq != 0) ++nmarks;
    }
    w.u32(nmarks);
    for (const auto& [client, s] : sessions_) {
      if (s.last_prepare_seq == 0) continue;
      w.u64(client).u64(s.last_prepare_seq);
      w.u8(static_cast<std::uint8_t>(s.last_prepare_status));
    }
  }
  // Trailing digest: the store_hash() fold extended over the counters the
  // replicated-state hash leaves out, so the digest covers every byte an
  // installer will adopt and any corruption fails closed on restore.
  std::uint64_t digest = fnv1a_u64(fnv1a_u64(store_hash(), duplicates_),
                                   malformed_);
  if (with_forged) digest = fnv1a_u64(digest, forged_);
  if (partitioned_) digest = fnv1a_u64(digest, admin_rejected_);
  if (with_txn) digest = fnv1a_u64(digest, txn_rejected_);
  w.u64(digest);
  return std::move(w).take();
}

namespace {

struct DecodedSession {
  std::uint64_t last_seq = 0;
  Reply last_reply;
  std::uint64_t last_prepare_seq = 0;
  Status last_prepare_status = Status::kOk;
};

/// The only statuses a TxnPrepare can produce — what a prepare mark (or a
/// drained PrepareMark record) may carry.
inline bool prepare_status_valid(std::uint8_t status) {
  const auto st = static_cast<Status>(status);
  return st == Status::kOk || st == Status::kTxnConflict ||
         st == Status::kTxnAborted;
}

/// Everything restore() decodes before committing any of it.
struct DecodedSnapshot {
  std::map<Bytes, Bytes> store;
  std::map<ClientId, DecodedSession> sessions;
  std::uint64_t ops = 0, dups = 0, malformed = 0, forged = 0;
  bool partitioned = false;
  std::uint32_t group = 0;
  std::uint64_t cfg_epoch = 0;
  Bytes owned;
  std::uint64_t admin_applied = 0, bounces = 0, admin_rejected = 0;
  std::uint64_t keys_imported = 0, keys_purged = 0;
  std::map<Bytes, StateMachine::Lock> locks;
  std::uint64_t txn_prepared = 0, txn_committed = 0, txn_aborted = 0;
  std::uint64_t txn_conflicts = 0, txn_orphans = 0, txn_rejected = 0;
};

/// One layout attempt: decode `raw` with or without the forged field and
/// the txn section, recompute the state fold and check it against the
/// embedded digest. nullopt on malformed bytes or a digest mismatch.
std::optional<DecodedSnapshot> parse_snapshot(util::ByteView raw,
                                              bool with_forged,
                                              bool with_txn) {
  DecodedSnapshot d;
  std::uint64_t claimed = 0;
  try {
    util::Reader r(raw);
    const std::uint32_t nkeys = r.u32();
    for (std::uint32_t i = 0; i < nkeys; ++i) {
      Bytes k = r.bytes();
      Bytes v = r.bytes();
      // Map order is the codec's canonical order: out-of-order or duplicate
      // keys mean the bytes were not produced by snapshot().
      if (!d.store.emplace(std::move(k), std::move(v)).second) {
        return std::nullopt;
      }
    }
    const std::uint32_t nsessions = r.u32();
    for (std::uint32_t i = 0; i < nsessions; ++i) {
      const ClientId client = r.u64();
      DecodedSession s;
      s.last_seq = r.u64();
      const std::uint8_t status = r.u8();
      // Only committed outcomes are cacheable — see status_persistable.
      if (!status_persistable(status)) return std::nullopt;
      s.last_reply.status = static_cast<Status>(status);
      s.last_reply.value = r.bytes();
      if (!d.sessions.emplace(client, std::move(s)).second) {
        return std::nullopt;
      }
    }
    d.ops = r.u64();
    d.dups = r.u64();
    d.malformed = r.u64();
    if (with_forged) d.forged = r.u64();
    d.partitioned = r.u8() != 0;
    if (d.partitioned) {
      d.group = r.u32();
      d.cfg_epoch = r.u64();
      d.owned = r.bytes();
      if (d.owned.empty() || d.owned.size() > kMaxTableBuckets) {
        return std::nullopt;
      }
      for (const std::uint8_t o : d.owned) {
        if (o > 1) return std::nullopt;
      }
      d.admin_applied = r.u64();
      d.bounces = r.u64();
      d.admin_rejected = r.u64();
      d.keys_imported = r.u64();
      d.keys_purged = r.u64();
    }
    if (with_txn) {
      const std::uint32_t nlocks = r.u32();
      for (std::uint32_t i = 0; i < nlocks; ++i) {
        Bytes k = r.bytes();
        StateMachine::Lock l;
        l.txn = r.u64();
        l.owner = r.u64();
        l.write = r.u8();
        if (l.write < 1 || l.write > 2) return std::nullopt;
        l.value = r.bytes();
        const std::uint8_t he = r.u8();
        if (he > 1) return std::nullopt;
        l.has_expected = he != 0;
        l.expected = r.bytes();
        // Canonical form: no guard ⇒ no guard bytes.
        if (!l.has_expected && !l.expected.empty()) return std::nullopt;
        if (!d.locks.emplace(std::move(k), std::move(l)).second) {
          return std::nullopt;
        }
      }
      d.txn_prepared = r.u64();
      d.txn_committed = r.u64();
      d.txn_aborted = r.u64();
      d.txn_conflicts = r.u64();
      d.txn_orphans = r.u64();
      d.txn_rejected = r.u64();
      const std::uint32_t nmarks = r.u32();
      ClientId prev_mark_client = 0;
      for (std::uint32_t i = 0; i < nmarks; ++i) {
        const ClientId client = r.u64();
        const std::uint64_t seq = r.u64();
        const std::uint8_t status = r.u8();
        if (i > 0 && client <= prev_mark_client) return std::nullopt;
        prev_mark_client = client;
        if (seq == 0 || !prepare_status_valid(status)) return std::nullopt;
        // A mark extends an existing session record — a machine that set
        // (or imported) one always has the session it belongs to.
        const auto sit = d.sessions.find(client);
        if (sit == d.sessions.end()) return std::nullopt;
        sit->second.last_prepare_seq = seq;
        sit->second.last_prepare_status = static_cast<Status>(status);
      }
    }
    claimed = r.u64();
    r.expect_end();
  } catch (const util::SerdeError&) {
    return std::nullopt;
  }
  // Recompute the fold over the decoded state and compare against the
  // embedded digest — a corrupted or forged snapshot fails closed here.
  std::uint64_t h = 0xCBF29CE484222325ULL;
  for (const auto& [k, v] : d.store) {
    h = fnv1a(h, k);
    h = fnv1a(h, v);
  }
  for (const auto& [client, s] : d.sessions) {
    h = fnv1a_u64(h, client);
    h = fnv1a_u64(h, s.last_seq);
    h = fnv1a_u64(h, static_cast<std::uint64_t>(s.last_reply.status));
    h = fnv1a(h, s.last_reply.value);
  }
  h = fnv1a_u64(h, d.ops);
  if (d.partitioned) {
    h = fnv1a_u64(h, d.group);
    h = fnv1a_u64(h, d.cfg_epoch);
    h = fnv1a_u64(h, d.owned.size());
    h = fnv1a(h, d.owned);
    h = fnv1a_u64(h, d.admin_applied);
    h = fnv1a_u64(h, d.bounces);
    h = fnv1a_u64(h, d.keys_imported);
    h = fnv1a_u64(h, d.keys_purged);
  }
  if (with_txn) {
    h = fnv1a_u64(h, d.locks.size());
    for (const auto& [k, l] : d.locks) {
      h = fnv1a(h, k);
      h = fnv1a_u64(h, l.txn);
      h = fnv1a_u64(h, l.owner);
      h = fnv1a_u64(h, l.write);
      h = fnv1a(h, l.value);
      h = fnv1a_u64(h, l.has_expected ? 1 : 0);
      h = fnv1a(h, l.expected);
    }
    h = fnv1a_u64(h, d.txn_prepared);
    h = fnv1a_u64(h, d.txn_committed);
    h = fnv1a_u64(h, d.txn_aborted);
    h = fnv1a_u64(h, d.txn_conflicts);
    h = fnv1a_u64(h, d.txn_orphans);
    std::uint64_t nmarks = 0;
    for (const auto& [client, s] : d.sessions) {
      if (s.last_prepare_seq != 0) ++nmarks;
    }
    h = fnv1a_u64(h, nmarks);
    for (const auto& [client, s] : d.sessions) {
      if (s.last_prepare_seq == 0) continue;
      h = fnv1a_u64(h, client);
      h = fnv1a_u64(h, s.last_prepare_seq);
      h = fnv1a_u64(h, static_cast<std::uint64_t>(s.last_prepare_status));
    }
  }
  h = fnv1a_u64(h, d.dups);
  h = fnv1a_u64(h, d.malformed);
  if (with_forged) h = fnv1a_u64(h, d.forged);
  if (d.partitioned) h = fnv1a_u64(h, d.admin_rejected);
  if (with_txn) h = fnv1a_u64(h, d.txn_rejected);
  if (h != claimed) return std::nullopt;
  return d;
}

}  // namespace

bool StateMachine::restore(util::ByteView raw) {
  // The layout is self-describing: the forged field's and txn section's
  // presence is resolved by the digest (which covers them when present),
  // not by this machine's wiring — so a signed-mode or mid-transaction
  // snapshot restores on a freshly-constructed machine, and a legacy
  // snapshot restores on an armed one. Exactly one of the four layouts can
  // validate for honest bytes; any corruption still fails closed in all
  // attempts.
  std::optional<DecodedSnapshot> d;
  for (const bool with_forged : {true, false}) {
    for (const bool with_txn : {true, false}) {
      d = parse_snapshot(raw, with_forged, with_txn);
      if (d.has_value()) break;
    }
    if (d.has_value()) break;
  }
  if (!d.has_value()) return false;
  store_ = std::move(d->store);
  sessions_.clear();
  for (auto& [client, s] : d->sessions) {
    Session& dst = sessions_[client];
    dst.last_seq = s.last_seq;
    dst.last_reply = std::move(s.last_reply);
    dst.last_prepare_seq = s.last_prepare_seq;
    dst.last_prepare_status = s.last_prepare_status;
  }
  ops_applied_ = d->ops;
  duplicates_ = d->dups;
  malformed_ = d->malformed;
  forged_ = d->forged;
  partitioned_ = d->partitioned;
  group_ = d->group;
  cfg_epoch_ = d->cfg_epoch;
  owned_.assign(d->owned.begin(), d->owned.end());
  admin_applied_ = d->admin_applied;
  bounces_ = d->bounces;
  admin_rejected_ = d->admin_rejected;
  keys_imported_ = d->keys_imported;
  keys_purged_ = d->keys_purged;
  locks_ = std::move(d->locks);
  txn_prepared_ = d->txn_prepared;
  txn_committed_ = d->txn_committed;
  txn_aborted_ = d->txn_aborted;
  txn_conflicts_ = d->txn_conflicts;
  txn_orphans_ = d->txn_orphans;
  txn_rejected_ = d->txn_rejected;
  return true;
}

std::uint64_t StateMachine::last_seq(ClientId c) const {
  const auto it = sessions_.find(c);
  return it == sessions_.end() ? 0 : it->second.last_seq;
}

}  // namespace mnm::kv
