#include "src/kv/range.hpp"

#include <algorithm>

#include "src/util/serde.hpp"

namespace mnm::kv {

namespace {

inline std::uint64_t fnv1a(std::uint64_t h, util::ByteView bytes) {
  for (const std::uint8_t b : bytes) {
    h ^= b;
    h *= 0x100000001B3ULL;
  }
  return h;
}

inline std::uint64_t fnv1a_u64(std::uint64_t h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= static_cast<std::uint8_t>(v >> (i * 8));
    h *= 0x100000001B3ULL;
  }
  return h;
}

bool valid_spec(const RangeSpec& spec) {
  if (spec.table_buckets == 0 || spec.table_buckets > kMaxTableBuckets) {
    return false;
  }
  if (spec.buckets.empty() || spec.buckets.size() > spec.table_buckets) {
    return false;
  }
  for (std::size_t i = 0; i < spec.buckets.size(); ++i) {
    if (spec.buckets[i] >= spec.table_buckets) return false;
    if (i > 0 && spec.buckets[i] <= spec.buckets[i - 1]) return false;
  }
  return true;
}

}  // namespace

Bytes encode_range_spec(const RangeSpec& spec) {
  util::Writer w(8 + 4 + 4 + 4 * spec.buckets.size());
  w.u64(spec.epoch).u32(spec.table_buckets).u32(
      static_cast<std::uint32_t>(spec.buckets.size()));
  for (const std::uint32_t b : spec.buckets) w.u32(b);
  return std::move(w).take();
}

std::optional<RangeSpec> decode_range_spec(util::ByteView raw) {
  try {
    util::Reader r(raw);
    RangeSpec spec;
    spec.epoch = r.u64();
    spec.table_buckets = r.u32();
    const std::uint32_t count = r.u32();
    if (count == 0 || count > kMaxTableBuckets) return std::nullopt;
    // Peer-controlled count: bound the pre-size by the bytes present.
    spec.buckets.reserve(std::min<std::size_t>(count, r.remaining() / 4));
    for (std::uint32_t i = 0; i < count; ++i) spec.buckets.push_back(r.u32());
    r.expect_end();
    if (!valid_spec(spec)) return std::nullopt;
    return spec;
  } catch (const util::SerdeError&) {
    return std::nullopt;
  }
}

std::uint64_t range_snapshot_digest(const RangeSnapshot& snap) {
  std::uint64_t h = 0xCBF29CE484222325ULL;
  h = fnv1a_u64(h, snap.spec.epoch);
  h = fnv1a_u64(h, snap.spec.table_buckets);
  for (const std::uint32_t b : snap.spec.buckets) h = fnv1a_u64(h, b);
  h = fnv1a_u64(h, snap.pairs.size());
  for (const auto& [k, v] : snap.pairs) {
    h = fnv1a(h, k);
    h = fnv1a(h, v);
  }
  h = fnv1a_u64(h, snap.sessions.size());
  for (const SessionRecord& s : snap.sessions) {
    h = fnv1a_u64(h, s.client);
    h = fnv1a_u64(h, s.last_seq);
    h = fnv1a_u64(h, static_cast<std::uint64_t>(s.reply.status));
    h = fnv1a(h, s.reply.value);
  }
  // The locks fold only exists when locks ride along, so lock-free digests
  // (and therefore lock-free drain bytes) are unchanged byte-for-byte.
  if (!snap.locks.empty()) {
    h = fnv1a_u64(h, snap.locks.size());
    for (const LockRecord& l : snap.locks) {
      h = fnv1a(h, l.key);
      h = fnv1a_u64(h, l.txn);
      h = fnv1a_u64(h, l.owner);
      h = fnv1a_u64(h, l.write);
      h = fnv1a(h, l.value);
    }
  }
  return h;
}

Bytes encode_range_snapshot(const RangeSnapshot& snap) {
  const Bytes spec = encode_range_spec(snap.spec);
  std::size_t payload = 4 + spec.size() + 4 + 4;
  for (const auto& [k, v] : snap.pairs) payload += 8 + k.size() + v.size();
  for (const SessionRecord& s : snap.sessions) {
    payload += 8 + 8 + 1 + 4 + s.reply.value.size();
  }
  for (const LockRecord& l : snap.locks) {
    payload += 4 + l.key.size() + 8 + 8 + 1 + 4 + l.value.size();
  }
  if (!snap.locks.empty()) payload += 4;
  util::Writer w(payload + 8);
  w.bytes(spec);
  w.u32(static_cast<std::uint32_t>(snap.pairs.size()));
  for (const auto& [k, v] : snap.pairs) w.bytes(k).bytes(v);
  w.u32(static_cast<std::uint32_t>(snap.sessions.size()));
  for (const SessionRecord& s : snap.sessions) {
    w.u64(s.client)
        .u64(s.last_seq)
        .u8(static_cast<std::uint8_t>(s.reply.status))
        .bytes(s.reply.value);
  }
  // Locks section only when locks exist: a lock-free drain stays
  // byte-identical to the pre-transaction wire, and the decoder can tell
  // the layouts apart by the bytes remaining before the digest.
  if (!snap.locks.empty()) {
    w.u32(static_cast<std::uint32_t>(snap.locks.size()));
    for (const LockRecord& l : snap.locks) {
      w.bytes(l.key).u64(l.txn).u64(l.owner).u8(l.write).bytes(l.value);
    }
  }
  w.u64(range_snapshot_digest(snap));
  return std::move(w).take();
}

std::optional<RangeSnapshot> decode_range_snapshot(util::ByteView raw) {
  RangeSnapshot snap;
  std::uint64_t claimed = 0;
  try {
    util::Reader r(raw);
    const Bytes spec_bytes = r.bytes();
    const std::optional<RangeSpec> spec = decode_range_spec(spec_bytes);
    if (!spec.has_value()) return std::nullopt;
    snap.spec = *spec;
    const std::uint32_t npairs = r.u32();
    // Every pair costs at least its two 4-byte length prefixes.
    snap.pairs.reserve(std::min<std::size_t>(npairs, r.remaining() / 8));
    for (std::uint32_t i = 0; i < npairs; ++i) {
      Bytes k = r.bytes();
      Bytes v = r.bytes();
      // Store (map) order is canonical: out-of-order or duplicate keys mean
      // the bytes were not produced by an honest export.
      if (i > 0 && k <= snap.pairs.back().first) return std::nullopt;
      snap.pairs.emplace_back(std::move(k), std::move(v));
    }
    const std::uint32_t nsessions = r.u32();
    snap.sessions.reserve(
        std::min<std::size_t>(nsessions, r.remaining() / 21));
    for (std::uint32_t i = 0; i < nsessions; ++i) {
      SessionRecord s;
      s.client = r.u64();
      s.last_seq = r.u64();
      const std::uint8_t status = r.u8();
      // Only committed outcomes are cacheable — see status_persistable.
      if (!status_persistable(status)) return std::nullopt;
      s.reply.status = static_cast<Status>(status);
      s.reply.value = r.bytes();
      if (i > 0 && s.client <= snap.sessions.back().client) {
        return std::nullopt;
      }
      snap.sessions.push_back(std::move(s));
    }
    // Locks section, present iff more than the 8-byte digest remains. The
    // encoder writes it only when non-empty, so presence is
    // length-discriminated — no trial parse, and lock-free wires are
    // byte-identical to the pre-transaction layout.
    if (r.remaining() > 8) {
      const std::uint32_t nlocks = r.u32();
      if (nlocks == 0) return std::nullopt;  // empty section is non-canonical
      // Each lock costs at least its two length prefixes + fixed fields.
      snap.locks.reserve(std::min<std::size_t>(nlocks, r.remaining() / 25));
      for (std::uint32_t i = 0; i < nlocks; ++i) {
        LockRecord l;
        l.key = r.bytes();
        l.txn = r.u64();
        l.owner = r.u64();
        l.write = r.u8();
        if (l.write < 1 || l.write > 2) return std::nullopt;
        l.value = r.bytes();
        if (i > 0 && l.key <= snap.locks.back().key) return std::nullopt;
        snap.locks.push_back(std::move(l));
      }
    }
    claimed = r.u64();
    r.expect_end();
  } catch (const util::SerdeError&) {
    return std::nullopt;
  }
  // Recompute the digest over the decoded state: a corrupted or forged
  // drain fails closed here, before any import.
  if (range_snapshot_digest(snap) != claimed) return std::nullopt;
  return snap;
}

}  // namespace mnm::kv
