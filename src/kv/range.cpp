#include "src/kv/range.hpp"

#include <algorithm>

#include "src/util/serde.hpp"

namespace mnm::kv {

namespace {

inline std::uint64_t fnv1a(std::uint64_t h, util::ByteView bytes) {
  for (const std::uint8_t b : bytes) {
    h ^= b;
    h *= 0x100000001B3ULL;
  }
  return h;
}

inline std::uint64_t fnv1a_u64(std::uint64_t h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= static_cast<std::uint8_t>(v >> (i * 8));
    h *= 0x100000001B3ULL;
  }
  return h;
}

// Tail section tags (see RangeSnapshot): strictly ascending on the wire,
// each section present only when non-empty.
constexpr std::uint8_t kTailLocks = 1;
constexpr std::uint8_t kTailPrepareMarks = 2;

/// The only statuses a TxnPrepare can produce — what a PrepareMark carries.
bool prepare_status_valid(std::uint8_t status) {
  const auto st = static_cast<Status>(status);
  return st == Status::kOk || st == Status::kTxnConflict ||
         st == Status::kTxnAborted;
}

bool valid_spec(const RangeSpec& spec) {
  if (spec.table_buckets == 0 || spec.table_buckets > kMaxTableBuckets) {
    return false;
  }
  if (spec.buckets.empty() || spec.buckets.size() > spec.table_buckets) {
    return false;
  }
  for (std::size_t i = 0; i < spec.buckets.size(); ++i) {
    if (spec.buckets[i] >= spec.table_buckets) return false;
    if (i > 0 && spec.buckets[i] <= spec.buckets[i - 1]) return false;
  }
  return true;
}

}  // namespace

Bytes encode_range_spec(const RangeSpec& spec) {
  util::Writer w(8 + 4 + 4 + 4 * spec.buckets.size());
  w.u64(spec.epoch).u32(spec.table_buckets).u32(
      static_cast<std::uint32_t>(spec.buckets.size()));
  for (const std::uint32_t b : spec.buckets) w.u32(b);
  return std::move(w).take();
}

std::optional<RangeSpec> decode_range_spec(util::ByteView raw) {
  try {
    util::Reader r(raw);
    RangeSpec spec;
    spec.epoch = r.u64();
    spec.table_buckets = r.u32();
    const std::uint32_t count = r.u32();
    if (count == 0 || count > kMaxTableBuckets) return std::nullopt;
    // Peer-controlled count: bound the pre-size by the bytes present.
    spec.buckets.reserve(std::min<std::size_t>(count, r.remaining() / 4));
    for (std::uint32_t i = 0; i < count; ++i) spec.buckets.push_back(r.u32());
    r.expect_end();
    if (!valid_spec(spec)) return std::nullopt;
    return spec;
  } catch (const util::SerdeError&) {
    return std::nullopt;
  }
}

std::uint64_t range_snapshot_digest(const RangeSnapshot& snap) {
  std::uint64_t h = 0xCBF29CE484222325ULL;
  h = fnv1a_u64(h, snap.spec.epoch);
  h = fnv1a_u64(h, snap.spec.table_buckets);
  for (const std::uint32_t b : snap.spec.buckets) h = fnv1a_u64(h, b);
  h = fnv1a_u64(h, snap.pairs.size());
  for (const auto& [k, v] : snap.pairs) {
    h = fnv1a(h, k);
    h = fnv1a(h, v);
  }
  h = fnv1a_u64(h, snap.sessions.size());
  for (const SessionRecord& s : snap.sessions) {
    h = fnv1a_u64(h, s.client);
    h = fnv1a_u64(h, s.last_seq);
    h = fnv1a_u64(h, static_cast<std::uint64_t>(s.reply.status));
    h = fnv1a(h, s.reply.value);
  }
  // Each tail section folds under its tag and only when present, so a
  // transaction-free digest (and therefore its drain bytes) is unchanged
  // byte-for-byte, and section layouts cannot alias each other.
  if (!snap.locks.empty()) {
    h = fnv1a_u64(h, kTailLocks);
    h = fnv1a_u64(h, snap.locks.size());
    for (const LockRecord& l : snap.locks) {
      h = fnv1a(h, l.key);
      h = fnv1a_u64(h, l.txn);
      h = fnv1a_u64(h, l.owner);
      h = fnv1a_u64(h, l.write);
      h = fnv1a(h, l.value);
      h = fnv1a_u64(h, l.has_expected);
      h = fnv1a(h, l.expected);
    }
  }
  if (!snap.prepare_marks.empty()) {
    h = fnv1a_u64(h, kTailPrepareMarks);
    h = fnv1a_u64(h, snap.prepare_marks.size());
    for (const PrepareMark& m : snap.prepare_marks) {
      h = fnv1a_u64(h, m.client);
      h = fnv1a_u64(h, m.seq);
      h = fnv1a_u64(h, m.status);
    }
  }
  return h;
}

Bytes encode_range_snapshot(const RangeSnapshot& snap) {
  const Bytes spec = encode_range_spec(snap.spec);
  std::size_t payload = 4 + spec.size() + 4 + 4;
  for (const auto& [k, v] : snap.pairs) payload += 8 + k.size() + v.size();
  for (const SessionRecord& s : snap.sessions) {
    payload += 8 + 8 + 1 + 4 + s.reply.value.size();
  }
  for (const LockRecord& l : snap.locks) {
    payload +=
        4 + l.key.size() + 8 + 8 + 1 + 4 + l.value.size() + 1 + 4 +
        l.expected.size();
  }
  if (!snap.locks.empty()) payload += 1 + 4;
  if (!snap.prepare_marks.empty()) {
    payload += 1 + 4 + 17 * snap.prepare_marks.size();
  }
  util::Writer w(payload + 8);
  w.bytes(spec);
  w.u32(static_cast<std::uint32_t>(snap.pairs.size()));
  for (const auto& [k, v] : snap.pairs) w.bytes(k).bytes(v);
  w.u32(static_cast<std::uint32_t>(snap.sessions.size()));
  for (const SessionRecord& s : snap.sessions) {
    w.u64(s.client)
        .u64(s.last_seq)
        .u8(static_cast<std::uint8_t>(s.reply.status))
        .bytes(s.reply.value);
  }
  // Tagged tail sections, ascending, each only when non-empty: a
  // transaction-free drain carries no tail and stays byte-identical to the
  // pre-transaction wire; the decoder discriminates presence by the bytes
  // remaining before the digest and dispatches on the tag.
  if (!snap.locks.empty()) {
    w.u8(kTailLocks);
    w.u32(static_cast<std::uint32_t>(snap.locks.size()));
    for (const LockRecord& l : snap.locks) {
      w.bytes(l.key).u64(l.txn).u64(l.owner).u8(l.write).bytes(l.value);
      w.u8(l.has_expected).bytes(l.expected);
    }
  }
  if (!snap.prepare_marks.empty()) {
    w.u8(kTailPrepareMarks);
    w.u32(static_cast<std::uint32_t>(snap.prepare_marks.size()));
    for (const PrepareMark& m : snap.prepare_marks) {
      w.u64(m.client).u64(m.seq).u8(m.status);
    }
  }
  w.u64(range_snapshot_digest(snap));
  return std::move(w).take();
}

std::optional<RangeSnapshot> decode_range_snapshot(util::ByteView raw) {
  RangeSnapshot snap;
  std::uint64_t claimed = 0;
  try {
    util::Reader r(raw);
    const Bytes spec_bytes = r.bytes();
    const std::optional<RangeSpec> spec = decode_range_spec(spec_bytes);
    if (!spec.has_value()) return std::nullopt;
    snap.spec = *spec;
    const std::uint32_t npairs = r.u32();
    // Every pair costs at least its two 4-byte length prefixes.
    snap.pairs.reserve(std::min<std::size_t>(npairs, r.remaining() / 8));
    for (std::uint32_t i = 0; i < npairs; ++i) {
      Bytes k = r.bytes();
      Bytes v = r.bytes();
      // Store (map) order is canonical: out-of-order or duplicate keys mean
      // the bytes were not produced by an honest export.
      if (i > 0 && k <= snap.pairs.back().first) return std::nullopt;
      snap.pairs.emplace_back(std::move(k), std::move(v));
    }
    const std::uint32_t nsessions = r.u32();
    snap.sessions.reserve(
        std::min<std::size_t>(nsessions, r.remaining() / 21));
    for (std::uint32_t i = 0; i < nsessions; ++i) {
      SessionRecord s;
      s.client = r.u64();
      s.last_seq = r.u64();
      const std::uint8_t status = r.u8();
      // Only committed outcomes are cacheable — see status_persistable.
      if (!status_persistable(status)) return std::nullopt;
      s.reply.status = static_cast<Status>(status);
      s.reply.value = r.bytes();
      if (i > 0 && s.client <= snap.sessions.back().client) {
        return std::nullopt;
      }
      snap.sessions.push_back(std::move(s));
    }
    // Tagged tail sections, present iff more than the 8-byte digest
    // remains. The encoder writes a section only when non-empty and tags
    // ascend, so presence is length-discriminated — no trial parse — and
    // transaction-free wires are byte-identical to the pre-tail layout.
    std::uint8_t last_tag = 0;
    while (r.remaining() > 8) {
      const std::uint8_t tag = r.u8();
      if (tag <= last_tag) return std::nullopt;  // unordered or repeated
      last_tag = tag;
      if (tag == kTailLocks) {
        const std::uint32_t nlocks = r.u32();
        if (nlocks == 0) return std::nullopt;  // empty section non-canonical
        // Each lock costs at least its three length prefixes + fixed fields.
        snap.locks.reserve(std::min<std::size_t>(nlocks, r.remaining() / 30));
        for (std::uint32_t i = 0; i < nlocks; ++i) {
          LockRecord l;
          l.key = r.bytes();
          l.txn = r.u64();
          l.owner = r.u64();
          l.write = r.u8();
          if (l.write < 1 || l.write > 2) return std::nullopt;
          l.value = r.bytes();
          l.has_expected = r.u8();
          if (l.has_expected > 1) return std::nullopt;
          l.expected = r.bytes();
          // Canonical form: no guard ⇒ no guard bytes.
          if (l.has_expected == 0 && !l.expected.empty()) return std::nullopt;
          if (i > 0 && l.key <= snap.locks.back().key) return std::nullopt;
          snap.locks.push_back(std::move(l));
        }
      } else if (tag == kTailPrepareMarks) {
        const std::uint32_t nmarks = r.u32();
        if (nmarks == 0) return std::nullopt;  // empty section non-canonical
        snap.prepare_marks.reserve(
            std::min<std::size_t>(nmarks, r.remaining() / 17));
        for (std::uint32_t i = 0; i < nmarks; ++i) {
          PrepareMark m;
          m.client = r.u64();
          m.seq = r.u64();
          m.status = r.u8();
          if (m.seq == 0 || !prepare_status_valid(m.status)) {
            return std::nullopt;
          }
          if (i > 0 && m.client <= snap.prepare_marks.back().client) {
            return std::nullopt;
          }
          snap.prepare_marks.push_back(m);
        }
      } else {
        return std::nullopt;  // unknown tail section
      }
    }
    claimed = r.u64();
    r.expect_end();
  } catch (const util::SerdeError&) {
    return std::nullopt;
  }
  // Recompute the digest over the decoded state: a corrupted or forged
  // drain fails closed here, before any import.
  if (range_snapshot_digest(snap) != claimed) return std::nullopt;
  return snap;
}

}  // namespace mnm::kv
