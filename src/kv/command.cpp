#include "src/kv/command.hpp"

namespace mnm::kv {

const char* op_name(Op op) {
  switch (op) {
    case Op::kGet: return "GET";
    case Op::kPut: return "PUT";
    case Op::kDel: return "DEL";
    case Op::kCas: return "CAS";
    case Op::kSeal: return "SEAL";
    case Op::kInstall: return "INSTALL";
    case Op::kPurge: return "PURGE";
  }
  return "?";
}

Bytes encode_command(const Command& c) {
  util::Writer w(1 + 8 + 8 + 4 + c.key.size() + 4 + c.value.size() + 4 +
                 c.expected.size());
  w.u8(static_cast<std::uint8_t>(c.op))
      .u64(c.client)
      .u64(c.seq)
      .bytes(c.key)
      .bytes(c.value)
      .bytes(c.expected);
  return std::move(w).take();
}

std::optional<Command> decode_command(util::ByteView raw) {
  try {
    util::Reader r(raw);
    Command c;
    const std::uint8_t op = r.u8();
    if (op < static_cast<std::uint8_t>(Op::kGet) ||
        op > static_cast<std::uint8_t>(Op::kPurge)) {
      return std::nullopt;
    }
    c.op = static_cast<Op>(op);
    c.client = r.u64();
    c.seq = r.u64();
    c.key = r.bytes();
    c.value = r.bytes();
    c.expected = r.bytes();
    r.expect_end();
    return c;
  } catch (const util::SerdeError&) {
    return std::nullopt;
  }
}

}  // namespace mnm::kv
