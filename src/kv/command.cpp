#include "src/kv/command.hpp"

namespace mnm::kv {

const char* op_name(Op op) {
  switch (op) {
    case Op::kGet: return "GET";
    case Op::kPut: return "PUT";
    case Op::kDel: return "DEL";
    case Op::kCas: return "CAS";
    case Op::kSeal: return "SEAL";
    case Op::kInstall: return "INSTALL";
    case Op::kPurge: return "PURGE";
    case Op::kTxnPrepare: return "TXN-PREPARE";
    case Op::kTxnCommit: return "TXN-COMMIT";
    case Op::kTxnAbort: return "TXN-ABORT";
  }
  return "?";
}

Bytes encode_command(const Command& c) {
  util::Writer w(1 + 8 + 8 + 4 + c.key.size() + 4 + c.value.size() + 4 +
                 c.expected.size());
  w.u8(static_cast<std::uint8_t>(c.op))
      .u64(c.client)
      .u64(c.seq)
      .bytes(c.key)
      .bytes(c.value)
      .bytes(c.expected);
  return std::move(w).take();
}

std::optional<Command> decode_command(util::ByteView raw) {
  try {
    util::Reader r(raw);
    Command c;
    const std::uint8_t op = r.u8();
    if (op < static_cast<std::uint8_t>(Op::kGet) ||
        op > static_cast<std::uint8_t>(Op::kTxnAbort)) {
      return std::nullopt;
    }
    c.op = static_cast<Op>(op);
    c.client = r.u64();
    c.seq = r.u64();
    c.key = r.bytes();
    c.value = r.bytes();
    c.expected = r.bytes();
    r.expect_end();
    return c;
  } catch (const util::SerdeError&) {
    return std::nullopt;
  }
}

namespace {
constexpr char kSigningTag[] = "kvc1";
constexpr std::size_t kSigningTagLen = 4;
constexpr std::size_t kMacSize = 32;  // HMAC-SHA256
}  // namespace

Bytes command_signing_bytes(std::uint32_t group,
                            util::ByteView canonical_command) {
  Bytes msg;
  msg.reserve(kSigningTagLen + 4 + canonical_command.size());
  msg.insert(msg.end(), kSigningTag, kSigningTag + kSigningTagLen);
  for (int i = 3; i >= 0; --i) {
    msg.push_back(static_cast<std::uint8_t>(group >> (i * 8)));
  }
  msg.insert(msg.end(), canonical_command.begin(), canonical_command.end());
  return msg;
}

Bytes encode_signed_command(util::ByteView canonical_command,
                            const crypto::Signature& sig) {
  util::Writer w(1 + 4 + canonical_command.size() + 4 + 4 + sig.mac.size());
  w.u8(kSignedCommandMarker);
  w.bytes(canonical_command);
  sig.encode(w);
  return std::move(w).take();
}

std::optional<SignedCommand> decode_signed_command(util::ByteView raw) {
  if (raw.empty()) return std::nullopt;
  if (raw[0] != kSignedCommandMarker) {
    // Legacy unsigned wire — exactly decode_command.
    std::optional<Command> c = decode_command(raw);
    if (!c.has_value()) return std::nullopt;
    SignedCommand out;
    out.cmd = *std::move(c);
    return out;
  }
  try {
    util::Reader r(raw);
    (void)r.u8();  // marker
    SignedCommand out;
    out.has_sig = true;
    out.body = r.bytes();
    out.sig = crypto::Signature::decode(r);
    r.expect_end();
    // Canonical-form checks: the MAC length is fixed and the inner command
    // must itself be strict — a signed wrapper around junk is malformed,
    // not forged.
    if (out.sig.mac.size() != kMacSize) return std::nullopt;
    std::optional<Command> c = decode_command(out.body);
    if (!c.has_value()) return std::nullopt;
    out.cmd = *std::move(c);
    return out;
  } catch (const util::SerdeError&) {
    return std::nullopt;
  }
}

}  // namespace mnm::kv
