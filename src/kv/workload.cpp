#include "src/kv/workload.hpp"

#include <algorithm>
#include <cassert>
#include <charconv>
#include <cmath>
#include <string>

namespace mnm::kv {

namespace {

/// Account keys live in their own prefix, disjoint from the plain-mix
/// "key-<i>" space — plain writes can never touch a balance.
Bytes account_key(std::size_t i) {
  return util::to_bytes("acct-" + std::to_string(i));
}

/// Balances are decimal int64 strings; an absent key is balance 0. In an
/// unsigned Byzantine run a hostile proposer can plant arbitrary bytes in
/// an account, so the parse is total: unparsable (or >64-bit) bytes read as
/// 0 instead of throwing out of the client loop — the harness's balance
/// rollup separately fails validity on such values.
std::int64_t parse_balance(const Bytes& raw) {
  const char* begin = reinterpret_cast<const char*>(raw.data());
  const char* end = begin + raw.size();
  std::int64_t v = 0;
  const std::from_chars_result res = std::from_chars(begin, end, v);
  return (res.ec == std::errc{} && res.ptr == end) ? v : 0;
}

}  // namespace

const char* mix_name(Mix mix) {
  switch (mix) {
    case Mix::kA: return "A (50/50)";
    case Mix::kB: return "B (95/5)";
    case Mix::kC: return "C (read-only)";
  }
  return "?";
}

double read_fraction(Mix mix) {
  switch (mix) {
    case Mix::kA: return 0.5;
    case Mix::kB: return 0.95;
    case Mix::kC: return 1.0;
  }
  return 1.0;
}

ZipfGenerator::ZipfGenerator(std::size_t n, double theta)
    : n_(n == 0 ? 1 : n), theta_(theta), alpha_(1.0 / (1.0 - theta)) {
  // theta = 1 degenerates silently (alpha = inf makes every draw return
  // n - 1); the YCSB generator is defined for theta in (0, 1).
  assert(theta > 0.0 && theta < 1.0 &&
         "kv::ZipfGenerator: theta must be in (0, 1)");
  double zetan = 0.0;
  for (std::size_t i = 1; i <= n_; ++i) {
    zetan += 1.0 / std::pow(static_cast<double>(i), theta_);
  }
  zetan_ = zetan;
  const double zeta2 = 1.0 + 1.0 / std::pow(2.0, theta_);
  eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n_), 1.0 - theta_)) /
         (1.0 - zeta2 / zetan_);
}

std::size_t ZipfGenerator::next(sim::Rng& rng) {
  // The standard YCSB rejection-free mapping (Gray et al.'s quickly
  // generating billion-record synthetic databases).
  const double u = rng.unit();
  const double uz = u * zetan_;
  if (uz < 1.0) return 0;
  if (uz < 1.0 + std::pow(0.5, theta_)) return 1;
  const std::size_t idx = static_cast<std::size_t>(
      static_cast<double>(n_) * std::pow(eta_ * u - eta_ + 1.0, alpha_));
  return idx >= n_ ? n_ - 1 : idx;
}

Workload::Workload(sim::Executor& exec, Router& router, WorkloadConfig config)
    : exec_(&exec),
      router_(&router),
      config_(config),
      zipf_(config.keys, config.zipf_theta) {
  assert(config_.keys >= 1 && "kv::Workload: key space must be non-empty");
  if (config_.txn_fraction > 0.0) {
    assert(config_.txn_accounts >= 2 &&
           "kv::Workload: a transfer needs at least two accounts");
    assert(config_.accounts >= config_.txn_accounts &&
           "kv::Workload: account space smaller than one transfer");
    coordinator_.emplace(router);
    if (config_.txn_zipf_theta > 0.0) {
      txn_zipf_.emplace(config_.accounts, config_.txn_zipf_theta);
    }
  }
  sim::Rng root(config_.seed ^ 0x79C5B454ULL);
  clients_.resize(config_.clients);
  for (Client& c : clients_) {
    c.id = router_->register_client();
    c.rng = root.fork();
  }
}

void Workload::start() {
  assert(!started_ && "kv::Workload::start called twice");
  started_ = true;
  for (std::size_t i = 0; i < clients_.size(); ++i) {
    exec_->spawn(client_loop(this, i));
  }
}

std::size_t Workload::next_key(Client& c) {
  return config_.dist == KeyDist::kZipfian ? zipf_.next(c.rng)
                                           : c.rng.below(config_.keys);
}

std::size_t Workload::next_account(Client& c) {
  return txn_zipf_.has_value() ? txn_zipf_->next(c.rng)
                               : c.rng.below(config_.accounts);
}

Command Workload::next_op(Client& c) {
  Command cmd;
  const std::size_t key = next_key(c);
  std::string key_name = "key-";
  key_name += std::to_string(key);
  cmd.key = util::to_bytes(key_name);
  if (c.rng.unit() < read_fraction(config_.mix)) {
    cmd.op = Op::kGet;
    return cmd;
  }
  const Bytes fresh = util::to_bytes("v" + std::to_string(c.id) + "." +
                                     std::to_string(c.rng.below(1u << 20)));
  const double w = c.rng.unit();
  if (w < 0.8) {
    cmd.op = Op::kPut;
    cmd.value = fresh;
  } else if (w < 0.9) {
    cmd.op = Op::kCas;
    cmd.value = fresh;
    // Expect the value this client last saw for the key (empty = absent):
    // succeeds until another client slips a write in between — both CAS
    // outcomes occur, deterministically.
    const auto it = c.seen.find(key);
    if (it != c.seen.end()) cmd.expected = it->second;
  } else {
    cmd.op = Op::kDel;
  }
  return cmd;
}

void Workload::record(const Command& cmd, const Reply& reply,
                      sim::Time issued_at) {
  ++stats_.ops;
  stats_.last_reply_at = exec_->now();
  stats_.latencies.push_back(exec_->now() - issued_at);
  switch (cmd.op) {
    case Op::kGet: ++stats_.reads; break;
    case Op::kPut: ++stats_.puts; break;
    case Op::kDel: ++stats_.dels; break;
    case Op::kCas: ++stats_.cas_ops; break;
    default: break;  // admin ops never come from the workload generator
  }
  if (reply.status == Status::kNotFound) ++stats_.not_found;
  if (reply.status == Status::kCasMismatch) ++stats_.cas_mismatch;
}

sim::Task<void> Workload::run_txn(Workload* self, Client& c) {
  const sim::Time started_at = self->exec_->now();
  ++c.txns_started;
  // Txn ids are (client, ordinal) — unique per run, derived with no extra
  // rng draws.
  const txn::TxnId id = (static_cast<txn::TxnId>(c.id) << 24) | c.txns_started;

  // Draw distinct accounts (redraw duplicates — deterministic, and the
  // account space is larger than one transfer so this terminates).
  std::vector<std::size_t> accts;
  while (accts.size() < self->config_.txn_accounts) {
    const std::size_t a = self->next_account(c);
    if (std::find(accts.begin(), accts.end(), a) == accts.end()) {
      accts.push_back(a);
    }
  }

  // Read every account's committed balance — each read is an ordinary
  // counted client op through the same session the 2PC records will use.
  std::vector<Bytes> read_raw(accts.size());
  std::vector<std::int64_t> balance(accts.size(), 0);
  for (std::size_t i = 0; i < accts.size(); ++i) {
    Command get;
    get.op = Op::kGet;
    get.key = account_key(accts[i]);
    const sim::Time issued_at = self->exec_->now();
    const Reply reply = co_await self->router_->execute(c.id, get);
    self->record(get, reply, issued_at);
    if (reply.status == Status::kOk) {
      read_raw[i] = reply.value;
      balance[i] = parse_balance(reply.value);
    }
  }

  // The transfer: debit accts[0] by delta per credited account, credit the
  // rest — Σ balances is invariant under every committed transfer, which is
  // the harness's atomicity check. Each prepare guards on the exact bytes
  // read (empty = absent), so a write slipping in between read and prepare
  // aborts the transfer instead of losing the update.
  const std::int64_t delta = 1 + static_cast<std::int64_t>(c.rng.below(100));
  std::vector<txn::Write> writes(accts.size());
  for (std::size_t i = 0; i < accts.size(); ++i) {
    writes[i].kind = txn::WriteKind::kPut;
    writes[i].key = account_key(accts[i]);
    const std::int64_t next =
        i == 0
            ? balance[i] - delta * static_cast<std::int64_t>(accts.size() - 1)
            : balance[i] + delta;
    writes[i].value = util::to_bytes(std::to_string(next));
    writes[i].has_expected = true;
    writes[i].expected = read_raw[i];
  }

  const bool crash_here = self->config_.txn_crash_client == c.id &&
                          c.txns_started == self->config_.txn_crash_txn;
  // Foreign txn id for the scripted conflict: top bit set, which no
  // coordinator-generated (client << 24 | ordinal) id ever carries.
  const txn::TxnId blocker_txn = id | (std::uint64_t{1} << 63);
  if (crash_here && self->config_.txn_crash_conflict) {
    // Pre-lock the crash transaction's last key from a separate session so
    // its final prepare is refused (see WorkloadConfig::txn_crash_conflict).
    // The prepare is an ordinary counted client op; it applies exactly once.
    if (self->blocker_ == 0) self->blocker_ = self->router_->register_client();
    txn::PrepareRecord pr;
    pr.txn = blocker_txn;
    pr.write = txn::WriteKind::kPut;
    pr.value = read_raw.back();
    Command block;
    block.op = Op::kTxnPrepare;
    block.key = writes.back().key;
    block.value = txn::encode_prepare(pr);
    (void)co_await self->router_->execute(self->blocker_, block);
    ++self->stats_.ops;
  }
  txn::TxnReport rep = co_await self->coordinator_->run(
      c.id, id, writes,
      crash_here ? self->config_.txn_crash_records : txn::kNoCrash);
  // Only records that applied fresh count toward ops — the recovery
  // replay's cached re-deliveries must not inflate the exactly-once sum.
  self->stats_.ops += rep.fresh_records;
  if (rep.outcome == txn::Outcome::kCrashed) {
    // Crash window: the coordinator is gone, locks stay held, conflicting
    // transfers abort against them. Then the recovered coordinator replays
    // the stream under the original seqs and drives it to a decision.
    co_await self->exec_->sleep(self->config_.txn_crash_pause);
    const txn::TxnReport rec = co_await self->coordinator_->recover(
        c.id, id, writes, rep.first_seq, rep.records);
    self->stats_.ops += rec.fresh_records;
    ++self->stats_.txn_recoveries;
    rep = rec;
    if (self->config_.txn_crash_conflict) {
      // Release the planted lock so the run ends with zero residual locks —
      // the harness atomicity check counts every held lock as a failure.
      txn::DecisionRecord dr;
      dr.txn = blocker_txn;
      Command release;
      release.op = Op::kTxnAbort;
      release.key = writes.back().key;
      release.value = txn::encode_decision(dr);
      (void)co_await self->router_->execute(self->blocker_, release);
      ++self->stats_.ops;
    }
  }
  ++self->stats_.txns;
  self->stats_.last_reply_at = self->exec_->now();
  if (rep.outcome == txn::Outcome::kCommitted) {
    ++self->stats_.txn_commits;
    self->stats_.txn_commit_latencies.push_back(self->exec_->now() -
                                                started_at);
  } else {
    ++self->stats_.txn_aborts;
  }
}

sim::Task<void> Workload::client_loop(Workload* self, std::size_t idx) {
  Client& c = self->clients_[idx];
  for (std::size_t i = 0; i < self->config_.ops_per_client; ++i) {
    // The txn draw only exists in transactional runs, so a plain run's rng
    // stream — and therefore its whole fingerprint — is unchanged.
    if (self->config_.txn_fraction > 0.0 &&
        c.rng.unit() < self->config_.txn_fraction) {
      co_await run_txn(self, c);
      continue;
    }
    const Command cmd = self->next_op(c);
    const sim::Time issued_at = self->exec_->now();
    const Reply reply = co_await self->router_->execute(c.id, cmd);
    self->record(cmd, reply, issued_at);

    // Track the value the store now holds for this key, as this client
    // observed it (for future CAS expectations).
    const std::size_t key = [&] {
      // key index back out of "key-<i>" — cheaper to recompute than carry.
      const std::string k = util::to_string(cmd.key);
      return static_cast<std::size_t>(std::stoull(k.substr(4)));
    }();
    switch (cmd.op) {
      case Op::kGet:
        if (reply.status == Status::kOk) {
          c.seen[key] = reply.value;
        } else {
          c.seen[key] = Bytes{};
        }
        break;
      case Op::kPut:
        c.seen[key] = cmd.value;
        break;
      case Op::kDel:
        c.seen[key] = Bytes{};
        break;
      case Op::kCas:
        c.seen[key] = reply.status == Status::kOk ? cmd.value : reply.value;
        break;
      default:
        break;  // admin ops never come from the workload generator
    }
  }
  ++self->finished_;
}

}  // namespace mnm::kv
