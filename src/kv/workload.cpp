#include "src/kv/workload.hpp"

#include <cassert>
#include <cmath>
#include <string>

namespace mnm::kv {

const char* mix_name(Mix mix) {
  switch (mix) {
    case Mix::kA: return "A (50/50)";
    case Mix::kB: return "B (95/5)";
    case Mix::kC: return "C (read-only)";
  }
  return "?";
}

double read_fraction(Mix mix) {
  switch (mix) {
    case Mix::kA: return 0.5;
    case Mix::kB: return 0.95;
    case Mix::kC: return 1.0;
  }
  return 1.0;
}

ZipfGenerator::ZipfGenerator(std::size_t n, double theta)
    : n_(n == 0 ? 1 : n), theta_(theta), alpha_(1.0 / (1.0 - theta)) {
  // theta = 1 degenerates silently (alpha = inf makes every draw return
  // n - 1); the YCSB generator is defined for theta in (0, 1).
  assert(theta > 0.0 && theta < 1.0 &&
         "kv::ZipfGenerator: theta must be in (0, 1)");
  double zetan = 0.0;
  for (std::size_t i = 1; i <= n_; ++i) {
    zetan += 1.0 / std::pow(static_cast<double>(i), theta_);
  }
  zetan_ = zetan;
  const double zeta2 = 1.0 + 1.0 / std::pow(2.0, theta_);
  eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n_), 1.0 - theta_)) /
         (1.0 - zeta2 / zetan_);
}

std::size_t ZipfGenerator::next(sim::Rng& rng) {
  // The standard YCSB rejection-free mapping (Gray et al.'s quickly
  // generating billion-record synthetic databases).
  const double u = rng.unit();
  const double uz = u * zetan_;
  if (uz < 1.0) return 0;
  if (uz < 1.0 + std::pow(0.5, theta_)) return 1;
  const std::size_t idx = static_cast<std::size_t>(
      static_cast<double>(n_) * std::pow(eta_ * u - eta_ + 1.0, alpha_));
  return idx >= n_ ? n_ - 1 : idx;
}

Workload::Workload(sim::Executor& exec, Router& router, WorkloadConfig config)
    : exec_(&exec),
      router_(&router),
      config_(config),
      zipf_(config.keys, config.zipf_theta) {
  assert(config_.keys >= 1 && "kv::Workload: key space must be non-empty");
  sim::Rng root(config_.seed ^ 0x79C5B454ULL);
  clients_.resize(config_.clients);
  for (Client& c : clients_) {
    c.id = router_->register_client();
    c.rng = root.fork();
  }
}

void Workload::start() {
  assert(!started_ && "kv::Workload::start called twice");
  started_ = true;
  for (std::size_t i = 0; i < clients_.size(); ++i) {
    exec_->spawn(client_loop(this, i));
  }
}

std::size_t Workload::next_key(Client& c) {
  return config_.dist == KeyDist::kZipfian ? zipf_.next(c.rng)
                                           : c.rng.below(config_.keys);
}

Command Workload::next_op(Client& c) {
  Command cmd;
  const std::size_t key = next_key(c);
  std::string key_name = "key-";
  key_name += std::to_string(key);
  cmd.key = util::to_bytes(key_name);
  if (c.rng.unit() < read_fraction(config_.mix)) {
    cmd.op = Op::kGet;
    return cmd;
  }
  const Bytes fresh = util::to_bytes("v" + std::to_string(c.id) + "." +
                                     std::to_string(c.rng.below(1u << 20)));
  const double w = c.rng.unit();
  if (w < 0.8) {
    cmd.op = Op::kPut;
    cmd.value = fresh;
  } else if (w < 0.9) {
    cmd.op = Op::kCas;
    cmd.value = fresh;
    // Expect the value this client last saw for the key (empty = absent):
    // succeeds until another client slips a write in between — both CAS
    // outcomes occur, deterministically.
    const auto it = c.seen.find(key);
    if (it != c.seen.end()) cmd.expected = it->second;
  } else {
    cmd.op = Op::kDel;
  }
  return cmd;
}

void Workload::record(const Command& cmd, const Reply& reply,
                      sim::Time issued_at) {
  ++stats_.ops;
  stats_.last_reply_at = exec_->now();
  stats_.latencies.push_back(exec_->now() - issued_at);
  switch (cmd.op) {
    case Op::kGet: ++stats_.reads; break;
    case Op::kPut: ++stats_.puts; break;
    case Op::kDel: ++stats_.dels; break;
    case Op::kCas: ++stats_.cas_ops; break;
    default: break;  // admin ops never come from the workload generator
  }
  if (reply.status == Status::kNotFound) ++stats_.not_found;
  if (reply.status == Status::kCasMismatch) ++stats_.cas_mismatch;
}

sim::Task<void> Workload::client_loop(Workload* self, std::size_t idx) {
  Client& c = self->clients_[idx];
  for (std::size_t i = 0; i < self->config_.ops_per_client; ++i) {
    const Command cmd = self->next_op(c);
    const sim::Time issued_at = self->exec_->now();
    const Reply reply = co_await self->router_->execute(c.id, cmd);
    self->record(cmd, reply, issued_at);

    // Track the value the store now holds for this key, as this client
    // observed it (for future CAS expectations).
    const std::size_t key = [&] {
      // key index back out of "key-<i>" — cheaper to recompute than carry.
      const std::string k = util::to_string(cmd.key);
      return static_cast<std::size_t>(std::stoull(k.substr(4)));
    }();
    switch (cmd.op) {
      case Op::kGet:
        if (reply.status == Status::kOk) {
          c.seen[key] = reply.value;
        } else {
          c.seen[key] = Bytes{};
        }
        break;
      case Op::kPut:
        c.seen[key] = cmd.value;
        break;
      case Op::kDel:
        c.seen[key] = Bytes{};
        break;
      case Op::kCas:
        c.seen[key] = reply.status == Status::kOk ? cmd.value : reply.value;
        break;
      default:
        break;  // admin ops never come from the workload generator
    }
  }
  ++self->finished_;
}

}  // namespace mnm::kv
