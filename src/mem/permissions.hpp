// Memory permissions (paper §3, "Memory permissions" / "Permission change").
//
// Each region carries a permission: three disjoint process sets (R, W, RW).
// A process may read if it is in R ∪ RW and write if in W ∪ RW. Algorithms
// restrict *changes* to permissions with a legalChange predicate evaluated by
// the memory itself; when legalChange always refuses, permissions are static.

#pragma once

#include <algorithm>
#include <functional>
#include <initializer_list>
#include <string>
#include <vector>

#include "src/common.hpp"

namespace mnm::mem {

/// Small sorted-vector set of process ids. Permissions are built, copied and
/// compared on every region creation and permission change, and process sets
/// are tiny — a flat sorted vector beats a rb-tree node per element (see
/// ROADMAP.md "Flat demux tables"). Mirrors the std::set surface the call
/// sites use (insert, contains, empty, iteration, ==).
class IdSet {
 public:
  IdSet() = default;
  IdSet(std::initializer_list<ProcessId> xs) {
    for (ProcessId x : xs) insert(x);
  }

  void insert(ProcessId p) {
    const auto it = std::lower_bound(ids_.begin(), ids_.end(), p);
    if (it == ids_.end() || *it != p) ids_.insert(it, p);
  }
  template <typename It>
  void insert(It first, It last) {
    for (; first != last; ++first) insert(*first);
  }

  bool contains(ProcessId p) const {
    return std::binary_search(ids_.begin(), ids_.end(), p);
  }
  bool empty() const { return ids_.empty(); }
  std::size_t size() const { return ids_.size(); }
  auto begin() const { return ids_.begin(); }
  auto end() const { return ids_.end(); }

  bool operator==(const IdSet&) const = default;

 private:
  std::vector<ProcessId> ids_;  // sorted, unique
};

struct Permission {
  IdSet read;        // R: may read only
  IdSet write;       // W: may write only
  IdSet read_write;  // RW: may do both

  bool can_read(ProcessId p) const {
    return read.contains(p) || read_write.contains(p);
  }
  bool can_write(ProcessId p) const {
    return write.contains(p) || read_write.contains(p);
  }

  /// The paper's invariant: the three sets are pairwise disjoint.
  bool disjoint() const;

  /// SWMR permission: `writer` in RW, everyone else in R (paper §3:
  /// Rmr = P \ {p}, Wmr = ∅, RWmr = {p}).
  static Permission swmr(ProcessId writer, const std::vector<ProcessId>& all);

  /// Everyone may read and write (the disk model's single region).
  static Permission open(const std::vector<ProcessId>& all);

  /// Everyone may read; exactly one process may write (Protected Memory
  /// Paxos's per-memory exclusive-writer region).
  static Permission exclusive_writer(ProcessId writer,
                                     const std::vector<ProcessId>& all);

  /// Read-only for everyone (a revoked region, e.g. Region[ℓ] after panic).
  static Permission read_only(const std::vector<ProcessId>& all);

  bool operator==(const Permission&) const = default;
};

/// Decides whether `requester` may replace `current` with `proposed` on a
/// region. Returning false makes changePermission a no-op (§3).
using LegalChangeFn = std::function<bool(
    ProcessId requester, RegionId region, const Permission& current,
    const Permission& proposed)>;

/// Static permissions: every change is refused.
inline LegalChangeFn static_permissions() {
  return [](ProcessId, RegionId, const Permission&, const Permission&) {
    return false;
  };
}

/// Fully dynamic permissions: every change is allowed (crash-failure
/// algorithms, where processes follow the protocol).
inline LegalChangeFn dynamic_permissions() {
  return [](ProcessId, RegionId, const Permission&, const Permission&) {
    return true;
  };
}

}  // namespace mnm::mem
