// Memory permissions (paper §3, "Memory permissions" / "Permission change").
//
// Each region carries a permission: three disjoint process sets (R, W, RW).
// A process may read if it is in R ∪ RW and write if in W ∪ RW. Algorithms
// restrict *changes* to permissions with a legalChange predicate evaluated by
// the memory itself; when legalChange always refuses, permissions are static.

#pragma once

#include <functional>
#include <initializer_list>
#include <set>
#include <string>

#include "src/common.hpp"

namespace mnm::mem {

struct Permission {
  std::set<ProcessId> read;        // R: may read only
  std::set<ProcessId> write;       // W: may write only
  std::set<ProcessId> read_write;  // RW: may do both

  bool can_read(ProcessId p) const {
    return read.contains(p) || read_write.contains(p);
  }
  bool can_write(ProcessId p) const {
    return write.contains(p) || read_write.contains(p);
  }

  /// The paper's invariant: the three sets are pairwise disjoint.
  bool disjoint() const;

  /// SWMR permission: `writer` in RW, everyone else in R (paper §3:
  /// Rmr = P \ {p}, Wmr = ∅, RWmr = {p}).
  static Permission swmr(ProcessId writer, const std::vector<ProcessId>& all);

  /// Everyone may read and write (the disk model's single region).
  static Permission open(const std::vector<ProcessId>& all);

  /// Everyone may read; exactly one process may write (Protected Memory
  /// Paxos's per-memory exclusive-writer region).
  static Permission exclusive_writer(ProcessId writer,
                                     const std::vector<ProcessId>& all);

  /// Read-only for everyone (a revoked region, e.g. Region[ℓ] after panic).
  static Permission read_only(const std::vector<ProcessId>& all);

  bool operator==(const Permission&) const = default;
};

/// Decides whether `requester` may replace `current` with `proposed` on a
/// region. Returning false makes changePermission a no-op (§3).
using LegalChangeFn = std::function<bool(
    ProcessId requester, RegionId region, const Permission& current,
    const Permission& proposed)>;

/// Static permissions: every change is refused.
inline LegalChangeFn static_permissions() {
  return [](ProcessId, RegionId, const Permission&, const Permission&) {
    return false;
  };
}

/// Fully dynamic permissions: every change is allowed (crash-failure
/// algorithms, where processes follow the protocol).
inline LegalChangeFn dynamic_permissions() {
  return [](ProcessId, RegionId, const Permission&, const Permission&) {
    return true;
  };
}

}  // namespace mnm::mem
