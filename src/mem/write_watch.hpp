// Write-change watch over a set of memories.
//
// Pollers that re-read registers "until something shows up" (NEB's delivery
// scan, Cheap Quorum's follower loops) turn into waiters with this helper:
// snapshot() the memories' write-version signals, do one read pass, and if
// nothing useful surfaced, arm() a sim::Select — it resumes as soon as any
// memory applies a write past the snapshot. Because the snapshot is taken
// *before* the read pass, a write that lands mid-pass re-arms the select
// immediately: no lost wakeups, no poll ticks.
//
// Backends without a write-version signal (none in-tree) make complete()
// false; callers must then keep a timeout fallback on the select.

#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "src/mem/memory.hpp"
#include "src/sim/select.hpp"
#include "src/sim/sync.hpp"
#include "src/sim/task.hpp"
#include "src/sim/time.hpp"

namespace mnm::mem {

class WriteWatch {
 public:
  explicit WriteWatch(const std::vector<MemoryIface*>& memories) {
    signals_.reserve(memories.size());
    for (MemoryIface* m : memories) {
      if (sim::VersionSignal* s = m->write_version()) {
        if (signals_.size() == sim::Select::kMaxSources) {
          // More memories than select slots: watch the first kMaxSources and
          // report incomplete so callers keep their timeout fallback —
          // graceful degradation to polling instead of a failed arm().
          complete_ = false;
          break;
        }
        signals_.push_back(s);
      } else {
        complete_ = false;
      }
    }
    seen_.assign(signals_.size(), 0);
  }

  /// Record the current write versions; call before the read pass.
  void snapshot() {
    for (std::size_t i = 0; i < signals_.size(); ++i) {
      seen_[i] = signals_[i]->version();
    }
  }

  /// Register every memory as a select source, ready once its version moves
  /// past the last snapshot.
  void arm(sim::Select& sel) const {
    for (std::size_t i = 0; i < signals_.size(); ++i) {
      sel.on(*signals_[i], seen_[i]);
    }
  }

  /// True when every memory reports writes — a select armed from this watch
  /// needs no timeout fallback to stay live.
  bool complete() const { return complete_ && !signals_.empty(); }

  /// The whole wait in one call: suspend until a write lands past the last
  /// snapshot, or `deadline` passes. An incomplete watch always re-checks by
  /// `poll` (bounded by the deadline) so unsignalled backends stay live;
  /// pass sim::kTimeInfinity as the deadline for a pure change wait.
  sim::Task<void> wait_change(sim::Executor& exec, sim::Time deadline,
                              sim::Time poll) {
    sim::Select sel(exec);
    arm(sel);
    if (!complete()) {
      sel.until(std::min(deadline, exec.now() + poll));
    } else if (deadline != sim::kTimeInfinity) {
      sel.until(deadline);
    }
    (void)co_await sel;
  }

 private:
  std::vector<sim::VersionSignal*> signals_;
  std::vector<std::uint64_t> seen_;
  bool complete_ = true;
};

}  // namespace mnm::mem
