#include "src/mem/permissions.hpp"

#include <algorithm>

namespace mnm::mem {

bool Permission::disjoint() const {
  for (ProcessId p : read) {
    if (write.contains(p) || read_write.contains(p)) return false;
  }
  for (ProcessId p : write) {
    if (read_write.contains(p)) return false;
  }
  return true;
}

Permission Permission::swmr(ProcessId writer, const std::vector<ProcessId>& all) {
  Permission perm;
  for (ProcessId p : all) {
    if (p == writer) {
      perm.read_write.insert(p);
    } else {
      perm.read.insert(p);
    }
  }
  return perm;
}

Permission Permission::open(const std::vector<ProcessId>& all) {
  Permission perm;
  perm.read_write.insert(all.begin(), all.end());
  return perm;
}

Permission Permission::exclusive_writer(ProcessId writer,
                                        const std::vector<ProcessId>& all) {
  // Same shape as SWMR; named separately because Protected Memory Paxos
  // *transfers* it between processes at run time.
  return swmr(writer, all);
}

Permission Permission::read_only(const std::vector<ProcessId>& all) {
  Permission perm;
  perm.read.insert(all.begin(), all.end());
  return perm;
}

}  // namespace mnm::mem
