// Shared memories of the M&M model (paper §3, Figure 1).
//
// A memory is a set of named registers grouped into (possibly overlapping)
// regions, each region guarded by a permission. Operations:
//
//   write(mr, r, v) → ack | nak       (nak when r ∉ mr or no write permission)
//   read(mr, r)     → value | nak     (nak when r ∉ mr or no read permission)
//   changePermission(mr, perm)        (filtered through legalChange, §3)
//
// Timing: every operation costs kMemoryOpDelay (2 units — the round trip the
// paper charges memory operations). The request *takes effect* at the
// midpoint (arrival at the memory) and the response lands at the full delay;
// this models RDMA's NIC-side execution and gives per-memory linearizable
// registers, from which the SWMR layer (src/swmr) builds the regular
// registers the algorithms need.
//
// Failures: a crashed memory never executes or answers anything again —
// callers hang (§3: "operations ... hang without returning a response").
// A crash between the effect point and the response leaves the write applied
// but unacknowledged, exactly the ambiguity real systems face.

#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/common.hpp"
#include "src/mem/permissions.hpp"
#include "src/sim/executor.hpp"
#include "src/sim/oneshot.hpp"
#include "src/sim/sync.hpp"
#include "src/sim/task.hpp"

namespace mnm::mem {

enum class Status : std::uint8_t { kAck, kNak };

struct ReadResult {
  Status status = Status::kNak;
  Bytes value;  // meaningful only when status == kAck

  bool ok() const { return status == Status::kAck; }
};

/// Abstract memory surface. `mem::Memory` implements it directly;
/// `verbs::VerbsMemory` implements it through the RDMA-like layer (§7
/// mapping). Algorithms are written against this interface so they run on
/// either backend.
class MemoryIface {
 public:
  virtual ~MemoryIface() = default;

  virtual MemoryId id() const = 0;

  virtual sim::Task<Status> write(ProcessId caller, RegionId region,
                                  std::string reg, Bytes value) = 0;
  virtual sim::Task<ReadResult> read(ProcessId caller, RegionId region,
                                     std::string reg) = 0;
  /// Scatter-gather read: all of `regs` in one request / one response (the
  /// RDMA doorbell-batched read, §7). Costs a single op round trip and a
  /// single permission evaluation per slot at the same instant, so an
  /// n-slot scan is one completion event instead of n. Results are in
  /// `regs` order; a crashed memory hangs the whole batch, like read().
  virtual sim::Task<std::vector<ReadResult>> read_many(
      ProcessId caller, RegionId region, std::vector<std::string> regs) = 0;
  virtual sim::Task<Status> change_permission(ProcessId caller, RegionId region,
                                              Permission proposed) = 0;

  /// Bumped at the effect point of every applied write (never for naks).
  /// Pollers turned waiters (NEB's delivery scan) select on this instead of
  /// sleeping; nullptr means the backend offers no notification and callers
  /// must keep a timeout fallback.
  virtual sim::VersionSignal* write_version() { return nullptr; }
};

class Memory : public MemoryIface {
 public:
  Memory(sim::Executor& exec, MemoryId id,
         sim::Time op_delay = sim::kMemoryOpDelay);

  MemoryId id() const override { return id_; }

  /// Define a region. Registers belong to it if their name starts with any
  /// of `prefixes` (an empty prefix list with `exact` names is also
  /// supported). Regions may overlap (§3) though the shipped algorithms
  /// keep them disjoint.
  RegionId create_region(std::vector<std::string> prefixes, Permission perm,
                         LegalChangeFn legal = static_permissions(),
                         std::vector<std::string> exact = {});

  sim::Task<Status> write(ProcessId caller, RegionId region,
                          std::string reg, Bytes value) override;
  sim::Task<ReadResult> read(ProcessId caller, RegionId region,
                             std::string reg) override;
  sim::Task<std::vector<ReadResult>> read_many(
      ProcessId caller, RegionId region,
      std::vector<std::string> regs) override;
  sim::Task<Status> change_permission(ProcessId caller, RegionId region,
                                      Permission proposed) override;

  sim::VersionSignal* write_version() override { return &write_version_; }

  /// Crash the memory: all in-flight and future operations hang forever.
  void crash() { crashed_ = true; }
  bool crashed() const { return crashed_; }

  // --- Introspection for tests and the harness (no delay, no permission
  // checks; not part of the model's operation surface). ---
  std::optional<Bytes> peek(const std::string& reg) const;
  void poke(const std::string& reg, Bytes value);
  const Permission& region_permission(RegionId region) const;
  bool region_contains(RegionId region, const std::string& reg) const;

  // Metrics. `reads` counts per-slot detail (a read_many of n slots adds n);
  // `read_batches` counts one per read_many call.
  std::uint64_t reads() const { return reads_; }
  std::uint64_t read_batches() const { return read_batches_; }
  std::uint64_t writes() const { return writes_; }
  std::uint64_t permission_changes() const { return perm_changes_; }
  std::uint64_t naks() const { return naks_; }

 private:
  struct Region {
    std::vector<std::string> prefixes;
    std::vector<std::string> exact;
    Permission perm;
    LegalChangeFn legal;

    bool contains(const std::string& reg) const;
  };

  const Region* find_region(RegionId id) const;

  sim::Executor* exec_;
  MemoryId id_;
  sim::Time op_delay_;
  bool crashed_ = false;
  std::vector<Region> regions_;  // region id r lives at index r - 1
  std::map<std::string, Bytes> registers_;
  sim::VersionSignal write_version_;

  std::uint64_t reads_ = 0;
  std::uint64_t read_batches_ = 0;
  std::uint64_t writes_ = 0;
  std::uint64_t perm_changes_ = 0;
  std::uint64_t naks_ = 0;
};

}  // namespace mnm::mem
