#include "src/mem/memory.hpp"

#include <stdexcept>

namespace mnm::mem {

Memory::Memory(sim::Executor& exec, MemoryId id, sim::Time op_delay)
    : exec_(&exec), id_(id), op_delay_(op_delay), write_version_(exec) {}

bool Memory::Region::contains(const std::string& reg) const {
  for (const auto& p : prefixes) {
    if (reg.size() >= p.size() && reg.compare(0, p.size(), p) == 0) return true;
  }
  for (const auto& e : exact) {
    if (reg == e) return true;
  }
  return false;
}

RegionId Memory::create_region(std::vector<std::string> prefixes,
                               Permission perm, LegalChangeFn legal,
                               std::vector<std::string> exact) {
  if (!perm.disjoint()) {
    throw std::invalid_argument("Memory::create_region: R/W/RW must be disjoint");
  }
  regions_.push_back(Region{std::move(prefixes), std::move(exact),
                            std::move(perm), std::move(legal)});
  return static_cast<RegionId>(regions_.size());
}

const Memory::Region* Memory::find_region(RegionId id) const {
  if (id < 1 || id > regions_.size()) return nullptr;
  return &regions_[id - 1];
}

sim::Task<Status> Memory::write(ProcessId caller, RegionId region,
                                std::string reg, Bytes value) {
  sim::OneShot<Status> done(*exec_);
  const sim::Time effect_at = op_delay_ / 2;  // arrival at the memory
  // Op state lives in one pooled node so the two scheduled callbacks below
  // capture a pointer, not the register name and value (keeps every event
  // inside InlineFn's inline budget).
  struct Op {
    ProcessId caller;
    RegionId region;
    std::string reg;
    Bytes value;
    std::optional<Status> outcome;
  };
  auto op = sim::Rc<Op>::make(Op{caller, region, std::move(reg),
                                 std::move(value), std::nullopt});

  exec_->schedule_after(effect_at, [this, op] {
    if (crashed_) return;  // request lost inside the dead memory
    const Region* r = find_region(op->region);
    if (r == nullptr || !r->contains(op->reg) || !r->perm.can_write(op->caller)) {
      ++naks_;
      op->outcome = Status::kNak;
      return;
    }
    ++writes_;
    registers_[op->reg] = std::move(op->value);
    op->outcome = Status::kAck;
    write_version_.bump();
  });
  exec_->schedule_after(op_delay_, [this, done, op]() mutable {
    if (crashed_ || !op->outcome.has_value()) return;  // response never leaves
    done.fulfill(*op->outcome);
  });

  co_return co_await done.wait();
}

sim::Task<ReadResult> Memory::read(ProcessId caller, RegionId region,
                                   std::string reg) {
  sim::OneShot<ReadResult> done(*exec_);
  const sim::Time effect_at = op_delay_ / 2;
  struct Op {
    ProcessId caller;
    RegionId region;
    std::string reg;
    std::optional<ReadResult> outcome;
  };
  auto op = sim::Rc<Op>::make(Op{caller, region, std::move(reg), std::nullopt});

  exec_->schedule_after(effect_at, [this, op] {
    if (crashed_) return;
    const Region* r = find_region(op->region);
    if (r == nullptr || !r->contains(op->reg) || !r->perm.can_read(op->caller)) {
      ++naks_;
      op->outcome = ReadResult{Status::kNak, {}};
      return;
    }
    ++reads_;
    const auto it = registers_.find(op->reg);
    op->outcome = ReadResult{Status::kAck,
                             it == registers_.end() ? util::bottom() : it->second};
  });
  exec_->schedule_after(op_delay_, [this, done, op]() mutable {
    if (crashed_ || !op->outcome.has_value()) return;
    done.fulfill(std::move(*op->outcome));
  });

  co_return co_await done.wait();
}

sim::Task<std::vector<ReadResult>> Memory::read_many(
    ProcessId caller, RegionId region, std::vector<std::string> regs) {
  sim::OneShot<std::vector<ReadResult>> done(*exec_);
  const sim::Time effect_at = op_delay_ / 2;
  struct Op {
    ProcessId caller;
    RegionId region;
    std::vector<std::string> regs;
    std::optional<std::vector<ReadResult>> outcome;
  };
  auto op = sim::Rc<Op>::make(Op{caller, region, std::move(regs), std::nullopt});

  // One effect point for the whole batch: every slot is evaluated against
  // the region permission at the same instant, and the caller pays one
  // round trip instead of regs.size() of them.
  exec_->schedule_after(effect_at, [this, op] {
    if (crashed_) return;
    ++read_batches_;
    const Region* r = find_region(op->region);
    std::vector<ReadResult> out;
    out.reserve(op->regs.size());
    const bool readable = r != nullptr && r->perm.can_read(op->caller);
    for (const auto& reg : op->regs) {
      if (!readable || !r->contains(reg)) {
        ++naks_;
        out.push_back(ReadResult{Status::kNak, {}});
        continue;
      }
      ++reads_;
      const auto it = registers_.find(reg);
      out.push_back(ReadResult{
          Status::kAck, it == registers_.end() ? util::bottom() : it->second});
    }
    op->outcome = std::move(out);
  });
  exec_->schedule_after(op_delay_, [this, done, op]() mutable {
    if (crashed_ || !op->outcome.has_value()) return;
    done.fulfill(std::move(*op->outcome));
  });

  co_return co_await done.wait();
}

sim::Task<Status> Memory::change_permission(ProcessId caller, RegionId region,
                                            Permission proposed) {
  sim::OneShot<Status> done(*exec_);
  const sim::Time effect_at = op_delay_ / 2;
  struct Op {
    ProcessId caller;
    RegionId region;
    Permission proposed;
    std::optional<Status> outcome;
  };
  auto op = sim::Rc<Op>::make(Op{caller, region, std::move(proposed), std::nullopt});

  exec_->schedule_after(effect_at, [this, op] {
    if (crashed_) return;
    if (op->region < 1 || op->region > regions_.size() || !op->proposed.disjoint()) {
      ++naks_;
      op->outcome = Status::kNak;
      return;
    }
    Region& r = regions_[op->region - 1];
    // §3: the system evaluates legalChange to decide whether the change
    // takes effect or becomes a no-op. A refused change still *returns* (it
    // is a no-op, not a hang) — we report it as nak so callers can tell.
    if (!r.legal(op->caller, op->region, r.perm, op->proposed)) {
      ++naks_;
      op->outcome = Status::kNak;
      return;
    }
    ++perm_changes_;
    r.perm = std::move(op->proposed);
    op->outcome = Status::kAck;
  });
  exec_->schedule_after(op_delay_, [this, done, op]() mutable {
    if (crashed_ || !op->outcome.has_value()) return;
    done.fulfill(*op->outcome);
  });

  co_return co_await done.wait();
}

std::optional<Bytes> Memory::peek(const std::string& reg) const {
  const auto it = registers_.find(reg);
  if (it == registers_.end()) return std::nullopt;
  return it->second;
}

void Memory::poke(const std::string& reg, Bytes value) {
  registers_[reg] = std::move(value);
  write_version_.bump();  // injected state counts as a write for watchers
}

const Permission& Memory::region_permission(RegionId region) const {
  const Region* r = find_region(region);
  if (r == nullptr) throw std::out_of_range("Memory::region_permission");
  return r->perm;
}

bool Memory::region_contains(RegionId region, const std::string& reg) const {
  const Region* r = find_region(region);
  return r != nullptr && r->contains(reg);
}

}  // namespace mnm::mem
