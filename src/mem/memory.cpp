#include "src/mem/memory.hpp"

#include <stdexcept>

namespace mnm::mem {

Memory::Memory(sim::Executor& exec, MemoryId id, sim::Time op_delay)
    : exec_(&exec), id_(id), op_delay_(op_delay) {}

bool Memory::Region::contains(const std::string& reg) const {
  for (const auto& p : prefixes) {
    if (reg.size() >= p.size() && reg.compare(0, p.size(), p) == 0) return true;
  }
  for (const auto& e : exact) {
    if (reg == e) return true;
  }
  return false;
}

RegionId Memory::create_region(std::vector<std::string> prefixes,
                               Permission perm, LegalChangeFn legal,
                               std::vector<std::string> exact) {
  if (!perm.disjoint()) {
    throw std::invalid_argument("Memory::create_region: R/W/RW must be disjoint");
  }
  const RegionId rid = next_region_++;
  regions_.emplace(rid, Region{std::move(prefixes), std::move(exact),
                               std::move(perm), std::move(legal)});
  return rid;
}

const Memory::Region* Memory::find_region(RegionId id) const {
  const auto it = regions_.find(id);
  return it == regions_.end() ? nullptr : &it->second;
}

sim::Task<Status> Memory::write(ProcessId caller, RegionId region,
                                std::string reg, Bytes value) {
  sim::OneShot<Status> done(*exec_);
  const sim::Time effect_at = op_delay_ / 2;  // arrival at the memory
  auto outcome = std::make_shared<std::optional<Status>>();

  exec_->call_after(effect_at, [this, caller, region, reg, value = std::move(value),
                                outcome]() mutable {
    if (crashed_) return;  // request lost inside the dead memory
    const Region* r = find_region(region);
    if (r == nullptr || !r->contains(reg) || !r->perm.can_write(caller)) {
      ++naks_;
      *outcome = Status::kNak;
      return;
    }
    ++writes_;
    registers_[reg] = std::move(value);
    *outcome = Status::kAck;
  });
  exec_->call_after(op_delay_, [this, done, outcome]() mutable {
    if (crashed_ || !outcome->has_value()) return;  // response never leaves
    done.fulfill(**outcome);
  });

  co_return co_await done.wait();
}

sim::Task<ReadResult> Memory::read(ProcessId caller, RegionId region,
                                   std::string reg) {
  sim::OneShot<ReadResult> done(*exec_);
  const sim::Time effect_at = op_delay_ / 2;
  auto outcome = std::make_shared<std::optional<ReadResult>>();

  exec_->call_after(effect_at, [this, caller, region, reg, outcome] {
    if (crashed_) return;
    const Region* r = find_region(region);
    if (r == nullptr || !r->contains(reg) || !r->perm.can_read(caller)) {
      ++naks_;
      *outcome = ReadResult{Status::kNak, {}};
      return;
    }
    ++reads_;
    const auto it = registers_.find(reg);
    *outcome = ReadResult{Status::kAck,
                          it == registers_.end() ? util::bottom() : it->second};
  });
  exec_->call_after(op_delay_, [this, done, outcome]() mutable {
    if (crashed_ || !outcome->has_value()) return;
    done.fulfill(std::move(**outcome));
  });

  co_return co_await done.wait();
}

sim::Task<Status> Memory::change_permission(ProcessId caller, RegionId region,
                                            Permission proposed) {
  sim::OneShot<Status> done(*exec_);
  const sim::Time effect_at = op_delay_ / 2;
  auto outcome = std::make_shared<std::optional<Status>>();

  exec_->call_after(effect_at, [this, caller, region, proposed = std::move(proposed),
                                outcome]() mutable {
    if (crashed_) return;
    const auto it = regions_.find(region);
    if (it == regions_.end() || !proposed.disjoint()) {
      ++naks_;
      *outcome = Status::kNak;
      return;
    }
    Region& r = it->second;
    // §3: the system evaluates legalChange to decide whether the change
    // takes effect or becomes a no-op. A refused change still *returns* (it
    // is a no-op, not a hang) — we report it as nak so callers can tell.
    if (!r.legal(caller, region, r.perm, proposed)) {
      ++naks_;
      *outcome = Status::kNak;
      return;
    }
    ++perm_changes_;
    r.perm = std::move(proposed);
    *outcome = Status::kAck;
  });
  exec_->call_after(op_delay_, [this, done, outcome]() mutable {
    if (crashed_ || !outcome->has_value()) return;
    done.fulfill(**outcome);
  });

  co_return co_await done.wait();
}

std::optional<Bytes> Memory::peek(const std::string& reg) const {
  const auto it = registers_.find(reg);
  if (it == registers_.end()) return std::nullopt;
  return it->second;
}

void Memory::poke(const std::string& reg, Bytes value) {
  registers_[reg] = std::move(value);
}

const Permission& Memory::region_permission(RegionId region) const {
  const Region* r = find_region(region);
  if (r == nullptr) throw std::out_of_range("Memory::region_permission");
  return r->perm;
}

bool Memory::region_contains(RegionId region, const std::string& reg) const {
  const Region* r = find_region(region);
  return r != nullptr && r->contains(reg);
}

}  // namespace mnm::mem
