#include "src/txn/record.hpp"

namespace mnm::txn {

Bytes encode_prepare(const PrepareRecord& rec) {
  util::Writer w(8 + 1 + 4 + rec.value.size() + 1 + 4 + rec.expected.size());
  w.u64(rec.txn)
      .u8(static_cast<std::uint8_t>(rec.write))
      .bytes(rec.value)
      .u8(rec.has_expected ? 1 : 0);
  if (rec.has_expected) w.bytes(rec.expected);
  return std::move(w).take();
}

std::optional<PrepareRecord> decode_prepare(util::ByteView raw) {
  try {
    util::Reader r(raw);
    PrepareRecord rec;
    rec.txn = r.u64();
    const std::uint8_t write = r.u8();
    if (write < static_cast<std::uint8_t>(WriteKind::kPut) ||
        write > static_cast<std::uint8_t>(WriteKind::kDel)) {
      return std::nullopt;
    }
    rec.write = static_cast<WriteKind>(write);
    rec.value = r.bytes();
    // Canonical form: a delete buffers no payload.
    if (rec.write == WriteKind::kDel && !rec.value.empty()) {
      return std::nullopt;
    }
    const std::uint8_t guard = r.u8();
    if (guard > 1) return std::nullopt;
    rec.has_expected = guard != 0;
    if (rec.has_expected) rec.expected = r.bytes();
    r.expect_end();
    return rec;
  } catch (const util::SerdeError&) {
    return std::nullopt;
  }
}

Bytes encode_decision(const DecisionRecord& rec) {
  util::Writer w(8);
  w.u64(rec.txn);
  return std::move(w).take();
}

std::optional<DecisionRecord> decode_decision(util::ByteView raw) {
  try {
    util::Reader r(raw);
    DecisionRecord rec;
    rec.txn = r.u64();
    r.expect_end();
    return rec;
  } catch (const util::SerdeError&) {
    return std::nullopt;
  }
}

}  // namespace mnm::txn
