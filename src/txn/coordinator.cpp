#include "src/txn/coordinator.hpp"

#include <cassert>
#include <utility>

namespace mnm::txn {

sim::Task<TxnReport> Coordinator::run(kv::ClientId client, TxnId txn,
                                      std::vector<Write> writes,
                                      std::size_t stop_after) {
  // The first record will be stamped next_seq + 1; recording it up front is
  // what makes the crashed attempt recoverable.
  const std::uint64_t first_seq = router_->next_seq(client) + 1;
  return drive(client, txn, std::move(writes), stop_after, first_seq,
               /*completed=*/0, /*replay=*/false);
}

sim::Task<TxnReport> Coordinator::recover(kv::ClientId client, TxnId txn,
                                          std::vector<Write> writes,
                                          std::uint64_t first_seq,
                                          std::size_t completed) {
  return drive(client, txn, std::move(writes), kNoCrash, first_seq, completed,
               /*replay=*/true);
}

sim::Task<TxnReport> Coordinator::drive(kv::ClientId client, TxnId txn,
                                        std::vector<Write> writes,
                                        std::size_t stop_after,
                                        std::uint64_t first_seq,
                                        std::size_t completed, bool replay) {
#ifndef NDEBUG
  for (std::size_t i = 1; i < writes.size(); ++i) {
    for (std::size_t j = 0; j < i; ++j) {
      assert(writes[i].key != writes[j].key &&
             "txn::Coordinator: keys must be distinct within a transaction");
    }
  }
#endif
  TxnReport rep;
  rep.first_seq = first_seq;
  std::size_t pos = 0;  // record index == seq offset from first_seq

  // Phase 1: prepares in write order, stopping at the first refusal.
  std::size_t prepared = 0;
  bool refused = false;
  for (std::size_t i = 0; i < writes.size() && !refused; ++i) {
    if (pos == stop_after) {
      rep.outcome = Outcome::kCrashed;
      co_return rep;
    }
    kv::Command cmd;
    cmd.op = kv::Op::kTxnPrepare;
    cmd.key = writes[i].key;
    PrepareRecord pr;
    pr.txn = txn;
    pr.write = writes[i].kind;
    if (writes[i].kind == WriteKind::kPut) pr.value = writes[i].value;
    pr.has_expected = writes[i].has_expected;
    if (pr.has_expected) pr.expected = writes[i].expected;
    cmd.value = encode_prepare(pr);
    kv::Reply reply;
    if (replay) {
      reply = co_await router_->execute_replay(client, first_seq + pos,
                                               std::move(cmd));
    } else {
      reply = co_await router_->execute(client, std::move(cmd));
    }
    if (!replay || pos >= completed) ++rep.fresh_records;
    ++pos;
    rep.records = pos;
    // Replayed prepares always read their true outcome: a prepare behind
    // the session cache re-delivers from the participant's prepare mark
    // (kOk / kTxnConflict / kTxnAborted, whatever it originally was), so
    // kStaleDup can only mean a *newer prepare* of this session exists on
    // that shard — which the coordinator only sent after this one was
    // accepted. See the file comment in coordinator.hpp.
    if (reply.status == kv::Status::kOk ||
        reply.status == kv::Status::kStaleDup) {
      ++prepared;
    } else {
      refused = true;
    }
  }

  // Phase 2: the decision, one record per key — every key on commit, only
  // the prepared ones on abort (the refusing shard took no lock). Replies
  // carry no control flow: locks are released whether the decision applies
  // fresh or re-delivers from a session cache.
  const bool commit = !refused && prepared == writes.size();
  const std::size_t decisions = commit ? writes.size() : prepared;
  for (std::size_t i = 0; i < decisions; ++i) {
    if (pos == stop_after) {
      rep.outcome = Outcome::kCrashed;
      co_return rep;
    }
    kv::Command cmd;
    cmd.op = commit ? kv::Op::kTxnCommit : kv::Op::kTxnAbort;
    cmd.key = writes[i].key;
    DecisionRecord dr;
    dr.txn = txn;
    cmd.value = encode_decision(dr);
    if (replay) {
      (void)co_await router_->execute_replay(client, first_seq + pos,
                                             std::move(cmd));
    } else {
      (void)co_await router_->execute(client, std::move(cmd));
    }
    if (!replay || pos >= completed) ++rep.fresh_records;
    ++pos;
    rep.records = pos;
  }
  rep.outcome = commit ? Outcome::kCommitted : Outcome::kAborted;
  co_return rep;
}

}  // namespace mnm::txn
