// txn::Coordinator — client-side two-phase commit over the shards'
// replicated logs.
//
// A transaction is a list of writes to distinct keys. The coordinator runs
// it through an ordinary kv::Router client session, one record per key:
//
//   Phase 1 (prepare): one Op::kTxnPrepare per key, in write order, stopping
//   at the first refusal. Each prepare locks its key at the key's shard and
//   buffers the write; a kTxnConflict (lock held by another transaction, or
//   the optimistic guard missed) decides the transaction *abort* — the
//   no-wait rule means a refusal is a final, committed outcome, so there is
//   no lock-wait deadlock and no distributed wait-for graph.
//
//   Phase 2 (decision): all prepares accepted ⇒ one Op::kTxnCommit per key;
//   otherwise one Op::kTxnAbort per *prepared* key. Decisions release the
//   locks, applying the buffered writes on commit.
//
// Every record is a normal keyed client command: it routes by key (so a key
// that moved to another shard mid-transaction simply takes its decision
// record to the new owner, which imported the lock with the drained range),
// bounces on sealed buckets, re-signs on re-route, retries on timeout, and
// advances the session exactly-once — the machinery transactions get for
// free by living *above* the log instead of beside it.
//
// Coordinator crash recovery (presumed abort, no new consensus): run() can
// stop dead after any completed record, modeling a coordinator crash; the
// report carries the first record's session seq. recover() then re-drives
// the *identical* record stream under the *same* (client, seq) pairs via
// Router::execute_replay. Records the crashed attempt completed hit the
// participants' session dedup: the newest record per shard re-delivers its
// cached reply, and a prepare that fell behind it re-delivers from the
// session's *prepare mark* — each kv::StateMachine session remembers the
// seq and outcome of its newest TxnPrepare, and decision records never
// overwrite that mark — so a replayed prepare always reads its true
// accept/refuse outcome. (kStaleDup alone would be ambiguous: a REFUSED
// prepare's shard can see a later abort record for an earlier key of the
// same transaction, and inferring acceptance from staleness would turn
// that abort into a partial commit.) A kStaleDup can therefore only mean a
// *newer prepare* of this session exists on that shard — possible only
// after this prepare was accepted and the coordinator moved on — so the
// replayed control flow re-derives exactly the original decision from
// participant state alone; records past the crash point apply fresh.
// Either way every lock is released and the transaction commits everywhere
// or aborts everywhere, exactly once.
//
// The mark covers one prepare per (session, shard) — the newest — which is
// why a crashed transaction must be recovered on its session before that
// session issues any new prepares (the closed-loop workload does exactly
// that; nothing enforces it for arbitrary callers).

#pragma once

#include <cstdint>
#include <vector>

#include "src/common.hpp"
#include "src/kv/command.hpp"
#include "src/kv/router.hpp"
#include "src/sim/task.hpp"
#include "src/txn/record.hpp"

namespace mnm::txn {

/// One intended mutation of a transaction. Keys must be distinct within a
/// transaction — each key sees at most two records (prepare, then decision),
/// which is what makes the recovery replay's reply interpretation total.
struct Write {
  WriteKind kind = WriteKind::kPut;
  Bytes key;
  Bytes value;  // kPut payload; ignored for kDel
  /// Optimistic guard (see PrepareRecord::expected).
  bool has_expected = false;
  Bytes expected;
};

enum class Outcome : std::uint8_t {
  kCommitted = 1,  // every key's buffered write applied
  kAborted = 2,    // no key's write applied (a prepare was refused)
  kCrashed = 3,    // stopped at the requested crash point; recover() resolves
};

/// What one coordinator attempt (or recovery) did.
struct TxnReport {
  Outcome outcome = Outcome::kAborted;
  /// Records completed (replied) by this attempt, crash point included.
  std::size_t records = 0;
  /// Records that applied *fresh* at a shard during this attempt — replayed
  /// duplicates re-deliver cached replies and are excluded, so the harness
  /// exactly-once sum (Σ ops_applied == completed client ops) stays exact
  /// across a crash + recovery.
  std::size_t fresh_records = 0;
  /// Session seq of the transaction's first record — with the write list,
  /// all a recovering coordinator needs.
  std::uint64_t first_seq = 0;
};

/// stop_after value meaning "run to completion".
inline constexpr std::size_t kNoCrash = static_cast<std::size_t>(-1);

class Coordinator {
 public:
  explicit Coordinator(kv::Router& router) : router_(&router) {}

  /// Run one transaction on `client`'s session. With `stop_after` < the
  /// stream length, the coordinator "crashes" after that many completed
  /// records: locks stay held, the report says kCrashed, and the caller
  /// must eventually recover() with the reported first_seq.
  sim::Task<TxnReport> run(kv::ClientId client, TxnId txn,
                           std::vector<Write> writes,
                           std::size_t stop_after = kNoCrash);

  /// Resolve a crashed attempt by replaying the record stream under its
  /// original seqs (see file comment). `completed` is the crashed attempt's
  /// TxnReport::records — only later records count as fresh.
  sim::Task<TxnReport> recover(kv::ClientId client, TxnId txn,
                               std::vector<Write> writes,
                               std::uint64_t first_seq,
                               std::size_t completed);

 private:
  sim::Task<TxnReport> drive(kv::ClientId client, TxnId txn,
                             std::vector<Write> writes,
                             std::size_t stop_after, std::uint64_t first_seq,
                             std::size_t completed, bool replay);

  kv::Router* router_;
};

}  // namespace mnm::txn
