// Transaction record codec — the payloads behind the 2PC operations
// (kv::Op::kTxnPrepare / kTxnCommit / kTxnAbort).
//
// Cross-shard transactions are layered *over* the shards' replicated logs:
// every 2PC record is an ordinary (signed) kv::Command in one participant
// shard's log, carrying the touched key in Command::key — so records route,
// bounce (kWrongEpoch), re-sign and deduplicate exactly like client ops —
// and one of these payloads in Command::value:
//
//  * PrepareRecord locks its command's key for (txn, coordinator session)
//    and buffers the write it wants to apply. The optional `expected` guard
//    makes the prepare conditional on the current committed value (the
//    optimistic read-validate step a transfer needs to be lost-update-free).
//  * DecisionRecord (commit and abort share the payload; the op byte is the
//    verb) releases the lock — applying the buffered write on commit,
//    discarding it on abort.
//
// Per-key records are what keep a transaction well-defined across a live
// reshard: a prepare's key can move to another group mid-transaction, and
// the decision for that key simply routes to the new owner (which imported
// the lock with the drained range).
//
// Both decoders are strict and total, mirroring decode_command: these bytes
// ride consensus slots a Byzantine proposer can win with arbitrary content,
// so malformed payloads must decode to nullopt deterministically — the
// state machine turns them into a counted kTxnAborted no-op, never a throw
// out of apply.

#pragma once

#include <cstdint>
#include <optional>

#include "src/common.hpp"
#include "src/util/serde.hpp"

namespace mnm::txn {

/// Coordinator-chosen transaction identifier. Unique per transaction within
/// a run (the workload derives it from the coordinator's client id + a
/// per-client counter, deterministically).
using TxnId = std::uint64_t;

/// The buffered mutation a prepare carries for its key.
enum class WriteKind : std::uint8_t {
  kPut = 1,  // key := value on commit
  kDel = 2,  // remove key on commit
};

/// Payload of one Op::kTxnPrepare command (Command::value); the locked key
/// itself rides in Command::key.
struct PrepareRecord {
  TxnId txn = 0;
  WriteKind write = WriteKind::kPut;
  Bytes value;  // kPut payload; must be empty for kDel (canonical form)
  /// Optimistic guard: when set, the prepare conflicts unless the key's
  /// current committed value equals `expected` (empty = absent, the kCas
  /// convention) — a concurrent committed write between the coordinator's
  /// read and its prepare aborts the transaction instead of losing the
  /// update.
  bool has_expected = false;
  Bytes expected;

  bool operator==(const PrepareRecord&) const = default;
};

/// Payload of one Op::kTxnCommit / kTxnAbort command for one key.
struct DecisionRecord {
  TxnId txn = 0;

  bool operator==(const DecisionRecord&) const = default;
};

Bytes encode_prepare(const PrepareRecord& rec);
/// Strict decode; nullopt on any malformed input (bad write kind, a kDel
/// carrying a value, a guard flag above 1, an absent-guard record carrying
/// guard bytes, truncation, trailing bytes). Never throws, never over-reads.
std::optional<PrepareRecord> decode_prepare(util::ByteView raw);

Bytes encode_decision(const DecisionRecord& rec);
/// Strict decode; nullopt on truncation or trailing bytes.
std::optional<DecisionRecord> decode_decision(util::ByteView raw);

}  // namespace mnm::txn
