#include "src/smr/log.hpp"

#include <algorithm>
#include <cassert>

#include "src/sim/select.hpp"
#include "src/util/serde.hpp"

namespace mnm::smr {

Bytes encode_batch(const std::vector<Bytes>& commands) {
  std::size_t payload = 0;
  for (const Bytes& c : commands) payload += 4 + c.size();
  util::Writer w(4 + payload);
  w.u32(static_cast<std::uint32_t>(commands.size()));
  for (const Bytes& c : commands) w.bytes(c);
  return std::move(w).take();
}

std::vector<Bytes> decode_batch(util::ByteView raw) {
  try {
    util::Reader r(raw);
    const std::uint32_t count = r.u32();
    std::vector<Bytes> out;
    // The count is attacker-controlled (a Byzantine proposer can win a slot
    // with arbitrary bytes): cap the pre-size by the bytes actually present
    // — every command costs at least its 4-byte length prefix — so a huge
    // prefix on a tiny body cannot force a bad_alloc before parsing fails.
    out.reserve(std::min<std::size_t>(count, r.remaining() / 4));
    for (std::uint32_t i = 0; i < count; ++i) out.push_back(r.bytes());
    r.expect_end();
    return out;
  } catch (const util::SerdeError&) {
    return {};  // garbage batch applies as zero commands, deterministically
  }
}

Log::Log(sim::Executor& exec, core::ConsensusEngine& engine, core::Omega& omega,
         StateMachine& sm, LogConfig config)
    : exec_(&exec),
      engine_(&engine),
      omega_(&omega),
      sm_(&sm),
      config_(config),
      pending_signal_(exec),
      stash_signal_(exec),
      applied_signal_(exec),
      recovering_signal_(exec),
      range_signal_(exec) {
  // Validation rule (see LogConfig): a window of 0 silently stalled the
  // pump; clamp rather than assert so Release builds behave identically.
  config_.window = std::clamp<std::size_t>(config_.window, 1, kMaxWindow);
  config_.catchup_timeout = std::max<sim::Time>(1, config_.catchup_timeout);
}

void Log::start() {
  assert(!started_ && "smr::Log::start called twice");
  started_ = true;
  exec_->spawn(apply_loop());
  exec_->spawn(config_.all_propose ? pump_all() : pump_leader());
  // Recovery machinery only where the engine has a control channel: serving
  // needs retained state (snapshot_interval > 0), recovering needs a peer
  // to ask. Memory-routed Byzantine engines have neither.
  core::Transport* ctl = engine_->control_transport();
  const bool serve = (config_.snapshot_interval > 0 ||
                      config_.serve_ranges) && ctl != nullptr;
  recovering_ = config_.recover && ctl != nullptr;
  if (serve || recovering_) exec_->spawn(control_loop());
  if (recovering_) exec_->spawn(catchup_driver());
}

void Log::halt() {
  if (halted_) return;
  halted_ = true;
  // Wake every Select this log's loops could be suspended in; each checks
  // halted_ on wakeup and returns. Loops parked on a channel recv (apply,
  // control) cannot be woken but are inert once the transport is dead.
  pending_signal_.bump();
  stash_signal_.bump();
  applied_signal_.bump();
  recovering_signal_.bump();
  range_signal_.bump();
}

void Log::enqueue(Bytes payload) {
  pending_.push_back(Pending{std::move(payload), {}, exec_->now()});
  pending_cmds_ += 1;  // opaque group: count unknown, one unit
  pending_signal_.bump();
}

void Log::enqueue_commands(std::vector<Bytes> commands) {
  if (commands.empty()) return;
  pending_cmds_ += commands.size();
  pending_.push_back(Pending{Bytes{}, std::move(commands), exec_->now()});
  pending_signal_.bump();
}

SlotRecord& Log::record(Slot s) {
  if (s < records_base_) {
    // Compacted (or caught-up-over) slot: its stats are already folded.
    // Hand back a scratch sink so rare late writers (a stale DECIDE racing
    // a snapshot) stay harmless.
    scratch_record_ = SlotRecord{};
    return scratch_record_;
  }
  const std::size_t idx = s - records_base_;
  if (records_.size() <= idx) records_.resize(idx + 1);
  return records_[idx];
}

Log::Pending Log::take_pending_or_noop() {
  if (pending_.empty()) return Pending{Bytes{}, {}, exec_->now()};
  Pending p = std::move(pending_.front());
  pending_.pop_front();
  pending_cmds_ -= p.cmds.empty() ? 1 : p.cmds.size();
  // Continuous batching: merge whole raw-command groups queued behind the
  // head into one slot payload, up to the tuner's live batch. Only the
  // not-yet-encoded raw path merges (opaque enqueue() payloads and
  // re-queued groups — whose wire bytes must stay identical on retry —
  // stay one group = one slot), so fixed-config behavior is untouched.
  if (tuner_ != nullptr && tuner_->enabled() && !p.cmds.empty() &&
      p.payload.empty()) {
    const std::size_t live_batch = tuner_->batch();
    while (!pending_.empty() && !pending_.front().cmds.empty() &&
           pending_.front().payload.empty() &&
           p.cmds.size() < live_batch &&
           p.cmds.size() + pending_.front().cmds.size() <= live_batch) {
      Pending next = std::move(pending_.front());
      pending_.pop_front();
      pending_cmds_ -= next.cmds.size();
      for (Bytes& c : next.cmds) p.cmds.push_back(std::move(c));
      // enqueued_at stays the head group's (the oldest): merged commands'
      // commit latency is measured from the command that waited longest.
    }
  }
  return p;
}

void Log::requeue_front(Pending group) {
  pending_cmds_ += group.cmds.empty() ? 1 : group.cmds.size();
  pending_.push_front(std::move(group));
  pending_signal_.bump();
}

void Log::launch(Slot slot, Pending p, bool retry) {
  SlotRecord& rec = record(slot);
  rec.proposed_here = true;
  rec.enqueued_at = p.enqueued_at;
  rec.proposed_at = exec_->now();
  ++open_slots_;
  rec.in_flight = open_slots_;
  rec.window_limit = live_window();
  exec_->spawn(drive(slot, std::move(p), retry));
}

sim::Task<void> Log::drive(Slot slot, Pending group, bool retry) {
  // Raw groups encode here, at launch; pre-encoded payloads pass through.
  // The group survives the move into propose(): it detects a lost slot, and
  // is what the loss/abort paths re-queue.
  if (group.payload.empty() && !group.cmds.empty()) {
    group.payload = encode_batch(group.cmds);
  }
  const Bytes proposed = group.payload;
  try {
    const core::Decision d = co_await engine_->propose(slot, proposed);
    if (d.value == proposed) {
      record(slot).won_here = true;
    } else if (retry && !proposed.empty()) {
      // Our batch lost the slot (a hand-off adopted an older leader's
      // value): put it back at the front so it wins a later slot.
      requeue_front(std::move(group));
    }
  } catch (const core::ProposeAborted&) {
    // Engine could not decide this proposal (Cheap Quorum abort). The
    // payload is not lost if retry is on.
    if (retry && !proposed.empty()) {
      requeue_front(std::move(group));
    }
  }
}

void Log::apply_slot(Slot slot, const core::Decision& d) {
  SlotRecord& rec = record(slot);
  rec.decided_at = d.decided_at;
  rec.fast = d.fast;
  rec.applied_at = exec_->now();
  const std::vector<Bytes> commands = decode_batch(d.value);
  rec.commands = commands.size();
  rec.noop = commands.empty();
  if (rec.proposed_here) {
    if (open_slots_ > 0) --open_slots_;
    if (tuner_ != nullptr && tuner_->enabled()) {
      // The controller's inputs, all executor-time/count derived: queue
      // wait (enqueue→propose), consensus service (propose→decide), the
      // queue still backed up behind the window, and launch-time occupancy.
      const sim::Time wait = rec.proposed_at >= rec.enqueued_at
                                 ? rec.proposed_at - rec.enqueued_at
                                 : 0;
      const sim::Time service = rec.decided_at >= rec.proposed_at
                                    ? rec.decided_at - rec.proposed_at
                                    : 0;
      tuner_->observe(wait, service, pending_cmds_, rec.in_flight,
                      rec.commands);
    }
  }
  for (const Bytes& c : commands) sm_->apply(slot, c);
  if (config_.snapshot_interval > 0) retained_[slot] = d.value;
}

void Log::drain_stash() {
  // Drain the contiguous prefix: decisions may land in any order, the
  // state machine only ever sees slot order.
  for (auto it = stash_.find(applied_len_); it != stash_.end();
       it = stash_.find(applied_len_)) {
    apply_slot(applied_len_, it->second);
    stash_.erase(it);
    ++applied_len_;
    applied_signal_.bump();
    maybe_snapshot();
  }
}

sim::Task<void> Log::apply_loop() {
  while (true) {
    core::SlotDecision sd = co_await engine_->decisions().recv();
    if (sd.slot < applied_len_) continue;  // stale: applied via catch-up
    stash_.emplace(sd.slot, std::move(sd.decision));
    stash_signal_.bump();  // the catch-up driver's gap watch
    drain_stash();
  }
}

void Log::maybe_snapshot() {
  if (config_.snapshot_interval == 0) return;
  if (applied_len_ - snapshot_slot_ < config_.snapshot_interval) return;
  Bytes snap = sm_->snapshot();
  if (snap.empty()) return;  // machine doesn't support snapshots
  snapshot_ = std::move(snap);
  snapshot_slot_ = applied_len_;
  ++snapshots_taken_;
  compact_below(snapshot_slot_);
}

void Log::compact_below(Slot s) {
  retained_.erase(retained_.begin(), retained_.lower_bound(s));
  // A decision below the snapshot slot can no longer be applied in order —
  // the snapshot already covers it.
  stash_.erase(stash_.begin(), stash_.lower_bound(s));
  if (s <= records_base_) return;
  const Slot upto =
      std::min<Slot>(s, records_base_ + static_cast<Slot>(records_.size()));
  for (Slot t = records_base_; t < upto; ++t) {
    const SlotRecord& r = records_[t - records_base_];
    compacted_.commands += r.commands;
    if (r.noop) ++compacted_.noop_slots;
    if (r.fast) ++compacted_.fast_slots;
    compacted_.last_apply_at = std::max(compacted_.last_apply_at, r.applied_at);
    if (r.proposed_here) {
      compacted_.occupancy_slots += r.in_flight;
      compacted_.occupancy_limit += r.window_limit;
      if (!r.noop) {
        compacted_.queue_waits.push_back(
            r.proposed_at >= r.enqueued_at ? r.proposed_at - r.enqueued_at
                                           : 0);
        if (r.won_here) {
          compacted_.won_latencies.push_back(r.decided_at - r.enqueued_at);
        }
      }
    }
  }
  records_.erase(records_.begin(),
                 records_.begin() + static_cast<std::ptrdiff_t>(upto - records_base_));
  slots_truncated_ += s - records_base_;
  records_base_ = s;
}

sim::Task<void> Log::pump_leader() {
  const ProcessId self = engine_->self();
  while (true) {
    if (halted_) co_return;
    // Snapshot every wait source BEFORE inspecting state: a bump landing
    // between the snapshot and the await makes the select ready
    // immediately, so wakeups cannot be lost.
    const std::uint64_t v_pending = pending_signal_.version();
    const std::uint64_t v_applied = applied_signal_.version();
    const std::uint64_t v_omega = omega_->changed().version();
    const std::uint64_t v_horizon = engine_->horizon_signal().version();
    const std::uint64_t v_recover = recovering_signal_.version();

    // Recovery hold: a rejoined replica that Ω immediately trusts must not
    // march proposals through slots it is about to install from a peer —
    // catch-up is cheaper than re-deciding, and next_slot_ floors at the
    // installed prefix once the hold lifts.
    if (omega_->trusts(self) && !recovering_) {
      // Hand-off / adoption: drive every open slot we have heard of but not
      // proposed ourselves (a dead or deposed leader's window). The
      // engine's protocol adopts any value a quorum already accepted;
      // otherwise our payload (or a no-op) fills the gap so the applied
      // prefix can advance. Slots we already drive self-heal (their
      // propose retries under our leadership), so they are skipped.
      const Slot horizon = engine_->slot_horizon();
      for (Slot s = applied_len_; s < horizon; ++s) {
        if (s >= records_base_ && s - records_base_ < records_.size() &&
            records_[s - records_base_].proposed_here) {
          continue;
        }
        if (stash_.contains(s)) continue;  // decided, awaiting apply
        launch(s, take_pending_or_noop(), /*retry=*/true);
      }
      next_slot_ = std::max(next_slot_, horizon);
      // Fill the window with fresh assignments. The limit is read per slot:
      // with a tuner attached it is the live, clamped setting — the window
      // widens (or narrows) mid-run as the controller adapts.
      while (next_slot_ < applied_len_ + live_window() && !pending_.empty()) {
        launch(next_slot_, take_pending_or_noop(), /*retry=*/true);
        ++next_slot_;
      }
    }

    sim::Select sel(*exec_);
    sel.on(pending_signal_, v_pending)
        .on(applied_signal_, v_applied)
        .on(omega_->changed(), v_omega)
        .on(engine_->horizon_signal(), v_horizon);
    // Only recovering logs watch the recovery signal — an extra never-
    // bumping source would be inert, but keeping the default Select set
    // untouched keeps the pre-recovery event trace byte-identical.
    if (config_.recover) sel.on(recovering_signal_, v_recover);
    (void)co_await sel;
  }
}

sim::Task<void> Log::pump_all() {
  while (next_slot_ < config_.fixed_slots) {
    if (halted_) co_return;
    const std::uint64_t v_applied = applied_signal_.version();
    const std::uint64_t v_pending = pending_signal_.version();
    const bool have_work = !pending_.empty() || config_.noop_fillers;
    if (have_work && next_slot_ < applied_len_ + config_.window) {
      // Candidate-per-slot model: no retry — consensus picking another
      // replica's candidate is the expected outcome, not a loss.
      launch(next_slot_, take_pending_or_noop(), /*retry=*/false);
      ++next_slot_;
      continue;
    }
    sim::Select sel(*exec_);
    sel.on(applied_signal_, v_applied);
    if (!config_.noop_fillers) sel.on(pending_signal_, v_pending);
    (void)co_await sel;
  }
}

sim::Task<void> Log::control_loop() {
  core::Transport* ctl = engine_->control_transport();
  while (true) {
    const core::TMsg m = co_await ctl->incoming().recv();
    if (halted_) co_return;
    // Strict total dispatch: the control channel carries peer bytes, so a
    // frame that is neither a well-formed request nor a well-formed
    // response is counted and dropped — nothing on this path throws.
    if (const auto req = decode_catchup_request(m.payload)) {
      if (config_.snapshot_interval > 0) serve_catchup(m.src, req->from);
    } else if (const auto resp = decode_catchup_response(m.payload)) {
      ++responses_seen_;
      install_catchup(*resp, m.payload.size());
    } else if (const auto rreq = decode_range_request(m.payload)) {
      if (config_.serve_ranges) serve_range(m.src, *rreq);
    } else if (const auto rresp = decode_range_response(m.payload)) {
      // Responses for the live fetch round only; an abandoned round's
      // stragglers drop on cookie mismatch.
      if (live_range_cookie_ != 0 && rresp->cookie == live_range_cookie_) {
        range_bytes_ += rresp->payload.size();
        range_responses_.push_back(std::move(rresp->payload));
        range_signal_.bump();
      }
    } else {
      ++catchup_rejected_;
    }
  }
}

void Log::serve_catchup(ProcessId dst, Slot from) {
  core::Transport* ctl = engine_->control_transport();
  CatchupResponse resp;
  if (from < snapshot_slot_ && !snapshot_.empty()) {
    resp.snap_slot = snapshot_slot_;
    resp.snapshot = snapshot_;
  }
  // retained_ covers exactly [snapshot_slot_, applied_len_).
  Slot s = std::max(from, snapshot_slot_);
  resp.first_slot = s;
  for (; s < applied_len_ && resp.payloads.size() < kMaxCatchupSlots; ++s) {
    const auto it = retained_.find(s);
    if (it == retained_.end()) break;
    resp.payloads.push_back(it->second);
  }
  // An empty response is still sent: "nothing for you" is how a recovering
  // peer learns it is level with us.
  ctl->send(dst, encode_catchup_response(resp));
}

void Log::serve_range(ProcessId dst, const RangeSnapRequest& req) {
  // The request bytes are machine-defined; a machine that cannot serve the
  // range (yet) answers nothing — the requester re-broadcasts on its own
  // cadence until some peer has sealed the range.
  Bytes payload = sm_->export_range(req.request);
  if (payload.empty() || payload.size() > kMaxRangeFrameBytes) return;
  ++ranges_served_;
  core::Transport* ctl = engine_->control_transport();
  ctl->send(dst, encode_range_response(
                     RangeSnapResponse{req.cookie, std::move(payload)}));
}

sim::Task<Bytes> Log::fetch_range(Bytes request,
                                  std::function<bool(util::ByteView)> valid) {
  core::Transport* ctl = engine_->control_transport();
  while (true) {
    if (halted_) co_return Bytes{};
    // Local machine first: in the fault-free flow the replica driving the
    // drain has itself applied the seal, so no wire round is needed.
    {
      Bytes local = sm_->export_range(request);
      if (!local.empty() && valid(local)) co_return local;
    }
    if (ctl == nullptr) {
      // No control channel (memory-routed Byzantine engines): wait for the
      // local machine to advance and re-try the local export.
      const std::uint64_t v_applied = applied_signal_.version();
      sim::Select sel(*exec_);
      sel.on(applied_signal_, v_applied);
      (void)co_await sel;
      continue;
    }
    // Broadcast one request round and collect responses until the catch-up
    // cadence expires; the first response the validator accepts wins, and
    // rejected ones (Byzantine peers can answer with garbage) are counted.
    const std::uint64_t cookie = ++range_cookie_seq_;
    live_range_cookie_ = cookie;
    range_responses_.clear();
    ctl->send_all(encode_range_request(RangeSnapRequest{cookie, request}),
                  /*include_self=*/false);
    const sim::Time deadline = exec_->now() + config_.catchup_timeout;
    while (true) {
      while (!range_responses_.empty()) {
        Bytes b = std::move(range_responses_.front());
        range_responses_.erase(range_responses_.begin());
        if (valid(b)) {
          live_range_cookie_ = 0;
          range_responses_.clear();
          co_return b;
        }
        ++catchup_rejected_;
      }
      if (halted_ || exec_->now() >= deadline) break;
      const std::uint64_t v_range = range_signal_.version();
      if (!range_responses_.empty()) continue;  // landed since the drain
      sim::Select sel(*exec_);
      sel.on(range_signal_, v_range).until(deadline);
      (void)co_await sel;
    }
    live_range_cookie_ = 0;  // round over: stragglers drop, then re-ask
  }
}

void Log::install_slot(Slot s, const Bytes& payload) {
  const std::vector<Bytes> commands = decode_batch(payload);
  for (const Bytes& c : commands) sm_->apply(s, c);
  if (config_.snapshot_interval > 0) retained_[s] = payload;
  ++applied_len_;
  applied_signal_.bump();
  maybe_snapshot();
}

void Log::install_catchup(const CatchupResponse& resp,
                          std::size_t wire_bytes) {
  catchup_bytes_ += wire_bytes;
  bool progressed = false;
  if (resp.snap_slot > applied_len_) {
    if (!resp.snapshot.empty() && sm_->restore(resp.snapshot)) {
      applied_len_ = resp.snap_slot;
      // The installed snapshot becomes ours: we can serve it onward, and
      // our own cadence restarts from its slot.
      snapshot_ = resp.snapshot;
      snapshot_slot_ = resp.snap_slot;
      retained_.erase(retained_.begin(),
                      retained_.lower_bound(resp.snap_slot));
      ++snapshots_installed_;
      progressed = true;
    } else {
      // Malformed or digest-mismatched snapshot: reject, state untouched.
      ++catchup_rejected_;
    }
  }
  for (std::size_t i = 0; i < resp.payloads.size(); ++i) {
    const Slot s = resp.first_slot + static_cast<Slot>(i);
    if (s < applied_len_) continue;  // already have it
    if (s > applied_len_) break;     // non-contiguous: useless from here on
    install_slot(s, resp.payloads[i]);
    progressed = true;
  }
  if (!progressed) return;
  // The caught-up region was never recorded here; slide the record base
  // over it (fresh logs only — a log with live records keeps them).
  if (records_.empty() && records_base_ < applied_len_) {
    records_base_ = applied_len_;
  }
  stash_.erase(stash_.begin(), stash_.lower_bound(applied_len_));
  drain_stash();  // decisions that arrived during recovery may now connect
  next_slot_ = std::max(next_slot_, applied_len_);
  applied_signal_.bump();
}

sim::Task<void> Log::catchup_driver() {
  core::Transport* ctl = engine_->control_transport();
  std::uint64_t empty_rounds = 0;
  while (true) {
    if (halted_) co_return;
    if (!recovering_) {
      // Gap watch: wait for a decided-but-unappliable suffix to appear,
      // then give normal delivery one grace period before re-requesting —
      // the missing DECIDEs may simply still be in flight.
      while (stash_.empty()) {
        const std::uint64_t v_stash = stash_signal_.version();
        if (!stash_.empty() || halted_) break;
        sim::Select sel(*exec_);
        sel.on(stash_signal_, v_stash);
        (void)co_await sel;
      }
      if (halted_) co_return;
      const Slot before = applied_len_;
      co_await exec_->sleep(config_.catchup_timeout);
      if (halted_) co_return;
      if (stash_.empty() || applied_len_ > before) continue;
    }
    const Slot before = applied_len_;
    const std::uint64_t responses_before = responses_seen_;
    ctl->send_all(encode_catchup_request(CatchupRequest{applied_len_}),
                  /*include_self=*/false);
    co_await exec_->sleep(config_.catchup_timeout);
    if (halted_) co_return;
    if (!recovering_) continue;
    const bool heard = responses_seen_ > responses_before;
    empty_rounds = heard ? 0 : empty_rounds + 1;
    // Recovery ends when a peer answered and had nothing more for us (we
    // are level), or when nobody serves at all (no snapshot-enabled peer
    // alive) — holding proposals forever would trade a slow catch-up for a
    // livelock.
    if (applied_len_ == before && stash_.empty() &&
        (heard || empty_rounds >= 4)) {
      recovering_ = false;
      recovering_signal_.bump();
    }
  }
}

}  // namespace mnm::smr
