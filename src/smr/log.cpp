#include "src/smr/log.hpp"

#include <algorithm>
#include <cassert>

#include "src/sim/select.hpp"
#include "src/util/serde.hpp"

namespace mnm::smr {

Bytes encode_batch(const std::vector<Bytes>& commands) {
  std::size_t payload = 0;
  for (const Bytes& c : commands) payload += 4 + c.size();
  util::Writer w(4 + payload);
  w.u32(static_cast<std::uint32_t>(commands.size()));
  for (const Bytes& c : commands) w.bytes(c);
  return std::move(w).take();
}

std::vector<Bytes> decode_batch(util::ByteView raw) {
  try {
    util::Reader r(raw);
    const std::uint32_t count = r.u32();
    std::vector<Bytes> out;
    // The count is attacker-controlled (a Byzantine proposer can win a slot
    // with arbitrary bytes): cap the pre-size by the bytes actually present
    // — every command costs at least its 4-byte length prefix — so a huge
    // prefix on a tiny body cannot force a bad_alloc before parsing fails.
    out.reserve(std::min<std::size_t>(count, r.remaining() / 4));
    for (std::uint32_t i = 0; i < count; ++i) out.push_back(r.bytes());
    r.expect_end();
    return out;
  } catch (const util::SerdeError&) {
    return {};  // garbage batch applies as zero commands, deterministically
  }
}

Log::Log(sim::Executor& exec, core::ConsensusEngine& engine, core::Omega& omega,
         StateMachine& sm, LogConfig config)
    : exec_(&exec),
      engine_(&engine),
      omega_(&omega),
      sm_(&sm),
      config_(config),
      pending_signal_(exec),
      applied_signal_(exec) {
  // Validation rule (see LogConfig): a window of 0 silently stalled the
  // pump; clamp rather than assert so Release builds behave identically.
  config_.window = std::clamp<std::size_t>(config_.window, 1, kMaxWindow);
}

void Log::start() {
  assert(!started_ && "smr::Log::start called twice");
  started_ = true;
  exec_->spawn(apply_loop());
  exec_->spawn(config_.all_propose ? pump_all() : pump_leader());
}

void Log::enqueue(Bytes payload) {
  pending_.push_back(Pending{std::move(payload), {}, exec_->now()});
  pending_cmds_ += 1;  // opaque group: count unknown, one unit
  pending_signal_.bump();
}

void Log::enqueue_commands(std::vector<Bytes> commands) {
  if (commands.empty()) return;
  pending_cmds_ += commands.size();
  pending_.push_back(Pending{Bytes{}, std::move(commands), exec_->now()});
  pending_signal_.bump();
}

SlotRecord& Log::record(Slot s) {
  if (records_.size() <= s) records_.resize(s + 1);
  return records_[s];
}

Log::Pending Log::take_pending_or_noop() {
  if (pending_.empty()) return Pending{Bytes{}, {}, exec_->now()};
  Pending p = std::move(pending_.front());
  pending_.pop_front();
  pending_cmds_ -= p.cmds.empty() ? 1 : p.cmds.size();
  // Continuous batching: merge whole raw-command groups queued behind the
  // head into one slot payload, up to the tuner's live batch. Only the
  // not-yet-encoded raw path merges (opaque enqueue() payloads and
  // re-queued groups — whose wire bytes must stay identical on retry —
  // stay one group = one slot), so fixed-config behavior is untouched.
  if (tuner_ != nullptr && tuner_->enabled() && !p.cmds.empty() &&
      p.payload.empty()) {
    const std::size_t live_batch = tuner_->batch();
    while (!pending_.empty() && !pending_.front().cmds.empty() &&
           pending_.front().payload.empty() &&
           p.cmds.size() < live_batch &&
           p.cmds.size() + pending_.front().cmds.size() <= live_batch) {
      Pending next = std::move(pending_.front());
      pending_.pop_front();
      pending_cmds_ -= next.cmds.size();
      for (Bytes& c : next.cmds) p.cmds.push_back(std::move(c));
      // enqueued_at stays the head group's (the oldest): merged commands'
      // commit latency is measured from the command that waited longest.
    }
  }
  return p;
}

void Log::requeue_front(Pending group) {
  pending_cmds_ += group.cmds.empty() ? 1 : group.cmds.size();
  pending_.push_front(std::move(group));
  pending_signal_.bump();
}

void Log::launch(Slot slot, Pending p, bool retry) {
  SlotRecord& rec = record(slot);
  rec.proposed_here = true;
  rec.enqueued_at = p.enqueued_at;
  rec.proposed_at = exec_->now();
  ++open_slots_;
  rec.in_flight = open_slots_;
  rec.window_limit = live_window();
  exec_->spawn(drive(slot, std::move(p), retry));
}

sim::Task<void> Log::drive(Slot slot, Pending group, bool retry) {
  // Raw groups encode here, at launch; pre-encoded payloads pass through.
  // The group survives the move into propose(): it detects a lost slot, and
  // is what the loss/abort paths re-queue.
  if (group.payload.empty() && !group.cmds.empty()) {
    group.payload = encode_batch(group.cmds);
  }
  const Bytes proposed = group.payload;
  try {
    const core::Decision d = co_await engine_->propose(slot, proposed);
    if (d.value == proposed) {
      record(slot).won_here = true;
    } else if (retry && !proposed.empty()) {
      // Our batch lost the slot (a hand-off adopted an older leader's
      // value): put it back at the front so it wins a later slot.
      requeue_front(std::move(group));
    }
  } catch (const core::ProposeAborted&) {
    // Engine could not decide this proposal (Cheap Quorum abort). The
    // payload is not lost if retry is on.
    if (retry && !proposed.empty()) {
      requeue_front(std::move(group));
    }
  }
}

void Log::apply_slot(Slot slot, const core::Decision& d) {
  SlotRecord& rec = record(slot);
  rec.decided_at = d.decided_at;
  rec.fast = d.fast;
  rec.applied_at = exec_->now();
  const std::vector<Bytes> commands = decode_batch(d.value);
  rec.commands = commands.size();
  rec.noop = commands.empty();
  if (rec.proposed_here) {
    if (open_slots_ > 0) --open_slots_;
    if (tuner_ != nullptr && tuner_->enabled()) {
      // The controller's inputs, all executor-time/count derived: queue
      // wait (enqueue→propose), consensus service (propose→decide), the
      // queue still backed up behind the window, and launch-time occupancy.
      const sim::Time wait = rec.proposed_at >= rec.enqueued_at
                                 ? rec.proposed_at - rec.enqueued_at
                                 : 0;
      const sim::Time service = rec.decided_at >= rec.proposed_at
                                    ? rec.decided_at - rec.proposed_at
                                    : 0;
      tuner_->observe(wait, service, pending_cmds_, rec.in_flight,
                      rec.commands);
    }
  }
  for (const Bytes& c : commands) sm_->apply(slot, c);
}

sim::Task<void> Log::apply_loop() {
  while (true) {
    core::SlotDecision sd = co_await engine_->decisions().recv();
    stash_.emplace(sd.slot, std::move(sd.decision));
    // Drain the contiguous prefix: decisions may land in any order, the
    // state machine only ever sees slot order.
    for (auto it = stash_.find(applied_len_); it != stash_.end();
         it = stash_.find(applied_len_)) {
      apply_slot(applied_len_, it->second);
      stash_.erase(it);
      ++applied_len_;
      applied_signal_.bump();
    }
  }
}

sim::Task<void> Log::pump_leader() {
  const ProcessId self = engine_->self();
  while (true) {
    // Snapshot every wait source BEFORE inspecting state: a bump landing
    // between the snapshot and the await makes the select ready
    // immediately, so wakeups cannot be lost.
    const std::uint64_t v_pending = pending_signal_.version();
    const std::uint64_t v_applied = applied_signal_.version();
    const std::uint64_t v_omega = omega_->changed().version();
    const std::uint64_t v_horizon = engine_->horizon_signal().version();

    if (omega_->trusts(self)) {
      // Hand-off / adoption: drive every open slot we have heard of but not
      // proposed ourselves (a dead or deposed leader's window). The
      // engine's protocol adopts any value a quorum already accepted;
      // otherwise our payload (or a no-op) fills the gap so the applied
      // prefix can advance. Slots we already drive self-heal (their
      // propose retries under our leadership), so they are skipped.
      const Slot horizon = engine_->slot_horizon();
      for (Slot s = applied_len_; s < horizon; ++s) {
        if (s < records_.size() && records_[s].proposed_here) continue;
        if (stash_.contains(s)) continue;  // decided, awaiting apply
        launch(s, take_pending_or_noop(), /*retry=*/true);
      }
      next_slot_ = std::max(next_slot_, horizon);
      // Fill the window with fresh assignments. The limit is read per slot:
      // with a tuner attached it is the live, clamped setting — the window
      // widens (or narrows) mid-run as the controller adapts.
      while (next_slot_ < applied_len_ + live_window() && !pending_.empty()) {
        launch(next_slot_, take_pending_or_noop(), /*retry=*/true);
        ++next_slot_;
      }
    }

    sim::Select sel(*exec_);
    sel.on(pending_signal_, v_pending)
        .on(applied_signal_, v_applied)
        .on(omega_->changed(), v_omega)
        .on(engine_->horizon_signal(), v_horizon);
    (void)co_await sel;
  }
}

sim::Task<void> Log::pump_all() {
  while (next_slot_ < config_.fixed_slots) {
    const std::uint64_t v_applied = applied_signal_.version();
    const std::uint64_t v_pending = pending_signal_.version();
    const bool have_work = !pending_.empty() || config_.noop_fillers;
    if (have_work && next_slot_ < applied_len_ + config_.window) {
      // Candidate-per-slot model: no retry — consensus picking another
      // replica's candidate is the expected outcome, not a loss.
      launch(next_slot_, take_pending_or_noop(), /*retry=*/false);
      ++next_slot_;
      continue;
    }
    sim::Select sel(*exec_);
    sel.on(applied_signal_, v_applied);
    if (!config_.noop_fillers) sel.on(pending_signal_, v_pending);
    (void)co_await sel;
  }
}

}  // namespace mnm::smr
