#include "src/smr/replica.hpp"

#include <algorithm>
#include <sstream>

namespace mnm::smr {

namespace {

/// The controller's effective config: the static window/batch settings are
/// its starting point, and leader-driven mode is required (all_propose
/// replicas must keep their queues in lockstep, which per-replica live
/// batching would break — force the tuner off there).
TunerConfig make_tuner_config(const ReplicaConfig& config) {
  TunerConfig t = config.tune;
  t.enabled = t.enabled && !config.log.all_propose;
  t.window = config.log.window;
  t.batch = config.batch;
  return t;
}

}  // namespace

std::vector<sim::Time> won_slot_latencies(const Log& log) {
  // Latencies folded out of compacted slot records first, then the live
  // records window — identical to the uncompacted list, in slot order.
  std::vector<sim::Time> out = log.compacted().won_latencies;
  const auto& records = log.records();
  const Slot base = log.records_base();
  for (Slot s = base; s < log.applied_len() && s - base < records.size(); ++s) {
    const SlotRecord& r = records[s - base];
    if (r.proposed_here && r.won_here && !r.noop) {
      out.push_back(r.decided_at - r.enqueued_at);
    }
  }
  return out;
}

std::vector<sim::Time> queue_wait_latencies(const Log& log) {
  std::vector<sim::Time> out = log.compacted().queue_waits;
  const auto& records = log.records();
  const Slot base = log.records_base();
  for (Slot s = base; s < log.applied_len() && s - base < records.size(); ++s) {
    const SlotRecord& r = records[s - base];
    if (r.proposed_here && !r.noop) {
      out.push_back(r.proposed_at >= r.enqueued_at
                        ? r.proposed_at - r.enqueued_at
                        : 0);
    }
  }
  return out;
}

sim::Time latency_percentile(const std::vector<sim::Time>& sorted, double p) {
  if (sorted.empty()) return 0;
  const std::size_t idx = static_cast<std::size_t>(
      static_cast<double>(sorted.size() - 1) * p / 100.0);
  return sorted[idx];
}

std::string RunStats::summary() const {
  std::ostringstream os;
  os << "cmds=" << commands_applied << "/" << commands_submitted
     << " slots=" << slots_applied << " noop=" << noop_slots
     << " fast=" << fast_slots << " p50=" << commit_p50
     << " p99=" << commit_p99 << " p999=" << commit_p999
     << " qwait50=" << queue_wait_p50 << " qwait99=" << queue_wait_p99
     << " occ=" << window_occupancy
     << " cmds/kdelay=" << commands_per_kdelay;
  if (!tuner_trajectory.empty()) {
    os << " tune=" << tuner_trajectory;
  }
  if (snapshots_taken > 0 || snapshots_installed > 0 || catchup_bytes > 0) {
    os << " snaps=" << snapshots_taken << "+" << snapshots_installed
       << " truncated=" << slots_truncated << " catchupB=" << catchup_bytes;
  }
  return os.str();
}

Replica::Replica(sim::Executor& exec, core::ConsensusEngine& engine,
                 core::Omega& omega, StateMachine& sm, ReplicaConfig config)
    : tuner_(make_tuner_config(config)),
      log_(exec, engine, omega, sm, config.log),
      config_(config) {
  // Same validation rule as LogConfig::window (see kMaxWindow): a batch of
  // 0 flushed nothing and grew the open batch without bound.
  config_.batch = std::clamp<std::size_t>(config_.batch, 1, kMaxWindow);
  log_.set_tuner(&tuner_);
}

void Replica::submit(Bytes command) {
  ++submitted_;
  open_batch_.push_back(std::move(command));
  if (open_batch_.size() >= live_batch()) flush();
}

void Replica::flush() {
  if (open_batch_.empty()) return;
  if (tuner_.enabled()) {
    // Raw-group path: the pump encodes at launch and may merge consecutive
    // groups up to the live batch — flushing early costs no batching power.
    log_.enqueue_commands(std::move(open_batch_));
  } else {
    log_.enqueue(encode_batch(open_batch_));
  }
  open_batch_.clear();
}

RunStats Replica::stats() const {
  RunStats out;
  out.commands_submitted = submitted_;
  out.slots_applied = log_.applied_len();
  // Seed with the sums folded out of compacted slots, then walk the live
  // records window; together they cover every applied slot exactly once.
  const CompactedStats& folded = log_.compacted();
  out.commands_applied = folded.commands;
  out.noop_slots = folded.noop_slots;
  out.fast_slots = folded.fast_slots;
  out.last_apply_at = folded.last_apply_at;
  out.occupancy_slots = folded.occupancy_slots;
  out.occupancy_limit = folded.occupancy_limit;
  const auto& records = log_.records();
  const Slot base = log_.records_base();
  for (Slot s = base; s < out.slots_applied && s - base < records.size();
       ++s) {
    const SlotRecord& r = records[s - base];
    out.commands_applied += r.commands;
    if (r.noop) ++out.noop_slots;
    if (r.fast) ++out.fast_slots;
    out.last_apply_at = std::max(out.last_apply_at, r.applied_at);
    if (r.proposed_here) {
      out.occupancy_slots += r.in_flight;
      out.occupancy_limit += r.window_limit;
    }
  }
  std::vector<sim::Time> latencies = won_slot_latencies(log_);
  std::sort(latencies.begin(), latencies.end());
  out.commit_p50 = latency_percentile(latencies, 50);
  out.commit_p99 = latency_percentile(latencies, 99);
  out.commit_p999 = latency_percentile(latencies, 99.9);
  std::vector<sim::Time> waits = queue_wait_latencies(log_);
  std::sort(waits.begin(), waits.end());
  out.queue_wait_p50 = latency_percentile(waits, 50);
  out.queue_wait_p99 = latency_percentile(waits, 99);
  if (out.occupancy_limit > 0) {
    out.window_occupancy = static_cast<double>(out.occupancy_slots) /
                           static_cast<double>(out.occupancy_limit);
  }
  out.snapshots_taken = log_.snapshots_taken();
  out.snapshots_installed = log_.snapshots_installed();
  out.slots_truncated = log_.slots_truncated();
  out.catchup_bytes = log_.catchup_bytes();
  out.catchup_rejected = log_.catchup_rejected();
  if (tuner_.enabled()) {
    out.tuner_epochs = tuner_.trajectory().size();
    out.tuner_window = tuner_.window();
    out.tuner_batch = tuner_.batch();
    out.tuner_trajectory = tuner_.trajectory_fingerprint();
  }
  if (out.last_apply_at > 0) {
    out.commands_per_kdelay = 1000.0 *
                              static_cast<double>(out.commands_applied) /
                              static_cast<double>(out.last_apply_at);
  }
  return out;
}

}  // namespace mnm::smr
