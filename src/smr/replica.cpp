#include "src/smr/replica.hpp"

#include <algorithm>
#include <cassert>
#include <sstream>

namespace mnm::smr {

std::vector<sim::Time> won_slot_latencies(const Log& log) {
  std::vector<sim::Time> out;
  const auto& records = log.records();
  for (Slot s = 0; s < log.applied_len() && s < records.size(); ++s) {
    const SlotRecord& r = records[s];
    if (r.proposed_here && r.won_here && !r.noop) {
      out.push_back(r.decided_at - r.enqueued_at);
    }
  }
  return out;
}

sim::Time latency_percentile(const std::vector<sim::Time>& sorted, double p) {
  if (sorted.empty()) return 0;
  const std::size_t idx = static_cast<std::size_t>(
      static_cast<double>(sorted.size() - 1) * p / 100.0);
  return sorted[idx];
}

std::string RunStats::summary() const {
  std::ostringstream os;
  os << "cmds=" << commands_applied << "/" << commands_submitted
     << " slots=" << slots_applied << " noop=" << noop_slots
     << " fast=" << fast_slots << " p50=" << commit_p50
     << " p99=" << commit_p99 << " p999=" << commit_p999
     << " cmds/kdelay=" << commands_per_kdelay;
  return os.str();
}

Replica::Replica(sim::Executor& exec, core::ConsensusEngine& engine,
                 core::Omega& omega, StateMachine& sm, ReplicaConfig config)
    : log_(exec, engine, omega, sm, config.log), config_(config) {
  assert(config_.batch >= 1 && "smr::Replica: batch must be at least 1");
}

void Replica::submit(Bytes command) {
  ++submitted_;
  open_batch_.push_back(std::move(command));
  if (open_batch_.size() >= config_.batch) flush();
}

void Replica::flush() {
  if (open_batch_.empty()) return;
  log_.enqueue(encode_batch(open_batch_));
  open_batch_.clear();
}

RunStats Replica::stats() const {
  RunStats out;
  out.commands_submitted = submitted_;
  out.slots_applied = log_.applied_len();
  const auto& records = log_.records();
  for (Slot s = 0; s < out.slots_applied && s < records.size(); ++s) {
    const SlotRecord& r = records[s];
    out.commands_applied += r.commands;
    if (r.noop) ++out.noop_slots;
    if (r.fast) ++out.fast_slots;
    out.last_apply_at = std::max(out.last_apply_at, r.applied_at);
  }
  std::vector<sim::Time> latencies = won_slot_latencies(log_);
  std::sort(latencies.begin(), latencies.end());
  out.commit_p50 = latency_percentile(latencies, 50);
  out.commit_p99 = latency_percentile(latencies, 99);
  out.commit_p999 = latency_percentile(latencies, 99.9);
  if (out.last_apply_at > 0) {
    out.commands_per_kdelay = 1000.0 *
                              static_cast<double>(out.commands_applied) /
                              static_cast<double>(out.last_apply_at);
  }
  return out;
}

}  // namespace mnm::smr
