// Catch-up wire codec: how a restarting replica fetches a peer's latest
// state-machine snapshot + retained log suffix over the slot hub's control
// frame (core::SlotTransportHub::kControlSlot).
//
// A request names the first slot the requester is missing; a response
// carries an optional snapshot (covering slots [0, snap_slot)) plus a run
// of decided slot payloads starting at first_slot. Responses are capped at
// kMaxCatchupSlots payloads — a requester far behind simply asks again from
// its new applied prefix.
//
// Both decoders are strict and total: the bytes arrive from an unverified
// peer, so malformed input yields nullopt (the installer counts a
// rejection), pre-sizing is capped by the bytes actually present, and
// trailing garbage is rejected (expect_end). Nothing in this path throws
// out of the install loop.

#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "src/common.hpp"
#include "src/util/bytes.hpp"

namespace mnm::smr {

/// Max decided-slot payloads per catch-up response.
inline constexpr std::size_t kMaxCatchupSlots = 512;

struct CatchupRequest {
  Slot from = 0;  // first slot the requester has not applied
};

struct CatchupResponse {
  Slot snap_slot = 0;  // slots covered by `snapshot` (0 = none attached)
  Bytes snapshot;      // StateMachine::snapshot() bytes; empty when none
  Slot first_slot = 0;
  std::vector<Bytes> payloads;  // decided batch payloads for consecutive
                                // slots first_slot, first_slot + 1, ...
};

Bytes encode_catchup_request(const CatchupRequest& req);
std::optional<CatchupRequest> decode_catchup_request(util::ByteView raw);

Bytes encode_catchup_response(const CatchupResponse& resp);
std::optional<CatchupResponse> decode_catchup_response(util::ByteView raw);

}  // namespace mnm::smr
