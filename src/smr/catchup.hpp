// Catch-up wire codec: how a restarting replica fetches a peer's latest
// state-machine snapshot + retained log suffix over the slot hub's control
// frame (core::SlotTransportHub::kControlSlot).
//
// A request names the first slot the requester is missing; a response
// carries an optional snapshot (covering slots [0, snap_slot)) plus a run
// of decided slot payloads starting at first_slot. Responses are capped at
// kMaxCatchupSlots payloads — a requester far behind simply asks again from
// its new applied prefix.
//
// Both decoders are strict and total: the bytes arrive from an unverified
// peer, so malformed input yields nullopt (the installer counts a
// rejection), pre-sizing is capped by the bytes actually present, and
// trailing garbage is rejected (expect_end). Nothing in this path throws
// out of the install loop.

#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "src/common.hpp"
#include "src/util/bytes.hpp"

namespace mnm::smr {

/// Max decided-slot payloads per catch-up response.
inline constexpr std::size_t kMaxCatchupSlots = 512;

struct CatchupRequest {
  Slot from = 0;  // first slot the requester has not applied
};

struct CatchupResponse {
  Slot snap_slot = 0;  // slots covered by `snapshot` (0 = none attached)
  Bytes snapshot;      // StateMachine::snapshot() bytes; empty when none
  Slot first_slot = 0;
  std::vector<Bytes> payloads;  // decided batch payloads for consecutive
                                // slots first_slot, first_slot + 1, ...
};

Bytes encode_catchup_request(const CatchupRequest& req);
std::optional<CatchupRequest> decode_catchup_request(util::ByteView raw);

Bytes encode_catchup_response(const CatchupResponse& resp);
std::optional<CatchupResponse> decode_catchup_response(util::ByteView raw);

/// Range-snapshot transfer frames — the drain leg of live resharding. They
/// share the control channel with the catch-up frames (distinct leading tag
/// bytes demux the four kinds): a requester broadcasts a RangeSnapRequest
/// whose `request` bytes are opaque to the Log (StateMachine::export_range
/// interprets them); every peer whose machine can serve the range answers
/// with a RangeSnapResponse carrying the machine's self-validating
/// encoding. The cookie pairs responses with the fetch that asked — stale
/// responses from an abandoned round are dropped by cookie mismatch, not
/// by parsing ambiguity. Payload caps mirror the catch-up hygiene.

/// Max opaque payload bytes in a range request/response frame.
inline constexpr std::size_t kMaxRangeFrameBytes = std::size_t{1} << 24;

struct RangeSnapRequest {
  std::uint64_t cookie = 0;  // echoes back in the matching responses
  Bytes request;             // machine-defined range descriptor
};

struct RangeSnapResponse {
  std::uint64_t cookie = 0;
  Bytes payload;  // StateMachine::export_range bytes (never empty on wire)
};

Bytes encode_range_request(const RangeSnapRequest& req);
std::optional<RangeSnapRequest> decode_range_request(util::ByteView raw);

Bytes encode_range_response(const RangeSnapResponse& resp);
std::optional<RangeSnapResponse> decode_range_response(util::ByteView raw);

}  // namespace mnm::smr
