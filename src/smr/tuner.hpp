// smr::Tuner — deterministic online self-tuning of window and batch.
//
// Window, batch size and the Router's flush threshold were static config
// until this layer: BENCH_log_pipeline shows window 1→16 alone is ~8× and
// batch ~4× more, and BENCH_kv shows no single fixed pair serves both the
// latency-floor (read-heavy C mix) and the throughput-ceiling (write-heavy
// A mix) well. The Tuner is the replication-stack analogue of the
// continuous/dynamic batching every serving stack leans on: a greedy
// cost-model controller that adapts the knobs online.
//
// Cost model (roofline shape): the commit latency of a newly enqueued
// command is
//
//     L(w, b) = max( consensus_round,  queue_drain(depth, w, b) )
//
// where `consensus_round` is the observed propose→decide service time of a
// slot (a property of the engine/network, invariant in w and b in the
// simulated fabric) and `queue_drain = ceil(depth / (w·b)) · round` is the
// time the current queue needs to drain with w slots in flight carrying b
// commands each. While drain dominates, capacity (w·b) is the binding
// resource and growing it converts directly into throughput; once the round
// dominates, the pipeline is at its latency floor and extra capacity only
// buys memory pressure.
//
// Greedy step, once per epoch (`epoch_slots` applied slots this replica
// proposed):
//   * saturated  (drain > round, or the observed enqueue→propose wait
//     exceeds the round): double the smaller of window/batch, clamped to
//     bounds — grow fast, the queue is paying for every epoch of delay.
//     When the backlog is worth more than two full rounds, double both
//     knobs at once: convergence epochs are pure queueing cost;
//   * idle (no queue, no wait, in-flight peak under half the window /
//     biggest batch under half the cap): halve the oversized knob, floored
//     at bounds and at the observed peak — shrink slowly, adaptation noise
//     must not destroy a converged config.
//
// Determinism is load-bearing: every input is executor-time- or
// count-derived (queue depth, enqueue→propose wait, propose→decide service,
// in-flight peak, commands per slot) — never wall clock — so a fixed seed
// pins the whole adaptation trajectory, and determinism_test fingerprints
// the per-epoch decisions byte-for-byte. All arithmetic is integer.
//
// One Tuner per Replica; only slots the owning replica proposed feed it
// (followers observe nothing and keep their initial settings — a new
// leader re-adapts from scratch). Requires leader-driven mode: in
// all-propose (Byzantine) mode replicas must keep their queues in lockstep,
// which per-replica live batching would break, so Replica forces the tuner
// off there.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/common.hpp"
#include "src/sim/time.hpp"

namespace mnm::smr {

struct TunerConfig {
  /// Master switch (`auto_tune`): off = window/batch stay the constants
  /// LogConfig/ReplicaConfig carry, and nothing below applies.
  bool enabled = false;
  /// Initial settings (clamped into the bounds below at construction).
  std::size_t window = 4;
  std::size_t batch = 4;
  /// Clamp bounds. A malformed range (min > max) is repaired by swapping;
  /// zeros are lifted to 1.
  std::size_t min_window = 1;
  std::size_t max_window = 16;
  std::size_t min_batch = 1;
  std::size_t max_batch = 8;
  /// Greedy step cadence: one decision per this many observed slots.
  std::size_t epoch_slots = 4;
};

/// One greedy decision — the unit of the adaptation trajectory that
/// determinism fingerprints pin.
struct TunerEpoch {
  std::uint64_t at_slots = 0;     // observations consumed when decided
  std::size_t window = 0;         // settings after the step
  std::size_t batch = 0;
  sim::Time wait_p50 = 0;         // epoch median enqueue→propose wait
  sim::Time service_p50 = 0;      // epoch median propose→decide time
  std::uint64_t queue_depth = 0;  // epoch mean queued commands
};

class Tuner {
 public:
  explicit Tuner(TunerConfig config);

  bool enabled() const { return config_.enabled; }
  /// Live settings the Log pump / Replica batching read per slot.
  std::size_t window() const { return window_; }
  std::size_t batch() const { return batch_; }
  const TunerConfig& config() const { return config_; }

  /// Feed one applied slot this replica proposed. `wait` is
  /// enqueue→propose, `service` is propose→decide, `queue_cmds` is the
  /// number of commands still queued behind the window at apply time,
  /// `in_flight` the open-slot count at apply time, `slot_cmds` the
  /// commands the slot carried. Runs a greedy step every
  /// `epoch_slots` observations.
  void observe(sim::Time wait, sim::Time service, std::uint64_t queue_cmds,
               std::size_t in_flight, std::size_t slot_cmds);

  /// Cost model, exposed for tests: time for `queue_cmds` queued commands
  /// to drain with `window` slots of `batch` commands in flight, each slot
  /// costing `service`. Monotone: nonincreasing in window/batch,
  /// nondecreasing in queue_cmds/service.
  static sim::Time queue_drain(std::uint64_t queue_cmds, std::size_t window,
                               std::size_t batch, sim::Time service);

  std::uint64_t observations() const { return observations_; }
  const std::vector<TunerEpoch>& trajectory() const { return trajectory_; }
  /// Compact trajectory encoding ("w4b4>8:w8b4>16:w8b8"), the string the
  /// determinism fingerprints compare byte-for-byte.
  std::string trajectory_fingerprint() const;

 private:
  void step();

  TunerConfig config_;
  std::size_t window_ = 1;
  std::size_t batch_ = 1;
  std::uint64_t observations_ = 0;

  // Current epoch's samples (bounded by epoch_slots).
  std::vector<sim::Time> waits_;
  std::vector<sim::Time> services_;
  std::uint64_t queue_sum_ = 0;
  std::size_t in_flight_peak_ = 0;
  std::size_t slot_cmds_peak_ = 0;

  std::vector<TunerEpoch> trajectory_;
};

}  // namespace mnm::smr
