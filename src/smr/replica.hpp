// smr::Replica — the client-facing end of the replication stack.
//
// submit(cmd) batches commands into slot payloads (up to `batch` commands
// per slot — the amortization every log replication system leans on: one
// consensus round commits many commands), hands them to smr::Log, and
// reports a RunStats with throughput, per-slot commit-latency percentiles,
// and path/no-op counts. One Replica per process; the replicated state
// machine is pluggable.
//
// With `tune.enabled` (auto-tuning) the replica owns an smr::Tuner and
// window/batch become live, clamped settings instead of constants: the
// tuner starts from the configured window/batch, the Log's pump reads the
// live window per slot and merges queued command groups up to the live
// batch, and kv::Router consults flush_hold() to decide flush-now vs
// pack-more. Requires leader-driven mode (all_propose forces the tuner
// off — per-replica live batching would break the lockstep queues the
// Byzantine engines need).

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/common.hpp"
#include "src/smr/log.hpp"
#include "src/smr/tuner.hpp"

namespace mnm::smr {

struct ReplicaConfig {
  /// Max commands packed into one slot payload. Clamped into [1, kMaxWindow]
  /// at construction (same rule as LogConfig::window: 0 misbehaved
  /// quietly). With tune.enabled this is the tuner's *initial* batch.
  std::size_t batch = 4;
  LogConfig log{};
  /// Auto-tuning switch + bounds. tune.window/tune.batch are overwritten
  /// with the configured log.window/batch at construction so the static
  /// settings are the controller's starting point — one knob, not two.
  TunerConfig tune{};
};

/// Enqueue → local-decide latencies of the applied slots this log proposed
/// and won (the slots whose commit latency is attributable to this
/// replica). Unsorted; callers aggregating several replicas concatenate
/// first, then sort once.
std::vector<sim::Time> won_slot_latencies(const Log& log);

/// Enqueue → propose waits of every applied slot this log proposed — the
/// queue-wait signal the tuner adapts from, exported so bench rows and
/// tests can assert on the controller's own inputs. Unsorted.
std::vector<sim::Time> queue_wait_latencies(const Log& log);

/// Index-based percentile over a latency list sorted ascending (p in
/// 0..100, fractional percentiles like 99.9 included; zero when empty).
/// The single definition RunStats and the harness report share.
sim::Time latency_percentile(const std::vector<sim::Time>& sorted, double p);

/// End-of-run report for one replica.
struct RunStats {
  std::uint64_t commands_submitted = 0;
  std::uint64_t commands_applied = 0;
  Slot slots_applied = 0;
  std::uint64_t noop_slots = 0;
  std::uint64_t fast_slots = 0;  // slots whose local decision was fast-path
  sim::Time last_apply_at = 0;
  /// Commit latency (enqueue → local decide, sim-time) percentiles over the
  /// slots this replica proposed and won. Zero when it won none. p999 is
  /// the production-scale tail metric: one straggler slot per thousand is
  /// what a p50/p99 pair misses.
  sim::Time commit_p50 = 0;
  sim::Time commit_p99 = 0;
  sim::Time commit_p999 = 0;
  /// Queue wait (enqueue → propose) percentiles over the slots this replica
  /// proposed — the tuner's saturation signal.
  sim::Time queue_wait_p50 = 0;
  sim::Time queue_wait_p99 = 0;
  /// Window occupancy as integer sums (launch-time open slots / live window
  /// limit, summed over proposed slots): ratio-of-sums is the mean
  /// occupancy, and the integer parts fingerprint exactly.
  std::uint64_t occupancy_slots = 0;
  std::uint64_t occupancy_limit = 0;
  double window_occupancy = 0.0;
  /// Controller outcome (zeros / empty when auto-tuning is off).
  std::uint64_t tuner_epochs = 0;
  std::size_t tuner_window = 0;
  std::size_t tuner_batch = 0;
  std::string tuner_trajectory;
  /// Recovery counters (all zero when snapshotting is off): snapshots this
  /// replica cut locally vs installed from a peer, log slots freed by
  /// compaction, catch-up response bytes consumed, and malformed or
  /// unusable control frames dropped.
  std::uint64_t snapshots_taken = 0;
  std::uint64_t snapshots_installed = 0;
  std::uint64_t slots_truncated = 0;
  std::uint64_t catchup_bytes = 0;
  std::uint64_t catchup_rejected = 0;
  /// Applied commands per 1000 sim-time units — the pipelining headline.
  double commands_per_kdelay = 0.0;

  std::string summary() const;
};

class Replica {
 public:
  Replica(sim::Executor& exec, core::ConsensusEngine& engine,
          core::Omega& omega, StateMachine& sm, ReplicaConfig config);

  /// Spawn the log's loops. Call exactly once, after engine.start().
  void start() { log_.start(); }

  /// Queue a command; auto-flushes a full batch into the log.
  void submit(Bytes command);
  /// Flush a partially filled batch.
  void flush();

  /// True while flushing a partial batch now would only queue it behind an
  /// already-saturated window — the pack-more signal kv::Router's flush
  /// task waits out (always false with auto-tuning off, so fixed configs
  /// keep the one-yield flush behavior bit-for-bit).
  bool flush_hold() const {
    return tuner_.enabled() && !open_batch_.empty() &&
           open_batch_.size() < tuner_.batch() && log_.pending() > 0;
  }

  Log& log() { return log_; }
  const Log& log() const { return log_; }
  const Tuner& tuner() const { return tuner_; }
  /// Live batch limit (the tuner's when enabled, the config constant
  /// otherwise).
  std::size_t live_batch() const {
    return tuner_.enabled() ? tuner_.batch() : config_.batch;
  }
  /// No open batch, nothing pending, every proposed slot applied.
  bool idle() const { return open_batch_.empty() && log_.quiescent(); }
  std::uint64_t commands_submitted() const { return submitted_; }

  RunStats stats() const;

 private:
  Tuner tuner_;  // before log_: the log holds a pointer to it
  Log log_;
  ReplicaConfig config_;
  std::vector<Bytes> open_batch_;
  std::uint64_t submitted_ = 0;
};

}  // namespace mnm::smr
