// smr::Replica — the client-facing end of the replication stack.
//
// submit(cmd) batches commands into slot payloads (up to `batch` commands
// per slot — the amortization every log replication system leans on: one
// consensus round commits many commands), hands them to smr::Log, and
// reports a RunStats with throughput, per-slot commit-latency percentiles,
// and path/no-op counts. One Replica per process; the replicated state
// machine is pluggable.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/common.hpp"
#include "src/smr/log.hpp"

namespace mnm::smr {

struct ReplicaConfig {
  /// Max commands packed into one slot payload.
  std::size_t batch = 4;
  LogConfig log{};
};

/// Enqueue → local-decide latencies of the applied slots this log proposed
/// and won (the slots whose commit latency is attributable to this
/// replica). Unsorted; callers aggregating several replicas concatenate
/// first, then sort once.
std::vector<sim::Time> won_slot_latencies(const Log& log);

/// Index-based percentile over a latency list sorted ascending (p in
/// 0..100, fractional percentiles like 99.9 included; zero when empty).
/// The single definition RunStats and the harness report share.
sim::Time latency_percentile(const std::vector<sim::Time>& sorted, double p);

/// End-of-run report for one replica.
struct RunStats {
  std::uint64_t commands_submitted = 0;
  std::uint64_t commands_applied = 0;
  Slot slots_applied = 0;
  std::uint64_t noop_slots = 0;
  std::uint64_t fast_slots = 0;  // slots whose local decision was fast-path
  sim::Time last_apply_at = 0;
  /// Commit latency (enqueue → local decide, sim-time) percentiles over the
  /// slots this replica proposed and won. Zero when it won none. p999 is
  /// the production-scale tail metric: one straggler slot per thousand is
  /// what a p50/p99 pair misses.
  sim::Time commit_p50 = 0;
  sim::Time commit_p99 = 0;
  sim::Time commit_p999 = 0;
  /// Applied commands per 1000 sim-time units — the pipelining headline.
  double commands_per_kdelay = 0.0;

  std::string summary() const;
};

class Replica {
 public:
  Replica(sim::Executor& exec, core::ConsensusEngine& engine,
          core::Omega& omega, StateMachine& sm, ReplicaConfig config);

  /// Spawn the log's loops. Call exactly once, after engine.start().
  void start() { log_.start(); }

  /// Queue a command; auto-flushes a full batch into the log.
  void submit(Bytes command);
  /// Flush a partially filled batch.
  void flush();

  Log& log() { return log_; }
  const Log& log() const { return log_; }
  /// No open batch, nothing pending, every proposed slot applied.
  bool idle() const { return open_batch_.empty() && log_.quiescent(); }
  std::uint64_t commands_submitted() const { return submitted_; }

  RunStats stats() const;

 private:
  Log log_;
  ReplicaConfig config_;
  std::vector<Bytes> open_batch_;
  std::uint64_t submitted_ = 0;
};

}  // namespace mnm::smr
