#include "src/smr/catchup.hpp"

#include <algorithm>

#include "src/util/serde.hpp"

namespace mnm::smr {

namespace {
// Leading tag byte so all message kinds share the one control channel.
constexpr std::uint8_t kRequestTag = 1;
constexpr std::uint8_t kResponseTag = 2;
constexpr std::uint8_t kRangeRequestTag = 3;
constexpr std::uint8_t kRangeResponseTag = 4;
}  // namespace

Bytes encode_catchup_request(const CatchupRequest& req) {
  util::Writer w(1 + 8);
  w.u8(kRequestTag).u64(req.from);
  return std::move(w).take();
}

std::optional<CatchupRequest> decode_catchup_request(util::ByteView raw) {
  try {
    util::Reader r(raw);
    if (r.u8() != kRequestTag) return std::nullopt;
    CatchupRequest req;
    req.from = r.u64();
    r.expect_end();
    return req;
  } catch (const util::SerdeError&) {
    return std::nullopt;
  }
}

Bytes encode_catchup_response(const CatchupResponse& resp) {
  std::size_t payload = 0;
  for (const Bytes& p : resp.payloads) payload += 4 + p.size();
  util::Writer w(1 + 8 + 4 + resp.snapshot.size() + 8 + 4 + payload);
  w.u8(kResponseTag)
      .u64(resp.snap_slot)
      .bytes(resp.snapshot)
      .u64(resp.first_slot)
      .u32(static_cast<std::uint32_t>(resp.payloads.size()));
  for (const Bytes& p : resp.payloads) w.bytes(p);
  return std::move(w).take();
}

std::optional<CatchupResponse> decode_catchup_response(util::ByteView raw) {
  try {
    util::Reader r(raw);
    if (r.u8() != kResponseTag) return std::nullopt;
    CatchupResponse resp;
    resp.snap_slot = r.u64();
    resp.snapshot = r.bytes();
    resp.first_slot = r.u64();
    const std::uint32_t count = r.u32();
    if (count > kMaxCatchupSlots) return std::nullopt;
    // The count is peer-controlled: cap the pre-size by the bytes actually
    // present (every payload costs at least its 4-byte length prefix) so a
    // forged header cannot force a huge allocation before parsing fails.
    resp.payloads.reserve(std::min<std::size_t>(count, r.remaining() / 4));
    for (std::uint32_t i = 0; i < count; ++i) resp.payloads.push_back(r.bytes());
    r.expect_end();
    return resp;
  } catch (const util::SerdeError&) {
    return std::nullopt;
  }
}

Bytes encode_range_request(const RangeSnapRequest& req) {
  util::Writer w(1 + 8 + 4 + req.request.size());
  w.u8(kRangeRequestTag).u64(req.cookie).bytes(req.request);
  return std::move(w).take();
}

std::optional<RangeSnapRequest> decode_range_request(util::ByteView raw) {
  try {
    util::Reader r(raw);
    if (r.u8() != kRangeRequestTag) return std::nullopt;
    RangeSnapRequest req;
    req.cookie = r.u64();
    req.request = r.bytes();
    r.expect_end();
    if (req.request.size() > kMaxRangeFrameBytes) return std::nullopt;
    return req;
  } catch (const util::SerdeError&) {
    return std::nullopt;
  }
}

Bytes encode_range_response(const RangeSnapResponse& resp) {
  util::Writer w(1 + 8 + 4 + resp.payload.size());
  w.u8(kRangeResponseTag).u64(resp.cookie).bytes(resp.payload);
  return std::move(w).take();
}

std::optional<RangeSnapResponse> decode_range_response(util::ByteView raw) {
  try {
    util::Reader r(raw);
    if (r.u8() != kRangeResponseTag) return std::nullopt;
    RangeSnapResponse resp;
    resp.cookie = r.u64();
    resp.payload = r.bytes();
    r.expect_end();
    if (resp.payload.empty() || resp.payload.size() > kMaxRangeFrameBytes) {
      return std::nullopt;
    }
    return resp;
  } catch (const util::SerdeError&) {
    return std::nullopt;
  }
}

}  // namespace mnm::smr
