#include "src/smr/tuner.hpp"

#include <algorithm>
#include <sstream>

namespace mnm::smr {

namespace {

/// Median of an unsorted sample list (lower median; zero when empty).
sim::Time median(std::vector<sim::Time> v) {
  if (v.empty()) return 0;
  const std::size_t mid = (v.size() - 1) / 2;
  std::nth_element(v.begin(), v.begin() + mid, v.end());
  return v[mid];
}

std::size_t clamp_knob(std::size_t v, std::size_t lo, std::size_t hi) {
  return std::min(std::max(v, lo), hi);
}

}  // namespace

Tuner::Tuner(TunerConfig config) : config_(config) {
  // Repair malformed bounds instead of misbehaving quietly: zeros lift to 1
  // (a window or batch of 0 can make no progress), inverted ranges swap.
  config_.min_window = std::max<std::size_t>(1, config_.min_window);
  config_.max_window = std::max<std::size_t>(1, config_.max_window);
  config_.min_batch = std::max<std::size_t>(1, config_.min_batch);
  config_.max_batch = std::max<std::size_t>(1, config_.max_batch);
  if (config_.min_window > config_.max_window) {
    std::swap(config_.min_window, config_.max_window);
  }
  if (config_.min_batch > config_.max_batch) {
    std::swap(config_.min_batch, config_.max_batch);
  }
  config_.epoch_slots = std::max<std::size_t>(1, config_.epoch_slots);
  window_ = clamp_knob(config_.window, config_.min_window, config_.max_window);
  batch_ = clamp_knob(config_.batch, config_.min_batch, config_.max_batch);
}

sim::Time Tuner::queue_drain(std::uint64_t queue_cmds, std::size_t window,
                             std::size_t batch, sim::Time service) {
  window = std::max<std::size_t>(1, window);
  batch = std::max<std::size_t>(1, batch);
  const std::uint64_t capacity =
      static_cast<std::uint64_t>(window) * static_cast<std::uint64_t>(batch);
  const std::uint64_t rounds = (queue_cmds + capacity - 1) / capacity;
  return static_cast<sim::Time>(rounds) * service;
}

void Tuner::observe(sim::Time wait, sim::Time service,
                    std::uint64_t queue_cmds, std::size_t in_flight,
                    std::size_t slot_cmds) {
  if (!config_.enabled) return;
  ++observations_;
  waits_.push_back(wait);
  services_.push_back(service);
  queue_sum_ += queue_cmds;
  in_flight_peak_ = std::max(in_flight_peak_, in_flight);
  slot_cmds_peak_ = std::max(slot_cmds_peak_, slot_cmds);
  if (waits_.size() >= config_.epoch_slots) step();
}

void Tuner::step() {
  const sim::Time wait50 = median(waits_);
  // A decided slot costs at least one time unit end to end; clamping the
  // service floor keeps the drain model meaningful when the engine decides
  // in the same instant it proposed (noop fillers, warm fast paths).
  const sim::Time svc50 = std::max<sim::Time>(1, median(services_));
  const std::uint64_t depth = queue_sum_ / waits_.size();
  const sim::Time drain = queue_drain(depth, window_, batch_, svc50);

  if (drain > svc50 || wait50 > svc50) {
    // Saturated: capacity (window·batch) is the binding resource. With a
    // backlog worth more than two full rounds, double both knobs at once —
    // every epoch spent converging is an epoch the queue pays for. At mild
    // saturation double only the smaller knob: it has the most headroom,
    // and growing the two in alternation walks the diagonal of the cost
    // surface without overshooting.
    if (drain > 2 * svc50) {
      window_ = clamp_knob(window_ * 2, config_.min_window, config_.max_window);
      batch_ = clamp_knob(batch_ * 2, config_.min_batch, config_.max_batch);
    } else {
      const bool window_smaller =
          window_ <= batch_ || batch_ >= config_.max_batch;
      if (window_smaller && window_ < config_.max_window) {
        window_ =
            clamp_knob(window_ * 2, config_.min_window, config_.max_window);
      } else if (batch_ < config_.max_batch) {
        batch_ = clamp_knob(batch_ * 2, config_.min_batch, config_.max_batch);
      } else if (window_ < config_.max_window) {
        window_ =
            clamp_knob(window_ * 2, config_.min_window, config_.max_window);
      }
    }
  } else if (drain == 0 && wait50 == 0) {
    // Idle: the pipeline never queued this epoch. Shrink an oversized knob
    // toward its observed peak — halving (not snapping) keeps adaptation
    // noise from collapsing a converged config on one quiet epoch.
    if (in_flight_peak_ * 2 <= window_ && window_ > config_.min_window) {
      window_ = clamp_knob(std::max(window_ / 2, in_flight_peak_),
                           config_.min_window, config_.max_window);
    } else if (slot_cmds_peak_ * 2 <= batch_ && batch_ > config_.min_batch) {
      batch_ = clamp_knob(std::max(batch_ / 2, slot_cmds_peak_),
                          config_.min_batch, config_.max_batch);
    }
  }
  // In between (drain ≈ round): converged — hold.

  trajectory_.push_back(TunerEpoch{observations_, window_, batch_, wait50,
                                   svc50, depth});
  waits_.clear();
  services_.clear();
  queue_sum_ = 0;
  in_flight_peak_ = 0;
  slot_cmds_peak_ = 0;
}

std::string Tuner::trajectory_fingerprint() const {
  std::ostringstream os;
  os << "w" << window_ << "b" << batch_;
  for (const TunerEpoch& e : trajectory_) {
    os << ">" << e.at_slots << ":w" << e.window << "b" << e.batch;
  }
  return os.str();
}

}  // namespace mnm::smr
