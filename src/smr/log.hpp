// smr::Log — pipelined multi-slot replication over a core::ConsensusEngine.
//
// The layer the paper's systems motivation (§1/§2: DARE, APUS) actually
// needs: a log where up to `window` slots are in flight concurrently, each
// an independent consensus instance behind the engine, with decisions
// applied to the state machine strictly in slot order no matter what order
// they commit in. One Log per replica; all replicas of a cluster share one
// engine *kind* over one transport/memory set.
//
// Two proposal modes:
//
//  * Leader-driven (default, crash-model engines): only the Ω-trusted
//    replica assigns slots, pulling queued batch payloads and keeping
//    `window` slots open past the applied prefix. Followers participate
//    passively (the engine's discovery loop opens slots heard on the wire)
//    and apply from the engine's decision stream. Leader hand-off is
//    notification-driven: when Ω changes (Omega::poke), the new leader
//    re-proposes every open slot in [applied, horizon) — adopting whatever
//    a quorum already accepted, per the engine's protocol — and takes over
//    fresh assignment from the horizon. A queued payload that loses its
//    slot to an older leader's value is re-queued at the front, so enqueued
//    batches commit unless their replica dies.
//
//  * All-propose (`all_propose`, Byzantine-model engines): every correct
//    replica proposes its own candidate payload (or a no-op filler once its
//    queue drains) for each of `fixed_slots` slots, window-paced. This is
//    the mode Fast & Robust / Cheap Quorum require, since their traffic
//    runs through memories and passive replicas could never be heard.
//
// All waits are event-driven (sim::Select over the pending/applied/Ω/
// horizon signals, snapshot-before-check); an idle log costs zero events.

#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <optional>
#include <vector>

#include "src/common.hpp"
#include "src/core/engine.hpp"
#include "src/core/omega.hpp"
#include "src/sim/executor.hpp"
#include "src/sim/sync.hpp"
#include "src/sim/task.hpp"
#include "src/smr/tuner.hpp"

namespace mnm::smr {

/// In-order command sink. `apply` runs exactly once per command, in slot
/// order (and submission order within a slot's batch), on every correct
/// replica — the replicated-state-machine contract.
class StateMachine {
 public:
  virtual ~StateMachine() = default;
  virtual void apply(Slot slot, util::ByteView command) = 0;
};

/// Slot payload codec: a batch of commands (u32 count + length-prefixed
/// commands). The empty batch is the no-op filler; undecodable bytes (a
/// Byzantine proposer can win a slot with garbage) apply as zero commands,
/// identically on every correct replica.
Bytes encode_batch(const std::vector<Bytes>& commands);
std::vector<Bytes> decode_batch(util::ByteView raw);

/// Validation rule (applied at Log construction, documented once here):
/// `window` is clamped into [1, kMaxWindow] — a window of 0 can make no
/// progress and silently stalled before this rule existed. `fixed_slots`
/// needs no clamp (a window wider than the slot target is simply never
/// filled), but all_propose with fixed_slots == 0 drives nothing; callers
/// wanting a dynamic all-propose workload set a cap and noop_fillers=false.
inline constexpr std::size_t kMaxWindow = 1 << 16;

struct LogConfig {
  /// Max slots between the first unapplied slot and the newest assignment.
  /// With auto-tuning (ReplicaConfig::tune.enabled) this is the *initial*
  /// setting; the pump reads the tuner's live, clamped value per slot.
  std::size_t window = 8;
  /// Every replica proposes every slot (required by Byzantine engines).
  bool all_propose = false;
  /// all_propose only: total slots to drive (each replica must use the
  /// same value).
  Slot fixed_slots = 0;
  /// all_propose only: when true (the default — the fixed-workload harness
  /// shape), an empty queue proposes the no-op filler so every slot up to
  /// fixed_slots completes. When false, the pump waits for queued work
  /// before opening a slot — the dynamic-workload shape (kv::Router fans
  /// the same payload out to every correct replica in the same tick, so
  /// queues advance in lockstep and fillers are never needed). fixed_slots
  /// is then just a cap, not a target.
  bool noop_fillers = true;
  /// Seed for Ω leadership-wait backoff.
  sim::Time lead_poll = 1;
};

/// Everything recorded about one slot at this replica (index == slot).
struct SlotRecord {
  bool proposed_here = false;  // this replica drove a proposal for the slot
  bool won_here = false;       // ...and its payload was the decided value
  bool noop = false;           // decided batch was empty / undecodable
  bool fast = false;           // local decision took the engine's fast path
  std::size_t commands = 0;    // commands applied from the slot
  sim::Time enqueued_at = 0;   // proposer only: when the payload was queued
  sim::Time proposed_at = 0;   // proposer only
  sim::Time decided_at = 0;    // local decision time
  sim::Time applied_at = 0;
  /// Proposer only: open slots (launched, not yet applied) right after this
  /// slot launched, and the live window limit it launched under — the
  /// window-occupancy signal the tuner and RunStats read.
  std::size_t in_flight = 0;
  std::size_t window_limit = 0;
};

class Log {
 public:
  Log(sim::Executor& exec, core::ConsensusEngine& engine, core::Omega& omega,
      StateMachine& sm, LogConfig config);

  /// Spawn the apply loop and the proposal pump. Call exactly once, after
  /// engine.start().
  void start();

  /// Queue a batch payload (encode_batch) for replication.
  void enqueue(Bytes payload);
  /// Queue a group of raw commands. Unlike enqueue(), the group is encoded
  /// at *launch* time, so the pump may merge consecutive groups into one
  /// slot payload up to the tuner's live batch size — the continuous-
  /// batching path auto-tuned Replicas feed.
  void enqueue_commands(std::vector<Bytes> commands);

  /// Attach the live window/batch controller (owned by the Replica; may be
  /// disabled, in which case the static config governs). Call before
  /// start().
  void set_tuner(Tuner* tuner) { tuner_ = tuner; }
  /// The in-flight limit the pump is currently honoring.
  std::size_t live_window() const {
    return tuner_ != nullptr && tuner_->enabled() ? tuner_->window()
                                                  : config_.window;
  }

  std::size_t pending() const { return pending_.size(); }
  /// Commands queued behind the window (opaque enqueue() payloads count as
  /// one command each — exact on the enqueue_commands() path the tuner
  /// actually observes).
  std::uint64_t pending_commands() const { return pending_cmds_; }
  /// Slots applied to the state machine (the contiguous prefix).
  Slot applied_len() const { return applied_len_; }
  /// One past the highest slot this replica has proposed for.
  Slot proposed_upto() const { return next_slot_; }
  /// Nothing queued, nothing decided-but-unapplied, every slot this replica
  /// proposed is applied.
  bool quiescent() const {
    return pending_.empty() && stash_.empty() && applied_len_ >= next_slot_;
  }
  sim::VersionSignal& applied_signal() { return applied_signal_; }
  const std::vector<SlotRecord>& records() const { return records_; }

 private:
  struct Pending {
    Bytes payload;               // pre-encoded batch; empty on the raw path
    std::vector<Bytes> cmds;     // raw commands (enqueue_commands path)
    sim::Time enqueued_at = 0;
  };

  sim::Task<void> apply_loop();
  sim::Task<void> pump_leader();
  sim::Task<void> pump_all();
  /// One slot proposal; on loss (another value decided) re-queues the
  /// group at the front when `retry`.
  sim::Task<void> drive(Slot slot, Pending group, bool retry);

  SlotRecord& record(Slot s);
  Pending take_pending_or_noop();
  void requeue_front(Pending group);
  void launch(Slot slot, Pending p, bool retry);
  void apply_slot(Slot slot, const core::Decision& d);

  sim::Executor* exec_;
  core::ConsensusEngine* engine_;
  core::Omega* omega_;
  StateMachine* sm_;
  LogConfig config_;

  std::deque<Pending> pending_;
  std::uint64_t pending_cmds_ = 0;
  sim::VersionSignal pending_signal_;
  std::map<Slot, core::Decision> stash_;  // decided, awaiting in-order apply
  std::vector<SlotRecord> records_;
  Slot applied_len_ = 0;
  Slot next_slot_ = 0;
  std::size_t open_slots_ = 0;  // launched here, not yet applied
  sim::VersionSignal applied_signal_;
  Tuner* tuner_ = nullptr;
  bool started_ = false;
};

}  // namespace mnm::smr
